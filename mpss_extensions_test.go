package mpss

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestPublicDiscretePipeline(t *testing.T) {
	in := quickInstance(t)
	p := MustAlpha(2)
	cont, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	menu, err := UniformSpeedMenu(cont.Phases[0].Speed*1.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := DiscreteSchedule(in, p, menu)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(disc.Schedule, in); err != nil {
		t.Fatal(err)
	}
	contE := cont.Schedule.Energy(p)
	if disc.Energy < contE-1e-9 {
		t.Errorf("discrete %v beat continuous %v", disc.Energy, contE)
	}
}

func TestPublicBoundedSpeed(t *testing.T) {
	in := quickInstance(t)
	cap, err := MinFeasibleCap(in, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := FeasibleAtSpeed(in, cap*1.01)
	if err != nil || !ok {
		t.Errorf("FeasibleAtSpeed above cap: %v, %v", ok, err)
	}
	ok, err = FeasibleAtSpeed(in, cap*0.9)
	if err != nil || ok {
		t.Errorf("FeasibleAtSpeed below cap: %v, %v", ok, err)
	}
}

func TestPublicPotentialTracker(t *testing.T) {
	in := quickInstance(t)
	oa, err := OA(in)
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewPotentialTracker(in, oa, optRes.Schedule, 2)
	if err != nil {
		t.Fatal(err)
	}
	start, end := in.Horizon()
	if phi := tr.Phi(start - 1); phi != 0 {
		t.Errorf("Phi before horizon = %v", phi)
	}
	p := MustAlpha(2)
	r := tr.Drift(start, end, p)
	if r.LHS > 1e-5*(1+4*r.EOPT) {
		t.Errorf("whole-run drift positive: %+v", r)
	}
}

func TestPublicPowerConstructors(t *testing.T) {
	poly, err := NewPolynomial(PowerTerm{C: 1, E: 2}, PowerTerm{C: 0.5, E: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := poly.Power(2); math.Abs(got-5) > 1e-12 {
		t.Errorf("poly.Power(2) = %v, want 5", got)
	}
	pl, err := SamplePiecewiseAlpha(2, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Power(4) < 16-1e-9 {
		t.Errorf("PL fit below exact at breakpoint: %v", pl.Power(4))
	}
	if _, err := NewPolynomial(); err == nil {
		t.Error("empty polynomial accepted")
	}
}

func TestPublicPeriodicAndTrace(t *testing.T) {
	in, err := ExpandPeriodic(2, []PeriodicTask{
		{Period: 10, WCET: 2},
		{Period: 5, WCET: 1, Phase: 1},
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res.Schedule, in); err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	back, err := InstanceFromTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() || back.M != in.M {
		t.Errorf("trace round trip: %d/%d vs %d/%d", back.N(), back.M, in.N(), in.M)
	}
}

func TestPublicMetricsAndGantt(t *testing.T) {
	in := quickInstance(t)
	res, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Schedule.ComputeMetrics()
	if m.Jobs != in.N() || m.BusyTime <= 0 || m.Utilization <= 0 || m.Utilization > 1 {
		t.Errorf("metrics = %+v", m)
	}
	if g := res.Schedule.Gantt(40); len(g) == 0 {
		t.Error("empty Gantt")
	}
}

func TestPublicCapAndSleep(t *testing.T) {
	in := quickInstance(t)
	p := MustAlpha(3)
	cap, err := MinFeasibleCap(in, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	race, err := ScheduleAtCap(in, cap*1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(race, in); err != nil {
		t.Fatal(err)
	}
	start, end := in.Horizon()
	b, err := EvaluateWithSleep(race, p, SleepModel{IdlePower: 1, WakeCost: 0.5}, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total <= 0 || b.Dynamic <= 0 {
		t.Errorf("breakdown = %+v", b)
	}
	if math.Abs(b.Total-(b.Dynamic+b.Static+b.Idle+b.Wake)) > 1e-9 {
		t.Errorf("breakdown does not sum: %+v", b)
	}
	if _, err := ScheduleAtCap(in, cap*0.5); err == nil {
		t.Error("infeasible cap accepted")
	}
}

func TestPublicBKP(t *testing.T) {
	in, err := NewInstance(1, quickInstance(t).Jobs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BKP(in.Jobs, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s, in); err != nil {
		t.Fatal(err)
	}
	optS, err := YDS(in.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	p := MustAlpha(2)
	ratio := s.Energy(p) / optS.Energy(p)
	if ratio < 1-1e-9 || ratio > BKPBound(2) {
		t.Errorf("BKP ratio %v outside [1, %v]", ratio, BKPBound(2))
	}
}

func TestPublicPlanner(t *testing.T) {
	pl, err := NewPlanner(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Arrive(0,
		Job{ID: 1, Deadline: 4, Work: 4},
		Job{ID: 2, Deadline: 6, Work: 2},
	); err != nil {
		t.Fatal(err)
	}
	if err := pl.Arrive(2, Job{ID: 3, Deadline: 5, Work: 3}); err != nil {
		t.Fatal(err)
	}
	if err := pl.FinishHorizon(6); err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(2, []Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 4},
		{ID: 2, Release: 0, Deadline: 6, Work: 2},
		{ID: 3, Release: 2, Deadline: 5, Work: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pl.Executed(), in); err != nil {
		t.Fatal(err)
	}
	if pl.Replans() != 2 {
		t.Errorf("replans = %d, want 2", pl.Replans())
	}
}

func TestPublicCanonicalize(t *testing.T) {
	in := quickInstance(t)
	res, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := Canonicalize(res.Schedule, res.Intervals)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(canon, in); err != nil {
		t.Fatal(err)
	}
	p := MustAlpha(2)
	if math.Abs(canon.Energy(p)-res.Schedule.Energy(p)) > 1e-9 {
		t.Error("canonicalization changed energy")
	}
}

func TestPublicRenderSVG(t *testing.T) {
	in := quickInstance(t)
	res, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderSVG(&buf, res.Schedule, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("<svg")) {
		t.Error("no SVG root element")
	}
}

func TestPublicPowerProfile(t *testing.T) {
	in := quickInstance(t)
	res, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	p := MustAlpha(2)
	prof := res.Schedule.PowerProfile(p)
	if len(prof) < 2 {
		t.Fatalf("profile too short: %v", prof)
	}
	if math.Abs(ProfileEnergy(prof)-res.Schedule.Energy(p)) > 1e-9 {
		t.Error("profile energy mismatch")
	}
}
