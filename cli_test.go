package mpss

// End-to-end smoke tests of the command-line tools: build each binary
// once and drive the documented pipeline
// gen -> opt -> verify -> sim -> bench. Skipped under -short (they shell
// out to the go toolchain).

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests build binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	gen := buildTool(t, dir, "mpss-gen")
	opt := buildTool(t, dir, "mpss-opt")
	sim := buildTool(t, dir, "mpss-sim")
	verify := buildTool(t, dir, "mpss-verify")
	bench := buildTool(t, dir, "mpss-bench")

	inst := filepath.Join(dir, "inst.json")
	sched := filepath.Join(dir, "sched.json")
	svg := filepath.Join(dir, "sched.svg")

	runTool(t, gen, "-workload", "bursty", "-n", "8", "-m", "2", "-seed", "3", "-o", inst)
	if _, err := os.Stat(inst); err != nil {
		t.Fatal(err)
	}

	out := runTool(t, opt, "-in", inst, "-alpha", "2", "-json", sched, "-svg", svg, "-gantt")
	if !strings.Contains(out, "energy") || !strings.Contains(out, "phase") {
		t.Errorf("mpss-opt output:\n%s", out)
	}
	for _, f := range []string{sched, svg} {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}

	out = runTool(t, verify, "-instance", inst, "-schedule", sched, "-alpha", "2", "-optimal")
	if !strings.Contains(out, "feasible: yes") || !strings.Contains(out, "ratio: 1.000000") {
		t.Errorf("mpss-verify output:\n%s", out)
	}

	for _, alg := range []string{"oa", "avr", "nonmig-rr"} {
		out = runTool(t, sim, "-in", inst, "-alg", alg, "-alpha", "2")
		if !strings.Contains(out, "ratio:") {
			t.Errorf("mpss-sim %s output:\n%s", alg, out)
		}
	}

	csvDir := filepath.Join(dir, "csv")
	out = runTool(t, bench, "-experiment", "e9", "-seeds", "1", "-n", "6", "-csv", csvDir)
	if !strings.Contains(out, "E9") {
		t.Errorf("mpss-bench output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "e9.csv")); err != nil {
		t.Errorf("CSV export missing: %v", err)
	}
}

func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests build binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	gen := buildTool(t, dir, "mpss-gen")
	opt := buildTool(t, dir, "mpss-opt")
	sim := buildTool(t, dir, "mpss-sim")
	bench := buildTool(t, dir, "mpss-bench")

	inst := filepath.Join(dir, "inst.json")
	runTool(t, gen, "-workload", "bursty", "-n", "8", "-m", "2", "-seed", "3", "-o", inst)

	// readMetrics decodes a -metrics artifact and returns its snapshot.
	readMetrics := func(path string) Metrics {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("metrics file missing: %v", err)
		}
		var m Metrics
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("metrics file is not valid JSON: %v\n%s", err, data)
		}
		return m
	}

	optMetrics := filepath.Join(dir, "opt_metrics.json")
	out := runTool(t, opt, "-in", inst, "-metrics", optMetrics, "-trace")
	if !strings.Contains(out, "phase trace:") {
		t.Errorf("mpss-opt -trace output missing trace tree:\n%s", out)
	}
	m := readMetrics(optMetrics)
	if m.Counters["opt.phases"] < 1 || m.Counters["flow.solves"] < 1 {
		t.Errorf("mpss-opt metrics counters = %v, want opt.phases and flow.solves >= 1", m.Counters)
	}
	if len(m.Trace) == 0 || !strings.HasPrefix(m.Trace[0].Name, "phase") {
		t.Errorf("mpss-opt metrics trace = %+v, want per-phase spans", m.Trace)
	}

	for _, alg := range []string{"oa", "avr"} {
		simMetrics := filepath.Join(dir, alg+"_metrics.json")
		out = runTool(t, sim, "-in", inst, "-alg", alg, "-alpha", "2", "-trace", "-metrics", simMetrics)
		if !strings.Contains(out, "summary: "+alg) || !strings.Contains(out, "migrations=") {
			t.Errorf("mpss-sim %s missing summary line:\n%s", alg, out)
		}
		if !strings.Contains(out, "event trace:") {
			t.Errorf("mpss-sim %s -trace output missing trace tree:\n%s", alg, out)
		}
		m = readMetrics(simMetrics)
		if m.Counters[alg+".speed_recomputations"] < 1 {
			t.Errorf("mpss-sim %s metrics counters = %v, want %s.speed_recomputations >= 1", alg, m.Counters, alg)
		}
	}

	benchMetrics := filepath.Join(dir, "bench_metrics.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out = runTool(t, bench, "-experiment", "e2", "-seeds", "1", "-n", "6",
		"-metrics", benchMetrics, "-cpuprofile", cpu, "-memprofile", mem)
	if !strings.Contains(out, "metrics [e2]:") || !strings.Contains(out, "metrics [total]:") {
		t.Errorf("mpss-bench metrics summary missing:\n%s", out)
	}
	var payload struct {
		Experiments map[string]Metrics `json:"experiments"`
		Total       Metrics            `json:"total"`
	}
	data, err := os.ReadFile(benchMetrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatalf("bench metrics not valid JSON: %v", err)
	}
	if payload.Experiments["e2"].Counters["flow.solves"] < 1 ||
		payload.Total.Counters["flow.solves"] != payload.Experiments["e2"].Counters["flow.solves"] {
		t.Errorf("bench metrics payload = %+v", payload)
	}
	for _, f := range []string{cpu, mem} {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Errorf("profile artifact %s missing/empty: %v", f, err)
		}
	}
}

func TestCLIErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests build binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	sim := buildTool(t, dir, "mpss-sim")
	gen := buildTool(t, dir, "mpss-gen")

	inst := filepath.Join(dir, "inst.json")
	runTool(t, gen, "-n", "4", "-m", "2", "-o", inst)

	// Unknown algorithm must fail with a nonzero exit.
	if out, err := exec.Command(sim, "-in", inst, "-alg", "nope").CombinedOutput(); err == nil {
		t.Errorf("unknown algorithm accepted:\n%s", out)
	}
	// BKP on m=2 must fail.
	if out, err := exec.Command(sim, "-in", inst, "-alg", "bkp").CombinedOutput(); err == nil {
		t.Errorf("bkp on m=2 accepted:\n%s", out)
	}
	// Unknown workload must fail.
	if out, err := exec.Command(gen, "-workload", "nope").CombinedOutput(); err == nil {
		t.Errorf("unknown workload accepted:\n%s", out)
	}
}
