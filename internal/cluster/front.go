package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mpss/api"
	"mpss/internal/obs"
)

// Config parameterizes a Front. Spawner is required; everything else
// has a default.
type Config struct {
	// Spawner provisions replicas (ExecSpawner for child processes,
	// StaticSpawner for already-running servers).
	Spawner Spawner
	// MinReplicas..MaxReplicas bound the replica count (defaults 1..4).
	// The front starts MinReplicas synchronously.
	MinReplicas int
	MaxReplicas int
	// Vnodes is the consistent-hash virtual-node count per replica
	// (default 64).
	Vnodes int
	// ProbeInterval paces the health/status poll loop (default 500ms;
	// negative disables the loop — tests drive probes manually).
	ProbeInterval time.Duration
	// ProxyAttempts bounds how many ring successors one request tries
	// before giving up with 503 (default 3).
	ProxyAttempts int
	// ProxyTimeout bounds one proxied call when the inbound request has
	// no deadline of its own (default 60s — above the replicas' solve
	// deadline, so the replica's own 504 wins).
	ProxyTimeout time.Duration
	// MaxBodyBytes bounds inbound request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Autoscale configures the solver-driven replica-count control loop
	// (autoscaler.go). Zero value: disabled.
	Autoscale AutoscaleConfig
	// Recorder receives the front's counters and gauges.
	Recorder *obs.Recorder
	// Logger receives structured lifecycle records. Nil discards.
	Logger *slog.Logger
}

func (c *Config) applyDefaults() error {
	if c.Spawner == nil {
		return errors.New("cluster: Config.Spawner is required")
	}
	if c.MinReplicas <= 0 {
		c.MinReplicas = 1
	}
	if c.MaxReplicas < c.MinReplicas {
		c.MaxReplicas = c.MinReplicas + 3
	}
	if c.Vnodes <= 0 {
		c.Vnodes = defaultVnodes
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProxyAttempts <= 0 {
		c.ProxyAttempts = 3
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Recorder == nil {
		c.Recorder = obs.New()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	return nil
}

// Front is the cluster's public tier: one http.Handler exposing the
// same /v1 surface as a single replica, plus /v1/cluster/status. It
// routes solves by consistent hash on the canonical request key (cache
// locality), reroutes around dead replicas, coalesces duplicate
// concurrent solves cluster-wide, and — with autoscaling enabled —
// resizes the replica set by asking the solver how many processors the
// observed demand needs.
type Front struct {
	cfg Config
	rec *obs.Recorder
	log *slog.Logger
	mux *http.ServeMux
	sf  flightGroup
	as  *autoscaler

	mu       sync.RWMutex
	replicas map[string]*replica
	order    []string // spawn order; scale-down drains newest first
	ring     *ring    // routable (healthy+suspect) members
	prevRing *ring    // ring before the last membership change (cache migration)
	desired  int
	nextID   int
	sessions map[string]string // session ID -> replica name
	events   []api.ScaleEvent
	closed   bool

	stopCh chan struct{}
	bg     sync.WaitGroup
}

// maxScaleEvents bounds the /v1/cluster/status event log.
const maxScaleEvents = 64

// New builds a Front, spawns MinReplicas synchronously, and starts the
// probe and autoscale loops. It fails if no replica comes up.
func New(cfg Config) (*Front, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	f := &Front{
		cfg:      cfg,
		rec:      cfg.Recorder,
		log:      cfg.Logger,
		mux:      http.NewServeMux(),
		replicas: make(map[string]*replica),
		sessions: make(map[string]string),
		stopCh:   make(chan struct{}),
	}
	for i := 0; i < cfg.MinReplicas; i++ {
		if err := f.addReplica(context.Background()); err != nil {
			f.stopAll(context.Background())
			return nil, err
		}
	}
	f.mu.Lock()
	f.desired = cfg.MinReplicas
	f.mu.Unlock()
	if f.routable() == 0 {
		f.stopAll(context.Background())
		return nil, errors.New("cluster: no replica became ready")
	}

	for _, ep := range [...]string{"optimal", "oa", "avr", "atcap"} {
		f.mux.HandleFunc("POST /v1/solve/"+ep, f.solveProxy(ep, "/v1/solve/"+ep))
	}
	f.mux.HandleFunc("POST /v1/feasible", f.solveProxy("feasible", "/v1/feasible"))
	f.mux.HandleFunc("POST /v1/mincap", f.solveProxy("mincap", "/v1/mincap"))
	f.mux.HandleFunc("POST /v1/session", f.handleSessionCreate)
	f.mux.HandleFunc("POST /v1/session/{id}/delta", f.sessionProxy)
	f.mux.HandleFunc("GET /v1/session/{id}", f.sessionProxy)
	f.mux.HandleFunc("DELETE /v1/session/{id}", f.sessionProxy)
	f.mux.HandleFunc("GET /v1/cache/{hash}", f.handleCachePeek)
	f.mux.HandleFunc("GET /v1/healthz", f.handleHealthz)
	f.mux.HandleFunc("GET /v1/readyz", f.handleReadyz)
	f.mux.HandleFunc("GET /v1/status", f.handleStatus)
	f.mux.HandleFunc("GET /v1/metrics", f.handleMetrics)
	f.mux.HandleFunc("GET /metrics", f.handlePrometheus)
	f.mux.HandleFunc("GET /v1/cluster/status", f.handleClusterStatus)

	if cfg.ProbeInterval > 0 {
		f.bg.Add(1)
		go f.probeLoop()
	}
	if cfg.Autoscale.Enabled {
		f.as = newAutoscaler(f, cfg.Autoscale)
		f.bg.Add(1)
		go f.as.loop()
	}
	return f, nil
}

// ServeHTTP implements http.Handler.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mux.ServeHTTP(w, r)
}

// Recorder returns the front's observability recorder.
func (f *Front) Recorder() *obs.Recorder { return f.rec }

// Shutdown stops the control loops and drains every replica the front
// owns. Safe to call once.
func (f *Front) Shutdown(ctx context.Context) error {
	f.mu.Lock()
	already := f.closed
	f.closed = true
	f.mu.Unlock()
	if already {
		return nil
	}
	close(f.stopCh)
	f.bg.Wait()
	return f.stopAll(ctx)
}

func (f *Front) stopAll(ctx context.Context) error {
	f.mu.Lock()
	reps := make([]*replica, 0, len(f.replicas))
	for _, r := range f.replicas {
		reps = append(reps, r)
	}
	f.mu.Unlock()
	var wg sync.WaitGroup
	errs := make(chan error, len(reps))
	for _, r := range reps {
		if r.stop == nil {
			continue
		}
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			if err := r.stop(ctx); err != nil {
				errs <- err
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// --- membership -------------------------------------------------------

// addReplica spawns one replica, probes it once, and installs it.
func (f *Front) addReplica(ctx context.Context) error {
	f.mu.Lock()
	f.nextID++
	name := "r" + strconv.Itoa(f.nextID)
	f.mu.Unlock()

	url, stop, err := f.cfg.Spawner.Spawn(ctx, name)
	if err != nil {
		return fmt.Errorf("cluster: spawning %s: %w", name, err)
	}
	rep := &replica{
		name:  name,
		url:   url,
		stop:  stop,
		api:   api.NewClient(url, api.WithClientTimeout(5*time.Second)),
		state: stateStarting,
	}
	// One immediate probe: an ExecSpawner replica is already listening,
	// so this promotes it to healthy before any request routes to it; a
	// static target that is down stays "starting" until the probe loop
	// reaches it.
	probeCtx, cancel := context.WithTimeout(ctx, 3*time.Second)
	f.probeOne(probeCtx, rep)
	cancel()

	f.mu.Lock()
	f.replicas[name] = rep
	f.order = append(f.order, name)
	f.mu.Unlock()
	f.rebuildRing()
	f.log.Info("replica added", "replica", name, "url", url, "state", rep.getState())
	return nil
}

// dropNewest drains the most recently spawned active replica (LIFO
// scale-down keeps the oldest, longest-warmed caches alive).
func (f *Front) dropNewest(ctx context.Context) {
	f.mu.Lock()
	var rep *replica
	for i := len(f.order) - 1; i >= 0; i-- {
		r := f.replicas[f.order[i]]
		if r != nil && r.getState() != stateDraining {
			rep = r
			break
		}
	}
	f.mu.Unlock()
	if rep == nil {
		return
	}
	rep.setState(stateDraining, "")
	f.rebuildRing()
	f.log.Info("replica draining", "replica", rep.name)
	// Drain in the background: SIGTERM lets in-flight solves finish; the
	// entry is removed once the process is gone.
	f.bg.Add(1)
	go func() {
		defer f.bg.Done()
		if rep.stop != nil {
			stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := rep.stop(stopCtx); err != nil {
				f.log.Warn("replica stop", "replica", rep.name, "error", err.Error())
			}
		}
		f.mu.Lock()
		delete(f.replicas, rep.name)
		for i, n := range f.order {
			if n == rep.name {
				f.order = append(f.order[:i], f.order[i+1:]...)
				break
			}
		}
		for id, owner := range f.sessions {
			if owner == rep.name {
				delete(f.sessions, id)
			}
		}
		f.mu.Unlock()
		f.log.Info("replica removed", "replica", rep.name)
	}()
}

// scaleTo moves the active replica count toward n (clamped to
// [MinReplicas, MaxReplicas]), recording a scale event. Called by the
// autoscaler loop; spawning is synchronous on that loop.
func (f *Front) scaleTo(n int, reason string) {
	if n < f.cfg.MinReplicas {
		n = f.cfg.MinReplicas
	}
	if n > f.cfg.MaxReplicas {
		n = f.cfg.MaxReplicas
	}
	cur := f.activeCount()
	if n == cur {
		return
	}
	f.mu.Lock()
	f.desired = n
	f.events = append(f.events, api.ScaleEvent{UnixMS: time.Now().UnixMilli(), From: cur, To: n, Reason: reason})
	if len(f.events) > maxScaleEvents {
		f.events = f.events[len(f.events)-maxScaleEvents:]
	}
	f.mu.Unlock()
	f.rec.SetGauge("cluster.desired_replicas", float64(n))
	f.log.Info("scaling", "from", cur, "to", n, "reason", reason)
	for ; cur < n; cur++ {
		f.rec.Add("cluster.scale_ups", 1)
		if err := f.addReplica(context.Background()); err != nil {
			f.log.Warn("scale up failed", "error", err.Error())
			return
		}
	}
	for ; cur > n; cur-- {
		f.rec.Add("cluster.scale_downs", 1)
		f.dropNewest(context.Background())
	}
}

// activeCount counts replicas not yet draining (the autoscaler's
// "current" — starting/suspect/down replicas still occupy a slot).
func (f *Front) activeCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, r := range f.replicas {
		if r.getState() != stateDraining {
			n++
		}
	}
	return n
}

// routable counts ring members.
func (f *Front) routable() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ring.members()
}

// rebuildRing recomputes the routing ring from the current
// healthy+suspect set. The outgoing ring is kept one generation as
// prevRing: after a membership change, a key's previous owner may hold
// the cached result the new owner lacks, and the proxy peeks it there
// (cache migration) before re-solving.
func (f *Front) rebuildRing() {
	f.mu.Lock()
	defer f.mu.Unlock()
	var members []string
	for name, r := range f.replicas {
		switch r.getState() {
		case stateHealthy, stateSuspect:
			members = append(members, name)
		}
	}
	sort.Strings(members)
	old := f.ring
	next := newRing(members, f.cfg.Vnodes)
	if old != nil && old.n == next.n && sameMembers(old, next) {
		return
	}
	f.ring, f.prevRing = next, old
	f.rec.SetGauge("cluster.replicas_routable", float64(len(members)))
}

func sameMembers(a, b *ring) bool {
	seen := make(map[string]bool)
	for _, p := range a.points {
		seen[p.member] = true
	}
	n := 0
	for _, p := range b.points {
		if !seen[p.member] {
			return false
		}
	}
	for range seen {
		n++
	}
	return n == b.n
}

// --- health probing ---------------------------------------------------

func (f *Front) probeLoop() {
	defer f.bg.Done()
	tick := time.NewTicker(f.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-f.stopCh:
			return
		case <-tick.C:
			f.ProbeAll(context.Background())
		}
	}
}

// ProbeAll probes every non-draining replica once and rebuilds the ring
// on transitions. Exported so tests (and the autoscaler, ahead of a
// decision) can force a sweep instead of waiting out the ticker.
func (f *Front) ProbeAll(ctx context.Context) {
	f.mu.RLock()
	reps := make([]*replica, 0, len(f.replicas))
	for _, r := range f.replicas {
		if r.getState() != stateDraining {
			reps = append(reps, r)
		}
	}
	f.mu.RUnlock()
	changed := false
	for _, r := range reps {
		if f.probeOne(ctx, r) {
			changed = true
		}
		// A down replica the front spawned is a dead process: reap it so
		// the autoscaler sees a short fleet and spawns a replacement
		// (self-healing). Down static targets (nil stop) stay and keep
		// being probed — they may come back.
		if r.getState() == stateDown && r.stop != nil {
			f.reap(r)
			changed = true
		}
	}
	if changed {
		f.rebuildRing()
	}
}

// reap removes a dead spawned replica from the cluster and releases its
// process (the stop call collects the child, dead or stuck).
func (f *Front) reap(rep *replica) {
	f.mu.Lock()
	if _, ok := f.replicas[rep.name]; !ok {
		f.mu.Unlock()
		return
	}
	delete(f.replicas, rep.name)
	for i, n := range f.order {
		if n == rep.name {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	for id, owner := range f.sessions {
		if owner == rep.name {
			delete(f.sessions, id)
		}
	}
	f.mu.Unlock()
	f.rec.Add("cluster.replicas_reaped", 1)
	f.log.Warn("replica reaped", "replica", rep.name, "last_error", rep.view().LastError)
	f.bg.Add(1)
	go func() {
		defer f.bg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rep.stop(ctx)
	}()
}

// probeOne probes one replica's /v1/readyz (and refreshes its /v1/status
// sample), reporting whether its routing state changed.
func (f *Front) probeOne(ctx context.Context, r *replica) bool {
	prev := r.getState()
	state, _, err := r.api.ReadyState(ctx)
	switch {
	case err != nil:
		f.rec.AddL("cluster.probe_failures", 1, obs.Label{Key: "replica", Value: r.name})
		if r.markFailure(err) == stateDown && prev != stateDown {
			f.log.Warn("replica down", "replica", r.name, "error", err.Error())
		}
	case state == "ready":
		r.setState(stateHealthy, "")
	case state == "draining":
		// The replica is shutting down on its own; take it out of the ring.
		r.setState(stateDown, "replica draining")
	default:
		// "saturated": alive but rejecting — keep its state; the proxy's
		// 503 retry walks past it.
	}
	if err == nil {
		if st, serr := r.api.ReplicaStatus(ctx); serr == nil {
			r.mu.Lock()
			r.status = st
			r.mu.Unlock()
			f.rec.SetGaugeL("cluster.replica_queue", float64(st.QueueLen), obs.Label{Key: "replica", Value: r.name})
		}
	}
	return prev != r.getState()
}

// --- proxy core -------------------------------------------------------

// candidates returns the preference-ordered replicas for key: the ring
// owner first, then its successors (reroute fallbacks).
func (f *Front) candidates(key string, n int) []*replica {
	f.mu.RLock()
	defer f.mu.RUnlock()
	names := f.ring.pick(key, n)
	out := make([]*replica, 0, len(names))
	for _, name := range names {
		if r := f.replicas[name]; r != nil {
			out = append(out, r)
		}
	}
	return out
}

// forward proxies one call to a replica, returning the replica's
// response or a transport error.
func (f *Front) forward(ctx context.Context, r *replica, method, path string, body []byte, reqID string) (proxied, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.cfg.ProxyTimeout)
		defer cancel()
	}
	res, err := r.api.DoRaw(api.WithRequestID(ctx, reqID), method, path, body)
	if err != nil {
		return proxied{}, err
	}
	r.mu.Lock()
	r.proxied++
	r.mu.Unlock()
	f.rec.AddL("cluster.proxied", 1, obs.Label{Key: "replica", Value: r.name})
	return proxied{
		status:  res.Status,
		body:    res.Body,
		replica: r.name,
		cached:  res.Header.Get(api.HeaderCache),
	}, nil
}

// route tries the candidates in order, marking transport failures and
// walking to the next ring successor; a 503 (overloaded/draining
// replica) also advances. Returns the first real answer.
func (f *Front) route(ctx context.Context, key, method, path string, body []byte, reqID string) (proxied, bool) {
	cands := f.candidates(key, f.cfg.ProxyAttempts)
	var last proxied
	var have bool
	for i, r := range cands {
		if i > 0 {
			f.rec.Add("cluster.retries", 1)
		}
		resp, err := f.forward(ctx, r, method, path, body, reqID)
		if err != nil {
			if ctx.Err() != nil {
				return proxied{}, false
			}
			st := r.markFailure(err)
			f.log.Warn("proxy failed", "replica", r.name, "state", st, "error", err.Error())
			f.rebuildRing()
			continue
		}
		if resp.status == http.StatusServiceUnavailable {
			last, have = resp, true
			continue
		}
		return resp, true
	}
	return last, have
}

// writeProxied renders a replica answer (or a front-originated error)
// to the client, stamping which replica served it.
func (f *Front) writeProxied(w http.ResponseWriter, p proxied, reqID string) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if reqID != "" {
		h.Set(api.HeaderRequestID, reqID)
	}
	if p.replica != "" {
		h.Set(api.HeaderReplica, p.replica)
	}
	if p.cached != "" {
		h.Set(api.HeaderCache, p.cached)
	}
	w.WriteHeader(p.status)
	w.Write(p.body)
}

// frontError renders a front-originated error in the public envelope.
func (f *Front) frontError(w http.ResponseWriter, status int, kind, msg, reqID string) {
	body, _ := json.Marshal(api.NewErrorBody(kind, msg, reqID))
	f.writeProxied(w, proxied{status: status, body: body}, reqID)
}

// requestID honors an inbound X-Request-ID or mints one — the front is
// the outermost tier, so the ID it picks is the join key across the
// front's and the replica's logs.
func requestID(r *http.Request) string {
	if id := r.Header.Get(api.HeaderRequestID); api.ValidRequestID(id) {
		return id
	}
	return api.NewRequestID()
}

// solveProxy builds the handler for one solve endpoint: decode enough
// to compute the canonical key, coalesce cluster-wide, route by
// consistent hash, reroute on failure.
func (f *Front) solveProxy(kind, path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := requestID(r)
		f.rec.Add("cluster.requests", 1)
		stop := f.rec.Time("cluster.request_seconds")
		defer stop()

		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes))
		if err != nil {
			f.frontError(w, http.StatusRequestEntityTooLarge, "body_too_large", err.Error(), reqID)
			return
		}
		var req api.SolveRequest
		if err := json.Unmarshal(body, &req); err != nil {
			f.frontError(w, http.StatusBadRequest, "bad_json", fmt.Sprintf("decoding request: %v", err), reqID)
			return
		}
		key := api.RequestKey(kind, &req)

		// Cluster-wide singleflight: concurrent identical requests —
		// arriving for ANY replica — share one proxied solve.
		call, leader := f.sf.join(key)
		if !leader {
			f.rec.Add("cluster.coalesced", 1)
			select {
			case <-call.done:
				if call.resp.cacheable() {
					f.writeProxied(w, call.resp, reqID)
					return
				}
			case <-r.Context().Done():
				f.frontError(w, api.StatusClientClosedRequest, "canceled", r.Context().Err().Error(), reqID)
				return
			}
			// Leader failed transiently; solve solo.
			f.routeAndWrite(w, r, key, path, body, reqID)
			return
		}
		var resp proxied
		var ok bool
		func() {
			defer func() { f.sf.finish(key, call, resp) }()
			resp, ok = f.routeMigrated(r.Context(), key, path, body, reqID)
		}()
		if !ok {
			f.frontError(w, http.StatusServiceUnavailable, "unavailable", "no replica available", reqID)
			return
		}
		f.writeProxied(w, resp, reqID)
	}
}

func (f *Front) routeAndWrite(w http.ResponseWriter, r *http.Request, key, path string, body []byte, reqID string) {
	resp, ok := f.route(r.Context(), key, http.MethodPost, path, body, reqID)
	if !ok {
		f.frontError(w, http.StatusServiceUnavailable, "unavailable", "no replica available", reqID)
		return
	}
	f.writeProxied(w, resp, reqID)
}

// routeMigrated is route plus cache migration: when the last membership
// change moved key to a new owner, the previous owner may still hold
// the cached result — peek it there (a replica-to-replica cache read,
// GET /v1/cache/{hash}) and serve that instead of re-solving cold.
func (f *Front) routeMigrated(ctx context.Context, key, path string, body []byte, reqID string) (proxied, bool) {
	f.mu.RLock()
	cur, prev := f.ring, f.prevRing
	f.mu.RUnlock()
	if prev != nil {
		curOwner, prevOwner := cur.owner(key), prev.owner(key)
		if prevOwner != "" && prevOwner != curOwner {
			f.mu.RLock()
			rep := f.replicas[prevOwner]
			f.mu.RUnlock()
			if rep != nil {
				switch rep.getState() {
				case stateHealthy, stateSuspect:
					if resp, err := f.forward(ctx, rep, http.MethodGet, "/v1/cache/"+key, nil, reqID); err == nil &&
						resp.cached == "peek" && resp.cacheable() {
						f.rec.Add("cluster.cache_migrations", 1)
						return resp, true
					}
				}
			}
		}
	}
	return f.route(ctx, key, http.MethodPost, path, body, reqID)
}

// --- sessions ---------------------------------------------------------

// handleSessionCreate places a new streaming session on the healthy
// replica currently owning the fewest front-routed sessions, then pins
// the session ID to that replica for its lifetime.
func (f *Front) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r)
	f.rec.Add("cluster.requests", 1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes))
	if err != nil {
		f.frontError(w, http.StatusRequestEntityTooLarge, "body_too_large", err.Error(), reqID)
		return
	}
	rep := f.leastSessions()
	if rep == nil {
		f.frontError(w, http.StatusServiceUnavailable, "unavailable", "no replica available", reqID)
		return
	}
	resp, err := f.forward(r.Context(), rep, http.MethodPost, "/v1/session", body, reqID)
	if err != nil {
		rep.markFailure(err)
		f.rebuildRing()
		f.frontError(w, http.StatusServiceUnavailable, "unavailable", "session create failed: "+err.Error(), reqID)
		return
	}
	if resp.status >= 200 && resp.status < 300 {
		var sr api.SessionResponse
		if json.Unmarshal(resp.body, &sr) == nil && sr.SessionID != "" {
			f.mu.Lock()
			f.sessions[sr.SessionID] = rep.name
			f.mu.Unlock()
			rep.mu.Lock()
			rep.sessions++
			rep.mu.Unlock()
			f.rec.Add("cluster.sessions_created", 1)
		}
	}
	f.writeProxied(w, resp, reqID)
}

// leastSessions picks the healthy replica with the fewest front-pinned
// sessions (spawn order breaks ties, keeping placement deterministic).
func (f *Front) leastSessions() *replica {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var best *replica
	for _, name := range f.order {
		r := f.replicas[name]
		if r == nil || r.getState() != stateHealthy {
			continue
		}
		r.mu.Lock()
		n := r.sessions
		r.mu.Unlock()
		if best == nil {
			best = r
			continue
		}
		best.mu.Lock()
		bn := best.sessions
		best.mu.Unlock()
		if n < bn {
			best = r
		}
	}
	return best
}

// sessionProxy forwards delta/poll/delete to the replica pinned at
// create time. A session whose replica died is gone — solver state is
// replica-local — so the front answers 404 and the client recreates.
func (f *Front) sessionProxy(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r)
	f.rec.Add("cluster.requests", 1)
	id := r.PathValue("id")
	f.mu.RLock()
	owner := f.sessions[id]
	rep := f.replicas[owner]
	f.mu.RUnlock()
	if owner == "" || rep == nil {
		f.frontError(w, http.StatusNotFound, "session_unknown", "no such session (its replica may have left)", reqID)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes))
	if err != nil {
		f.frontError(w, http.StatusRequestEntityTooLarge, "body_too_large", err.Error(), reqID)
		return
	}
	path := "/v1/session/" + id
	if strings.HasSuffix(r.URL.Path, "/delta") {
		path += "/delta"
	}
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	if len(body) == 0 {
		body = nil
	}
	resp, ferr := f.forward(r.Context(), rep, r.Method, path, body, reqID)
	if ferr != nil {
		st := rep.markFailure(ferr)
		f.rebuildRing()
		if st == stateDown {
			f.dropSessionsOf(rep.name)
		}
		f.frontError(w, http.StatusServiceUnavailable, "unavailable", "session replica unreachable: "+ferr.Error(), reqID)
		return
	}
	if r.Method == http.MethodDelete && resp.status < 300 {
		f.mu.Lock()
		delete(f.sessions, id)
		f.mu.Unlock()
		rep.mu.Lock()
		rep.sessions--
		rep.mu.Unlock()
	}
	f.writeProxied(w, resp, reqID)
}

// dropSessionsOf forgets every session pinned to a dead replica.
func (f *Front) dropSessionsOf(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, owner := range f.sessions {
		if owner == name {
			delete(f.sessions, id)
		}
	}
}

// --- misc endpoints ---------------------------------------------------

// handleCachePeek forwards a cache peek to the key's ring owner.
func (f *Front) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r)
	key := r.PathValue("hash")
	resp, ok := f.route(r.Context(), key, http.MethodGet, "/v1/cache/"+key, nil, reqID)
	if !ok {
		f.frontError(w, http.StatusServiceUnavailable, "unavailable", "no replica available", reqID)
		return
	}
	f.writeProxied(w, resp, reqID)
}

func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	f.writeJSON(w, http.StatusOK, api.HealthResponse{Status: "ok"}, requestID(r))
}

// handleReadyz: the front is ready while at least one replica is
// routable.
func (f *Front) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if f.routable() == 0 {
		f.writeJSON(w, http.StatusServiceUnavailable, api.HealthResponse{Status: "no_replicas"}, requestID(r))
		return
	}
	f.writeJSON(w, http.StatusOK, api.HealthResponse{Status: "ready"}, requestID(r))
}

// handleStatus reports the front itself in the replica-status shape, so
// one poller can walk fronts and replicas uniformly.
func (f *Front) handleStatus(w http.ResponseWriter, r *http.Request) {
	f.writeJSON(w, http.StatusOK, api.ReplicaStatusResponse{
		Replica:  "front",
		Status:   map[bool]string{true: "ready", false: "no_replicas"}[f.routable() > 0],
		Requests: f.rec.Value("cluster.requests"),
	}, requestID(r))
}

func (f *Front) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := f.rec.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (f *Front) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := f.rec.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleClusterStatus renders the whole cluster: every replica's state
// and latest status sample, the desired count, the autoscaler's last
// decision and the bounded scale-event log (most recent first).
func (f *Front) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	f.mu.RLock()
	reps := make([]api.ClusterReplica, 0, len(f.replicas))
	for _, name := range f.order {
		if rep := f.replicas[name]; rep != nil {
			reps = append(reps, rep.view())
		}
	}
	desired := f.desired
	events := make([]api.ScaleEvent, len(f.events))
	copy(events, f.events)
	f.mu.RUnlock()
	for i, j := 0, len(events)-1; i < j; i, j = i+1, j-1 {
		events[i], events[j] = events[j], events[i]
	}
	out := api.ClusterStatusResponse{Replicas: reps, Desired: desired, Events: events}
	if f.as != nil {
		out.Autoscaler = f.as.statusView()
	}
	f.writeJSON(w, http.StatusOK, out, requestID(r))
}

func (f *Front) writeJSON(w http.ResponseWriter, status int, v any, reqID string) {
	body, err := json.Marshal(v)
	if err != nil {
		f.frontError(w, http.StatusInternalServerError, "internal", err.Error(), reqID)
		return
	}
	f.writeProxied(w, proxied{status: status, body: body}, reqID)
}
