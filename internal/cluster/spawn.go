package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"syscall"
	"time"
)

// ExecSpawner runs replicas as mpss-served child processes. Each Spawn
// execs the binary on a kernel-assigned loopback port, waits for the
// daemon's one-line readiness contract — the slog JSON "listening"
// record on stderr, the same sentinel scripts/serve_smoke.sh parses —
// and returns the bound address. Stop sends SIGTERM (the daemon's
// graceful-drain signal: in-flight solves finish) and escalates to
// SIGKILL only if the drain outlives the stop context.
type ExecSpawner struct {
	// Bin is the mpss-served binary path (default "mpss-served" on PATH).
	Bin string
	// Args are extra flags appended to every replica's command line
	// (e.g. -workers 2 -cache 4096).
	Args []string
	// ReadyTimeout bounds the wait for the readiness line (default 10s).
	ReadyTimeout time.Duration
	// Logger receives child lifecycle records. Nil discards.
	Logger *slog.Logger
}

// Spawn starts one replica process and blocks until it is listening.
func (e *ExecSpawner) Spawn(ctx context.Context, name string) (string, func(context.Context) error, error) {
	bin := e.Bin
	if bin == "" {
		bin = "mpss-served"
	}
	readyTimeout := e.ReadyTimeout
	if readyTimeout <= 0 {
		readyTimeout = 10 * time.Second
	}
	logger := e.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.Level(127)}))
	}

	args := append([]string{"-addr", "127.0.0.1:0", "-replica", name, "-log-format", "json"}, e.Args...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return "", nil, fmt.Errorf("spawn %s: %w", name, err)
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("spawn %s: %w", name, err)
	}
	logger.Info("replica spawning", "replica", name, "pid", cmd.Process.Pid)

	// Scan the child's stderr for the readiness record; after it, keep
	// draining the pipe in the background so the child never blocks on a
	// full pipe buffer.
	addrCh := make(chan string, 1)
	scanner := bufio.NewScanner(stderr)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	go func() {
		ready := false
		for scanner.Scan() {
			if ready {
				continue
			}
			var rec struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(scanner.Bytes(), &rec) == nil && rec.Msg == "listening" {
				ready = true
				addrCh <- rec.Addr
			}
		}
		close(addrCh)
	}()

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()

	kill := func() {
		_ = cmd.Process.Kill()
		<-waitErr
	}
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			kill()
			return "", nil, fmt.Errorf("spawn %s: process exited before listening", name)
		}
		stop := func(stopCtx context.Context) error {
			logger.Info("replica stopping", "replica", name, "pid", cmd.Process.Pid)
			if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
				kill()
				return nil
			}
			select {
			case <-waitErr:
				return nil
			case <-stopCtx.Done():
				kill()
				return fmt.Errorf("stop %s: drain timed out, killed", name)
			}
		}
		return "http://" + addr, stop, nil
	case err := <-waitErr:
		return "", nil, fmt.Errorf("spawn %s: process exited before listening: %v", name, err)
	case <-time.After(readyTimeout):
		kill()
		return "", nil, fmt.Errorf("spawn %s: not listening after %s", name, readyTimeout)
	case <-ctx.Done():
		kill()
		return "", nil, ctx.Err()
	}
}
