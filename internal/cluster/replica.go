package cluster

import (
	"context"
	"fmt"
	"sync"

	"mpss/api"
)

// Replica health states. Transitions (probe loop + proxy errors):
//
//	starting --ready probe--> healthy
//	healthy  --failed probe/proxy--> suspect --another failure--> down
//	suspect  --ready probe--> healthy
//	down     --ready probe--> healthy   (static members can come back)
//	any      --scale-down--> draining --stopped--> removed
//
// Only healthy members are in the routing ring; suspect members stay
// routable as reroute fallbacks until confirmed down.
const (
	stateStarting = "starting"
	stateHealthy  = "healthy"
	stateSuspect  = "suspect"
	stateDown     = "down"
	stateDraining = "draining"
)

// Spawner provisions and tears down replicas. The exec implementation
// (spawn.go) runs mpss-served child processes; tests and -targets mode
// use StaticSpawner over already-running servers.
type Spawner interface {
	// Spawn brings up a replica and returns its base URL plus a stop
	// function that gracefully drains it.
	Spawn(ctx context.Context, name string) (url string, stop func(context.Context) error, err error)
}

// replica is one cluster member as the front tracks it.
type replica struct {
	name string
	url  string
	stop func(context.Context) error // nil for static members
	api  *api.Client

	mu       sync.Mutex
	state    string
	lastErr  string
	proxied  int64
	status   *api.ReplicaStatusResponse // latest /v1/status sample
	sessions int64                      // sessions the front routed here (affinity balance)
}

func (r *replica) getState() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// setState moves the replica's state machine, returning the previous
// state (callers log/react only on actual transitions).
func (r *replica) setState(state, lastErr string) (prev string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev = r.state
	r.state = state
	r.lastErr = lastErr
	return prev
}

// markFailure records a probe/proxy failure: healthy demotes to
// suspect, suspect to down. Returns the new state.
func (r *replica) markFailure(err error) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastErr = err.Error()
	switch r.state {
	case stateHealthy:
		r.state = stateSuspect
	case stateSuspect, stateStarting:
		r.state = stateDown
	}
	return r.state
}

// view renders the replica for /v1/cluster/status.
func (r *replica) view() api.ClusterReplica {
	r.mu.Lock()
	defer r.mu.Unlock()
	return api.ClusterReplica{
		Name:      r.name,
		URL:       r.url,
		State:     r.state,
		Proxied:   r.proxied,
		LastError: r.lastErr,
		Status:    r.status,
	}
}

// StaticSpawner fronts replicas that already exist (the -targets flag,
// httptest servers in the e2e suite): Spawn hands out the provided URLs
// in order and cannot scale beyond them.
type StaticSpawner struct {
	mu   sync.Mutex
	URLs []string
	next int
}

// Spawn returns the next unclaimed URL. The stop function is nil — the
// front never owns a static replica's lifecycle, and a nil stop also
// marks the replica as not reapable: a down static target keeps being
// probed and can come back, where a down spawned process is gone for
// good and gets reaped (front.go ProbeAll).
func (s *StaticSpawner) Spawn(ctx context.Context, name string) (string, func(context.Context) error, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= len(s.URLs) {
		return "", nil, fmt.Errorf("static spawner exhausted: %d targets", len(s.URLs))
	}
	url := s.URLs[s.next]
	s.next++
	return url, nil, nil
}
