package cluster

import (
	"fmt"
	"testing"
)

func TestRingPickStableAndDistinct(t *testing.T) {
	r := newRing([]string{"a", "b", "c"}, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		got := r.pick(key, 3)
		if len(got) != 3 {
			t.Fatalf("pick(%q, 3) = %v, want 3 distinct members", key, got)
		}
		seen := map[string]bool{}
		for _, m := range got {
			if seen[m] {
				t.Fatalf("pick(%q) repeated member %q: %v", key, m, got)
			}
			seen[m] = true
		}
		if got[0] != r.owner(key) {
			t.Fatalf("pick(%q)[0] = %q, owner = %q", key, got[0], r.owner(key))
		}
		// Determinism: a rebuilt identical ring routes identically.
		if again := newRing([]string{"c", "a", "b"}, 64).owner(key); again != got[0] {
			t.Fatalf("owner(%q) unstable across member order: %q vs %q", key, got[0], again)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	members := []string{"r1", "r2", "r3", "r4"}
	r := newRing(members, 0) // default vnodes
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("member %s owns %.1f%% of keys, want roughly 25%%: %v", m, share*100, counts)
		}
	}
}

// Removing one member must only move the keys it owned: consistent
// hashing's whole point — the other replicas' caches stay hot.
func TestRingRemovalMovesOnlyOwnedKeys(t *testing.T) {
	full := newRing([]string{"a", "b", "c"}, 64)
	without := newRing([]string{"a", "b"}, 64)
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := full.owner(key), without.owner(key)
		if before != "c" && before != after {
			t.Fatalf("key %q moved %s -> %s though its owner stayed", key, before, after)
		}
		if before == "c" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key owned by the removed member — distribution broken")
	}
}

func TestRingEmpty(t *testing.T) {
	var r *ring
	if got := r.pick("k", 2); got != nil {
		t.Fatalf("nil ring pick = %v, want nil", got)
	}
	if got := newRing(nil, 8).owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
}
