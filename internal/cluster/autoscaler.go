package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"

	"mpss"
	"mpss/api"
)

// The autoscaler closes the loop the paper opens: mpss schedules jobs
// on speed-scalable processors, and here the service's own load becomes
// the instance. Each tick scrapes every replica's public /metrics
// exposition, turns the observation window into an mpss.Instance —
// observed solve-seconds plus queue backlog as jobs released now with
// the window as their deadline, replicas as processors, per-replica
// throughput (workers × target utilization) as the speed cap — and
// picks the smallest replica count at which that instance is feasible
// (Solver.FeasibleAtSpeed, the same single-parametric-flow probe the
// /v1/feasible endpoint runs). MinFeasibleCap at the current count is
// kept as the tightness diagnostic: how fast each replica would have to
// be for the demand to fit as-is.

// AutoscaleConfig parameterizes the control loop.
type AutoscaleConfig struct {
	// Enabled turns the loop on.
	Enabled bool
	// Interval is the tick period (default 2s).
	Interval time.Duration
	// Window is the deadline the demand instance gets — how long the
	// fleet is allowed to take absorbing one tick's observed work
	// (default: Interval).
	Window time.Duration
	// WorkersPerReplica is each replica's solve parallelism, the
	// capacity basis (default 1).
	WorkersPerReplica int
	// TargetUtil derates capacity: one replica is assumed to serve
	// WorkersPerReplica × TargetUtil solve-seconds per second, keeping
	// headroom for latency (default 0.7).
	TargetUtil float64
	// ScaleDownAfter is the hysteresis: this many consecutive
	// lower-than-current decisions before scaling down. Scale-ups act
	// immediately (default 3).
	ScaleDownAfter int
}

func (c *AutoscaleConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Window <= 0 {
		c.Window = c.Interval
	}
	if c.WorkersPerReplica <= 0 {
		c.WorkersPerReplica = 1
	}
	if c.TargetUtil <= 0 || c.TargetUtil > 1 {
		c.TargetUtil = 0.7
	}
	if c.ScaleDownAfter <= 0 {
		c.ScaleDownAfter = 3
	}
}

// replicaSample is one replica's cumulative demand counters, diffed
// between ticks for per-window rates.
type replicaSample struct {
	requests     float64
	solveSeconds float64
	solveCount   float64
	queueDepth   float64
}

type autoscaler struct {
	f      *Front
	cfg    AutoscaleConfig
	solver *mpss.Solver // warm across ticks: the feasibility probes reuse its arenas
	httpc  *http.Client
	prev   map[string]replicaSample
	low    int // consecutive decisions below current

	mu     sync.Mutex
	status api.AutoscalerStatus
}

func newAutoscaler(f *Front, cfg AutoscaleConfig) *autoscaler {
	cfg.applyDefaults()
	return &autoscaler{
		f:      f,
		cfg:    cfg,
		solver: mpss.NewSolver(mpss.WithRecorder(f.rec)),
		httpc:  &http.Client{Timeout: 3 * time.Second},
		prev:   make(map[string]replicaSample),
		status: api.AutoscalerStatus{Enabled: true},
	}
}

func (a *autoscaler) loop() {
	defer a.f.bg.Done()
	tick := time.NewTicker(a.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-a.f.stopCh:
			return
		case <-tick.C:
			a.Tick(context.Background())
		}
	}
}

func (a *autoscaler) statusView() api.AutoscalerStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.status
}

// Tick runs one control decision: scrape, decide, act. Exported on the
// autoscaler (reached in tests via Front.AutoscaleTick) so the e2e
// suite can step the loop deterministically.
func (a *autoscaler) Tick(ctx context.Context) {
	demand, backlog := a.observe(ctx)
	cur := a.f.activeCount()
	window := a.cfg.Window.Seconds()
	capPerReplica := float64(a.cfg.WorkersPerReplica) * a.cfg.TargetUtil

	jobs := demandJobs(demand+backlog, window, capPerReplica)
	desired := a.desiredReplicas(ctx, jobs, capPerReplica)

	// Tightness diagnostic: the per-replica speed the CURRENT fleet
	// would need. > capPerReplica means the fleet is running hot.
	var minCap float64
	if len(jobs) > 0 && cur > 0 {
		if mc, err := a.solver.MinFeasibleCap(&mpss.Instance{M: cur, Jobs: jobs}, 0, mpss.WithContext(ctx)); err == nil {
			minCap = mc
		}
	}

	a.mu.Lock()
	a.status = api.AutoscalerStatus{
		Enabled:            true,
		DemandWorkSeconds:  demand + backlog,
		CapacityPerReplica: capPerReplica,
		Desired:            desired,
		MinCap:             minCap,
		LastDecision:       time.Now().UnixMilli(),
	}
	a.mu.Unlock()
	a.f.rec.SetGauge("cluster.demand_work_seconds", demand+backlog)
	a.f.rec.SetGauge("cluster.min_feasible_cap", minCap)

	switch {
	case desired > cur:
		// Under-capacity is an SLO breach in progress: act now.
		a.low = 0
		a.f.scaleTo(desired, "demand")
	case desired < cur:
		// Over-capacity just wastes energy — the paper's currency — but
		// reacting to one quiet window would thrash, so require
		// ScaleDownAfter consecutive low decisions.
		a.low++
		if a.low >= a.cfg.ScaleDownAfter {
			a.low = 0
			a.f.scaleTo(desired, "idle")
		}
	default:
		a.low = 0
	}
}

// observe scrapes every routable replica's /metrics and returns the
// window's demand: solve-seconds actually spent since the last tick,
// and the backlog estimate (queued requests × mean solve time).
func (a *autoscaler) observe(ctx context.Context) (demand, backlog float64) {
	a.f.mu.RLock()
	reps := make([]*replica, 0, len(a.f.replicas))
	for _, r := range a.f.replicas {
		switch r.getState() {
		case stateHealthy, stateSuspect:
			reps = append(reps, r)
		}
	}
	a.f.mu.RUnlock()

	seen := make(map[string]bool, len(reps))
	for _, r := range reps {
		cur, err := a.scrape(ctx, r.url)
		if err != nil {
			continue
		}
		seen[r.name] = true
		prev := a.prev[r.name]
		a.prev[r.name] = cur
		dSec := cur.solveSeconds - prev.solveSeconds
		dCnt := cur.solveCount - prev.solveCount
		if dSec < 0 || dCnt < 0 { // replica restarted; counters reset
			dSec, dCnt = cur.solveSeconds, cur.solveCount
		}
		demand += dSec
		meanSolve := 0.05
		if dCnt > 0 {
			meanSolve = dSec / dCnt
		}
		backlog += cur.queueDepth * meanSolve
	}
	for name := range a.prev {
		if !seen[name] {
			delete(a.prev, name)
		}
	}
	return demand, backlog
}

// scrape reads one replica's Prometheus exposition into a sample.
func (a *autoscaler) scrape(ctx context.Context, base string) (replicaSample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return replicaSample{}, err
	}
	resp, err := a.httpc.Do(req)
	if err != nil {
		return replicaSample{}, err
	}
	defer resp.Body.Close()
	samples, err := parsePrometheus(resp.Body)
	if err != nil {
		return replicaSample{}, err
	}
	return replicaSample{
		requests:     metricSum(samples, "mpss_server_requests_total"),
		solveSeconds: metricSum(samples, "mpss_server_request_seconds_sum"),
		solveCount:   metricSum(samples, "mpss_server_request_seconds_count"),
		queueDepth:   metricSum(samples, "mpss_server_queue_depth"),
	}, nil
}

// desiredReplicas answers "how many processors does this demand need"
// with the solver: the smallest m in [MinReplicas, MaxReplicas] at
// which the demand instance is feasible under the per-replica cap.
// Feasibility is monotone in m, so a linear walk from the minimum finds
// the boundary with at most Max-Min probes against a warm solver.
func (a *autoscaler) desiredReplicas(ctx context.Context, jobs []mpss.Job, capPerReplica float64) int {
	min, max := a.f.cfg.MinReplicas, a.f.cfg.MaxReplicas
	if len(jobs) == 0 {
		return min
	}
	for m := min; m < max; m++ {
		ok, err := a.solver.FeasibleAtSpeed(&mpss.Instance{M: m, Jobs: jobs}, capPerReplica, mpss.WithContext(ctx))
		if err == nil && ok {
			return m
		}
	}
	return max
}

// demandJobs encodes work-seconds of demand as an mpss job set: jobs
// released now, due one window out. Work is chunked below the
// per-replica window capacity — one replica can only absorb cap×window
// work-seconds in a window, so any larger indivisible job would make
// every fleet size infeasible and say nothing.
func demandJobs(work, window, capPerReplica float64) []mpss.Job {
	if work <= 0 || window <= 0 || capPerReplica <= 0 {
		return nil
	}
	chunk := capPerReplica * window
	var jobs []mpss.Job
	id := 1
	for work > 1e-9*chunk {
		w := work
		if w > chunk {
			w = chunk
		}
		jobs = append(jobs, mpss.Job{ID: id, Release: 0, Deadline: window, Work: w})
		id++
		work -= w
	}
	return jobs
}

// AutoscaleTick forces one autoscaler decision outside the timer loop.
// No-op when autoscaling is disabled. Tests and operators drive this
// for deterministic scaling.
func (f *Front) AutoscaleTick(ctx context.Context) {
	if f.as != nil {
		f.as.Tick(ctx)
	}
}
