package cluster

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// This file is the autoscaler's scrape client: a minimal parser for the
// Prometheus text exposition format (version 0.0.4), just enough to
// read the demand signals every replica already publishes on /metrics —
// mpss_server_requests_total, the mpss_server_request_seconds histogram
// sum, mpss_server_queue_depth. Parsing the public scrape surface
// instead of a private side channel means the autoscaler sees exactly
// what an operator's dashboards see.

// scrapeSample is one exposition series: the bare metric name, its raw
// label body (between the braces, "" if none) and the value.
type scrapeSample struct {
	name   string
	labels string
	value  float64
}

// parsePrometheus reads an exposition stream into samples. Comment and
// malformed lines are skipped — the scraper wants the few series it
// knows, not full-format validation.
func parsePrometheus(r io.Reader) ([]scrapeSample, error) {
	var out []scrapeSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		name, labels := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				continue
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		out = append(out, scrapeSample{name: name, labels: labels, value: v})
	}
	return out, sc.Err()
}

// metricSum totals every series of one metric family (summing labeled
// series folds per-endpoint splits back into the aggregate).
func metricSum(samples []scrapeSample, name string) float64 {
	var sum float64
	for _, s := range samples {
		if s.name == name {
			sum += s.value
		}
	}
	return sum
}
