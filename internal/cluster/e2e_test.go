package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mpss"
	"mpss/api"
	"mpss/internal/server"
)

// testCluster is three real servers behind one front: each replica is a
// full internal/server instance (own worker pool, cache, recorder) on
// an httptest listener, wired through a StaticSpawner.
type testCluster struct {
	front    *Front
	servers  []*server.Server
	backends []*httptest.Server
	client   *api.Client
	http     *httptest.Server
}

func newTestCluster(t *testing.T, n int, cfg Config) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := server.New(server.Config{
			Workers:     2,
			ReplicaName: fmt.Sprintf("r%d", i+1),
		})
		ts := httptest.NewServer(srv)
		tc.servers = append(tc.servers, srv)
		tc.backends = append(tc.backends, ts)
		urls[i] = ts.URL
	}
	cfg.Spawner = &StaticSpawner{URLs: urls}
	if cfg.MinReplicas == 0 {
		cfg.MinReplicas = n
	}
	if cfg.MaxReplicas == 0 {
		cfg.MaxReplicas = n
	}
	cfg.ProbeInterval = -1 // tests drive probes explicitly
	front, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.front = front
	tc.http = httptest.NewServer(front)
	tc.client = api.NewClient(tc.http.URL)
	t.Cleanup(func() {
		tc.http.Close()
		front.Shutdown(context.Background())
		for i := range tc.servers {
			tc.backends[i].Close()
			tc.servers[i].Shutdown(context.Background())
		}
	})
	return tc
}

// solveBody builds a distinct optimal request per variant.
func solveBody(variant int) *api.SolveRequest {
	return &api.SolveRequest{
		M: 2,
		Jobs: []mpss.Job{
			{ID: 1, Release: 0, Deadline: 4, Work: 4 + float64(variant)},
			{ID: 2, Release: 1, Deadline: 5, Work: 3},
			{ID: 3, Release: 2, Deadline: 8, Work: 6},
		},
	}
}

// doSolve posts one optimal solve through the front, returning the
// serving replica (X-Mpss-Replica) and status.
func (tc *testCluster) doSolve(t *testing.T, req *api.SolveRequest) (replica string, status int) {
	t.Helper()
	body, _ := json.Marshal(req)
	res, err := tc.client.DoRaw(context.Background(), http.MethodPost, "/v1/solve/optimal", body)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return res.Header.Get(api.HeaderReplica), res.Status
}

// Hash affinity: repeats of an instance land on the replica that
// already solved it, so every repeat is that replica's cache hit.
func TestClusterHashAffinity(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	const distinct = 24

	owners := make(map[int]string)
	for v := 0; v < distinct; v++ {
		rep, status := tc.doSolve(t, solveBody(v))
		if status != http.StatusOK {
			t.Fatalf("variant %d: status %d", v, status)
		}
		if rep == "" {
			t.Fatal("missing X-Mpss-Replica header")
		}
		owners[v] = rep
	}
	for v := 0; v < distinct; v++ {
		rep, status := tc.doSolve(t, solveBody(v))
		if status != http.StatusOK {
			t.Fatalf("repeat %d: status %d", v, status)
		}
		if rep != owners[v] {
			t.Errorf("variant %d moved %s -> %s between passes", v, owners[v], rep)
		}
	}

	var hits, misses int64
	byReplica := map[string]int64{}
	for _, s := range tc.servers {
		hits += s.Recorder().Value("server.cache_hits")
		misses += s.Recorder().Value("server.cache_misses")
		byReplica[s.Config().ReplicaName] = s.Recorder().Value("server.cache_hits")
	}
	if hits != distinct {
		t.Errorf("cluster cache hits = %d, want %d (every repeat a per-replica hit): %v", hits, distinct, byReplica)
	}
	if misses != distinct {
		t.Errorf("cluster cache misses = %d, want %d (one per distinct instance)", misses, distinct)
	}
	// The keys must actually spread: one replica owning everything would
	// vacuously pass the affinity check.
	spread := map[string]bool{}
	for _, rep := range owners {
		spread[rep] = true
	}
	if len(spread) < 2 {
		t.Errorf("all %d keys landed on one replica %v — ring not spreading", distinct, spread)
	}
}

// Killing a replica mid-load must not surface errors: the front walks
// the ring to the next successor and marks the dead member down.
func TestClusterReplicaKillReroutes(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	const variants = 18
	for v := 0; v < variants; v++ {
		if _, status := tc.doSolve(t, solveBody(v)); status != http.StatusOK {
			t.Fatalf("warmup %d: status %d", v, status)
		}
	}

	tc.backends[1].Close() // r2 dies with cached results on board

	for v := 0; v < variants; v++ {
		rep, status := tc.doSolve(t, solveBody(v))
		if status != http.StatusOK {
			t.Fatalf("variant %d after kill: status %d", v, status)
		}
		if rep == "r2" {
			t.Fatalf("variant %d served by the dead replica", v)
		}
	}
	if got := tc.front.Recorder().Value("cluster.retries"); got == 0 {
		t.Error("no reroute retries recorded though a replica died")
	}

	// Two probe sweeps confirm the death (healthy -> suspect -> down).
	tc.front.ProbeAll(context.Background())
	tc.front.ProbeAll(context.Background())
	st, err := tc.client.ClusterStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var r2 *api.ClusterReplica
	for i := range st.Replicas {
		if st.Replicas[i].Name == "r2" {
			r2 = &st.Replicas[i]
		}
	}
	if r2 == nil || r2.State != "down" {
		t.Errorf("r2 state = %+v, want down", r2)
	}
}

// Cross-replica singleflight: K identical concurrent requests through
// the front execute exactly one solve cluster-wide.
func TestClusterSingleflight(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	req := solveBody(0)
	body, _ := json.Marshal(req)

	const K = 8
	var wg sync.WaitGroup
	statuses := make([]int, K)
	bodies := make([][]byte, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := tc.client.DoRaw(context.Background(), http.MethodPost, "/v1/solve/optimal", body)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			statuses[i] = res.Status
			bodies[i] = res.Body
		}(i)
	}
	wg.Wait()

	var solves int64
	for _, s := range tc.servers {
		solves += s.Recorder().Value("server.cache_misses")
	}
	if solves != 1 {
		t.Errorf("cluster executed %d solves for %d identical requests, want exactly 1", solves, K)
	}
	for i := 0; i < K; i++ {
		if statuses[i] != http.StatusOK {
			t.Errorf("request %d: status %d", i, statuses[i])
		}
		if string(bodies[i]) != string(bodies[0]) {
			t.Errorf("request %d body differs from request 0 — replay not bit-identical", i)
		}
	}
}

// The autoscaler end to end over real scrapes: load generates demand,
// a tick scales the fleet up, quiet windows scale it back down.
func TestClusterAutoscalerScalesUpAndDown(t *testing.T) {
	tc := newTestCluster(t, 3, Config{
		MinReplicas: 1,
		MaxReplicas: 3,
		Autoscale: AutoscaleConfig{
			Enabled:           true,
			Interval:          time.Hour,              // loop never fires; ticks are manual
			Window:            100 * time.Millisecond, // demand must clear within this
			WorkersPerReplica: 1,
			TargetUtil:        0.01, // tiny capacity so millisecond solves overload it
			ScaleDownAfter:    2,
		},
	})
	if got := tc.front.activeCount(); got != 1 {
		t.Fatalf("initial replicas = %d, want 1", got)
	}

	// Generate real demand: distinct instances, so every one solves.
	for v := 0; v < 40; v++ {
		if _, status := tc.doSolve(t, solveBody(v)); status != http.StatusOK {
			t.Fatalf("load %d: status %d", v, status)
		}
	}
	tc.front.AutoscaleTick(context.Background())
	scaledTo := tc.front.activeCount()
	if scaledTo <= 1 {
		t.Fatalf("after demand tick: replicas = %d, want > 1", scaledTo)
	}

	// Quiet windows: demand deltas go to zero; after ScaleDownAfter
	// consecutive low decisions the fleet shrinks to the minimum.
	for i := 0; i < 3; i++ {
		tc.front.AutoscaleTick(context.Background())
	}
	deadline := time.Now().Add(5 * time.Second)
	for tc.front.activeCount() != 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond) // drains finish asynchronously
	}
	if got := tc.front.activeCount(); got != 1 {
		t.Fatalf("after quiet ticks: replicas = %d, want 1", got)
	}

	st, err := tc.client.ClusterStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Events) < 2 {
		t.Errorf("scale events = %+v, want at least up + down", st.Events)
	}
	if !st.Autoscaler.Enabled {
		t.Error("autoscaler status not reported enabled")
	}
}

// A session follows its replica: deltas hit the same warm solver, and
// the front answers 404 once the owning replica is gone.
func TestClusterSessionAffinity(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	sess, err := tc.client.SessionCreate(context.Background(), solveBody(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		add := []mpss.Job{{ID: 10 + i, Release: 0, Deadline: 10, Work: 2}}
		if _, err := tc.client.SessionDelta(context.Background(), sess.SessionID, &api.SessionDeltaRequest{AddJobs: add}); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}
	// Exactly one replica saw the session; its solver served every delta.
	withSession := 0
	for _, s := range tc.servers {
		if s.Recorder().Value("server.sessions_active") == 1 {
			withSession++
		}
	}
	if withSession != 1 {
		t.Errorf("replicas with the session = %d, want exactly 1", withSession)
	}
	if err := tc.client.SessionDelete(context.Background(), sess.SessionID); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.SessionPoll(context.Background(), sess.SessionID, 0, 0); err == nil {
		t.Error("poll after delete succeeded, want 404")
	}
}
