// Package cluster scales mpss-served horizontally: a front tier that
// routes the public /v1 API across replicas by consistent hash on the
// canonical request key (api.RequestKey — the same sha256 each replica
// uses as its result-cache key, so routing by it keeps every replica's
// LRU hot), health-checks the replicas, coalesces duplicate concurrent
// solves cluster-wide, and sizes the replica set with the solver
// itself: the autoscaler phrases "how many replicas do we need" as an
// mpss feasibility question — observed solve demand as jobs, replicas
// as processors — and picks the smallest feasible count (DESIGN.md
// §15).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// defaultVnodes is the virtual-node count per member: enough that a
// 2–10 member ring splits the key space within a few percent of evenly,
// small enough that rebuilding on membership change is trivial.
const defaultVnodes = 64

// ring is a consistent-hash ring over replica names. Immutable once
// built — the front swaps whole rings on membership change, so readers
// never lock.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // distinct members
}

type ringPoint struct {
	hash   uint64
	member string
}

// ringHash maps a string onto the ring's key space. sha256-based so
// member names and (already-hex-sha256) request keys mix equally well.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds a ring with vnodes virtual nodes per member
// (defaultVnodes if vnodes <= 0). An empty member list yields an empty
// ring whose pick returns nil.
func newRing(members []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{n: len(members)}
	r.points = make([]ringPoint, 0, len(members)*vnodes)
	var buf [8]byte
	for _, m := range members {
		for i := 0; i < vnodes; i++ {
			binary.LittleEndian.PutUint64(buf[:], uint64(i))
			r.points = append(r.points, ringPoint{
				hash:   ringHash(m + "#" + string(buf[:])),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// owner returns the member owning key: the first virtual node clockwise
// from the key's hash ("" on an empty ring).
func (r *ring) owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].member
}

// pick returns up to n distinct members in preference order for key:
// the owner first, then each next distinct member clockwise. The walk
// is the reroute order when the owner is down.
func (r *ring) pick(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > r.n {
		n = r.n
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, at := 0, r.search(key); i < len(r.points) && len(out) < n; i++ {
		m := r.points[(at+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// search locates the first virtual node at or clockwise of key's hash.
func (r *ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// members returns the distinct member count.
func (r *ring) members() int {
	if r == nil {
		return 0
	}
	return r.n
}
