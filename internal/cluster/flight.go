package cluster

import "sync"

// proxied is one replica answer held by the front: the upstream status,
// the raw JSON body, and which replica produced it. The cluster
// singleflight replays these to followers; like the in-replica cache,
// only deterministic domain answers (200, 422) qualify.
type proxied struct {
	status  int
	body    []byte
	replica string
	cached  string // upstream X-Mpss-Cache header, if any
}

// cacheable reports whether a proxied response may be replayed to
// other requests with the same key — the same rule as the replica
// result cache: deterministic domain answers only.
func (p proxied) cacheable() bool {
	return p.status == 200 || p.status == 422
}

// flight is one cluster-wide in-flight solve; followers wait on done.
// A zero resp (status 0) means the leader aborted without an answer.
type flight struct {
	done chan struct{}
	resp proxied
}

// flightGroup coalesces duplicate concurrent solves across the whole
// cluster, keyed on the canonical request key. Same leader/follower
// protocol as the per-replica group (internal/server singleflight.go),
// lifted one tier: K identical requests arriving at the front execute
// ONE solve on one replica, regardless of how many replicas exist.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the flight for key, creating it if absent; the creator
// is the leader (second return true) and must eventually call finish.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's response and retires the key.
func (g *flightGroup) finish(key string, f *flight, resp proxied) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.resp = resp
	close(f.done)
}
