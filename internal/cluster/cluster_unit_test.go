package cluster

import (
	"context"
	"strings"
	"sync"
	"testing"

	"mpss"
)

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	lead, isLeader := g.join("k")
	if !isLeader {
		t.Fatal("first join must lead")
	}
	const followers = 5
	var wg, joined sync.WaitGroup
	results := make([]proxied, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		joined.Add(1)
		go func(i int) {
			defer wg.Done()
			f, leader := g.join("k")
			joined.Done()
			if leader {
				t.Error("follower became leader while flight open")
			}
			<-f.done
			results[i] = f.resp
		}(i)
	}
	want := proxied{status: 200, body: []byte(`{"x":1}`), replica: "r1"}
	joined.Wait() // every follower is on the flight before it lands
	g.finish("k", lead, want)
	wg.Wait()
	for i, got := range results {
		if got.status != want.status || string(got.body) != string(want.body) {
			t.Fatalf("follower %d got %+v, want %+v", i, got, want)
		}
	}
	// The key is retired: the next join leads a fresh flight.
	if _, leader := g.join("k"); !leader {
		t.Fatal("join after finish must lead")
	}
}

func TestParsePrometheus(t *testing.T) {
	text := `# HELP whatever
# TYPE mpss_server_requests_total counter
mpss_server_requests_total{endpoint="optimal"} 10
mpss_server_requests_total{endpoint="oa"} 5
mpss_server_request_seconds_sum 1.25
mpss_server_request_seconds_count 15
mpss_server_queue_depth 3
garbage line without value x
`
	samples, err := parsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := metricSum(samples, "mpss_server_requests_total"); got != 15 {
		t.Errorf("requests sum = %v, want 15 (labeled series folded)", got)
	}
	if got := metricSum(samples, "mpss_server_request_seconds_sum"); got != 1.25 {
		t.Errorf("seconds sum = %v, want 1.25", got)
	}
	if got := metricSum(samples, "mpss_server_queue_depth"); got != 3 {
		t.Errorf("queue depth = %v, want 3", got)
	}
	if got := metricSum(samples, "mpss_absent_metric"); got != 0 {
		t.Errorf("absent metric = %v, want 0", got)
	}
}

func TestDemandJobsChunking(t *testing.T) {
	jobs := demandJobs(1.0, 2.0, 0.1) // chunk = 0.2 work-seconds
	if len(jobs) != 5 {
		t.Fatalf("got %d jobs, want 5", len(jobs))
	}
	total := 0.0
	for _, j := range jobs {
		if j.Work > 0.2+1e-12 {
			t.Errorf("job %d work %v exceeds chunk 0.2", j.ID, j.Work)
		}
		if j.Release != 0 || j.Deadline != 2.0 {
			t.Errorf("job %d window [%v,%v], want [0,2]", j.ID, j.Release, j.Deadline)
		}
		total += j.Work
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("total work %v, want 1.0", total)
	}
	if demandJobs(0, 1, 1) != nil {
		t.Error("zero demand must yield no jobs")
	}
}

// The autoscaler's core question: smallest m at which the demand
// instance is feasible under the per-replica cap. The demand here is
// exact: W work-seconds in a window of length T under cap c needs
// ceil(W/(c*T)) processors.
func TestDesiredReplicasTracksDemand(t *testing.T) {
	f := &Front{cfg: Config{MinReplicas: 1, MaxReplicas: 8}}
	a := newAutoscaler(f, AutoscaleConfig{Enabled: true})
	window, capPer := 2.0, 0.5 // each replica absorbs 1.0 work-seconds per window
	for _, tc := range []struct {
		demand float64
		want   int
	}{
		{0.0, 1}, {0.5, 1}, {1.0, 1}, {1.5, 2}, {2.9, 3}, {7.5, 8}, {100, 8},
	} {
		jobs := demandJobs(tc.demand, window, capPer)
		got := a.desiredReplicas(context.Background(), jobs, capPer)
		if got != tc.want {
			t.Errorf("demand %v: desired = %d, want %d", tc.demand, got, tc.want)
		}
	}
}

// Feasibility must agree with the solver's own verdict on a structured
// instance, not just the aggregate-work bound.
func TestDesiredReplicasUsesSolver(t *testing.T) {
	f := &Front{cfg: Config{MinReplicas: 1, MaxReplicas: 4}}
	a := newAutoscaler(f, AutoscaleConfig{Enabled: true})
	// Two jobs each filling a full replica-window: aggregate would fit on
	// one processor at speed 2, but the cap forbids it.
	jobs := []mpss.Job{
		{ID: 1, Release: 0, Deadline: 1, Work: 1},
		{ID: 2, Release: 0, Deadline: 1, Work: 1},
	}
	if got := a.desiredReplicas(context.Background(), jobs, 1.0); got != 2 {
		t.Errorf("two window-filling jobs: desired = %d, want 2", got)
	}
}
