// Package export serializes experiment results and schedules to CSV and
// JSON for downstream analysis (spreadsheets, plotting scripts). It works
// on any homogeneous slice of flat structs via reflection, so every
// experiment row type of internal/bench exports without per-type code.
package export

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strconv"
)

// CSV writes a slice of flat structs as CSV: one header row of field
// names, then one row per element. Supported field kinds: bool, ints,
// floats, strings. Nested or slice-valued fields are rejected.
func CSV(w io.Writer, rows interface{}) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("export: want a slice, got %T", rows)
	}
	if v.Len() == 0 {
		return errors.New("export: empty slice")
	}
	elemT := v.Type().Elem()
	if elemT.Kind() == reflect.Ptr {
		elemT = elemT.Elem()
	}
	if elemT.Kind() != reflect.Struct {
		return fmt.Errorf("export: want a slice of structs, got %s", elemT)
	}

	cw := csv.NewWriter(w)
	header := make([]string, 0, elemT.NumField())
	for i := 0; i < elemT.NumField(); i++ {
		f := elemT.Field(i)
		if !f.IsExported() {
			continue
		}
		if err := checkKind(f.Type.Kind()); err != nil {
			return fmt.Errorf("export: field %s: %w", f.Name, err)
		}
		header = append(header, f.Name)
	}
	if len(header) == 0 {
		return errors.New("export: no exported fields")
	}
	if err := cw.Write(header); err != nil {
		return err
	}

	for r := 0; r < v.Len(); r++ {
		ev := v.Index(r)
		if ev.Kind() == reflect.Ptr {
			ev = ev.Elem()
		}
		rec := make([]string, 0, len(header))
		for i := 0; i < elemT.NumField(); i++ {
			if !elemT.Field(i).IsExported() {
				continue
			}
			rec = append(rec, format(ev.Field(i)))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func checkKind(k reflect.Kind) error {
	switch k {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64, reflect.String:
		return nil
	default:
		return fmt.Errorf("unsupported kind %s", k)
	}
}

func format(v reflect.Value) string {
	switch v.Kind() {
	case reflect.Bool:
		return strconv.FormatBool(v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(v.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return strconv.FormatUint(v.Uint(), 10)
	case reflect.Float32, reflect.Float64:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case reflect.String:
		return v.String()
	default:
		return fmt.Sprintf("%v", v.Interface())
	}
}

// JSON writes rows as indented JSON.
func JSON(w io.Writer, rows interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
