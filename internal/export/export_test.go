package export

import (
	"bytes"
	"strings"
	"testing"
)

type row struct {
	Name   string
	N      int
	Ratio  float64
	OK     bool
	hidden int // unexported: skipped
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []row{
		{Name: "a", N: 1, Ratio: 1.5, OK: true, hidden: 9},
		{Name: "b", N: 2, Ratio: 0.25, OK: false},
	}
	if err := CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "Name,N,Ratio,OK" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "a,1,1.5,true" || lines[2] != "b,2,0.25,false" {
		t.Errorf("rows = %q, %q", lines[1], lines[2])
	}
}

func TestCSVPointers(t *testing.T) {
	var buf bytes.Buffer
	if err := CSV(&buf, []*row{{Name: "x", N: 3}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x,3") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := CSV(&buf, 42); err == nil {
		t.Error("non-slice accepted")
	}
	if err := CSV(&buf, []row{}); err == nil {
		t.Error("empty slice accepted")
	}
	if err := CSV(&buf, []int{1}); err == nil {
		t.Error("slice of non-structs accepted")
	}
	type nested struct{ Inner []int }
	if err := CSV(&buf, []nested{{}}); err == nil {
		t.Error("slice-valued field accepted")
	}
	type private struct{ x int }
	if err := CSV(&buf, []private{{x: 1}}); err == nil {
		t.Error("struct with no exported fields accepted")
	}
}

func TestJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := JSON(&buf, []row{{Name: "j", N: 7}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"Name": "j"`) {
		t.Errorf("output = %q", buf.String())
	}
}
