package opt

import (
	"fmt"
	"math"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/mpsserr"
	"mpss/internal/obs"
)

// FeasibleAtSpeed reports whether the instance can be completed when every
// processor is capped at maximum speed s. This is the speed-bounded
// setting of the related work discussed in the paper ([3,7]): with
// migration, feasibility at cap s reduces to a single maximum-flow test
// on the network G(all jobs, full machine, s) — source edges w_k/s, job
// to interval edges |I_j|, interval to sink edges m|I_j| — because any
// schedule may slow down to exactly s wherever it runs faster.
func FeasibleAtSpeed(in *job.Instance, s float64) (bool, error) {
	return FeasibleAtSpeedObserved(in, s, nil)
}

// FeasibleAtSpeedObserved is FeasibleAtSpeed with each probe counted in
// the recorder ("opt.feasibility_probes", plus the flow-solver op
// counters). A nil recorder makes it identical to FeasibleAtSpeed.
func FeasibleAtSpeedObserved(in *job.Instance, s float64, rec *obs.Recorder) (bool, error) {
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return false, fmt.Errorf("opt: invalid speed cap %v: %w", s, mpsserr.ErrInvalidInstance)
	}
	if err := validateForSolve(in); err != nil {
		return false, err
	}
	rec.Add("opt.feasibility_probes", 1)
	ivs := job.Partition(in.Jobs)

	node := 1 + in.N()
	ivNode := make([]int, len(ivs))
	for jx := range ivs {
		ivNode[jx] = node
		node++
	}
	sink := node
	g := flow.AcquireGraph(node + 1)
	defer flow.ReleaseGraph(g)

	var demand float64
	for k, j := range in.Jobs {
		need := j.Work / s
		if need > j.Span()*(1+flow.DefaultTolerance) {
			// The job alone cannot finish inside its own window at cap s.
			return false, nil
		}
		g.AddEdge(0, 1+k, need)
		demand += need
		for jx, iv := range ivs {
			if j.ActiveIn(iv.Start, iv.End) {
				g.AddEdge(1+k, ivNode[jx], iv.Len())
			}
		}
	}
	for jx, iv := range ivs {
		g.AddEdge(ivNode[jx], sink, float64(in.M)*iv.Len())
	}

	stop := rec.Time("opt.flow_solve_seconds")
	value := g.MaxFlow(0, sink)
	stop()
	publishDinic(rec, nil, g.Ops())
	return value >= demand-flow.SolveTolerance*math.Max(1, demand), nil
}

// MinFeasibleCap returns (a tight numerical approximation of) the
// smallest processor speed cap at which the instance remains feasible —
// the "minimum peak speed" of the instance. The value equals the highest
// phase speed s_1 of the unbounded optimum, which provides the initial
// bracket; the function then bisects FeasibleAtSpeed to within rel
// relative tolerance (default flow.SolveTolerance when rel <= 0).
func MinFeasibleCap(in *job.Instance, rel float64) (float64, error) {
	return MinFeasibleCapObserved(in, rel, nil)
}

// MinFeasibleCapObserved is MinFeasibleCap with every bisection probe
// counted in the recorder.
func MinFeasibleCapObserved(in *job.Instance, rel float64, rec *obs.Recorder) (float64, error) {
	if rel <= 0 {
		rel = flow.SolveTolerance
	}
	res, err := Schedule(in, WithRecorder(rec))
	if err != nil {
		return 0, err
	}
	hi := res.Phases[0].Speed * (1 + flow.SolveTolerance)
	ok, err := FeasibleAtSpeedObserved(in, hi, rec)
	if err != nil {
		return 0, err
	}
	if !ok {
		// The unbounded optimum's top speed must be feasible; tolerate
		// rounding by nudging upward.
		hi *= 1 + flow.DiffTolerance
		if ok, err = FeasibleAtSpeedObserved(in, hi, rec); err != nil || !ok {
			return 0, fmt.Errorf("opt: optimum speed %v not feasible as cap: %w", hi, mpsserr.ErrNumeric)
		}
	}
	lo := 0.0
	for hi-lo > rel*hi {
		mid := (lo + hi) / 2
		if mid <= 0 {
			break
		}
		ok, err := FeasibleAtSpeedObserved(in, mid, rec)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
