package opt

import (
	"context"
	"fmt"
	"math"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/mpsserr"
	"mpss/internal/obs"
	"mpss/internal/pool"
)

// FeasibleAtSpeed reports whether the instance can be completed when every
// processor is capped at maximum speed s. This is the speed-bounded
// setting of the related work discussed in the paper ([3,7]): with
// migration, feasibility at cap s reduces to a single maximum-flow test
// on the network G(all jobs, full machine, s) — source edges w_k/s, job
// to interval edges |I_j|, interval to sink edges m|I_j| — because any
// schedule may slow down to exactly s wherever it runs faster.
func FeasibleAtSpeed(in *job.Instance, s float64) (bool, error) {
	return FeasibleAtSpeedObserved(in, s, nil)
}

// FeasibleAtSpeedObserved is FeasibleAtSpeed with each probe counted in
// the recorder ("opt.feasibility_probes", plus the flow-solver op
// counters). A nil recorder makes it identical to FeasibleAtSpeed.
func FeasibleAtSpeedObserved(in *job.Instance, s float64, rec *obs.Recorder) (bool, error) {
	return FeasibleAtSpeedCtx(nil, in, s, rec)
}

// FeasibleAtSpeedCtx is FeasibleAtSpeedObserved with a cancellation
// context checked before the flow solve (nil disables the check).
func FeasibleAtSpeedCtx(ctx context.Context, in *job.Instance, s float64, rec *obs.Recorder) (bool, error) {
	if err := validateForSolve(in); err != nil {
		return false, err
	}
	if cerr := canceled(ctx, 0, 0); cerr != nil {
		return false, cerr
	}
	return feasibleProbe(in, job.Partition(in.Jobs), s, rec)
}

// FeasibleAtSpeedBatch evaluates many candidate caps concurrently, each
// probe on its own pooled graph, with up to workers goroutines (<= 0
// selects GOMAXPROCS). The result slice is index-aligned with caps. One
// interval partition is shared across all probes, so a k-probe batch
// does strictly less setup work than k FeasibleAtSpeed calls.
func FeasibleAtSpeedBatch(in *job.Instance, caps []float64, workers int, rec *obs.Recorder) ([]bool, error) {
	return FeasibleAtSpeedBatchCtx(nil, in, caps, workers, rec)
}

// FeasibleAtSpeedBatchCtx is FeasibleAtSpeedBatch with a cancellation
// context checked before each probe (nil disables the checks).
func FeasibleAtSpeedBatchCtx(ctx context.Context, in *job.Instance, caps []float64, workers int, rec *obs.Recorder) ([]bool, error) {
	if err := validateForSolve(in); err != nil {
		return nil, err
	}
	if len(caps) == 0 {
		return nil, nil
	}
	ivs := job.Partition(in.Jobs)
	return pool.Map(len(caps), workers, func(i int) (bool, error) {
		if cerr := canceled(ctx, 0, i); cerr != nil {
			return false, cerr
		}
		return feasibleProbe(in, ivs, caps[i], rec)
	})
}

// feasibleProbe is one feasibility max-flow test at cap s on a pooled
// graph. Safe for concurrent invocation (each call acquires its own
// graph; the recorder is concurrency-safe).
func feasibleProbe(in *job.Instance, ivs []job.Interval, s float64, rec *obs.Recorder) (bool, error) {
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return false, fmt.Errorf("opt: invalid speed cap %v: %w", s, mpsserr.ErrInvalidInstance)
	}
	rec.Add("opt.feasibility_probes", 1)

	node := 1 + in.N()
	ivNode := make([]int, len(ivs))
	for jx := range ivs {
		ivNode[jx] = node
		node++
	}
	sink := node
	g := flow.AcquireGraph(node + 1)
	defer flow.ReleaseGraph(g)

	var demand float64
	for k, j := range in.Jobs {
		need := j.Work / s
		if need > j.Span()*(1+flow.DefaultTolerance) {
			// The job alone cannot finish inside its own window at cap s.
			return false, nil
		}
		g.AddEdge(0, 1+k, need)
		demand += need
		for jx, iv := range ivs {
			if j.ActiveIn(iv.Start, iv.End) {
				g.AddEdge(1+k, ivNode[jx], iv.Len())
			}
		}
	}
	for jx, iv := range ivs {
		g.AddEdge(ivNode[jx], sink, float64(in.M)*iv.Len())
	}

	stop := rec.Time("opt.flow_solve_seconds")
	value := g.MaxFlow(0, sink)
	stop()
	publishDinic(rec, nil, g.Ops())
	return value >= demand-flow.SolveTolerance*math.Max(1, demand), nil
}

// CapOption configures MinFeasibleCap / MinFeasibleCapObserved.
type CapOption func(*capConfig)

type capConfig struct {
	lo, hi      float64
	haveBracket bool
	probes      int
	noApprox    bool
	noContract  bool
	ctx         context.Context
}

// WithBracket supplies a known bracket [lo, hi] with hi feasible and lo
// infeasible (lo may be 0), skipping the solve that otherwise derives
// the upper bound from the unbounded optimum's top phase speed.
func WithBracket(lo, hi float64) CapOption {
	return func(c *capConfig) { c.lo, c.hi, c.haveBracket = lo, hi, true }
}

// WithProbeParallelism evaluates k candidate caps per wave concurrently
// (speculative k-section search): the bracket shrinks by a factor of
// k+1 per wave instead of 2 per probe, at the price of probes whose
// answers the wave outcome makes redundant. k <= 1 is plain bisection.
func WithProbeParallelism(k int) CapOption {
	return func(c *capConfig) { c.probes = k }
}

// WithCapContext makes the cap search cancelable: ctx is polled before
// the bracketing solve and between probe waves, and a canceled context
// returns an error wrapping mpsserr.ErrCanceled. Nil disables the
// checks (the default).
func WithCapContext(ctx context.Context) CapOption {
	return func(c *capConfig) { c.ctx = ctx }
}

// WithApproxFirst toggles the two-tier probe dispatch (default on):
// while the bracket is wider than approxCapWidth relative, feasibility
// probes run on the packed network — contracted intervals, pre-packed
// jobs, early-exit max-flow (see approx.go) — and the final refinement
// waves run on the raw network. The probes of the approximate tier sit
// far from the feasibility boundary, so the returned cap matches the
// all-raw search's bit for bit (the differential tests pin this).
func WithApproxFirst(on bool) CapOption {
	return func(c *capConfig) { c.noApprox = !on }
}

// WithCapContraction toggles interval contraction inside the cap search
// (default on): the packed probe tier and the first-phase bracketing
// solve both shrink their networks with it. Turning contraction off
// also disables the packed tier, since its graphs are contracted by
// construction.
func WithCapContraction(on bool) CapOption {
	return func(c *capConfig) { c.noContract = !on }
}

// MinFeasibleCap returns (a tight numerical approximation of) the
// smallest processor speed cap at which the instance remains feasible —
// the "minimum peak speed" of the instance. The value equals the highest
// phase speed s_1 of the unbounded optimum, which provides the initial
// bracket; the function then shrinks the bracket with feasibility probes
// to within rel relative tolerance (default flow.SolveTolerance when
// rel <= 0).
func MinFeasibleCap(in *job.Instance, rel float64, opts ...CapOption) (float64, error) {
	return MinFeasibleCapObserved(in, rel, nil, opts...)
}

// MinFeasibleCapObserved is MinFeasibleCap with every probe counted in
// the recorder ("opt.probe_waves" counts bracket-shrinking waves).
func MinFeasibleCapObserved(in *job.Instance, rel float64, rec *obs.Recorder, opts ...CapOption) (float64, error) {
	if rel <= 0 {
		rel = flow.SolveTolerance
	}
	var cfg capConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.probes < 1 {
		cfg.probes = 1
	}
	if err := validateForSolve(in); err != nil {
		return 0, err
	}

	var lo, hi float64
	if cfg.haveBracket {
		if !(cfg.lo >= 0) || !(cfg.hi > cfg.lo) || math.IsInf(cfg.hi, 0) {
			return 0, fmt.Errorf("opt: invalid bracket [%v, %v]: %w", cfg.lo, cfg.hi, mpsserr.ErrInvalidInstance)
		}
		lo, hi = cfg.lo, cfg.hi
		ok, err := FeasibleAtSpeedObserved(in, hi, rec)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("opt: bracket upper bound %v is not feasible: %w", hi, mpsserr.ErrInvalidInstance)
		}
	} else {
		top, err := bracketSpeed(cfg.ctx, in, cfg.probes, !cfg.noContract, rec)
		if err != nil {
			if !retryable(err) {
				return 0, err
			}
			// The first-phase fast path failed numerically: fall back to
			// the full solver, which brings its own fallback ladder.
			rec.Add("opt.bracket_fallbacks", 1)
			res, ferr := Schedule(in, WithRecorder(rec), WithContext(cfg.ctx), WithContraction(!cfg.noContract))
			if ferr != nil {
				return 0, ferr
			}
			top = res.Phases[0].Speed
		}
		hi = top * (1 + flow.SolveTolerance)
		ok, err := FeasibleAtSpeedObserved(in, hi, rec)
		if err != nil {
			return 0, err
		}
		if !ok {
			// The unbounded optimum's top speed must be feasible; tolerate
			// rounding by nudging upward.
			hi *= 1 + flow.DiffTolerance
			if ok, err = FeasibleAtSpeedObserved(in, hi, rec); err != nil || !ok {
				return 0, fmt.Errorf("opt: optimum speed %v not feasible as cap: %w", hi, mpsserr.ErrNumeric)
			}
		}
		lo = 0
	}

	// Speculative k-section: each wave probes k interior caps at once
	// (concurrently for k > 1) and keeps the leftmost feasible one as the
	// new upper bound. Feasibility is monotone in the cap, so the
	// infeasible probe just below it tightens the lower bound. k = 1 is
	// classic bisection.
	//
	// Two-tier dispatch: wide-bracket waves probe on the packed network
	// (approx.go), the final near-boundary waves on the raw one. The
	// per-wave probe points depend only on the bracket, never on which
	// tier answered, so both dispatch modes walk the same cap sequence.
	ivs := job.Partition(in.Jobs)
	var pk *packedProbe
	if !cfg.noApprox && !cfg.noContract && hi-lo > approxCapWidth*hi {
		pk = newPackedProbe(in, ivs, rec)
	}
	k := cfg.probes
	speeds := make([]float64, k)
	for hi-lo > rel*hi {
		if cerr := canceled(cfg.ctx, 0, 0); cerr != nil {
			rec.Add("opt.canceled", 1)
			return 0, cerr
		}
		for i := 1; i <= k; i++ {
			speeds[i-1] = lo + (hi-lo)*float64(i)/float64(k+1)
		}
		if speeds[0] <= 0 {
			break
		}
		rec.Add("opt.probe_waves", 1)
		probe := func(i int) (bool, error) { return feasibleProbe(in, ivs, speeds[i], rec) }
		if pk != nil && hi-lo > approxCapWidth*hi {
			rec.Add("opt.approx_waves", 1)
			probe = func(i int) (bool, error) { return pk.feasible(speeds[i]) }
		}
		var feas []bool
		var err error
		if k == 1 {
			ok, perr := probe(0)
			feas, err = []bool{ok}, perr
		} else {
			feas, err = pool.Map(k, k, probe)
		}
		if err != nil {
			return 0, err
		}
		first := -1
		for i, ok := range feas {
			if ok {
				first = i
				break
			}
		}
		if first < 0 {
			lo = speeds[k-1]
		} else {
			hi = speeds[first]
			if first > 0 {
				lo = speeds[first-1]
			}
		}
	}
	return hi, nil
}

// bracketSpeed computes the unbounded optimum's top phase speed s_1 —
// the natural MinFeasibleCap bracket — by running only the *first* phase
// of the offline algorithm on the float engine. The previous
// implementation ran a full Schedule just to read Phases[0].Speed,
// double-solving every later phase; this path stops at the first
// acceptance and skips schedule emission entirely. Shares the solver
// pool and panic-containment conventions of Solver.Schedule.
func bracketSpeed(ctx context.Context, in *job.Instance, par int, contract bool, rec *obs.Recorder) (top float64, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		rec.Add("opt.panics_recovered", 1)
		if iv, ok := r.(*flow.InvariantViolation); ok && iv.Numeric {
			err = fmt.Errorf("opt: bracket solve: %s: %w", iv.Msg, mpsserr.ErrNumeric)
		} else {
			err = fmt.Errorf("opt: bracket solve panic: %v: %w", r, mpsserr.ErrInternal)
		}
	}()
	rec.Add("opt.bracket_solves", 1)

	s := solverPool.Get()
	defer solverPool.Put(s)
	e := &s.fe
	e.tol = flow.SolveTolerance
	e.cold = false
	e.contract = contract
	e.par = par

	ivs := job.Partition(in.Jobs)
	used := make([]int, len(ivs))
	cand := make([]int, in.N())
	for i := range cand {
		cand[i] = i
	}
	var st Stats
	e.prepare(in, ivs, &st, rec)
	span := rec.Root().StartSpan("bracket phase")
	defer span.End()

	degenerate := e.beginPhase(used, cand, span)
	for {
		if cerr := canceled(ctx, 1, 0); cerr != nil {
			rec.Add("opt.canceled", 1)
			return 0, cerr
		}
		rec.Add("opt.rounds", 1)
		if degenerate {
			var empty bool
			degenerate, empty = e.dropLeastWork()
			if empty {
				return 0, e.emptyErr()
			}
			continue
		}
		if e.solveRound() {
			return e.speed, nil
		}
		var empty bool
		degenerate, empty = e.removeExcluded()
		if empty {
			return 0, e.emptyErr()
		}
	}
}
