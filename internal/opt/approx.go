package opt

import (
	"fmt"
	"math"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/mpsserr"
	"mpss/internal/obs"
)

// Two-tier cap search, tier 1: packed feasibility probes.
//
// A feasibility probe at cap s solves G(all jobs, full machine, s),
// whose shape — every node and edge except the source capacities — is
// the same for every probe of one cap search. packedProbe precomputes a
// shrunken version of that shape once and reuses it across probes:
//
//   - interval contraction: consecutive atomic intervals with identical
//     active job sets are merged (every interval has the full machine,
//     so the processor budgets are trivially equal — the active-set
//     condition alone makes runs flow-equivalent, see contract.go).
//     Because job windows are contiguous, every job is active in all of
//     a run or none of it, so job edges carry whole run lengths.
//
//   - pre-packing: a job whose window equals exactly one super-interval
//     can only ever run there; it needs no node. Its demand w_k/s is
//     subtracted from that super-interval's sink capacity and added
//     back to the flow value. The max-flow value identity
//     raw = packed + sum(prepacked demands) holds whenever each
//     prepacked demand fits its own window (checked per job) and the
//     packed sink capacities stay non-negative (when a super-interval's
//     pre-packed demand alone exceeds m times its length the instance
//     is infeasible at s outright — those jobs can run nowhere else):
//     one direction routes the prepacked demands on top of a packed max
//     flow; the other places each prepacked job node on its
//     super-interval's side of a packed min cut, growing the cut by
//     exactly the pre-packed demand.
//
//   - early exit: a probe only asks whether the max flow reaches the
//     demand, so the solve uses flow.MaxFlowAtLeast and skips the final
//     proof pass (and any further augmentation) once the target is met.
//
// Packed probes answer the same feasibility question as raw ones up to
// float rounding, so MinFeasibleCap uses them only while the bracket is
// still wide (tier 1, width > approxCapWidth relative) — where the
// probed caps sit far from the feasibility boundary and rounding cannot
// flip an answer — and finishes with raw probes (tier 2). The probe
// POINTS of each wave depend only on the bracket, so a search that
// never gets a coarse answer wrong returns the bit-identical cap the
// pure raw search does; the differential tests pin that.

// approxCapWidth is the relative bracket width above which the cap
// search runs its probes on the packed network (tier 1). Below it the
// probes sit near the feasibility boundary and the search switches to
// the raw network (tier 2).
const approxCapWidth = 1e-2

// packedProbe is the precomputed packed probe shape of one cap search.
// feasible is safe for concurrent calls (per-call scratch is local; the
// shared precomputed state is read-only after newPackedProbe).
type packedProbe struct {
	in  *job.Instance
	rec *obs.Recorder

	supLen  []float64 // per super-interval: summed member length
	span    []float64 // per job: window length
	jobSups [][]int32 // per free job: super-intervals it spans (nil for packed jobs)
	packSup []int32   // per job: its pre-pack super-interval, -1 when free
	nSup    int
	nFree   int // jobs that keep a graph node
	nodes   int // graph shape, constant across probes
	edges   int
}

// newPackedProbe computes the packed shape for the instance and its
// interval partition, recording the contraction counters once.
func newPackedProbe(in *job.Instance, ivs []job.Interval, rec *obs.Recorder) *packedProbe {
	p := &packedProbe{in: in, rec: rec}

	// Per-job activity ranges. Windows are contiguous, so the range of
	// intervals a job is active in is jx0..jx1 inclusive.
	n := in.N()
	first := make([]int32, n)
	count := make([]int32, n)
	active := make([][]int32, len(ivs)) // per interval: active job indices, ascending
	for k, j := range in.Jobs {
		first[k] = -1
		for jx, iv := range ivs {
			if j.ActiveIn(iv.Start, iv.End) {
				if first[k] < 0 {
					first[k] = int32(jx)
				}
				count[k]++
				active[jx] = append(active[jx], int32(k))
			}
		}
	}

	// Contract runs of identical active sets.
	supOf := make([]int32, len(ivs))
	var supCount []int32
	for jx := range ivs {
		if p.nSup > 0 && equalInt32(active[jx], active[jx-1]) {
			supOf[jx] = int32(p.nSup - 1)
			p.supLen[p.nSup-1] += ivs[jx].Len()
			supCount[p.nSup-1]++
			continue
		}
		supOf[jx] = int32(p.nSup)
		p.supLen = append(p.supLen, ivs[jx].Len())
		supCount = append(supCount, 1)
		p.nSup++
	}

	// Classify jobs: pre-packed (window equals one whole super-interval)
	// or free (keeps a node, edges to each spanned super-interval).
	p.span = make([]float64, n)
	p.packSup = make([]int32, n)
	p.jobSups = make([][]int32, n)
	p.edges = p.nSup // sink edges
	for k, j := range in.Jobs {
		p.span[k] = j.Span()
		s0, s1 := supOf[first[k]], supOf[first[k]+count[k]-1]
		if s0 == s1 && count[k] == supCount[s0] {
			p.packSup[k] = s0
			continue
		}
		p.packSup[k] = -1
		for s := s0; s <= s1; s++ {
			p.jobSups[k] = append(p.jobSups[k], s)
		}
		p.nFree++
		p.edges += 1 + len(p.jobSups[k])
	}
	p.nodes = 1 + p.nFree + p.nSup + 1

	rec.Add("opt.intervals_raw", int64(len(ivs)))
	rec.Add("opt.intervals_contracted", int64(len(ivs)-p.nSup))
	rec.Add("opt.jobs_prepacked", int64(n-p.nFree))
	return p
}

// feasible is the packed analogue of feasibleProbe: same question, same
// tolerance conventions, solved on the packed network with early exit.
func (p *packedProbe) feasible(s float64) (bool, error) {
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return false, fmt.Errorf("opt: invalid speed cap %v: %w", s, mpsserr.ErrInvalidInstance)
	}
	p.rec.Add("opt.feasibility_probes", 1)
	p.rec.Add("opt.approx_probes", 1)

	need := make([]float64, p.in.N())
	packDemand := make([]float64, p.nSup)
	var demand, packed float64
	for k, j := range p.in.Jobs {
		need[k] = j.Work / s
		if need[k] > p.span[k]*(1+flow.DefaultTolerance) {
			// The job alone cannot finish inside its own window at cap s.
			return false, nil
		}
		demand += need[k]
		if sp := p.packSup[k]; sp >= 0 {
			packDemand[sp] += need[k]
			packed += need[k]
		}
	}
	m := float64(p.in.M)
	for sx, d := range packDemand {
		if d > m*p.supLen[sx] {
			// The jobs pinned to this super-interval can run nowhere
			// else, and together they overflow it.
			return false, nil
		}
	}

	g := flow.AcquireGraph(p.nodes)
	defer flow.ReleaseGraph(g)
	g.Grow(p.nodes, p.edges)
	supBase := 1 + p.nFree
	sink := p.nodes - 1
	node := 1
	for k := range p.in.Jobs {
		if p.packSup[k] >= 0 {
			continue
		}
		g.AddEdge(0, node, need[k])
		for _, sx := range p.jobSups[k] {
			g.AddEdge(node, supBase+int(sx), p.supLen[sx])
		}
		node++
	}
	for sx := 0; sx < p.nSup; sx++ {
		g.AddEdge(supBase+sx, sink, m*p.supLen[sx]-packDemand[sx])
	}

	// Raw acceptance test: value_raw >= demand - slack, with value_raw =
	// value_packed + packed. Early-exit at the equivalent packed target.
	target := demand - packed - flow.SolveTolerance*math.Max(1, demand)
	stop := p.rec.Time("opt.flow_solve_seconds")
	value := g.MaxFlowAtLeast(0, sink, target)
	stop()
	publishDinic(p.rec, nil, g.Ops())
	return value >= target, nil
}
