package opt

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"mpss/internal/job"
	"mpss/internal/pool"
	"mpss/internal/schedule"
)

// Windowed decomposition.
//
// The flow network of the paper spans every atomic interval of the whole
// instance, and the phase algorithm's round loop starts each phase with
// ALL remaining jobs as candidates — so the solve cost grows roughly
// quadratically with n. But an instance often separates in time: at a
// time t that no job window strictly crosses (no job with Release < t <
// Deadline), the instance splits into the jobs entirely before t and the
// jobs entirely after, and no phase of the optimal schedule can move
// work across t. Solving the two sides independently and concatenating
// their schedules yields the optimum of the whole instance — the flow
// network is block-diagonal across every such cut, which is why the
// result is not merely equal in energy but bit-identical segment for
// segment (see the equivalence argument at mergeComponents).
//
// One caveat bounds the bit-exactness claim: the float engines break
// phase-density ties by rounding, and an adversarial instance can put
// two candidate critical sets within one ulp of each other, where the
// monolithic solve's larger float sums round the comparison one way and
// a component's shorter sums round it the other (the decomposed answer
// is then the one agreeing with exact arithmetic — larger sums are what
// accumulated the extra rounding). The differential suite pins
// bit-equality on every tested distribution; the fuzz corpus seed
// decompose-ulp-tie preserves the known counterexample, where the
// results differ by one ulp in one phase speed.
//
// components performs one linear sweep over the sorted window endpoints:
// an open-window counter is incremented at each release and decremented
// at each deadline (deadlines ordered before releases at equal times, so
// touching windows [a,t) [t,b) still separate); every return to zero
// with jobs left after it is a cut. Cost O(n log n), negligible against
// any solve.
//
// The win is structural, not just constant-factor: with c components of
// ~n/c jobs, the round count drops from O(n·phases) to c independent
// O((n/c)·phases_i) solves — the cost grows with the largest component,
// not with n. The components are also independent by construction, so
// they fan out over the pool.Map worker pool, each worker drawing a
// pooled Solver arena (solverPool) exactly like the package-level
// Schedule does.

// componentRanges returns the separable components of jobs as index
// groups, preserving input order inside each group. A single group means
// the instance does not separate.
func componentRanges(jobs []job.Job) [][]int {
	n := len(jobs)
	if n == 0 {
		return nil
	}
	// Sweep events: releases open a window, deadlines close one. At equal
	// times deadlines sort first, so a boundary where one window ends
	// exactly where another begins is a valid cut.
	type event struct {
		t    float64
		open bool
	}
	evs := make([]event, 0, 2*n)
	for _, j := range jobs {
		evs = append(evs, event{j.Release, true}, event{j.Deadline, false})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return !evs[a].open && evs[b].open
	})
	// Collect cut times: points where the open-window count returns to
	// zero with more windows still to open.
	var cuts []float64
	open := 0
	for i, ev := range evs {
		if ev.open {
			open++
		} else {
			open--
		}
		if open == 0 && i+1 < len(evs) {
			cuts = append(cuts, ev.t)
		}
	}
	if len(cuts) == 0 {
		return [][]int{allIndices(n)}
	}
	// Assign each job to the component of its window: the component index
	// is the number of cuts at or before its release time. Input order is
	// preserved inside each group, so a component's candidate order — and
	// with it every sum and every flow-network layout of its solve —
	// matches the relative order the monolithic solve would use.
	groups := make([][]int, len(cuts)+1)
	for k, j := range jobs {
		c := sort.SearchFloat64s(cuts, j.Release)
		if c < len(cuts) && cuts[c] == j.Release {
			c++
		}
		groups[c] = append(groups[c], k)
	}
	// Degenerate coincident events can leave empty groups; drop them.
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// scheduleDecomposed solves each component independently — fanned over
// workers pool.Map workers, each drawing a pooled Solver arena — and
// merges the component results into one Result indistinguishable from a
// monolithic solve. Each component's solve goes through the package
// Schedule entry, so the fallback ladder (float-warm → float-cold →
// exact) applies per component: a numeric failure in one component
// falls back for that component only, the others keep their fast path.
func scheduleDecomposed(in *job.Instance, comps [][]int, cfg *config, opts []Option) (*Result, error) {
	maxJobs := 0
	for _, c := range comps {
		if len(c) > maxJobs {
			maxJobs = len(c)
		}
	}
	cfg.rec.Add("opt.components", int64(len(comps)))
	cfg.rec.Add("opt.decompose_cuts", int64(len(comps)-1))
	cfg.rec.Add("opt.component_jobs_max", int64(maxJobs))

	// Sub-solves re-apply the caller's options, then pin the two knobs
	// the decomposed layer owns: no nested decomposition (the components
	// cannot separate further at their own cuts, and the sweep is pure
	// overhead), and sequential flow solves (the parallelism budget is
	// spent at component granularity).
	subOpts := append(slices.Clone(opts), WithDecomposition(false), WithParallelism(1))
	workers := max(1, cfg.par)

	results, err := pool.Map(len(comps), workers, func(i int) (*Result, error) {
		sub := &job.Instance{M: in.M, Jobs: make([]job.Job, 0, len(comps[i]))}
		for _, k := range comps[i] {
			sub.Jobs = append(sub.Jobs, in.Jobs[k])
		}
		res, err := Schedule(sub, subOpts...)
		if err != nil {
			return nil, fmt.Errorf("component %d (%d jobs): %w", i, len(comps[i]), err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return mergeComponents(in, comps, results), nil
}

// mergeComponents concatenates component results into the Result a
// monolithic solve of in would return.
//
// Equivalence: inside a component's time range the full event-point
// partition and the component's own partition contain the identical
// atomic intervals (no other component has an event point there), and
// the full partition's extra gap intervals between components carry no
// active job, hence m_j = 0 and no flow. A monolithic phase's flow
// network restricted to one component's jobs is therefore exactly the
// network the component solve builds — same vertex layout, same edges
// in the same order, same capacities — so Dinic's augmentation sequence
// and the emitted per-interval times match bit for bit. Phases merge by
// strictly decreasing speed; when two components produce bit-equal
// phase speeds the monolithic solve would have accepted their union as
// one phase, so equal-speed runs are coalesced: job IDs interleave in
// instance input order (the monolithic candidate order) and the speed
// is recomputed with the monolithic summation order — total work over
// instance-ordered jobs divided by total time over time-ordered
// intervals — which reproduces the monolithic quotient exactly whenever
// the additions are exact (always on the exact engine, where equal
// speeds are equal rationals).
func mergeComponents(in *job.Instance, comps [][]int, results []*Result) *Result {
	ivs := job.Partition(in.Jobs)
	// Full-partition index of an interval start time: component intervals
	// are a subset of the full ones, found by binary search on Start.
	ivIndex := func(start float64) int {
		lo, hi := 0, len(ivs)
		for lo < hi {
			mid := (lo + hi) / 2
			if ivs[mid].Start < start {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	idxOfID := make(map[int]int, in.N())
	for k, j := range in.Jobs {
		idxOfID[j.ID] = k
	}

	merged := &Result{Schedule: schedule.New(in.M), Intervals: ivs}
	type compPhase struct {
		comp  int
		phase int
		speed float64
	}
	var heads []compPhase
	for c, res := range results {
		merged.Stats.Rounds += res.Stats.Rounds
		if res.Stats.FlowVertices > merged.Stats.FlowVertices {
			merged.Stats.FlowVertices = res.Stats.FlowVertices
		}
		merged.Schedule.Extend(res.Schedule)
		for p, ph := range res.Phases {
			heads = append(heads, compPhase{comp: c, phase: p, speed: ph.Speed})
		}
	}
	// Global phase order: strictly decreasing speed, components in time
	// order on ties (ties are then coalesced below). Within one component
	// speeds already decrease, so this is a stable k-way merge.
	sort.SliceStable(heads, func(a, b int) bool {
		if heads[a].speed != heads[b].speed {
			return heads[a].speed > heads[b].speed
		}
		return heads[a].comp < heads[b].comp
	})

	scatter := func(dst []int, comp int, procs []int) []int {
		if dst == nil {
			dst = make([]int, len(ivs))
		}
		civs := results[comp].Intervals
		for jx, m := range procs {
			if m != 0 {
				dst[ivIndex(civs[jx].Start)] = m
			}
		}
		return dst
	}

	for i := 0; i < len(heads); {
		run := i + 1
		for run < len(heads) && heads[run].speed == heads[i].speed {
			run++
		}
		ph := Phase{Speed: heads[i].speed}
		var procs []int
		if run == i+1 {
			h := heads[i]
			src := results[h.comp].Phases[h.phase]
			ph.JobIDs = src.JobIDs
			procs = scatter(nil, h.comp, src.Procs)
		} else {
			// Equal-speed coalesce: one monolithic phase. Procs supports
			// are disjoint (the components do not share intervals), job
			// IDs sort back into instance input order, and the speed is
			// re-derived the way the engine computes it for the union
			// candidate set.
			for _, h := range heads[i:run] {
				src := results[h.comp].Phases[h.phase]
				ph.JobIDs = append(ph.JobIDs, src.JobIDs...)
				procs = scatter(procs, h.comp, src.Procs)
			}
			slices.SortFunc(ph.JobIDs, func(a, b int) int {
				return idxOfID[a] - idxOfID[b]
			})
			member := make(map[int]bool, len(ph.JobIDs))
			for _, id := range ph.JobIDs {
				member[id] = true
			}
			var work, time float64
			for _, j := range in.Jobs {
				if member[j.ID] {
					work += j.Work
				}
			}
			for jx, iv := range ivs {
				if procs[jx] > 0 {
					time += float64(procs[jx]) * iv.Len()
				}
			}
			if time > 0 && !math.IsInf(work/time, 0) {
				ph.Speed = work / time
			}
		}
		ph.Procs = procs
		merged.Phases = append(merged.Phases, ph)
		i = run
	}
	merged.Stats.Phases = len(merged.Phases)
	merged.Schedule.Normalize()
	return merged
}
