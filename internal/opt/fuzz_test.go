package opt

import (
	"math/rand"
	"testing"

	"mpss/internal/job"
	"mpss/internal/power"
	"mpss/internal/yds"
)

// FuzzSchedule drives the offline optimum with fuzzer-chosen instance
// shapes and checks the full invariant set: feasibility, phase structure,
// and agreement with YDS at m = 1.
func FuzzSchedule(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(1))
	f.Add(int64(2), uint8(10), uint8(2))
	f.Add(int64(3), uint8(3), uint8(4))
	f.Add(int64(-9), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, rawN, rawM uint8) {
		n := 1 + int(rawN%12)
		m := 1 + int(rawM%4)
		rng := rand.New(rand.NewSource(seed))
		jobs := make([]job.Job, n)
		for i := range jobs {
			r := rng.Float64() * 20
			jobs[i] = job.Job{
				ID:       i + 1,
				Release:  r,
				Deadline: r + 0.01 + rng.Float64()*10,
				Work:     0.01 + rng.Float64()*5,
			}
		}
		in, err := job.NewInstance(m, jobs)
		if err != nil {
			t.Fatalf("generator produced invalid instance: %v", err)
		}
		res, err := Schedule(in)
		if err != nil {
			t.Fatalf("Schedule failed: %v", err)
		}
		if err := res.Schedule.Verify(in); err != nil {
			t.Fatalf("infeasible schedule: %v", err)
		}
		if len(res.Phases) > n {
			t.Fatalf("%d phases for %d jobs", len(res.Phases), n)
		}
		for i := 1; i < len(res.Phases); i++ {
			if res.Phases[i].Speed >= res.Phases[i-1].Speed+1e-9 {
				t.Fatalf("phase speeds not decreasing: %v then %v",
					res.Phases[i-1].Speed, res.Phases[i].Speed)
			}
		}
		if m == 1 {
			p := power.MustAlpha(2)
			want, err := yds.Energy(in.Jobs, p)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Schedule.Energy(p)
			if diff := got - want; diff > 1e-6*(1+want) || diff < -1e-6*(1+want) {
				t.Fatalf("m=1 energy %v != YDS %v", got, want)
			}
		}
	})
}
