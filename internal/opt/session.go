package opt

import (
	"context"
	"fmt"
	"math"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/mpsserr"
	"mpss/internal/obs"
)

// This file implements streaming sessions: a Session owns a mutable job
// set and re-solves it after add-job / remove-job / retune-cap deltas,
// keeping the first phase's flow network alive between resolves so a
// delta re-solve warm-starts from the previous accepted flow instead of
// rebuilding the graph.
//
// The contract is the same bit-exactness guarantee the warm round loop
// already provides within one solve, extended across solves: a session
// resolve returns exactly what a one-shot Schedule of the current job
// set returns. The mechanism:
//
//   - The persistent network (sessNet) is reusable only while the event
//     point partition of the live jobs equals the one it was built on
//     and only jobs have been removed since. A removed job's edges are
//     drained and zero-capacity remnants stay behind — Dinic never
//     traverses a zero-residual edge, and the remnants never reorder the
//     traversal of live edges, so the canonical from-zero solve at
//     accept reproduces a cold rebuild's augmentation sequence exactly.
//   - Adding a job invalidates the network. Appending a vertex would
//     place its adjacency entries after edges a cold build inserts
//     before them, changing Dinic's deterministic traversal order and
//     with it the last-ulp flow values — a rebuild is the only layout
//     that preserves the guarantee.
//   - At attach, every capacity is re-set to the same absolute
//     expression the cold build uses (work/speed, m_j*|I_j|), never
//     rescaled multiplicatively (float64 multiplication is not
//     associative). Round decisions are flow-invariant (the max-flow
//     value is unique and CoReachable is the same for every maximum
//     flow), so the warm-reconciled rounds accept, reject and remove
//     exactly as cold rounds do; the accepted flow is then
//     canonicalized from zero before emission.
//   - Only a resolve's first phase runs on the persistent network, and
//     contraction is disabled for it so the network keeps the raw
//     interval shape. Later phases (and any mid-phase degenerate
//     rebuild) fall back to the engine-owned arena; falling off the
//     persistent network invalidates it.
//
// Exact sessions keep no persistent network: every delta re-solves the
// full instance through the exact engine on the session's warm arena,
// which is trivially identical to the one-shot exact path.

// sessNet is the persistent first-phase network of a Session. Jobs are
// identified by slot: the position in the candidate set the network was
// built from. slotOf maps the session's current live job index to its
// slot; removed slots are marked dead and their edges stay behind at
// zero capacity.
type sessNet struct {
	g     *flow.Graph
	valid bool

	nSlots int
	slotOf []int32 // live job index -> slot
	dead   []bool  // per slot: removed from the session
	zeroed []bool  // per slot: edges zeroed by a phase's rejection rounds

	jobNode   []int32       // per slot
	srcEdges  []flow.EdgeID // per slot
	ivNode    []int32       // per interval
	sinkEdges []flow.EdgeID // per interval
	midSlot   []int32
	midIv     []int32
	midID     []flow.EdgeID
	sink      int
	ivs       []job.Interval // partition the network was built on
}

// beginSessionPhase runs the solve's first phase on the persistent
// network, building it when invalid and attach-reconciling it when
// reusable. Contraction is disabled for the session phase so the
// network keeps the raw interval shape across resolves; supValid
// suppresses the per-phase partition recompute for any later build
// inside this phase.
func (e *floatEngine) beginSessionPhase() {
	e.con.on = false
	e.supValid = true
	if e.sess.valid {
		e.attachSessionNet()
	} else {
		e.buildSessionNet()
	}
}

// buildSessionNet constructs the first-phase network into the session's
// persistent graph, via the same layout and edge-order routines as
// buildRaw, and records the slot bookkeeping attach needs later.
func (e *floatEngine) buildSessionNet() {
	sn := e.sess
	node := e.rawLayout()
	if sn.g == nil {
		sn.g = flow.NewGraph(node + 1)
	} else {
		sn.g.Reset(node + 1)
	}
	e.g = sn.g
	e.rawEdges()
	n := len(e.cand0)
	sn.nSlots = n
	sn.slotOf = growInt32s(sn.slotOf, n)
	sn.dead = growBools(sn.dead, n)
	sn.zeroed = growBools(sn.zeroed, n)
	for i := 0; i < n; i++ {
		sn.slotOf[i] = int32(i)
		sn.dead[i] = false
		sn.zeroed[i] = false
	}
	sn.jobNode = append(sn.jobNode[:0], e.jobNode[:n]...)
	sn.srcEdges = append(sn.srcEdges[:0], e.srcEdges[:n]...)
	sn.ivNode = append(sn.ivNode[:0], e.ivNode...)
	sn.sinkEdges = append(sn.sinkEdges[:0], e.sinkEdges...)
	sn.midSlot = append(sn.midSlot[:0], e.midPos...)
	sn.midIv = append(sn.midIv[:0], e.midIv...)
	sn.midID = append(sn.midID[:0], e.midID...)
	sn.sink = e.sink
	sn.ivs = append(sn.ivs[:0], e.ivs...)
	sn.valid = true
	e.rec.Add("opt.graph_rebuilds", 1)
	e.rec.Add("opt.session_net_builds", 1)
	e.prevOps = flow.DinicOps{}
	e.warmRound = false
	e.needBuild = false
	e.sessPhase = true
}

// attachSessionNet points the engine at the persistent network and
// reconciles it with the current candidate set: translate the per-slot
// arrays to live positions, restore the capacities of slots a previous
// phase's rounds zeroed, and re-set every live capacity to the absolute
// expression of the new conjectured speed. The subsequent MaxFlow
// re-augments the surviving flow (a warm round, not a cold solve).
func (e *floatEngine) attachSessionNet() {
	sn := e.sess
	n := len(e.cand0)
	e.g = sn.g
	e.sink = sn.sink
	e.posOfSlot = growInt32s(e.posOfSlot, sn.nSlots)
	for s := range e.posOfSlot[:sn.nSlots] {
		e.posOfSlot[s] = -1
	}
	e.jobNode = growInt32s(e.jobNode, n)
	e.srcEdges = growEdgeIDs(e.srcEdges, n)
	for pos := 0; pos < n; pos++ {
		slot := sn.slotOf[pos]
		e.posOfSlot[slot] = int32(pos)
		e.jobNode[pos] = sn.jobNode[slot]
		e.srcEdges[pos] = sn.srcEdges[slot]
	}
	e.ivNode = append(e.ivNode[:0], sn.ivNode...)
	e.sinkEdges = append(e.sinkEdges[:0], sn.sinkEdges...)
	// Translate the mid-edge arrays to live candidate positions. Dead
	// slots keep their zero-capacity edges under pos -1; zeroed live
	// slots (phase-removed last resolve, still in the session) get their
	// interval-edge capacities restored.
	e.midPos = e.midPos[:0]
	e.midIv = e.midIv[:0]
	e.midID = e.midID[:0]
	for i, slot := range sn.midSlot {
		pos := e.posOfSlot[slot]
		e.midPos = append(e.midPos, pos)
		e.midIv = append(e.midIv, sn.midIv[i])
		e.midID = append(e.midID, sn.midID[i])
		if pos >= 0 && sn.zeroed[slot] {
			e.g.SetCapacity(sn.midID[i], e.ivLen[sn.midIv[i]])
		}
	}
	for pos, k := range e.cand0 {
		sn.zeroed[sn.slotOf[pos]] = false
		e.g.SetCapacity(e.srcEdges[pos], e.in.Jobs[k].Work/e.speed)
	}
	for jx := range e.ivs {
		if e.ivNode[jx] >= 0 {
			e.g.SetCapacity(e.sinkEdges[jx], float64(e.mj[jx])*e.ivLen[jx])
		}
	}
	e.rec.Add("opt.session_attaches", 1)
	e.prevOps = e.g.Ops()
	e.warmRound = true
	e.needBuild = false
	e.sessPhase = true
}

// capFeasNet is the persistent speed-cap feasibility network of a
// Session, mirroring feasibleProbe's shape (source -> job at work/cap,
// job -> interval at |I|, interval -> sink at M*|I|). A cap retune
// re-sets the source capacities absolutely and re-augments warm.
type capFeasNet struct {
	g       *flow.Graph
	valid   bool
	slotOf  []int32
	dead    []bool
	src     []flow.EdgeID
	sink    int
	ivs     []job.Interval
	prevOps flow.DinicOps
}

// Session is a mutable solving session: a job set revised by deltas,
// re-solved on demand with warm continuation across resolves. Sessions
// are created from a Solver and borrow its arenas during Resolve; like
// the Solver itself, a Session is not safe for concurrent use, and a
// Solver must not run another solve while one of its sessions is
// mid-Resolve (interleaved calls between resolves are fine — each
// resolve re-attaches its own state).
type Session struct {
	solver *Solver
	cfg    config

	m    int
	jobs []job.Job
	ids  map[int]int // job ID -> index in jobs
	cap  float64     // 0 = no cap tracking

	net    sessNet
	capNet capFeasNet
}

// SessionResult is one resolve's outcome.
type SessionResult struct {
	Res *Result
	// Incremental reports that the resolve reused the persistent
	// first-phase network (a warm delta solve, not a rebuild).
	Incremental bool
	// Cap echoes the session's speed cap; CapFeasible is the
	// feasibility verdict at that cap, valid only when Cap > 0.
	Cap         float64
	CapFeasible bool
}

// NewSession starts a session over the instance. Options become the
// session defaults for every resolve: Exact() pins the exact engine,
// WithRecorder/WithParallelism/WithTolerance/WithContraction behave as
// in Schedule. Unlike the round loop, sessions address jobs by ID
// (RemoveJob), so duplicate IDs are rejected here.
func (s *Solver) NewSession(in *job.Instance, opts ...Option) (*Session, error) {
	cfg := config{tol: flow.SolveTolerance}
	for _, o := range opts {
		o(&cfg)
	}
	if err := validateForSolve(in); err != nil {
		return nil, err
	}
	ids := make(map[int]int, len(in.Jobs))
	for i, j := range in.Jobs {
		if prev, dup := ids[j.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate job id %d (positions %d and %d)",
				mpsserr.ErrInvalidInstance, j.ID, prev, i)
		}
		ids[j.ID] = i
	}
	return &Session{
		solver: s,
		cfg:    cfg,
		m:      in.M,
		jobs:   append([]job.Job(nil), in.Jobs...),
		ids:    ids,
	}, nil
}

// N returns the current number of jobs in the session.
func (ss *Session) N() int { return len(ss.jobs) }

// M returns the processor count.
func (ss *Session) M() int { return ss.m }

// Cap returns the session's speed cap (0 = none).
func (ss *Session) Cap() float64 { return ss.cap }

// Jobs returns a copy of the current job set.
func (ss *Session) Jobs() []job.Job { return append([]job.Job(nil), ss.jobs...) }

// Has reports whether the session holds a job with the given ID.
func (ss *Session) Has(id int) bool {
	_, ok := ss.ids[id]
	return ok
}

// AddJob appends a job to the session. Structural change: a new vertex
// cannot be spliced into the persistent networks without disordering
// the adjacency relative to a cold build, so both are invalidated and
// the next resolve rebuilds.
func (ss *Session) AddJob(j job.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if _, dup := ss.ids[j.ID]; dup {
		return fmt.Errorf("%w: session already has job id %d", mpsserr.ErrInvalidInstance, j.ID)
	}
	ss.ids[j.ID] = len(ss.jobs)
	ss.jobs = append(ss.jobs, j)
	ss.net.valid = false
	ss.capNet.valid = false
	return nil
}

// RemoveJob removes the job with the given ID, draining its flow from
// both persistent networks in place (the incremental mutation path).
// The zero-capacity remnant edges stay behind; see the package comment
// for why they do not disturb later warm solves.
func (ss *Session) RemoveJob(id int) error {
	i, ok := ss.ids[id]
	if !ok {
		return fmt.Errorf("%w: session has no job id %d", mpsserr.ErrInvalidInstance, id)
	}
	if ss.net.valid {
		slot := ss.net.slotOf[i]
		if !ss.net.zeroed[slot] {
			// Phase-removed slots were already zeroed by the rounds.
			ss.net.g.RemoveJobEdge(ss.net.srcEdges[slot])
		}
		ss.net.dead[slot] = true
		ss.net.slotOf = append(ss.net.slotOf[:i], ss.net.slotOf[i+1:]...)
	}
	if ss.capNet.valid {
		slot := ss.capNet.slotOf[i]
		ss.capNet.g.RemoveJobEdge(ss.capNet.src[slot])
		ss.capNet.dead[slot] = true
		ss.capNet.slotOf = append(ss.capNet.slotOf[:i], ss.capNet.slotOf[i+1:]...)
	}
	ss.jobs = append(ss.jobs[:i], ss.jobs[i+1:]...)
	delete(ss.ids, id)
	for k := i; k < len(ss.jobs); k++ {
		ss.ids[ss.jobs[k].ID] = k
	}
	return nil
}

// SetCap retunes the session's speed cap; 0 clears it. The feasibility
// verdict at the cap is recomputed on the next Resolve, reusing the
// persistent cap network when only the source capacities changed.
func (ss *Session) SetCap(c float64) error {
	if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return fmt.Errorf("opt: invalid speed cap %v: %w", c, mpsserr.ErrInvalidInstance)
	}
	ss.cap = c
	return nil
}

// Close releases the persistent networks. The session may keep being
// used; the next resolve rebuilds.
func (ss *Session) Close() {
	ss.net = sessNet{}
	ss.capNet = capFeasNet{}
}

// Resolve solves the session's current job set. The result is
// bit-identical to a one-shot Schedule of the same instance with the
// session's options; Incremental reports whether the warm persistent
// network carried the first phase. An error leaves the session usable —
// the persistent network is invalidated and the next resolve rebuilds.
func (ss *Session) Resolve(ctx context.Context) (*SessionResult, error) {
	if ctx == nil {
		ctx = ss.cfg.ctx
	}
	in := &job.Instance{M: ss.m, Jobs: ss.jobs}
	if err := validateForSolve(in); err != nil {
		return nil, err
	}
	rec, span := ss.cfg.rec, ss.cfg.span
	if span == nil {
		span = rec.Root()
	}
	if rec == nil {
		rec = span.Recorder()
	}
	rec.Add("opt.session_resolves", 1)
	out := &SessionResult{Cap: ss.cap}
	var res *Result
	var err error
	if ss.cfg.exact || ss.cfg.cold {
		// Exact rational resolves (and explicit cold-start sessions)
		// re-solve the full instance through the ordinary path on the
		// session's warm arena; it IS the one-shot path.
		res, err = ss.solver.Schedule(in, ss.scheduleOpts(ctx)...)
	} else {
		res, err = ss.resolveFloat(ctx, in, rec, span, out)
	}
	if err != nil {
		ss.net.valid = false
		return nil, err
	}
	out.Res = res
	if ss.cap > 0 {
		feasible, ferr := ss.capFeasible(ctx, rec)
		if ferr != nil {
			return nil, ferr
		}
		out.CapFeasible = feasible
	}
	return out, nil
}

// scheduleOpts translates the session defaults into Schedule options.
func (ss *Session) scheduleOpts(ctx context.Context) []Option {
	opts := []Option{
		WithRecorder(ss.cfg.rec), UnderSpan(ss.cfg.span), WithContext(ctx),
		WithTolerance(ss.cfg.tol), WithContraction(!ss.cfg.noContract),
		WithParallelism(ss.cfg.par),
	}
	if ss.cfg.exact {
		opts = append(opts, Exact())
	}
	if ss.cfg.cold {
		opts = append(opts, ColdStart())
	}
	return opts
}

// resolveFloat runs the float engine with the persistent network
// attached. On a retryable failure it falls back to the full Schedule
// ladder (plain warm, cold, exact) without session attachment.
func (ss *Session) resolveFloat(ctx context.Context, in *job.Instance, rec *obs.Recorder, span *obs.Span, out *SessionResult) (*Result, error) {
	if ss.net.valid && !sameIntervals(job.Partition(ss.jobs), ss.net.ivs) {
		// The deltas changed the event-point partition: the persistent
		// interval layout no longer matches, rebuild.
		ss.net.valid = false
	}
	warm := ss.net.valid
	fe := &ss.solver.fe
	fe.tol = ss.cfg.tol
	fe.cold = false
	fe.contract = !ss.cfg.noContract
	fe.par = ss.cfg.par
	fe.sess = &ss.net
	res, err := runPhases(ctx, in, fe, rec, span)
	fe.sess = nil
	fe.sessPhase = false
	if err == nil {
		out.Incremental = warm && ss.net.valid
		return res, nil
	}
	ss.net.valid = false
	if !retryable(err) {
		return nil, err
	}
	rec.Add("opt.session_fallbacks", 1)
	return ss.solver.Schedule(in,
		WithRecorder(rec), UnderSpan(span), WithContext(ctx), WithTolerance(ss.cfg.tol),
		WithContraction(!ss.cfg.noContract), WithParallelism(ss.cfg.par))
}

// capFeasible answers FeasibleAtSpeed for the session's cap, with the
// same verdict semantics as feasibleProbe, reusing the persistent cap
// network when the partition is unchanged (a cap retune touches only
// the source capacities).
func (ss *Session) capFeasible(ctx context.Context, rec *obs.Recorder) (bool, error) {
	s := ss.cap
	if cerr := canceled(ctx, 0, 0); cerr != nil {
		return false, cerr
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return false, fmt.Errorf("opt: invalid speed cap %v: %w", s, mpsserr.ErrInvalidInstance)
	}
	rec.Add("opt.feasibility_probes", 1)
	// feasibleProbe's per-job fast reject, in the same job order.
	var demand float64
	for _, j := range ss.jobs {
		need := j.Work / s
		if need > j.Span()*(1+flow.DefaultTolerance) {
			return false, nil
		}
		demand += need
	}
	ivs := job.Partition(ss.jobs)
	cn := &ss.capNet
	if cn.valid && !sameIntervals(ivs, cn.ivs) {
		cn.valid = false
	}
	var value float64
	if !cn.valid {
		ss.buildCapNet(ivs)
		rec.Add("opt.session_capnet_builds", 1)
		stop := rec.Time("opt.flow_solve_seconds")
		value = cn.g.MaxFlow(0, cn.sink)
		stop()
	} else {
		for i, j := range ss.jobs {
			// Absolute re-set, not a multiplicative rescale: repeated
			// retunes through a scale factor would drift from the
			// work/cap a cold probe computes.
			cn.g.SetCapacity(cn.src[cn.slotOf[i]], j.Work/s)
		}
		rec.Add("opt.session_capnet_reuses", 1)
		rec.Add("flow.warm_hits", 1)
		stop := rec.Time("opt.flow_solve_seconds")
		cn.g.MaxFlow(0, cn.sink)
		stop()
		for i := range ss.jobs {
			value += cn.g.Flow(cn.src[cn.slotOf[i]])
		}
	}
	ops := cn.g.Ops()
	publishDinic(rec, nil, ops.Sub(cn.prevOps))
	cn.prevOps = ops
	return value >= demand-flow.SolveTolerance*math.Max(1, demand), nil
}

// buildCapNet constructs the cap feasibility network in feasibleProbe's
// exact shape and edge order.
func (ss *Session) buildCapNet(ivs []job.Interval) {
	cn := &ss.capNet
	n := len(ss.jobs)
	node := 1 + n
	ivNode := make([]int, len(ivs))
	for jx := range ivs {
		ivNode[jx] = node
		node++
	}
	cn.sink = node
	if cn.g == nil {
		cn.g = flow.NewGraph(node + 1)
	} else {
		cn.g.Reset(node + 1)
	}
	cn.src = growEdgeIDs(cn.src, n)
	cn.slotOf = growInt32s(cn.slotOf, n)
	cn.dead = growBools(cn.dead, n)
	for i, j := range ss.jobs {
		cn.slotOf[i] = int32(i)
		cn.dead[i] = false
		cn.src[i] = cn.g.AddEdge(0, 1+i, j.Work/ss.cap)
		for jx, iv := range ivs {
			if j.ActiveIn(iv.Start, iv.End) {
				cn.g.AddEdge(1+i, ivNode[jx], iv.Len())
			}
		}
	}
	for jx, iv := range ivs {
		cn.g.AddEdge(ivNode[jx], cn.sink, float64(ss.m)*iv.Len())
	}
	cn.ivs = append(cn.ivs[:0], ivs...)
	cn.prevOps = flow.DinicOps{}
	cn.valid = true
}

// sameIntervals reports bitwise equality of two partitions; the
// persistent networks key their reuse condition on it.
func sameIntervals(a, b []job.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End {
			return false
		}
	}
	return true
}
