package opt

import (
	"errors"
	"testing"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/mpsserr"
	"mpss/internal/obs"
)

func fallbackInstance(t *testing.T) *job.Instance {
	t.Helper()
	return mustInstance(t, 2, []job.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 8},
		{ID: 2, Release: 1, Deadline: 5, Work: 2},
		{ID: 3, Release: 0, Deadline: 2, Work: 6},
	})
}

// TestFallbackExactRescues forces a flow invariant violation on every
// float-engine round and checks the ladder walks cold → exact, the exact
// engine produces a verified schedule, and the fallback counters fire —
// the ISSUE's "forced internal invariant violation" acceptance test.
func TestFallbackExactRescues(t *testing.T) {
	in := fallbackInstance(t)
	testHookRound = func(exact bool) {
		if !exact {
			panic(&flow.InvariantViolation{Numeric: true, Msg: "injected: drain failed to converge"})
		}
	}
	defer func() { testHookRound = nil }()

	rec := obs.New()
	res, err := Schedule(in, WithRecorder(rec))
	if err != nil {
		t.Fatalf("exact fallback should have rescued the solve, got %v", err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatalf("rescued schedule infeasible: %v", err)
	}
	if got := rec.Value("opt.fallback_cold"); got != 1 {
		t.Errorf("opt.fallback_cold = %d, want 1", got)
	}
	if got := rec.Value("opt.fallback_exact"); got != 1 {
		t.Errorf("opt.fallback_exact = %d, want 1", got)
	}
	// One float attempt warm, one cold: two contained panics.
	if got := rec.Value("opt.panics_recovered"); got != 2 {
		t.Errorf("opt.panics_recovered = %d, want 2", got)
	}
}

// TestFallbackExhausted panics on every round of every engine: the caller
// must see a typed error — never a crash — and the ladder must still have
// tried (and counted) each rung.
func TestFallbackExhausted(t *testing.T) {
	in := fallbackInstance(t)
	testHookRound = func(bool) {
		panic(&flow.InvariantViolation{Numeric: true, Msg: "injected: always fails"})
	}
	defer func() { testHookRound = nil }()

	rec := obs.New()
	res, err := Schedule(in, WithRecorder(rec))
	if err == nil {
		t.Fatal("want an error when every engine fails")
	}
	if res != nil {
		t.Errorf("want nil result with error, got %+v", res)
	}
	if !errors.Is(err, mpsserr.ErrNumeric) {
		t.Errorf("err = %v, want ErrNumeric", err)
	}
	if got := rec.Value("opt.fallback_cold"); got != 1 {
		t.Errorf("opt.fallback_cold = %d, want 1", got)
	}
	if got := rec.Value("opt.fallback_exact"); got != 1 {
		t.Errorf("opt.fallback_exact = %d, want 1", got)
	}
	if got := rec.Value("opt.panics_recovered"); got != 3 {
		t.Errorf("opt.panics_recovered = %d, want 3", got)
	}
}

// TestFallbackNonNumericPanicContained checks that an arbitrary
// (non-InvariantViolation) panic surfaces as ErrInternal — still retried
// by the ladder — and that phase/round context lands in the message.
func TestFallbackNonNumericPanicContained(t *testing.T) {
	in := fallbackInstance(t)
	testHookRound = func(bool) { panic("injected: slice index out of range") }
	defer func() { testHookRound = nil }()

	_, err := Schedule(in)
	if err == nil {
		t.Fatal("want an error")
	}
	if !errors.Is(err, mpsserr.ErrInternal) {
		t.Errorf("err = %v, want ErrInternal", err)
	}
}

// TestExactPathNoLadder: an explicit Exact() run has no deeper rung to
// fall back to, so an injected violation must surface immediately as a
// typed error with no fallback counters.
func TestExactPathNoLadder(t *testing.T) {
	in := fallbackInstance(t)
	testHookRound = func(exact bool) {
		if exact {
			panic(&flow.InvariantViolation{Numeric: false, Msg: "injected: exact invariant"})
		}
	}
	defer func() { testHookRound = nil }()

	rec := obs.New()
	_, err := Schedule(in, Exact(), WithRecorder(rec))
	if !errors.Is(err, mpsserr.ErrInternal) {
		t.Errorf("err = %v, want ErrInternal", err)
	}
	if got := rec.Value("opt.fallback_cold") + rec.Value("opt.fallback_exact"); got != 0 {
		t.Errorf("fallback counters = %d, want 0 on the explicit exact path", got)
	}
}

// TestFallbackColdRescues: a violation only on the warm path (removals >
// 0 never happens cold on round one) — simulated by failing just the
// first float attempt — is rescued by the cold rung without reaching
// exact.
func TestFallbackColdRescues(t *testing.T) {
	in := fallbackInstance(t)
	calls := 0
	testHookRound = func(exact bool) {
		calls++
		if calls == 1 {
			panic(&flow.InvariantViolation{Numeric: true, Msg: "injected: warm-only failure"})
		}
	}
	defer func() { testHookRound = nil }()

	rec := obs.New()
	res, err := Schedule(in, WithRecorder(rec))
	if err != nil {
		t.Fatalf("cold fallback should have rescued the solve, got %v", err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatalf("rescued schedule infeasible: %v", err)
	}
	if got := rec.Value("opt.fallback_cold"); got != 1 {
		t.Errorf("opt.fallback_cold = %d, want 1", got)
	}
	if got := rec.Value("opt.fallback_exact"); got != 0 {
		t.Errorf("opt.fallback_exact = %d, want 0", got)
	}
}

// TestValidateForSolve covers the solver-boundary input check directly.
func TestValidateForSolve(t *testing.T) {
	cases := []struct {
		name string
		in   *job.Instance
	}{
		{"nil instance", nil},
		{"no processors", &job.Instance{M: 0, Jobs: []job.Job{{ID: 1, Release: 0, Deadline: 1, Work: 1}}}},
		{"empty", &job.Instance{M: 1}},
		{"bad job", &job.Instance{M: 1, Jobs: []job.Job{{ID: 1, Release: 2, Deadline: 1, Work: 1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Schedule(tc.in)
			if !errors.Is(err, mpsserr.ErrInvalidInstance) {
				t.Errorf("err = %v, want ErrInvalidInstance", err)
			}
			if res != nil {
				t.Errorf("want nil result, got %+v", res)
			}
		})
	}
}
