package opt

import (
	"math"
	"testing"

	"mpss/internal/job"
	"mpss/internal/power"
	"mpss/internal/workload"
)

func TestScheduleAtCapSingleJob(t *testing.T) {
	in := mustInstance(t, 1, []job.Job{{ID: 1, Release: 0, Deadline: 4, Work: 8}})
	s, err := ScheduleAtCap(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(in); err != nil {
		t.Fatal(err)
	}
	// Runs at 4 for 2 time units somewhere in the window.
	for _, seg := range s.Segments {
		if math.Abs(seg.Speed-4) > 1e-12 {
			t.Errorf("segment at speed %v, want 4", seg.Speed)
		}
	}
	p := power.MustAlpha(2)
	if got := s.Energy(p); math.Abs(got-32) > 1e-6 {
		t.Errorf("energy = %v, want 32 (16 power * 2s)", got)
	}
}

func TestScheduleAtCapInfeasible(t *testing.T) {
	in := mustInstance(t, 1, []job.Job{{ID: 1, Release: 0, Deadline: 4, Work: 8}})
	if _, err := ScheduleAtCap(in, 1.5); err == nil {
		t.Error("infeasible cap accepted")
	}
	if _, err := ScheduleAtCap(in, -1); err == nil {
		t.Error("negative cap accepted")
	}
}

func TestScheduleAtCapAtMinimum(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in, err := workload.Uniform(workload.Spec{N: 8, M: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cap, err := MinFeasibleCap(in, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ScheduleAtCap(in, cap*(1+1e-7))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Verify(in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Fixed frequency can never beat the optimal multi-speed profile.
		p := power.MustAlpha(2)
		optRes, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if capE, optE := s.Energy(p), optRes.Schedule.Energy(p); capE < optE-1e-6*(1+optE) {
			t.Errorf("seed %d: cap energy %v below optimum %v", seed, capE, optE)
		}
	}
}
