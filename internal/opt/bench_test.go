package opt

import (
	"testing"

	"mpss/internal/obs"
	"mpss/internal/workload"
)

// The benchmark family behind `make bench` and BENCH_opt.json: the
// optimal solver at increasing instance sizes, warm (default incremental
// engine) and cold (rebuild the flow network every round — the baseline
// the tentpole replaces). Custom metrics expose the solver-internal
// counters next to ns/op.
func benchOptSchedule(b *testing.B, n int, cold bool) {
	in, err := workload.Uniform(workload.Spec{N: n, M: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opts := []Option{}
	if cold {
		opts = append(opts, ColdStart())
	}
	rec := obs.New()
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(in, append(opts, WithRecorder(rec))...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	snap := rec.Snapshot()
	div := float64(b.N)
	b.ReportMetric(float64(snap.Counters["opt.rounds"])/div, "opt.rounds/op")
	b.ReportMetric(float64(snap.Counters["flow.warm_hits"])/div, "flow.warm_hits/op")
	b.ReportMetric(float64(snap.Counters["opt.graph_rebuilds"])/div, "opt.graph_rebuilds/op")
}

func BenchmarkOptSchedule64Jobs(b *testing.B)   { benchOptSchedule(b, 64, false) }
func BenchmarkOptSchedule256Jobs(b *testing.B)  { benchOptSchedule(b, 256, false) }
func BenchmarkOptSchedule1024Jobs(b *testing.B) { benchOptSchedule(b, 1024, false) }

func BenchmarkOptScheduleCold64Jobs(b *testing.B)   { benchOptSchedule(b, 64, true) }
func BenchmarkOptScheduleCold256Jobs(b *testing.B)  { benchOptSchedule(b, 256, true) }
func BenchmarkOptScheduleCold1024Jobs(b *testing.B) { benchOptSchedule(b, 1024, true) }

// Feasibility probes ride the pooled-arena path (AcquireGraph); this
// guards the admission-control latency the online planner depends on.
func BenchmarkFeasibleAtSpeed256Jobs(b *testing.B) {
	in, err := workload.Uniform(workload.Spec{N: 256, M: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	res, err := Schedule(in)
	if err != nil {
		b.Fatal(err)
	}
	cap := res.Phases[0].Speed * 1.01
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := FeasibleAtSpeed(in, cap)
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("expected feasible")
		}
	}
}
