package opt

import (
	"fmt"
	"testing"

	"mpss/internal/obs"
	"mpss/internal/workload"
)

// The benchmark family behind `make bench` and BENCH_opt.json: the
// optimal solver at increasing instance sizes, warm (default incremental
// engine) and cold (rebuild the flow network every round — the baseline
// the tentpole replaces). Custom metrics expose the solver-internal
// counters next to ns/op.
func benchOptSchedule(b *testing.B, n int, cold bool) {
	benchOptScheduleWorkers(b, n, cold, 1)
}

// benchOptScheduleWorkers is the same family with the parallel flow
// layer engaged: par > 1 dispatches cold solves above the edge
// threshold to the concurrent push-relabel engine, and the parallel
// counters land next to ns/op so BENCH_opt.json records whether the
// dispatch actually fired.
func benchOptScheduleWorkers(b *testing.B, n int, cold bool, par int) {
	in, err := workload.Uniform(workload.Spec{N: n, M: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opts := []Option{}
	if cold {
		opts = append(opts, ColdStart())
	}
	if par > 1 {
		opts = append(opts, WithParallelism(par))
	}
	rec := obs.New()
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(in, append(opts, WithRecorder(rec))...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	snap := rec.Snapshot()
	div := float64(b.N)
	b.ReportMetric(float64(snap.Counters["opt.rounds"])/div, "opt.rounds/op")
	b.ReportMetric(float64(snap.Counters["flow.warm_hits"])/div, "flow.warm_hits/op")
	b.ReportMetric(float64(snap.Counters["opt.graph_rebuilds"])/div, "opt.graph_rebuilds/op")
	if par > 1 {
		b.ReportMetric(float64(snap.Counters["flow.parallel_solves"])/div, "flow.parallel_solves/op")
		b.ReportMetric(float64(snap.Counters["flow.global_relabels"])/div, "flow.global_relabels/op")
		b.ReportMetric(float64(snap.Counters["flow.steals"])/div, "flow.steals/op")
	}
}

func BenchmarkOptSchedule64Jobs(b *testing.B)   { benchOptSchedule(b, 64, false) }
func BenchmarkOptSchedule256Jobs(b *testing.B)  { benchOptSchedule(b, 256, false) }
func BenchmarkOptSchedule1024Jobs(b *testing.B) { benchOptSchedule(b, 1024, false) }

func BenchmarkOptScheduleCold64Jobs(b *testing.B)   { benchOptSchedule(b, 64, true) }
func BenchmarkOptScheduleCold256Jobs(b *testing.B)  { benchOptSchedule(b, 256, true) }
func BenchmarkOptScheduleCold1024Jobs(b *testing.B) { benchOptSchedule(b, 1024, true) }

// The workers dimension of the cold benchmark: workers=1 is the
// sequential Dinic baseline, workers>1 routes the cold solves through
// the concurrent push-relabel engine. benchjson parses the /workers=N
// suffix into a "workers" field so BENCH_opt.json can be diffed along
// this axis.
func BenchmarkOptScheduleColdParallel1024Jobs(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchOptScheduleWorkers(b, 1024, true, w)
		})
	}
}

// The contraction benchmark family: the slotted workload aligns all
// windows to a shared grid, so once the fine tiers finish, long runs
// of atomic intervals share their active set and the contracted graph
// is a fraction of the raw one. The contract=off sub-run is the
// raw-graph baseline the tentpole's >=1.5x claim is measured against;
// both produce bit-identical schedules.
func benchOptScheduleSlotted(b *testing.B, n int, contract, cold bool) {
	in, err := workload.Slotted(workload.Spec{N: n, M: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opts := []Option{WithContraction(contract)}
	if cold {
		opts = append(opts, ColdStart())
	}
	rec := obs.New()
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(in, append(opts, WithRecorder(rec))...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	snap := rec.Snapshot()
	div := float64(b.N)
	b.ReportMetric(float64(snap.Counters["opt.rounds"])/div, "opt.rounds/op")
	b.ReportMetric(float64(snap.Counters["opt.intervals_raw"])/div, "opt.intervals_raw/op")
	b.ReportMetric(float64(snap.Counters["opt.intervals_contracted"])/div, "opt.intervals_contracted/op")
	b.ReportMetric(float64(snap.Counters["opt.emit_rebuilds"])/div, "opt.emit_rebuilds/op")
}

func BenchmarkOptScheduleContracted1024Jobs(b *testing.B) {
	for _, c := range []bool{true, false} {
		b.Run(fmt.Sprintf("contract=%v", c), func(b *testing.B) {
			benchOptScheduleSlotted(b, 1024, c, false)
		})
	}
}

func BenchmarkOptScheduleContracted4096Jobs(b *testing.B) {
	for _, c := range []bool{true, false} {
		b.Run(fmt.Sprintf("contract=%v", c), func(b *testing.B) {
			benchOptScheduleSlotted(b, 4096, c, false)
		})
	}
}

// The 4096-job cold baseline: every round rebuilds its (contracted)
// graph from scratch, bounding the rebuild cost the warm engine and
// the contraction pass together avoid.
func BenchmarkOptScheduleCold4096Jobs(b *testing.B) {
	benchOptScheduleSlotted(b, 4096, true, true)
}

// Feasibility probes ride the pooled-arena path (AcquireGraph); this
// guards the admission-control latency the online planner depends on.
func BenchmarkFeasibleAtSpeed256Jobs(b *testing.B) {
	in, err := workload.Uniform(workload.Spec{N: 256, M: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	res, err := Schedule(in)
	if err != nil {
		b.Fatal(err)
	}
	cap := res.Phases[0].Speed * 1.01
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := FeasibleAtSpeed(in, cap)
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("expected feasible")
		}
	}
}

// The minimum-cap search along the workers dimension: workers=1 is
// plain bisection, workers=k runs speculative k-section waves that
// shrink the bracket (k+1)x per wave over pooled per-worker graphs.
func BenchmarkMinFeasibleCap256Jobs(b *testing.B) {
	in, err := workload.Uniform(workload.Spec{N: 256, M: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var capOpts []CapOption
			if w > 1 {
				capOpts = append(capOpts, WithProbeParallelism(w))
			}
			rec := obs.New()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := MinFeasibleCapObserved(in, 1e-6, rec, capOpts...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			snap := rec.Snapshot()
			div := float64(b.N)
			b.ReportMetric(float64(snap.Counters["opt.probe_waves"])/div, "opt.probe_waves/op")
			b.ReportMetric(float64(snap.Counters["opt.feasibility_probes"])/div, "opt.feasibility_probes/op")
			b.ReportMetric(float64(snap.Counters["opt.bracket_solves"])/div, "opt.bracket_solves/op")
		})
	}
}
