package opt

import (
	"math"
	"testing"
	"testing/quick"

	"mpss/internal/job"
	"mpss/internal/workload"
)

func TestFeasibleAtSpeedSingleJob(t *testing.T) {
	in := mustInstance(t, 1, []job.Job{{ID: 1, Release: 0, Deadline: 4, Work: 8}})
	// Density 2: feasible at 2 and above, infeasible below.
	for _, c := range []struct {
		s    float64
		want bool
	}{{1.9, false}, {2.0, true}, {2.5, true}} {
		got, err := FeasibleAtSpeed(in, c.s)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("FeasibleAtSpeed(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestFeasibleAtSpeedSharing(t *testing.T) {
	// Three equal jobs on two processors over [0,3): total 18 work on
	// 6 processor-time units needs cap >= 3; each job alone needs >= 2.
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 3, Work: 6},
		{ID: 2, Release: 0, Deadline: 3, Work: 6},
		{ID: 3, Release: 0, Deadline: 3, Work: 6},
	}
	in := mustInstance(t, 2, jobs)
	if ok, _ := FeasibleAtSpeed(in, 2.9); ok {
		t.Error("cap 2.9 accepted (needs 3)")
	}
	if ok, _ := FeasibleAtSpeed(in, 3.0); !ok {
		t.Error("cap 3.0 rejected")
	}
}

func TestFeasibleAtSpeedValidation(t *testing.T) {
	in := mustInstance(t, 1, []job.Job{{ID: 1, Release: 0, Deadline: 1, Work: 1}})
	for _, s := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := FeasibleAtSpeed(in, s); err == nil {
			t.Errorf("speed %v accepted", s)
		}
	}
}

func TestMinFeasibleCapMatchesTopPhaseSpeed(t *testing.T) {
	// The minimum feasible cap equals the unbounded optimum's top speed:
	// the optimum never runs faster than necessary, and below s_1 the
	// phase-1 jobs cannot finish.
	for seed := int64(0); seed < 6; seed++ {
		in, err := workload.Uniform(workload.Spec{N: 8, M: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		cap, err := MinFeasibleCap(in, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		s1 := res.Phases[0].Speed
		if math.Abs(cap-s1) > 1e-6*(1+s1) {
			t.Errorf("seed %d: MinFeasibleCap = %v, top phase speed = %v", seed, cap, s1)
		}
	}
}

// Property: feasibility is monotone in the cap.
func TestFeasibilityMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		in, err := workload.Tight(workload.Spec{N: 8, M: 2, Seed: seed})
		if err != nil {
			return false
		}
		cap, err := MinFeasibleCap(in, 1e-6)
		if err != nil {
			return false
		}
		below, err := FeasibleAtSpeed(in, cap*0.99)
		if err != nil {
			return false
		}
		above, err := FeasibleAtSpeed(in, cap*1.01)
		if err != nil {
			return false
		}
		return !below && above
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
