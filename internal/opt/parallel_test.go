package opt

import (
	"math"
	"testing"

	"mpss/internal/obs"
	"mpss/internal/workload"
)

// TestParallelMatchesSequentialValues checks the dispatch policy's core
// contract: WithParallelism changes which engine solves the cold flows,
// never the computed speeds, phase structure or energy. The threshold is
// lowered so small test instances actually cross it.
func TestParallelMatchesSequentialValues(t *testing.T) {
	old := ParallelEdgeThreshold
	ParallelEdgeThreshold = 1
	defer func() { ParallelEdgeThreshold = old }()

	for seed := int64(0); seed < 8; seed++ {
		in, err := workload.Uniform(workload.Spec{N: 24, M: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 8} {
			rec := obs.New()
			res, err := Schedule(in, WithParallelism(par), WithRecorder(rec))
			if err != nil {
				t.Fatalf("seed %d par %d: %v", seed, par, err)
			}
			if len(res.Phases) != len(ref.Phases) {
				t.Fatalf("seed %d par %d: %d phases vs %d sequential",
					seed, par, len(res.Phases), len(ref.Phases))
			}
			for i := range res.Phases {
				if !closeRel(res.Phases[i].Speed, ref.Phases[i].Speed, 1e-9) {
					t.Fatalf("seed %d par %d phase %d: speed %v vs %v",
						seed, par, i, res.Phases[i].Speed, ref.Phases[i].Speed)
				}
				if len(res.Phases[i].JobIDs) != len(ref.Phases[i].JobIDs) {
					t.Fatalf("seed %d par %d phase %d: job sets differ", seed, par, i)
				}
			}
			if err := res.Schedule.Verify(in); err != nil {
				t.Fatalf("seed %d par %d: infeasible schedule: %v", seed, par, err)
			}
			if rec.Value("flow.parallel_solves") == 0 {
				t.Fatalf("seed %d par %d: no parallel solve dispatched below threshold %d",
					seed, par, ParallelEdgeThreshold)
			}
		}
	}
}

// TestParallelDispatchRespectsThreshold pins the policy boundary: with
// the default threshold, small instances must never pay for goroutines.
func TestParallelDispatchRespectsThreshold(t *testing.T) {
	in, err := workload.Uniform(workload.Spec{N: 8, M: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	if _, err := Schedule(in, WithParallelism(8), WithRecorder(rec)); err != nil {
		t.Fatal(err)
	}
	if n := rec.Value("flow.parallel_solves"); n != 0 {
		t.Fatalf("tiny instance dispatched %d parallel solves", n)
	}
}

// TestFeasibleAtSpeedBatch checks the batch probe against one-at-a-time
// probes, sequentially and concurrently.
func TestFeasibleAtSpeedBatch(t *testing.T) {
	in, err := workload.Tight(workload.Spec{N: 12, M: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	capv, err := MinFeasibleCap(in, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{capv * 0.5, capv * 0.9, capv * 0.999, capv * 1.001, capv * 1.5, capv * 4}
	want := make([]bool, len(caps))
	for i, c := range caps {
		if want[i], err = FeasibleAtSpeed(in, c); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := FeasibleAtSpeedBatch(in, caps, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range caps {
			if got[i] != want[i] {
				t.Fatalf("workers %d cap %v: batch %v, single %v", workers, caps[i], got[i], want[i])
			}
		}
	}
	// Invalid cap anywhere in the batch fails the whole call.
	if _, err := FeasibleAtSpeedBatch(in, []float64{1, -1}, 2, nil); err == nil {
		t.Fatal("negative cap accepted in batch")
	}
	// Empty batch is a no-op.
	if got, err := FeasibleAtSpeedBatch(in, nil, 2, nil); err != nil || got != nil {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

// TestMinFeasibleCapKSection checks that speculative k-section search
// lands on the same cap as bisection, for several probe widths.
func TestMinFeasibleCapKSection(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in, err := workload.Uniform(workload.Spec{N: 10, M: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := MinFeasibleCap(in, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 3, 8} {
			rec := obs.New()
			got, err := MinFeasibleCapObserved(in, 1e-9, rec, WithProbeParallelism(k))
			if err != nil {
				t.Fatalf("seed %d k %d: %v", seed, k, err)
			}
			if !closeRel(got, ref, 1e-7) {
				t.Fatalf("seed %d k %d: %v vs bisection %v", seed, k, got, ref)
			}
			if rec.Value("opt.probe_waves") == 0 {
				t.Fatalf("seed %d k %d: no probe waves counted", seed, k)
			}
		}
	}
}

// TestMinFeasibleCapWithBracket checks the escape hatch: a supplied
// bracket skips the schedule solve and still converges to the same cap.
func TestMinFeasibleCapWithBracket(t *testing.T) {
	in, err := workload.Uniform(workload.Spec{N: 10, M: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := MinFeasibleCap(in, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	got, err := MinFeasibleCapObserved(in, 1e-9, rec, WithBracket(0, ref*8))
	if err != nil {
		t.Fatal(err)
	}
	if !closeRel(got, ref, 1e-7) {
		t.Fatalf("bracketed %v vs reference %v", got, ref)
	}
	if n := rec.Value("opt.bracket_solves"); n != 0 {
		t.Fatalf("bracket given but %d bracket solves ran", n)
	}
	// An infeasible upper bound must be rejected, not searched.
	if _, err := MinFeasibleCapObserved(in, 1e-9, nil, WithBracket(0, ref*0.1)); err == nil {
		t.Fatal("infeasible bracket hi accepted")
	}
	// Malformed brackets are input errors.
	for _, b := range [][2]float64{{-1, 2}, {2, 1}, {0, math.Inf(1)}} {
		if _, err := MinFeasibleCapObserved(in, 1e-9, nil, WithBracket(b[0], b[1])); err == nil {
			t.Fatalf("bracket %v accepted", b)
		}
	}
}

// TestBracketFastPathMatchesSchedule checks that the first-phase-only
// bracket solve returns exactly the full solver's top phase speed.
func TestBracketFastPathMatchesSchedule(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in, err := workload.Uniform(workload.Spec{N: 12, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.New()
		top, err := bracketSpeed(nil, in, 1, true, rec)
		if err != nil {
			t.Fatal(err)
		}
		if top != res.Phases[0].Speed {
			t.Fatalf("seed %d: bracket speed %v != Phases[0].Speed %v",
				seed, top, res.Phases[0].Speed)
		}
		if rec.Value("opt.bracket_solves") != 1 {
			t.Fatal("bracket solve not counted")
		}
	}
}

func closeRel(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}
