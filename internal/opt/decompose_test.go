package opt

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/obs"
	"mpss/internal/workload"
)

// Windowed decomposition must be invisible in the output: cutting the
// instance at zero-active boundaries, solving the components separately
// and merging must reproduce the monolithic solve bit for bit — phase
// structure, speeds, processor reservations and every schedule segment.
// These differential tests pin that across the three engines and both
// contraction settings; TestDecomposeProperty is the 200-instance
// property sweep the ISSUE asks for.

// clusteredInstance builds a separable instance: k generator-made
// clusters shifted to disjoint time ranges (gap > 0 leaves idle time
// between clusters; gap == 0 makes windows touch exactly at the cuts,
// the boundary case the sweep must still separate).
func clusteredInstance(t *testing.T, gname string, k, n, m int, seed int64, gap float64) *job.Instance {
	t.Helper()
	gen, err := workload.ByName(gname)
	if err != nil {
		t.Fatal(err)
	}
	in := &job.Instance{M: m}
	for c := 0; c < k; c++ {
		sub, err := gen.Make(workload.Spec{N: n, M: m, Seed: seed + int64(c), Horizon: 100})
		if err != nil {
			t.Fatal(err)
		}
		// Clusters are laid end to end; generators keep windows inside
		// [0, horizon], so offset multiples of horizon+gap cannot overlap.
		off := float64(c) * (100 + gap)
		for _, j := range sub.Jobs {
			in.Jobs = append(in.Jobs, job.Job{
				ID:       j.ID + c*100000,
				Release:  j.Release + off,
				Deadline: j.Deadline + off,
				Work:     j.Work,
			})
		}
	}
	return in
}

func diffDecompose(t *testing.T, seed int64, in *job.Instance, extra ...Option) {
	t.Helper()
	mono, err := Schedule(in, extra...)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Schedule(in, append(extra, WithDecomposition(true))...)
	if err != nil {
		t.Fatal(err)
	}
	comparePhases(t, seed, mono, dec)
}

func TestComponentRanges(t *testing.T) {
	j := func(r, d float64) job.Job { return job.Job{Release: r, Deadline: d, Work: 1} }
	cases := []struct {
		name string
		jobs []job.Job
		want [][]int
	}{
		{"single", []job.Job{j(0, 2), j(1, 3)}, [][]int{{0, 1}}},
		{"gap", []job.Job{j(0, 2), j(5, 7)}, [][]int{{0}, {1}}},
		// Deadline == next release: windows touch but do not cross, so
		// the boundary is still a cut (deadlines sweep before releases).
		{"touching", []job.Job{j(0, 2), j(2, 4)}, [][]int{{0}, {1}}},
		{"crossing", []job.Job{j(0, 3), j(2, 4)}, [][]int{{0, 1}}},
		// Input order need not follow time order; each group must still
		// keep the input-relative order of its members.
		{"interleaved", []job.Job{j(5, 7), j(0, 2), j(6, 8), j(1, 3)},
			[][]int{{1, 3}, {0, 2}}},
		{"nested", []job.Job{j(0, 10), j(2, 4), j(12, 14)}, [][]int{{0, 1}, {2}}},
		{"three", []job.Job{j(0, 1), j(1, 2), j(3, 4)}, [][]int{{0}, {1}, {2}}},
	}
	for _, tc := range cases {
		got := componentRanges(tc.jobs)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d components, want %d (%v)", tc.name, len(got), len(tc.want), got)
		}
		for c := range got {
			if len(got[c]) != len(tc.want[c]) {
				t.Fatalf("%s: component %d = %v, want %v", tc.name, c, got[c], tc.want[c])
			}
			for i := range got[c] {
				if got[c][i] != tc.want[c][i] {
					t.Fatalf("%s: component %d = %v, want %v", tc.name, c, got[c], tc.want[c])
				}
			}
		}
	}
	if got := componentRanges(nil); got != nil {
		t.Fatalf("nil jobs: got %v", got)
	}
}

func TestDecomposedMatchesMonolithic(t *testing.T) {
	for _, gname := range []string{"bursty", "tight", "slotted"} {
		for _, gap := range []float64{0, 25} {
			in := clusteredInstance(t, gname, 3, 16, 3, 42, gap)
			diffDecompose(t, 42, in)
			diffDecompose(t, 42, in, ColdStart())
			diffDecompose(t, 42, in, WithContraction(false))
		}
	}
}

// The trace generator's whole design goal is separability; the solve of
// a diurnal trace must decompose bit-exactly without any clustering
// scaffolding around it.
func TestDecomposedMatchesMonolithicDiurnal(t *testing.T) {
	in, err := workload.Diurnal(workload.Spec{N: 256, M: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	diffDecompose(t, 17, in)
	diffDecompose(t, 17, in, WithContraction(false))
}

func TestDecomposedMatchesMonolithicExact(t *testing.T) {
	in := clusteredInstance(t, "bursty", 3, 8, 2, 7, 0)
	diffDecompose(t, 7, in, Exact())
	diffDecompose(t, 7, in, Exact(), WithContraction(false))
	// Identical clusters force bit-equal phase speeds across components;
	// the merge must coalesce them into the single phase the monolithic
	// solve produces. Exact arithmetic makes the equality certain.
	twin := &job.Instance{M: 2}
	base := clusteredInstance(t, "slotted", 1, 8, 2, 3, 0)
	for c := 0; c < 2; c++ {
		for _, j := range base.Jobs {
			j.ID += c * 100000
			j.Release += float64(c) * 128
			j.Deadline += float64(c) * 128
			twin.Jobs = append(twin.Jobs, j)
		}
	}
	diffDecompose(t, 3, twin, Exact())
}

// Equal-speed coalescing on the float path, with values chosen so every
// intermediate quantity is exactly representable: two touching blocks of
// identical jobs produce bit-equal phase speeds, and the monolithic
// solve accepts their union as one phase at the same exact speed.
func TestDecomposeCoalescesEqualSpeeds(t *testing.T) {
	in := &job.Instance{M: 2, Jobs: []job.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 8},
		{ID: 2, Release: 0, Deadline: 4, Work: 8},
		{ID: 3, Release: 8, Deadline: 12, Work: 8},
		{ID: 4, Release: 8, Deadline: 12, Work: 8},
	}}
	dec, err := Schedule(in, WithDecomposition(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Phases) != 1 {
		t.Fatalf("want 1 coalesced phase, got %d: %+v", len(dec.Phases), dec.Phases)
	}
	if dec.Phases[0].Speed != 2.0 {
		t.Fatalf("coalesced speed = %v, want 2", dec.Phases[0].Speed)
	}
	diffDecompose(t, 1, in)
}

// The property sweep: 200 random separable instances, decomposed vs
// monolithic bit-exact on the float engines with and without
// contraction (the exact engine joins at a lower trial count — it is
// orders of magnitude slower and covered above).
func TestDecomposeProperty(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 40
	}
	gens := []string{"uniform", "bursty", "tight", "slotted", "poisson"}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		gname := gens[rng.Intn(len(gens))]
		k := 2 + rng.Intn(4)
		n := 4 + rng.Intn(13)
		m := 1 + rng.Intn(4)
		gap := float64(rng.Intn(2)) * 10 // half the trials touch at the cut
		seed := rng.Int63n(1 << 30)
		in := clusteredInstance(t, gname, k, n, m, seed, gap)
		opts := [][]Option{nil, {WithContraction(false)}}
		if trial%10 == 0 {
			opts = append(opts, []Option{ColdStart()}, []Option{Exact()})
		}
		for _, extra := range opts {
			diffDecompose(t, seed, in, extra...)
		}
	}
}

// A decomposed solve over the worker pool must match at any worker
// count: the merge is deterministic regardless of completion order.
func TestDecomposeParallelWorkers(t *testing.T) {
	in := clusteredInstance(t, "bursty", 5, 12, 3, 11, 0)
	mono, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		dec, err := Schedule(in, WithDecomposition(true), WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		comparePhases(t, int64(workers), mono, dec)
	}
}

func TestDecomposeCounters(t *testing.T) {
	in := clusteredInstance(t, "tight", 3, 10, 2, 5, 10)
	rec := obs.New()
	res, err := Schedule(in, WithDecomposition(true), WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	if got := rec.Value("opt.components"); got < 3 {
		t.Errorf("opt.components = %d, want >= 3", got)
	}
	if got := rec.Value("opt.decompose_cuts"); got != rec.Value("opt.components")-1 {
		t.Errorf("opt.decompose_cuts = %d, want components-1 = %d",
			got, rec.Value("opt.components")-1)
	}
	if got := rec.Value("opt.component_jobs_max"); got < 1 || got > 10 {
		t.Errorf("opt.component_jobs_max = %d, want in [1,10]", got)
	}

	// A non-separable instance must not pay for (or count) a decomposed
	// dispatch even with the option on.
	rec2 := obs.New()
	single := &job.Instance{M: 2, Jobs: []job.Job{
		{ID: 1, Release: 0, Deadline: 10, Work: 5},
		{ID: 2, Release: 5, Deadline: 15, Work: 5},
	}}
	if _, err := Schedule(single, WithDecomposition(true), WithRecorder(rec2)); err != nil {
		t.Fatal(err)
	}
	if got := rec2.Value("opt.components"); got != 0 {
		t.Errorf("opt.components = %d on a single-component instance, want 0", got)
	}
}

// A numeric failure in one component must fall back for that component
// only: the injected violation fires exactly once, so exactly one
// component walks to the cold rung while the others stay warm — and the
// merged result is still bit-identical to the monolithic solve's.
func TestDecomposePerComponentFallback(t *testing.T) {
	in := clusteredInstance(t, "bursty", 3, 10, 2, 13, 10)
	mono, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}

	var fired atomic.Bool
	testHookRound = func(exact bool) {
		if !exact && fired.CompareAndSwap(false, true) {
			panic(&flow.InvariantViolation{Numeric: true, Msg: "injected: one-component failure"})
		}
	}
	defer func() { testHookRound = nil }()

	rec := obs.New()
	dec, err := Schedule(in, WithDecomposition(true), WithRecorder(rec))
	if err != nil {
		t.Fatalf("per-component fallback should have rescued the solve, got %v", err)
	}
	if got := rec.Value("opt.fallback_cold"); got != 1 {
		t.Errorf("opt.fallback_cold = %d, want 1 (one component, one rung)", got)
	}
	if got := rec.Value("opt.fallback_exact"); got != 0 {
		t.Errorf("opt.fallback_exact = %d, want 0", got)
	}
	testHookRound = nil
	comparePhases(t, 13, mono, dec)
}
