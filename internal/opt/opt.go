// Package opt implements the paper's primary contribution: a strongly
// combinatorial polynomial-time algorithm computing energy-optimal
// multi-processor schedules with migration (Section 2, Theorem 1 of
// Albers, Antoniadis, Greiner: "On multi-processor speed scaling with
// migration").
//
// The algorithm works in phases. Phase i identifies the set J_i of jobs
// that an optimal schedule runs at the i-th highest speed s_i, together
// with the number m_ij of processors that set occupies in every event
// interval I_j (Lemma 3 pins m_ij = min{n_ij, m - sum_{l<i} m_lj}).
// Within a phase the algorithm iterates rounds: it conjectures that all
// remaining jobs form J_i, checks the conjecture with a maximum-flow
// computation on the network G(J, m, s) — source -> job edges of capacity
// w_k/s, job -> interval edges of capacity |I_j|, interval -> sink edges
// of capacity m_j|I_j| — and, when the flow does not saturate the source,
// removes one provably-excluded job and retries. The final flow values
// are per-interval execution times; McNaughton's wrap-around rule turns
// them into an explicit schedule.
//
// Because the optimal speed levels depend only on the combinatorial
// structure (not on the particular convex power function), the same
// schedule is optimal for every convex non-decreasing P with P(0) = 0;
// the power function enters only when reporting energy.
package opt

import (
	"fmt"
	"math"
	"sort"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/obs"
	"mpss/internal/schedule"
)

// Phase records one speed level of the optimal schedule: the jobs run at
// that speed and the processors they occupy per event interval.
type Phase struct {
	Speed  float64 // uniform speed s_i of this job set
	JobIDs []int   // jobs processed at Speed
	Procs  []int   // m_ij: processors reserved in each event interval
}

// Stats collects counters for the runtime experiments (E2).
type Stats struct {
	Phases       int // p, the number of distinct speed levels
	Rounds       int // total maximum-flow computations
	FlowVertices int // vertices of the largest flow network built
}

// Result is an optimal schedule together with its phase structure.
type Result struct {
	Schedule  *schedule.Schedule
	Phases    []Phase
	Intervals []job.Interval
	Stats     Stats
}

// Option configures the solver.
type Option func(*config)

type config struct {
	exact bool
	tol   float64
	rec   *obs.Recorder
	span  *obs.Span
}

// Exact switches the phase decisions to exact math/big.Rat arithmetic.
// Substantially slower, but immune to floating-point misclassification;
// used by tests to cross-validate the float64 fast path.
func Exact() Option { return func(c *config) { c.exact = true } }

// WithTolerance sets the relative tolerance of the float64 fast path
// (default 1e-9).
func WithTolerance(tol float64) Option {
	return func(c *config) { c.tol = tol }
}

// WithRecorder attaches an observability recorder: the solver records
// per-phase spans (critical speed, rounds, jobs saturated/removed) and
// global flow-solver operation counters into it. A nil recorder is the
// no-op default.
func WithRecorder(r *obs.Recorder) Option {
	return func(c *config) { c.rec = r }
}

// UnderSpan nests the solver's phase spans under the given parent span
// (e.g. one OA replanning event) instead of the recorder root. The
// span's recorder is used when WithRecorder was not given.
func UnderSpan(s *obs.Span) Option {
	return func(c *config) { c.span = s }
}

// Schedule computes an energy-optimal schedule for the instance. The
// returned schedule is feasible (verifiable with schedule.Verify) and
// optimal for every convex non-decreasing power function with P(0) = 0.
func Schedule(in *job.Instance, opts ...Option) (*Result, error) {
	cfg := config{tol: 1e-9}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.span == nil {
		cfg.span = cfg.rec.Root()
	}
	if cfg.rec == nil {
		cfg.rec = cfg.span.Recorder()
	}
	if cfg.exact {
		return exactSolve(in, cfg.rec, cfg.span)
	}
	return floatSolve(in, cfg.tol, cfg.rec, cfg.span)
}

func floatSolve(in *job.Instance, tol float64, rec *obs.Recorder, parent *obs.Span) (*Result, error) {
	ivs := job.Partition(in.Jobs)
	used := make([]int, len(ivs)) // processors occupied by earlier phases
	remaining := make([]int, 0, in.N())
	for i := range in.Jobs {
		remaining = append(remaining, i)
	}

	res := &Result{Schedule: schedule.New(in.M), Intervals: ivs}

	for len(remaining) > 0 {
		span := parent.StartSpan(fmt.Sprintf("phase %d", len(res.Phases)+1))
		span.Add("candidates", int64(len(remaining)))
		cand := append([]int(nil), remaining...)
		var (
			speed float64
			mj    []int
			tkj   map[int][]pieceTime
		)
		for {
			res.Stats.Rounds++
			rec.Add("opt.rounds", 1)
			var found bool
			var removed int
			found, removed, speed, mj, tkj = floatRound(in, ivs, used, cand, tol, &res.Stats, rec, span)
			if found {
				break
			}
			rec.Add("opt.jobs_removed", 1)
			span.Add("jobs_removed", 1)
			cand = deleteIndex(cand, removed)
			if len(cand) == 0 {
				return nil, fmt.Errorf("opt: phase emptied its candidate set (numerical failure)")
			}
		}

		if err := emitPhase(in, ivs, used, cand, speed, mj, tkj, res); err != nil {
			return nil, err
		}
		rec.Add("opt.phases", 1)
		span.Add("jobs_saturated", int64(len(cand)))
		span.SetValue("speed", speed)
		span.End()
		remaining = subtract(remaining, cand)
	}

	res.Schedule.Normalize()
	return res, nil
}

// pieceTime is the time job (by instance index) runs in one interval.
type pieceTime struct {
	ivIdx int
	t     float64
}

// floatRound runs one round of a phase: build G(J, m, s), compute the
// max flow, and either accept the candidate set or name a job to remove.
func floatRound(in *job.Instance, ivs []job.Interval, used, cand []int, tol float64, st *Stats, rec *obs.Recorder, span *obs.Span) (found bool, removed int, speed float64, mj []int, tkj map[int][]pieceTime) {
	nIv := len(ivs)
	mj = make([]int, nIv)
	var totalWork, totalTime float64
	activeIn := make([][]int, nIv) // candidate positions active per interval
	for jx, iv := range ivs {
		free := in.M - used[jx]
		if free < 0 {
			free = 0
		}
		for pos, k := range cand {
			if in.Jobs[k].ActiveIn(iv.Start, iv.End) {
				activeIn[jx] = append(activeIn[jx], pos)
			}
		}
		mj[jx] = min(len(activeIn[jx]), free)
		totalTime += float64(mj[jx]) * iv.Len()
	}
	for _, k := range cand {
		totalWork += in.Jobs[k].Work
	}
	if totalTime <= 0 {
		// No capacity at all: remove the candidate with the least work to
		// make progress; this indicates a degenerate instance and will be
		// caught by the feasibility check of the caller.
		return false, 0, 0, mj, nil
	}
	speed = totalWork / totalTime

	// Vertex layout: 0 = source, 1..len(cand) = jobs, then intervals with
	// mj > 0, last = sink.
	ivNode := make([]int, nIv)
	node := 1 + len(cand)
	for jx := range ivs {
		if mj[jx] > 0 {
			ivNode[jx] = node
			node++
		} else {
			ivNode[jx] = -1
		}
	}
	sink := node
	g := flow.NewGraph(node + 1)
	if node+1 > st.FlowVertices {
		st.FlowVertices = node + 1
	}

	srcEdges := make([]flow.EdgeID, len(cand))
	for pos, k := range cand {
		srcEdges[pos] = g.AddEdge(0, 1+pos, in.Jobs[k].Work/speed)
	}
	type jobIvEdge struct {
		pos, ivIdx int
		id         flow.EdgeID
	}
	var mid []jobIvEdge
	sinkEdges := make(map[int]flow.EdgeID, nIv)
	for jx, iv := range ivs {
		if mj[jx] == 0 {
			continue
		}
		for _, pos := range activeIn[jx] {
			id := g.AddEdge(1+pos, ivNode[jx], iv.Len())
			mid = append(mid, jobIvEdge{pos: pos, ivIdx: jx, id: id})
		}
		sinkEdges[jx] = g.AddEdge(ivNode[jx], sink, float64(mj[jx])*iv.Len())
	}

	stop := rec.Time("opt.flow_solve_seconds")
	value := g.MaxFlow(0, sink)
	stop()
	publishDinic(rec, span, g.Ops())
	slack := tol * math.Max(1, totalTime)
	if value >= totalTime-slack {
		// Saturated: the candidate set is the true J_i.
		tkj = make(map[int][]pieceTime, len(cand))
		for _, e := range mid {
			// Collect every positive flow: dropping pieces at the slack
			// threshold would lose work proportional to the edge count on
			// large instances.
			f := g.Flow(e.id)
			if f > 1e-15 {
				k := cand[e.pos]
				tkj[k] = append(tkj[k], pieceTime{ivIdx: e.ivIdx, t: f})
			}
		}
		return true, 0, speed, mj, tkj
	}

	// Unsaturated: find an interval whose sink edge has slack and, within
	// it, the active job edge with the most slack (paper line 10).
	bestIv := -1
	bestSlack := slack
	for jx, id := range sinkEdges {
		s := g.Capacity(id) - g.Flow(id)
		if s > bestSlack {
			bestSlack = s
			bestIv = jx
		}
	}
	if bestIv < 0 {
		// All sink edges look saturated although the total flow fell
		// short — only possible through accumulated rounding. Accept.
		tkj = make(map[int][]pieceTime, len(cand))
		for _, e := range mid {
			if f := g.Flow(e.id); f > 1e-15 {
				tkj[cand[e.pos]] = append(tkj[cand[e.pos]], pieceTime{ivIdx: e.ivIdx, t: f})
			}
		}
		return true, 0, speed, mj, tkj
	}
	removePos := -1
	var removeSlack float64
	for _, e := range mid {
		if e.ivIdx != bestIv {
			continue
		}
		if s := g.Capacity(e.id) - g.Flow(e.id); s > removeSlack {
			removeSlack = s
			removePos = e.pos
		}
	}
	if removePos < 0 {
		// Cannot happen per Lemma 4's counting argument; guard anyway.
		removePos = activeIn[bestIv][0]
	}
	return false, removePos, speed, mj, nil
}

// emitPhase converts the accepted round's flow into schedule segments and
// bookkeeping.
func emitPhase(in *job.Instance, ivs []job.Interval, used, cand []int, speed float64, mj []int, tkj map[int][]pieceTime, res *Result) error {
	phase := Phase{Speed: speed, Procs: append([]int(nil), mj...)}
	for _, k := range cand {
		phase.JobIDs = append(phase.JobIDs, in.Jobs[k].ID)
	}
	// Group pieces per interval.
	perIv := make([][]schedule.Piece, len(ivs))
	for k, pieces := range tkj {
		for _, p := range pieces {
			dur := math.Min(p.t, ivs[p.ivIdx].Len())
			perIv[p.ivIdx] = append(perIv[p.ivIdx], schedule.Piece{
				JobID:    in.Jobs[k].ID,
				Duration: dur,
				Speed:    speed,
			})
		}
	}
	for jx := range ivs {
		if mj[jx] == 0 || len(perIv[jx]) == 0 {
			continue
		}
		// tkj is a map, so piece order is otherwise nondeterministic;
		// sort by job ID to make the solver's output reproducible.
		sort.Slice(perIv[jx], func(a, b int) bool {
			return perIv[jx][a].JobID < perIv[jx][b].JobID
		})
		procs := make([]int, mj[jx])
		for i := range procs {
			procs[i] = used[jx] + i
		}
		segs, err := schedule.WrapAround(ivs[jx].Start, ivs[jx].End, procs, perIv[jx])
		if err != nil {
			return fmt.Errorf("opt: packing interval %v: %w", ivs[jx], err)
		}
		for _, s := range segs {
			res.Schedule.Add(s)
		}
		used[jx] += mj[jx]
	}
	res.Phases = append(res.Phases, phase)
	res.Stats.Phases++
	return nil
}

// publishDinic folds one float-path max-flow solve's operation counts
// into the recorder's global counters and the enclosing phase span.
// All calls are no-ops when observability is off.
func publishDinic(rec *obs.Recorder, span *obs.Span, ops flow.DinicOps) {
	if !rec.Enabled() && span == nil {
		return
	}
	rec.Add("flow.solves", 1)
	rec.Add("flow.dinic.bfs_passes", ops.BFSPasses)
	rec.Add("flow.dinic.aug_paths", ops.AugPaths)
	rec.Add("flow.dinic.edges_scanned", ops.EdgesScanned)
	span.Add("flow_calls", 1)
	span.Add("bfs_passes", ops.BFSPasses)
	span.Add("aug_paths", ops.AugPaths)
	span.Add("edges_scanned", ops.EdgesScanned)
}

// publishExact is publishDinic for the exact rational solver.
func publishExact(rec *obs.Recorder, span *obs.Span, ops flow.DinicOps) {
	if !rec.Enabled() && span == nil {
		return
	}
	rec.Add("flow.solves", 1)
	rec.Add("flow.exact.bfs_passes", ops.BFSPasses)
	rec.Add("flow.exact.aug_paths", ops.AugPaths)
	rec.Add("flow.exact.edges_scanned", ops.EdgesScanned)
	span.Add("flow_calls", 1)
	span.Add("bfs_passes", ops.BFSPasses)
	span.Add("aug_paths", ops.AugPaths)
	span.Add("edges_scanned", ops.EdgesScanned)
}

func deleteIndex(cand []int, pos int) []int {
	out := make([]int, 0, len(cand)-1)
	out = append(out, cand[:pos]...)
	return append(out, cand[pos+1:]...)
}

func subtract(all, remove []int) []int {
	drop := make(map[int]bool, len(remove))
	for _, k := range remove {
		drop[k] = true
	}
	out := all[:0]
	for _, k := range all {
		if !drop[k] {
			out = append(out, k)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
