// Package opt implements the paper's primary contribution: a strongly
// combinatorial polynomial-time algorithm computing energy-optimal
// multi-processor schedules with migration (Section 2, Theorem 1 of
// Albers, Antoniadis, Greiner: "On multi-processor speed scaling with
// migration").
//
// The algorithm works in phases. Phase i identifies the set J_i of jobs
// that an optimal schedule runs at the i-th highest speed s_i, together
// with the number m_ij of processors that set occupies in every event
// interval I_j (Lemma 3 pins m_ij = min{n_ij, m - sum_{l<i} m_lj}).
// Within a phase the algorithm iterates rounds: it conjectures that all
// remaining jobs form J_i, checks the conjecture with a maximum-flow
// computation on the network G(J, m, s) — source -> job edges of capacity
// w_k/s, job -> interval edges of capacity |I_j|, interval -> sink edges
// of capacity m_j|I_j| — and, when the flow does not saturate the source,
// removes one provably-excluded job and retries. The final flow values
// are per-interval execution times; McNaughton's wrap-around rule turns
// them into an explicit schedule.
//
// Consecutive rounds of a phase differ only by one removed job and a
// uniform rescaling of the source capacities, so the solver runs them on
// an incremental flow engine: the network is built once per phase, each
// rejection drains the removed job's flow and rescales capacities in
// place (flow.RemoveJobEdge / flow.SetCapacity), and the next round
// re-augments from the surviving feasible flow instead of restarting
// Dinic at zero. The excluded job is chosen by a flow-invariant rule —
// the first candidate whose node can still reach the sink in the
// residual graph (flow.CoReachable) — so the warm path removes exactly
// the jobs a cold from-scratch path would. See DESIGN.md ("Incremental
// warm-started flow engine") for the invariants; ColdStart disables the
// warm path for differential testing.
//
// Because the optimal speed levels depend only on the combinatorial
// structure (not on the particular convex power function), the same
// schedule is optimal for every convex non-decreasing P with P(0) = 0;
// the power function enters only when reporting energy.
package opt

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"math"
	"slices"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/mpsserr"
	"mpss/internal/obs"
	"mpss/internal/pool"
	"mpss/internal/schedule"
)

// Phase records one speed level of the optimal schedule: the jobs run at
// that speed and the processors they occupy per event interval.
type Phase struct {
	Speed  float64 // uniform speed s_i of this job set
	JobIDs []int   // jobs processed at Speed
	Procs  []int   // m_ij: processors reserved in each event interval
}

// Stats collects counters for the runtime experiments (E2).
type Stats struct {
	Phases       int // p, the number of distinct speed levels
	Rounds       int // total flow-checked rounds (conjecture tests)
	FlowVertices int // vertices of the largest flow network built
}

// Result is an optimal schedule together with its phase structure.
type Result struct {
	Schedule  *schedule.Schedule
	Phases    []Phase
	Intervals []job.Interval
	Stats     Stats
}

// Option configures the solver.
type Option func(*config)

type config struct {
	exact      bool
	cold       bool
	noContract bool
	decompose  bool
	tol        float64
	par        int
	rec        *obs.Recorder
	span       *obs.Span
	ctx        context.Context
}

// Exact switches the phase decisions to exact math/big.Rat arithmetic.
// Substantially slower, but immune to floating-point misclassification;
// used by tests to cross-validate the float64 fast path.
func Exact() Option { return func(c *config) { c.exact = true } }

// ColdStart disables the incremental warm-start engine: every round
// rebuilds the flow network from scratch and solves from zero flow, as
// the paper's pseudo-code literally does. The differential tests and the
// scaling benchmarks use it as the reference; production callers want
// the (default) warm path.
func ColdStart() Option { return func(c *config) { c.cold = true } }

// WithTolerance sets the relative tolerance of the float64 fast path
// (default flow.SolveTolerance).
func WithTolerance(tol float64) Option {
	return func(c *config) { c.tol = tol }
}

// WithContraction toggles the interval-contraction preprocessing
// (default on): before each phase's rounds, maximal runs of consecutive
// event intervals with identical active candidate sets and identical
// processor budgets are merged into super-intervals, shrinking the flow
// network the rounds solve without changing any phase decision or the
// emitted schedule (see contract.go for the equivalence argument; the
// differential tests prove the output bit-identical). Turning it off
// solves every round on the raw atomic intervals, as the paper's
// pseudo-code literally does.
func WithContraction(on bool) Option {
	return func(c *config) { c.noContract = !on }
}

// WithDecomposition toggles windowed decomposition (default off): before
// choosing an engine, the solver sweeps the job windows for cut points no
// window crosses, solves the resulting independent components separately
// — fanned over WithParallelism workers — and merges the component
// results into the Result a monolithic solve would return, bit for bit
// (see decompose.go for the equivalence argument and the differential
// suite for the proof). The fallback ladder applies per component.
// Counters: "opt.components", "opt.decompose_cuts",
// "opt.component_jobs_max" (the Add of each solve's largest component —
// the recorder has no gauge primitive, so a single-solve reading is the
// counter delta).
func WithDecomposition(on bool) Option {
	return func(c *config) { c.decompose = on }
}

// ParallelEdgeThreshold is the network size (in forward edges) above
// which a cold solve dispatches to the concurrent push-relabel engine
// when WithParallelism is in effect. Below it the sequential Dinic
// solver wins outright — goroutine startup and atomic traffic cost more
// than the solve. Exposed as a variable so benchmarks and tests can move
// the boundary.
var ParallelEdgeThreshold = 4096

// WithParallelism lets the float engine solve cold flow networks with n
// concurrent workers (n <= 1 keeps everything sequential, the default).
// Only from-zero solves on networks of at least ParallelEdgeThreshold
// edges are dispatched to the concurrent engine; warm re-augmentations
// stay on the sequential incremental path, which is already faster than
// re-solving. The maximum-flow *value* — and therefore every phase
// decision — is independent of n; the flow decomposition an accepted
// phase emits may legitimately differ from the sequential one's (both
// are optimal schedules). Runs that must be bit-reproducible against
// the sequential solver should leave parallelism off.
func WithParallelism(n int) Option {
	return func(c *config) { c.par = n }
}

// WithRecorder attaches an observability recorder: the solver records
// per-phase spans (critical speed, rounds, jobs saturated/removed) and
// global flow-solver operation counters into it. A nil recorder is the
// no-op default.
func WithRecorder(r *obs.Recorder) Option {
	return func(c *config) { c.rec = r }
}

// UnderSpan nests the solver's phase spans under the given parent span
// (e.g. one OA replanning event) instead of the recorder root. The
// span's recorder is used when WithRecorder was not given.
func UnderSpan(s *obs.Span) Option {
	return func(c *config) { c.span = s }
}

// WithContext makes the solve cancelable: ctx is polled at every
// phase/round boundary of the driver loop, and a canceled or expired
// context unwinds the solve promptly with an error wrapping
// mpsserr.ErrCanceled. The solver arena is left in a reusable state — a
// later Schedule call on the same Solver starts fresh. A nil ctx (the
// default) disables the checks entirely.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// canceled converts a non-nil ctx error into the typed solver error,
// annotated with the phase/round position the solve had reached.
func canceled(ctx context.Context, phase, round int) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("opt: solve canceled (phase %d, round %d): %v: %w", phase, round, err, mpsserr.ErrCanceled)
	}
	return nil
}

// Solver is a reusable solver arena: the flow graphs, the job×interval
// activity index and all round bookkeeping live in the Solver and are
// recycled across Schedule calls, so steady-state solving does not
// allocate graph storage. A Solver is not safe for concurrent use; use
// one per goroutine (the package-level Schedule draws them from a pool).
type Solver struct {
	fe floatEngine
	ee exactEngine
}

// NewSolver returns an empty solver arena.
func NewSolver() *Solver { return &Solver{} }

var solverPool pool.FreeList[Solver]

// Schedule computes an energy-optimal schedule for the instance. The
// returned schedule is feasible (verifiable with schedule.Verify) and
// optimal for every convex non-decreasing power function with P(0) = 0.
// It draws a pooled Solver; long-lived callers that solve repeatedly
// (e.g. the online planner) hold their own Solver instead.
func Schedule(in *job.Instance, opts ...Option) (*Result, error) {
	s := solverPool.Get()
	defer solverPool.Put(s)
	return s.Schedule(in, opts...)
}

// Schedule computes an energy-optimal schedule reusing the solver arena.
//
// Failure handling: the float64 fast path can fail numerically on
// hostile inputs (ErrNumeric) or trip a contained solver invariant
// (ErrInternal). Both are retried automatically before surfacing — first
// with the warm-start engine disabled (ColdStart, counter
// "opt.fallback_cold"), then with the exact rational engine (counter
// "opt.fallback_exact") — so production callers only see an error when
// every rung of the ladder fails. Explicit Exact() runs skip the ladder:
// there is nothing more exact to fall back to.
func (s *Solver) Schedule(in *job.Instance, opts ...Option) (*Result, error) {
	cfg := config{tol: flow.SolveTolerance}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.span == nil {
		cfg.span = cfg.rec.Root()
	}
	if cfg.rec == nil {
		cfg.rec = cfg.span.Recorder()
	}
	if err := validateForSolve(in); err != nil {
		return nil, err
	}
	if cfg.decompose {
		if comps := componentRanges(in.Jobs); len(comps) > 1 {
			return scheduleDecomposed(in, comps, &cfg, opts)
		}
	}
	if cfg.exact {
		s.ee.cold = cfg.cold
		s.ee.contract = !cfg.noContract
		return runPhases(cfg.ctx, in, &s.ee, cfg.rec, cfg.span)
	}
	s.fe.tol = cfg.tol
	s.fe.cold = cfg.cold
	s.fe.contract = !cfg.noContract
	s.fe.par = cfg.par
	res, err := runPhases(cfg.ctx, in, &s.fe, cfg.rec, cfg.span)
	if err == nil || !retryable(err) {
		return res, err
	}
	floatErr := err
	if !cfg.cold {
		cfg.rec.Add("opt.fallback_cold", 1)
		s.fe.cold = true
		res, err = runPhases(cfg.ctx, in, &s.fe, cfg.rec, cfg.span)
		s.fe.cold = false
		if err == nil {
			return res, nil
		}
		if !retryable(err) {
			return nil, err
		}
	}
	cfg.rec.Add("opt.fallback_exact", 1)
	s.ee.cold = false
	s.ee.contract = !cfg.noContract
	res, err = runPhases(cfg.ctx, in, &s.ee, cfg.rec, cfg.span)
	if err != nil {
		return nil, fmt.Errorf("opt: exact fallback also failed: %w (float path: %v)", err, floatErr)
	}
	return res, nil
}

// retryable reports whether a later rung of the fallback ladder may
// succeed where this error failed: numeric failures by construction,
// internal invariant violations because a differently-conditioned
// engine often sidesteps the triggering state. Invalid or infeasible
// inputs fail identically everywhere.
func retryable(err error) bool {
	return errors.Is(err, mpsserr.ErrNumeric) || errors.Is(err, mpsserr.ErrInternal)
}

// validateForSolve is the solver-boundary input check: structural
// validity only (processor count, non-empty, well-formed job fields).
// Duplicate-ID detection is left to the public API's ValidateInstance —
// the round loop is indifferent to IDs, and this runs on every replan of
// the online planner, where an extra map allocation per arrival would
// show up in the profiles.
func validateForSolve(in *job.Instance) error {
	if in == nil {
		return fmt.Errorf("%w: nil instance", mpsserr.ErrInvalidInstance)
	}
	if in.M < 1 {
		return fmt.Errorf("%w: need at least one processor, got %d", mpsserr.ErrInvalidInstance, in.M)
	}
	if len(in.Jobs) == 0 {
		return fmt.Errorf("%w: empty instance", mpsserr.ErrInvalidInstance)
	}
	for _, j := range in.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// phaseEngine is the round loop's arithmetic backend. floatEngine runs
// it in float64, exactEngine in math/big.Rat; runPhases drives both so
// the two paths cannot drift structurally.
type phaseEngine interface {
	// prepare is called once per solve: cache instance-wide state, most
	// importantly the job×interval activity index.
	prepare(in *job.Instance, ivs []job.Interval, st *Stats, rec *obs.Recorder)
	// beginPhase conjectures cand as the next phase's job set and builds
	// the flow network G(J, m, s) once. degenerate reports a network with
	// no capacity at all (every m_ij = 0).
	beginPhase(used, cand []int, span *obs.Span) (degenerate bool)
	// solveRound (re-)solves the max flow and reports whether the
	// conjecture was accepted. When it was not, the engine has already
	// selected the excluded job for removeExcluded.
	solveRound() (accepted bool)
	// removeExcluded removes the job selected by the last solveRound
	// from the network (draining its flow on the warm path).
	removeExcluded() (degenerate, empty bool)
	// dropLeastWork removes the least-work candidate; the driver calls
	// it to make progress on degenerate (zero-capacity) networks.
	dropLeastWork() (degenerate, empty bool)
	// accept finalizes the phase: canonicalize the warm flow and return
	// the phase speed, m_ij vector and per-job interval times.
	accept() (speed float64, mj []int, tkj map[int][]pieceTime)
	// acceptedCand returns the accepted candidate set (instance job
	// indices, in input order). Valid until the next beginPhase.
	acceptedCand() []int
	spanName(phase int) string
	emptyErr() error
}

// testHookRound, when non-nil, runs before every solveRound call with a
// flag telling the engine kind apart. Tests use it to inject invariant
// panics and exercise the recover/fallback path; it is never set outside
// tests.
var testHookRound func(exact bool)

// runPhases is the shared phase/round driver for both engines. It is
// also the solver's panic-containment boundary: invariant violations
// raised anywhere below (the flow drain walks, the engines, the
// wrap-around packer) are recovered here and converted into typed
// errors — flow.InvariantViolation values with Numeric set become
// ErrNumeric (the fallback ladder retries those), everything else
// becomes ErrInternal — annotated with the phase/round position the
// solver had reached, mirroring the span trace internal/obs records.
//
// It is also the cancellation boundary: a non-nil ctx is polled once
// per round (each round is one max-flow solve, the natural quantum),
// and a canceled context unwinds with ErrCanceled before the next
// solve starts. Mid-round state never leaks: every later Schedule call
// rebuilds the per-phase engine state from scratch in beginPhase.
func runPhases(ctx context.Context, in *job.Instance, eng phaseEngine, rec *obs.Recorder, parent *obs.Span) (res *Result, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		phase, rounds := 0, 0
		if res != nil {
			phase, rounds = len(res.Phases)+1, res.Stats.Rounds
		}
		rec.Add("opt.panics_recovered", 1)
		if iv, ok := r.(*flow.InvariantViolation); ok && iv.Numeric {
			err = fmt.Errorf("opt: %s (phase %d, round %d): %w", iv.Msg, phase, rounds, mpsserr.ErrNumeric)
		} else {
			err = fmt.Errorf("opt: solver panic: %v (phase %d, round %d): %w", r, phase, rounds, mpsserr.ErrInternal)
		}
		res = nil
	}()

	ivs := job.Partition(in.Jobs)
	used := make([]int, len(ivs)) // processors occupied by earlier phases
	remaining := make([]int, 0, in.N())
	for i := range in.Jobs {
		remaining = append(remaining, i)
	}

	res = &Result{Schedule: schedule.New(in.M), Intervals: ivs}
	eng.prepare(in, ivs, &res.Stats, rec)
	_, isExact := eng.(*exactEngine)

	for len(remaining) > 0 {
		span := parent.StartSpan(eng.spanName(len(res.Phases) + 1))
		span.Add("candidates", int64(len(remaining)))
		degenerate := eng.beginPhase(used, remaining, span)
		for {
			if cerr := canceled(ctx, len(res.Phases)+1, res.Stats.Rounds); cerr != nil {
				rec.Add("opt.canceled", 1)
				span.End()
				return nil, cerr
			}
			res.Stats.Rounds++
			rec.Add("opt.rounds", 1)
			if degenerate {
				// No capacity anywhere: drop the candidate with the least
				// work to make progress; this indicates a degenerate
				// instance and ends in the emptied-candidate error below.
				rec.Add("opt.jobs_removed", 1)
				span.Add("jobs_removed", 1)
				var empty bool
				degenerate, empty = eng.dropLeastWork()
				if empty {
					return nil, eng.emptyErr()
				}
				continue
			}
			if testHookRound != nil {
				testHookRound(isExact)
			}
			if eng.solveRound() {
				break
			}
			rec.Add("opt.jobs_removed", 1)
			span.Add("jobs_removed", 1)
			var empty bool
			degenerate, empty = eng.removeExcluded()
			if empty {
				return nil, eng.emptyErr()
			}
		}
		speed, mj, tkj := eng.accept()
		cand := eng.acceptedCand()
		if err := emitPhase(in, ivs, used, cand, speed, mj, tkj, res); err != nil {
			// Packing can only fail when the flow the engine certified
			// does not fit its intervals: precision loss on the float
			// path (the ladder retries), a bug on the exact path.
			if isExact {
				return nil, fmt.Errorf("%v: %w", err, mpsserr.ErrInternal)
			}
			return nil, fmt.Errorf("%v: %w", err, mpsserr.ErrNumeric)
		}
		rec.Add("opt.phases", 1)
		span.Add("jobs_saturated", int64(len(cand)))
		span.SetValue("speed", speed)
		span.End()
		remaining = subtract(remaining, cand)
	}

	res.Schedule.Normalize()
	return res, nil
}

// pieceTime is the time job (by instance index) runs in one interval.
type pieceTime struct {
	ivIdx int
	t     float64
}

// emitPhase converts the accepted round's flow into schedule segments and
// bookkeeping.
func emitPhase(in *job.Instance, ivs []job.Interval, used, cand []int, speed float64, mj []int, tkj map[int][]pieceTime, res *Result) error {
	phase := Phase{Speed: speed, Procs: append([]int(nil), mj...)}
	for _, k := range cand {
		phase.JobIDs = append(phase.JobIDs, in.Jobs[k].ID)
	}
	// Group pieces per interval.
	perIv := make([][]schedule.Piece, len(ivs))
	for k, pieces := range tkj {
		for _, p := range pieces {
			dur := math.Min(p.t, ivs[p.ivIdx].Len())
			perIv[p.ivIdx] = append(perIv[p.ivIdx], schedule.Piece{
				JobID:    in.Jobs[k].ID,
				Duration: dur,
				Speed:    speed,
			})
		}
	}
	for jx := range ivs {
		if mj[jx] == 0 || len(perIv[jx]) == 0 {
			continue
		}
		// tkj is a map, so piece order is otherwise nondeterministic;
		// sort by job ID to make the solver's output reproducible.
		slices.SortFunc(perIv[jx], func(a, b schedule.Piece) int {
			return cmp.Compare(a.JobID, b.JobID)
		})
		procs := make([]int, mj[jx])
		for i := range procs {
			procs[i] = used[jx] + i
		}
		segs, err := schedule.WrapAround(ivs[jx].Start, ivs[jx].End, procs, perIv[jx])
		if err != nil {
			return fmt.Errorf("opt: packing interval %v: %w", ivs[jx], err)
		}
		for _, s := range segs {
			res.Schedule.Add(s)
		}
		used[jx] += mj[jx]
	}
	res.Phases = append(res.Phases, phase)
	res.Stats.Phases++
	return nil
}

// publishDinic folds one float-path max-flow solve's operation counts
// into the recorder's global counters and the enclosing phase span.
// All calls are no-ops when observability is off.
func publishDinic(rec *obs.Recorder, span *obs.Span, ops flow.DinicOps) {
	if !rec.Enabled() && span == nil {
		return
	}
	rec.Add("flow.solves", 1)
	rec.Add("flow.dinic.bfs_passes", ops.BFSPasses)
	rec.Add("flow.dinic.aug_paths", ops.AugPaths)
	rec.Add("flow.dinic.edges_scanned", ops.EdgesScanned)
	span.Add("flow_calls", 1)
	span.Add("bfs_passes", ops.BFSPasses)
	span.Add("aug_paths", ops.AugPaths)
	span.Add("edges_scanned", ops.EdgesScanned)
}

// publishParallel folds one concurrent max-flow solve's operation
// counts into the recorder and the enclosing phase span.
func publishParallel(rec *obs.Recorder, span *obs.Span, ops flow.ParOps) {
	if !rec.Enabled() && span == nil {
		return
	}
	rec.Add("flow.parallel_solves", 1)
	rec.Add("flow.global_relabels", ops.GlobalRelabels)
	rec.Add("flow.steals", ops.Steals)
	rec.Add("flow.par.pushes", ops.Pushes)
	rec.Add("flow.par.relabels", ops.Relabels)
	rec.Add("flow.par.discharges", ops.Discharges)
	rec.Add("flow.par.gap_firings", ops.GapFirings)
	span.Add("parallel_solves", 1)
	span.Add("global_relabels", ops.GlobalRelabels)
	span.Add("steals", ops.Steals)
}

// publishExact is publishDinic for the exact rational solver.
func publishExact(rec *obs.Recorder, span *obs.Span, ops flow.DinicOps) {
	if !rec.Enabled() && span == nil {
		return
	}
	rec.Add("flow.solves", 1)
	rec.Add("flow.exact.bfs_passes", ops.BFSPasses)
	rec.Add("flow.exact.aug_paths", ops.AugPaths)
	rec.Add("flow.exact.edges_scanned", ops.EdgesScanned)
	span.Add("flow_calls", 1)
	span.Add("bfs_passes", ops.BFSPasses)
	span.Add("aug_paths", ops.AugPaths)
	span.Add("edges_scanned", ops.EdgesScanned)
}

func subtract(all, remove []int) []int {
	drop := make(map[int]bool, len(remove))
	for _, k := range remove {
		drop[k] = true
	}
	out := all[:0]
	for _, k := range all {
		if !drop[k] {
			out = append(out, k)
		}
	}
	return out
}
