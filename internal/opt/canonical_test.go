package opt

import (
	"math"
	"testing"

	"mpss/internal/job"
	"mpss/internal/power"
	"mpss/internal/workload"
)

// commonRelease rewrites an instance so every job is available from time
// zero — the setting of Section 3.1, where Lemma 6's staircase property
// applies (with future releases the property genuinely fails).
func commonRelease(t *testing.T, seed int64, n, m int) *job.Instance {
	t.Helper()
	base, err := workload.Uniform(workload.Spec{N: n, M: m, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	jobs := append([]job.Job(nil), base.Jobs...)
	for i := range jobs {
		jobs[i].Release = 0
	}
	in, err := job.NewInstance(m, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCanonicalizePreservesEverything(t *testing.T) {
	p := power.MustAlpha(2)
	for seed := int64(0); seed < 6; seed++ {
		in, err := workload.Bursty(workload.Spec{N: 10, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		canon, err := Canonicalize(res.Schedule, res.Intervals)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := canon.Verify(in); err != nil {
			t.Fatalf("seed %d: canonical schedule infeasible: %v", seed, err)
		}
		if a, b := res.Schedule.Energy(p), canon.Energy(p); math.Abs(a-b) > 1e-9*(1+a) {
			t.Errorf("seed %d: energy changed %v -> %v", seed, a, b)
		}
	}
}

// Lemma 6: on instances where all jobs share a release time, the
// canonical schedule's per-processor speeds are non-increasing in time.
func TestLemma6Staircase(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, m := range []int{1, 2, 4} {
			in := commonRelease(t, seed, 10, m)
			res, err := Schedule(in)
			if err != nil {
				t.Fatal(err)
			}
			canon, err := Canonicalize(res.Schedule, res.Intervals)
			if err != nil {
				t.Fatal(err)
			}
			if p, iv, ok := StaircaseViolation(canon, res.Intervals); !ok {
				t.Errorf("seed %d m=%d: staircase violated on processor %d at interval %d",
					seed, m, p, iv)
			}
		}
	}
}

// Lemma 2 (checked inside Canonicalize): every processor runs one speed
// per event interval in the solver's output. Any violation would error.
func TestLemma2ConstantSpeedPerInterval(t *testing.T) {
	for _, g := range workload.All() {
		in, err := g.Make(workload.Spec{N: 10, M: 3, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Canonicalize(res.Schedule, res.Intervals); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

// With future releases the staircase need not hold — document the
// boundary of Lemma 6 with a crafted counterexample.
func TestStaircaseNotRequiredWithReleases(t *testing.T) {
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 2, Work: 1},  // slow early job
		{ID: 2, Release: 2, Deadline: 3, Work: 10}, // fast late job
	}
	in := mustInstance(t, 1, jobs)
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := Canonicalize(res.Schedule, res.Intervals)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := StaircaseViolation(canon, res.Intervals); ok {
		t.Skip("this seed happened to be monotone; the property is not claimed either way")
	}
	// Reaching here just demonstrates the violation exists — expected.
}

// Lemma 9: if a job finishes strictly before its deadline in an optimal
// schedule (common release time), the minimum processor speed throughout
// the remaining window is at least the job's own speed.
func TestLemma9MinSpeedAfterEarlyFinish(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := commonRelease(t, seed, 10, 3)
		res, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		speedOf := map[int]float64{}
		finish := map[int]float64{}
		for _, ph := range res.Phases {
			for _, id := range ph.JobIDs {
				speedOf[id] = ph.Speed
			}
		}
		for _, seg := range res.Schedule.Segments {
			if seg.End > finish[seg.JobID] {
				finish[seg.JobID] = seg.End
			}
		}
		for _, j := range in.Jobs {
			f := finish[j.ID]
			if f >= j.Deadline-1e-9 {
				continue
			}
			s := speedOf[j.ID]
			for _, frac := range []float64{0.1, 0.5, 0.9} {
				tt := f + (j.Deadline-f)*frac
				if got := res.Schedule.MinSpeedAt(tt); got < s-1e-6*(1+s) {
					t.Errorf("seed %d: job %d finished at %v (deadline %v, speed %v) but min speed at %v is %v",
						seed, j.ID, f, j.Deadline, s, tt, got)
				}
			}
		}
	}
}

// Lemmas 10/11 (arrival analysis): growing one job's volume never lowers
// any job's speed (Lemma 10), and jobs in strictly slower speed sets than
// the grown job keep their speeds exactly (Lemma 11).
func TestLemma10And11VolumeGrowth(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := commonRelease(t, seed, 8, 2)
		base, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		speedOf := func(res *Result) map[int]float64 {
			out := map[int]float64{}
			for _, ph := range res.Phases {
				for _, id := range ph.JobIDs {
					out[id] = ph.Speed
				}
			}
			return out
		}
		baseSpeeds := speedOf(base)

		// Grow the first job's volume by 10%.
		grown := append([]job.Job(nil), in.Jobs...)
		grownID := grown[0].ID
		grown[0].Work *= 1.1
		in2, err := job.NewInstance(in.M, grown)
		if err != nil {
			t.Fatal(err)
		}
		after, err := Schedule(in2)
		if err != nil {
			t.Fatal(err)
		}
		afterSpeeds := speedOf(after)

		for id, s0 := range baseSpeeds {
			s1 := afterSpeeds[id]
			// Lemma 10: no speed decreases.
			if s1 < s0-1e-6*(1+s0) {
				t.Errorf("seed %d: job %d speed dropped %v -> %v after growth", seed, id, s0, s1)
			}
			// Lemma 11: jobs strictly slower than the grown job stay put.
			if s0 < baseSpeeds[grownID]-1e-9*(1+s0) && id != grownID {
				if math.Abs(s1-s0) > 1e-6*(1+s0) {
					t.Errorf("seed %d: slower job %d speed changed %v -> %v (grown job at %v)",
						seed, id, s0, s1, baseSpeeds[grownID])
				}
			}
		}
	}
}
