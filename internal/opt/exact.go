package opt

import (
	"fmt"
	"math/big"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/mpsserr"
	"mpss/internal/obs"
)

// exactEngine mirrors floatEngine with exact rational arithmetic for
// every phase decision. float64 inputs are converted losslessly (every
// finite float64 is a rational), so saturation tests and job removals
// are exact; only the final segment emission rounds back to float64.
//
// The warm path reuses the float engine's structure — build once per
// phase, drain the removed job, rescale, re-augment — but because the
// arithmetic is exact it can rescale the source capacities
// multiplicatively with flow.RatGraph.ScaleSourceCaps: w/s_old *
// (s_old/s_new) equals w/s_new as a rational, so no absolute re-set is
// needed for warm and cold to agree exactly.
type exactEngine struct {
	cold     bool
	contract bool // merge flow-equivalent interval runs before solving

	in  *job.Instance
	ivs []job.Interval
	st  *Stats
	rec *obs.Recorder

	ivLen  []*big.Rat
	work   []*big.Rat
	jobIvs [][]int32

	span        *obs.Span
	cand0       []int
	alive       []bool
	aliveCount  int
	free        []int
	activeCount []int
	byIv        [][]int32
	mj          []int
	totalWork   *big.Rat
	totalTime   *big.Rat
	speed       *big.Rat

	// Super-interval partition (contract.go). In exact arithmetic the
	// contracted and raw networks have identical max-flow values and
	// residual co-reachability, so every phase decision provably matches
	// the raw path's.
	con      contraction
	supLen   []*big.Rat
	supNode  []int32
	supSink  []flow.EdgeID
	supValid bool

	g         *flow.RatGraph
	needBuild bool
	jobNode   []int32
	ivNode    []int32
	sink      int
	srcEdges  []flow.EdgeID
	sinkEdges []flow.EdgeID
	midPos    []int32
	midIv     []int32
	midID     []flow.EdgeID
	prevOps   flow.DinicOps
	removals  int
	pending   int
	accepted  []int
}

func (e *exactEngine) spanName(phase int) string { return fmt.Sprintf("phase %d (exact)", phase) }

func (e *exactEngine) emptyErr() error {
	// Exact arithmetic cannot misclassify a feasible conjecture, so an
	// emptied candidate set here is a solver bug, not a precision issue.
	return fmt.Errorf("opt: exact phase emptied its candidate set: %w", mpsserr.ErrInternal)
}

func (e *exactEngine) prepare(in *job.Instance, ivs []job.Interval, st *Stats, rec *obs.Recorder) {
	e.in, e.ivs, e.st, e.rec = in, ivs, st, rec
	e.ivLen = e.ivLen[:0]
	for _, iv := range ivs {
		e.ivLen = append(e.ivLen, new(big.Rat).SetFloat64(iv.Len()))
	}
	e.work = e.work[:0]
	for _, j := range in.Jobs {
		e.work = append(e.work, new(big.Rat).SetFloat64(j.Work))
	}
	e.jobIvs = growLists(e.jobIvs, in.N())
	for k, j := range in.Jobs {
		e.jobIvs[k] = e.jobIvs[k][:0]
		for jx, iv := range ivs {
			if j.ActiveIn(iv.Start, iv.End) {
				e.jobIvs[k] = append(e.jobIvs[k], int32(jx))
			}
		}
	}
}

func (e *exactEngine) beginPhase(used, cand []int, span *obs.Span) bool {
	e.span = span
	e.cand0 = append(e.cand0[:0], cand...)
	n := len(cand)
	e.alive = growBools(e.alive, n)
	for pos := range e.alive {
		e.alive[pos] = true
	}
	e.aliveCount = n
	nIv := len(e.ivs)
	e.free = growInts(e.free, nIv)
	e.activeCount = growInts(e.activeCount, nIv)
	e.mj = growInts(e.mj, nIv)
	e.byIv = growLists(e.byIv, nIv)
	for jx := range e.byIv {
		e.free[jx] = max(0, e.in.M-used[jx])
		e.activeCount[jx] = 0
		e.byIv[jx] = e.byIv[jx][:0]
	}
	for pos, k := range cand {
		for _, jx := range e.jobIvs[k] {
			e.byIv[jx] = append(e.byIv[jx], int32(pos))
			e.activeCount[jx]++
		}
	}
	e.removals = 0
	e.needBuild = true
	e.supValid = false
	e.con.on = false
	for jx := 0; jx < nIv; jx++ {
		e.mj[jx] = min(e.activeCount[jx], e.free[jx])
	}
	e.recomputeTotals()
	if e.totalTime.Sign() <= 0 {
		return true
	}
	e.speed = new(big.Rat).Quo(e.totalWork, e.totalTime)
	e.buildGraph()
	return false
}

func (e *exactEngine) recomputeTotals() {
	tw := new(big.Rat)
	for pos, k := range e.cand0 {
		if e.alive[pos] {
			tw.Add(tw, e.work[k])
		}
	}
	tt := new(big.Rat)
	term := new(big.Rat)
	for jx := range e.ivs {
		if e.mj[jx] > 0 {
			term.SetInt64(int64(e.mj[jx]))
			term.Mul(term, e.ivLen[jx])
			tt.Add(tt, term)
		}
	}
	e.totalWork, e.totalTime = tw, tt
}

func (e *exactEngine) buildGraph() {
	if e.contract && !e.supValid {
		raw := e.con.compute(e.byIv, e.mj)
		e.supLen = e.con.sumLensRat(e.supLen, e.ivLen)
		e.con.on = e.con.nSup < raw
		e.supValid = true
		e.rec.Add("opt.intervals_raw", int64(raw))
		e.rec.Add("opt.intervals_contracted", int64(raw-e.con.nSup))
	}
	if e.con.on {
		e.buildContracted()
		return
	}
	e.buildRaw("opt.graph_rebuilds")
}

// buildContracted is the exact mirror of the float engine's contracted
// build: one node per super-interval, rational run lengths.
func (e *exactEngine) buildContracted() {
	e.jobNode = growInt32s(e.jobNode, len(e.cand0))
	node := 1
	for pos := range e.cand0 {
		if e.alive[pos] {
			e.jobNode[pos] = int32(node)
			node++
		} else {
			e.jobNode[pos] = -1
		}
	}
	e.supNode = growInt32s(e.supNode, e.con.nSup)
	for s := 0; s < e.con.nSup; s++ {
		if e.mj[e.con.supHead[s]] > 0 {
			e.supNode[s] = int32(node)
			node++
		} else {
			e.supNode[s] = -1
		}
	}
	e.sink = node
	if e.g == nil {
		e.g = flow.NewRatGraph(node + 1)
	} else {
		e.g.Reset(node + 1)
	}
	if node+1 > e.st.FlowVertices {
		e.st.FlowVertices = node + 1
	}
	c := new(big.Rat)
	e.srcEdges = growEdgeIDs(e.srcEdges, len(e.cand0))
	for pos, k := range e.cand0 {
		if e.alive[pos] {
			c.Quo(e.work[k], e.speed)
			e.srcEdges[pos] = e.g.AddEdge(0, int(e.jobNode[pos]), c)
		}
	}
	e.midPos = e.midPos[:0]
	e.midIv = e.midIv[:0]
	e.midID = e.midID[:0]
	e.supSink = growEdgeIDs(e.supSink, e.con.nSup)
	for s := 0; s < e.con.nSup; s++ {
		if e.supNode[s] < 0 {
			continue
		}
		head := e.con.supHead[s]
		for _, pos := range e.byIv[head] {
			if !e.alive[pos] {
				continue
			}
			id := e.g.AddEdge(int(e.jobNode[pos]), int(e.supNode[s]), e.supLen[s])
			e.midPos = append(e.midPos, pos)
			e.midIv = append(e.midIv, int32(s))
			e.midID = append(e.midID, id)
		}
		c.SetInt64(int64(e.mj[head]))
		c.Mul(c, e.supLen[s])
		e.supSink[s] = e.g.AddEdge(int(e.supNode[s]), e.sink, c)
	}
	e.rec.Add("opt.graph_rebuilds", 1)
	e.prevOps = flow.DinicOps{}
	e.needBuild = false
}

func (e *exactEngine) buildRaw(counter string) {
	nIv := len(e.ivs)
	e.jobNode = growInt32s(e.jobNode, len(e.cand0))
	node := 1
	for pos := range e.cand0 {
		if e.alive[pos] {
			e.jobNode[pos] = int32(node)
			node++
		} else {
			e.jobNode[pos] = -1
		}
	}
	e.ivNode = growInt32s(e.ivNode, nIv)
	for jx := 0; jx < nIv; jx++ {
		if e.mj[jx] > 0 {
			e.ivNode[jx] = int32(node)
			node++
		} else {
			e.ivNode[jx] = -1
		}
	}
	e.sink = node
	if e.g == nil {
		e.g = flow.NewRatGraph(node + 1)
	} else {
		e.g.Reset(node + 1)
	}
	if node+1 > e.st.FlowVertices {
		e.st.FlowVertices = node + 1
	}
	c := new(big.Rat)
	e.srcEdges = growEdgeIDs(e.srcEdges, len(e.cand0))
	for pos, k := range e.cand0 {
		if e.alive[pos] {
			c.Quo(e.work[k], e.speed)
			e.srcEdges[pos] = e.g.AddEdge(0, int(e.jobNode[pos]), c)
		}
	}
	e.midPos = e.midPos[:0]
	e.midIv = e.midIv[:0]
	e.midID = e.midID[:0]
	e.sinkEdges = growEdgeIDs(e.sinkEdges, nIv)
	for jx := 0; jx < nIv; jx++ {
		if e.mj[jx] == 0 {
			continue
		}
		for _, pos := range e.byIv[jx] {
			if !e.alive[pos] {
				continue
			}
			id := e.g.AddEdge(int(e.jobNode[pos]), int(e.ivNode[jx]), e.ivLen[jx])
			e.midPos = append(e.midPos, pos)
			e.midIv = append(e.midIv, int32(jx))
			e.midID = append(e.midID, id)
		}
		c.SetInt64(int64(e.mj[jx]))
		c.Mul(c, e.ivLen[jx])
		e.sinkEdges[jx] = e.g.AddEdge(int(e.ivNode[jx]), e.sink, c)
	}
	e.rec.Add(counter, 1)
	e.prevOps = flow.DinicOps{}
	e.needBuild = false
}

func (e *exactEngine) publish() {
	ops := e.g.Ops()
	publishExact(e.rec, e.span, ops.Sub(e.prevOps))
	e.prevOps = ops
}

func (e *exactEngine) solveRound() bool {
	if e.needBuild {
		e.buildGraph()
	}
	stop := e.rec.Time("opt.flow_solve_seconds")
	e.g.MaxFlow(0, e.sink)
	stop()
	if e.removals > 0 && !e.cold {
		e.rec.Add("flow.warm_hits", 1)
	}
	e.publish()

	value := new(big.Rat)
	for pos := range e.cand0 {
		if e.alive[pos] {
			value.Add(value, e.g.Flow(e.srcEdges[pos]))
		}
	}
	if value.Cmp(e.totalTime) >= 0 {
		return true
	}
	mark := e.g.CoReachable(e.sink)
	e.pending = -1
	for pos := range e.cand0 {
		if e.alive[pos] && mark[e.jobNode[pos]] {
			e.pending = pos
			break
		}
	}
	// Unreachable by Lemma 4's counting argument; accept defensively.
	return e.pending < 0
}

func (e *exactEngine) removeExcluded() (degenerate, empty bool) {
	pos := e.pending
	k := e.cand0[pos]
	e.alive[pos] = false
	e.aliveCount--
	if e.aliveCount == 0 {
		return false, true
	}
	drained := new(big.Rat)
	if !e.cold {
		drained.Add(drained, e.g.RemoveJobEdge(e.srcEdges[pos]))
	}
	c := new(big.Rat)
	lastSup := int32(-1) // dedupes run members, as in the float engine
	for _, jx := range e.jobIvs[k] {
		e.activeCount[jx]--
		nm := min(e.activeCount[jx], e.free[jx])
		if nm < e.mj[jx] {
			e.mj[jx] = nm
			if e.cold {
				continue
			}
			if e.con.on {
				if s := e.con.supOf[jx]; s >= 0 && s != lastSup {
					c.SetInt64(int64(nm))
					c.Mul(c, e.supLen[s])
					drained.Add(drained, e.g.SetCapacity(e.supSink[s], c))
					lastSup = s
				}
			} else if e.ivNode[jx] >= 0 {
				c.SetInt64(int64(nm))
				c.Mul(c, e.ivLen[jx])
				drained.Add(drained, e.g.SetCapacity(e.sinkEdges[jx], c))
			}
		}
	}
	oldSpeed := e.speed
	e.recomputeTotals()
	if e.totalTime.Sign() <= 0 {
		e.needBuild = true
		return true, false
	}
	e.speed = new(big.Rat).Quo(e.totalWork, e.totalTime)
	if e.cold {
		e.needBuild = true
		return false, false
	}
	e.removals++
	// Exact arithmetic: rescaling by s_old/s_new lands every source
	// capacity exactly on w/s_new, so one ScaleSourceCaps call replaces
	// the per-edge absolute updates of the float engine.
	ratio := new(big.Rat).Quo(oldSpeed, e.speed)
	drained.Add(drained, e.g.ScaleSourceCaps(ratio))
	df, _ := drained.Float64()
	e.rec.Add("flow.drained_units", int64(df+0.5))
	return false, false
}

func (e *exactEngine) dropLeastWork() (degenerate, empty bool) {
	best := -1
	for pos, k := range e.cand0 {
		if e.alive[pos] && (best < 0 || e.in.Jobs[k].Work < e.in.Jobs[e.cand0[best]].Work) {
			best = pos
		}
	}
	k := e.cand0[best]
	e.alive[best] = false
	e.aliveCount--
	if e.aliveCount == 0 {
		return false, true
	}
	for _, jx := range e.jobIvs[k] {
		e.activeCount[jx]--
		e.mj[jx] = min(e.activeCount[jx], e.free[jx])
	}
	e.recomputeTotals()
	if e.totalTime.Sign() <= 0 {
		return true, false
	}
	e.speed = new(big.Rat).Quo(e.totalWork, e.totalTime)
	e.needBuild = true
	return false, false
}

func (e *exactEngine) accept() (float64, []int, map[int][]pieceTime) {
	if e.con.on {
		// See floatEngine.accept: emission needs raw per-interval flows,
		// so rebuild the raw-shaped network and solve from zero.
		e.con.on = false
		e.buildRaw("opt.emit_rebuilds")
		stop := e.rec.Time("opt.flow_solve_seconds")
		e.g.MaxFlow(0, e.sink)
		stop()
		e.publish()
	} else if !e.cold && e.removals > 0 {
		e.g.ResetFlow()
		stop := e.rec.Time("opt.flow_solve_seconds")
		e.g.MaxFlow(0, e.sink)
		stop()
		e.publish()
	}
	tkj := make(map[int][]pieceTime, e.aliveCount)
	for i, pos := range e.midPos {
		if !e.alive[pos] {
			continue
		}
		if f := e.g.Flow(e.midID[i]); f.Sign() > 0 {
			fv, _ := f.Float64()
			k := e.cand0[pos]
			tkj[k] = append(tkj[k], pieceTime{ivIdx: int(e.midIv[i]), t: fv})
		}
	}
	sp, _ := e.speed.Float64()
	return sp, e.mj, tkj
}

func (e *exactEngine) acceptedCand() []int {
	e.accepted = e.accepted[:0]
	for pos, k := range e.cand0 {
		if e.alive[pos] {
			e.accepted = append(e.accepted, k)
		}
	}
	return e.accepted
}
