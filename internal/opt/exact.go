package opt

import (
	"fmt"
	"math/big"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/obs"
	"mpss/internal/schedule"
)

// exactSolve mirrors floatSolve with exact rational arithmetic for every
// phase decision. float64 inputs are converted losslessly (every finite
// float64 is a rational), so saturation tests and job removals are exact;
// only the final segment emission rounds back to float64.
func exactSolve(in *job.Instance, rec *obs.Recorder, parent *obs.Span) (*Result, error) {
	ivs := job.Partition(in.Jobs)
	used := make([]int, len(ivs))
	remaining := make([]int, 0, in.N())
	for i := range in.Jobs {
		remaining = append(remaining, i)
	}

	res := &Result{Schedule: schedule.New(in.M), Intervals: ivs}

	ivLen := make([]*big.Rat, len(ivs))
	for jx, iv := range ivs {
		ivLen[jx] = new(big.Rat).SetFloat64(iv.Len())
	}
	work := make([]*big.Rat, in.N())
	for i, j := range in.Jobs {
		work[i] = new(big.Rat).SetFloat64(j.Work)
	}

	for len(remaining) > 0 {
		span := parent.StartSpan(fmt.Sprintf("phase %d (exact)", len(res.Phases)+1))
		span.Add("candidates", int64(len(remaining)))
		cand := append([]int(nil), remaining...)
		var (
			speed *big.Rat
			mj    []int
			tkj   map[int][]pieceTime
		)
		for {
			res.Stats.Rounds++
			rec.Add("opt.rounds", 1)
			var found bool
			var removed int
			found, removed, speed, mj, tkj = exactRound(in, ivs, ivLen, work, used, cand, &res.Stats, rec, span)
			if found {
				break
			}
			rec.Add("opt.jobs_removed", 1)
			span.Add("jobs_removed", 1)
			cand = deleteIndex(cand, removed)
			if len(cand) == 0 {
				return nil, fmt.Errorf("opt: exact phase emptied its candidate set")
			}
		}
		sp, _ := speed.Float64()
		if err := emitPhase(in, ivs, used, cand, sp, mj, tkj, res); err != nil {
			return nil, err
		}
		rec.Add("opt.phases", 1)
		span.Add("jobs_saturated", int64(len(cand)))
		span.SetValue("speed", sp)
		span.End()
		remaining = subtract(remaining, cand)
	}

	res.Schedule.Normalize()
	return res, nil
}

func exactRound(in *job.Instance, ivs []job.Interval, ivLen []*big.Rat, work []*big.Rat, used, cand []int, st *Stats, rec *obs.Recorder, span *obs.Span) (found bool, removed int, speed *big.Rat, mj []int, tkj map[int][]pieceTime) {
	nIv := len(ivs)
	mj = make([]int, nIv)
	totalWork := new(big.Rat)
	totalTime := new(big.Rat)
	activeIn := make([][]int, nIv)
	for jx, iv := range ivs {
		free := in.M - used[jx]
		if free < 0 {
			free = 0
		}
		for pos, k := range cand {
			if in.Jobs[k].ActiveIn(iv.Start, iv.End) {
				activeIn[jx] = append(activeIn[jx], pos)
			}
		}
		mj[jx] = min(len(activeIn[jx]), free)
		totalTime.Add(totalTime, new(big.Rat).Mul(big.NewRat(int64(mj[jx]), 1), ivLen[jx]))
	}
	for _, k := range cand {
		totalWork.Add(totalWork, work[k])
	}
	if totalTime.Sign() <= 0 {
		return false, 0, nil, mj, nil
	}
	speed = new(big.Rat).Quo(totalWork, totalTime)

	ivNode := make([]int, nIv)
	node := 1 + len(cand)
	for jx := range ivs {
		if mj[jx] > 0 {
			ivNode[jx] = node
			node++
		} else {
			ivNode[jx] = -1
		}
	}
	sink := node
	g := flow.NewRatGraph(node + 1)
	if node+1 > st.FlowVertices {
		st.FlowVertices = node + 1
	}

	for pos, k := range cand {
		g.AddEdge(0, 1+pos, new(big.Rat).Quo(work[k], speed))
	}
	type jobIvEdge struct {
		pos, ivIdx int
		id         flow.EdgeID
	}
	var mid []jobIvEdge
	sinkEdges := make(map[int]flow.EdgeID, nIv)
	for jx := range ivs {
		if mj[jx] == 0 {
			continue
		}
		for _, pos := range activeIn[jx] {
			id := g.AddEdge(1+pos, ivNode[jx], ivLen[jx])
			mid = append(mid, jobIvEdge{pos: pos, ivIdx: jx, id: id})
		}
		sinkEdges[jx] = g.AddEdge(ivNode[jx], sink, new(big.Rat).Mul(big.NewRat(int64(mj[jx]), 1), ivLen[jx]))
	}

	stop := rec.Time("opt.flow_solve_seconds")
	value := g.MaxFlow(0, sink)
	stop()
	publishExact(rec, span, g.Ops())
	if value.Cmp(totalTime) >= 0 {
		tkj = make(map[int][]pieceTime, len(cand))
		for _, e := range mid {
			f := g.Flow(e.id)
			if f.Sign() > 0 {
				fv, _ := f.Float64()
				tkj[cand[e.pos]] = append(tkj[cand[e.pos]], pieceTime{ivIdx: e.ivIdx, t: fv})
			}
		}
		return true, 0, speed, mj, tkj
	}

	// Exact: pick any unsaturated sink edge, then any unsaturated active
	// job edge into it.
	for jx, id := range sinkEdges {
		if g.Saturated(id) {
			continue
		}
		for _, e := range mid {
			if e.ivIdx == jx && !g.Saturated(e.id) {
				return false, e.pos, speed, mj, nil
			}
		}
	}
	// Unreachable by Lemma 4's counting argument.
	return false, 0, speed, mj, nil
}
