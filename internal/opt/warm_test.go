package opt

import (
	"testing"

	"mpss/internal/obs"
	"mpss/internal/workload"
)

// The incremental warm-started engine must be invisible in the output:
// identical phase structure, bit-identical phase speeds, and
// bit-identical schedule segments compared to a cold solve that rebuilds
// the flow network every round. The engine guarantees this by re-setting
// absolute capacities (never rescaling floats multiplicatively) and by
// canonicalizing accepted phases with a from-zero re-solve on the warm
// network, whose zero-capacity removed edges are invisible to Dinic.
func TestWarmMatchesColdExactly(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		in, err := workload.Bursty(workload.Spec{N: 24, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Schedule(in, ColdStart())
		if err != nil {
			t.Fatal(err)
		}
		comparePhases(t, seed, warm, cold)
	}
}

// Same comparison for the exact rational engine, whose warm path uses
// multiplicative source rescaling (exact over rationals).
func TestWarmMatchesColdExact(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in, err := workload.Bursty(workload.Spec{N: 12, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Schedule(in, Exact())
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Schedule(in, Exact(), ColdStart())
		if err != nil {
			t.Fatal(err)
		}
		comparePhases(t, seed, warm, cold)
	}
}

func comparePhases(t *testing.T, seed int64, warm, cold *Result) {
	t.Helper()
	if len(warm.Phases) != len(cold.Phases) {
		t.Fatalf("seed %d: phase counts differ: warm %d vs cold %d",
			seed, len(warm.Phases), len(cold.Phases))
	}
	for i := range warm.Phases {
		w, c := warm.Phases[i], cold.Phases[i]
		if w.Speed != c.Speed {
			t.Fatalf("seed %d phase %d: speed warm %v != cold %v", seed, i, w.Speed, c.Speed)
		}
		if len(w.JobIDs) != len(c.JobIDs) {
			t.Fatalf("seed %d phase %d: job counts differ", seed, i)
		}
		for j := range w.JobIDs {
			if w.JobIDs[j] != c.JobIDs[j] {
				t.Fatalf("seed %d phase %d: job sets differ: %v vs %v",
					seed, i, w.JobIDs, c.JobIDs)
			}
		}
		for j := range w.Procs {
			if w.Procs[j] != c.Procs[j] {
				t.Fatalf("seed %d phase %d: proc reservations differ: %v vs %v",
					seed, i, w.Procs, c.Procs)
			}
		}
	}
	if len(warm.Schedule.Segments) != len(cold.Schedule.Segments) {
		t.Fatalf("seed %d: segment counts differ: warm %d vs cold %d",
			seed, len(warm.Schedule.Segments), len(cold.Schedule.Segments))
	}
	for i := range warm.Schedule.Segments {
		if warm.Schedule.Segments[i] != cold.Schedule.Segments[i] {
			t.Fatalf("seed %d: segment %d differs:\nwarm %v\ncold %v",
				seed, i, warm.Schedule.Segments[i], cold.Schedule.Segments[i])
		}
	}
}

// The whole point of the warm engine: the flow network is built once per
// phase, not once per round. Rejected rounds mutate it in place.
func TestWarmBuildsOncePerPhase(t *testing.T) {
	in, err := workload.Bursty(workload.Spec{N: 32, M: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	res, err := Schedule(in, WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	rebuilds := snap.Counters["opt.graph_rebuilds"]
	phases := snap.Counters["opt.phases"]
	rounds := snap.Counters["opt.rounds"]
	if phases != int64(len(res.Phases)) {
		t.Fatalf("opt.phases=%d, result has %d phases", phases, len(res.Phases))
	}
	if rebuilds > phases {
		t.Fatalf("opt.graph_rebuilds=%d exceeds opt.phases=%d (rounds=%d)",
			rebuilds, phases, rounds)
	}
	if rounds > phases && snap.Counters["flow.warm_hits"] == 0 {
		t.Fatalf("rounds=%d > phases=%d but no flow.warm_hits recorded", rounds, phases)
	}

	// A cold solve of the same instance rebuilds once per round.
	rec2 := obs.New()
	if _, err := Schedule(in, WithRecorder(rec2), ColdStart()); err != nil {
		t.Fatal(err)
	}
	snap2 := rec2.Snapshot()
	if got := snap2.Counters["opt.graph_rebuilds"]; got != snap2.Counters["opt.rounds"] {
		t.Fatalf("cold solve: graph_rebuilds=%d, want one per round (%d)",
			got, snap2.Counters["opt.rounds"])
	}
	if snap2.Counters["flow.warm_hits"] != 0 {
		t.Fatalf("cold solve recorded %d warm hits", snap2.Counters["flow.warm_hits"])
	}
}
