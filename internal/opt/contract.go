package opt

import "math/big"

// Interval contraction.
//
// The flow network G(J, m, s) has one node per atomic event interval,
// but consecutive intervals are often interchangeable: when two adjacent
// intervals I_j, I_{j+1} have the same active candidate set and the same
// processor budget m_j, any feasible per-interval split of a job's time
// between them can be re-split proportionally (t_k -> t_k * |I_j| /
// (|I_j| + |I_{j+1}|) lands every job under the per-interval cap and
// every interval under its m_j |I_j| budget), so replacing the pair with
// one super-interval of length |I_j| + |I_{j+1}| changes neither the
// max-flow value nor which job nodes can reach the sink in the residual
// graph of a maximum flow. Zero-capacity intervals (m_j = 0) contribute
// no node either way and are transparent: a run may span them.
//
// The merge conditions are stable across a phase's removals: byIv is
// fixed at phase start, and two intervals with equal active counts and
// equal m_j = min(active, free) keep equal m_j as the active count
// decreases (if m_j < active then free = m_j on both and stays the
// binding term; if m_j = active both track the shrinking active count).
// computeContraction therefore runs once per phase, and both the warm
// in-place updates and the cold per-round rebuilds reuse the same run
// partition — warm and cold solve literally the same contracted graph.
//
// Correctness of the phase decisions on the contracted graph:
//
//   - the acceptance test compares the max-flow value against totalTime,
//     which the engines always compute over the RAW intervals, and the
//     contracted max-flow value equals the raw one (exactly in rational
//     arithmetic; within ulps — far inside the acceptance slack — in
//     float64);
//   - the excluded-job rule picks the first candidate co-reachable to
//     the sink, and co-reachability of job nodes is a min-cut property
//     preserved by the proportional-split equivalence above.
//
// Schedule emission, however, needs per-raw-interval times, so accept()
// rebuilds the raw-shaped network for the surviving candidate set and
// solves it from zero — exactly the graph and augmentation sequence the
// uncontracted cold path runs for its accepted round, which is what
// makes the contracted solver's output bit-identical to the raw one.
// That rebuild is counted separately ("opt.emit_rebuilds") so the
// build-once-per-phase accounting of the warm engine stays observable.

// contraction is the per-phase super-interval partition shared by the
// float and exact engines (the exact engine carries the rational run
// lengths separately). All slices are arenas reused across phases.
type contraction struct {
	supOf   []int32 // raw interval -> super-interval, -1 for m_j = 0
	supHead []int32 // super-interval -> first raw member
	nSup    int
	on      bool // this phase runs its rounds on the contracted graph
}

// compute builds the run partition for the current phase state: maximal
// runs of m_j > 0 intervals with identical active candidate lists and
// identical m_j, spanning any m_j = 0 gaps between them. It reports the
// number of m_j > 0 raw intervals, for the dispatch decision and the
// contraction counters.
func (c *contraction) compute(byIv [][]int32, mj []int) (rawActive int) {
	nIv := len(mj)
	c.supOf = growInt32s(c.supOf, nIv)
	c.supHead = c.supHead[:0]
	c.nSup = 0
	prev := -1 // last m_j > 0 interval seen
	for jx := 0; jx < nIv; jx++ {
		if mj[jx] == 0 {
			c.supOf[jx] = -1
			continue
		}
		rawActive++
		if prev >= 0 && mj[jx] == mj[prev] && equalInt32(byIv[jx], byIv[prev]) {
			c.supOf[jx] = int32(c.nSup - 1)
		} else {
			c.supOf[jx] = int32(c.nSup)
			c.supHead = append(c.supHead, int32(jx))
			c.nSup++
		}
		prev = jx
	}
	return rawActive
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// sumLens fills supLen[s] with the summed float64 length of run s's
// members, in member order (deterministic summation order keeps the
// derived capacities reproducible across solves).
func (c *contraction) sumLens(supLen []float64, ivLen []float64) []float64 {
	supLen = growFloats(supLen, c.nSup)
	for s := range supLen {
		supLen[s] = 0
	}
	for jx, s := range c.supOf {
		if s >= 0 {
			supLen[s] += ivLen[jx]
		}
	}
	return supLen
}

// sumLensRat is sumLens over exact rational lengths.
func (c *contraction) sumLensRat(supLen []*big.Rat, ivLen []*big.Rat) []*big.Rat {
	for len(supLen) < c.nSup {
		supLen = append(supLen, new(big.Rat))
	}
	supLen = supLen[:c.nSup]
	for _, r := range supLen {
		r.SetInt64(0)
	}
	for jx, s := range c.supOf {
		if s >= 0 {
			supLen[s].Add(supLen[s], ivLen[jx])
		}
	}
	return supLen
}
