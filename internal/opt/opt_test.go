package opt

import (
	"math"
	"testing"
	"testing/quick"

	"mpss/internal/job"
	"mpss/internal/power"
	"mpss/internal/schedule"
	"mpss/internal/workload"
	"mpss/internal/yds"
)

func mustInstance(t *testing.T, m int, jobs []job.Job) *job.Instance {
	t.Helper()
	in, err := job.NewInstance(m, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSingleJobSingleProc(t *testing.T) {
	in := mustInstance(t, 1, []job.Job{{ID: 1, Release: 0, Deadline: 4, Work: 8}})
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 || math.Abs(res.Phases[0].Speed-2) > 1e-9 {
		t.Errorf("phases = %+v, want single phase at speed 2", res.Phases)
	}
}

func TestUniformSharing(t *testing.T) {
	// Three equal jobs on two processors over a common window share the
	// capacity at one uniform speed (with the middle job migrating).
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 3, Work: 6},
		{ID: 2, Release: 0, Deadline: 3, Work: 6},
		{ID: 3, Release: 0, Deadline: 3, Work: 6},
	}
	in := mustInstance(t, 2, jobs)
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 || math.Abs(res.Phases[0].Speed-3) > 1e-9 {
		t.Fatalf("phases = %+v, want one phase at speed 3", res.Phases)
	}
	p := power.MustAlpha(2)
	if got := res.Schedule.Energy(p); math.Abs(got-54) > 1e-6 {
		t.Errorf("energy = %v, want 54", got)
	}
}

func TestTwoPhaseExample(t *testing.T) {
	// J1 is pinned to [0,1) at speed 10; J2 stretches over [0,10) at 0.5.
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 1, Work: 10},
		{ID: 2, Release: 0, Deadline: 10, Work: 5},
	}
	in := mustInstance(t, 2, jobs)
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("got %d phases, want 2: %+v", len(res.Phases), res.Phases)
	}
	if math.Abs(res.Phases[0].Speed-10) > 1e-9 || math.Abs(res.Phases[1].Speed-0.5) > 1e-9 {
		t.Errorf("phase speeds = %v, %v; want 10, 0.5", res.Phases[0].Speed, res.Phases[1].Speed)
	}
	p := power.MustAlpha(2)
	if got := res.Schedule.Energy(p); math.Abs(got-102.5) > 1e-6 {
		t.Errorf("energy = %v, want 102.5", got)
	}
}

func TestMigrationBeatsPartition(t *testing.T) {
	// The best non-migratory 2-processor split of three equal jobs costs
	// 60; the migratory optimum costs 54.
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 3, Work: 6},
		{ID: 2, Release: 0, Deadline: 3, Work: 6},
		{ID: 3, Release: 0, Deadline: 3, Work: 6},
	}
	in := mustInstance(t, 2, jobs)
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	p := power.MustAlpha(2)
	opt := res.Schedule.Energy(p)
	if opt >= 60-1e-6 {
		t.Errorf("migratory optimum %v not below partitioned 60", opt)
	}
	// The middle job must appear on both processors (it migrates).
	procsOf := map[int]map[int]bool{}
	for _, seg := range res.Schedule.Segments {
		if procsOf[seg.JobID] == nil {
			procsOf[seg.JobID] = map[int]bool{}
		}
		procsOf[seg.JobID][seg.Proc] = true
	}
	migrated := false
	for _, procs := range procsOf {
		if len(procs) > 1 {
			migrated = true
		}
	}
	if !migrated {
		t.Error("no job migrated in the wrap-around schedule")
	}
}

func TestMoreProcessorsThanJobs(t *testing.T) {
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 2, Work: 4},
		{ID: 2, Release: 0, Deadline: 4, Work: 2},
	}
	in := mustInstance(t, 8, jobs)
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	// With plenty of processors every job runs at its own density.
	speeds := res.Schedule.JobSpeeds(1e-9)
	if math.Abs(speeds[1][0]-2) > 1e-9 || math.Abs(speeds[2][0]-0.5) > 1e-9 {
		t.Errorf("job speeds = %v, want density speeds 2 and 0.5", speeds)
	}
}

func TestMatchesYDSOnSingleProcessor(t *testing.T) {
	p := power.MustAlpha(2.5)
	for seed := int64(0); seed < 15; seed++ {
		in, err := workload.Uniform(workload.Spec{N: 10, M: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Schedule.Verify(in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := yds.Energy(in.Jobs, p)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Schedule.Energy(p)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("seed %d: opt(m=1) energy %v, YDS %v", seed, got, want)
		}
	}
}

func TestExactMatchesFloat(t *testing.T) {
	p := power.MustAlpha(3)
	for seed := int64(0); seed < 8; seed++ {
		in, err := workload.Bursty(workload.Spec{N: 8, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := Schedule(in)
		if err != nil {
			t.Fatalf("seed %d float: %v", seed, err)
		}
		exact, err := Schedule(in, Exact())
		if err != nil {
			t.Fatalf("seed %d exact: %v", seed, err)
		}
		if err := exact.Schedule.Verify(in); err != nil {
			t.Fatalf("seed %d exact infeasible: %v", seed, err)
		}
		fe, ee := fast.Schedule.Energy(p), exact.Schedule.Energy(p)
		if math.Abs(fe-ee) > 1e-6*(1+ee) {
			t.Errorf("seed %d: float energy %v, exact energy %v", seed, fe, ee)
		}
		if len(fast.Phases) != len(exact.Phases) {
			t.Errorf("seed %d: float %d phases, exact %d", seed, len(fast.Phases), len(exact.Phases))
		}
	}
}

func TestPhaseStructure(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in, err := workload.Staircase(workload.Spec{N: 8, M: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		// Speeds strictly decreasing across phases; at most n phases.
		if len(res.Phases) > in.N() {
			t.Errorf("seed %d: %d phases > n=%d", seed, len(res.Phases), in.N())
		}
		for i := 1; i < len(res.Phases); i++ {
			if res.Phases[i].Speed >= res.Phases[i-1].Speed+1e-9 {
				t.Errorf("seed %d: phase speeds not decreasing: %v then %v",
					seed, res.Phases[i-1].Speed, res.Phases[i].Speed)
			}
		}
		// Lemma 3: every phase's processor counts obey
		// m_ij = min(n_ij, m - used), with used accumulated over phases.
		used := make([]int, len(res.Intervals))
		for pi, ph := range res.Phases {
			members := make([]job.Job, 0, len(ph.JobIDs))
			for _, id := range ph.JobIDs {
				j, ok := in.ByID(id)
				if !ok {
					t.Fatalf("phase references unknown job %d", id)
				}
				members = append(members, j)
			}
			for jx, iv := range res.Intervals {
				nij := 0
				for _, j := range members {
					if j.ActiveIn(iv.Start, iv.End) {
						nij++
					}
				}
				want := nij
				if free := in.M - used[jx]; free < want {
					want = free
				}
				if ph.Procs[jx] != want {
					t.Errorf("seed %d phase %d interval %d: m_ij=%d, want %d",
						seed, pi, jx, ph.Procs[jx], want)
				}
				used[jx] += ph.Procs[jx]
			}
		}
		// Every job appears in exactly one phase.
		seen := map[int]int{}
		for _, ph := range res.Phases {
			for _, id := range ph.JobIDs {
				seen[id]++
			}
		}
		for _, j := range in.Jobs {
			if seen[j.ID] != 1 {
				t.Errorf("seed %d: job %d in %d phases", seed, j.ID, seen[j.ID])
			}
		}
	}
}

func TestJobsRunAtConstantPhaseSpeed(t *testing.T) {
	in, err := workload.Bursty(workload.Spec{N: 12, M: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	speedOf := map[int]float64{}
	for _, ph := range res.Phases {
		for _, id := range ph.JobIDs {
			speedOf[id] = ph.Speed
		}
	}
	for _, seg := range res.Schedule.Segments {
		if want := speedOf[seg.JobID]; math.Abs(seg.Speed-want) > 1e-9*(1+want) {
			t.Errorf("job %d segment at speed %v, phase speed %v", seg.JobID, seg.Speed, want)
		}
	}
}

func TestStats(t *testing.T) {
	in, err := workload.Uniform(workload.Spec{N: 10, M: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Phases != len(res.Phases) {
		t.Errorf("Stats.Phases = %d, len(Phases) = %d", res.Stats.Phases, len(res.Phases))
	}
	if res.Stats.Rounds < res.Stats.Phases {
		t.Errorf("Rounds %d < Phases %d", res.Stats.Rounds, res.Stats.Phases)
	}
	if res.Stats.FlowVertices < 3 {
		t.Errorf("FlowVertices = %d", res.Stats.FlowVertices)
	}
}

// Property: on every generator and random seed the schedule is feasible,
// with at most n distinct speeds (Lemma 1).
func TestFeasibilityProperty(t *testing.T) {
	gens := workload.All()
	f := func(seed int64, rawG uint8, rawM uint8) bool {
		g := gens[int(rawG)%len(gens)]
		m := 1 + int(rawM%4)
		in, err := g.Make(workload.Spec{N: 10, M: m, Seed: seed})
		if err != nil {
			return false
		}
		res, err := Schedule(in)
		if err != nil {
			return false
		}
		if err := res.Schedule.Verify(in); err != nil {
			return false
		}
		return len(res.Schedule.DistinctSpeeds(1e-6)) <= in.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: adding a processor never increases the optimal energy.
func TestMonotoneInProcessorsProperty(t *testing.T) {
	p := power.MustAlpha(2)
	f := func(seed int64) bool {
		in1, err := workload.Uniform(workload.Spec{N: 8, M: 1, Seed: seed})
		if err != nil {
			return false
		}
		var prev float64 = math.Inf(1)
		for m := 1; m <= 4; m++ {
			in, err := job.NewInstance(m, in1.Jobs)
			if err != nil {
				return false
			}
			res, err := Schedule(in)
			if err != nil {
				return false
			}
			e := res.Schedule.Energy(p)
			if e > prev*(1+1e-9)+1e-9 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all works by c > 1 scales the optimal energy by
// exactly c^alpha (speeds scale linearly, durations are unchanged).
func TestWorkScalingProperty(t *testing.T) {
	alpha := 2.0
	p := power.MustAlpha(alpha)
	f := func(seed int64) bool {
		in, err := workload.Uniform(workload.Spec{N: 8, M: 2, Seed: seed})
		if err != nil {
			return false
		}
		base, err := Schedule(in)
		if err != nil {
			return false
		}
		scaled := append([]job.Job(nil), in.Jobs...)
		for i := range scaled {
			scaled[i].Work *= 3
		}
		inS, err := job.NewInstance(2, scaled)
		if err != nil {
			return false
		}
		resS, err := Schedule(inS)
		if err != nil {
			return false
		}
		want := base.Schedule.Energy(p) * math.Pow(3, alpha)
		got := resS.Schedule.Energy(p)
		return math.Abs(got-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The solver must be deterministic: identical inputs produce identical
// schedules segment by segment (map iteration is sorted away).
func TestDeterministicOutput(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in, err := workload.Bursty(workload.Spec{N: 12, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Schedule.Segments) != len(b.Schedule.Segments) {
			t.Fatalf("seed %d: segment counts differ: %d vs %d",
				seed, len(a.Schedule.Segments), len(b.Schedule.Segments))
		}
		for i := range a.Schedule.Segments {
			if a.Schedule.Segments[i] != b.Schedule.Segments[i] {
				t.Fatalf("seed %d: segment %d differs:\n%v\n%v",
					seed, i, a.Schedule.Segments[i], b.Schedule.Segments[i])
			}
		}
	}
}

// Local optimality: moving work between two execution windows of the
// same job (keeping the windows and all other jobs fixed) is always a
// feasible perturbation, so it can never reduce the energy of an optimal
// schedule. This is a derivative-free spot check of optimality
// independent of the convex and LP baselines.
func TestLocalOptimalityUnderPerturbation(t *testing.T) {
	p := power.MustAlpha(2.3)
	for seed := int64(0); seed < 6; seed++ {
		in, err := workload.Bursty(workload.Spec{N: 10, M: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		base := res.Schedule.Energy(p)

		byJob := map[int][]int{} // job ID -> segment indices
		for i, seg := range res.Schedule.Segments {
			byJob[seg.JobID] = append(byJob[seg.JobID], i)
		}
		perturbed := 0
		for _, idxs := range byJob {
			if len(idxs) < 2 {
				continue
			}
			a, b := idxs[0], idxs[len(idxs)-1]
			for _, frac := range []float64{-0.2, 0.2} {
				segs := append([]schedule.Segment(nil), res.Schedule.Segments...)
				sa, sb := segs[a], segs[b]
				delta := frac * math.Min(sa.Work(), sb.Work()) * 0.5
				sa.Speed -= delta / sa.Len()
				sb.Speed += delta / sb.Len()
				if sa.Speed <= 0 || sb.Speed <= 0 {
					continue
				}
				segs[a], segs[b] = sa, sb
				mutant := &schedule.Schedule{M: res.Schedule.M, Segments: segs}
				if err := mutant.Verify(in); err != nil {
					t.Fatalf("seed %d: perturbation broke feasibility: %v", seed, err)
				}
				if e := mutant.Energy(p); e < base-1e-9*(1+base) {
					t.Errorf("seed %d: perturbation reduced energy %v -> %v", seed, base, e)
				}
				perturbed++
			}
		}
		if perturbed == 0 {
			t.Logf("seed %d: no multi-segment jobs to perturb", seed)
		}
	}
}
