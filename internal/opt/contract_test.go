package opt

import (
	"math/rand"
	"testing"

	"mpss/internal/job"
	"mpss/internal/obs"
	"mpss/internal/workload"
)

// Interval contraction must be invisible in the output: the decisions
// of every round are taken on the contracted network, but accepted
// phases are re-emitted from a raw-shaped solve, so the phase
// structure, the bit pattern of every speed and every schedule segment
// must match the uncontracted path exactly. These differential tests
// pin that across the three engines (float warm, float cold, exact
// rational) and across sizes.

func diffSchedule(t *testing.T, seed int64, in *job.Instance, extra ...Option) {
	t.Helper()
	con, err := Schedule(in, extra...)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Schedule(in, append(extra, WithContraction(false))...)
	if err != nil {
		t.Fatal(err)
	}
	comparePhases(t, seed, con, raw)
}

func TestContractedMatchesRawExactly(t *testing.T) {
	for _, gname := range []string{"bursty", "tight", "slotted"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{16, 64, 256} {
			if testing.Short() && n > 64 {
				continue
			}
			in, err := gen.Make(workload.Spec{N: n, M: 4, Seed: int64(n)})
			if err != nil {
				t.Fatal(err)
			}
			diffSchedule(t, int64(n), in)
		}
	}
}

func TestContractedMatchesRawCold(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		if testing.Short() && n > 64 {
			continue
		}
		in, err := workload.Slotted(workload.Spec{N: n, M: 4, Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		diffSchedule(t, int64(n), in, ColdStart())
	}
}

func TestContractedMatchesRawExact(t *testing.T) {
	for _, n := range []int{16, 64} {
		in, err := workload.Slotted(workload.Spec{N: n, M: 3, Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		diffSchedule(t, int64(n), in, Exact())
	}
}

// The two-tier cap search must return the bit-identical cap: tier 1
// only answers coarse bracket questions far from the feasibility
// boundary, so the probe points — which depend solely on the bracket —
// never diverge from the raw search's.
func TestTwoTierCapMatchesRaw(t *testing.T) {
	for _, gname := range []string{"uniform", "tight", "slotted"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{16, 64, 256} {
			if testing.Short() && n > 64 {
				continue
			}
			in, err := gen.Make(workload.Spec{N: n, M: 4, Seed: int64(n)})
			if err != nil {
				t.Fatal(err)
			}
			rec := obs.New()
			two, err := MinFeasibleCapObserved(in, 1e-9, rec)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := MinFeasibleCapObserved(in, 1e-9, nil,
				WithApproxFirst(false), WithCapContraction(false))
			if err != nil {
				t.Fatal(err)
			}
			if two != raw {
				t.Fatalf("%s n=%d: two-tier cap %v != raw cap %v", gname, n, two, raw)
			}
			snap := rec.Snapshot()
			if n >= 64 && snap.Counters["opt.approx_probes"] == 0 {
				t.Fatalf("%s n=%d: no approximate probes ran (counters %v)", gname, n, snap.Counters)
			}
			// Tier 2 always finishes the search on the raw network.
			if snap.Counters["opt.approx_probes"] >= snap.Counters["opt.feasibility_probes"] {
				t.Fatalf("%s n=%d: every probe was approximate; the boundary must be raw-probed", gname, n)
			}
		}
	}
}

// Property: contraction never increases the interval count, maps every
// active interval into a valid super-interval, and only merges
// intervals with identical active sets and processor budgets. Random
// byIv/mj inputs exercise the pass directly, without a solver run.
func TestContractionNeverIncreasesIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nIv := 1 + rng.Intn(40)
		byIv := make([][]int32, nIv)
		mj := make([]int, nIv)
		for jx := 0; jx < nIv; jx++ {
			if rng.Intn(5) == 0 {
				continue // inactive interval: empty active set, mj 0
			}
			nj := 1 + rng.Intn(3)
			for k := 0; k < nj; k++ {
				byIv[jx] = append(byIv[jx], int32(rng.Intn(4)))
			}
			mj[jx] = 1 + rng.Intn(3)
			if rng.Intn(2) == 0 && jx > 0 {
				// Duplicate the previous interval to create mergeable runs.
				byIv[jx] = append(byIv[jx][:0], byIv[jx-1]...)
				mj[jx] = mj[jx-1]
				if mj[jx] == 0 {
					byIv[jx] = nil
				}
			}
		}
		var c contraction
		rawActive := c.compute(byIv, mj)
		if c.nSup > rawActive {
			t.Fatalf("trial %d: %d super-intervals from %d active intervals", trial, c.nSup, rawActive)
		}
		prev := int32(-1)
		for jx := 0; jx < nIv; jx++ {
			s := c.supOf[jx]
			if mj[jx] == 0 {
				if s != -1 {
					t.Fatalf("trial %d: inactive interval %d mapped to super %d", trial, jx, s)
				}
				continue
			}
			if s < 0 || int(s) >= c.nSup {
				t.Fatalf("trial %d: interval %d mapped outside [0,%d)", trial, jx, c.nSup)
			}
			if s < prev {
				t.Fatalf("trial %d: super mapping not monotone at interval %d", trial, jx)
			}
			head := int(c.supHead[s])
			if !equalInt32(byIv[jx], byIv[head]) || mj[jx] != mj[head] {
				t.Fatalf("trial %d: interval %d merged into run %d with different active set or budget",
					trial, jx, s)
			}
			prev = s
		}
	}
}

// The contraction counters must fire on grid-structured workloads and
// stay self-consistent (contracted <= raw) everywhere.
func TestContractionCounters(t *testing.T) {
	var sawContraction bool
	for _, g := range workload.All() {
		in, err := g.Make(workload.Spec{N: 64, M: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.New()
		if _, err := Schedule(in, WithRecorder(rec)); err != nil {
			t.Fatal(err)
		}
		snap := rec.Snapshot()
		raw := snap.Counters["opt.intervals_raw"]
		con := snap.Counters["opt.intervals_contracted"]
		if con < 0 || con > raw {
			t.Fatalf("%s: contracted=%d out of range [0,%d]", g.Name, con, raw)
		}
		if con > 0 {
			sawContraction = true
		}
	}
	if !sawContraction {
		t.Fatal("no workload triggered contraction")
	}
}
