package opt

import (
	"context"
	"math/rand"
	"testing"

	"mpss/internal/job"
	"mpss/internal/obs"
	"mpss/internal/workload"
)

// The session contract: a job set built by N arbitrary deltas resolves
// to exactly what a one-shot solve of the final instance produces —
// phase structure, speeds and schedule segments all bit-identical.
func TestSessionMatchesOneShotFloat(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in, err := workload.Bursty(workload.Spec{N: 24, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed*977 + 11))
		sess, err := NewSolver().NewSession(in)
		if err != nil {
			t.Fatal(err)
		}
		jobs := append([]job.Job(nil), in.Jobs...)
		nextID := 10_000
		oneShot := NewSolver()
		for step := 0; step < 8; step++ {
			switch op := rng.Intn(3); {
			case op == 0 && len(jobs) > 2:
				i := rng.Intn(len(jobs))
				if err := sess.RemoveJob(jobs[i].ID); err != nil {
					t.Fatal(err)
				}
				jobs = append(jobs[:i], jobs[i+1:]...)
			case op == 1:
				r := rng.Float64() * 8
				j := job.Job{ID: nextID, Release: r, Deadline: r + 1 + rng.Float64()*4, Work: 0.5 + rng.Float64()*3}
				nextID++
				if err := sess.AddJob(j); err != nil {
					t.Fatal(err)
				}
				jobs = append(jobs, j)
			default:
				// Retune the cap between two robustly-classifiable
				// values; the near-threshold verdict is probed by
				// TestSessionCapFeasibleMatchesProbe instead.
				c := 1000.0
				if step%2 == 1 {
					c = 1e-6
				}
				if err := sess.SetCap(c); err != nil {
					t.Fatal(err)
				}
			}
			got, err := sess.Resolve(nil)
			if err != nil {
				t.Fatal(err)
			}
			cur := &job.Instance{M: in.M, Jobs: jobs}
			want, err := oneShot.Schedule(cur)
			if err != nil {
				t.Fatal(err)
			}
			comparePhases(t, seed*100+int64(step), got.Res, want)
			if got.Cap > 0 {
				wantFeas, err := FeasibleAtSpeedCtx(context.Background(), cur, got.Cap, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got.CapFeasible != wantFeas {
					t.Fatalf("seed %d step %d: cap %v verdict %v, probe says %v",
						seed, step, got.Cap, got.CapFeasible, wantFeas)
				}
			}
		}
	}
}

// Same differential through the exact rational engine.
func TestSessionMatchesOneShotExact(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		in, err := workload.Bursty(workload.Spec{N: 12, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed*31 + 5))
		sess, err := NewSolver().NewSession(in, Exact())
		if err != nil {
			t.Fatal(err)
		}
		jobs := append([]job.Job(nil), in.Jobs...)
		nextID := 20_000
		oneShot := NewSolver()
		for step := 0; step < 4; step++ {
			if step%2 == 0 && len(jobs) > 2 {
				i := rng.Intn(len(jobs))
				if err := sess.RemoveJob(jobs[i].ID); err != nil {
					t.Fatal(err)
				}
				jobs = append(jobs[:i], jobs[i+1:]...)
			} else {
				r := rng.Float64() * 6
				j := job.Job{ID: nextID, Release: r, Deadline: r + 1 + rng.Float64()*3, Work: 0.5 + rng.Float64()*2}
				nextID++
				if err := sess.AddJob(j); err != nil {
					t.Fatal(err)
				}
				jobs = append(jobs, j)
			}
			got, err := sess.Resolve(nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oneShot.Schedule(&job.Instance{M: in.M, Jobs: jobs}, Exact())
			if err != nil {
				t.Fatal(err)
			}
			comparePhases(t, seed*100+int64(step), got.Res, want)
		}
	}
}

// flatSession builds an instance whose jobs all share the window
// [0, 10]: the event-point partition is a single interval and survives
// any removal, so every remove/cap delta stays on the persistent
// network — the family the incremental-reuse assertions run on.
func flatSession(n int) *job.Instance {
	jobs := make([]job.Job, n)
	for i := range jobs {
		jobs[i] = job.Job{ID: i + 1, Release: 0, Deadline: 10, Work: 1 + 0.1*float64(i%5)}
	}
	return &job.Instance{M: 3, Jobs: jobs}
}

// Delta resolves must ride the warm network: after the first resolve
// builds it, remove/cap deltas may not rebuild (opt.graph_rebuilds
// frozen) while every resolve stays bit-identical to one-shot.
func TestSessionIncrementalReuse(t *testing.T) {
	in := flatSession(16)
	rec := obs.New()
	sess, err := NewSolver().NewSession(in, WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Incremental {
		t.Fatal("first resolve reported incremental")
	}
	base := rec.Snapshot().Counters
	if got := base["opt.session_net_builds"]; got != 1 {
		t.Fatalf("opt.session_net_builds=%d after first resolve, want 1", got)
	}
	rebuilds0 := base["opt.graph_rebuilds"]

	jobs := append([]job.Job(nil), in.Jobs...)
	oneShot := NewSolver()
	const deltas = 6
	for i := 0; i < deltas; i++ {
		if err := sess.RemoveJob(jobs[0].ID); err != nil {
			t.Fatal(err)
		}
		jobs = jobs[1:]
		if i%2 == 1 {
			if err := sess.SetCap(1000); err != nil {
				t.Fatal(err)
			}
		}
		got, err := sess.Resolve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Incremental {
			t.Fatalf("delta %d: resolve did not reuse the warm network", i)
		}
		if got.Cap > 0 && !got.CapFeasible {
			t.Fatalf("delta %d: cap 1000 reported infeasible", i)
		}
		want, err := oneShot.Schedule(&job.Instance{M: in.M, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		comparePhases(t, int64(i), got.Res, want)
	}
	snap := rec.Snapshot().Counters
	if got := snap["opt.graph_rebuilds"]; got != rebuilds0 {
		t.Fatalf("opt.graph_rebuilds grew across deltas: %d -> %d", rebuilds0, got)
	}
	if got := snap["opt.session_attaches"]; got != deltas {
		t.Fatalf("opt.session_attaches=%d, want %d", got, deltas)
	}
	if snap["flow.warm_hits"] == 0 {
		t.Fatal("no flow.warm_hits recorded across warm delta resolves")
	}
	if got := snap["opt.session_capnet_builds"]; got != 1 {
		t.Fatalf("opt.session_capnet_builds=%d, want 1", got)
	}
}

// Removing a job whose window endpoints are unique changes the
// event-point partition: the resolve must fall back to a rebuild
// (Incremental=false) and still match one-shot bit-exactly.
func TestSessionPartitionChangeRebuilds(t *testing.T) {
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 3},
		{ID: 2, Release: 1, Deadline: 5, Work: 2},
		{ID: 3, Release: 2, Deadline: 9, Work: 4},
		{ID: 4, Release: 0, Deadline: 9, Work: 1},
	}
	in := &job.Instance{M: 2, Jobs: jobs}
	sess, err := NewSolver().NewSession(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Resolve(nil); err != nil {
		t.Fatal(err)
	}
	// Job 2's endpoints 1 and 5 are not shared with any other job.
	if err := sess.RemoveJob(2); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Incremental {
		t.Fatal("resolve after a partition-changing removal reported incremental")
	}
	want, err := NewSolver().Schedule(&job.Instance{M: 2, Jobs: []job.Job{jobs[0], jobs[2], jobs[3]}})
	if err != nil {
		t.Fatal(err)
	}
	comparePhases(t, 0, got.Res, want)
}

// The persistent cap network must render feasibleProbe's verdict for
// every cap retune and across removals.
func TestSessionCapFeasibleMatchesProbe(t *testing.T) {
	in := flatSession(12)
	sess, err := NewSolver().NewSession(in)
	if err != nil {
		t.Fatal(err)
	}
	jobs := append([]job.Job(nil), in.Jobs...)
	caps := []float64{1000, 0.1, 2, 0.3, 50}
	for i, c := range caps {
		if i == 2 {
			// Exercise the cap network's incremental removal path too.
			if err := sess.RemoveJob(jobs[0].ID); err != nil {
				t.Fatal(err)
			}
			jobs = jobs[1:]
		}
		if err := sess.SetCap(c); err != nil {
			t.Fatal(err)
		}
		got, err := sess.Resolve(nil)
		if err != nil {
			t.Fatal(err)
		}
		cur := &job.Instance{M: in.M, Jobs: jobs}
		want, err := FeasibleAtSpeedCtx(context.Background(), cur, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.CapFeasible != want {
			t.Fatalf("cap %v: session verdict %v, probe says %v", c, got.CapFeasible, want)
		}
	}
}
