package opt

import (
	"fmt"
	"math"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/mpsserr"
	"mpss/internal/schedule"
)

// ScheduleAtCap constructs a feasible schedule in which every processor
// runs either at exactly the speed cap or idles — the "fixed frequency +
// race to idle" operating mode of real systems that lack fine-grained
// DVFS. It fails when the instance is infeasible at the cap (see
// FeasibleAtSpeed / MinFeasibleCap).
//
// Experiment E13 uses it to quantify how much energy the paper's optimal
// multi-speed profile saves over single-frequency operation.
func ScheduleAtCap(in *job.Instance, cap float64) (*schedule.Schedule, error) {
	if cap <= 0 || math.IsNaN(cap) || math.IsInf(cap, 0) {
		return nil, fmt.Errorf("opt: invalid speed cap %v: %w", cap, mpsserr.ErrInvalidInstance)
	}
	if err := validateForSolve(in); err != nil {
		return nil, err
	}
	ivs := job.Partition(in.Jobs)

	node := 1 + in.N()
	ivNode := make([]int, len(ivs))
	for jx := range ivs {
		ivNode[jx] = node
		node++
	}
	sink := node
	g := flow.AcquireGraph(node + 1)
	defer flow.ReleaseGraph(g)

	type midEdge struct {
		jobIdx, ivIdx int
		id            flow.EdgeID
	}
	var mids []midEdge
	var demand float64
	for k, j := range in.Jobs {
		need := j.Work / cap
		if need > j.Span()*(1+flow.DefaultTolerance) {
			return nil, fmt.Errorf("opt: job %d cannot finish inside its window at cap %v: %w", j.ID, cap, mpsserr.ErrInfeasible)
		}
		g.AddEdge(0, 1+k, need)
		demand += need
		for jx, iv := range ivs {
			if j.ActiveIn(iv.Start, iv.End) {
				id := g.AddEdge(1+k, ivNode[jx], iv.Len())
				mids = append(mids, midEdge{jobIdx: k, ivIdx: jx, id: id})
			}
		}
	}
	for jx, iv := range ivs {
		g.AddEdge(ivNode[jx], sink, float64(in.M)*iv.Len())
	}

	value := g.MaxFlow(0, sink)
	if value < demand-flow.SolveTolerance*math.Max(1, demand) {
		return nil, fmt.Errorf("opt: instance infeasible at cap %v (flow %v of %v): %w", cap, value, demand, mpsserr.ErrInfeasible)
	}

	perIv := make([][]schedule.Piece, len(ivs))
	for _, e := range mids {
		t := g.Flow(e.id)
		if t <= flow.DefaultTolerance {
			continue
		}
		perIv[e.ivIdx] = append(perIv[e.ivIdx], schedule.Piece{
			JobID:    in.Jobs[e.jobIdx].ID,
			Duration: math.Min(t, ivs[e.ivIdx].Len()),
			Speed:    cap,
		})
	}
	out := schedule.New(in.M)
	procs := make([]int, in.M)
	for i := range procs {
		procs[i] = i
	}
	for jx, pieces := range perIv {
		if len(pieces) == 0 {
			continue
		}
		segs, err := schedule.WrapAround(ivs[jx].Start, ivs[jx].End, procs, pieces)
		if err != nil {
			return nil, fmt.Errorf("opt: packing %v at cap: %w", ivs[jx], err)
		}
		for _, s := range segs {
			out.Add(s)
		}
	}
	out.Normalize()
	return out, nil
}
