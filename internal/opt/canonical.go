package opt

import (
	"fmt"
	"math"
	"sort"

	"mpss/internal/job"
	"mpss/internal/schedule"
)

// Canonicalize rewrites an optimal schedule into the canonical form used
// throughout the paper's analysis (Lemma 6): within every event interval
// the per-processor sub-schedules are permuted so that processor 0 runs
// the fastest speed, processor 1 the next, and so on. For schedules in
// the paper's optimal class this makes every processor's speed sequence
// non-increasing over time — the staircase property the OA(m) analysis
// leans on (and which the tests verify on the solver's output).
//
// Permuting whole per-interval processor timelines never changes any
// segment's time window, so feasibility and energy are untouched.
func Canonicalize(s *schedule.Schedule, ivs []job.Interval) (*schedule.Schedule, error) {
	out := schedule.New(s.M)
	for jx, iv := range ivs {
		// Collect this interval's segments per processor, clipping
		// segments that Normalize merged across interval boundaries.
		perProc := make([][]schedule.Segment, s.M)
		for _, seg := range s.Segments {
			lo := math.Max(seg.Start, iv.Start)
			hi := math.Min(seg.End, iv.End)
			if hi <= lo {
				continue
			}
			clipped := seg
			clipped.Start, clipped.End = lo, hi
			perProc[seg.Proc] = append(perProc[seg.Proc], clipped)
		}
		// Lemma 2: each processor uses one speed inside the interval.
		type procSpeed struct {
			proc  int
			speed float64
		}
		speeds := make([]procSpeed, 0, s.M)
		for p, segs := range perProc {
			sp := 0.0
			for _, seg := range segs {
				if sp == 0 {
					sp = seg.Speed
				} else if math.Abs(seg.Speed-sp) > 1e-9*(1+sp) {
					return nil, fmt.Errorf("opt: processor %d uses speeds %v and %v inside %v (violates Lemma 2)",
						p, sp, seg.Speed, ivs[jx])
				}
			}
			speeds = append(speeds, procSpeed{proc: p, speed: sp})
		}
		// Sort processors by speed, descending; stable on index for
		// determinism.
		sort.SliceStable(speeds, func(a, b int) bool { return speeds[a].speed > speeds[b].speed })
		for newProc, ps := range speeds {
			for _, seg := range perProc[ps.proc] {
				seg.Proc = newProc
				out.Add(seg)
			}
		}
	}
	out.Normalize()
	return out, nil
}

// StaircaseViolation locates the first breach of the Lemma 6 property in
// a canonicalized schedule: a processor whose speed increases from one
// event interval to the next. It returns ok = true when the staircase
// holds everywhere (idle counts as speed zero).
func StaircaseViolation(s *schedule.Schedule, ivs []job.Interval) (proc int, interval int, ok bool) {
	speedAt := func(p int, iv job.Interval) float64 {
		mid := (iv.Start + iv.End) / 2
		// Sample a few points to be robust against partial idleness at
		// the interval edges (the fastest speed on the processor within
		// the interval is its Lemma 2 speed).
		best := 0.0
		for _, f := range []float64{0.25, 0.5, 0.75} {
			t := iv.Start + (iv.End-iv.Start)*f
			sp := s.SpeedsAt(t)[p]
			best = math.Max(best, sp)
		}
		_ = mid
		return best
	}
	for p := 0; p < s.M; p++ {
		prev := math.Inf(1)
		for jx, iv := range ivs {
			sp := speedAt(p, iv)
			if sp > prev*(1+1e-9)+1e-9 {
				return p, jx, false
			}
			prev = sp
		}
	}
	return 0, 0, true
}
