package opt

import (
	"fmt"
	"math"
	"time"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/mpsserr"
	"mpss/internal/obs"
)

// floatEngine is the float64 fast path of the round loop. All slices are
// arenas reused across phases and Schedule calls.
//
// Warm path (default): beginPhase builds G(J, m, s) once; every
// rejection drains the removed job's flow and updates capacities in
// place, and the next round's MaxFlow re-augments from the surviving
// flow. When a phase accepts after at least one removal the flow is
// canonicalized (ResetFlow + one solve from zero) so the emitted
// per-interval times are bit-identical to what a cold rebuild of the
// final network would produce — removed jobs and dead intervals survive
// in the network only as zero-capacity edges, which Dinic's search never
// traverses, so the augmentation sequence matches the cold one exactly.
//
// Capacities are re-set to the same absolute expressions the cold build
// uses (work/speed, m_j*|I_j|) rather than multiplicatively rescaled:
// float64 multiplication is not associative, and (w/s1)*(s1/s2) differs
// from w/s2 in the last ulp, which would break the warm==cold guarantee.
type floatEngine struct {
	tol      float64
	cold     bool
	contract bool // merge flow-equivalent interval runs before solving
	par      int  // workers for cold solves above ParallelEdgeThreshold; <= 1 = sequential

	in        *job.Instance
	ivs       []job.Interval
	st        *Stats
	rec       *obs.Recorder
	solveHist *obs.Histogram // cached "opt.flow_solve_seconds" handle (nil = observability off)

	ivLen  []float64 // |I_j| per interval
	jobIvs [][]int32 // per instance job: indices of intervals it is active in

	// Per-phase state, all indexed by phase-initial candidate position.
	span        *obs.Span
	cand0       []int
	alive       []bool
	aliveCount  int
	free        []int // per interval: m - used, fixed for the phase
	activeCount []int // per interval: alive candidates active in it
	byIv        [][]int32
	mj          []int
	totalWork   float64
	totalTime   float64
	speed       float64

	// Super-interval partition (contract.go), computed once per phase on
	// the first graph build and reused by every later build in the phase.
	con      contraction
	supLen   []float64 // per super-interval: summed member length
	supNode  []int32   // per super-interval: vertex, -1 when m_j = 0
	supSink  []flow.EdgeID
	supValid bool

	// Flow network state (valid when needBuild is false). g aliases the
	// graph the current phase solves on: own for ordinary phases (the
	// engine-owned arena every build targets), or sess.g while a session
	// solve's first phase runs on the persistent network (session.go).
	g          *flow.Graph
	own        *flow.Graph
	sess       *sessNet // non-nil only while a Session resolve runs
	sessPhase  bool     // current phase runs on sess.g
	firstPhase bool     // next beginPhase starts the solve's first phase
	posOfSlot  []int32  // scratch: session slot -> live candidate pos
	needBuild  bool
	jobNode    []int32
	ivNode     []int32
	sink       int
	srcEdges   []flow.EdgeID
	sinkEdges  []flow.EdgeID
	midPos     []int32
	midIv      []int32
	midID      []flow.EdgeID
	prevOps    flow.DinicOps
	warmRound  bool // true once the current network has been solved
	removals   int
	pending    int // candidate position selected for removal
	accepted   []int
}

func (e *floatEngine) spanName(phase int) string { return fmt.Sprintf("phase %d", phase) }

func (e *floatEngine) emptyErr() error {
	return fmt.Errorf("opt: phase emptied its candidate set: %w", mpsserr.ErrNumeric)
}

func (e *floatEngine) prepare(in *job.Instance, ivs []job.Interval, st *Stats, rec *obs.Recorder) {
	e.in, e.ivs, e.st, e.rec = in, ivs, st, rec
	e.firstPhase = true
	// The histogram handle is cached once per solve: rec.Time allocates a
	// closure per call, which the per-round profile showed as real.
	e.solveHist = rec.Histogram("opt.flow_solve_seconds")
	nIv := len(ivs)
	e.ivLen = growFloats(e.ivLen, nIv)
	for jx, iv := range ivs {
		e.ivLen[jx] = iv.Len()
	}
	// The job×interval activity index, computed once per solve instead of
	// once per round: jobIvs[k] lists the intervals job k is active in.
	e.jobIvs = growLists(e.jobIvs, in.N())
	for k, j := range in.Jobs {
		e.jobIvs[k] = e.jobIvs[k][:0]
		for jx, iv := range ivs {
			if j.ActiveIn(iv.Start, iv.End) {
				e.jobIvs[k] = append(e.jobIvs[k], int32(jx))
			}
		}
	}
}

func (e *floatEngine) beginPhase(used, cand []int, span *obs.Span) bool {
	e.span = span
	e.cand0 = append(e.cand0[:0], cand...)
	n := len(cand)
	e.alive = growBools(e.alive, n)
	for pos := range e.alive {
		e.alive[pos] = true
	}
	e.aliveCount = n
	nIv := len(e.ivs)
	e.free = growInts(e.free, nIv)
	e.activeCount = growInts(e.activeCount, nIv)
	e.mj = growInts(e.mj, nIv)
	e.byIv = growLists(e.byIv, nIv)
	for jx := range e.byIv[:nIv] {
		e.free[jx] = max(0, e.in.M-used[jx])
		e.activeCount[jx] = 0
		e.byIv[jx] = e.byIv[jx][:0]
	}
	for pos, k := range cand {
		for _, jx := range e.jobIvs[k] {
			e.byIv[jx] = append(e.byIv[jx], int32(pos))
			e.activeCount[jx]++
		}
	}
	e.removals = 0
	e.needBuild = true
	e.supValid = false
	e.con.on = false
	first := e.firstPhase
	e.firstPhase = false
	e.sessPhase = false
	for jx := 0; jx < nIv; jx++ {
		e.mj[jx] = min(e.activeCount[jx], e.free[jx])
	}
	e.recomputeTotals()
	if e.totalTime <= 0 {
		if first && e.sess != nil {
			// A degenerate first phase never touches the persistent
			// network, but its next build would happen with a shrunken
			// candidate set mid-phase — force a rebuild next resolve.
			e.sess.valid = false
		}
		return true
	}
	e.speed = e.totalWork / e.totalTime
	if first && e.sess != nil {
		e.beginSessionPhase()
		return false
	}
	e.buildGraph()
	return false
}

// recomputeTotals recomputes totalWork and totalTime from scratch after
// every change to the candidate set. Incremental subtraction would be
// O(1) but floats are not associative: summing fresh, in the same index
// order as a cold build, keeps the conjectured speed bit-identical to
// the cold path's. Intervals with mj = 0 are skipped rather than added
// as zero terms: a gap interval between distant job clusters can have
// an overflowed (infinite) length, and 0 * Inf would poison the sum
// with NaN (the exact engine skips them the same way).
func (e *floatEngine) recomputeTotals() {
	tw := 0.0
	for pos, k := range e.cand0 {
		if e.alive[pos] {
			tw += e.in.Jobs[k].Work
		}
	}
	tt := 0.0
	for jx := range e.ivs {
		if e.mj[jx] > 0 {
			tt += float64(e.mj[jx]) * e.ivLen[jx]
		}
	}
	e.totalWork, e.totalTime = tw, tt
}

// buildGraph constructs G(J, m, s) for the current alive candidate set.
// The warm path calls it once per phase; the cold path once per round.
// With contraction enabled it computes the phase's super-interval
// partition on the first build and dispatches to the contracted shape
// whenever merging actually removes interval nodes (see contract.go).
func (e *floatEngine) buildGraph() {
	if e.contract && !e.supValid {
		raw := e.con.compute(e.byIv, e.mj)
		e.supLen = e.con.sumLens(e.supLen, e.ivLen)
		e.con.on = e.con.nSup < raw
		e.supValid = true
		e.rec.Add("opt.intervals_raw", int64(raw))
		e.rec.Add("opt.intervals_contracted", int64(raw-e.con.nSup))
	}
	if e.con.on {
		e.buildContracted()
		return
	}
	e.buildRaw("opt.graph_rebuilds")
}

// buildContracted is buildGraph over the super-interval partition: one
// node and one sink edge per run of merged intervals, job edges carrying
// the summed run length. Capacities follow the same expressions as the
// raw build with supLen in place of ivLen.
func (e *floatEngine) buildContracted() {
	e.jobNode = growInt32s(e.jobNode, len(e.cand0))
	node := 1
	for pos := range e.cand0 {
		if e.alive[pos] {
			e.jobNode[pos] = int32(node)
			node++
		} else {
			e.jobNode[pos] = -1
		}
	}
	e.supNode = growInt32s(e.supNode, e.con.nSup)
	for s := 0; s < e.con.nSup; s++ {
		if e.mj[e.con.supHead[s]] > 0 {
			e.supNode[s] = int32(node)
			node++
		} else {
			e.supNode[s] = -1
		}
	}
	e.sink = node
	if e.own == nil {
		e.own = flow.NewGraph(node + 1)
	} else {
		e.own.Reset(node + 1)
	}
	e.g = e.own
	if node+1 > e.st.FlowVertices {
		e.st.FlowVertices = node + 1
	}
	e.srcEdges = growEdgeIDs(e.srcEdges, len(e.cand0))
	for pos, k := range e.cand0 {
		if e.alive[pos] {
			e.srcEdges[pos] = e.g.AddEdge(0, int(e.jobNode[pos]), e.in.Jobs[k].Work/e.speed)
		}
	}
	e.midPos = e.midPos[:0]
	e.midIv = e.midIv[:0]
	e.midID = e.midID[:0]
	e.supSink = growEdgeIDs(e.supSink, e.con.nSup)
	for s := 0; s < e.con.nSup; s++ {
		if e.supNode[s] < 0 {
			continue
		}
		head := e.con.supHead[s]
		for _, pos := range e.byIv[head] {
			if !e.alive[pos] {
				continue
			}
			id := e.g.AddEdge(int(e.jobNode[pos]), int(e.supNode[s]), e.supLen[s])
			e.midPos = append(e.midPos, pos)
			e.midIv = append(e.midIv, int32(s))
			e.midID = append(e.midID, id)
		}
		e.supSink[s] = e.g.AddEdge(int(e.supNode[s]), e.sink, float64(e.mj[head])*e.supLen[s])
	}
	e.rec.Add("opt.graph_rebuilds", 1)
	e.prevOps = flow.DinicOps{}
	e.warmRound = false
	e.needBuild = false
}

// buildRaw constructs the uncontracted network; counter names the
// rebuild class recorded ("opt.graph_rebuilds" for round builds,
// "opt.emit_rebuilds" for the emission rebuild after contracted rounds).
func (e *floatEngine) buildRaw(counter string) {
	if e.sessPhase {
		// The phase is falling off the persistent session network onto a
		// fresh engine-owned build (degenerate candidate drop mid-phase,
		// or the emission rebuild): the persistent flow is stale relative
		// to the decisions this phase keeps making, so the next session
		// resolve must rebuild it from scratch.
		e.sess.valid = false
		e.sessPhase = false
	}
	node := e.rawLayout()
	if e.own == nil {
		e.own = flow.NewGraph(node + 1)
	} else {
		e.own.Reset(node + 1)
	}
	e.g = e.own
	e.rawEdges()
	e.rec.Add(counter, 1)
	e.prevOps = flow.DinicOps{}
	e.warmRound = false
	e.needBuild = false
}

// rawLayout assigns the uncontracted vertex layout — 0 = source, then
// alive jobs, then intervals with mj > 0, last = sink — and returns the
// sink vertex. Shared by buildRaw and the session network build, which
// must lay vertices out identically for the warm==cold guarantee.
func (e *floatEngine) rawLayout() int {
	nIv := len(e.ivs)
	e.jobNode = growInt32s(e.jobNode, len(e.cand0))
	node := 1
	for pos := range e.cand0 {
		if e.alive[pos] {
			e.jobNode[pos] = int32(node)
			node++
		} else {
			e.jobNode[pos] = -1
		}
	}
	e.ivNode = growInt32s(e.ivNode, nIv)
	for jx := 0; jx < nIv; jx++ {
		if e.mj[jx] > 0 {
			e.ivNode[jx] = int32(node)
			node++
		} else {
			e.ivNode[jx] = -1
		}
	}
	e.sink = node
	if node+1 > e.st.FlowVertices {
		e.st.FlowVertices = node + 1
	}
	return node
}

// rawEdges inserts the uncontracted edge set into e.g in the canonical
// order: all source edges in candidate order, then per interval its job
// edges (byIv order) followed by its sink edge. Every network the
// engine compares bit-for-bit is built through this routine, so the
// adjacency order — which fixes Dinic's augmentation sequence — is the
// same everywhere.
func (e *floatEngine) rawEdges() {
	e.srcEdges = growEdgeIDs(e.srcEdges, len(e.cand0))
	for pos, k := range e.cand0 {
		if e.alive[pos] {
			e.srcEdges[pos] = e.g.AddEdge(0, int(e.jobNode[pos]), e.in.Jobs[k].Work/e.speed)
		}
	}
	e.midPos = e.midPos[:0]
	e.midIv = e.midIv[:0]
	e.midID = e.midID[:0]
	nIv := len(e.ivs)
	e.sinkEdges = growEdgeIDs(e.sinkEdges, nIv)
	for jx := 0; jx < nIv; jx++ {
		if e.mj[jx] == 0 {
			continue
		}
		for _, pos := range e.byIv[jx] {
			if !e.alive[pos] {
				continue
			}
			id := e.g.AddEdge(int(e.jobNode[pos]), int(e.ivNode[jx]), e.ivLen[jx])
			e.midPos = append(e.midPos, pos)
			e.midIv = append(e.midIv, int32(jx))
			e.midID = append(e.midID, id)
		}
		e.sinkEdges[jx] = e.g.AddEdge(int(e.ivNode[jx]), e.sink, float64(e.mj[jx])*e.ivLen[jx])
	}
}

// publish flushes the ops delta of the last MaxFlow call.
func (e *floatEngine) publish() {
	ops := e.g.Ops()
	publishDinic(e.rec, e.span, ops.Sub(e.prevOps))
	e.prevOps = ops
}

// solveFlow runs one max-flow computation with the dispatch policy:
// cold solves (freshly built network, zero flow) above the size
// threshold go to the concurrent push-relabel engine when parallelism
// was requested; everything else — small networks and every warm
// re-augmentation — stays on sequential Dinic, whose incremental restart
// is the fast path parallelism must not regress.
func (e *floatEngine) solveFlow() {
	var t0 time.Time
	if e.solveHist != nil {
		t0 = time.Now()
	}
	if e.par > 1 && !e.warmRound && e.g.EdgeCount() >= ParallelEdgeThreshold {
		prev := e.g.ParOps()
		e.g.MaxFlowParallel(0, e.sink, e.par)
		if e.solveHist != nil {
			e.solveHist.Observe(time.Since(t0).Seconds())
		}
		publishParallel(e.rec, e.span, e.g.ParOps().Sub(prev))
		return
	}
	e.g.MaxFlow(0, e.sink)
	if e.solveHist != nil {
		e.solveHist.Observe(time.Since(t0).Seconds())
	}
	if e.warmRound {
		e.rec.Add("flow.warm_hits", 1)
	}
	e.publish()
}

func (e *floatEngine) solveRound() bool {
	if e.needBuild {
		e.buildGraph()
	}
	e.solveFlow()
	e.warmRound = true

	var value float64
	for pos := range e.cand0 {
		if e.alive[pos] {
			value += e.g.Flow(e.srcEdges[pos])
		}
	}
	slack := e.tol * math.Max(1, e.totalTime)
	if value >= e.totalTime-slack {
		return true
	}
	// Rejected: select the excluded job by the flow-invariant rule. A
	// candidate can reach the sink in the residual graph exactly when
	// some maximum flow leaves both one of its interval edges and that
	// interval's sink edge unsaturated — the exclusion condition of the
	// paper's Lemma 4 — and the co-reachable set is the same for every
	// maximum flow, so warm and cold solves remove the same job.
	mark := e.g.CoReachable(e.sink)
	e.pending = -1
	for pos := range e.cand0 {
		if e.alive[pos] && mark[e.jobNode[pos]] {
			e.pending = pos
			break
		}
	}
	// No excludable candidate despite the value shortfall: only possible
	// through accumulated rounding. Accept, as the cold path always has.
	return e.pending < 0
}

func (e *floatEngine) removeExcluded() (degenerate, empty bool) {
	pos := e.pending
	k := e.cand0[pos]
	e.alive[pos] = false
	e.aliveCount--
	if e.aliveCount == 0 {
		return false, true
	}
	var drained float64
	if !e.cold {
		drained += e.g.RemoveJobEdge(e.srcEdges[pos])
		if e.sessPhase {
			// The rounds zeroed this slot's source and job edges on the
			// persistent network; if the job is still in the session, the
			// next attach must restore those capacities before reuse.
			e.sess.zeroed[e.sess.slotOf[pos]] = true
		}
	}
	// With contraction on, every member of a run changes identically (the
	// removed job is active in all of a run or none of it, and equal m_j
	// stay equal), so the run's sink edge is updated once — lastSup
	// dedupes the consecutive members, skipping over m_j = 0 gaps.
	lastSup := int32(-1)
	for _, jx := range e.jobIvs[k] {
		e.activeCount[jx]--
		nm := min(e.activeCount[jx], e.free[jx])
		if nm < e.mj[jx] {
			e.mj[jx] = nm
			if e.cold {
				continue
			}
			if e.con.on {
				if s := e.con.supOf[jx]; s >= 0 && s != lastSup {
					drained += e.g.SetCapacity(e.supSink[s], float64(nm)*e.supLen[s])
					lastSup = s
				}
			} else if e.ivNode[jx] >= 0 {
				drained += e.g.SetCapacity(e.sinkEdges[jx], float64(nm)*e.ivLen[jx])
			}
		}
	}
	e.recomputeTotals()
	if e.totalTime <= 0 {
		e.needBuild = true
		return true, false
	}
	e.speed = e.totalWork / e.totalTime
	if e.cold {
		e.needBuild = true
		return false, false
	}
	e.removals++
	for pos2, k2 := range e.cand0 {
		if e.alive[pos2] {
			drained += e.g.SetCapacity(e.srcEdges[pos2], e.in.Jobs[k2].Work/e.speed)
		}
	}
	e.rec.Add("flow.drained_units", int64(drained+0.5))
	return false, false
}

func (e *floatEngine) dropLeastWork() (degenerate, empty bool) {
	best := -1
	for pos, k := range e.cand0 {
		if e.alive[pos] && (best < 0 || e.in.Jobs[k].Work < e.in.Jobs[e.cand0[best]].Work) {
			best = pos
		}
	}
	k := e.cand0[best]
	e.alive[best] = false
	e.aliveCount--
	if e.aliveCount == 0 {
		return false, true
	}
	for _, jx := range e.jobIvs[k] {
		e.activeCount[jx]--
		e.mj[jx] = min(e.activeCount[jx], e.free[jx])
	}
	e.recomputeTotals()
	if e.totalTime <= 0 {
		return true, false
	}
	e.speed = e.totalWork / e.totalTime
	e.needBuild = true
	return false, false
}

func (e *floatEngine) accept() (float64, []int, map[int][]pieceTime) {
	if e.con.on {
		// Rounds ran on the contracted network, whose flows have no
		// per-raw-interval meaning. Rebuild the raw-shaped network for
		// the surviving candidate set — the exact graph the uncontracted
		// cold path solves for its accepted round — and solve from zero,
		// so the emitted times are bit-identical to the raw path's.
		e.con.on = false
		e.buildRaw("opt.emit_rebuilds")
		e.solveEmit()
	} else if (!e.cold && e.removals > 0) || e.sessPhase {
		// Canonicalize: one solve from zero on the updated network. The
		// zero-capacity remnants of removed jobs never enter Dinic's
		// search, so this reproduces the cold path's flow bit-exactly
		// while still skipping the per-round rebuild-and-resolve work.
		// Session phases always canonicalize, even with zero removals
		// this phase: the persistent network's accepted flow must be the
		// canonical from-zero flow for the next delta's warm reconcile
		// to stay on the cold augmentation sequence.
		e.g.ResetFlow()
		e.solveEmit()
	}
	tkj := make(map[int][]pieceTime, e.aliveCount)
	for i, pos := range e.midPos {
		if pos < 0 || !e.alive[pos] {
			continue
		}
		// Collect every positive flow: dropping pieces at the slack
		// threshold would lose work proportional to the edge count on
		// large instances.
		if f := e.g.Flow(e.midID[i]); f > 1e-15 {
			k := e.cand0[pos]
			tkj[k] = append(tkj[k], pieceTime{ivIdx: int(e.midIv[i]), t: f})
		}
	}
	return e.speed, e.mj, tkj
}

// solveEmit runs the emission-time from-zero solve (histogram-timed,
// ops published) shared by the canonicalization and contracted-accept
// paths.
func (e *floatEngine) solveEmit() {
	var t0 time.Time
	if e.solveHist != nil {
		t0 = time.Now()
	}
	e.g.MaxFlow(0, e.sink)
	if e.solveHist != nil {
		e.solveHist.Observe(time.Since(t0).Seconds())
	}
	e.publish()
}

func (e *floatEngine) acceptedCand() []int {
	e.accepted = e.accepted[:0]
	for pos, k := range e.cand0 {
		if e.alive[pos] {
			e.accepted = append(e.accepted, k)
		}
	}
	return e.accepted
}

// Arena slice helpers: resize preserving backing arrays.

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growEdgeIDs(s []flow.EdgeID, n int) []flow.EdgeID {
	if cap(s) < n {
		return make([]flow.EdgeID, n)
	}
	return s[:n]
}

func growLists(s [][]int32, n int) [][]int32 {
	for len(s) < n {
		s = append(s, nil)
	}
	return s[:n]
}
