package sleep

import (
	"math"
	"testing"

	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/schedule"
	"mpss/internal/workload"
)

func TestModelValidate(t *testing.T) {
	if err := (Model{IdlePower: 1, WakeCost: 2}).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	for _, m := range []Model{
		{IdlePower: -1}, {WakeCost: -1},
		{IdlePower: math.NaN()}, {WakeCost: math.Inf(1)},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("invalid model accepted: %+v", m)
		}
	}
}

func TestBreakEven(t *testing.T) {
	if got := (Model{IdlePower: 2, WakeCost: 6}).BreakEven(); got != 3 {
		t.Errorf("BreakEven = %v, want 3", got)
	}
	if got := (Model{IdlePower: 0, WakeCost: 6}).BreakEven(); !math.IsInf(got, 1) {
		t.Errorf("BreakEven = %v, want +Inf", got)
	}
}

func TestEvaluateSleepVsIdle(t *testing.T) {
	p := power.MustAlpha(2)
	s := schedule.New(1)
	s.Add(schedule.Segment{Proc: 0, Start: 0, End: 1, JobID: 1, Speed: 2})
	s.Add(schedule.Segment{Proc: 0, Start: 5, End: 6, JobID: 2, Speed: 2}) // gap of 4

	// Idle power 1, wake cost 10: idling the 4-gap (cost 4) beats
	// sleeping (cost 10).
	b, err := Evaluate(s, p, Model{IdlePower: 1, WakeCost: 10}, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if b.IdleGaps != 1 || b.Sleeps != 1 { // one idle gap + the initial wake
		t.Errorf("breakdown = %+v", b)
	}
	// Dynamic 4+4, static 2*1 while running, idle 4, wake 10.
	if math.Abs(b.Total-(8+2+4+10)) > 1e-9 {
		t.Errorf("Total = %v, want 24", b.Total)
	}

	// Wake cost 2: sleeping the gap (2) beats idling (4).
	b2, err := Evaluate(s, p, Model{IdlePower: 1, WakeCost: 2}, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Sleeps != 2 || b2.IdleGaps != 0 {
		t.Errorf("breakdown = %+v", b2)
	}
	// Dynamic 8, static 2, no idle, two wakes at 2.
	if math.Abs(b2.Total-(8+2+0+4)) > 1e-9 {
		t.Errorf("Total = %v, want 14", b2.Total)
	}
}

func TestEvaluateValidation(t *testing.T) {
	p := power.MustAlpha(2)
	s := schedule.New(1)
	if _, err := Evaluate(s, p, Model{IdlePower: -1}, 0, 1); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := Evaluate(s, p, Model{}, 2, 1); err == nil {
		t.Error("inverted horizon accepted")
	}
}

// With leakage, racing at a fixed high frequency and sleeping can beat
// the stretch-everything optimum — the tension the paper's conclusion
// describes. This test exhibits the crossover on one instance.
func TestRaceToIdleCrossover(t *testing.T) {
	in, err := workload.Uniform(workload.Spec{N: 8, M: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := power.MustAlpha(3)

	optRes, err := opt.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	capSpeed, err := opt.MinFeasibleCap(in, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	race, err := opt.ScheduleAtCap(in, capSpeed*2) // race well above the minimum
	if err != nil {
		t.Fatal(err)
	}
	start, end := in.Horizon()

	// Without leakage, stretching wins.
	noLeak := Model{IdlePower: 0, WakeCost: 0}
	bOpt, err := Evaluate(optRes.Schedule, p, noLeak, start, end)
	if err != nil {
		t.Fatal(err)
	}
	bRace, err := Evaluate(race, p, noLeak, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if bOpt.Total >= bRace.Total {
		t.Fatalf("without leakage stretch (%v) should beat race (%v)", bOpt.Total, bRace.Total)
	}

	// With heavy leakage and cheap wake-ups, racing to sleep wins.
	leak := Model{IdlePower: 5 * math.Pow(capSpeed, 3), WakeCost: 1e-3}
	bOptL, err := Evaluate(optRes.Schedule, p, leak, start, end)
	if err != nil {
		t.Fatal(err)
	}
	bRaceL, err := Evaluate(race, p, leak, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if bRaceL.Total >= bOptL.Total {
		t.Fatalf("with heavy leakage race (%v) should beat stretch (%v)", bRaceL.Total, bOptL.Total)
	}
}

func TestEvaluateMonotoneInIdlePower(t *testing.T) {
	in, err := workload.Bursty(workload.Spec{N: 8, M: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := opt.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	p := power.MustAlpha(2)
	start, end := in.Horizon()
	prev := -1.0
	for _, idle := range []float64{0, 0.1, 0.5, 2, 10} {
		b, err := Evaluate(optRes.Schedule, p, Model{IdlePower: idle, WakeCost: 3}, start, end)
		if err != nil {
			t.Fatal(err)
		}
		if b.Total < prev-1e-9 {
			t.Errorf("total energy decreased when idle power rose to %v", idle)
		}
		prev = b.Total
	}
}

func TestEvaluateEmptySchedule(t *testing.T) {
	b, err := Evaluate(schedule.New(2), power.MustAlpha(2), Model{IdlePower: 1, WakeCost: 1}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != 0 {
		t.Errorf("empty schedule total = %v", b.Total)
	}
}
