// Package sleep adds static power and sleep states on top of a computed
// schedule — the combined speed-scaling/power-down direction the paper's
// conclusion points to (Irani, Shukla, Gupta [9]): real processors draw
// leakage power even at speed zero and can instead transition into a
// sleep state at a fixed wake-up cost.
//
// Given a schedule, an idle power and a wake-up cost, every idle gap on a
// processor makes the classic ski-rental choice: stay idle (cost
// gap * IdlePower) or sleep and wake (cost WakeCost). Evaluate reports
// the resulting energy breakdown; the decision per gap is optimal for
// the model, so combined with an energy-optimal schedule it measures how
// the paper's "stretch work out" optimum interacts with leakage — the
// tension experiment E13 quantifies.
package sleep

import (
	"fmt"
	"math"
	"sort"

	"mpss/internal/power"
	"mpss/internal/schedule"
)

// Model describes the static-power behaviour of one processor.
type Model struct {
	// IdlePower is the power drawn while powered on at speed zero.
	IdlePower float64
	// WakeCost is the energy needed to return from the sleep state.
	WakeCost float64
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.IdlePower < 0 || math.IsNaN(m.IdlePower) || math.IsInf(m.IdlePower, 0) {
		return fmt.Errorf("sleep: invalid idle power %v", m.IdlePower)
	}
	if m.WakeCost < 0 || math.IsNaN(m.WakeCost) || math.IsInf(m.WakeCost, 0) {
		return fmt.Errorf("sleep: invalid wake cost %v", m.WakeCost)
	}
	return nil
}

// BreakEven returns the gap length above which sleeping beats idling.
func (m Model) BreakEven() float64 {
	if m.IdlePower == 0 {
		return math.Inf(1)
	}
	return m.WakeCost / m.IdlePower
}

// Breakdown is the energy account of a schedule under a sleep model.
type Breakdown struct {
	Dynamic  float64 // speed-dependent energy, P(s) integrated over runs
	Static   float64 // leakage drawn while executing (awake at speed > 0)
	Idle     float64 // leakage spent in gaps kept idle
	Wake     float64 // wake-up transitions
	Sleeps   int     // number of gaps where the processor slept
	IdleGaps int     // number of gaps kept idle
	Total    float64
}

// Evaluate prices the schedule over [start, end) under dynamic power p
// and the sleep model: an awake processor draws P(s) + IdlePower (the
// model of [9], where even speed zero consumes static energy), so
// executing for longer costs more leakage. Processors are assumed asleep
// before their first segment and after their last (each processor that
// runs at all pays one initial wake-up); every interior gap takes the
// cheaper of idling and sleeping-then-waking.
func Evaluate(s *schedule.Schedule, p power.Function, m Model, start, end float64) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	if end < start {
		return Breakdown{}, fmt.Errorf("sleep: horizon [%v,%v) inverted", start, end)
	}
	var b Breakdown
	byProc := make(map[int][]schedule.Segment)
	for _, seg := range s.Segments {
		b.Dynamic += p.Energy(seg.Speed, seg.Len())
		b.Static += m.IdlePower * seg.Len()
		byProc[seg.Proc] = append(byProc[seg.Proc], seg)
	}
	for _, segs := range byProc {
		sort.Slice(segs, func(a, b int) bool { return segs[a].Start < segs[b].Start })
		// Initial wake-up for a processor that runs at all.
		b.Wake += m.WakeCost
		b.Sleeps++
		for i := 1; i < len(segs); i++ {
			gap := segs[i].Start - segs[i-1].End
			if gap <= 1e-12 {
				continue
			}
			idleCost := gap * m.IdlePower
			if idleCost <= m.WakeCost {
				b.Idle += idleCost
				b.IdleGaps++
			} else {
				b.Wake += m.WakeCost
				b.Sleeps++
			}
		}
	}
	b.Total = b.Dynamic + b.Static + b.Idle + b.Wake
	return b, nil
}
