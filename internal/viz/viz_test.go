package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"mpss/internal/opt"
	"mpss/internal/schedule"
	"mpss/internal/workload"
)

// svgDoc is a minimal structure to prove the output is well-formed XML.
type svgDoc struct {
	XMLName xml.Name  `xml:"svg"`
	Rects   []svgRect `xml:"rect"`
	Texts   []string  `xml:"text"`
	Lines   []svgLine `xml:"line"`
}

type svgRect struct {
	X     string `xml:"x,attr"`
	Width string `xml:"width,attr"` // "100%" on the background rect
	Fill  string `xml:"fill,attr"`
	Title string `xml:"title"`
}

type svgLine struct {
	X1 string `xml:"x1,attr"`
}

func render(t *testing.T, s *schedule.Schedule, o Options) (string, svgDoc) {
	t.Helper()
	var buf bytes.Buffer
	if err := SVG(&buf, s, o); err != nil {
		t.Fatal(err)
	}
	var doc svgDoc
	if err := xml.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not well-formed XML: %v\n%s", err, buf.String())
	}
	return buf.String(), doc
}

func TestEmptySchedule(t *testing.T) {
	out, _ := render(t, schedule.New(2), Options{})
	if !strings.Contains(out, "empty schedule") {
		t.Errorf("missing empty note:\n%s", out)
	}
}

func TestSegmentsRendered(t *testing.T) {
	s := schedule.New(2)
	s.Add(schedule.Segment{Proc: 0, Start: 0, End: 2, JobID: 1, Speed: 2})
	s.Add(schedule.Segment{Proc: 1, Start: 1, End: 3, JobID: 2, Speed: 4})
	out, doc := render(t, s, Options{ShowLabels: true})
	// Background rect + 2 segments.
	if len(doc.Rects) != 3 {
		t.Fatalf("rects = %d, want 3", len(doc.Rects))
	}
	if !strings.Contains(out, "J1 [0,2) @2") {
		t.Errorf("missing segment tooltip:\n%s", out)
	}
	if !strings.Contains(out, `>J1<`) {
		t.Errorf("labels missing despite ShowLabels")
	}
	// Faster segment must be taller: compare heights via raw strings.
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P1") {
		t.Error("lane labels missing")
	}
}

func TestOptimalScheduleRenders(t *testing.T) {
	in, err := workload.Bursty(workload.Spec{N: 12, M: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	out, doc := render(t, res.Schedule, Options{Width: 640})
	if len(doc.Rects) < in.N() {
		t.Errorf("only %d rects for %d jobs", len(doc.Rects), in.N())
	}
	if len(out) < 1000 {
		t.Errorf("suspiciously small SVG (%d bytes)", len(out))
	}
}

func TestTickDeduplication(t *testing.T) {
	s := schedule.New(1)
	for i := 0; i < 50; i++ {
		s.Add(schedule.Segment{Proc: 0, Start: float64(i), End: float64(i) + 0.5, JobID: i, Speed: 1})
	}
	ticks := tickValues(s)
	if len(ticks) > 12 {
		t.Errorf("ticks = %d, want <= 12", len(ticks))
	}
	if ticks[0] != 0 || ticks[len(ticks)-1] != 49.5 {
		t.Errorf("tick endpoints = %v .. %v", ticks[0], ticks[len(ticks)-1])
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{}.normalize()
	if o.Width <= 0 || o.LaneHeight <= 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}
