// Package viz renders schedules as standalone SVG documents: one lane per
// processor, one rectangle per segment, bar height and shade scaled by
// speed, with a time axis along the event boundaries. It exists so the
// CLI tools and examples can emit figures directly (stdlib only — the
// SVG is assembled with fmt and escaped with encoding/xml rules).
package viz

import (
	"fmt"
	"io"
	"math"
	"sort"

	"mpss/internal/schedule"
)

// Options controls the rendering geometry.
type Options struct {
	Width      int  // total canvas width in px (default 900)
	LaneHeight int  // height of one processor lane in px (default 56)
	ShowLabels bool // draw job IDs inside segments wide enough
}

func (o Options) normalize() Options {
	if o.Width <= 0 {
		o.Width = 900
	}
	if o.LaneHeight <= 0 {
		o.LaneHeight = 56
	}
	return o
}

const (
	marginLeft = 46
	marginTop  = 24
	axisSpace  = 28
)

// palette of fill colors cycled by job ID (color-blind-safe-ish hues).
var palette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// SVG renders the schedule to w. Empty schedules yield a small document
// with an explanatory note rather than an error.
func SVG(out io.Writer, s *schedule.Schedule, o Options) error {
	o = o.normalize()
	height := marginTop + o.LaneHeight*max(s.M, 1) + axisSpace
	fmt.Fprintf(out, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n",
		o.Width, height)
	fmt.Fprintf(out, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	if len(s.Segments) == 0 {
		fmt.Fprintf(out, `<text x="%d" y="%d" font-size="13">empty schedule</text>`+"\n", marginLeft, marginTop+20)
		_, err := fmt.Fprintln(out, `</svg>`)
		return err
	}

	start, end := s.Span()
	span := end - start
	if span <= 0 {
		span = 1
	}
	plotW := float64(o.Width - marginLeft - 12)
	x := func(t float64) float64 { return marginLeft + (t-start)/span*plotW }

	maxSpeed := 0.0
	for _, seg := range s.Segments {
		maxSpeed = math.Max(maxSpeed, seg.Speed)
	}

	// Lanes.
	for p := 0; p < s.M; p++ {
		y := marginTop + p*o.LaneHeight
		fmt.Fprintf(out, `<text x="6" y="%d" font-size="12">P%d</text>`+"\n", y+o.LaneHeight/2+4, p)
		fmt.Fprintf(out, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			marginLeft, y+o.LaneHeight-1, o.Width-12, y+o.LaneHeight-1)
	}

	// Segments: height proportional to speed, anchored to the lane floor.
	for _, seg := range s.Segments {
		laneTop := marginTop + seg.Proc*o.LaneHeight
		h := (seg.Speed / maxSpeed) * float64(o.LaneHeight-8)
		if h < 2 {
			h = 2
		}
		yTop := float64(laneTop+o.LaneHeight-1) - h
		x0, x1 := x(seg.Start), x(seg.End)
		fill := palette[((seg.JobID%len(palette))+len(palette))%len(palette)]
		fmt.Fprintf(out,
			`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="#333" stroke-width="0.4"><title>J%d [%.4g,%.4g) @%.4g</title></rect>`+"\n",
			x0, yTop, math.Max(x1-x0, 0.5), h, fill, seg.JobID, seg.Start, seg.End, seg.Speed)
		if o.ShowLabels && x1-x0 > 24 {
			fmt.Fprintf(out, `<text x="%.2f" y="%.2f" font-size="10" fill="white">J%d</text>`+"\n",
				x0+3, yTop+h/2+4, seg.JobID)
		}
	}

	// Time axis with tick marks at event boundaries (deduplicated).
	ticks := tickValues(s)
	axisY := marginTop + s.M*o.LaneHeight + 4
	fmt.Fprintf(out, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginLeft, axisY, o.Width-12, axisY)
	for _, t := range ticks {
		fmt.Fprintf(out, `<line x1="%.2f" y1="%d" x2="%.2f" y2="%d" stroke="#333"/>`+"\n",
			x(t), axisY, x(t), axisY+4)
		fmt.Fprintf(out, `<text x="%.2f" y="%d" font-size="9" text-anchor="middle">%.4g</text>`+"\n",
			x(t), axisY+16, t)
	}

	_, err := fmt.Fprintln(out, `</svg>`)
	return err
}

// tickValues picks at most ~12 segment boundary times, always including
// the span endpoints.
func tickValues(s *schedule.Schedule) []float64 {
	start, end := s.Span()
	set := map[float64]bool{start: true, end: true}
	for _, seg := range s.Segments {
		set[seg.Start] = true
		set[seg.End] = true
	}
	all := make([]float64, 0, len(set))
	for t := range set {
		all = append(all, t)
	}
	sort.Float64s(all)
	if len(all) <= 12 {
		return all
	}
	step := float64(len(all)-1) / 11
	out := make([]float64, 0, 12)
	for i := 0; i < 12; i++ {
		out = append(out, all[int(math.Round(float64(i)*step))])
	}
	return out
}
