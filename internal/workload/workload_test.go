package workload

import (
	"testing"
)

func TestGeneratorsProduceValidInstances(t *testing.T) {
	for _, g := range All() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			in, err := g.Make(Spec{N: 20, M: 4, Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", g.Name, err)
			}
			if in.N() != 20 || in.M != 4 {
				t.Errorf("%s: got n=%d m=%d", g.Name, in.N(), in.M)
			}
			for _, j := range in.Jobs {
				if err := j.Validate(); err != nil {
					t.Errorf("%s: invalid job: %v", g.Name, err)
				}
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, g := range All() {
		a, err := g.Make(Spec{N: 10, M: 2, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Make(Spec{N: 10, M: 2, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Jobs {
			if a.Jobs[i] != b.Jobs[i] {
				t.Errorf("%s: seed 42 not deterministic at job %d", g.Name, i)
			}
		}
		c, err := g.Make(Spec{N: 10, M: 2, Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a.Jobs {
			if a.Jobs[i] != c.Jobs[i] {
				same = false
			}
		}
		// The adversarial gadgets are deterministic by design (seed-free).
		seedFree := g.Name == "avr-adversarial" || g.Name == "oa-adversarial"
		if same && !seedFree {
			t.Errorf("%s: different seeds produced identical instances", g.Name)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Uniform(Spec{N: 0, M: 1}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Uniform(Spec{N: 1, M: 0}); err == nil {
		t.Error("M=0 accepted")
	}
}

func TestByName(t *testing.T) {
	g, err := ByName("bursty")
	if err != nil || g.Name != "bursty" {
		t.Errorf("ByName(bursty) = %v, %v", g.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestAVRAdversarialShape(t *testing.T) {
	in, err := AVRAdversarial(Spec{N: 8, M: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All jobs released at 0 with halving deadlines and density 1.
	for i, j := range in.Jobs {
		if j.Release != 0 {
			t.Errorf("job %d released at %v", i, j.Release)
		}
		if d := j.Density(); d < 0.999 || d > 1.001 {
			t.Errorf("job %d density %v, want 1", i, d)
		}
		if i > 0 && j.Deadline > in.Jobs[i-1].Deadline {
			t.Errorf("deadlines not shrinking at job %d", i)
		}
	}
}

func TestHorizonDefault(t *testing.T) {
	in, err := Uniform(Spec{N: 5, M: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, end := in.Horizon()
	if end > 150 {
		t.Errorf("default horizon exceeded: end=%v", end)
	}
	in2, err := Uniform(Spec{N: 5, M: 1, Seed: 1, Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, end2 := in2.Horizon()
	if end2 > 15 {
		t.Errorf("custom horizon exceeded: end=%v", end2)
	}
}

func TestPoissonShape(t *testing.T) {
	in, err := Poisson(Spec{N: 30, M: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Releases strictly increasing (exponential gaps are a.s. positive).
	for i := 1; i < in.N(); i++ {
		if in.Jobs[i].Release <= in.Jobs[i-1].Release {
			t.Fatalf("releases not increasing at %d", i)
		}
	}
}
