// Cluster-trace-shaped workload: diurnal arrival waves, heavy-tailed
// work volumes, job classes with distinct deadline tightness. This is
// the generator behind the datacenter-scale experiments: it emits jobs
// one at a time in release order (GenerateTrace), so a 10M-job trace
// streams straight to disk, and its waves are separable by construction
// — every window opened inside a wave closes before the next wave
// starts — so the windowed decomposition cuts the trace into components
// of roughly wave size no matter how long it runs.
package workload

import (
	"math"
	"math/rand"
	"sort"

	"mpss/internal/job"
)

// traceJobsPerWave is the target component size: each diurnal wave holds
// about this many jobs, so the decomposed solve cost is governed by this
// constant rather than the trace length.
const traceJobsPerWave = 64

// Job-class mix of the trace, modelled on the interactive/service/batch
// split of public cluster traces: most jobs are small and urgent, a
// heavy tail of batch work carries most of the volume.
type traceClass struct {
	weight  float64 // fraction of jobs
	window  float64 // max window length as a fraction of the wave period
	xm      float64 // Pareto scale (minimum work)
	alpha   float64 // Pareto shape (smaller = heavier tail)
	workCap float64 // truncation, in multiples of xm
}

var traceClasses = []traceClass{
	{weight: 0.60, window: 0.06, xm: 0.05, alpha: 2.2, workCap: 20},  // interactive
	{weight: 0.30, window: 0.18, xm: 0.25, alpha: 2.0, workCap: 40},  // service
	{weight: 0.10, window: 0.28, xm: 1.00, alpha: 1.5, workCap: 100}, // batch
}

// traceDuty is the fraction of each wave period during which jobs
// arrive. Arrivals stop at duty*T and the widest window is 0.28*T, so
// every window closes by (duty+0.28)*T < T: waves never overlap and the
// boundary between consecutive waves is always a decomposition cut.
const traceDuty = 0.70

// GenerateTrace emits exactly spec.N diurnal-trace jobs in nondecreasing
// release order through emit, materializing at most one wave (~64 jobs)
// at a time. Job IDs are 1..N. spec.Horizon spans the whole trace; the
// zero default is 100 time units per wave so the wave period stays
// O(100) at any N (a fixed total default would shrink periods toward
// float granularity on million-job traces).
func GenerateTrace(spec Spec, emit func(job.Job) error) error {
	if err := spec.validate(); err != nil {
		return err
	}
	waves := spec.N / traceJobsPerWave
	if waves < 1 {
		waves = 1
	}
	h := spec.Horizon
	if h == 0 {
		h = 100 * float64(waves)
	}
	period := h / float64(waves)
	rng := rand.New(rand.NewSource(spec.Seed))

	// Exact per-wave counts: N/waves each, remainder spread over the
	// first waves. The arrival *times* are random; the counts are pinned
	// so the generator emits exactly N jobs.
	base, rem := spec.N/waves, spec.N%waves
	id := 1
	releases := make([]float64, 0, base+1)
	for w := 0; w < waves; w++ {
		cnt := base
		if w < rem {
			cnt++
		}
		w0 := float64(w) * period
		// Arrival offsets within the wave follow the sin^2 diurnal
		// envelope over the duty window, drawn by rejection against the
		// unit envelope and sorted — a thinned Poisson process
		// conditioned on the wave's job count.
		releases = releases[:0]
		for len(releases) < cnt {
			u := rng.Float64() * traceDuty * period
			if rng.Float64() < sqSin(math.Pi*u/(traceDuty*period)) {
				releases = append(releases, w0+u)
			}
		}
		sort.Float64s(releases)
		for _, r := range releases {
			c := pickClass(rng)
			span := c.window * period * (0.3 + 0.7*rng.Float64())
			work := c.xm * math.Pow(rng.Float64(), -1/c.alpha)
			if work > c.xm*c.workCap {
				work = c.xm * c.workCap
			}
			j := job.Job{ID: id, Release: r, Deadline: r + span, Work: work}
			id++
			if err := emit(j); err != nil {
				return err
			}
		}
	}
	return nil
}

func sqSin(x float64) float64 { s := math.Sin(x); return s * s }

func pickClass(rng *rand.Rand) traceClass {
	u := rng.Float64()
	for _, c := range traceClasses {
		if u < c.weight {
			return c
		}
		u -= c.weight
	}
	return traceClasses[len(traceClasses)-1]
}

// WriteTrace streams a generated trace into sw.
func WriteTrace(sw *StreamWriter, spec Spec) error {
	return GenerateTrace(spec, sw.Write)
}

// Diurnal is the materialized form of GenerateTrace for the generator
// catalogue: cluster-trace arrival waves as an in-memory instance, for
// the test suites and moderate-size sweeps. Large traces should stream
// (GenerateTrace / WriteTrace) instead.
func Diurnal(spec Spec) (*job.Instance, error) {
	jobs := make([]job.Job, 0, spec.N)
	if err := GenerateTrace(spec, func(j job.Job) error {
		jobs = append(jobs, j)
		return nil
	}); err != nil {
		return nil, err
	}
	return job.NewInstance(spec.M, jobs)
}
