// Package workload generates seeded, reproducible job instances for the
// test suites and the benchmark harness. Each generator models one of the
// load shapes discussed in the paper's introduction: steady multi-core
// load, bursty server-farm traffic, tight-deadline realtime mixes, and
// adversarial gadgets for the online algorithms.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"mpss/internal/job"
)

// Spec parameterizes a generator run. Generators are pure functions of
// the Spec: equal specs generate equal instances, bit for bit.
type Spec struct {
	N int // number of jobs
	M int // number of processors
	// Seed selects the pseudo-random stream. Every value — including the
	// zero value — names one fixed stream, so a zero-initialized Spec is
	// reproducible, not "unseeded": callers wanting run-to-run variation
	// must pick their own seeds (e.g. from a clock), the package never
	// does it for them.
	Seed int64
	// Horizon is the time-horizon length the jobs are laid into, in the
	// model's time units. Zero means the default of 100; negative or
	// non-finite values are rejected by validation rather than silently
	// remapped, since two specs differing only in an invalid Horizon
	// would otherwise generate the same instance and break the
	// equal-specs-equal-instances contract.
	Horizon float64
}

func (s Spec) horizon() float64 {
	if s.Horizon == 0 {
		return 100
	}
	return s.Horizon
}

func (s Spec) validate() error {
	if s.N < 1 {
		return fmt.Errorf("workload: N = %d < 1", s.N)
	}
	if s.M < 1 {
		return fmt.Errorf("workload: M = %d < 1", s.M)
	}
	if s.Horizon < 0 || math.IsNaN(s.Horizon) || math.IsInf(s.Horizon, 0) {
		return fmt.Errorf("workload: horizon %v invalid (want 0 for the default, or a positive finite length)", s.Horizon)
	}
	return nil
}

// Uniform scatters jobs uniformly over the horizon with moderately loose
// windows and uniform works — the baseline random workload.
func Uniform(spec Spec) (*job.Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	h := spec.horizon()
	jobs := make([]job.Job, spec.N)
	for i := range jobs {
		r := rng.Float64() * h * 0.8
		span := h*0.05 + rng.Float64()*h*0.25
		jobs[i] = job.Job{
			ID:       i + 1,
			Release:  r,
			Deadline: r + span,
			Work:     0.5 + rng.Float64()*4,
		}
	}
	return job.NewInstance(spec.M, jobs)
}

// Bursty releases jobs in a few tight bursts separated by idle gaps —
// the server-farm arrival pattern that makes migration valuable.
func Bursty(spec Spec) (*job.Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	h := spec.horizon()
	bursts := 2 + rng.Intn(3)
	jobs := make([]job.Job, spec.N)
	for i := range jobs {
		b := rng.Intn(bursts)
		center := h * (0.1 + 0.8*float64(b)/float64(bursts))
		r := center + rng.Float64()*h*0.02
		span := h*0.03 + rng.Float64()*h*0.15
		jobs[i] = job.Job{
			ID:       i + 1,
			Release:  r,
			Deadline: r + span,
			Work:     1 + rng.Float64()*6,
		}
	}
	return job.NewInstance(spec.M, jobs)
}

// Tight gives every job a laxity barely above its mean-speed requirement,
// forcing high speeds and many distinct speed levels.
func Tight(spec Spec) (*job.Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	h := spec.horizon()
	jobs := make([]job.Job, spec.N)
	for i := range jobs {
		r := rng.Float64() * h * 0.9
		span := h * (0.005 + rng.Float64()*0.03)
		jobs[i] = job.Job{
			ID:       i + 1,
			Release:  r,
			Deadline: r + span,
			Work:     span * (0.5 + rng.Float64()*3),
		}
	}
	return job.NewInstance(spec.M, jobs)
}

// LongShort mixes a few long background jobs with many short urgent ones —
// the mix where non-migratory assignment pays the largest energy premium
// (experiment E7).
func LongShort(spec Spec) (*job.Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	h := spec.horizon()
	jobs := make([]job.Job, spec.N)
	for i := range jobs {
		if i%4 == 0 { // long job
			r := rng.Float64() * h * 0.3
			jobs[i] = job.Job{
				ID:       i + 1,
				Release:  r,
				Deadline: r + h*(0.5+rng.Float64()*0.4),
				Work:     10 + rng.Float64()*20,
			}
		} else { // short urgent job
			r := rng.Float64() * h * 0.9
			span := h * (0.01 + rng.Float64()*0.05)
			jobs[i] = job.Job{
				ID:       i + 1,
				Release:  r,
				Deadline: r + span,
				Work:     0.2 + rng.Float64()*1.5,
			}
		}
	}
	return job.NewInstance(spec.M, jobs)
}

// Staircase builds nested job windows sharing a right endpoint, which
// drives the offline algorithm through many phases with strictly
// decreasing speeds — a worst-case-ish structural gadget.
func Staircase(spec Spec) (*job.Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	h := spec.horizon()
	jobs := make([]job.Job, spec.N)
	for i := range jobs {
		frac := float64(i+1) / float64(spec.N)
		jobs[i] = job.Job{
			ID:       i + 1,
			Release:  h * (1 - frac),
			Deadline: h,
			Work:     (1 + rng.Float64()) * h * frac / float64(spec.N) * 4,
		}
	}
	return job.NewInstance(spec.M, jobs)
}

// AVRAdversarial builds the nested-interval gadget that pushes the
// single-processor Average Rate term of Theorem 3's bound: many jobs with
// a common release time and geometrically shrinking deadlines, so the
// accumulated density at time 0 far exceeds the optimal speed.
func AVRAdversarial(spec Spec) (*job.Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	h := spec.horizon()
	jobs := make([]job.Job, spec.N)
	d := h
	for i := range jobs {
		jobs[i] = job.Job{
			ID:       i + 1,
			Release:  0,
			Deadline: d,
			Work:     d, // density 1 each; total density n at time 0
		}
		d /= 2
		if d < 1e-9 {
			d = 1e-9 // floor: further jobs share the smallest window
		}
	}
	return job.NewInstance(spec.M, jobs)
}

// OAAdversarial is the time-reversed cousin of AVRAdversarial: all jobs
// share the deadline while releases halve the remaining window, so every
// arrival forces Optimal Available to concentrate more work into less
// time at ever-higher speeds — the arrival pattern that stresses OA's
// replanning (its ratio still provably stays below alpha^alpha).
func OAAdversarial(spec Spec) (*job.Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	h := spec.horizon()
	jobs := make([]job.Job, spec.N)
	window := h
	for i := range jobs {
		jobs[i] = job.Job{
			ID:       i + 1,
			Release:  h - window,
			Deadline: h,
			Work:     window, // density 1 within its own window
		}
		window /= 2
		if window < 1e-9 {
			window = 1e-9
		}
	}
	return job.NewInstance(spec.M, jobs)
}

// Poisson draws exponential interarrival times (rate scaled so the N jobs
// fill the horizon), exponential service demands, and uniform laxities —
// the queueing-flavoured arrival process used in systems evaluations.
func Poisson(spec Spec) (*job.Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	h := spec.horizon()
	rate := float64(spec.N) / (h * 0.8)
	jobs := make([]job.Job, spec.N)
	t := 0.0
	for i := range jobs {
		t += rng.ExpFloat64() / rate
		span := h*0.02 + rng.Float64()*h*0.2
		jobs[i] = job.Job{
			ID:       i + 1,
			Release:  t,
			Deadline: t + span,
			Work:     0.2 + rng.ExpFloat64()*2,
		}
	}
	return job.NewInstance(spec.M, jobs)
}

// Slotted models a mixed interactive/batch cluster on a shared time
// grid, the way slotted batch systems and periodic realtime task sets
// carve their horizon. The horizon is cut into 256 base slots. Up to
// half the jobs form "interactive" stacks: groups of exactly M jobs
// pinned to a single slot (window = that slot) at one fixed, high
// density, placed on evenly spaced alternate slots. The rest is
// "batch" load: 32-slot windows aligned to their own width, with
// jittered work drawn from a shared budget a quarter of the
// interactive density, banded so each region of the horizon carries a
// different load level and the batch phases peel off region by region.
//
// The structure is built so interval contraction has something to
// collapse: the interactive stacks form the top speed phase and die
// first, saturating their slots (a stack of M equal jobs reserves all
// M processors for exactly its slot), so every later phase sees those
// slots as zero-capacity gaps and the surviving batch jobs only break
// the horizon at coarse block boundaries — long runs of atomic
// intervals carry identical active sets and merge. Grids, not
// arbitrary reals, are what schedulers actually see, which makes this
// the showcase workload for the contracted solve path.
func Slotted(spec Spec) (*job.Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	h := spec.horizon()
	const slots = 256
	slotW := h / slots
	// Full stacks only: a partial stack would not saturate its slot.
	covered := (spec.N / 2) / spec.M
	if covered > slots/2 {
		covered = slots / 2
	}
	nConf := covered * spec.M
	jobs := make([]job.Job, spec.N)
	for i := range jobs {
		if i < nConf {
			// Interactive stack member: one slot, exact density 64, so
			// the stack fills its slot precisely at the phase speed.
			slot := (i / spec.M * (slots / 2) / covered) * 2
			r := float64(slot) * slotW
			jobs[i] = job.Job{
				ID:       i + 1,
				Release:  r,
				Deadline: r + slotW,
				Work:     64 * slotW,
			}
			continue
		}
		// Batch job: a 32-slot aligned window with jittered work. The
		// batch pool shares a fixed budget — an average machine speed of
		// 16, a quarter of the interactive density — so the batch phases
		// stay strictly below the interactive one at every instance
		// size. The per-region band keeps the eight regions at distinct
		// load levels, so the batch work resolves into several phases
		// instead of one giant uniform level.
		const batchSlots = 32
		b := rng.Intn(slots / batchSlots)
		width := batchSlots * slotW
		r := float64(b) * width
		budget := 16 * float64(spec.M) * h / 2
		band := 1 / float64(1+b)
		jobs[i] = job.Job{
			ID:       i + 1,
			Release:  r,
			Deadline: r + width,
			Work:     (0.5 + 0.5*rng.Float64()) * band * budget / float64(spec.N-nConf),
		}
	}
	return job.NewInstance(spec.M, jobs)
}

// Generator is a named instance generator, for table-driven sweeps.
type Generator struct {
	Name string
	Make func(Spec) (*job.Instance, error)
}

// All returns the full generator catalogue.
func All() []Generator {
	return []Generator{
		{Name: "uniform", Make: Uniform},
		{Name: "bursty", Make: Bursty},
		{Name: "tight", Make: Tight},
		{Name: "longshort", Make: LongShort},
		{Name: "staircase", Make: Staircase},
		{Name: "avr-adversarial", Make: AVRAdversarial},
		{Name: "oa-adversarial", Make: OAAdversarial},
		{Name: "poisson", Make: Poisson},
		{Name: "slotted", Make: Slotted},
		{Name: "diurnal", Make: Diurnal},
	}
}

// ByName returns the named generator.
func ByName(name string) (Generator, error) {
	for _, g := range All() {
		if g.Name == name {
			return g, nil
		}
	}
	return Generator{}, fmt.Errorf("workload: unknown generator %q", name)
}
