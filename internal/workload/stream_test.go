package workload

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"mpss/internal/job"
)

func TestStreamRoundTrip(t *testing.T) {
	spec := Spec{N: 500, M: 4, Seed: 9}
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, spec.M)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(sw, spec); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !IsStream(buf.Bytes()) {
		t.Fatal("IsStream rejected a freshly written trace")
	}

	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.M() != spec.M {
		t.Fatalf("header m = %d, want %d", sr.M(), spec.M)
	}
	var got []job.Job
	for {
		j, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, j)
	}

	want, err := Diurnal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Jobs) {
		t.Fatalf("streamed %d jobs, materialized %d", len(got), len(want.Jobs))
	}
	for i := range got {
		if got[i] != want.Jobs[i] {
			t.Fatalf("job %d: streamed %v, materialized %v", i, got[i], want.Jobs[i])
		}
	}
}

func TestStreamRejectsUnsorted(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(job.Job{ID: 1, Release: 5, Deadline: 6, Work: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(job.Job{ID: 2, Release: 4, Deadline: 6, Work: 1}); err == nil {
		t.Fatal("writer accepted out-of-order job")
	}

	in := `{"format":"mpss-trace-v1","m":2}
{"id":1,"release":5,"deadline":6,"work":1}
{"id":2,"release":4,"deadline":6,"work":1}
`
	sr, err := NewStreamReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err == nil || !strings.Contains(err.Error(), "sorted") {
		t.Fatalf("want release-order error, got %v", err)
	}
}

func TestStreamRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json header":  "hello\n",
		"wrong format":     `{"format":"mpss-trace-v9","m":2}` + "\n",
		"bad m":            `{"format":"mpss-trace-v1","m":0}` + "\n",
		"instance json":    `{"m":2,"jobs":[{"id":1,"release":0,"deadline":1,"work":1}]}` + "\n",
		"invalid job line": `{"format":"mpss-trace-v1","m":2}` + "\n" + `{"id":1,"release":2,"deadline":1,"work":1}` + "\n",
		"garbage job line": `{"format":"mpss-trace-v1","m":2}` + "\n" + `]]]` + "\n",
	}
	for name, in := range cases {
		sr, err := NewStreamReader(strings.NewReader(in))
		if err == nil {
			_, err = sr.Next()
		}
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
		if IsStream([]byte(in)) && (name == "not json header" || name == "wrong format" || name == "instance json") {
			t.Errorf("%s: IsStream said true", name)
		}
	}
}

func TestGenerateTraceShape(t *testing.T) {
	for _, n := range []int{1, 63, 64, 1000} {
		spec := Spec{N: n, M: 4, Seed: 21}
		var jobs []job.Job
		if err := GenerateTrace(spec, func(j job.Job) error {
			jobs = append(jobs, j)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(jobs) != n {
			t.Fatalf("n=%d: emitted %d jobs", n, len(jobs))
		}
		for i, j := range jobs {
			if j.ID != i+1 {
				t.Fatalf("n=%d: job %d has ID %d, want sequential", n, i, j.ID)
			}
			if err := j.Validate(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if i > 0 && j.Release < jobs[i-1].Release {
				t.Fatalf("n=%d: releases not sorted at %d", n, i)
			}
		}
	}
}

// The waves must actually separate: a 1000-job trace has ~15 waves, and
// every wave boundary must be a decomposition cut — that separability is
// the entire point of the generator.
func TestTraceIsSeparable(t *testing.T) {
	spec := Spec{N: 1000, M: 8, Seed: 3}
	in, err := Diurnal(spec)
	if err != nil {
		t.Fatal(err)
	}
	waves := spec.N / traceJobsPerWave
	period := 100.0 // per-wave default horizon
	cuts := 0
	open := 0.0
	for i, j := range in.Jobs {
		if i > 0 && j.Release >= open {
			cuts++
		}
		if j.Deadline > open {
			open = j.Deadline
		}
		// No window may span a wave boundary.
		w := int(j.Release / period)
		if j.Deadline > float64(w+1)*period {
			t.Fatalf("job %v crosses its wave boundary %v", j, float64(w+1)*period)
		}
	}
	if cuts < waves-1 {
		t.Fatalf("found %d cuts, want at least %d (one per wave boundary)", cuts, waves-1)
	}
}

func TestDiurnalDeterministic(t *testing.T) {
	a, err := Diurnal(Spec{N: 200, M: 4, Seed: 0}) // Seed 0 is a fixed stream
	if err != nil {
		t.Fatal(err)
	}
	b, err := Diurnal(Spec{N: 200, M: 4, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("equal specs, different instances at job %d", i)
		}
	}
	c, err := Diurnal(Spec{N: 200, M: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Jobs {
		if a.Jobs[i] != c.Jobs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestSpecRejectsBadHorizon(t *testing.T) {
	for _, h := range []float64{-1, nan(), inf()} {
		if _, err := Uniform(Spec{N: 4, M: 1, Horizon: h}); err == nil {
			t.Errorf("horizon %v accepted", h)
		}
		if err := GenerateTrace(Spec{N: 4, M: 1, Horizon: h}, func(job.Job) error { return nil }); err == nil {
			t.Errorf("trace horizon %v accepted", h)
		}
	}
	if _, err := Uniform(Spec{N: 4, M: 1, Horizon: 50}); err != nil {
		t.Errorf("positive horizon rejected: %v", err)
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }
