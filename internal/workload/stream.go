// Streaming JSONL instance format (mpss-trace-v1), built so million-job
// traces never have to exist in memory at once: the header carries the
// instance-wide processor count, then every line is one job, and jobs
// are required to arrive in nondecreasing release order — exactly the
// property that lets a consumer cut separable components on the fly
// (the moment every window opened so far has closed, everything read so
// far is a finished component and can be dispatched before the rest of
// the trace is even parsed).
//
//	{"format":"mpss-trace-v1","m":8}
//	{"id":1,"release":0.31,"deadline":1.02,"work":0.5}
//	{"id":2,"release":0.47,"deadline":0.61,"work":0.1}
//	...
//
// The job lines reuse job.Job's JSON field names, so a line of a trace
// and an element of the in-memory instance format's "jobs" array are the
// same object.
package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"mpss/internal/job"
)

// StreamFormat is the format tag of the trace header line.
const StreamFormat = "mpss-trace-v1"

type streamHeader struct {
	Format string `json:"format"`
	M      int    `json:"m"`
}

// IsStream reports whether data begins with an mpss-trace-v1 header
// line; a prefix of the input (the first line suffices) is enough. CLI
// tools use it to tell a streamed trace from the in-memory instance
// JSON, whose first byte opens an object with different fields.
func IsStream(data []byte) bool {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	var h streamHeader
	if err := json.Unmarshal(data, &h); err != nil {
		return false
	}
	return h.Format == StreamFormat
}

// StreamWriter writes a trace one job at a time.
type StreamWriter struct {
	bw    *bufio.Writer
	lastR float64
	wrote bool
}

// NewStreamWriter writes the header and returns a writer for the job
// lines. Call Flush when done; the writer does not own the underlying
// io.Writer.
func NewStreamWriter(w io.Writer, m int) (*StreamWriter, error) {
	if m < 1 {
		return nil, fmt.Errorf("workload: stream needs m >= 1, got %d", m)
	}
	sw := &StreamWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	hdr, _ := json.Marshal(streamHeader{Format: StreamFormat, M: m})
	if _, err := sw.bw.Write(append(hdr, '\n')); err != nil {
		return nil, err
	}
	return sw, nil
}

// Write appends one job line. Jobs must be valid and arrive in
// nondecreasing release order — the writer enforces the invariant the
// reader relies on rather than producing a trace no reader will accept.
func (sw *StreamWriter) Write(j job.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if sw.wrote && j.Release < sw.lastR {
		return fmt.Errorf("workload: stream out of order: job %d releases at %v after a job releasing at %v",
			j.ID, j.Release, sw.lastR)
	}
	sw.lastR, sw.wrote = j.Release, true
	line, _ := json.Marshal(j)
	_, err := sw.bw.Write(append(line, '\n'))
	return err
}

// Flush flushes buffered lines to the underlying writer.
func (sw *StreamWriter) Flush() error { return sw.bw.Flush() }

// StreamReader reads a trace one job at a time.
type StreamReader struct {
	br    *bufio.Reader
	m     int
	line  int
	lastR float64
	read  bool
}

// NewStreamReader parses the header line and returns a reader positioned
// at the first job.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	sr := &StreamReader{br: bufio.NewReaderSize(r, 1<<16)}
	raw, err := sr.br.ReadBytes('\n')
	if err != nil && (err != io.EOF || len(raw) == 0) {
		return nil, fmt.Errorf("workload: reading stream header: %w", err)
	}
	var h streamHeader
	if err := json.Unmarshal(raw, &h); err != nil {
		return nil, fmt.Errorf("workload: malformed stream header: %w", err)
	}
	if h.Format != StreamFormat {
		return nil, fmt.Errorf("workload: stream format %q, want %q", h.Format, StreamFormat)
	}
	if h.M < 1 {
		return nil, fmt.Errorf("workload: stream header m = %d < 1", h.M)
	}
	sr.m = h.M
	sr.line = 1
	return sr, nil
}

// M returns the processor count from the header.
func (sr *StreamReader) M() int { return sr.m }

// Next returns the next job, or io.EOF when the trace is exhausted.
// Malformed lines, invalid jobs and release-order violations surface as
// errors annotated with the line number.
func (sr *StreamReader) Next() (job.Job, error) {
	for {
		raw, err := sr.br.ReadBytes('\n')
		sr.line++
		if len(bytes.TrimSpace(raw)) == 0 {
			if err != nil {
				return job.Job{}, io.EOF
			}
			continue // tolerate blank lines (trailing newline, hand edits)
		}
		var j job.Job
		if uerr := json.Unmarshal(raw, &j); uerr != nil {
			return job.Job{}, fmt.Errorf("workload: stream line %d: %w", sr.line, uerr)
		}
		if verr := j.Validate(); verr != nil {
			return job.Job{}, fmt.Errorf("workload: stream line %d: %w", sr.line, verr)
		}
		if sr.read && j.Release < sr.lastR {
			return job.Job{}, fmt.Errorf("workload: stream line %d: job %d releases at %v after a job releasing at %v (trace must be sorted by release)",
				sr.line, j.ID, j.Release, sr.lastR)
		}
		sr.lastR, sr.read = j.Release, true
		return j, nil
	}
}
