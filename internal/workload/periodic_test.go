package workload

import (
	"math"
	"testing"
)

func TestTaskValidate(t *testing.T) {
	good := Task{Period: 10, WCET: 3, Phase: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	bad := []Task{
		{Period: 0, WCET: 1},
		{Period: 10, WCET: 0},
		{Period: 10, WCET: 11},           // utilization > 1
		{Period: 10, WCET: 3, Phase: -1}, // negative phase
	}
	for _, task := range bad {
		if err := task.Validate(); err == nil {
			t.Errorf("invalid task accepted: %+v", task)
		}
	}
}

func TestExpandPeriodic(t *testing.T) {
	tasks := []Task{
		{Period: 10, WCET: 2, Phase: 0},
		{Period: 5, WCET: 1, Phase: 2},
	}
	in, err := ExpandPeriodic(2, tasks, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Task 1 releases at 0, 10 (2 jobs); task 2 at 2, 7, 12, 17 (4 jobs).
	if in.N() != 6 {
		t.Fatalf("n = %d, want 6", in.N())
	}
	for _, j := range in.Jobs {
		if j.Deadline-j.Release != 10 && j.Deadline-j.Release != 5 {
			t.Errorf("job %v has non-period window", j)
		}
	}
}

func TestExpandPeriodicValidation(t *testing.T) {
	if _, err := ExpandPeriodic(1, nil, 10); err == nil {
		t.Error("empty task set accepted")
	}
	if _, err := ExpandPeriodic(1, []Task{{Period: 1, WCET: 0.5}}, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := ExpandPeriodic(1, []Task{{Period: 1, WCET: 2}}, 10); err == nil {
		t.Error("over-utilized task accepted")
	}
}

func TestPeriodicGenerator(t *testing.T) {
	in, err := Periodic(Spec{N: 4, M: 2, Seed: 5, Horizon: 40}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if in.M != 2 || in.N() < 4 {
		t.Errorf("instance m=%d n=%d", in.M, in.N())
	}
	// Deterministic per seed.
	in2, err := Periodic(Spec{N: 4, M: 2, Seed: 5, Horizon: 40}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != in2.N() {
		t.Error("periodic generator not deterministic")
	}
	// Default utilization path.
	if _, err := Periodic(Spec{N: 3, M: 2, Seed: 1}, 0); err != nil {
		t.Errorf("default utilization failed: %v", err)
	}
	// Excessive utilization clamps rather than fails.
	if _, err := Periodic(Spec{N: 3, M: 2, Seed: 1}, 100); err != nil {
		t.Errorf("clamped utilization failed: %v", err)
	}
}

func TestFromTrace(t *testing.T) {
	data := []byte(`{"m":2,"jobs":[
		{"id":1,"release":0,"deadline":4,"work":2},
		{"id":2,"release":1,"deadline":6,"work":3}]}`)
	in, err := FromTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if in.M != 2 || in.N() != 2 || math.Abs(in.TotalWork()-5) > 1e-12 {
		t.Errorf("trace parsed wrong: %+v", in)
	}
	if _, err := FromTrace([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := FromTrace([]byte(`{"m":0,"jobs":[]}`)); err == nil {
		t.Error("invalid trace accepted")
	}
}
