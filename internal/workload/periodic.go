package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"mpss/internal/job"
)

// Task is one periodic real-time task: starting at Phase, it releases a
// job every Period time units with an implicit deadline one period later
// and WCET units of work per job — the classic Liu–Layland shape mapped
// onto the paper's job model.
type Task struct {
	Period float64 `json:"period"`
	WCET   float64 `json:"wcet"`
	Phase  float64 `json:"phase"`
}

// Validate checks the task parameters.
func (t Task) Validate() error {
	if t.Period <= 0 {
		return fmt.Errorf("workload: task period %v <= 0", t.Period)
	}
	if t.WCET <= 0 {
		return fmt.Errorf("workload: task wcet %v <= 0", t.WCET)
	}
	if t.WCET > t.Period {
		return fmt.Errorf("workload: task utilization %v > 1 (wcet %v, period %v)",
			t.WCET/t.Period, t.WCET, t.Period)
	}
	if t.Phase < 0 {
		return fmt.Errorf("workload: negative phase %v", t.Phase)
	}
	return nil
}

// ExpandPeriodic unrolls a periodic task set over [0, horizon) into a job
// instance on m processors. Per-task utilizations must not exceed 1 (a
// single job cannot run in parallel with itself, so utilization above 1
// is infeasible regardless of speed).
func ExpandPeriodic(m int, tasks []Task, horizon float64) (*job.Instance, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: horizon %v <= 0", horizon)
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("workload: no tasks")
	}
	var jobs []job.Job
	id := 1
	for ti, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("task %d: %w", ti, err)
		}
		for r := t.Phase; r < horizon; r += t.Period {
			jobs = append(jobs, job.Job{
				ID:       id,
				Release:  r,
				Deadline: r + t.Period,
				Work:     t.WCET,
			})
			id++
		}
	}
	return job.NewInstance(m, jobs)
}

// Periodic draws a random periodic task set with total utilization near
// the given target (clamped to [0.1, 0.95*m]) and unrolls it. It models
// the real-time multi-core scenario from the speed-scaling literature.
func Periodic(spec Spec, utilization float64) (*job.Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	h := spec.horizon()
	nTasks := spec.N
	if nTasks < 1 {
		nTasks = 1
	}
	target := utilization
	if target <= 0 {
		target = 0.5 * float64(spec.M)
	}
	maxU := 0.95 * float64(spec.M)
	if target > maxU {
		target = maxU
	}
	tasks := make([]Task, nTasks)
	for i := range tasks {
		u := target / float64(nTasks)
		if u > 0.95 {
			u = 0.95
		}
		period := h / float64(2+rng.Intn(8))
		tasks[i] = Task{
			Period: period,
			WCET:   u * period,
			Phase:  rng.Float64() * period,
		}
	}
	return ExpandPeriodic(spec.M, tasks, h)
}

// trace is the JSON shape accepted by FromTrace.
type trace struct {
	M    int `json:"m"`
	Jobs []struct {
		ID       int     `json:"id"`
		Release  float64 `json:"release"`
		Deadline float64 `json:"deadline"`
		Work     float64 `json:"work"`
	} `json:"jobs"`
}

// FromTrace parses an external JSON job trace (same shape the CLI tools
// emit) into a validated instance. It substitutes for the production
// traces a deployment would replay.
func FromTrace(data []byte) (*job.Instance, error) {
	var tr trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("workload: parsing trace: %w", err)
	}
	jobs := make([]job.Job, len(tr.Jobs))
	for i, j := range tr.Jobs {
		jobs[i] = job.Job{ID: j.ID, Release: j.Release, Deadline: j.Deadline, Work: j.Work}
	}
	return job.NewInstance(tr.M, jobs)
}
