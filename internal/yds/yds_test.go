package yds

import (
	"math"
	"testing"
	"testing/quick"

	"mpss/internal/job"
	"mpss/internal/power"
	"mpss/internal/workload"
)

func TestSingleJob(t *testing.T) {
	res, err := Schedule([]job.Job{{ID: 1, Release: 0, Deadline: 4, Work: 8}})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := job.NewInstance(1, []job.Job{{ID: 1, Release: 0, Deadline: 4, Work: 8}})
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	// Single job runs at its density.
	speeds := res.Schedule.DistinctSpeeds(1e-9)
	if len(speeds) != 1 || math.Abs(speeds[0]-2) > 1e-9 {
		t.Errorf("speeds = %v, want [2]", speeds)
	}
}

func TestWorkedExample(t *testing.T) {
	// J1 must run at speed 2 in [0,2); J2 then fills [2,4) at speed 1.
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 2, Work: 4},
		{ID: 2, Release: 0, Deadline: 4, Work: 2},
	}
	res, err := Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := job.NewInstance(1, jobs)
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	p := power.MustAlpha(2)
	if got := res.Schedule.Energy(p); math.Abs(got-10) > 1e-6 {
		t.Errorf("energy = %v, want 10", got)
	}
	if len(res.Intensity) != 2 || math.Abs(res.Intensity[0]-2) > 1e-9 || math.Abs(res.Intensity[1]-1) > 1e-9 {
		t.Errorf("intensities = %v, want [2 1]", res.Intensity)
	}
}

func TestCriticalIntervalInsideHorizon(t *testing.T) {
	// A dense job in the middle forces a critical interval that splits the
	// outer job's window into two free spans.
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 10, Work: 5},
		{ID: 2, Release: 4, Deadline: 6, Work: 8}, // density 4
	}
	res, err := Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := job.NewInstance(1, jobs)
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Intensity[0]-4) > 1e-9 {
		t.Errorf("first critical speed = %v, want 4", res.Intensity[0])
	}
	// Outer job: 5 work in 8 free time units -> speed 0.625.
	if math.Abs(res.Intensity[1]-0.625) > 1e-9 {
		t.Errorf("second critical speed = %v, want 0.625", res.Intensity[1])
	}
}

func TestDisjointJobs(t *testing.T) {
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 2, Work: 2},
		{ID: 2, Release: 5, Deadline: 7, Work: 6},
	}
	res, err := Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := job.NewInstance(1, jobs)
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	speeds := res.Schedule.JobSpeeds(1e-9)
	if math.Abs(speeds[1][0]-1) > 1e-9 || math.Abs(speeds[2][0]-3) > 1e-9 {
		t.Errorf("job speeds = %v", speeds)
	}
}

func TestIdenticalJobs(t *testing.T) {
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 2},
		{ID: 2, Release: 0, Deadline: 4, Work: 2},
	}
	res, err := Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := job.NewInstance(1, jobs)
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	if s := res.Schedule.DistinctSpeeds(1e-9); len(s) != 1 || math.Abs(s[0]-1) > 1e-9 {
		t.Errorf("speeds = %v, want [1]", s)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Schedule(nil); err == nil {
		t.Error("empty job list accepted")
	}
	if _, err := Schedule([]job.Job{{ID: 1, Release: 2, Deadline: 1, Work: 1}}); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestEnergyHelper(t *testing.T) {
	e, err := Energy([]job.Job{{ID: 1, Release: 0, Deadline: 2, Work: 4}}, power.MustAlpha(3))
	if err != nil {
		t.Fatal(err)
	}
	// speed 2 for 2 time units at alpha=3: 8*2 = 16.
	if math.Abs(e-16) > 1e-9 {
		t.Errorf("Energy = %v, want 16", e)
	}
}

// Property: YDS schedules are feasible, use at most n distinct speeds, and
// the critical intensities are non-increasing.
func TestYDSProperty(t *testing.T) {
	f := func(seed int64) bool {
		in, err := workload.Uniform(workload.Spec{N: 12, M: 1, Seed: seed})
		if err != nil {
			return false
		}
		res, err := Schedule(in.Jobs)
		if err != nil {
			return false
		}
		if err := res.Schedule.Verify(in); err != nil {
			return false
		}
		if len(res.Schedule.DistinctSpeeds(1e-6)) > in.N() {
			return false
		}
		for i := 1; i < len(res.Intensity); i++ {
			if res.Intensity[i] > res.Intensity[i-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: lowering any single job's work cannot raise the optimal energy
// (monotonicity of the optimum).
func TestYDSMonotoneInWorkProperty(t *testing.T) {
	f := func(seed int64) bool {
		in, err := workload.Tight(workload.Spec{N: 8, M: 1, Seed: seed})
		if err != nil {
			return false
		}
		p := power.MustAlpha(2)
		base, err := Energy(in.Jobs, p)
		if err != nil {
			return false
		}
		reduced := append([]job.Job(nil), in.Jobs...)
		reduced[0].Work /= 2
		lower, err := Energy(reduced, p)
		if err != nil {
			return false
		}
		return lower <= base+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
