// Package yds implements the classic single-processor optimal offline
// speed-scaling algorithm of Yao, Demers and Shenker (FOCS 1995),
// reference [15] of the paper. It repeatedly locates the maximum-intensity
// ("critical") interval, schedules the jobs whose windows it contains at
// the critical speed using EDF, blocks the consumed time, and recurses on
// the rest — the standard iterative formulation of YDS with time
// collapsing realised through an available-time measure.
//
// The multi-processor algorithm in internal/opt must coincide with YDS at
// m = 1; the test suites cross-check the two. YDS also powers the
// non-migratory baselines (assign jobs to processors, run YDS per
// processor) used in experiment E7.
package yds

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"mpss/internal/job"
	"mpss/internal/schedule"
)

// Result is the optimal single-processor schedule with the critical
// intervals discovered along the way (highest intensity first).
type Result struct {
	Schedule  *schedule.Schedule
	Intensity []float64 // critical speeds, non-increasing
}

// Schedule computes the energy-optimal single-processor schedule for the
// jobs. The result is optimal for every convex non-decreasing power
// function with P(0) = 0.
func Schedule(jobs []job.Job) (*Result, error) {
	if len(jobs) == 0 {
		return nil, errors.New("yds: no jobs")
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}

	free := newTimeline(jobs)
	pending := append([]job.Job(nil), jobs...)
	res := &Result{Schedule: schedule.New(1)}

	for len(pending) > 0 {
		t1, t2, speed, critical := criticalInterval(pending, free)
		if len(critical) == 0 {
			return nil, errors.New("yds: no critical interval found (internal error)")
		}
		segs, err := edfPack(critical, free.slice(t1, t2), speed)
		if err != nil {
			return nil, fmt.Errorf("yds: packing critical interval [%g,%g): %w", t1, t2, err)
		}
		for _, s := range segs {
			res.Schedule.Add(s)
		}
		res.Intensity = append(res.Intensity, speed)
		free.block(t1, t2)
		pending = removeJobs(pending, critical)
	}

	res.Schedule.Normalize()
	return res, nil
}

// Energy is a convenience wrapper returning only the optimal energy.
func Energy(jobs []job.Job, p interface{ Energy(s, t float64) float64 }) (float64, error) {
	r, err := Schedule(jobs)
	if err != nil {
		return 0, err
	}
	var e float64
	for _, seg := range r.Schedule.Segments {
		e += p.Energy(seg.Speed, seg.Len())
	}
	return e, nil
}

// criticalInterval scans all (release, deadline) pairs and returns the one
// maximizing contained-work / available-time, together with the contained
// jobs.
func criticalInterval(pending []job.Job, free *timeline) (t1, t2, speed float64, critical []job.Job) {
	starts := make([]float64, 0, len(pending))
	ends := make([]float64, 0, len(pending))
	for _, j := range pending {
		starts = append(starts, j.Release)
		ends = append(ends, j.Deadline)
	}
	sort.Float64s(starts)
	sort.Float64s(ends)
	starts = dedup(starts)
	ends = dedup(ends)

	best := -1.0
	for _, a := range starts {
		for _, b := range ends {
			if b <= a {
				continue
			}
			var w float64
			for _, j := range pending {
				if j.Release >= a && j.Deadline <= b {
					w += j.Work
				}
			}
			if w == 0 {
				continue
			}
			avail := free.available(a, b)
			if avail <= 0 {
				continue
			}
			if g := w / avail; g > best {
				best = g
				t1, t2, speed = a, b, g
			}
		}
	}
	for _, j := range pending {
		if j.Release >= t1 && j.Deadline <= t2 {
			critical = append(critical, j)
		}
	}
	return t1, t2, speed, critical
}

func dedup(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, v := range xs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func removeJobs(pending, done []job.Job) []job.Job {
	drop := make(map[int]bool, len(done))
	for _, j := range done {
		drop[j.ID] = true
	}
	out := pending[:0]
	for _, j := range pending {
		if !drop[j.ID] {
			out = append(out, j)
		}
	}
	return out
}

// span is one maximal free time window.
type span struct{ start, end float64 }

// timeline tracks the not-yet-blocked time of the single processor as a
// sorted list of disjoint free spans.
type timeline struct {
	spans []span
}

func newTimeline(jobs []job.Job) *timeline {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, j := range jobs {
		lo = math.Min(lo, j.Release)
		hi = math.Max(hi, j.Deadline)
	}
	return &timeline{spans: []span{{start: lo, end: hi}}}
}

// available returns the free time inside [a, b).
func (tl *timeline) available(a, b float64) float64 {
	var total float64
	for _, s := range tl.spans {
		lo := math.Max(s.start, a)
		hi := math.Min(s.end, b)
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// slice returns the free sub-spans inside [a, b).
func (tl *timeline) slice(a, b float64) []span {
	var out []span
	for _, s := range tl.spans {
		lo := math.Max(s.start, a)
		hi := math.Min(s.end, b)
		if hi > lo {
			out = append(out, span{start: lo, end: hi})
		}
	}
	return out
}

// block removes [a, b) from the free time.
func (tl *timeline) block(a, b float64) {
	var out []span
	for _, s := range tl.spans {
		if s.end <= a || s.start >= b {
			out = append(out, s)
			continue
		}
		if s.start < a {
			out = append(out, span{start: s.start, end: a})
		}
		if s.end > b {
			out = append(out, span{start: b, end: s.end})
		}
	}
	tl.spans = out
}

// jobHeap orders jobs by deadline (EDF).
type jobHeap []*edfJob

type edfJob struct {
	job.Job
	remaining float64 // remaining processing time at the critical speed
}

func (h jobHeap) Len() int            { return len(h) }
func (h jobHeap) Less(i, j int) bool  { return h[i].Deadline < h[j].Deadline }
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(*edfJob)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// edfPack schedules the critical jobs at constant speed inside the free
// spans using earliest-deadline-first, which YDS theory guarantees
// feasible at the critical speed.
func edfPack(jobs []job.Job, free []span, speed float64) ([]schedule.Segment, error) {
	byRelease := append([]job.Job(nil), jobs...)
	sort.Slice(byRelease, func(a, b int) bool { return byRelease[a].Release < byRelease[b].Release })

	var segs []schedule.Segment
	ready := &jobHeap{}
	next := 0
	const eps = 1e-12

	for si := 0; si < len(free); si++ {
		t := free[si].start
		for t < free[si].end-eps {
			for next < len(byRelease) && byRelease[next].Release <= t+eps {
				heap.Push(ready, &edfJob{Job: byRelease[next], remaining: byRelease[next].Work / speed})
				next++
			}
			if ready.Len() == 0 {
				if next >= len(byRelease) {
					break
				}
				// Idle until the next release, possibly past this span.
				t = math.Max(t, byRelease[next].Release)
				continue
			}
			top := (*ready)[0]
			runEnd := free[si].end
			if next < len(byRelease) && byRelease[next].Release < runEnd {
				runEnd = math.Max(byRelease[next].Release, t)
			}
			run := math.Min(top.remaining, runEnd-t)
			if run <= eps {
				// A release coincides with t; loop to admit it.
				if runEnd <= t+eps && next < len(byRelease) {
					continue
				}
				heap.Pop(ready)
				continue
			}
			segs = append(segs, schedule.Segment{
				Proc: 0, Start: t, End: t + run, JobID: top.ID, Speed: speed,
			})
			top.remaining -= run
			t += run
			if top.remaining <= eps {
				heap.Pop(ready)
			}
		}
	}
	// Everything must be finished: the critical speed exactly fills the
	// available time.
	for _, e := range *ready {
		if e.remaining > 1e-6 {
			return nil, fmt.Errorf("job %d has %g time left after EDF pack", e.ID, e.remaining)
		}
	}
	if next < len(byRelease) {
		return nil, fmt.Errorf("job %d never admitted by EDF pack", byRelease[next].ID)
	}
	return segs, nil
}
