// Package bg implements a Bingham–Greenstreet-style linear-programming
// baseline for optimal multi-processor speed scaling with migration
// (reference [6] of the paper). The paper's combinatorial algorithm was
// motivated by the observation that this LP approach, while correct, is
// "too high [in complexity] for most practical applications"; experiment
// E2 measures exactly that gap.
//
// Formulation. Fix a speed grid 0 < sigma_1 < ... < sigma_K. For every
// job k, event interval I_j in which it is active, and level l, variable
// y_{kjl} >= 0 is the time job k runs at speed sigma_l inside I_j:
//
//	sum_{j,l} sigma_l y_{kjl}  = w_k          (job k completes)
//	sum_l     y_{kjl}         <= |I_j|        (job k fits in I_j; McNaughton)
//	sum_{k,l} y_{kjl}         <= m |I_j|      (processor capacity in I_j)
//	minimize  sum P(sigma_l) y_{kjl}
//
// Any feasible y is schedulable by the wrap-around rule, so for a
// piecewise-linear power function with breakpoints on the grid the LP
// value equals the true optimum; for smooth convex P it upper-bounds the
// optimum and converges as the grid refines (chords of a convex function
// lie above it).
package bg

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mpss/internal/job"
	"mpss/internal/lp"
	"mpss/internal/power"
	"mpss/internal/schedule"
	"mpss/internal/yds"
)

// Options configures the baseline.
type Options struct {
	// SpeedLevels is the grid size K (default 16).
	SpeedLevels int
	// MaxSpeed is the top of the speed grid. Zero selects the maximum
	// critical intensity of the single-processor YDS schedule, which upper
	// bounds every speed an m-processor optimum uses.
	MaxSpeed float64
}

// Result is the LP baseline outcome.
type Result struct {
	Energy   float64
	Schedule *schedule.Schedule
	Grid     []float64 // the speed levels used
	Vars     int
	Rows     int
	Pivots   int
}

// Solve runs the LP baseline on the instance under power function p.
func Solve(in *job.Instance, p power.Function, o Options) (*Result, error) {
	k := o.SpeedLevels
	if k == 0 {
		k = 16
	}
	if k < 1 {
		return nil, fmt.Errorf("bg: SpeedLevels = %d < 1", k)
	}
	smax := o.MaxSpeed
	if smax == 0 {
		r, err := yds.Schedule(in.Jobs)
		if err != nil {
			return nil, fmt.Errorf("bg: bounding speed grid: %w", err)
		}
		smax = r.Intensity[0]
	}
	if smax <= 0 {
		return nil, errors.New("bg: non-positive MaxSpeed")
	}

	ivs := job.Partition(in.Jobs)
	grid := make([]float64, k)
	for l := range grid {
		grid[l] = smax * float64(l+1) / float64(k)
	}

	// Variable layout: for each (job, active interval) pair, K consecutive
	// levels.
	var pairs []pair
	for ji := range in.Jobs {
		for vi, iv := range ivs {
			if in.Jobs[ji].ActiveIn(iv.Start, iv.End) {
				pairs = append(pairs, pair{ji, vi})
			}
		}
	}
	nv := len(pairs) * k
	if nv == 0 {
		return nil, errors.New("bg: no schedulable (job, interval) pairs")
	}

	prob := &lp.Problem{Obj: make([]float64, nv)}
	for pi, pr := range pairs {
		_ = pr
		for l := 0; l < k; l++ {
			prob.Obj[pi*k+l] = p.Power(grid[l])
		}
	}

	// Job completion (equalities).
	for ji, j := range in.Jobs {
		row := make([]float64, nv)
		for pi, pr := range pairs {
			if pr.jobIdx != ji {
				continue
			}
			for l := 0; l < k; l++ {
				row[pi*k+l] = grid[l]
			}
		}
		if err := prob.AddRow(row, lp.EQ, j.Work); err != nil {
			return nil, err
		}
	}
	// Per job-per interval time bound.
	for pi, pr := range pairs {
		row := make([]float64, nv)
		for l := 0; l < k; l++ {
			row[pi*k+l] = 1
		}
		if err := prob.AddRow(row, lp.LE, ivs[pr.ivIdx].Len()); err != nil {
			return nil, err
		}
	}
	// Interval capacity.
	for vi, iv := range ivs {
		row := make([]float64, nv)
		any := false
		for pi, pr := range pairs {
			if pr.ivIdx != vi {
				continue
			}
			any = true
			for l := 0; l < k; l++ {
				row[pi*k+l] = 1
			}
		}
		if !any {
			continue
		}
		if err := prob.AddRow(row, lp.LE, float64(in.M)*iv.Len()); err != nil {
			return nil, err
		}
	}

	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Infeasible:
		return nil, fmt.Errorf("bg: LP infeasible — raise MaxSpeed (%g) or SpeedLevels", smax)
	case lp.Unbounded:
		return nil, errors.New("bg: LP unbounded (internal error)")
	}

	sched, err := buildSchedule(in, ivs, pairs, grid, sol.X, k)
	if err != nil {
		return nil, err
	}
	return &Result{
		Energy:   sol.Value,
		Schedule: sched,
		Grid:     grid,
		Vars:     nv,
		Rows:     len(prob.Rows),
		Pivots:   sol.Pivots,
	}, nil
}

// pair indexes one (job, active interval) block of K variables.
type pair struct{ jobIdx, ivIdx int }

func buildSchedule(in *job.Instance, ivs []job.Interval, pairs []pair, grid, x []float64, k int) (*schedule.Schedule, error) {
	sched := schedule.New(in.M)
	procs := make([]int, in.M)
	for i := range procs {
		procs[i] = i
	}
	const tiny = 1e-9
	for vi, iv := range ivs {
		var pieces []schedule.Piece
		for pi, pr := range pairs {
			if pr.ivIdx != vi {
				continue
			}
			for l := 0; l < k; l++ {
				dur := x[pi*k+l]
				if dur > tiny {
					pieces = append(pieces, schedule.Piece{
						JobID:    in.Jobs[pr.jobIdx].ID,
						Duration: math.Min(dur, iv.Len()),
						Speed:    grid[l],
					})
				}
			}
		}
		if len(pieces) == 0 {
			continue
		}
		// Keep same-job pieces adjacent so the wrap-around rule sees each
		// job as one contiguous chunk of length <= |I_j|.
		sort.Slice(pieces, func(a, b int) bool {
			if pieces[a].JobID != pieces[b].JobID {
				return pieces[a].JobID < pieces[b].JobID
			}
			return pieces[a].Speed < pieces[b].Speed
		})
		segs, err := schedule.WrapAround(iv.Start, iv.End, procs, pieces)
		if err != nil {
			return nil, fmt.Errorf("bg: packing %v: %w", iv, err)
		}
		for _, s := range segs {
			sched.Add(s)
		}
	}
	sched.Normalize()
	return sched, nil
}
