package bg

import (
	"math"
	"testing"

	"mpss/internal/job"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
)

func TestSingleJob(t *testing.T) {
	in, _ := job.NewInstance(1, []job.Job{{ID: 1, Release: 0, Deadline: 4, Work: 8}})
	p := power.MustAlpha(2)
	res, err := Solve(in, p, Options{SpeedLevels: 8, MaxSpeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Density 2 is on the grid (grid step 0.5): LP should hit exactly
	// 2^2 * 4 = 16.
	if math.Abs(res.Energy-16) > 1e-6 {
		t.Errorf("energy = %v, want 16", res.Energy)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Errorf("LP schedule infeasible: %v", err)
	}
}

func TestAutoMaxSpeed(t *testing.T) {
	in, _ := job.NewInstance(2, []job.Job{
		{ID: 1, Release: 0, Deadline: 2, Work: 4},
		{ID: 2, Release: 0, Deadline: 4, Work: 2},
	})
	res, err := Solve(in, power.MustAlpha(2), Options{SpeedLevels: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grid[len(res.Grid)-1] <= 0 {
		t.Error("auto grid not positive")
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Errorf("schedule infeasible: %v", err)
	}
}

// The LP value under a piecewise-linear power function with breakpoints on
// the grid must equal the energy of the combinatorial optimum under the
// same function: the combinatorial schedule is optimal for every convex
// power function simultaneously, and the LP is exact for this class.
func TestMatchesCombinatorialOnPiecewiseLinear(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in, err := workload.Uniform(workload.Spec{N: 6, M: 2, Seed: seed, Horizon: 20})
		if err != nil {
			t.Fatal(err)
		}
		optRes, err := opt.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		// Grid comfortably above every speed the optimum uses.
		maxSpeed := 0.0
		for _, ph := range optRes.Phases {
			maxSpeed = math.Max(maxSpeed, ph.Speed)
		}
		k := 24
		top := maxSpeed * 1.5
		pl, err := power.SampleAlpha(2, top, k)
		if err != nil {
			t.Fatal(err)
		}
		lpRes, err := Solve(in, pl, Options{SpeedLevels: k, MaxSpeed: top})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := optRes.Schedule.Energy(pl)
		if math.Abs(lpRes.Energy-want) > 1e-4*(1+want) {
			t.Errorf("seed %d: LP=%v, combinatorial=%v under PL power", seed, lpRes.Energy, want)
		}
		if err := lpRes.Schedule.Verify(in); err != nil {
			t.Errorf("seed %d: LP schedule infeasible: %v", seed, err)
		}
	}
}

// Under P(s)=s^alpha the LP upper-bounds the optimum and tightens as the
// grid refines.
func TestUpperBoundsAndConverges(t *testing.T) {
	in, err := workload.Bursty(workload.Spec{N: 6, M: 2, Seed: 3, Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	p := power.MustAlpha(2)
	optRes, err := opt.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	exact := optRes.Schedule.Energy(p)
	prev := math.Inf(1)
	for _, k := range []int{4, 8, 16, 32} {
		res, err := Solve(in, p, Options{SpeedLevels: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Energy < exact-1e-6*(1+exact) {
			t.Errorf("k=%d: LP %v below exact optimum %v", k, res.Energy, exact)
		}
		if res.Energy > prev*(1+1e-6)+1e-9 {
			t.Errorf("k=%d: LP %v above coarser value %v (not converging)", k, res.Energy, prev)
		}
		prev = res.Energy
	}
	if (prev-exact)/exact > 0.02 {
		t.Errorf("k=32 LP still %.2f%% above optimum", 100*(prev-exact)/exact)
	}
}

func TestOptionValidation(t *testing.T) {
	in, _ := job.NewInstance(1, []job.Job{{ID: 1, Release: 0, Deadline: 1, Work: 1}})
	if _, err := Solve(in, power.MustAlpha(2), Options{SpeedLevels: -2}); err == nil {
		t.Error("negative SpeedLevels accepted")
	}
	if _, err := Solve(in, power.MustAlpha(2), Options{MaxSpeed: -1}); err == nil {
		t.Error("negative MaxSpeed accepted")
	}
	// Too low a speed cap makes the LP infeasible; must be reported.
	if _, err := Solve(in, power.MustAlpha(2), Options{SpeedLevels: 4, MaxSpeed: 0.1}); err == nil {
		t.Error("infeasible grid accepted")
	}
}
