package online

import (
	"math"
	"sort"
	"testing"

	"mpss/internal/job"
	"mpss/internal/power"
	"mpss/internal/workload"
)

func TestPlannerValidation(t *testing.T) {
	if _, err := NewPlanner(0); err == nil {
		t.Error("m=0 accepted")
	}
	p, err := NewPlanner(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Arrive(1); err == nil {
		t.Error("empty arrival accepted")
	}
	if err := p.Arrive(1, job.Job{ID: 1, Release: 5, Deadline: 9, Work: 1}); err == nil {
		t.Error("mismatched release accepted")
	}
	if err := p.Arrive(1, job.Job{ID: 1, Deadline: 3, Work: 1}); err != nil {
		t.Fatalf("zero-release fill-in failed: %v", err)
	}
	if err := p.Arrive(1.5, job.Job{ID: 1, Deadline: 5, Work: 1}); err == nil {
		t.Error("duplicate live ID accepted")
	}
	if err := p.Arrive(0.5, job.Job{ID: 2, Deadline: 5, Work: 1}); err == nil {
		t.Error("time travel accepted")
	}
}

// Feeding an instance's jobs in release order must reproduce the batch
// OA(m) run exactly.
func TestPlannerMatchesBatchOA(t *testing.T) {
	p2 := power.MustAlpha(2)
	for seed := int64(0); seed < 6; seed++ {
		in, err := workload.Uniform(workload.Spec{N: 10, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		batch, err := OA(in)
		if err != nil {
			t.Fatal(err)
		}

		pl, err := NewPlanner(in.M)
		if err != nil {
			t.Fatal(err)
		}
		// Group jobs by release time, ascending.
		byRelease := map[float64][]job.Job{}
		var times []float64
		for _, j := range in.Jobs {
			if _, ok := byRelease[j.Release]; !ok {
				times = append(times, j.Release)
			}
			byRelease[j.Release] = append(byRelease[j.Release], j)
		}
		sort.Float64s(times)
		for _, tm := range times {
			if err := pl.Arrive(tm, byRelease[tm]...); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		_, horizon := in.Horizon()
		if err := pl.FinishHorizon(horizon); err != nil {
			t.Fatal(err)
		}

		got := pl.Executed()
		if err := got.Verify(in); err != nil {
			t.Fatalf("seed %d: planner schedule infeasible: %v", seed, err)
		}
		a, b := batch.Schedule.Energy(p2), got.Energy(p2)
		if math.Abs(a-b) > 1e-6*(1+a) {
			t.Errorf("seed %d: batch OA energy %v, planner energy %v", seed, a, b)
		}
		if pl.Replans() != batch.Replans {
			t.Errorf("seed %d: replans %d vs %d", seed, pl.Replans(), batch.Replans)
		}
	}
}

func TestPlannerStateQueries(t *testing.T) {
	pl, err := NewPlanner(1)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Current() != nil {
		t.Error("plan before first arrival")
	}
	if err := pl.Arrive(0, job.Job{ID: 1, Deadline: 4, Work: 8}); err != nil {
		t.Fatal(err)
	}
	if pl.Current() == nil || pl.Now() != 0 || pl.Replans() != 1 {
		t.Errorf("state after arrival: now=%v replans=%d", pl.Now(), pl.Replans())
	}
	rem := pl.Remaining()
	if math.Abs(rem[1]-8) > 1e-12 {
		t.Errorf("remaining = %v", rem)
	}
	// Half-way through, half the work is left (speed 2 over [0,4)).
	if err := pl.FinishHorizon(2); err != nil {
		t.Fatal(err)
	}
	rem = pl.Remaining()
	if math.Abs(rem[1]-4) > 1e-6 {
		t.Errorf("remaining after half = %v", rem)
	}
	if err := pl.FinishHorizon(4); err != nil {
		t.Fatal(err)
	}
	if len(pl.Remaining()) != 0 {
		t.Errorf("jobs left at horizon: %v", pl.Remaining())
	}
}

func TestPlannerLateJobDetected(t *testing.T) {
	pl, err := NewPlanner(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Arrive(0, job.Job{ID: 1, Deadline: 1, Work: 1}); err != nil {
		t.Fatal(err)
	}
	// Jump past the deadline without executing enough, then push another
	// job: the stale live job is impossible and must be reported.
	pl.plan = nil // simulate an execution blackout
	if err := pl.Arrive(2, job.Job{ID: 2, Deadline: 5, Work: 1}); err == nil {
		t.Error("missed deadline not detected")
	}
}

func TestPlannerCanAdmit(t *testing.T) {
	pl, err := NewPlanner(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Arrive(0, job.Job{ID: 1, Deadline: 4, Work: 4}); err != nil {
		t.Fatal(err)
	}
	// Current load needs speed 1. A new job of 4 work due at 4 doubles
	// the requirement: admissible at cap 2, not at cap 1.5.
	cand := job.Job{ID: 2, Deadline: 4, Work: 4}
	ok, err := pl.CanAdmit(2, cand)
	if err != nil || !ok {
		t.Errorf("CanAdmit(2) = %v, %v; want true", ok, err)
	}
	ok, err = pl.CanAdmit(1.5, cand)
	if err != nil || ok {
		t.Errorf("CanAdmit(1.5) = %v, %v; want false", ok, err)
	}
	// Admission must not mutate state.
	if len(pl.Remaining()) != 1 {
		t.Error("CanAdmit mutated the live set")
	}
	if _, err := pl.CanAdmit(2, job.Job{ID: 1, Deadline: 9, Work: 1}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := pl.CanAdmit(2, job.Job{ID: 3, Deadline: -1, Work: 1}); err == nil {
		t.Error("invalid candidate accepted")
	}
}
