// Package online implements the paper's two online multi-processor
// speed-scaling algorithms and the non-migratory baselines they are
// compared against:
//
//   - OA(m), "Optimal Available" (Section 3.1): at every job arrival,
//     recompute an optimal schedule for the remaining work of all released
//     unfinished jobs using the offline algorithm of internal/opt, and
//     follow it until the next arrival. Theorem 2 proves OA(m) is exactly
//     alpha^alpha-competitive.
//   - AVR(m), "Average Rate" (Section 3.2): in every event interval,
//     repeatedly peel off jobs whose density exceeds the average density
//     per remaining processor onto dedicated processors, then schedule the
//     rest at the uniform average speed by wrap-around. Theorem 3 proves a
//     competitive ratio of (2 alpha)^alpha / 2 + 1.
//   - Non-migratory baselines (after reference [8]): assign each job to a
//     processor (randomly, round-robin, or least-loaded) and run the
//     single-processor YDS optimum per processor.
//
// The paper states AVR(m) for integer release times and deadlines with
// unit intervals; this implementation works on the event-interval
// partition instead, which is equivalent (densities are constant between
// events, and the wrap-around feasibility argument carries over verbatim
// because every pooled job's share delta_i/s <= 1 of the interval).
package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mpss/internal/job"
	"mpss/internal/mpsserr"
	"mpss/internal/obs"
	"mpss/internal/opt"
	"mpss/internal/schedule"
	"mpss/internal/yds"
)

// Option configures the online simulators.
type Option func(*config)

type config struct {
	rec    *obs.Recorder
	ctx    context.Context
	solver *opt.Solver
}

// WithRecorder attaches an observability recorder: OA(m) and AVR(m)
// record per-event spans (arrivals, live jobs, replanning phase
// structure) and whole-run counters (arrivals processed, speed
// recomputations, preemptions, migrations) into it. A nil recorder is
// the no-op default.
func WithRecorder(r *obs.Recorder) Option {
	return func(c *config) { c.rec = r }
}

// WithContext makes the simulation cancelable: OA polls ctx at every
// arrival event (each event is one offline replan, the expensive
// quantum, and the replan itself inherits ctx), AVR at every event
// interval. A canceled context surfaces as an error wrapping
// mpsserr.ErrCanceled. Nil disables the checks (the default).
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// WithSolver lends OA(m) a caller-owned solver arena for its replans
// instead of a run-local one, so a long-lived session (e.g. one server
// worker) reuses its flow-network allocations across simulations. The
// solver must not be used concurrently elsewhere.
func WithSolver(s *opt.Solver) Option {
	return func(c *config) { c.solver = s }
}

// canceledAt converts a non-nil ctx error into the typed error.
func canceledAt(ctx context.Context, alg string, t float64) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("online: %s canceled at t=%g: %v: %w", alg, t, err, mpsserr.ErrCanceled)
	}
	return nil
}

func buildConfig(opts []Option) config {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// publishRunMetrics folds the executed schedule's descriptive metrics
// into the run span and the recorder's prefixed counters. It normalizes
// the schedule (ComputeMetrics does) — callers already normalize anyway.
func publishRunMetrics(rec *obs.Recorder, run *obs.Span, prefix string, s *schedule.Schedule) {
	if !rec.Enabled() {
		return
	}
	m := s.ComputeMetrics()
	rec.Add(prefix+".migrations", int64(m.Migrations))
	rec.Add(prefix+".preemptions", int64(m.Preemptions))
	rec.Add(prefix+".segments", int64(m.Segments))
	run.Add("migrations", int64(m.Migrations))
	run.Add("preemptions", int64(m.Preemptions))
	run.SetValue("max_speed", m.MaxSpeed)
	run.SetValue("utilization", m.Utilization)
}

// OAEvent records one replanning step of OA(m): the arrival time, the jobs
// that were live, and the plan the algorithm will follow from here.
type OAEvent struct {
	Time      float64
	Plan      *schedule.Schedule // optimal plan for the remaining work
	JobSpeeds map[int]float64    // constant speed per live job in Plan
	Remaining map[int]float64    // remaining volume per live job at Time
}

// OAResult is the executed OA(m) schedule plus the replanning trace used
// by the Lemma 7/8 monotonicity experiments.
type OAResult struct {
	Schedule *schedule.Schedule
	Events   []OAEvent
	Replans  int
}

// OA runs Optimal Available on m parallel processors.
func OA(in *job.Instance, opts ...Option) (*OAResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	rec := cfg.rec
	run := rec.StartSpan("OA")
	// Event times: distinct release times, ascending.
	releases := make([]float64, 0, in.N())
	for _, j := range in.Jobs {
		releases = append(releases, j.Release)
	}
	sort.Float64s(releases)
	events := releases[:1]
	for _, t := range releases[1:] {
		if t != events[len(events)-1] {
			events = append(events, t)
		}
	}

	remaining := make(map[int]float64, in.N())
	for _, j := range in.Jobs {
		remaining[j.ID] = j.Work
	}

	res := &OAResult{Schedule: schedule.New(in.M)}
	_, horizon := in.Horizon()

	// One solver arena for the whole arrival sequence: each replan reuses
	// the previous event's flow-network allocations. A session caller may
	// lend its own (WithSolver) to keep the arena warm across runs.
	solver := cfg.solver
	if solver == nil {
		solver = opt.NewSolver()
	}

	for ei, t0 := range events {
		if cerr := canceledAt(cfg.ctx, "OA", t0); cerr != nil {
			rec.Add("oa.canceled", 1)
			return nil, cerr
		}
		// Live jobs: released, unfinished, deadline not passed.
		var live []job.Job
		for _, j := range in.Jobs {
			rem := remaining[j.ID]
			if j.Release <= t0 && rem > 1e-9*(1+j.Work) && j.Deadline > t0 {
				live = append(live, job.Job{
					ID:       j.ID,
					Release:  t0,
					Deadline: j.Deadline,
					Work:     rem,
				})
			}
		}
		if len(live) == 0 {
			continue
		}
		ev := run.StartSpan(fmt.Sprintf("arrival t=%g", t0))
		ev.Add("live_jobs", int64(len(live)))
		rec.Add("oa.arrivals", 1)
		sub, err := job.NewInstance(in.M, live)
		if err != nil {
			return nil, fmt.Errorf("online: OA replan at %g: %w", t0, err)
		}
		plan, err := solver.Schedule(sub, opt.WithRecorder(rec), opt.UnderSpan(ev), opt.WithContext(cfg.ctx))
		if err != nil {
			return nil, fmt.Errorf("online: OA replan at %g: %w", t0, err)
		}
		res.Replans++
		rec.Add("oa.replans", 1)
		rec.Add("oa.speed_recomputations", 1)

		speeds := make(map[int]float64, len(live))
		for _, ph := range plan.Phases {
			for _, id := range ph.JobIDs {
				speeds[id] = ph.Speed
			}
		}
		rem := make(map[int]float64, len(live))
		for _, j := range live {
			rem[j.ID] = j.Work
		}
		res.Events = append(res.Events, OAEvent{
			Time:      t0,
			Plan:      plan.Schedule,
			JobSpeeds: speeds,
			Remaining: rem,
		})

		// Execute the plan until the next arrival (or to the end).
		until := horizon
		if ei+1 < len(events) {
			until = events[ei+1]
		}
		executed := plan.Schedule.Clip(t0, until)
		for _, seg := range executed.Segments {
			res.Schedule.Add(seg)
		}
		for id := range remaining {
			if done := executed.CompletedWork(id, t0, until); done > 0 {
				remaining[id] = math.Max(0, remaining[id]-done)
			}
		}
		if rec.Enabled() {
			// Highest planned speed at this event: the first phase of the
			// replanned optimum carries the critical speed.
			var maxSpeed float64
			for _, s := range speeds {
				maxSpeed = math.Max(maxSpeed, s)
			}
			ev.SetValue("max_speed", maxSpeed)
			ev.Add("executed_segments", int64(len(executed.Segments)))
		}
		ev.End()
	}

	res.Schedule.Normalize()
	run.Add("arrivals", int64(len(res.Events)))
	publishRunMetrics(rec, run, "oa", res.Schedule)
	run.End()
	return res, nil
}

// AVRLevel records the density split AVR(m) chose in one event interval:
// which jobs got a dedicated processor and the uniform speed of the pool.
type AVRLevel struct {
	Interval  job.Interval
	Dedicated []int   // job IDs peeled onto their own processor
	PoolSpeed float64 // uniform speed of the remaining jobs (0 if none)
}

// AVRResult is the AVR(m) schedule plus its per-interval level structure.
type AVRResult struct {
	Schedule *schedule.Schedule
	Levels   []AVRLevel
}

// AVR runs Average Rate on m parallel processors.
func AVR(in *job.Instance, opts ...Option) (*AVRResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	rec := cfg.rec
	run := rec.StartSpan("AVR")
	ivs := job.Partition(in.Jobs)
	res := &AVRResult{Schedule: schedule.New(in.M)}

	for _, iv := range ivs {
		if cerr := canceledAt(cfg.ctx, "AVR", iv.Start); cerr != nil {
			rec.Add("avr.canceled", 1)
			return nil, cerr
		}
		var active []job.Job
		for _, j := range in.Jobs {
			if j.ActiveIn(iv.Start, iv.End) {
				active = append(active, j)
			}
		}
		if len(active) == 0 {
			continue
		}
		ev := run.StartSpan(fmt.Sprintf("interval [%g,%g)", iv.Start, iv.End))
		ev.Add("active_jobs", int64(len(active)))
		rec.Add("avr.intervals", 1)
		rec.Add("avr.speed_recomputations", 1)
		// Highest density first so the peel loop is a prefix scan.
		sort.Slice(active, func(a, b int) bool {
			da, db := active[a].Density(), active[b].Density()
			if da != db {
				return da > db
			}
			return active[a].ID < active[b].ID
		})
		var totalDensity float64
		for _, j := range active {
			totalDensity += j.Density()
		}

		level := AVRLevel{Interval: iv}
		m := in.M
		rest := totalDensity
		idx := 0
		proc := 0
		for idx < len(active) && m > 0 && active[idx].Density() > rest/float64(m)+1e-15 {
			d := active[idx].Density()
			res.Schedule.Add(schedule.Segment{
				Proc:  proc,
				Start: iv.Start,
				End:   iv.End,
				JobID: active[idx].ID,
				Speed: d,
			})
			level.Dedicated = append(level.Dedicated, active[idx].ID)
			rest -= d
			m--
			proc++
			idx++
		}
		if idx < len(active) {
			if m == 0 {
				return nil, fmt.Errorf("online: AVR ran out of processors in %v (overload: %d active on %d processors): %w", iv, len(active), in.M, mpsserr.ErrInfeasible)
			}
			sPool := rest / float64(m)
			level.PoolSpeed = sPool
			pieces := make([]schedule.Piece, 0, len(active)-idx)
			for _, j := range active[idx:] {
				pieces = append(pieces, schedule.Piece{
					JobID:    j.ID,
					Duration: j.Density() / sPool * iv.Len(),
					Speed:    sPool,
				})
			}
			procs := make([]int, m)
			for i := range procs {
				procs[i] = proc + i
			}
			segs, err := schedule.WrapAround(iv.Start, iv.End, procs, pieces)
			if err != nil {
				// Mathematically every pooled piece fits its interval
				// (density <= pool speed), so a packing failure means the
				// float arithmetic overflowed or lost the margin.
				return nil, fmt.Errorf("online: AVR packing %v: %v: %w", iv, err, mpsserr.ErrNumeric)
			}
			for _, s := range segs {
				res.Schedule.Add(s)
			}
		}
		rec.Add("avr.dedicated_jobs", int64(len(level.Dedicated)))
		ev.Add("dedicated_jobs", int64(len(level.Dedicated)))
		ev.Add("pool_jobs", int64(len(active)-len(level.Dedicated)))
		ev.SetValue("pool_speed", level.PoolSpeed)
		ev.End()
		res.Levels = append(res.Levels, level)
	}

	res.Schedule.Normalize()
	run.Add("intervals", int64(len(res.Levels)))
	publishRunMetrics(rec, run, "avr", res.Schedule)
	run.End()
	return res, nil
}

// Assignment maps each job (by index into the instance) to a processor.
type Assignment func(in *job.Instance) []int

// RandomAssignment assigns jobs uniformly at random — the randomized
// strategy of reference [8], whose expected approximation factor is the
// alpha-th Bell number.
func RandomAssignment(seed int64) Assignment {
	return func(in *job.Instance) []int {
		rng := rand.New(rand.NewSource(seed))
		out := make([]int, in.N())
		for i := range out {
			out[i] = rng.Intn(in.M)
		}
		return out
	}
}

// RoundRobinAssignment deals jobs to processors in release order.
func RoundRobinAssignment() Assignment {
	return func(in *job.Instance) []int {
		order := make([]int, in.N())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ja, jb := in.Jobs[order[a]], in.Jobs[order[b]]
			if ja.Release != jb.Release {
				return ja.Release < jb.Release
			}
			return ja.ID < jb.ID
		})
		out := make([]int, in.N())
		for pos, idx := range order {
			out[idx] = pos % in.M
		}
		return out
	}
}

// LeastWorkAssignment greedily sends each job (in release order) to the
// processor with the least total volume assigned so far.
func LeastWorkAssignment() Assignment {
	return func(in *job.Instance) []int {
		order := make([]int, in.N())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ja, jb := in.Jobs[order[a]], in.Jobs[order[b]]
			if ja.Release != jb.Release {
				return ja.Release < jb.Release
			}
			return ja.ID < jb.ID
		})
		load := make([]float64, in.M)
		out := make([]int, in.N())
		for _, idx := range order {
			best := 0
			for p := 1; p < in.M; p++ {
				if load[p] < load[best] {
					best = p
				}
			}
			out[idx] = best
			load[best] += in.Jobs[idx].Work
		}
		return out
	}
}

// NonMigratory assigns jobs to processors with the given policy and runs
// the single-processor YDS optimum on each processor — the strongest
// schedule achievable for that fixed assignment.
func NonMigratory(in *job.Instance, assign Assignment) (*schedule.Schedule, error) {
	if assign == nil {
		return nil, errors.New("online: nil assignment")
	}
	procOf := assign(in)
	if len(procOf) != in.N() {
		return nil, fmt.Errorf("online: assignment returned %d entries for %d jobs", len(procOf), in.N())
	}
	byProc := make([][]job.Job, in.M)
	for i, p := range procOf {
		if p < 0 || p >= in.M {
			return nil, fmt.Errorf("online: job %d assigned to processor %d outside [0,%d)", in.Jobs[i].ID, p, in.M)
		}
		byProc[p] = append(byProc[p], in.Jobs[i])
	}
	out := schedule.New(in.M)
	for p, jobs := range byProc {
		if len(jobs) == 0 {
			continue
		}
		r, err := yds.Schedule(jobs)
		if err != nil {
			return nil, fmt.Errorf("online: YDS on processor %d: %w", p, err)
		}
		for _, seg := range r.Schedule.Segments {
			seg.Proc = p
			out.Add(seg)
		}
	}
	out.Normalize()
	return out, nil
}
