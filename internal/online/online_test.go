package online

import (
	"math"
	"testing"
	"testing/quick"

	"mpss/internal/job"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
)

func mustInstance(t *testing.T, m int, jobs []job.Job) *job.Instance {
	t.Helper()
	in, err := job.NewInstance(m, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func optimalEnergy(t *testing.T, in *job.Instance, p power.Function) float64 {
	t.Helper()
	res, err := opt.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	return res.Schedule.Energy(p)
}

func TestOASingleProcWorkedExample(t *testing.T) {
	// Classic OA trace: J1 alone runs at speed 1; when J2 arrives at t=2
	// the remaining 2+2 units must fit into [2,4), so speed jumps to 2.
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 4},
		{ID: 2, Release: 2, Deadline: 4, Work: 2},
	}
	in := mustInstance(t, 1, jobs)
	res, err := OA(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	p := power.MustAlpha(2)
	if got := res.Schedule.Energy(p); math.Abs(got-10) > 1e-6 {
		t.Errorf("OA energy = %v, want 10", got)
	}
	if res.Replans != 2 {
		t.Errorf("Replans = %d, want 2", res.Replans)
	}
	// Offline optimum runs at 1.5 throughout: energy 9.
	if opt := optimalEnergy(t, in, p); math.Abs(opt-9) > 1e-6 {
		t.Errorf("offline optimum = %v, want 9", opt)
	}
}

func TestOAFeasibleAcrossWorkloads(t *testing.T) {
	for _, g := range workload.All() {
		for seed := int64(0); seed < 3; seed++ {
			in, err := g.Make(workload.Spec{N: 10, M: 3, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			res, err := OA(in)
			if err != nil {
				t.Fatalf("%s/%d: %v", g.Name, seed, err)
			}
			if err := res.Schedule.Verify(in); err != nil {
				t.Errorf("%s/%d: OA schedule infeasible: %v", g.Name, seed, err)
			}
		}
	}
}

func TestOACompetitiveBound(t *testing.T) {
	for _, alpha := range []float64{1.5, 2, 3} {
		p := power.MustAlpha(alpha)
		bound := p.OABound()
		for seed := int64(0); seed < 5; seed++ {
			in, err := workload.Bursty(workload.Spec{N: 12, M: 2, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			res, err := OA(in)
			if err != nil {
				t.Fatal(err)
			}
			ratio := res.Schedule.Energy(p) / optimalEnergy(t, in, p)
			if ratio > bound+1e-6 {
				t.Errorf("alpha=%v seed=%d: OA ratio %v exceeds bound %v", alpha, seed, ratio, bound)
			}
			if ratio < 1-1e-6 {
				t.Errorf("alpha=%v seed=%d: OA ratio %v below 1 (optimum wrong?)", alpha, seed, ratio)
			}
		}
	}
}

// Lemma 7: when a new job arrives, the speed of every still-live job in
// the new plan is at least its speed in the previous plan.
// Lemma 8: the minimum processor speed at any future time never drops.
func TestOAMonotonicityLemmas(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in, err := workload.Uniform(workload.Spec{N: 12, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := OA(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Events); i++ {
			prev, cur := res.Events[i-1], res.Events[i]
			// Lemma 7 (job speeds only rise).
			for id, sPrev := range prev.JobSpeeds {
				sCur, live := cur.JobSpeeds[id]
				if !live {
					continue // finished in the meantime
				}
				if sCur < sPrev-1e-6*(1+sPrev) {
					t.Errorf("seed=%d event=%d: job %d speed dropped %v -> %v",
						seed, i, id, sPrev, sCur)
				}
			}
			// Lemma 8 (min processor speed only rises), sampled at a few
			// points of the common horizon.
			_, hPrev := prev.Plan.Span()
			_, hCur := cur.Plan.Span()
			end := math.Min(hPrev, hCur)
			for f := 0.05; f < 1; f += 0.3 {
				tt := cur.Time + (end-cur.Time)*f
				if tt <= cur.Time {
					continue
				}
				mPrev := prev.Plan.MinSpeedAt(tt)
				mCur := cur.Plan.MinSpeedAt(tt)
				if mCur < mPrev-1e-6*(1+mPrev) {
					t.Errorf("seed=%d event=%d t=%v: min speed dropped %v -> %v",
						seed, i, tt, mPrev, mCur)
				}
			}
		}
	}
}

func TestAVRSingleProcIsClassicAVR(t *testing.T) {
	// On one processor AVR(m) degenerates to the classic Average Rate:
	// speed = total active density in every interval.
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 4}, // density 1
		{ID: 2, Release: 2, Deadline: 6, Work: 8}, // density 2
	}
	in := mustInstance(t, 1, jobs)
	res, err := AVR(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	// Energy: [0,2) at 1, [2,4) at 3, [4,6) at 2 with alpha=2:
	// 1*2 + 9*2 + 4*2 = 28.
	p := power.MustAlpha(2)
	if got := res.Schedule.Energy(p); math.Abs(got-28) > 1e-6 {
		t.Errorf("AVR energy = %v, want 28", got)
	}
}

func TestAVRPeelsHighDensityJobs(t *testing.T) {
	// One job of density 10 and three of density 1 on three processors:
	// the dense job gets a dedicated processor (10 > 13/3); the remaining
	// three jobs pool on the two other processors at speed 3/2.
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 2, Work: 20},
		{ID: 2, Release: 0, Deadline: 2, Work: 2},
		{ID: 3, Release: 0, Deadline: 2, Work: 2},
		{ID: 4, Release: 0, Deadline: 2, Work: 2},
	}
	in := mustInstance(t, 3, jobs)
	res, err := AVR(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 1 {
		t.Fatalf("levels = %+v", res.Levels)
	}
	lv := res.Levels[0]
	if len(lv.Dedicated) != 1 || lv.Dedicated[0] != 1 {
		t.Errorf("dedicated = %v, want [1]", lv.Dedicated)
	}
	if math.Abs(lv.PoolSpeed-1.5) > 1e-9 {
		t.Errorf("pool speed = %v, want 1.5", lv.PoolSpeed)
	}
}

func TestAVRLevelInvariant(t *testing.T) {
	// Every dedicated job's density strictly exceeds the pool speed, and
	// every pooled job's density is at most the pool speed.
	for seed := int64(0); seed < 6; seed++ {
		in, err := workload.LongShort(workload.Spec{N: 14, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := AVR(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Verify(in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, lv := range res.Levels {
			for _, id := range lv.Dedicated {
				j, _ := in.ByID(id)
				if lv.PoolSpeed > 0 && j.Density() <= lv.PoolSpeed-1e-9 {
					t.Errorf("seed %d %v: dedicated job %d density %v <= pool %v",
						seed, lv.Interval, id, j.Density(), lv.PoolSpeed)
				}
			}
		}
	}
}

func TestAVRCompetitiveBound(t *testing.T) {
	for _, alpha := range []float64{1.5, 2, 3} {
		p := power.MustAlpha(alpha)
		bound := p.AVRBound()
		for seed := int64(0); seed < 5; seed++ {
			in, err := workload.Uniform(workload.Spec{N: 12, M: 2, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			res, err := AVR(in)
			if err != nil {
				t.Fatal(err)
			}
			ratio := res.Schedule.Energy(p) / optimalEnergy(t, in, p)
			if ratio > bound+1e-6 {
				t.Errorf("alpha=%v seed=%d: AVR ratio %v exceeds bound %v", alpha, seed, ratio, bound)
			}
			if ratio < 1-1e-6 {
				t.Errorf("alpha=%v seed=%d: AVR ratio %v below 1", alpha, seed, ratio)
			}
		}
	}
}

func TestNonMigratoryBaselines(t *testing.T) {
	p := power.MustAlpha(2)
	assigns := map[string]Assignment{
		"random":     RandomAssignment(7),
		"roundrobin": RoundRobinAssignment(),
		"leastwork":  LeastWorkAssignment(),
	}
	for seed := int64(0); seed < 4; seed++ {
		in, err := workload.LongShort(workload.Spec{N: 12, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		optE := optimalEnergy(t, in, p)
		for name, a := range assigns {
			s, err := NonMigratory(in, a)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, seed, err)
			}
			if err := s.Verify(in); err != nil {
				t.Errorf("%s/%d: infeasible: %v", name, seed, err)
			}
			// Jobs must stay on one processor.
			procOf := map[int]int{}
			for _, seg := range s.Segments {
				if p0, seen := procOf[seg.JobID]; seen && p0 != seg.Proc {
					t.Errorf("%s/%d: job %d migrated", name, seed, seg.JobID)
				}
				procOf[seg.JobID] = seg.Proc
			}
			if e := s.Energy(p); e < optE-1e-6*(1+optE) {
				t.Errorf("%s/%d: non-migratory energy %v below optimum %v", name, seed, e, optE)
			}
		}
	}
}

func TestNonMigratoryValidation(t *testing.T) {
	in := mustInstance(t, 2, []job.Job{{ID: 1, Release: 0, Deadline: 1, Work: 1}})
	if _, err := NonMigratory(in, nil); err == nil {
		t.Error("nil assignment accepted")
	}
	if _, err := NonMigratory(in, func(*job.Instance) []int { return []int{5} }); err == nil {
		t.Error("out-of-range processor accepted")
	}
	if _, err := NonMigratory(in, func(*job.Instance) []int { return nil }); err == nil {
		t.Error("short assignment accepted")
	}
}

// Property: both online algorithms always emit feasible schedules and
// never beat the offline optimum.
func TestOnlineFeasibilityProperty(t *testing.T) {
	p := power.MustAlpha(2)
	f := func(seed int64, rawM uint8) bool {
		m := 1 + int(rawM%3)
		in, err := workload.Uniform(workload.Spec{N: 8, M: m, Seed: seed})
		if err != nil {
			return false
		}
		optRes, err := opt.Schedule(in)
		if err != nil {
			return false
		}
		optE := optRes.Schedule.Energy(p)
		oa, err := OA(in)
		if err != nil || oa.Schedule.Verify(in) != nil {
			return false
		}
		avr, err := AVR(in)
		if err != nil || avr.Schedule.Verify(in) != nil {
			return false
		}
		return oa.Schedule.Energy(p) >= optE-1e-6*(1+optE) &&
			avr.Schedule.Energy(p) >= optE-1e-6*(1+optE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
