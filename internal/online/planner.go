package online

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mpss/internal/job"
	"mpss/internal/mpsserr"
	"mpss/internal/obs"
	"mpss/internal/opt"
	"mpss/internal/schedule"
)

// Planner is the incremental form of OA(m): the interface an actual
// runtime would drive. Jobs are pushed as they arrive; the planner
// advances simulated time, executes its current optimal plan, and replans
// on every arrival batch, exactly like the batch OA function (the test
// suite checks the two produce identical schedules when fed the same
// arrival sequence).
//
// A Planner is not safe for concurrent use.
type Planner struct {
	m        int
	now      float64
	started  bool
	plan     *schedule.Schedule
	executed *schedule.Schedule
	live     map[int]liveJob
	replans  int
	rec      *obs.Recorder
	// solver is reused across replan events so the flow-network arenas
	// (edge arrays, CSR scratch, rational pools) warm up once per planner
	// instead of once per arrival batch.
	solver *opt.Solver
}

// SetRecorder attaches an observability recorder: arrivals, replans and
// admission-control probes are counted, and each replan's phase
// structure is traced. A nil recorder disables recording.
func (p *Planner) SetRecorder(r *obs.Recorder) { p.rec = r }

type liveJob struct {
	deadline  float64
	work      float64 // original volume (for tolerance scaling)
	remaining float64
}

// NewPlanner returns an empty planner over m processors.
func NewPlanner(m int) (*Planner, error) {
	if m < 1 {
		return nil, fmt.Errorf("online: planner needs m >= 1, got %d: %w", m, mpsserr.ErrInvalidInstance)
	}
	return &Planner{
		m:        m,
		executed: schedule.New(m),
		live:     map[int]liveJob{},
		solver:   opt.NewSolver(),
	}, nil
}

// Now returns the planner's current simulated time.
func (p *Planner) Now() float64 { return p.now }

// Replans returns how many optimal schedules have been computed.
func (p *Planner) Replans() int { return p.replans }

// Current returns the plan computed at the last arrival (nil before the
// first arrival). Callers must not mutate it.
func (p *Planner) Current() *schedule.Schedule { return p.plan }

// Executed returns a copy of the schedule executed so far.
func (p *Planner) Executed() *schedule.Schedule {
	out := schedule.New(p.m)
	out.Segments = append(out.Segments, p.executed.Segments...)
	out.Normalize()
	return out
}

// Remaining returns the unfinished volume per live job ID.
func (p *Planner) Remaining() map[int]float64 {
	out := make(map[int]float64, len(p.live))
	for id, lj := range p.live {
		out[id] = lj.remaining
	}
	return out
}

// Arrive advances simulated time to t (executing the current plan on the
// way), admits the newly released jobs, and recomputes the optimal plan
// for all unfinished work. Job release fields must equal t or be zero
// (zero is filled in); IDs must be fresh; deadlines must exceed t.
func (p *Planner) Arrive(t float64, jobs ...job.Job) error {
	if len(jobs) == 0 {
		return errors.New("online: Arrive needs at least one job")
	}
	if err := p.advance(t); err != nil {
		return err
	}
	for _, j := range jobs {
		if j.Release == 0 {
			j.Release = t
		}
		if math.Abs(j.Release-t) > 1e-9*(1+math.Abs(t)) {
			return fmt.Errorf("online: job %d released at %v, arriving at %v", j.ID, j.Release, t)
		}
		j.Release = t
		if err := j.Validate(); err != nil {
			return err
		}
		if _, dup := p.live[j.ID]; dup {
			return fmt.Errorf("online: duplicate live job ID %d", j.ID)
		}
		p.live[j.ID] = liveJob{deadline: j.Deadline, work: j.Work, remaining: j.Work}
	}
	p.rec.Add("planner.arrivals", int64(len(jobs)))
	return p.replan()
}

// FinishHorizon advances to the given time (normally the latest deadline)
// executing the current plan, completing the run.
func (p *Planner) FinishHorizon(t float64) error {
	return p.advance(t)
}

// advance executes the current plan over [now, t) and depletes volumes.
func (p *Planner) advance(t float64) error {
	if p.started && t < p.now-1e-12 {
		return fmt.Errorf("online: time went backwards (%v -> %v)", p.now, t)
	}
	if !p.started {
		p.started = true
		p.now = t
		return nil
	}
	if p.plan != nil && t > p.now {
		window := p.plan.Clip(p.now, t)
		p.executed.Segments = append(p.executed.Segments, window.Segments...)
		for id, lj := range p.live {
			done := window.CompletedWork(id, p.now, t)
			lj.remaining = math.Max(0, lj.remaining-done)
			if lj.remaining <= 1e-9*(1+lj.work) {
				delete(p.live, id)
			} else {
				p.live[id] = lj
			}
		}
	}
	p.now = math.Max(p.now, t)
	return nil
}

// CanAdmit reports whether the live workload plus the candidate job
// remains feasible when every processor is capped at the given maximum
// speed — the admission-control question of the speed-bounded setting.
// The planner state is not modified; the candidate's release is taken as
// the planner's current time.
func (p *Planner) CanAdmit(cap float64, cand job.Job) (bool, error) {
	cand.Release = p.now
	if err := cand.Validate(); err != nil {
		return false, err
	}
	if _, dup := p.live[cand.ID]; dup {
		return false, fmt.Errorf("online: job ID %d already live", cand.ID)
	}
	jobs := []job.Job{cand}
	for id, lj := range p.live {
		jobs = append(jobs, job.Job{ID: id, Release: p.now, Deadline: lj.deadline, Work: lj.remaining})
	}
	sub, err := job.NewInstance(p.m, jobs)
	if err != nil {
		return false, err
	}
	p.rec.Add("planner.admission_probes", 1)
	return opt.FeasibleAtSpeedObserved(sub, cap, p.rec)
}

// replan recomputes the optimal schedule for the live jobs from p.now.
func (p *Planner) replan() error {
	if len(p.live) == 0 {
		p.plan = nil
		return nil
	}
	jobs := make([]job.Job, 0, len(p.live))
	for id, lj := range p.live {
		if lj.deadline <= p.now {
			return fmt.Errorf("online: job %d still has %v work at its deadline: %w", id, lj.remaining, mpsserr.ErrInfeasible)
		}
		jobs = append(jobs, job.Job{ID: id, Release: p.now, Deadline: lj.deadline, Work: lj.remaining})
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	sub, err := job.NewInstance(p.m, jobs)
	if err != nil {
		return err
	}
	span := p.rec.StartSpan(fmt.Sprintf("replan t=%g", p.now))
	span.Add("live_jobs", int64(len(jobs)))
	res, err := p.solver.Schedule(sub, opt.WithRecorder(p.rec), opt.UnderSpan(span))
	span.End()
	if err != nil {
		return err
	}
	p.plan = res.Schedule
	p.replans++
	p.rec.Add("planner.replans", 1)
	return nil
}
