package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 || s.Mean != 7 || s.Median != 7 || s.P95 != 7 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := Summarize([]float64{math.Inf(1)}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile not NaN")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %v, %v", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("zero accepted")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestMergeIdentity(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := Merge(Summary{}, s); got != s {
		t.Errorf("Merge(empty, s) = %+v, want %+v", got, s)
	}
	if got := Merge(s, Summary{}); got != s {
		t.Errorf("Merge(s, empty) = %+v, want %+v", got, s)
	}
	if got := Merge(Summary{}, Summary{}); got.N != 0 {
		t.Errorf("Merge(empty, empty) = %+v", got)
	}
}

func TestMergeSingleElements(t *testing.T) {
	a, _ := Summarize([]float64{2})
	b, _ := Summarize([]float64{6})
	m := Merge(a, b)
	want, _ := Summarize([]float64{2, 6})
	if m.N != 2 || math.Abs(m.Mean-want.Mean) > 1e-12 ||
		math.Abs(m.Std-want.Std) > 1e-12 || m.Min != 2 || m.Max != 6 {
		t.Errorf("Merge = %+v, want %+v", m, want)
	}
}

// Merge must reproduce the exact N/mean/std/min/max of summarizing the
// concatenated sample.
func TestMergeMatchesConcatenation(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3}
	ys := []float64{-4, 0.5, 12, 7, 7, 9, 1.25}
	a, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Summarize(ys)
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(a, b)
	want, err := Summarize(append(append([]float64(nil), xs...), ys...))
	if err != nil {
		t.Fatal(err)
	}
	if m.N != want.N {
		t.Errorf("N = %d, want %d", m.N, want.N)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"mean", m.Mean, want.Mean},
		{"std", m.Std, want.Std},
		{"min", m.Min, want.Min},
		{"max", m.Max, want.Max},
	} {
		if math.Abs(c.got-c.want) > 1e-9*(1+math.Abs(c.want)) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	// Median/P95 are approximations but must stay inside [min, max].
	if m.Median < m.Min || m.Median > m.Max || m.P95 < m.Min || m.P95 > m.Max {
		t.Errorf("quantile estimates escaped range: %+v", m)
	}
}

// Non-finite samples never reach Merge because Summarize rejects them;
// pin that contract here since obs.Histogram relies on it.
func TestMergeNonFiniteGuard(t *testing.T) {
	if _, err := Summarize([]float64{1, math.Inf(-1)}); err == nil {
		t.Error("-Inf accepted by Summarize")
	}
	if _, err := Summarize([]float64{math.NaN()}); err == nil {
		t.Error("NaN accepted by Summarize")
	}
}

// Property: min <= median <= p95 <= max and mean within [min, max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		sample := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sample = append(sample, math.Mod(v, 1e6))
			}
		}
		if len(sample) == 0 {
			return true
		}
		s, err := Summarize(sample)
		if err != nil {
			return false
		}
		return s.Min <= s.Median+1e-9 && s.Median <= s.P95+1e-9 &&
			s.P95 <= s.Max+1e-9 && s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
