// Package stats provides the small set of descriptive statistics the
// experiment harness reports: mean, standard deviation, extrema and
// percentiles over per-seed samples. Kept separate so harness tables can
// report distributional information uniformly.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary describes a sample. Median is the 50th percentile; P90, P95
// and P99 are the upper-tail percentiles latency reporting needs.
type Summary struct {
	N           int
	Mean, Std   float64
	Min, Max    float64
	Median, P95 float64
	P90, P99    float64
}

// Summarize computes the Summary of the sample. It returns an error on an
// empty sample or non-finite values.
func Summarize(sample []float64) (Summary, error) {
	if len(sample) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Summary{}, errors.New("stats: non-finite sample value")
		}
		sum += v
	}
	n := len(sorted)
	mean := sum / float64(n)
	var ss float64
	for _, v := range sorted {
		d := v - mean
		ss += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(ss / float64(n-1))
	}
	return Summary{
		N:      n,
		Mean:   mean,
		Std:    std,
		Min:    sorted[0],
		Max:    sorted[n-1],
		Median: Percentile(sorted, 0.5),
		P90:    Percentile(sorted, 0.90),
		P95:    Percentile(sorted, 0.95),
		P99:    Percentile(sorted, 0.99),
	}, nil
}

// Merge pools two summaries of disjoint samples into the summary of
// their union. N, Mean, Std, Min and Max are exact (Std via the pooled
// sum-of-squares identity); Median and P95 cannot be recovered from
// summaries alone and are reported as the N-weighted average of the
// inputs — exact when both samples share a distribution, an
// approximation otherwise. A summary with N == 0 is the identity.
func Merge(a, b Summary) Summary {
	if a.N == 0 {
		return b
	}
	if b.N == 0 {
		return a
	}
	na, nb := float64(a.N), float64(b.N)
	n := na + nb
	mean := (a.Mean*na + b.Mean*nb) / n
	ss := float64(a.N-1)*a.Std*a.Std + na*(a.Mean-mean)*(a.Mean-mean) +
		float64(b.N-1)*b.Std*b.Std + nb*(b.Mean-mean)*(b.Mean-mean)
	std := 0.0
	if a.N+b.N > 1 {
		std = math.Sqrt(ss / (n - 1))
	}
	return Summary{
		N:      a.N + b.N,
		Mean:   mean,
		Std:    std,
		Min:    math.Min(a.Min, b.Min),
		Max:    math.Max(a.Max, b.Max),
		Median: (a.Median*na + b.Median*nb) / n,
		P90:    (a.P90*na + b.P90*nb) / n,
		P95:    (a.P95*na + b.P95*nb) / n,
		P99:    (a.P99*na + b.P99*nb) / n,
	}
}

// Percentile returns the p-quantile (0 <= p <= 1) of an already-sorted
// sample using linear interpolation between order statistics.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of a positive sample — the right
// aggregate for energy ratios.
func GeoMean(sample []float64) (float64, error) {
	if len(sample) == 0 {
		return 0, errors.New("stats: empty sample")
	}
	var logSum float64
	for _, v := range sample {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, errors.New("stats: geometric mean needs positive finite values")
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(sample))), nil
}
