package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPRSimplePath(t *testing.T) {
	g := NewPRGraph(3)
	a := g.AddEdge(0, 1, 5)
	b := g.AddEdge(1, 2, 3)
	if got := g.MaxFlow(0, 2); math.Abs(got-3) > 1e-9 {
		t.Fatalf("MaxFlow = %v, want 3", got)
	}
	if math.Abs(g.Flow(a)-3) > 1e-9 || math.Abs(g.Flow(b)-3) > 1e-9 {
		t.Errorf("edge flows = %v, %v", g.Flow(a), g.Flow(b))
	}
	if !g.Saturated(b) || g.Saturated(a) {
		t.Error("saturation flags wrong")
	}
	if g.Capacity(a) != 5 {
		t.Errorf("Capacity = %v", g.Capacity(a))
	}
}

func TestPRClassicNetwork(t *testing.T) {
	g := NewPRGraph(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); math.Abs(got-23) > 1e-9 {
		t.Fatalf("MaxFlow = %v, want 23", got)
	}
}

func TestPRDisconnected(t *testing.T) {
	g := NewPRGraph(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 10)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Errorf("MaxFlow = %v, want 0", got)
	}
}

func TestPRBackEdgeNetwork(t *testing.T) {
	// A network where the preflow must drain excess back to the source.
	g := NewPRGraph(4)
	g.AddEdge(0, 1, 100)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 2)
	g.AddEdge(2, 3, 5)
	if got := g.MaxFlow(0, 3); math.Abs(got-3) > 1e-9 {
		t.Fatalf("MaxFlow = %v, want 3", got)
	}
}

func TestPRPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewPRGraph(1)", func() { NewPRGraph(1) })
	mustPanic("self-loop", func() { NewPRGraph(3).AddEdge(2, 2, 1) })
	mustPanic("negative", func() { NewPRGraph(3).AddEdge(0, 1, -3) })
	mustPanic("s==t", func() { NewPRGraph(3).MaxFlow(2, 2) })
}

// Property: push-relabel agrees with Dinic (and thus the exact solver)
// on random scheduler-shaped networks.
func TestPushRelabelMatchesDinicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nj := 1 + rng.Intn(10)
		ni := 1 + rng.Intn(10)
		fg, _, pg, s, snk := buildRandomBipartite(rng, nj, ni)
		dv := fg.MaxFlow(s, snk)
		pv := pg.MaxFlow(s, snk)
		return Close(dv, pv, DiffTolerance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushRelabel(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < b.N; i++ {
		_, _, pg, s, snk := buildRandomBipartite(rng, 40, 80)
		pg.MaxFlow(s, snk)
	}
}
