package flow

import (
	"math/big"
	"testing"
)

// TestPooledGraphCarriesNoStaleState is the regression test for the
// incremental-mutation license: a graph released to the pool after a
// solve must not let its next user run warm-path mutations against the
// previous solve's source/sink endpoints, and must not inherit its
// tolerance override.
func TestPooledGraphCarriesNoStaleState(t *testing.T) {
	g := AcquireGraph(3)
	id := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.SetTolerance(1e-3)
	if got := g.MaxFlow(0, 2); got != 1 {
		t.Fatalf("MaxFlow = %v, want 1", got)
	}
	// Solved: mutations are licensed now.
	g.SetCapacity(id, 0.5)
	ReleaseGraph(g)

	// The same arena comes back (single goroutine, put-then-get), but the
	// test must hold either way: whatever AcquireGraph returns behaves
	// like a brand-new graph.
	g2 := AcquireGraph(3)
	id2 := g2.AddEdge(0, 1, 1)
	g2.AddEdge(1, 2, 1)

	func() {
		defer func() {
			if recover() == nil {
				t.Error("RemoveJobEdge on a re-acquired unsolved graph must panic (stale mutation license)")
			}
		}()
		g2.RemoveJobEdge(id2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ScaleSourceCaps on a re-acquired unsolved graph must panic (stale mutation license)")
			}
		}()
		g2.ScaleSourceCaps(0.5)
	}()

	// The tolerance override must not leak: with the default 1e-12 an
	// edge 1e-6 short of capacity is NOT saturated, with the leaked 1e-3
	// it would be.
	g3 := AcquireGraph(3)
	e := g3.AddEdge(0, 1, 1)
	g3.AddEdge(1, 2, 1-1e-6)
	g3.MaxFlow(0, 2)
	if g3.Saturated(e) {
		t.Error("edge at 1-1e-6 of capacity reads saturated: tolerance override leaked through the pool")
	}
	ReleaseGraph(g3)
	ReleaseGraph(g2)
}

// TestPooledRatGraphCarriesNoStaleState is the exact-engine counterpart.
func TestPooledRatGraphCarriesNoStaleState(t *testing.T) {
	one := big.NewRat(1, 1)
	g := AcquireRatGraph(3)
	id := g.AddEdge(0, 1, one)
	g.AddEdge(1, 2, one)
	if got := g.MaxFlow(0, 2); got.Cmp(one) != 0 {
		t.Fatalf("MaxFlow = %v, want 1", got)
	}
	g.SetCapacity(id, big.NewRat(1, 2))
	ReleaseRatGraph(g)

	g2 := AcquireRatGraph(3)
	id2 := g2.AddEdge(0, 1, one)
	g2.AddEdge(1, 2, one)
	defer ReleaseRatGraph(g2)
	defer func() {
		if recover() == nil {
			t.Error("RemoveJobEdge on a re-acquired unsolved rat graph must panic (stale mutation license)")
		}
	}()
	g2.RemoveJobEdge(id2)
}
