package flow

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplePath(t *testing.T) {
	g := NewGraph(3)
	a := g.AddEdge(0, 1, 5)
	b := g.AddEdge(1, 2, 3)
	if got := g.MaxFlow(0, 2); got != 3 {
		t.Fatalf("MaxFlow = %v, want 3", got)
	}
	if g.Flow(a) != 3 || g.Flow(b) != 3 {
		t.Errorf("edge flows = %v, %v", g.Flow(a), g.Flow(b))
	}
	if g.Saturated(a) {
		t.Error("edge a reported saturated")
	}
	if !g.Saturated(b) {
		t.Error("edge b not reported saturated")
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example with known max flow 23.
	g := NewGraph(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); math.Abs(got-23) > 1e-9 {
		t.Fatalf("MaxFlow = %v, want 23", got)
	}
	if err := g.CheckConservation(0, 5); err != nil {
		t.Error(err)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 10)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Errorf("MaxFlow = %v, want 0", got)
	}
}

func TestParallelEdges(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3)
	if got := g.MaxFlow(0, 1); math.Abs(got-5) > 1e-12 {
		t.Errorf("MaxFlow = %v, want 5", got)
	}
}

func TestZeroCapacityEdge(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 4)
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Errorf("MaxFlow = %v, want 0", got)
	}
}

func TestFractionalCapacities(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(0, 2, 0.25)
	g.AddEdge(1, 3, 0.4)
	g.AddEdge(2, 3, 1)
	want := 0.4 + 0.25
	if got := g.MaxFlow(0, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxFlow = %v, want %v", got, want)
	}
}

func TestOutFlow(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	g.MaxFlow(0, 2)
	if got := g.OutFlow(0); math.Abs(got-3) > 1e-12 {
		t.Errorf("OutFlow(0) = %v", got)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewGraph(1)", func() { NewGraph(1) })
	mustPanic("self-loop", func() { NewGraph(3).AddEdge(1, 1, 1) })
	mustPanic("out of range", func() { NewGraph(3).AddEdge(0, 7, 1) })
	mustPanic("negative capacity", func() { NewGraph(3).AddEdge(0, 1, -1) })
	mustPanic("NaN capacity", func() { NewGraph(3).AddEdge(0, 1, math.NaN()) })
	mustPanic("s==t", func() { NewGraph(3).MaxFlow(1, 1) })
}

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestRatSimplePath(t *testing.T) {
	g := NewRatGraph(3)
	a := g.AddEdge(0, 1, rat(5, 1))
	b := g.AddEdge(1, 2, rat(10, 3))
	got := g.MaxFlow(0, 2)
	if got.Cmp(rat(10, 3)) != 0 {
		t.Fatalf("MaxFlow = %v, want 10/3", got)
	}
	if g.Flow(a).Cmp(rat(10, 3)) != 0 {
		t.Errorf("Flow(a) = %v", g.Flow(a))
	}
	if !g.Saturated(b) || g.Saturated(a) {
		t.Error("saturation flags wrong")
	}
	if g.Capacity(a).Cmp(rat(5, 1)) != 0 {
		t.Errorf("Capacity(a) = %v", g.Capacity(a))
	}
}

func TestRatClassicNetwork(t *testing.T) {
	g := NewRatGraph(6)
	add := func(u, v int, c int64) { g.AddEdge(u, v, rat(c, 1)) }
	add(0, 1, 16)
	add(0, 2, 13)
	add(1, 2, 10)
	add(2, 1, 4)
	add(1, 3, 12)
	add(3, 2, 9)
	add(2, 4, 14)
	add(4, 3, 7)
	add(3, 5, 20)
	add(4, 5, 4)
	if got := g.MaxFlow(0, 5); got.Cmp(rat(23, 1)) != 0 {
		t.Fatalf("MaxFlow = %v, want 23", got)
	}
}

func TestRatPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewRatGraph(0)", func() { NewRatGraph(0) })
	mustPanic("negative", func() { NewRatGraph(2).AddEdge(0, 1, rat(-1, 2)) })
	mustPanic("self-loop", func() { NewRatGraph(2).AddEdge(0, 0, rat(1, 2)) })
	mustPanic("s==t", func() { NewRatGraph(2).MaxFlow(0, 0) })
}

// buildRandomBipartite builds the same random 4-layer network (the shape
// used by the scheduler) in all three solvers, with integer capacities so
// the results must agree exactly.
func buildRandomBipartite(rng *rand.Rand, nj, ni int) (*Graph, *RatGraph, *PRGraph, int, int) {
	n := 2 + nj + ni
	fg := NewGraph(n)
	rg := NewRatGraph(n)
	pg := NewPRGraph(n)
	src, sink := 0, n-1
	for j := 0; j < nj; j++ {
		c := int64(1 + rng.Intn(20))
		fg.AddEdge(src, 1+j, float64(c))
		rg.AddEdge(src, 1+j, rat(c, 1))
		pg.AddEdge(src, 1+j, float64(c))
		for i := 0; i < ni; i++ {
			if rng.Intn(2) == 0 {
				cc := int64(1 + rng.Intn(10))
				fg.AddEdge(1+j, 1+nj+i, float64(cc))
				rg.AddEdge(1+j, 1+nj+i, rat(cc, 1))
				pg.AddEdge(1+j, 1+nj+i, float64(cc))
			}
		}
	}
	for i := 0; i < ni; i++ {
		c := int64(1 + rng.Intn(30))
		fg.AddEdge(1+nj+i, sink, float64(c))
		rg.AddEdge(1+nj+i, sink, rat(c, 1))
		pg.AddEdge(1+nj+i, sink, float64(c))
	}
	return fg, rg, pg, src, sink
}

// Property: float64 and exact solvers agree on random integer networks.
func TestFloatMatchesExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nj := 1 + rng.Intn(8)
		ni := 1 + rng.Intn(8)
		fg, rg, _, s, snk := buildRandomBipartite(rng, nj, ni)
		fv := fg.MaxFlow(s, snk)
		rv, _ := rg.MaxFlow(s, snk).Float64()
		return Close(fv, rv, DiffTolerance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: max-flow never exceeds the source's outgoing capacity or the
// sink's incoming capacity, and conservation holds.
func TestFlowBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nj := 1 + rng.Intn(6)
		ni := 1 + rng.Intn(6)
		fg, _, _, s, snk := buildRandomBipartite(rng, nj, ni)
		val := fg.MaxFlow(s, snk)
		if val < 0 {
			return false
		}
		if err := fg.CheckConservation(s, snk); err != nil {
			return false
		}
		return Close(fg.OutFlow(s), val, SolveTolerance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDinicFloat(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < b.N; i++ {
		fg, _, _, s, snk := buildRandomBipartite(rng, 40, 80)
		fg.MaxFlow(s, snk)
	}
}

func BenchmarkDinicRational(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < b.N; i++ {
		_, rg, _, s, snk := buildRandomBipartite(rng, 20, 40)
		rg.MaxFlow(s, snk)
	}
}
