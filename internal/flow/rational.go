package flow

import (
	"fmt"
	"math/big"
)

// RatGraph is a flow network over exact rational capacities. It mirrors
// Graph but performs all arithmetic in math/big.Rat, so saturation tests
// are exact. It is used to cross-check the float64 solver and to run the
// offline optimum in exact mode on rational inputs.
type RatGraph struct {
	adj [][]ratEdge
	ops DinicOps
}

// Ops returns the Dinic operation counts accumulated by MaxFlow so far.
func (g *RatGraph) Ops() DinicOps { return g.ops }

type ratEdge struct {
	to   int
	cap  *big.Rat // residual capacity
	orig *big.Rat // original capacity (zero for reverse edges)
	rev  int
}

// NewRatGraph returns an empty exact flow network with n vertices.
func NewRatGraph(n int) *RatGraph {
	if n < 2 {
		panic(fmt.Sprintf("flow: graph needs >= 2 vertices, got %d", n))
	}
	return &RatGraph{adj: make([][]ratEdge, n)}
}

// N returns the number of vertices.
func (g *RatGraph) N() int { return len(g.adj) }

// AddEdge adds a directed edge with the given non-negative capacity. The
// capacity is copied.
func (g *RatGraph) AddEdge(from, to int, capacity *big.Rat) EdgeID {
	if from < 0 || from >= len(g.adj) || to < 0 || to >= len(g.adj) {
		panic(fmt.Sprintf("flow: edge %d->%d out of range", from, to))
	}
	if from == to {
		panic("flow: self-loop")
	}
	if capacity.Sign() < 0 {
		panic(fmt.Sprintf("flow: negative capacity %v", capacity))
	}
	c := new(big.Rat).Set(capacity)
	g.adj[from] = append(g.adj[from], ratEdge{to: to, cap: c, orig: new(big.Rat).Set(capacity), rev: len(g.adj[to])})
	g.adj[to] = append(g.adj[to], ratEdge{to: from, cap: new(big.Rat), orig: new(big.Rat), rev: len(g.adj[from]) - 1})
	return EdgeID{from: from, idx: len(g.adj[from]) - 1}
}

// Flow returns the exact flow on the edge.
func (g *RatGraph) Flow(id EdgeID) *big.Rat {
	e := g.adj[id.from][id.idx]
	return new(big.Rat).Sub(e.orig, e.cap)
}

// Capacity returns the exact original capacity of the edge.
func (g *RatGraph) Capacity(id EdgeID) *big.Rat {
	return new(big.Rat).Set(g.adj[id.from][id.idx].orig)
}

// Saturated reports whether the edge carries exactly its capacity.
func (g *RatGraph) Saturated(id EdgeID) bool {
	return g.adj[id.from][id.idx].cap.Sign() == 0
}

// MaxFlow computes an exact maximum s-t flow with Dinic's algorithm.
func (g *RatGraph) MaxFlow(s, t int) *big.Rat {
	if s == t {
		panic("flow: source equals sink")
	}
	n := len(g.adj)
	level := make([]int, n)
	iter := make([]int, n)
	queue := make([]int, 0, n)

	var bfsPasses, augPaths, edgesScanned int64

	bfs := func() bool {
		bfsPasses++
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			edgesScanned += int64(len(g.adj[v]))
			for _, e := range g.adj[v] {
				if e.cap.Sign() > 0 && level[e.to] < 0 {
					level[e.to] = level[v] + 1
					queue = append(queue, e.to)
				}
			}
		}
		return level[t] >= 0
	}

	// f == nil means "unbounded" (at the source).
	var dfs func(v int, f *big.Rat) *big.Rat
	dfs = func(v int, f *big.Rat) *big.Rat {
		if v == t {
			return new(big.Rat).Set(f)
		}
		for ; iter[v] < len(g.adj[v]); iter[v]++ {
			edgesScanned++
			e := &g.adj[v][iter[v]]
			if e.cap.Sign() > 0 && level[v] < level[e.to] {
				push := e.cap
				if f != nil && f.Cmp(e.cap) < 0 {
					push = f
				}
				d := dfs(e.to, push)
				if d != nil && d.Sign() > 0 {
					e.cap.Sub(e.cap, d)
					g.adj[e.to][e.rev].cap.Add(g.adj[e.to][e.rev].cap, d)
					return d
				}
			}
		}
		return nil
	}

	total := new(big.Rat)
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			// Start with the total outgoing capacity of s as the bound.
			bound := new(big.Rat)
			for _, e := range g.adj[s] {
				bound.Add(bound, e.cap)
			}
			if bound.Sign() == 0 {
				break
			}
			d := dfs(s, bound)
			if d == nil || d.Sign() == 0 {
				break
			}
			augPaths++
			total.Add(total, d)
		}
	}
	g.ops.Add(DinicOps{BFSPasses: bfsPasses, AugPaths: augPaths, EdgesScanned: edgesScanned})
	return total
}
