package flow

import (
	"fmt"
	"math/big"
)

// ratEdge is one arc of the flat exact residual-edge array, paired like
// edge: forward at even index i, reverse at i^1.
type ratEdge struct {
	from, to int32
	cap      *big.Rat // residual capacity
	orig     *big.Rat // original capacity (zero for reverse edges)
}

// RatGraph is a flow network over exact rational capacities. It mirrors
// Graph — same flat edge layout, same EdgeID scheme, same incremental
// warm-start API — but performs all arithmetic in math/big.Rat, so
// saturation tests are exact. It is used to cross-check the float64
// solver and to run the offline optimum in exact mode on rational
// inputs. Because the arithmetic is exact, ScaleSourceCaps can rescale
// multiplicatively without the floating-point drift the float engine
// has to sidestep (see DESIGN.md).
type RatGraph struct {
	edges []ratEdge
	nv    int

	adjOff []int32
	adjLst []int32
	csrOK  bool

	ops DinicOps

	lastS, lastT int
	haveST       bool

	level, iter, queue []int32
	mark               []bool
}

// Ops returns the Dinic operation counts accumulated by MaxFlow since
// the last Reset.
func (g *RatGraph) Ops() DinicOps { return g.ops }

// NewRatGraph returns an empty exact flow network with n vertices.
func NewRatGraph(n int) *RatGraph {
	g := &RatGraph{}
	g.Reset(n)
	return g
}

// Reset re-initializes the graph to n empty vertices, reusing backing
// arrays (the big.Rat values themselves are reallocated by AddEdge).
func (g *RatGraph) Reset(n int) {
	if n < 2 {
		panic(fmt.Sprintf("flow: graph needs >= 2 vertices, got %d", n))
	}
	g.nv = n
	g.edges = g.edges[:0]
	g.csrOK = false
	g.ops = DinicOps{}
	g.haveST = false
}

// N returns the number of vertices.
func (g *RatGraph) N() int { return g.nv }

// AddEdge adds a directed edge with the given non-negative capacity. The
// capacity is copied.
func (g *RatGraph) AddEdge(from, to int, capacity *big.Rat) EdgeID {
	if from < 0 || from >= g.nv || to < 0 || to >= g.nv {
		panic(fmt.Sprintf("flow: edge %d->%d out of range", from, to))
	}
	if from == to {
		panic("flow: self-loop")
	}
	if capacity.Sign() < 0 {
		panic(fmt.Sprintf("flow: negative capacity %v", capacity))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges,
		ratEdge{from: int32(from), to: int32(to), cap: new(big.Rat).Set(capacity), orig: new(big.Rat).Set(capacity)},
		ratEdge{from: int32(to), to: int32(from), cap: new(big.Rat), orig: new(big.Rat)},
	)
	g.csrOK = false
	return id
}

func (g *RatGraph) fwd(id EdgeID) *ratEdge {
	if id < 0 || int(id) >= len(g.edges) || id&1 != 0 {
		panic(fmt.Sprintf("flow: invalid edge id %d", id))
	}
	return &g.edges[id]
}

// Flow returns the exact flow on the edge.
func (g *RatGraph) Flow(id EdgeID) *big.Rat {
	e := g.fwd(id)
	return new(big.Rat).Sub(e.orig, e.cap)
}

// Capacity returns the exact original capacity of the edge.
func (g *RatGraph) Capacity(id EdgeID) *big.Rat {
	return new(big.Rat).Set(g.fwd(id).orig)
}

// Saturated reports whether the edge carries exactly its capacity.
func (g *RatGraph) Saturated(id EdgeID) bool {
	return g.fwd(id).cap.Sign() == 0
}

func (g *RatGraph) build() {
	if g.csrOK {
		return
	}
	n := g.nv
	g.adjOff = growInt32(g.adjOff, n+1)
	g.adjLst = growInt32(g.adjLst, len(g.edges))
	g.ensureScratch(n)
	buildCSR(n, len(g.edges), func(i int) int32 { return g.edges[i].from }, g.adjOff, g.adjLst, g.iter)
	g.csrOK = true
}

func (g *RatGraph) ensureScratch(n int) {
	g.level = growInt32(g.level, n)
	g.iter = growInt32(g.iter, n)
	if cap(g.queue) < n {
		g.queue = make([]int32, 0, n)
	}
	if cap(g.mark) < n {
		g.mark = make([]bool, n)
	}
	g.mark = g.mark[:n]
}

// MaxFlow augments the current flow to an exact maximum s-t flow with
// Dinic's algorithm and returns the flow added by this call.
func (g *RatGraph) MaxFlow(s, t int) *big.Rat {
	if s == t {
		panic("flow: source equals sink")
	}
	g.build()
	g.ensureScratch(g.nv)
	g.lastS, g.lastT, g.haveST = s, t, true
	n := g.nv
	level, iter := g.level, g.iter

	var bfsPasses, augPaths, edgesScanned int64

	bfs := func() bool {
		bfsPasses++
		for i := 0; i < n; i++ {
			level[i] = -1
		}
		level[s] = 0
		queue := append(g.queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			edgesScanned += int64(g.adjOff[v+1] - g.adjOff[v])
			for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
				e := &g.edges[g.adjLst[i]]
				if e.cap.Sign() > 0 && level[e.to] < 0 {
					level[e.to] = level[v] + 1
					queue = append(queue, e.to)
				}
			}
		}
		g.queue = queue[:0]
		return level[t] >= 0
	}

	// f == nil means "unbounded" (at the source).
	var dfs func(v int32, f *big.Rat) *big.Rat
	dfs = func(v int32, f *big.Rat) *big.Rat {
		if int(v) == t {
			return new(big.Rat).Set(f)
		}
		for ; iter[v] < g.adjOff[v+1]; iter[v]++ {
			edgesScanned++
			eid := g.adjLst[iter[v]]
			e := &g.edges[eid]
			if e.cap.Sign() > 0 && level[v] < level[e.to] {
				push := e.cap
				if f != nil && f.Cmp(e.cap) < 0 {
					push = f
				}
				d := dfs(e.to, push)
				if d != nil && d.Sign() > 0 {
					e.cap.Sub(e.cap, d)
					p := &g.edges[eid^1]
					p.cap.Add(p.cap, d)
					return d
				}
			}
		}
		return nil
	}

	total := new(big.Rat)
	for bfs() {
		copy(iter[:n], g.adjOff[:n])
		for {
			// Start with the total outgoing capacity of s as the bound.
			bound := new(big.Rat)
			for i := g.adjOff[s]; i < g.adjOff[s+1]; i++ {
				bound.Add(bound, g.edges[g.adjLst[i]].cap)
			}
			if bound.Sign() == 0 {
				break
			}
			d := dfs(int32(s), bound)
			if d == nil || d.Sign() == 0 {
				break
			}
			augPaths++
			total.Add(total, d)
		}
	}
	g.ops.Add(DinicOps{BFSPasses: bfsPasses, AugPaths: augPaths, EdgesScanned: edgesScanned})
	return total
}

// ---------------------------------------------------------------------------
// Incremental warm-start API — exact mirror of Graph's. See flow.go for
// the drain/re-augment invariant; the rational versions are simpler
// because saturation tests are exact (Sign comparisons, no tolerance).
// ---------------------------------------------------------------------------

// ResetFlow removes all flow, restoring residual capacities.
func (g *RatGraph) ResetFlow() {
	for i := range g.edges {
		g.edges[i].cap.Set(g.edges[i].orig)
	}
}

func (g *RatGraph) stEndpoints() (int, int) {
	if !g.haveST {
		panic("flow: incremental mutation before any MaxFlow call")
	}
	return g.lastS, g.lastT
}

func (g *RatGraph) edgeFlow(id int32) *big.Rat {
	e := &g.edges[id]
	return new(big.Rat).Sub(e.orig, e.cap)
}

// SetCapacity replaces the capacity of edge id, draining flow that no
// longer fits. The amount drained is returned.
func (g *RatGraph) SetCapacity(id EdgeID, c *big.Rat) *big.Rat {
	if c.Sign() < 0 {
		panic(fmt.Sprintf("flow: negative capacity %v", c))
	}
	e := g.fwd(id)
	drained := new(big.Rat)
	if g.edgeFlow(int32(id)).Cmp(c) > 0 {
		drained = g.reduceEdgeFlowTo(int32(id), c)
	}
	flow := g.edgeFlow(int32(id))
	e.orig.Set(c)
	e.cap.Sub(c, flow)
	if e.cap.Sign() < 0 {
		e.cap.SetInt64(0)
	}
	return drained
}

// ScaleSourceCaps multiplies every forward edge leaving the source of
// the last MaxFlow call by factor (exactly), draining flow that no
// longer fits, and returns the total drained.
func (g *RatGraph) ScaleSourceCaps(factor *big.Rat) *big.Rat {
	if factor.Sign() < 0 {
		panic(fmt.Sprintf("flow: negative scale factor %v", factor))
	}
	s, _ := g.stEndpoints()
	g.build()
	drained := new(big.Rat)
	scaled := new(big.Rat)
	for i := g.adjOff[s]; i < g.adjOff[s+1]; i++ {
		id := g.adjLst[i]
		if id&1 != 0 {
			continue
		}
		scaled.Mul(g.edges[id].orig, factor)
		drained.Add(drained, g.SetCapacity(EdgeID(id), scaled))
	}
	return drained
}

// RemoveJobEdge takes the head vertex of source edge id out of the
// network: drains all flow through it and zeroes id and the vertex's
// out-edge capacities. Returns the total flow drained.
func (g *RatGraph) RemoveJobEdge(id EdgeID) *big.Rat {
	g.stEndpoints()
	g.build()
	e := g.fwd(id)
	v := e.to
	drained := new(big.Rat)
	for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
		out := g.adjLst[i]
		if out&1 != 0 {
			continue
		}
		if g.edgeFlow(out).Sign() > 0 {
			drained.Add(drained, g.reduceEdgeFlowTo(out, new(big.Rat)))
		}
		g.edges[out].orig.SetInt64(0)
		g.edges[out].cap.SetInt64(0)
		g.edges[out^1].cap.SetInt64(0)
	}
	e.orig.SetInt64(0)
	e.cap.SetInt64(0)
	g.edges[id^1].cap.SetInt64(0)
	return drained
}

// reduceEdgeFlowTo cancels flow on forward edge eid until it is at most
// target, removing each canceled unit along one flow-carrying
// source-to-sink path. Returns the amount canceled.
func (g *RatGraph) reduceEdgeFlowTo(eid int32, target *big.Rat) *big.Rat {
	s, t := g.stEndpoints()
	g.build()
	removed := new(big.Rat)
	for iter := 0; g.edgeFlow(eid).Cmp(target) > 0; iter++ {
		if iter > len(g.edges)+2 {
			violate(false, "drain failed to converge on exact graph (cyclic flow?)")
		}
		d := new(big.Rat).Sub(g.edgeFlow(eid), target)
		down, ok := g.flowPathDown(int(g.edges[eid].to), t)
		if !ok {
			violate(false, "no flow-carrying path to sink while draining exact graph")
		}
		up, ok := g.flowPathUp(int(g.edges[eid].from), s)
		if !ok {
			violate(false, "no flow-carrying path to source while draining exact graph")
		}
		for _, pid := range down {
			if f := g.edgeFlow(pid); f.Cmp(d) < 0 {
				d.Set(f)
			}
		}
		for _, pid := range up {
			if f := g.edgeFlow(pid); f.Cmp(d) < 0 {
				d.Set(f)
			}
		}
		if d.Sign() <= 0 {
			violate(false, "zero drain bottleneck on exact graph")
		}
		g.cancel(eid, d)
		for _, pid := range down {
			g.cancel(pid, d)
		}
		for _, pid := range up {
			g.cancel(pid, d)
		}
		removed.Add(removed, d)
	}
	return removed
}

func (g *RatGraph) cancel(id int32, d *big.Rat) {
	e := &g.edges[id]
	e.cap.Add(e.cap, d)
	p := &g.edges[id^1]
	p.cap.Sub(p.cap, d)
	if p.cap.Sign() < 0 {
		violate(false, "over-cancel on exact graph")
	}
}

func (g *RatGraph) flowPathDown(v, t int) ([]int32, bool) {
	path := g.queue[:0]
	for steps := 0; v != t; steps++ {
		if steps > g.nv {
			return nil, false
		}
		found := false
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			id := g.adjLst[i]
			if id&1 != 0 {
				continue
			}
			if g.edgeFlow(id).Sign() > 0 {
				path = append(path, id)
				v = int(g.edges[id].to)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	g.queue = path[:0]
	return path, true
}

func (g *RatGraph) flowPathUp(v, s int) ([]int32, bool) {
	path := make([]int32, 0, 8)
	for steps := 0; v != s; steps++ {
		if steps > g.nv {
			return nil, false
		}
		found := false
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			id := g.adjLst[i]
			if id&1 == 0 {
				continue
			}
			if g.edgeFlow(id^1).Sign() > 0 {
				path = append(path, id^1)
				v = int(g.edges[id^1].from)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return path, true
}

// CoReachable reports, for every vertex, whether the sink t is reachable
// from it in the exact residual graph. The slice is graph-owned scratch.
func (g *RatGraph) CoReachable(t int) []bool {
	g.build()
	g.ensureScratch(g.nv)
	mark := g.mark
	for i := range mark {
		mark[i] = false
	}
	mark[t] = true
	queue := append(g.queue[:0], int32(t))
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			id := g.adjLst[i]
			if g.edges[id^1].cap.Sign() > 0 {
				u := g.edges[id].to
				if !mark[u] {
					mark[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	g.queue = queue[:0]
	return mark
}
