package flow

import (
	"math/big"
	"math/rand"
	"testing"
)

// parallelWorkerCounts are the worker counts every differential test
// sweeps: the sequential degenerate case, the smallest truly concurrent
// case, and heavy oversubscription (8 workers on the test machines'
// GOMAXPROCS exercises stealing and stop-the-world under contention).
var parallelWorkerCounts = []int{1, 2, 8}

// TestParallelDifferentialRandomNets checks MaxFlowParallel against
// Dinic, sequential push-relabel and the exact rational solver on the
// random solver-shaped corpus, at every worker count.
func TestParallelDifferentialRandomNets(t *testing.T) {
	for seed := int64(1); seed <= 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := randomNet(rng)
		s, sink := 0, net.sink()

		dg := NewGraph(net.vertices())
		net.buildFloat(dg)
		fv := dg.MaxFlow(s, sink)

		pg := NewPRGraph(net.vertices())
		net.buildPR(pg)
		pv := pg.MaxFlow(s, sink)

		rg := NewRatGraph(net.vertices())
		net.buildRat(rg)
		rv, _ := rg.MaxFlow(s, sink).Float64()

		if !Close(fv, rv, SolveTolerance) || !Close(pv, rv, SolveTolerance) {
			t.Fatalf("seed %d: sequential engines disagree: dinic %v pr %v exact %v", seed, fv, pv, rv)
		}

		for _, workers := range parallelWorkerCounts {
			cg := NewGraph(net.vertices())
			net.buildFloat(cg)
			cv := cg.MaxFlowParallel(s, sink, workers)
			if !Close(cv, rv, DiffTolerance) {
				t.Fatalf("seed %d workers %d: parallel %v vs exact %v (net %+v)",
					seed, workers, cv, rv, net)
			}
			if err := cg.CheckConservation(s, sink); err != nil {
				t.Fatalf("seed %d workers %d: conservation after phase 2: %v", seed, workers, err)
			}
		}
	}
}

// bigNet builds a larger random layered net than randomNet — enough
// active vertices that multiple workers genuinely interleave, steal and
// trigger stop-the-world global relabels.
func bigNet(rng *rand.Rand) *layeredNet {
	net := &layeredNet{
		nJobs: 24 + rng.Intn(40),
		nIvs:  8 + rng.Intn(16),
		denom: int64(1 + rng.Intn(7)),
	}
	for k := 0; k < net.nJobs; k++ {
		net.srcCap = append(net.srcCap, int64(rng.Intn(50)))
	}
	for j := 0; j < net.nIvs; j++ {
		net.sinkCap = append(net.sinkCap, int64(rng.Intn(80)))
	}
	for k := 0; k < net.nJobs; k++ {
		active := false
		for j := 0; j < net.nIvs; j++ {
			if rng.Intn(4) > 0 {
				net.midCap = append(net.midCap, int64(1+rng.Intn(40)))
				active = true
			} else {
				net.midCap = append(net.midCap, 0)
			}
		}
		if !active {
			net.midCap[k*net.nIvs+rng.Intn(net.nIvs)] = int64(1 + rng.Intn(40))
		}
	}
	return net
}

// TestParallelDifferentialBigNets runs the worker sweep on networks
// large enough for work stealing and periodic global relabels to fire.
func TestParallelDifferentialBigNets(t *testing.T) {
	var steals, globals int64
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		net := bigNet(rng)
		s, sink := 0, net.sink()

		rg := NewRatGraph(net.vertices())
		net.buildRat(rg)
		rv, _ := rg.MaxFlow(s, sink).Float64()

		for _, workers := range parallelWorkerCounts {
			cg := NewGraph(net.vertices())
			net.buildFloat(cg)
			cv := cg.MaxFlowParallel(s, sink, workers)
			if !Close(cv, rv, DiffTolerance) {
				t.Fatalf("seed %d workers %d: parallel %v vs exact %v", seed, workers, cv, rv)
			}
			if err := cg.CheckConservation(s, sink); err != nil {
				t.Fatalf("seed %d workers %d: conservation: %v", seed, workers, err)
			}
			ops := cg.ParOps()
			if ops.GlobalRelabels == 0 {
				t.Fatalf("seed %d workers %d: no global relabel ran (initial pass must count)", seed, workers)
			}
			steals += ops.Steals
			globals += ops.GlobalRelabels
		}
	}
	if globals == 0 {
		t.Fatal("global relabeling never fired across the corpus")
	}
	// Steals are scheduling-dependent, so no hard assertion — but log
	// them so a silent degeneration to zero concurrency is visible.
	t.Logf("corpus totals: steals=%d global_relabels=%d", steals, globals)
}

// TestParallelClassicNetworks pins exact values on fixed graphs,
// including a cyclic one: phase 2 must cancel flow cycles left by the
// preflow push order, which layered nets can never produce.
func TestParallelClassicNetworks(t *testing.T) {
	for _, workers := range parallelWorkerCounts {
		// CLRS figure 24.6-style network, max flow 23.
		g := NewGraph(6)
		g.AddEdge(0, 1, 16)
		g.AddEdge(0, 2, 13)
		g.AddEdge(1, 2, 10)
		g.AddEdge(2, 1, 4)
		g.AddEdge(1, 3, 12)
		g.AddEdge(3, 2, 9)
		g.AddEdge(2, 4, 14)
		g.AddEdge(4, 3, 7)
		g.AddEdge(3, 5, 20)
		g.AddEdge(4, 5, 4)
		if v := g.MaxFlowParallel(0, 5, workers); !Close(v, 23, DefaultTolerance) {
			t.Fatalf("workers %d: classic cyclic network: got %v, want 23", workers, v)
		}
		if err := g.CheckConservation(0, 5); err != nil {
			t.Fatalf("workers %d: conservation: %v", workers, err)
		}

		// A network with a flow-trapping dead end: excess pushed into the
		// pocket must return to the source in phase 2.
		h := NewGraph(5)
		h.AddEdge(0, 1, 10)
		h.AddEdge(1, 2, 10) // pocket: no way to the sink from 2
		h.AddEdge(1, 3, 3)
		h.AddEdge(3, 4, 3)
		if v := h.MaxFlowParallel(0, 4, workers); !Close(v, 3, DefaultTolerance) {
			t.Fatalf("workers %d: dead-end network: got %v, want 3", workers, v)
		}
		if err := h.CheckConservation(0, 4); err != nil {
			t.Fatalf("workers %d: dead-end conservation: %v", workers, err)
		}

		// Disconnected sink: zero flow, and phase 2 has to drain every
		// saturated source edge back.
		z := NewGraph(4)
		z.AddEdge(0, 1, 5)
		z.AddEdge(0, 2, 7)
		z.AddEdge(1, 2, 2)
		if v := z.MaxFlowParallel(0, 3, workers); v != 0 {
			t.Fatalf("workers %d: disconnected sink: got %v, want 0", workers, v)
		}
		if err := z.CheckConservation(0, 3); err != nil {
			t.Fatalf("workers %d: disconnected conservation: %v", workers, err)
		}
	}
}

// TestParallelLeavesFeasibleFlow verifies the contract that matters to
// the dispatch policy: after MaxFlowParallel the graph holds an ordinary
// feasible max flow, so the warm-start mutators and a sequential
// re-augmentation continue from it correctly.
func TestParallelLeavesFeasibleFlow(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		net := randomNet(rng)
		s, sink := 0, net.sink()

		wg := NewGraph(net.vertices())
		fsrc, fsink := net.buildFloat(wg)
		wg.MaxFlowParallel(s, sink, 1+int(seed)%3*3) // workers in {1,4,7}

		kill := rng.Intn(net.nJobs)
		shrink := rng.Intn(net.nIvs)
		wg.RemoveJobEdge(fsrc[kill])
		wg.SetCapacity(fsink[shrink], float64(net.sinkCap[shrink]/2)/float64(net.denom))
		wg.MaxFlow(s, sink) // warm sequential re-augment on top
		warmVal := 0.0
		for k, id := range fsrc {
			if k != kill {
				warmVal += wg.Flow(id)
			}
		}
		if err := wg.CheckConservation(s, sink); err != nil {
			t.Fatalf("seed %d: warm-after-parallel conservation: %v", seed, err)
		}

		// Exact cold reference at the final capacities.
		final := &layeredNet{
			nJobs:   net.nJobs,
			nIvs:    net.nIvs,
			srcCap:  append([]int64(nil), net.srcCap...),
			sinkCap: append([]int64(nil), net.sinkCap...),
			midCap:  net.midCap,
			denom:   net.denom,
		}
		final.srcCap[kill] = 0
		final.sinkCap[shrink] = net.sinkCap[shrink] / 2
		cr := NewRatGraph(final.vertices())
		csrc, _ := final.buildRat(cr)
		cr.MaxFlow(s, sink)
		coldRat := new(big.Rat)
		for k, id := range csrc {
			if k != kill {
				coldRat.Add(coldRat, cr.Flow(id))
			}
		}
		cv, _ := coldRat.Float64()
		if !Close(warmVal, cv, DiffTolerance) {
			t.Fatalf("seed %d: warm-after-parallel %v vs exact cold %v (net %+v kill=%d shrink=%d)",
				seed, warmVal, cv, net, kill, shrink)
		}
	}
}

// TestParallelPooledReuse solves on a pooled graph, releases it, and
// re-acquires: leftover parallel scratch must never leak into the next
// solve's answer.
func TestParallelPooledReuse(t *testing.T) {
	for i := 0; i < 6; i++ {
		rng := rand.New(rand.NewSource(3000 + int64(i)))
		net := randomNet(rng)
		g := AcquireGraph(net.vertices())
		net.buildFloat(g)
		want := 0.0
		{
			ref := NewGraph(net.vertices())
			net.buildFloat(ref)
			want = ref.MaxFlow(0, net.sink())
		}
		got := g.MaxFlowParallel(0, net.sink(), 2+i%7)
		if !Close(got, want, DiffTolerance) {
			t.Fatalf("round %d: pooled parallel %v vs sequential %v", i, got, want)
		}
		ReleaseGraph(g)
	}
}

// TestParallelRequiresFlowFree pins the precondition: solving on a graph
// that already carries flow is an invariant violation, not a wrong
// answer.
func TestParallelRequiresFlowFree(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 2)
	g.MaxFlow(0, 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected InvariantViolation panic")
		}
		if _, ok := r.(*InvariantViolation); !ok {
			t.Fatalf("expected *InvariantViolation, got %T: %v", r, r)
		}
	}()
	g.MaxFlowParallel(0, 2, 2)
}

// TestParallelAfterResetFlow checks the supported way to re-solve: clear
// the flow, solve again, same value.
func TestParallelAfterResetFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(4000))
	net := randomNet(rng)
	g := NewGraph(net.vertices())
	net.buildFloat(g)
	first := g.MaxFlowParallel(0, net.sink(), 4)
	g.ResetFlow()
	second := g.MaxFlowParallel(0, net.sink(), 4)
	if !Close(first, second, DiffTolerance) {
		t.Fatalf("re-solve after ResetFlow: %v then %v", first, second)
	}
}
