package flow

import (
	"encoding/binary"
	"math/big"
	"math/rand"
	"testing"
)

// layeredNet is a random instance of the scheduling network shape used by
// the optimal solver: source -> jobs -> intervals -> sink. Capacities are
// rationals (k/denom) so the float and exact graphs are built from the
// same numbers.
type layeredNet struct {
	nJobs, nIvs int
	srcCap      []int64 // per job, in units of 1/denom
	sinkCap     []int64 // per interval
	midCap      []int64 // per (job, interval) pair, 0 = inactive
	denom       int64
}

func (net *layeredNet) vertices() int { return 2 + net.nJobs + net.nIvs }

func (net *layeredNet) sink() int { return 1 + net.nJobs + net.nIvs }

func randomNet(rng *rand.Rand) *layeredNet {
	net := &layeredNet{
		nJobs: 1 + rng.Intn(8),
		nIvs:  1 + rng.Intn(6),
		denom: int64(1 + rng.Intn(7)),
	}
	for k := 0; k < net.nJobs; k++ {
		net.srcCap = append(net.srcCap, int64(rng.Intn(40)))
	}
	for j := 0; j < net.nIvs; j++ {
		net.sinkCap = append(net.sinkCap, int64(rng.Intn(60)))
	}
	for k := 0; k < net.nJobs; k++ {
		active := false
		for j := 0; j < net.nIvs; j++ {
			if rng.Intn(3) > 0 {
				net.midCap = append(net.midCap, int64(1+rng.Intn(30)))
				active = true
			} else {
				net.midCap = append(net.midCap, 0)
			}
		}
		if !active { // keep every job connected so drains always terminate
			net.midCap[k*net.nIvs+rng.Intn(net.nIvs)] = int64(1 + rng.Intn(30))
		}
	}
	return net
}

func (net *layeredNet) buildFloat(g *Graph) (src, sink []EdgeID) {
	d := float64(net.denom)
	for k := 0; k < net.nJobs; k++ {
		src = append(src, g.AddEdge(0, 1+k, float64(net.srcCap[k])/d))
	}
	for k := 0; k < net.nJobs; k++ {
		for j := 0; j < net.nIvs; j++ {
			if c := net.midCap[k*net.nIvs+j]; c > 0 {
				g.AddEdge(1+k, 1+net.nJobs+j, float64(c)/d)
			}
		}
	}
	for j := 0; j < net.nIvs; j++ {
		sink = append(sink, g.AddEdge(1+net.nJobs+j, net.sink(), float64(net.sinkCap[j])/d))
	}
	return src, sink
}

func (net *layeredNet) buildRat(g *RatGraph) (src, sink []EdgeID) {
	c := new(big.Rat)
	for k := 0; k < net.nJobs; k++ {
		c.SetFrac64(net.srcCap[k], net.denom)
		src = append(src, g.AddEdge(0, 1+k, c))
	}
	for k := 0; k < net.nJobs; k++ {
		for j := 0; j < net.nIvs; j++ {
			if mc := net.midCap[k*net.nIvs+j]; mc > 0 {
				c.SetFrac64(mc, net.denom)
				g.AddEdge(1+k, 1+net.nJobs+j, c)
			}
		}
	}
	for j := 0; j < net.nIvs; j++ {
		c.SetFrac64(net.sinkCap[j], net.denom)
		sink = append(sink, g.AddEdge(1+net.nJobs+j, net.sink(), c))
	}
	return src, sink
}

func (net *layeredNet) buildPR(g *PRGraph) {
	d := float64(net.denom)
	for k := 0; k < net.nJobs; k++ {
		g.AddEdge(0, 1+k, float64(net.srcCap[k])/d)
	}
	for k := 0; k < net.nJobs; k++ {
		for j := 0; j < net.nIvs; j++ {
			if c := net.midCap[k*net.nIvs+j]; c > 0 {
				g.AddEdge(1+k, 1+net.nJobs+j, float64(c)/d)
			}
		}
	}
	for j := 0; j < net.nIvs; j++ {
		g.AddEdge(1+net.nJobs+j, net.sink(), float64(net.sinkCap[j])/d)
	}
}

// checkDifferential asserts that Dinic, push-relabel and the exact
// rational solver agree on a random net, and that the incremental
// warm-start path (remove a job, shrink a sink, rescale sources,
// re-augment) matches a cold solve built at the final capacities.
func checkDifferential(t *testing.T, rng *rand.Rand) {
	t.Helper()
	net := randomNet(rng)
	s, sink := 0, net.sink()

	dg := NewGraph(net.vertices())
	net.buildFloat(dg)
	pg := NewPRGraph(net.vertices())
	net.buildPR(pg)
	rg := NewRatGraph(net.vertices())
	net.buildRat(rg)

	fv := dg.MaxFlow(s, sink)
	pv := pg.MaxFlow(s, sink)
	rv, _ := rg.MaxFlow(s, sink).Float64()

	if !Close(fv, rv, SolveTolerance) {
		t.Fatalf("dinic %v vs exact %v (net %+v)", fv, rv, net)
	}
	if !Close(pv, rv, SolveTolerance) {
		t.Fatalf("push-relabel %v vs exact %v (net %+v)", pv, rv, net)
	}
	if err := dg.CheckConservation(s, sink); err != nil {
		t.Fatalf("dinic conservation: %v", err)
	}

	// The mutation sequence the optimal solver applies per rejection:
	// remove one job, shrink one sink capacity, rescale the sources.
	kill := rng.Intn(net.nJobs)
	shrink := rng.Intn(net.nIvs)
	factorNum := int64(1 + rng.Intn(3)) // sources scale by factorDen/factorNum
	factorDen := int64(1 + rng.Intn(3))

	// Warm float graph: solve, mutate incrementally, re-augment.
	wg := NewGraph(net.vertices())
	fsrc, fsink := net.buildFloat(wg)
	wg.MaxFlow(s, sink)
	wg.RemoveJobEdge(fsrc[kill])
	wg.SetCapacity(fsink[shrink], float64(net.sinkCap[shrink]/2)/float64(net.denom))
	wg.ScaleSourceCaps(float64(factorDen) / float64(factorNum))
	wg.MaxFlow(s, sink)
	warmVal := 0.0
	for k, id := range fsrc {
		if k != kill {
			warmVal += wg.Flow(id)
		}
	}
	if err := wg.CheckConservation(s, sink); err != nil {
		t.Fatalf("warm conservation: %v", err)
	}

	// Warm exact graph with the same mutation sequence.
	wr := NewRatGraph(net.vertices())
	rsrc, rsink := net.buildRat(wr)
	wr.MaxFlow(s, sink)
	wr.RemoveJobEdge(rsrc[kill])
	c := new(big.Rat).SetFrac64(net.sinkCap[shrink]/2, net.denom)
	wr.SetCapacity(rsink[shrink], c)
	wr.ScaleSourceCaps(new(big.Rat).SetFrac64(factorDen, factorNum))
	wr.MaxFlow(s, sink)
	warmRat := new(big.Rat)
	for k, id := range rsrc {
		if k != kill {
			warmRat.Add(warmRat, wr.Flow(id))
		}
	}

	// Cold graphs built directly at the final capacities.
	final := &layeredNet{
		nJobs:   net.nJobs,
		nIvs:    net.nIvs,
		srcCap:  append([]int64(nil), net.srcCap...),
		sinkCap: append([]int64(nil), net.sinkCap...),
		midCap:  net.midCap,
		denom:   net.denom * factorNum,
	}
	for k := range final.srcCap {
		final.srcCap[k] *= factorDen
	}
	final.srcCap[kill] = 0
	final.sinkCap[shrink] = net.sinkCap[shrink] / 2 * factorNum
	// mid and sink caps keep the old denominator: scale numerators.
	for j := range final.sinkCap {
		if j != shrink {
			final.sinkCap[j] = net.sinkCap[j] * factorNum
		}
	}
	final.midCap = append([]int64(nil), net.midCap...)
	for i := range final.midCap {
		final.midCap[i] *= factorNum
	}

	cr := NewRatGraph(final.vertices())
	csrc, _ := final.buildRat(cr)
	cr.MaxFlow(s, sink)
	coldRat := new(big.Rat)
	for k, id := range csrc {
		if k != kill {
			coldRat.Add(coldRat, cr.Flow(id))
		}
	}
	if warmRat.Cmp(coldRat) != 0 {
		t.Fatalf("exact warm %v != cold %v (net %+v kill=%d shrink=%d)",
			warmRat, coldRat, net, kill, shrink)
	}
	cv, _ := coldRat.Float64()
	if !Close(warmVal, cv, SolveTolerance) {
		t.Fatalf("float warm %v vs exact cold %v (net %+v)", warmVal, cv, net)
	}

	// Canonical re-solve: clearing the warm flow and re-augmenting from
	// zero must reproduce the cold per-edge flows exactly — the removed
	// job's zero-capacity edges are invisible to the search, so the two
	// graphs explore identical residual networks.
	wr.ResetFlow()
	wr.MaxFlow(s, sink)
	for k, id := range rsrc {
		if k == kill {
			continue
		}
		if wr.Flow(id).Cmp(cr.Flow(csrc[k])) != 0 {
			t.Fatalf("canonical re-solve: source edge %d flow %v != cold %v",
				k, wr.Flow(id), cr.Flow(csrc[k]))
		}
	}
}

func TestDifferentialSolvers(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		checkDifferential(t, rng)
	}
}

func FuzzDifferentialSolvers(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], seed*2654435761)
		f.Add(b[:])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var b [8]byte
		copy(b[:], data)
		rng := rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(b[:]))))
		checkDifferential(t, rng)
	})
}
