// Package flow provides the maximum-flow substrate used by the
// combinatorial offline speed-scaling algorithm (Section 2 of the paper).
//
// Three solvers are provided:
//
//   - Graph: Dinic's algorithm over float64 capacities with a configurable
//     tolerance for residual-capacity comparisons. This is the fast path.
//   - RatGraph (rational.go): the same algorithm over exact math/big.Rat
//     arithmetic, used to re-verify phase decisions on rational inputs.
//   - PRGraph (pushrelabel.go): push-relabel, the E11 ablation partner.
//
// All three store the residual network as a single flat edge array with a
// CSR-style adjacency index built lazily on first solve: the forward edge
// created by AddEdge sits at an even index i, its reverse at i^1, and a
// vertex's incident edges occupy one contiguous adjOff[v]..adjOff[v+1]
// window of the index. The flat layout keeps the Dinic inner loops on two
// contiguous allocations (cache locality) and makes graphs resettable
// arenas: Reset reuses every backing array, and AcquireGraph/ReleaseGraph
// (arena.go) recycle whole graphs across solves.
//
// Graph and RatGraph additionally support warm-started incremental
// re-solving, the engine behind the round loop of internal/opt:
// SetCapacity, ScaleSourceCaps and RemoveJobEdge mutate capacities while
// keeping the current flow feasible (draining excess flow along
// flow-carrying paths when a capacity drops below it), so the next
// MaxFlow call re-augments from the existing flow instead of restarting
// at zero. See DESIGN.md for the drain/re-augment invariant.
package flow

import (
	"fmt"
	"math"
)

// The package's tolerance ladder. Every float comparison in the solver
// stack derives from DefaultTolerance so the layers cannot silently
// disagree on what "equal" means: each rung is three decades looser than
// the one below, matching how error accumulates moving up the stack
// (per-edge residual arithmetic -> whole-solve acceptance tests ->
// cross-engine differential comparisons).
const (
	// DefaultTolerance is the residual-capacity threshold below which an
	// edge is considered saturated by the float64 solver, relative to the
	// largest capacity in the graph.
	DefaultTolerance = 1e-12

	// SolveTolerance is the relative slack of whole-solve decisions built
	// on top of the edge arithmetic: phase-acceptance tests in
	// internal/opt, feasibility probes, volume-depletion thresholds.
	SolveTolerance = DefaultTolerance * 1e3

	// DiffTolerance is the comparison slack for cross-engine checks
	// (float vs exact, warm vs cold, Dinic vs push-relabel): loose enough
	// to absorb legitimately different rounding paths, tight enough to
	// catch real disagreement.
	DiffTolerance = SolveTolerance * 1e3
)

// Close reports whether a and b agree to the given tolerance, relative
// to their magnitude: |a-b| <= tol * (1 + max(|a|, |b|)). It is the
// scale-aware comparison the differential tests and the solver's
// borderline-feasibility checks share, so the two cannot drift apart.
func Close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// InvariantViolation is the panic payload of the solver's internal
// invariant checks (drain convergence, cancel accounting, derived
// capacities staying finite). Panicking — instead of returning an error
// through a dozen internal frames that have no way to continue — keeps
// the hot paths clean; the solver driver (internal/opt.runPhases)
// recovers the payload at its boundary and converts it into a typed
// error. Numeric distinguishes invariants that can fail through float64
// precision loss alone (retrying cold or in exact arithmetic may
// succeed) from true programmer-bug invariants.
type InvariantViolation struct {
	Numeric bool   // float precision failure, not necessarily a bug
	Msg     string // what was violated
}

func (v *InvariantViolation) Error() string { return "flow: " + v.Msg }

// violate panics with an InvariantViolation.
func violate(numeric bool, msg string) {
	panic(&InvariantViolation{Numeric: numeric, Msg: msg})
}

// edge is one directed arc of the flat residual-edge array. Edges live in
// pairs: the forward edge added by AddEdge at an even index i, its
// reverse at i^1, so the partner is one XOR away and needs no pointer.
type edge struct {
	from, to int32
	cap      float64 // remaining (residual) capacity
	orig     float64 // original capacity (0 for reverse edges)
}

// DinicOps counts the elementary operations of a Dinic max-flow run,
// for the observability layer (internal/obs) and the E11 ablation. The
// counts accumulate across MaxFlow calls on the same graph and reset
// with Reset.
type DinicOps struct {
	BFSPasses    int64 // level-graph constructions
	AugPaths     int64 // augmenting paths pushed
	EdgesScanned int64 // residual edges examined in BFS and DFS
}

// Add accumulates o into d (for aggregating over many solves).
func (d *DinicOps) Add(o DinicOps) {
	d.BFSPasses += o.BFSPasses
	d.AugPaths += o.AugPaths
	d.EdgesScanned += o.EdgesScanned
}

// Sub returns d minus o, for per-solve deltas on a reused graph.
func (d DinicOps) Sub(o DinicOps) DinicOps {
	return DinicOps{
		BFSPasses:    d.BFSPasses - o.BFSPasses,
		AugPaths:     d.AugPaths - o.AugPaths,
		EdgesScanned: d.EdgesScanned - o.EdgesScanned,
	}
}

// Graph is a flow network over float64 capacities. The zero value is an
// unusable arena; construct with NewGraph, or call Reset to (re)shape an
// existing graph without allocating.
type Graph struct {
	edges []edge
	nv    int

	// CSR adjacency over the flat edge array, rebuilt lazily after
	// structural changes (AddEdge/Reset): adjOff[v]..adjOff[v+1] indexes
	// adjLst, which lists the edges leaving v in insertion order.
	adjOff []int32
	adjLst []int32
	csrOK  bool

	maxCap   float64
	maxCapOK bool
	tol      float64 // absolute tolerance; derived lazily from maxCap
	ops      DinicOps

	// Endpoints of the last MaxFlow call; the incremental mutators need
	// them to know where drained flow cancels to.
	lastS, lastT int
	haveST       bool

	// Reusable scratch for MaxFlow, CoReachable and the drain walks.
	// upPath is owned by flowPathUp so the up- and down-walks of one
	// drain can coexist (flowPathDown owns queue).
	level, iter, queue []int32
	upPath             []int32
	mark               []bool

	// Parallel push-relabel state (parallel.go): scratch arenas are
	// allocated lazily on the first MaxFlowParallel call and reused —
	// sequential users never pay for them.
	parOps ParOps
	par    *parScratch
}

// Ops returns the operation counts accumulated by MaxFlow since the last
// Reset.
func (g *Graph) Ops() DinicOps { return g.ops }

// NewGraph returns an empty flow network with n vertices numbered 0..n-1.
func NewGraph(n int) *Graph {
	g := &Graph{}
	g.Reset(n)
	return g
}

// Reset re-initializes the graph to n empty vertices, reusing all backing
// arrays. It is the arena entry point: a Reset graph is indistinguishable
// from a NewGraph one, but steady-state reuse allocates nothing. That
// indistinguishability is load-bearing for the graph pool (arena.go): a
// SetTolerance override and the solved flag guarding the incremental
// mutators are both cleared here, so a pooled graph cannot leak either
// into its next life.
func (g *Graph) Reset(n int) {
	if n < 2 {
		panic(fmt.Sprintf("flow: graph needs >= 2 vertices, got %d", n))
	}
	g.nv = n
	g.edges = g.edges[:0]
	g.csrOK = false
	g.maxCap = 0
	g.maxCapOK = true
	g.tol = 0
	g.ops = DinicOps{}
	g.parOps = ParOps{}
	g.haveST = false
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.nv }

// Grow pre-sizes the edge arena, the CSR index and the per-vertex
// scratch for a graph that is about to receive up to ne AddEdge calls
// over nv vertices. Callers that know the final shape in advance — the
// contracted feasibility probes, whose node and edge counts are fixed
// across an entire cap search — use it so that no AddEdge or build call
// reallocates mid-construction, regardless of how small the pooled
// graph they drew happened to be. Growing never discards edges already
// added; a plain Reset+AddEdge sequence behaves identically, just with
// amortized growth instead.
func (g *Graph) Grow(nv, ne int) {
	if cap(g.edges) < 2*ne {
		edges := make([]edge, len(g.edges), 2*ne)
		copy(edges, g.edges)
		g.edges = edges
	}
	if cap(g.adjLst) < 2*ne {
		lst := make([]int32, len(g.adjLst), 2*ne)
		copy(lst, g.adjLst)
		g.adjLst = lst
	}
	if n := max(nv, g.nv); n > 0 {
		if cap(g.adjOff) < n+1 {
			off := make([]int32, len(g.adjOff), n+1)
			copy(off, g.adjOff)
			g.adjOff = off
		}
		g.ensureScratch(n)
	}
}

// EdgeCount returns the number of forward edges added so far — the size
// measure the solver's parallel-dispatch threshold is expressed in.
func (g *Graph) EdgeCount() int { return len(g.edges) / 2 }

// SetTolerance overrides the absolute saturation tolerance. A zero value
// restores the default (DefaultTolerance times the largest capacity).
func (g *Graph) SetTolerance(tol float64) { g.tol = tol }

func (g *Graph) maxCapValue() float64 {
	if !g.maxCapOK {
		m := 0.0
		for i := 0; i < len(g.edges); i += 2 {
			if c := g.edges[i].orig; c > m {
				m = c
			}
		}
		g.maxCap = m
		g.maxCapOK = true
	}
	return g.maxCap
}

func (g *Graph) tolerance() float64 {
	if g.tol > 0 {
		return g.tol
	}
	return DefaultTolerance * math.Max(1, g.maxCapValue())
}

// EdgeID identifies an edge added by AddEdge: the (even) index of its
// forward edge in the flat edge array.
type EdgeID int32

// AddEdge adds a directed edge from -> to with the given capacity and
// returns its identifier. Capacities must be finite and non-negative.
func (g *Graph) AddEdge(from, to int, capacity float64) EdgeID {
	if from < 0 || from >= g.nv || to < 0 || to >= g.nv {
		panic(fmt.Sprintf("flow: edge %d->%d out of range [0,%d)", from, to, g.nv))
	}
	if from == to {
		panic("flow: self-loop")
	}
	if math.IsNaN(capacity) || math.IsInf(capacity, 0) || capacity < 0 {
		// Non-finite capacities reach here only through float64 overflow
		// or underflow in the caller's derived values (w/s with an
		// underflowed speed, overflowed m_j|I_j|); classify as numeric so
		// the solver's fallback ladder retries in exact arithmetic.
		violate(true, fmt.Sprintf("invalid capacity %v", capacity))
	}
	if g.maxCapOK && capacity > g.maxCap {
		g.maxCap = capacity
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges,
		edge{from: int32(from), to: int32(to), cap: capacity, orig: capacity},
		edge{from: int32(to), to: int32(from), cap: 0, orig: 0},
	)
	g.csrOK = false
	return id
}

// fwd returns the forward edge for id, validating it.
func (g *Graph) fwd(id EdgeID) *edge {
	if id < 0 || int(id) >= len(g.edges) || id&1 != 0 {
		panic(fmt.Sprintf("flow: invalid edge id %d", id))
	}
	return &g.edges[id]
}

// Flow returns the amount of flow currently routed along the edge.
func (g *Graph) Flow(id EdgeID) float64 {
	e := g.fwd(id)
	return e.orig - e.cap
}

// Capacity returns the original capacity of the edge.
func (g *Graph) Capacity(id EdgeID) float64 {
	return g.fwd(id).orig
}

// Saturated reports whether the edge carries (numerically) its full
// capacity.
func (g *Graph) Saturated(id EdgeID) bool {
	return g.fwd(id).cap <= g.tolerance()
}

// build (re)constructs the CSR adjacency index after structural changes.
func (g *Graph) build() {
	if g.csrOK {
		return
	}
	n := g.nv
	g.adjOff = growInt32(g.adjOff, n+1)
	g.adjLst = growInt32(g.adjLst, len(g.edges))
	g.ensureScratch(n)
	// iter is free to clobber as cursor scratch: MaxFlow re-fills it.
	buildCSR(n, len(g.edges), func(i int) int32 { return g.edges[i].from }, g.adjOff, g.adjLst, g.iter)
	g.csrOK = true
}

func (g *Graph) ensureScratch(n int) {
	g.level = growInt32(g.level, n)
	g.iter = growInt32(g.iter, n)
	if cap(g.queue) < n {
		g.queue = make([]int32, 0, n)
	}
	if cap(g.mark) < n {
		g.mark = make([]bool, n)
	}
	g.mark = g.mark[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// MaxFlow augments the current flow to a maximum s-t flow with Dinic's
// algorithm and returns the amount of flow added by this call. On a fresh
// (or ResetFlow) graph that is the max-flow value; after incremental
// capacity updates it is the re-augmentation delta, so warm restarts
// continue from the existing feasible flow instead of zero.
func (g *Graph) MaxFlow(s, t int) float64 {
	return g.maxFlow(s, t, math.Inf(1))
}

// MaxFlowAtLeast augments like MaxFlow but stops as soon as the flow
// added by this call reaches target, skipping the final level-graph
// construction that proves maximality (and any remaining augmentation).
// It exists for threshold tests — a feasibility probe only needs to know
// whether the max flow reaches the demand, not its exact value — where
// the saved proof pass is a whole BFS over the network per probe. When
// the returned value is below target it IS the exact augmentation
// maximum; when it reaches target the flow may not be maximum, so the
// incremental mutators and CoReachable must not be used afterwards.
func (g *Graph) MaxFlowAtLeast(s, t int, target float64) float64 {
	return g.maxFlow(s, t, target)
}

func (g *Graph) maxFlow(s, t int, target float64) float64 {
	if s == t {
		panic("flow: source equals sink")
	}
	g.build()
	g.ensureScratch(g.nv)
	g.lastS, g.lastT, g.haveST = s, t, true
	tol := g.tolerance()
	n := g.nv
	level, iter := g.level, g.iter

	// Local op tallies, flushed to g.ops once at the end so the inner
	// loops touch only registers.
	var bfsPasses, augPaths, edgesScanned int64

	bfs := func() bool {
		bfsPasses++
		for i := 0; i < n; i++ {
			level[i] = -1
		}
		level[s] = 0
		queue := append(g.queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			edgesScanned += int64(g.adjOff[v+1] - g.adjOff[v])
			for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
				e := &g.edges[g.adjLst[i]]
				if e.cap > tol && level[e.to] < 0 {
					level[e.to] = level[v] + 1
					queue = append(queue, e.to)
				}
			}
		}
		g.queue = queue[:0]
		return level[t] >= 0
	}

	var dfs func(v int32, f float64) float64
	dfs = func(v int32, f float64) float64 {
		if int(v) == t {
			return f
		}
		for ; iter[v] < g.adjOff[v+1]; iter[v]++ {
			edgesScanned++
			eid := g.adjLst[iter[v]]
			e := &g.edges[eid]
			if e.cap > tol && level[v] < level[e.to] {
				d := dfs(e.to, math.Min(f, e.cap))
				if d > 0 {
					e.cap -= d
					g.edges[eid^1].cap += d
					return d
				}
			}
		}
		return 0
	}

	var total float64
	for total < target && bfs() {
		copy(iter[:n], g.adjOff[:n])
		for total < target {
			f := dfs(int32(s), math.Inf(1))
			if f <= 0 {
				break
			}
			augPaths++
			total += f
		}
	}
	g.ops.Add(DinicOps{BFSPasses: bfsPasses, AugPaths: augPaths, EdgesScanned: edgesScanned})
	return total
}

// OutFlow returns the total flow leaving vertex v on forward edges.
func (g *Graph) OutFlow(v int) float64 {
	g.build()
	var f float64
	for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
		e := &g.edges[g.adjLst[i]]
		if e.orig > 0 {
			f += e.orig - e.cap
		}
	}
	return f
}

// CheckConservation verifies flow conservation at every vertex except s
// and t, within the graph tolerance scaled by the vertex degree. It
// returns the first violation found.
func (g *Graph) CheckConservation(s, t int) error {
	g.build()
	tol := g.tolerance()
	for v := 0; v < g.nv; v++ {
		if v == s || v == t {
			continue
		}
		var net float64
		deg := 0
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			e := &g.edges[g.adjLst[i]]
			if e.orig > 0 { // forward edge leaving v
				net -= e.orig - e.cap
				deg++
			} else { // reverse edge: its flow equals inflow into v
				net += e.cap
				deg++
			}
		}
		if math.Abs(net) > tol*float64(deg+1)*10 {
			return fmt.Errorf("flow: conservation violated at vertex %d by %v", v, net)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Incremental warm-start API.
//
// The mutators below keep the current flow feasible under capacity
// changes — when a capacity drops below the flow routed over its edge,
// the excess is canceled along flow-carrying paths back to the source and
// forward to the sink of the last MaxFlow call. A feasible flow can
// always be augmented to a maximum one, so the next MaxFlow call
// re-augments from the preserved flow instead of restarting Dinic at
// zero. Draining requires the positive-flow subgraph to be acyclic,
// which holds for every network this repository builds (layered DAGs).
// ---------------------------------------------------------------------------

// ResetFlow removes all flow, restoring every residual capacity to the
// edge's original capacity. Structure (and the CSR index) is untouched,
// so a following MaxFlow run is bit-identical to a run on a freshly
// built copy of the graph.
func (g *Graph) ResetFlow() {
	for i := range g.edges {
		g.edges[i].cap = g.edges[i].orig
	}
}

func (g *Graph) stEndpoints() (int, int) {
	if !g.haveST {
		panic("flow: incremental mutation before any MaxFlow call")
	}
	return g.lastS, g.lastT
}

// SetCapacity replaces the capacity of edge id. When the flow currently
// routed over the edge exceeds the new capacity, the excess is first
// drained (see the package comment on the warm-start invariant); the
// amount drained is returned.
func (g *Graph) SetCapacity(id EdgeID, c float64) float64 {
	if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
		violate(true, fmt.Sprintf("invalid capacity %v", c))
	}
	e := g.fwd(id)
	var drained float64
	if e.orig-e.cap > c {
		drained = g.reduceEdgeFlowTo(int32(id), c)
	}
	old := e.orig
	flow := e.orig - e.cap
	e.orig = c
	e.cap = c - flow
	if e.cap < 0 {
		e.cap = 0
	}
	g.noteCapChange(old, c)
	return drained
}

// noteCapChange keeps the cached maximum capacity exact across a
// capacity update old -> new: raising past the max moves it, shrinking
// the current maximum edge forces a rescan, and every other update
// leaves the maximum untouched. Keeping the cache exact (not merely an
// upper bound) matters because the derived tolerance feeds MaxFlow's
// residual tests: a warm graph and a cold rebuild at the same
// capacities must compute identical tolerances.
func (g *Graph) noteCapChange(old, c float64) {
	if !g.maxCapOK {
		return
	}
	switch {
	case c >= g.maxCap:
		g.maxCap = c
	case old >= g.maxCap:
		g.maxCapOK = false
	}
}

// ScaleSourceCaps multiplies the capacity of every forward edge leaving
// the source of the last MaxFlow call by factor, draining flow that no
// longer fits. It returns the total flow drained. The round loop of
// internal/opt uses this rescaling when the conjectured phase speed
// changes: the existing flow stays feasible (only shrunken edges drain),
// so the warm flow survives the rescale.
func (g *Graph) ScaleSourceCaps(factor float64) float64 {
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor < 0 {
		violate(true, fmt.Sprintf("invalid scale factor %v", factor))
	}
	s, _ := g.stEndpoints()
	g.build()
	var drained float64
	for i := g.adjOff[s]; i < g.adjOff[s+1]; i++ {
		id := g.adjLst[i]
		if id&1 != 0 {
			continue // reverse edge into the source
		}
		drained += g.SetCapacity(EdgeID(id), g.edges[id].orig*factor)
	}
	return drained
}

// RemoveJobEdge takes the vertex at the head of source edge id out of the
// network: every unit of flow routed through that vertex is drained by
// walking its outgoing positive-flow edges and canceling them along
// residual paths back to the source (and on to the sink), and then the
// capacities of the vertex's forward edges — id itself and all its
// out-edges — are zeroed so re-augmentation can never route through it
// again. It returns the total flow drained. The name reflects the one
// caller shape: in G(J, m, s) the head of a source edge is a job vertex,
// and removal expels the job from the conjectured phase set.
func (g *Graph) RemoveJobEdge(id EdgeID) float64 {
	g.stEndpoints()
	g.build()
	e := g.fwd(id)
	v := e.to
	tol := g.tolerance()
	var drained float64
	for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
		out := g.adjLst[i]
		if out&1 != 0 {
			continue
		}
		oe := &g.edges[out]
		// Flow at or below the tolerance is rounding dust left behind by
		// Dinic's reverse-edge cancellations; zeroing the capacities
		// below discards it without a drain walk.
		if oe.orig-oe.cap > tol {
			drained += g.reduceEdgeFlowTo(out, 0)
		}
		g.noteCapChange(oe.orig, 0)
		oe.orig = 0
		oe.cap = 0
		g.edges[out^1].cap = 0
	}
	g.noteCapChange(e.orig, 0)
	e.orig = 0
	e.cap = 0
	g.edges[id^1].cap = 0
	return drained
}

// reduceEdgeFlowTo cancels flow on forward edge eid until it is at most
// target, rerouting nothing: each canceled unit is removed along one
// flow-carrying path source -> ... -> eid -> ... -> sink, so the
// remaining flow is again a feasible s-t flow of smaller value. Returns
// the amount canceled.
func (g *Graph) reduceEdgeFlowTo(eid int32, target float64) float64 {
	s, t := g.stEndpoints()
	g.build()
	tol := g.tolerance()
	e := &g.edges[eid]
	var removed float64
	for iter := 0; e.orig-e.cap > target+tol; iter++ {
		if iter > len(g.edges)+2 {
			violate(true, "drain failed to converge (cyclic flow?)")
		}
		d := (e.orig - e.cap) - target
		// Walk flow-carrying edges from the head down to t and from the
		// tail up to s; the cancelable amount is the path bottleneck.
		// Edges at or below the tolerance carry only rounding dust and
		// are not followed — each drained unit travels a path of real
		// flow, so the bottleneck stays strictly positive.
		down, ok := g.flowPathDown(int(e.to), t, tol)
		if !ok {
			violate(true, "no flow-carrying path to sink while draining")
		}
		up, ok := g.flowPathUp(int(e.from), s, tol)
		if !ok {
			violate(true, "no flow-carrying path to source while draining")
		}
		for _, pid := range down {
			pe := &g.edges[pid]
			d = math.Min(d, pe.orig-pe.cap)
		}
		for _, pid := range up {
			pe := &g.edges[pid]
			d = math.Min(d, pe.orig-pe.cap)
		}
		if d <= 0 {
			// Residual dust below fp resolution: snap the edge to target.
			e.cap = e.orig - target
			g.edges[eid^1].cap = target
			break
		}
		g.cancel(eid, d)
		for _, pid := range down {
			g.cancel(pid, d)
		}
		for _, pid := range up {
			g.cancel(pid, d)
		}
		removed += d
	}
	return removed
}

// cancel removes d units of flow from forward edge id, snapping exactly
// to zero flow when d equals the current flow.
func (g *Graph) cancel(id int32, d float64) {
	e := &g.edges[id]
	nf := (e.orig - e.cap) - d
	if nf < 0 {
		nf = 0
	}
	e.cap = e.orig - nf
	g.edges[id^1].cap = nf
}

// flowPathDown returns forward-edge ids of a positive-flow path from v to
// t (empty when v == t). The walk follows the first flow-carrying
// out-edge at each step; by conservation it cannot get stuck before t on
// an acyclic flow.
func (g *Graph) flowPathDown(v, t int, tol float64) ([]int32, bool) {
	path := g.queue[:0]
	for steps := 0; v != t; steps++ {
		if steps > g.nv {
			return nil, false
		}
		found := false
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			id := g.adjLst[i]
			if id&1 != 0 {
				continue
			}
			e := &g.edges[id]
			if e.orig-e.cap > tol {
				path = append(path, id)
				v = int(e.to)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	g.queue = path[:0]
	return path, true
}

// flowPathUp returns forward-edge ids of a positive-flow path from s to
// v, found by walking flow-carrying in-edges backward from v. The
// returned slice is the graph's upPath scratch, valid until the next
// call.
func (g *Graph) flowPathUp(v, s int, tol float64) ([]int32, bool) {
	path := g.upPath[:0]
	for steps := 0; v != s; steps++ {
		if steps > g.nv {
			return nil, false
		}
		found := false
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			id := g.adjLst[i]
			if id&1 == 0 {
				continue // forward edge leaving v
			}
			fe := &g.edges[id^1] // forward partner: an edge into v
			if fe.orig-fe.cap > tol {
				path = append(path, id^1)
				v = int(fe.from)
				found = true
				break
			}
		}
		if !found {
			g.upPath = path[:0]
			return nil, false
		}
	}
	g.upPath = path[:0]
	return path, true
}

// CoReachable reports, for every vertex, whether the sink t is reachable
// from it in the residual graph of the current flow. For a maximum flow
// this set is the sink side of the maximal minimum cut, which is the
// same for every maximum flow of the network — internal/opt uses it to
// make flow-invariant (hence warm/cold-identical) job-removal decisions.
// The returned slice is scratch owned by the graph, valid until the next
// call into it.
func (g *Graph) CoReachable(t int) []bool {
	g.build()
	g.ensureScratch(g.nv)
	mark := g.mark
	for i := range mark {
		mark[i] = false
	}
	tol := g.tolerance()
	mark[t] = true
	queue := append(g.queue[:0], int32(t))
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			id := g.adjLst[i]
			// The partner edge runs e.to -> v; it is a residual edge of
			// the reversed direction when its capacity remains positive.
			if g.edges[id^1].cap > tol {
				u := g.edges[id].to
				if !mark[u] {
					mark[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	g.queue = queue[:0]
	return mark
}
