// Package flow provides the maximum-flow substrate used by the
// combinatorial offline speed-scaling algorithm (Section 2 of the paper).
//
// Two solvers are provided:
//
//   - Graph: Dinic's algorithm over float64 capacities with a configurable
//     tolerance for residual-capacity comparisons. This is the fast path.
//   - RatGraph (rational.go): the same algorithm over exact math/big.Rat
//     arithmetic, used to re-verify phase decisions on rational inputs.
//
// Dinic's algorithm runs in O(V^2 E) in general and is far faster on the
// shallow 4-layer networks G(J, m, s) built by the scheduler.
package flow

import (
	"fmt"
	"math"
)

// DefaultTolerance is the residual-capacity threshold below which an edge
// is considered saturated by the float64 solver, relative to the largest
// capacity in the graph.
const DefaultTolerance = 1e-12

type edge struct {
	to   int
	cap  float64 // remaining (residual) capacity
	orig float64 // original capacity (0 for reverse edges)
	rev  int     // index of the reverse edge in adj[to]
}

// DinicOps counts the elementary operations of a Dinic max-flow run,
// for the observability layer (internal/obs) and the E11 ablation. The
// counts accumulate across MaxFlow calls on the same graph.
type DinicOps struct {
	BFSPasses    int64 // level-graph constructions
	AugPaths     int64 // augmenting paths pushed
	EdgesScanned int64 // residual edges examined in BFS and DFS
}

// Add accumulates o into d (for aggregating over many solves).
func (d *DinicOps) Add(o DinicOps) {
	d.BFSPasses += o.BFSPasses
	d.AugPaths += o.AugPaths
	d.EdgesScanned += o.EdgesScanned
}

// Graph is a flow network over float64 capacities. The zero value is not
// usable; construct with NewGraph.
type Graph struct {
	adj    [][]edge
	maxCap float64
	tol    float64 // absolute tolerance; derived lazily from maxCap
	ops    DinicOps
}

// Ops returns the operation counts accumulated by MaxFlow so far.
func (g *Graph) Ops() DinicOps { return g.ops }

// NewGraph returns an empty flow network with n vertices numbered 0..n-1.
func NewGraph(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("flow: graph needs >= 2 vertices, got %d", n))
	}
	return &Graph{adj: make([][]edge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// SetTolerance overrides the absolute saturation tolerance. A zero value
// restores the default (DefaultTolerance times the largest capacity).
func (g *Graph) SetTolerance(tol float64) { g.tol = tol }

func (g *Graph) tolerance() float64 {
	if g.tol > 0 {
		return g.tol
	}
	return DefaultTolerance * math.Max(1, g.maxCap)
}

// EdgeID identifies an edge added by AddEdge, for later flow queries.
type EdgeID struct {
	from, idx int
}

// AddEdge adds a directed edge from -> to with the given capacity and
// returns its identifier. Capacities must be finite and non-negative.
func (g *Graph) AddEdge(from, to int, capacity float64) EdgeID {
	if from < 0 || from >= len(g.adj) || to < 0 || to >= len(g.adj) {
		panic(fmt.Sprintf("flow: edge %d->%d out of range [0,%d)", from, to, len(g.adj)))
	}
	if from == to {
		panic("flow: self-loop")
	}
	if math.IsNaN(capacity) || math.IsInf(capacity, 0) || capacity < 0 {
		panic(fmt.Sprintf("flow: invalid capacity %v", capacity))
	}
	g.maxCap = math.Max(g.maxCap, capacity)
	g.adj[from] = append(g.adj[from], edge{to: to, cap: capacity, orig: capacity, rev: len(g.adj[to])})
	g.adj[to] = append(g.adj[to], edge{to: from, cap: 0, orig: 0, rev: len(g.adj[from]) - 1})
	return EdgeID{from: from, idx: len(g.adj[from]) - 1}
}

// Flow returns the amount of flow currently routed along the edge.
func (g *Graph) Flow(id EdgeID) float64 {
	e := g.adj[id.from][id.idx]
	return e.orig - e.cap
}

// Capacity returns the original capacity of the edge.
func (g *Graph) Capacity(id EdgeID) float64 {
	return g.adj[id.from][id.idx].orig
}

// Saturated reports whether the edge carries (numerically) its full
// capacity.
func (g *Graph) Saturated(id EdgeID) bool {
	return g.adj[id.from][id.idx].cap <= g.tolerance()
}

// MaxFlow computes a maximum s-t flow with Dinic's algorithm and returns
// its value. It may be called once per graph; subsequent calls continue
// from the existing flow (and therefore return 0 once maximal).
func (g *Graph) MaxFlow(s, t int) float64 {
	if s == t {
		panic("flow: source equals sink")
	}
	tol := g.tolerance()
	n := len(g.adj)
	level := make([]int, n)
	iter := make([]int, n)
	queue := make([]int, 0, n)

	// Local op tallies, flushed to g.ops once at the end so the inner
	// loops touch only registers.
	var bfsPasses, augPaths, edgesScanned int64

	bfs := func() bool {
		bfsPasses++
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			edgesScanned += int64(len(g.adj[v]))
			for _, e := range g.adj[v] {
				if e.cap > tol && level[e.to] < 0 {
					level[e.to] = level[v] + 1
					queue = append(queue, e.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(v int, f float64) float64
	dfs = func(v int, f float64) float64 {
		if v == t {
			return f
		}
		for ; iter[v] < len(g.adj[v]); iter[v]++ {
			edgesScanned++
			e := &g.adj[v][iter[v]]
			if e.cap > tol && level[v] < level[e.to] {
				d := dfs(e.to, math.Min(f, e.cap))
				if d > 0 {
					e.cap -= d
					g.adj[e.to][e.rev].cap += d
					return d
				}
			}
		}
		return 0
	}

	var total float64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, math.Inf(1))
			if f <= 0 {
				break
			}
			augPaths++
			total += f
		}
	}
	g.ops.Add(DinicOps{BFSPasses: bfsPasses, AugPaths: augPaths, EdgesScanned: edgesScanned})
	return total
}

// OutFlow returns the total flow leaving vertex v on forward edges.
func (g *Graph) OutFlow(v int) float64 {
	var f float64
	for _, e := range g.adj[v] {
		if e.orig > 0 {
			f += e.orig - e.cap
		}
	}
	return f
}

// CheckConservation verifies flow conservation at every vertex except s
// and t, within the graph tolerance scaled by the vertex degree. It
// returns the first violation found.
func (g *Graph) CheckConservation(s, t int) error {
	tol := g.tolerance()
	for v := range g.adj {
		if v == s || v == t {
			continue
		}
		var net float64
		deg := 0
		for _, e := range g.adj[v] {
			if e.orig > 0 { // forward edge leaving v
				net -= e.orig - e.cap
				deg++
			} else { // reverse edge: its flow equals inflow into v
				net += e.cap
				deg++
			}
		}
		if math.Abs(net) > tol*float64(deg+1)*10 {
			return fmt.Errorf("flow: conservation violated at vertex %d by %v", v, net)
		}
	}
	return nil
}
