package flow

import "mpss/internal/pool"

// Package-level graph arenas. AcquireGraph returns a Reset graph ready
// for AddEdge; ReleaseGraph recycles one so its flat edge array, CSR
// index and scratch buffers are reused by the next solve. Steady-state
// round loops therefore allocate nothing for graph storage.

var graphPool pool.FreeList[Graph]

// AcquireGraph returns a pooled graph reset to n vertices.
func AcquireGraph(n int) *Graph {
	g := graphPool.Get()
	g.Reset(n)
	g.tol = 0
	return g
}

// ReleaseGraph returns a graph obtained from AcquireGraph to the pool.
// The graph must not be used afterwards.
func ReleaseGraph(g *Graph) {
	if g != nil {
		graphPool.Put(g)
	}
}

var ratPool pool.FreeList[RatGraph]

// AcquireRatGraph returns a pooled exact graph reset to n vertices.
func AcquireRatGraph(n int) *RatGraph {
	g := ratPool.Get()
	g.Reset(n)
	return g
}

// ReleaseRatGraph returns a graph obtained from AcquireRatGraph to the
// pool. The graph must not be used afterwards.
func ReleaseRatGraph(g *RatGraph) {
	if g != nil {
		ratPool.Put(g)
	}
}
