package flow

import "mpss/internal/pool"

// Package-level graph arenas. AcquireGraph returns a Reset graph ready
// for AddEdge; ReleaseGraph recycles one so its flat edge array, CSR
// index and scratch buffers are reused by the next solve. Steady-state
// round loops therefore allocate nothing for graph storage.
//
// Reset fully re-initializes a graph, so Acquire alone would suffice —
// but Release additionally clears the solved flag (haveST) and any
// tolerance override before the graph enters the pool. A graph parked
// on the free list therefore never holds a live incremental-mutation
// license: even a caller that reaches the pool without going through
// Acquire's Reset cannot run SetCapacity/ScaleSourceCaps/RemoveJobEdge
// against the previous solve's stale source/sink endpoints.

var graphPool pool.FreeList[Graph]

// AcquireGraph returns a pooled graph reset to n vertices.
func AcquireGraph(n int) *Graph {
	g := graphPool.Get()
	g.Reset(n)
	return g
}

// ReleaseGraph returns a graph obtained from AcquireGraph to the pool.
// The graph must not be used afterwards.
func ReleaseGraph(g *Graph) {
	if g != nil {
		g.haveST = false
		g.tol = 0
		graphPool.Put(g)
	}
}

var ratPool pool.FreeList[RatGraph]

// AcquireRatGraph returns a pooled exact graph reset to n vertices.
func AcquireRatGraph(n int) *RatGraph {
	g := ratPool.Get()
	g.Reset(n)
	return g
}

// ReleaseRatGraph returns a graph obtained from AcquireRatGraph to the
// pool. The graph must not be used afterwards.
func ReleaseRatGraph(g *RatGraph) {
	if g != nil {
		g.haveST = false
		ratPool.Put(g)
	}
}
