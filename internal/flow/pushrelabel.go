package flow

import (
	"fmt"
	"math"
)

// PRGraph is a maximum-flow network solved with the push-relabel
// (Goldberg–Tarjan) algorithm with the FIFO vertex selection rule and the
// gap heuristic. It exists as an ablation partner for the Dinic solver in
// this package: the scheduler's networks are shallow and wide, and the
// E11 ablation experiment measures which solver wins on them. The two
// implementations also cross-check each other in the property tests.
// It shares the flat edge layout and EdgeID scheme of Graph, but not the
// incremental warm-start API (push-relabel maintains a preflow, not a
// feasible flow, so mid-run capacity edits have no clean invariant).
type PRGraph struct {
	edges []edge
	nv    int

	adjOff []int32
	adjLst []int32
	csrOK  bool

	maxCap float64
	tol    float64
	ops    PROps
}

// PROps counts the elementary operations of a push-relabel run, for the
// observability layer and the E11 ablation. Counts accumulate across
// MaxFlow calls on the same graph.
type PROps struct {
	Pushes         int64 // saturating and non-saturating pushes
	Relabels       int64 // height increases
	GapFirings     int64 // gap-heuristic activations
	Discharges     int64 // vertices discharged off the FIFO queue
	GlobalRelabels int64 // exact-relabeling BFS passes
}

// Add accumulates o into p (for aggregating over many solves).
func (p *PROps) Add(o PROps) {
	p.Pushes += o.Pushes
	p.Relabels += o.Relabels
	p.GapFirings += o.GapFirings
	p.Discharges += o.Discharges
	p.GlobalRelabels += o.GlobalRelabels
}

// Ops returns the operation counts accumulated by MaxFlow so far.
func (g *PRGraph) Ops() PROps { return g.ops }

// NewPRGraph returns an empty push-relabel network with n vertices.
func NewPRGraph(n int) *PRGraph {
	g := &PRGraph{}
	g.Reset(n)
	return g
}

// Reset re-initializes the graph to n empty vertices, reusing backing
// arrays.
func (g *PRGraph) Reset(n int) {
	if n < 2 {
		panic(fmt.Sprintf("flow: graph needs >= 2 vertices, got %d", n))
	}
	g.nv = n
	g.edges = g.edges[:0]
	g.csrOK = false
	g.maxCap = 0
	g.ops = PROps{}
}

// N returns the number of vertices.
func (g *PRGraph) N() int { return g.nv }

func (g *PRGraph) tolerance() float64 {
	if g.tol > 0 {
		return g.tol
	}
	return DefaultTolerance * math.Max(1, g.maxCap)
}

// SetTolerance overrides the saturation tolerance (0 restores default).
func (g *PRGraph) SetTolerance(tol float64) { g.tol = tol }

// AddEdge adds a directed edge and returns its identifier.
func (g *PRGraph) AddEdge(from, to int, capacity float64) EdgeID {
	if from < 0 || from >= g.nv || to < 0 || to >= g.nv {
		panic(fmt.Sprintf("flow: edge %d->%d out of range [0,%d)", from, to, g.nv))
	}
	if from == to {
		panic("flow: self-loop")
	}
	if math.IsNaN(capacity) || math.IsInf(capacity, 0) || capacity < 0 {
		panic(fmt.Sprintf("flow: invalid capacity %v", capacity))
	}
	g.maxCap = math.Max(g.maxCap, capacity)
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges,
		edge{from: int32(from), to: int32(to), cap: capacity, orig: capacity},
		edge{from: int32(to), to: int32(from), cap: 0, orig: 0},
	)
	g.csrOK = false
	return id
}

func (g *PRGraph) fwd(id EdgeID) *edge {
	if id < 0 || int(id) >= len(g.edges) || id&1 != 0 {
		panic(fmt.Sprintf("flow: invalid edge id %d", id))
	}
	return &g.edges[id]
}

// Flow returns the flow currently on the edge.
func (g *PRGraph) Flow(id EdgeID) float64 {
	e := g.fwd(id)
	return e.orig - e.cap
}

// Capacity returns the original capacity of the edge.
func (g *PRGraph) Capacity(id EdgeID) float64 { return g.fwd(id).orig }

// Saturated reports whether the edge is (numerically) at capacity.
func (g *PRGraph) Saturated(id EdgeID) bool {
	return g.fwd(id).cap <= g.tolerance()
}

func (g *PRGraph) build() {
	if g.csrOK {
		return
	}
	n := g.nv
	g.adjOff = growInt32(g.adjOff, n+1)
	g.adjLst = growInt32(g.adjLst, len(g.edges))
	cursor := make([]int32, n)
	buildCSR(n, len(g.edges), func(i int) int32 { return g.edges[i].from }, g.adjOff, g.adjLst, cursor)
	g.csrOK = true
}

// MaxFlow computes a maximum s-t flow and returns its value.
func (g *PRGraph) MaxFlow(s, t int) float64 {
	if s == t {
		panic("flow: source equals sink")
	}
	g.build()
	n := g.nv
	tol := g.tolerance()
	height := make([]int, n)
	excess := make([]float64, n)
	count := make([]int, 2*n+1) // count[h] = number of vertices at height h
	inQueue := make([]bool, n)
	queue := make([]int, 0, n)

	var pushes, relabels, gapFirings, discharges, globalRelabels int64

	push := func(v int, eid int32) {
		pushes++
		e := &g.edges[eid]
		d := math.Min(excess[v], e.cap)
		e.cap -= d
		g.edges[eid^1].cap += d
		excess[v] -= d
		to := int(e.to)
		excess[to] += d
		if to != s && to != t && !inQueue[to] && excess[to] > tol {
			inQueue[to] = true
			queue = append(queue, to)
		}
	}

	// globalRelabel replaces every height with an exact residual
	// distance: dist-to-sink where the sink is still reachable, n +
	// dist-to-source for vertices that can only return excess, 2n for
	// vertices reaching neither. Each height only moves up (the max of
	// two valid labelings is valid), which preserves the termination
	// argument; the exact labels make subsequent pushes head straight
	// for the sink instead of wandering. Same policy as the concurrent
	// solver's stop-the-world pass, so the E11 ablation compares equal
	// heuristics.
	dist := make([]int, n)
	bfsQueue := make([]int, 0, n)
	reverseBFS := func(root int) {
		for v := range dist {
			dist[v] = -1
		}
		dist[root] = 0
		bfsQueue = append(bfsQueue[:0], root)
		for head := 0; head < len(bfsQueue); head++ {
			cur := bfsQueue[head]
			for i := g.adjOff[cur]; i < g.adjOff[cur+1]; i++ {
				id := g.adjLst[i]
				if g.edges[id^1].cap > tol {
					u := int(g.edges[id].to)
					if dist[u] < 0 {
						dist[u] = dist[cur] + 1
						bfsQueue = append(bfsQueue, u)
					}
				}
			}
		}
	}
	globalRelabel := func() {
		globalRelabels++
		reverseBFS(t)
		for v := 0; v < n; v++ {
			switch {
			case v == s:
				height[v] = n
			case dist[v] >= 0:
				if dist[v] > height[v] {
					height[v] = dist[v]
				}
			default:
				height[v] = -1 // resolved by the source pass below
			}
		}
		reverseBFS(s)
		for v := 0; v < n; v++ {
			if height[v] >= 0 {
				continue
			}
			if dist[v] >= 0 {
				height[v] = n + dist[v]
			} else {
				height[v] = 2 * n
			}
		}
		for h := range count {
			count[h] = 0
		}
		for v := 0; v < n; v++ {
			if height[v] < len(count) {
				count[height[v]]++
			}
		}
	}

	// Initialize preflow.
	height[s] = n
	count[0] = n - 1
	count[n] = 1
	for i := g.adjOff[s]; i < g.adjOff[s+1]; i++ {
		eid := g.adjLst[i]
		if g.edges[eid].orig > 0 {
			excess[s] += g.edges[eid].cap
			push(s, eid)
		}
	}
	globalRelabel()
	grEvery := int64(n)
	if grEvery < 32 {
		grEvery = 32
	}
	sinceGlobal := int64(0)

	relabel := func(v int) {
		minH := 2 * n
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			e := &g.edges[g.adjLst[i]]
			if e.cap > tol && height[e.to] < minH {
				minH = height[e.to]
			}
		}
		if minH < 2*n {
			relabels++
			sinceGlobal++
			count[height[v]]--
			// Gap heuristic: if v was the last vertex at its height and
			// that height is below n, every vertex above the gap (and
			// below n) can be lifted past n immediately.
			if count[height[v]] == 0 && height[v] < n {
				gapFirings++
				gap := height[v]
				for u := range height {
					if u != s && gap < height[u] && height[u] < n {
						count[height[u]]--
						height[u] = n + 1
						count[height[u]]++
					}
				}
			}
			height[v] = minH + 1
			count[height[v]]++
		}
	}

	discharge := func(v int) {
		for excess[v] > tol {
			// Push along every admissible edge. Heights of neighbours do
			// not change during the scan, so one full pass either drains
			// the excess or leaves no admissible edge.
			for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
				eid := g.adjLst[i]
				e := &g.edges[eid]
				if e.cap > tol && height[v] == height[e.to]+1 {
					push(v, eid)
					if excess[v] <= tol {
						break
					}
				}
			}
			if excess[v] <= tol {
				break
			}
			old := height[v]
			relabel(v)
			if height[v] == old || height[v] >= 2*n {
				break
			}
		}
	}

	for len(queue) > 0 {
		// Periodic exact relabeling, between discharges so a scan never
		// sees heights move under it.
		if sinceGlobal >= grEvery {
			sinceGlobal = 0
			globalRelabel()
		}
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		discharges++
		discharge(v)
	}
	g.ops.Add(PROps{Pushes: pushes, Relabels: relabels, GapFirings: gapFirings, Discharges: discharges, GlobalRelabels: globalRelabels})
	return excess[t]
}
