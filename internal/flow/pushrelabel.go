package flow

import (
	"fmt"
	"math"
)

// PRGraph is a maximum-flow network solved with the push-relabel
// (Goldberg–Tarjan) algorithm with the FIFO vertex selection rule and the
// gap heuristic. It exists as an ablation partner for the Dinic solver in
// this package: the scheduler's networks are shallow and wide, and the
// E11 ablation experiment measures which solver wins on them. The two
// implementations also cross-check each other in the property tests.
type PRGraph struct {
	adj    [][]edge
	maxCap float64
	tol    float64
	ops    PROps
}

// PROps counts the elementary operations of a push-relabel run, for the
// observability layer and the E11 ablation. Counts accumulate across
// MaxFlow calls on the same graph.
type PROps struct {
	Pushes     int64 // saturating and non-saturating pushes
	Relabels   int64 // height increases
	GapFirings int64 // gap-heuristic activations
	Discharges int64 // vertices discharged off the FIFO queue
}

// Add accumulates o into p (for aggregating over many solves).
func (p *PROps) Add(o PROps) {
	p.Pushes += o.Pushes
	p.Relabels += o.Relabels
	p.GapFirings += o.GapFirings
	p.Discharges += o.Discharges
}

// Ops returns the operation counts accumulated by MaxFlow so far.
func (g *PRGraph) Ops() PROps { return g.ops }

// NewPRGraph returns an empty push-relabel network with n vertices.
func NewPRGraph(n int) *PRGraph {
	if n < 2 {
		panic(fmt.Sprintf("flow: graph needs >= 2 vertices, got %d", n))
	}
	return &PRGraph{adj: make([][]edge, n)}
}

// N returns the number of vertices.
func (g *PRGraph) N() int { return len(g.adj) }

func (g *PRGraph) tolerance() float64 {
	if g.tol > 0 {
		return g.tol
	}
	return DefaultTolerance * math.Max(1, g.maxCap)
}

// SetTolerance overrides the saturation tolerance (0 restores default).
func (g *PRGraph) SetTolerance(tol float64) { g.tol = tol }

// AddEdge adds a directed edge and returns its identifier.
func (g *PRGraph) AddEdge(from, to int, capacity float64) EdgeID {
	if from < 0 || from >= len(g.adj) || to < 0 || to >= len(g.adj) {
		panic(fmt.Sprintf("flow: edge %d->%d out of range [0,%d)", from, to, len(g.adj)))
	}
	if from == to {
		panic("flow: self-loop")
	}
	if math.IsNaN(capacity) || math.IsInf(capacity, 0) || capacity < 0 {
		panic(fmt.Sprintf("flow: invalid capacity %v", capacity))
	}
	g.maxCap = math.Max(g.maxCap, capacity)
	g.adj[from] = append(g.adj[from], edge{to: to, cap: capacity, orig: capacity, rev: len(g.adj[to])})
	g.adj[to] = append(g.adj[to], edge{to: from, cap: 0, orig: 0, rev: len(g.adj[from]) - 1})
	return EdgeID{from: from, idx: len(g.adj[from]) - 1}
}

// Flow returns the flow currently on the edge.
func (g *PRGraph) Flow(id EdgeID) float64 {
	e := g.adj[id.from][id.idx]
	return e.orig - e.cap
}

// Capacity returns the original capacity of the edge.
func (g *PRGraph) Capacity(id EdgeID) float64 { return g.adj[id.from][id.idx].orig }

// Saturated reports whether the edge is (numerically) at capacity.
func (g *PRGraph) Saturated(id EdgeID) bool {
	return g.adj[id.from][id.idx].cap <= g.tolerance()
}

// MaxFlow computes a maximum s-t flow and returns its value.
func (g *PRGraph) MaxFlow(s, t int) float64 {
	if s == t {
		panic("flow: source equals sink")
	}
	n := len(g.adj)
	tol := g.tolerance()
	height := make([]int, n)
	excess := make([]float64, n)
	count := make([]int, 2*n+1) // count[h] = number of vertices at height h
	inQueue := make([]bool, n)
	queue := make([]int, 0, n)

	var pushes, relabels, gapFirings, discharges int64

	push := func(v int, e *edge) {
		pushes++
		d := math.Min(excess[v], e.cap)
		e.cap -= d
		g.adj[e.to][e.rev].cap += d
		excess[v] -= d
		excess[e.to] += d
		if e.to != s && e.to != t && !inQueue[e.to] && excess[e.to] > tol {
			inQueue[e.to] = true
			queue = append(queue, e.to)
		}
	}

	// Initialize preflow.
	height[s] = n
	count[0] = n - 1
	count[n] = 1
	for i := range g.adj[s] {
		e := &g.adj[s][i]
		if e.orig > 0 {
			excess[s] += e.cap
			push(s, e)
		}
	}

	relabel := func(v int) {
		minH := 2 * n
		for _, e := range g.adj[v] {
			if e.cap > tol && height[e.to] < minH {
				minH = height[e.to]
			}
		}
		if minH < 2*n {
			relabels++
			count[height[v]]--
			// Gap heuristic: if v was the last vertex at its height and
			// that height is below n, every vertex above the gap (and
			// below n) can be lifted past n immediately.
			if count[height[v]] == 0 && height[v] < n {
				gapFirings++
				gap := height[v]
				for u := range height {
					if u != s && gap < height[u] && height[u] < n {
						count[height[u]]--
						height[u] = n + 1
						count[height[u]]++
					}
				}
			}
			height[v] = minH + 1
			count[height[v]]++
		}
	}

	discharge := func(v int) {
		for excess[v] > tol {
			// Push along every admissible edge. Heights of neighbours do
			// not change during the scan, so one full pass either drains
			// the excess or leaves no admissible edge.
			for i := range g.adj[v] {
				e := &g.adj[v][i]
				if e.cap > tol && height[v] == height[e.to]+1 {
					push(v, e)
					if excess[v] <= tol {
						break
					}
				}
			}
			if excess[v] <= tol {
				break
			}
			old := height[v]
			relabel(v)
			if height[v] == old || height[v] >= 2*n {
				break
			}
		}
	}

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		discharges++
		discharge(v)
	}
	g.ops.Add(PROps{Pushes: pushes, Relabels: relabels, GapFirings: gapFirings, Discharges: discharges})
	return excess[t]
}
