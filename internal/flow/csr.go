package flow

// buildCSR fills the off/lst index of a CSR adjacency over m edges on n
// vertices: off must have length n+1, lst and the cursor scratch length m
// and n respectively. After the call, lst[off[v]:off[v+1]] lists the edge
// indices leaving v in insertion order. from(i) reports the tail vertex
// of edge i. Shared by the three solvers so their adjacency iteration
// order is identical (the differential tests rely on that).
func buildCSR(n, m int, from func(i int) int32, off, lst, cursor []int32) {
	for i := 0; i <= n; i++ {
		off[i] = 0
	}
	for i := 0; i < m; i++ {
		off[from(i)+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	copy(cursor[:n], off[:n])
	for i := 0; i < m; i++ {
		v := from(i)
		lst[cursor[v]] = int32(i)
		cursor[v]++
	}
}
