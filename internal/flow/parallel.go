package flow

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mpss/internal/pool"
)

// Concurrent push-relabel over the same flat CSR edge arena the Dinic
// solver uses. MaxFlowParallel is the cold-solve partner of Graph.MaxFlow
// in the solver's dispatch policy: it computes a maximum flow from zero
// with `workers` goroutines, then leaves the graph holding an ordinary
// feasible maximum flow — so Flow, CoReachable and the incremental
// warm-start mutators keep working exactly as after a sequential solve.
//
// Concurrency design (Anderson–Setubal style):
//
//   - One lock per vertex guards its excess and the capacities of its
//     incident edges. A push on (u,v) holds both locks, acquiring v's
//     with TryLock only — a failed acquisition marks the edge skipped
//     instead of blocking, so lock acquisition can never deadlock. If a
//     scan makes no progress solely because of skipped edges, the vertex
//     is requeued and the worker moves on.
//   - Heights are read and written atomically. A vertex's height is only
//     written by the worker holding its lock (or by the global relabeler
//     during a stop-the-world pass), and heights never decrease during
//     the concurrent phase, so a stale read is always a lower bound —
//     which keeps relabels conservative and the labeling valid.
//   - Active vertices live in per-worker deques (pool.Deque); idle
//     workers steal from the head of their neighbours' deques.
//   - The gap heuristic survives in detection form: an atomic height
//     histogram notices an emptied level below n and requests an
//     immediate stop-the-world global relabel, which lifts every vertex
//     stranded above the gap past n (they cannot reach the sink, so the
//     exact relabeling is at least as strong as the sequential gap lift).
//   - Global relabeling — a reverse BFS from the sink (and from the
//     source for sink-unreachable vertices) recomputing exact height
//     labels — runs as a stop-the-world pass every n relabels, guarded
//     by an RWMutex that every discharge holds for reading.
//
// Phase 1 terminates with a maximum preflow: the flow value is already
// final, but excess may be trapped on interior vertices. A sequential
// phase 2 (returnExcess) cancels that excess back to the source along
// flow-carrying in-edges, canceling any flow cycles it meets, which
// turns the preflow into a feasible maximum flow.
//
// Determinism: the maximum-flow *value* is unique, so every worker count
// agrees on it up to float64 rounding of the push arithmetic (the
// differential tests bound the disagreement by DiffTolerance). The flow
// *decomposition* — which edges carry how much — is not unique and does
// legitimately differ between runs; callers that need reproducible
// per-edge flows use the sequential solvers. The value returned is
// re-summed over the sink's incident edges in CSR order, so the
// summation order itself never contributes nondeterminism.

// ParOps counts the elementary operations of MaxFlowParallel runs, for
// the observability layer. Counts accumulate across calls on the same
// graph and reset with Reset.
type ParOps struct {
	Pushes         int64 // saturating and non-saturating pushes
	Relabels       int64 // height increases (concurrent phase)
	Discharges     int64 // vertices popped and discharged
	GlobalRelabels int64 // stop-the-world exact relabeling passes
	GapFirings     int64 // emptied height levels detected below n
	Steals         int64 // vertices taken from another worker's deque
}

// Add accumulates o into p.
func (p *ParOps) Add(o ParOps) {
	p.Pushes += o.Pushes
	p.Relabels += o.Relabels
	p.Discharges += o.Discharges
	p.GlobalRelabels += o.GlobalRelabels
	p.GapFirings += o.GapFirings
	p.Steals += o.Steals
}

// Sub returns p minus o, for per-solve deltas on a reused graph.
func (p ParOps) Sub(o ParOps) ParOps {
	return ParOps{
		Pushes:         p.Pushes - o.Pushes,
		Relabels:       p.Relabels - o.Relabels,
		Discharges:     p.Discharges - o.Discharges,
		GlobalRelabels: p.GlobalRelabels - o.GlobalRelabels,
		GapFirings:     p.GapFirings - o.GapFirings,
		Steals:         p.Steals - o.Steals,
	}
}

// ParOps returns the parallel-solver operation counts accumulated since
// the last Reset.
func (g *Graph) ParOps() ParOps { return g.parOps }

// parScratch holds the per-run state of the concurrent solver, kept on
// the graph so pooled graphs reuse the arenas across solves.
type parScratch struct {
	height []int32   // atomic; current label per vertex
	excess []float64 // guarded by lock[v]
	lock   []sync.Mutex
	active []int32 // atomic; 1 while queued or being discharged
	counts []int32 // atomic histogram of heights, for gap detection
	dist   []int32 // BFS scratch of the global relabeler
	queues []pool.Deque[int32]
}

func (g *Graph) parEnsure(n, workers int) *parScratch {
	if g.par == nil {
		g.par = &parScratch{}
	}
	p := g.par
	p.height = growInt32(p.height, n)
	p.active = growInt32(p.active, n)
	p.dist = growInt32(p.dist, n)
	p.counts = growInt32(p.counts, 2*n+1)
	if cap(p.excess) < n {
		p.excess = make([]float64, n)
	}
	p.excess = p.excess[:n]
	if len(p.lock) < n {
		p.lock = make([]sync.Mutex, n)
	}
	for len(p.queues) < workers {
		p.queues = append(p.queues, pool.Deque[int32]{})
	}
	return p
}

// parRun is one MaxFlowParallel execution.
type parRun struct {
	g       *Graph
	p       *parScratch
	s, t    int32
	n       int
	tol     float64
	workers int

	pending  atomic.Int64 // vertices currently active (queued or in flight)
	relabels atomic.Int64 // relabels since the last global relabel
	grEvery  int64        // global-relabel period, in relabels
	stw      atomic.Bool  // a stop-the-world pass is requested
	grClaim  atomic.Bool  // elects the worker that runs the pass
	world    sync.RWMutex // read-held per discharge; write-held by the pass

	ops []ParOps // per-worker tallies, merged at the end

	// failed carries the first worker panic to the calling goroutine, so
	// invariant violations raised inside a worker reach the solver's
	// recover boundary (internal/opt.runPhases) like sequential ones.
	failed   atomic.Bool
	failOnce sync.Once
	failure  any
}

// abort records a worker panic and tells every worker to wind down.
func (r *parRun) abort(p any) {
	r.failOnce.Do(func() { r.failure = p })
	r.failed.Store(true)
}

// MaxFlowParallel computes a maximum s-t flow from zero flow with the
// given number of worker goroutines (values < 1 mean one worker) and
// returns its value. The graph must carry no flow — it is either freshly
// built, Reset, or ResetFlow; solving on top of an existing warm flow is
// the sequential engine's job. Afterwards the graph holds a feasible
// maximum flow: Flow, OutFlow, CoReachable and the incremental mutators
// all behave as after a sequential MaxFlow call.
func (g *Graph) MaxFlowParallel(s, t, workers int) float64 {
	if s == t {
		panic("flow: source equals sink")
	}
	if workers < 1 {
		workers = 1
	}
	g.build()
	g.ensureScratch(g.nv)
	for i := range g.edges {
		if g.edges[i].cap != g.edges[i].orig {
			violate(false, "parallel solve requires a flow-free graph")
		}
	}
	g.lastS, g.lastT, g.haveST = s, t, true

	n := g.nv
	p := g.parEnsure(n, workers)
	r := &parRun{
		g: g, p: p, s: int32(s), t: int32(t), n: n,
		tol:     g.tolerance(),
		workers: workers,
		grEvery: int64(max(n, 32)),
		ops:     make([]ParOps, workers),
	}

	for v := 0; v < n; v++ {
		atomic.StoreInt32(&p.height[v], 0)
		atomic.StoreInt32(&p.active[v], 0)
		p.excess[v] = 0
	}
	atomic.StoreInt32(&p.height[s], int32(n))

	// Saturate the source's out-edges to form the initial preflow.
	for i := g.adjOff[s]; i < g.adjOff[s+1]; i++ {
		eid := g.adjLst[i]
		e := &g.edges[eid]
		if eid&1 != 0 || e.cap <= 0 {
			continue
		}
		d := e.cap
		e.cap = 0
		g.edges[eid^1].cap += d
		p.excess[e.to] += d
	}

	// Exact initial labels, then enqueue every vertex holding excess.
	r.globalRelabel(&r.ops[0])
	next := 0
	for v := 0; v < n; v++ {
		if v != s && v != t && p.excess[v] > r.tol {
			atomic.StoreInt32(&p.active[v], 1)
			r.pending.Add(1)
			p.queues[next%workers].Push(int32(v))
			next++
		}
	}

	if workers == 1 {
		r.worker(0) // panics propagate directly on the caller's stack
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				defer func() {
					if rec := recover(); rec != nil {
						r.abort(rec)
					}
				}()
				r.worker(id)
			}(w)
		}
		wg.Wait()
		if r.failure != nil {
			panic(r.failure)
		}
	}

	var total ParOps
	for i := range r.ops {
		total.Add(r.ops[i])
	}
	g.parOps.Add(total)

	g.returnExcess(s, t, p.excess, r.tol)
	return g.netInflow(t)
}

// worker is one solver goroutine: pop from the own deque, steal when
// empty, discharge, and cooperate with stop-the-world passes.
func (r *parRun) worker(id int) {
	ops := &r.ops[id]
	for {
		if r.failed.Load() {
			return
		}
		if r.stw.Load() {
			r.runStopTheWorld(ops)
			continue
		}
		v, ok := r.p.queues[id].Pop()
		if !ok {
			for off := 1; off < r.workers; off++ {
				if v, ok = r.p.queues[(id+off)%r.workers].Steal(); ok {
					ops.Steals++
					break
				}
			}
		}
		if !ok {
			if r.pending.Load() == 0 {
				return
			}
			runtime.Gosched()
			continue
		}
		ops.Discharges++
		if r.discharge(id, v, ops) {
			// Blocked on lock contention: requeue after the locks are
			// released and give the holders a turn, so two vertices
			// pushing toward each other cannot spin hot.
			r.p.queues[id].Push(v)
			runtime.Gosched()
		}
	}
}

// runStopTheWorld elects one worker to run the global relabel; everyone
// else yields until the pass completes. Discharges in flight finish
// first (the pass takes the world lock for writing).
func (r *parRun) runStopTheWorld(ops *ParOps) {
	if r.grClaim.CompareAndSwap(false, true) {
		r.world.Lock()
		if r.stw.Load() {
			r.globalRelabel(ops)
			r.stw.Store(false)
		}
		r.world.Unlock()
		r.grClaim.Store(false)
		return
	}
	runtime.Gosched()
}

// discharge drains the excess of v: push along admissible edges, relabel
// when none remain. Called with v's active flag set; clears it before
// returning, unless it reports true — then the scan was blocked purely
// by lock contention and the caller must requeue v (still active).
func (r *parRun) discharge(id int, v int32, ops *ParOps) (requeue bool) {
	r.world.RLock()
	defer r.world.RUnlock()
	g, p := r.g, r.p
	p.lock[v].Lock()
	defer p.lock[v].Unlock()

	for p.excess[v] > r.tol {
		skipped := false
		progress := false
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			eid := g.adjLst[i]
			e := &g.edges[eid]
			if e.cap <= r.tol {
				continue
			}
			w := e.to
			if atomic.LoadInt32(&p.height[v]) != atomic.LoadInt32(&p.height[w])+1 {
				continue
			}
			if !p.lock[w].TryLock() {
				skipped = true
				continue
			}
			// Re-check admissibility under both locks: w's height is
			// frozen now, and e's capacity can only have been changed by
			// holders of v's or w's lock — both are us.
			if e.cap > r.tol && atomic.LoadInt32(&p.height[v]) == atomic.LoadInt32(&p.height[w])+1 {
				d := p.excess[v]
				if e.cap < d {
					d = e.cap
				}
				e.cap -= d
				g.edges[eid^1].cap += d
				p.excess[v] -= d
				p.excess[w] += d
				ops.Pushes++
				progress = true
				if w != r.s && w != r.t && p.excess[w] > r.tol &&
					atomic.CompareAndSwapInt32(&p.active[w], 0, 1) {
					r.pending.Add(1)
					p.queues[id].Push(w)
				}
			}
			p.lock[w].Unlock()
			if p.excess[v] <= r.tol {
				break
			}
		}
		if p.excess[v] <= r.tol {
			break
		}
		if skipped && !progress {
			// Every remaining admissible edge was lock-contended: hand v
			// back to the caller (still active) to requeue once the locks
			// here are released.
			return true
		}
		if !progress && !skipped {
			if !r.relabel(v, ops) {
				break // no residual exit at all: excess is trapped
			}
			if atomic.LoadInt32(&p.height[v]) >= int32(2*r.n) {
				break // lifted out of play: excess returns in phase 2
			}
			if r.relabels.Add(1) >= r.grEvery {
				r.relabels.Store(0)
				r.stw.Store(true)
			}
		}
	}
	atomic.StoreInt32(&p.active[v], 0)
	r.pending.Add(-1)
	return false
}

// relabel lifts v to one above its lowest residual neighbour. Returns
// false when v has no residual out-edge left. Caller holds v's lock.
func (r *parRun) relabel(v int32, ops *ParOps) bool {
	g, p := r.g, r.p
	minH := int32(2 * r.n)
	for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
		e := &g.edges[g.adjLst[i]]
		if e.cap > r.tol {
			if h := atomic.LoadInt32(&p.height[e.to]); h < minH {
				minH = h
			}
		}
	}
	if minH >= int32(2*r.n) {
		return false
	}
	old := atomic.LoadInt32(&p.height[v])
	nh := minH + 1
	if nh <= old {
		// Heights never decrease and v held its lock throughout, so a
		// failed scan guarantees every residual neighbour is at least at
		// v's height; anything else is a broken labeling invariant.
		violate(false, "parallel relabel did not raise the height")
	}
	atomic.StoreInt32(&p.height[v], nh)
	ops.Relabels++
	// Gap detection on the atomic height histogram. Firing requests a
	// stop-the-world exact relabel, which lifts everything stranded
	// above the emptied level past n in one sweep.
	if atomic.AddInt32(&p.counts[nh], 1); old < int32(r.n) {
		if atomic.AddInt32(&p.counts[old], -1) == 0 {
			ops.GapFirings++
			r.stw.Store(true)
		}
	} else {
		atomic.AddInt32(&p.counts[old], -1)
	}
	return true
}

// globalRelabel recomputes every height as an exact residual distance:
// dist-to-sink for vertices that can still reach the sink, n + dist-to-
// source for the rest (they can only return excess), 2n for vertices
// reaching neither. Runs with the world write-locked (or before the
// workers start), so plain iteration is safe; stores remain atomic to
// pair with the readers' atomic loads.
func (r *parRun) globalRelabel(ops *ParOps) {
	g, p := r.g, r.p
	n := r.n
	ops.GlobalRelabels++

	// Reverse BFS from t over residual edges (u reaches cur iff the
	// partner of an adjacency edge of cur has residual capacity).
	dist := p.dist
	for v := 0; v < n; v++ {
		dist[v] = -1
	}
	dist[r.t] = 0
	queue := append(g.queue[:0], r.t)
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for i := g.adjOff[cur]; i < g.adjOff[cur+1]; i++ {
			id := g.adjLst[i]
			if g.edges[id^1].cap > r.tol {
				u := g.edges[id].to
				if dist[u] < 0 {
					dist[u] = dist[cur] + 1
					queue = append(queue, u)
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		h := atomic.LoadInt32(&p.height[v])
		switch {
		case v == int(r.s):
			h = int32(n)
		case dist[v] >= 0:
			if dist[v] > h {
				h = dist[v]
			}
		default:
			h = -1 // resolved by the source BFS below
		}
		atomic.StoreInt32(&p.height[v], h)
	}

	// Reverse BFS from s for the sink-unreachable remainder.
	for v := 0; v < n; v++ {
		dist[v] = -1
	}
	dist[r.s] = 0
	queue = append(queue[:0], r.s)
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for i := g.adjOff[cur]; i < g.adjOff[cur+1]; i++ {
			id := g.adjLst[i]
			if g.edges[id^1].cap > r.tol {
				u := g.edges[id].to
				if dist[u] < 0 {
					dist[u] = dist[cur] + 1
					queue = append(queue, u)
				}
			}
		}
	}
	g.queue = queue[:0]
	for v := 0; v < n; v++ {
		if atomic.LoadInt32(&p.height[v]) >= 0 {
			continue
		}
		h := int32(2 * n)
		if dist[v] >= 0 {
			h = int32(n) + dist[v]
		}
		atomic.StoreInt32(&p.height[v], h)
	}

	for h := range p.counts {
		p.counts[h] = 0
	}
	for v := 0; v < n; v++ {
		h := atomic.LoadInt32(&p.height[v])
		if int(h) < len(p.counts) {
			atomic.AddInt32(&p.counts[h], 1)
		}
	}
	r.relabels.Store(0)
}

// returnExcess converts the maximum preflow left by phase 1 into a
// feasible maximum flow: every unit of excess trapped on an interior
// vertex is canceled back to the source along flow-carrying in-edges.
// Flow cycles met on the walk (impossible on the solver's layered DAGs,
// but legal in general graphs) are canceled in place. Sequential — it
// runs after the workers have joined.
func (g *Graph) returnExcess(s, t int, excess []float64, tol float64) {
	for v := range excess {
		if v == s || v == t {
			continue
		}
		for guard := 0; excess[v] > tol; guard++ {
			if guard > len(g.edges)+2 {
				violate(true, "excess return failed to converge")
			}
			if !g.cancelExcessPath(v, s, &excess[v], tol) {
				// No flow-carrying in-edge despite excess above the
				// tolerance: conservation is broken beyond rounding.
				violate(true, "trapped excess with no inflow path")
			}
		}
	}
}

// cancelExcessPath walks flow-carrying in-edges backward from v toward
// s, canceling min(excess, bottleneck) along the path when it reaches s,
// or canceling a flow cycle when the walk revisits a vertex. Reports
// whether it made progress.
func (g *Graph) cancelExcessPath(v, s int, excess *float64, tol float64) bool {
	// onPath[u] is 1 + index into path of the edge that left u, so a
	// revisited vertex identifies the cycle segment to cancel.
	n := g.nv
	g.ensureScratch(n)
	path := g.upPath[:0]
	onPath := g.level // borrow: MaxFlow refills it
	for i := 0; i < n; i++ {
		onPath[i] = 0
	}
	cur := v
	for {
		if cur == s {
			d := *excess
			for _, id := range path {
				e := &g.edges[id]
				if f := e.orig - e.cap; f < d {
					d = f
				}
			}
			for _, id := range path {
				g.cancel(id, d)
			}
			*excess -= d
			g.upPath = path[:0]
			return d > 0
		}
		found := false
		for i := g.adjOff[cur]; i < g.adjOff[cur+1]; i++ {
			id := g.adjLst[i]
			if id&1 == 0 {
				continue // forward edge leaving cur
			}
			fe := &g.edges[id^1] // forward partner: an edge into cur
			if fe.orig-fe.cap > tol {
				from := int(fe.from)
				if onPath[from] > 0 {
					// Flow cycle from..cur: cancel its bottleneck.
					seg := path[onPath[from]-1:]
					seg = append(seg, id^1)
					d := g.edges[seg[0]].orig - g.edges[seg[0]].cap
					for _, sid := range seg[1:] {
						se := &g.edges[sid]
						if f := se.orig - se.cap; f < d {
							d = f
						}
					}
					g.upPath = path[:0]
					if d <= 0 {
						return false
					}
					for _, sid := range seg {
						g.cancel(sid, d)
					}
					return true
				}
				path = append(path, id^1)
				onPath[cur] = int32(len(path))
				cur = from
				found = true
				break
			}
		}
		if !found {
			g.upPath = path[:0]
			return false
		}
	}
}

// netInflow returns the net flow into v (inflow on forward edges ending
// at v minus outflow on forward edges leaving it), summed in CSR order
// so repeated calls on the same flow are bit-identical.
func (g *Graph) netInflow(v int) float64 {
	g.build()
	var f float64
	for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
		id := g.adjLst[i]
		e := &g.edges[id]
		if id&1 != 0 { // reverse edge: partner carries flow into v
			pe := &g.edges[id^1]
			f += pe.orig - pe.cap
		} else if e.orig > 0 {
			f -= e.orig - e.cap
		}
	}
	return f
}
