// Package discrete solves the variant of the scheduling problem where
// processors offer only a finite menu of speed levels, the setting of
// the related work the paper cites ([12,13] for a single processor).
//
// The classic reduction carries over to m processors with migration: take
// the continuous optimum (internal/opt) — whose structure is independent
// of the power function — and replace every execution at a non-menu speed
// s by a time-preserving mix of the two adjacent menu speeds
// s_lo <= s <= s_hi:
//
//	t_lo + t_hi = t,   s_lo t_lo + s_hi t_hi = s t.
//
// Total execution time is unchanged, so the packing (and hence
// feasibility) is untouched, and the resulting energy equals the
// continuous optimum priced under the piecewise-linear interpolation of P
// at the menu speeds — which is exactly the discrete-speed optimum (the
// LP of internal/bg over the same grid computes the same value, and the
// test suite checks the two agree).
package discrete

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mpss/internal/job"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/schedule"
)

// Result is a discrete-speed schedule with its energy under the supplied
// power function.
type Result struct {
	Schedule *schedule.Schedule
	Energy   float64
	Levels   []float64 // the sorted speed menu actually used
	// Splits counts continuous-speed segments that had to be expressed as
	// a two-level mix.
	Splits int
}

// Schedule computes an optimal schedule restricted to the given speed
// menu. The menu must be positive and its maximum must reach the highest
// speed of the continuous optimum, otherwise the instance is infeasible
// at these levels and an error is returned.
func Schedule(in *job.Instance, p power.Function, levels []float64) (*Result, error) {
	if len(levels) == 0 {
		return nil, errors.New("discrete: empty speed menu")
	}
	menu := append([]float64(nil), levels...)
	sort.Float64s(menu)
	for i, s := range menu {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("discrete: invalid speed level %v", s)
		}
		if i > 0 && s == menu[i-1] {
			return nil, fmt.Errorf("discrete: duplicate speed level %v", s)
		}
	}

	cont, err := opt.Schedule(in)
	if err != nil {
		return nil, err
	}
	top := cont.Phases[0].Speed
	if menu[len(menu)-1] < top*(1-1e-9) {
		return nil, fmt.Errorf("discrete: menu tops out at %v but the instance needs peak speed %v",
			menu[len(menu)-1], top)
	}

	out := schedule.New(in.M)
	res := &Result{Levels: menu}
	const eps = 1e-12
	for _, seg := range cont.Schedule.Segments {
		s := seg.Speed
		i := sort.SearchFloat64s(menu, s)
		onMenu := (i < len(menu) && math.Abs(menu[i]-s) <= 1e-9*(1+s)) ||
			(i > 0 && math.Abs(menu[i-1]-s) <= 1e-9*(1+s))
		if onMenu {
			level := menu[min(i, len(menu)-1)]
			if i > 0 && math.Abs(menu[i-1]-s) <= 1e-9*(1+s) {
				level = menu[i-1]
			}
			out.Add(schedule.Segment{Proc: seg.Proc, Start: seg.Start, End: seg.End, JobID: seg.JobID, Speed: level})
			continue
		}
		if i == 0 {
			// Below the lowest level: run entirely at the lowest level for
			// the work-preserving shorter time, idling the rest.
			lo := menu[0]
			dur := seg.Work() / lo
			out.Add(schedule.Segment{Proc: seg.Proc, Start: seg.Start, End: seg.Start + dur, JobID: seg.JobID, Speed: lo})
			continue
		}
		sLo, sHi := menu[i-1], menu[i]
		t := seg.Len()
		tHi := t * (s - sLo) / (sHi - sLo)
		tLo := t - tHi
		res.Splits++
		if tLo > eps {
			out.Add(schedule.Segment{Proc: seg.Proc, Start: seg.Start, End: seg.Start + tLo, JobID: seg.JobID, Speed: sLo})
		}
		if tHi > eps {
			out.Add(schedule.Segment{Proc: seg.Proc, Start: seg.Start + tLo, End: seg.End, JobID: seg.JobID, Speed: sHi})
		}
	}
	out.Normalize()
	res.Schedule = out
	res.Energy = out.Energy(p)
	return res, nil
}

// UniformMenu builds k evenly spaced levels on (0, max].
func UniformMenu(max float64, k int) ([]float64, error) {
	if k < 1 || max <= 0 {
		return nil, fmt.Errorf("discrete: invalid menu max=%v k=%d", max, k)
	}
	out := make([]float64, k)
	for i := range out {
		out[i] = max * float64(i+1) / float64(k)
	}
	return out, nil
}
