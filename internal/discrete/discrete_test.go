package discrete

import (
	"math"
	"testing"

	"mpss/internal/bg"
	"mpss/internal/job"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
)

func TestMenuValidation(t *testing.T) {
	in, _ := job.NewInstance(1, []job.Job{{ID: 1, Release: 0, Deadline: 2, Work: 4}})
	p := power.MustAlpha(2)
	if _, err := Schedule(in, p, nil); err == nil {
		t.Error("empty menu accepted")
	}
	if _, err := Schedule(in, p, []float64{1, 1}); err == nil {
		t.Error("duplicate levels accepted")
	}
	if _, err := Schedule(in, p, []float64{-1, 2}); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := Schedule(in, p, []float64{0.5, 1}); err == nil {
		t.Error("menu below peak speed accepted")
	}
}

func TestExactSpeedOnMenu(t *testing.T) {
	// Single job at density 2 with 2 on the menu: no splits, same energy
	// as continuous.
	in, _ := job.NewInstance(1, []job.Job{{ID: 1, Release: 0, Deadline: 2, Work: 4}})
	p := power.MustAlpha(2)
	res, err := Schedule(in, p, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Splits != 0 {
		t.Errorf("splits = %d, want 0", res.Splits)
	}
	if math.Abs(res.Energy-8) > 1e-9 {
		t.Errorf("energy = %v, want 8", res.Energy)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelMix(t *testing.T) {
	// Density 1.5 with menu {1,2}: mix half/half; energy = t_lo*1 + t_hi*4
	// with t_lo = t_hi = 1 on a 2-length window = 5 (continuous would be
	// 1.5^2*2 = 4.5).
	in, _ := job.NewInstance(1, []job.Job{{ID: 1, Release: 0, Deadline: 2, Work: 3}})
	p := power.MustAlpha(2)
	res, err := Schedule(in, p, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Splits != 1 {
		t.Errorf("splits = %d, want 1", res.Splits)
	}
	if math.Abs(res.Energy-5) > 1e-9 {
		t.Errorf("energy = %v, want 5", res.Energy)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	for _, seg := range res.Schedule.Segments {
		if seg.Speed != 1 && seg.Speed != 2 {
			t.Errorf("off-menu speed %v", seg.Speed)
		}
	}
}

func TestBelowLowestLevelIdles(t *testing.T) {
	// Density 0.5 with menu {1,2}: run at 1 for half the window.
	in, _ := job.NewInstance(1, []job.Job{{ID: 1, Release: 0, Deadline: 4, Work: 2}})
	p := power.MustAlpha(3)
	res, err := Schedule(in, p, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	// Energy 1^3 * 2 = 2.
	if math.Abs(res.Energy-2) > 1e-9 {
		t.Errorf("energy = %v, want 2", res.Energy)
	}
}

// The reduction must agree with the LP of internal/bg on the same grid —
// two very different routes to the discrete-speed optimum.
func TestMatchesLPOnSameGrid(t *testing.T) {
	p := power.MustAlpha(2)
	for seed := int64(0); seed < 5; seed++ {
		in, err := workload.Uniform(workload.Spec{N: 6, M: 2, Seed: seed, Horizon: 20})
		if err != nil {
			t.Fatal(err)
		}
		cont, err := opt.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		top := cont.Phases[0].Speed * 1.3
		const k = 16
		menu, err := UniformMenu(top, k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(in, p, menu)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Verify(in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		lpRes, err := bg.Solve(in, p, bg.Options{SpeedLevels: k, MaxSpeed: top})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Energy-lpRes.Energy) > 1e-4*(1+lpRes.Energy) {
			t.Errorf("seed %d: reduction %v vs LP %v", seed, res.Energy, lpRes.Energy)
		}
		// Discrete can never beat continuous.
		contE := cont.Schedule.Energy(p)
		if res.Energy < contE-1e-9*(1+contE) {
			t.Errorf("seed %d: discrete %v below continuous %v", seed, res.Energy, contE)
		}
	}
}

// Refining the menu converges to the continuous optimum from above.
func TestMenuRefinementConverges(t *testing.T) {
	in, err := workload.Bursty(workload.Spec{N: 8, M: 2, Seed: 2, Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	p := power.MustAlpha(2)
	cont, err := opt.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	contE := cont.Schedule.Energy(p)
	top := cont.Phases[0].Speed * 1.2
	prev := math.Inf(1)
	for _, k := range []int{2, 4, 8, 32, 128} {
		menu, err := UniformMenu(top, k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(in, p, menu)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Energy > prev*(1+1e-9) {
			t.Errorf("k=%d: energy %v above coarser %v", k, res.Energy, prev)
		}
		prev = res.Energy
	}
	if rel := (prev - contE) / contE; rel > 0.001 {
		t.Errorf("k=128 still %.4f%% above continuous", 100*rel)
	}
}

func TestUniformMenuValidation(t *testing.T) {
	if _, err := UniformMenu(0, 4); err == nil {
		t.Error("max=0 accepted")
	}
	if _, err := UniformMenu(1, 0); err == nil {
		t.Error("k=0 accepted")
	}
	menu, err := UniformMenu(2, 4)
	if err != nil || len(menu) != 4 || menu[3] != 2 || menu[0] != 0.5 {
		t.Errorf("UniformMenu = %v, %v", menu, err)
	}
}
