// Package convexopt provides an independent optimality check for the
// combinatorial scheduler via convex programming under P(s) = s^alpha.
//
// With migration, a work profile x_{kj} (work of job k performed inside
// event interval I_j, non-negative, summing to w_k over the job's active
// intervals) is schedulable iff inside every interval there are execution
// times t_k <= |I_j| with sum t_k <= m |I_j| (McNaughton), and the optimal
// energy for a fixed profile decomposes per interval into a closed-form
// water-filling problem:
//
//	E_j(x) = min { sum_k t_k (x_k/t_k)^alpha : 0 < t_k <= L, sum t_k <= mL }
//
// whose solution runs the largest jobs "capped" at speed x_k/L and pools
// the rest at one uniform speed. The true optimum therefore equals
// min_x sum_j E_j(x), a convex program over a product of simplices, which
// this package minimizes with the Frank–Wolfe algorithm (linear
// minimization over a simplex = move all work to the cheapest interval)
// plus exact line search.
//
// The Upper value is the energy of a feasible profile and hence an upper
// bound on the true optimum: a scheduler claiming less would be cheating,
// and a scheduler measurably above it is suboptimal. The Lower value is
// the standard Frank–Wolfe duality gap certificate.
package convexopt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mpss/internal/flow"
	"mpss/internal/job"
)

// Result of a Frank–Wolfe run.
type Result struct {
	Upper      float64 // energy of the best feasible work profile found
	Lower      float64 // Upper - duality gap (approximate certificate)
	Gap        float64 // final Frank–Wolfe gap
	Iterations int
}

// Bound minimizes the convex relaxation for the instance under
// P(s) = s^alpha, running at most maxIters Frank–Wolfe iterations or until
// the relative duality gap falls below relGap.
func Bound(in *job.Instance, alpha float64, maxIters int, relGap float64) (*Result, error) {
	if alpha <= 1 {
		return nil, fmt.Errorf("convexopt: alpha = %v <= 1", alpha)
	}
	if maxIters < 1 {
		return nil, errors.New("convexopt: need at least one iteration")
	}
	ivs := job.Partition(in.Jobs)
	n := in.N()

	// active[k] lists the interval indices job k may use.
	active := make([][]int, n)
	for k, j := range in.Jobs {
		for vi, iv := range ivs {
			if j.ActiveIn(iv.Start, iv.End) {
				active[k] = append(active[k], vi)
			}
		}
		if len(active[k]) == 0 {
			return nil, fmt.Errorf("convexopt: job %d active nowhere", j.ID)
		}
	}

	// x[k][vi] — work of job k in interval vi (sparse over active sets).
	x := make([]map[int]float64, n)
	for k, j := range in.Jobs {
		x[k] = make(map[int]float64, len(active[k]))
		var span float64
		for _, vi := range active[k] {
			span += ivs[vi].Len()
		}
		for _, vi := range active[k] {
			x[k][vi] = j.Work * ivs[vi].Len() / span
		}
	}

	res := &Result{}
	for it := 1; it <= maxIters; it++ {
		res.Iterations = it
		energy, grads := evaluate(in, ivs, x, alpha)

		// Linear minimization oracle: each job moves all work to its
		// cheapest interval.
		target := make([]int, n)
		var gap float64
		for k, j := range in.Jobs {
			best, bestG := -1, math.Inf(1)
			var dot float64
			for _, vi := range active[k] {
				g := grads[k][vi]
				dot += g * x[k][vi]
				if g < bestG {
					bestG, best = g, vi
				}
			}
			target[k] = best
			gap += dot - bestG*j.Work
		}
		res.Upper = energy
		res.Gap = gap
		res.Lower = energy - gap
		if gap <= relGap*(1+energy) {
			break
		}

		// Exact line search on gamma in [0,1] by ternary search.
		blend := func(gamma float64) []map[int]float64 {
			y := make([]map[int]float64, n)
			for k, j := range in.Jobs {
				y[k] = make(map[int]float64, len(x[k])+1)
				for vi, v := range x[k] {
					y[k][vi] = (1 - gamma) * v
				}
				y[k][target[k]] += gamma * j.Work
			}
			return y
		}
		lo, hi := 0.0, 1.0
		for i := 0; i < 40; i++ {
			a := lo + (hi-lo)/3
			b := hi - (hi-lo)/3
			ea, _ := evaluate(in, ivs, blend(a), alpha)
			eb, _ := evaluate(in, ivs, blend(b), alpha)
			if ea < eb {
				hi = b
			} else {
				lo = a
			}
		}
		x = blend((lo + hi) / 2)
	}
	return res, nil
}

// evaluate returns the total energy of profile x and the per-job,
// per-interval marginal costs (subgradient entries).
func evaluate(in *job.Instance, ivs []job.Interval, x []map[int]float64, alpha float64) (float64, []map[int]float64) {
	n := in.N()
	grads := make([]map[int]float64, n)
	for k := range grads {
		grads[k] = make(map[int]float64, len(x[k]))
	}

	// Regroup per interval.
	type entry struct {
		k int
		w float64
	}
	perIv := make([][]entry, len(ivs))
	for k := range x {
		for vi, w := range x[k] {
			perIv[vi] = append(perIv[vi], entry{k: k, w: w})
		}
	}

	var total float64
	const tiny = flow.DefaultTolerance
	for vi, entries := range perIv {
		L := ivs[vi].Len()
		m := in.M
		// Positive works only.
		pos := entries[:0:0]
		for _, e := range entries {
			if e.w > tiny {
				pos = append(pos, e)
			}
		}
		var energy float64
		speeds := make(map[int]float64, len(pos))
		var entryCost float64 // marginal cost of a new zero-work job here
		switch {
		case len(pos) == 0:
			entryCost = 0
		case len(pos) < m:
			// Every job fills the interval; a spare processor remains, so
			// entering is free at the margin.
			for _, e := range pos {
				s := e.w / L
				speeds[e.k] = s
				energy += L * math.Pow(s, alpha)
			}
			entryCost = 0
		case len(pos) == m:
			minS := math.Inf(1)
			for _, e := range pos {
				s := e.w / L
				speeds[e.k] = s
				energy += L * math.Pow(s, alpha)
				minS = math.Min(minS, s)
			}
			entryCost = alpha * math.Pow(minS, alpha-1)
		default:
			sort.Slice(pos, func(a, b int) bool { return pos[a].w > pos[b].w })
			// Find the split q: pos[0..q) capped at speed w/L, the rest
			// pooled at s = restWork / ((m-q) L).
			suffix := make([]float64, len(pos)+1)
			for i := len(pos) - 1; i >= 0; i-- {
				suffix[i] = suffix[i+1] + pos[i].w
			}
			q := 0
			s := 0.0
			for ; q < m; q++ {
				s = suffix[q] / (float64(m-q) * L)
				okAbove := q == 0 || pos[q-1].w/L >= s-tiny
				okBelow := pos[q].w/L <= s+tiny
				if okAbove && okBelow {
					break
				}
			}
			if q == m {
				// Numerical corner: treat the top m-1 as capped.
				q = m - 1
				s = suffix[q] / L
			}
			for i, e := range pos {
				if i < q {
					speeds[e.k] = e.w / L
					energy += L * math.Pow(e.w/L, alpha)
				} else {
					speeds[e.k] = s
				}
			}
			energy += float64(m-q) * L * math.Pow(s, alpha)
			entryCost = alpha * math.Pow(s, alpha-1)
		}
		total += energy
		for _, e := range entries {
			if s, ok := speeds[e.k]; ok {
				grads[e.k][vi] = alpha * math.Pow(s, alpha-1)
			} else {
				grads[e.k][vi] = entryCost
			}
		}
		// Jobs active here but with no x entry at all still need a
		// gradient for the LMO; fill lazily below.
		_ = vi
	}

	// Ensure every active (job, interval) pair has a gradient: a missing
	// entry means x_kj was never initialized there (cannot happen with the
	// proportional init, but keep the oracle total).
	for k, j := range in.Jobs {
		for vi, iv := range ivs {
			if !j.ActiveIn(iv.Start, iv.End) {
				continue
			}
			if _, ok := grads[k][vi]; !ok {
				grads[k][vi] = 0
			}
			_ = iv
		}
	}
	return total, grads
}
