package convexopt

import (
	"math"
	"testing"

	"mpss/internal/job"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
)

func TestSingleJobClosedForm(t *testing.T) {
	in, _ := job.NewInstance(1, []job.Job{{ID: 1, Release: 0, Deadline: 4, Work: 8}})
	res, err := Bound(in, 2, 200, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: speed 2 for 4 time units -> energy 16.
	if math.Abs(res.Upper-16) > 1e-3 {
		t.Errorf("Upper = %v, want 16", res.Upper)
	}
	if res.Lower > res.Upper+1e-9 {
		t.Errorf("Lower %v exceeds Upper %v", res.Lower, res.Upper)
	}
}

func TestThreeJobsTwoProcs(t *testing.T) {
	// Known optimum 54 (three equal jobs sharing two processors).
	jobs := []job.Job{
		{ID: 1, Release: 0, Deadline: 3, Work: 6},
		{ID: 2, Release: 0, Deadline: 3, Work: 6},
		{ID: 3, Release: 0, Deadline: 3, Work: 6},
	}
	in, _ := job.NewInstance(2, jobs)
	res, err := Bound(in, 2, 200, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Upper-54) > 0.05 {
		t.Errorf("Upper = %v, want 54", res.Upper)
	}
}

// The central E1 check: the combinatorial optimum's energy must sit within
// the Frank–Wolfe bracket on random instances, for several alphas and
// machine counts.
func TestCombinatorialOptimumWithinBracket(t *testing.T) {
	for _, alpha := range []float64{1.5, 2, 3} {
		for _, m := range []int{1, 2, 3} {
			for seed := int64(0); seed < 4; seed++ {
				in, err := workload.Uniform(workload.Spec{N: 8, M: m, Seed: seed, Horizon: 30})
				if err != nil {
					t.Fatal(err)
				}
				optRes, err := opt.Schedule(in)
				if err != nil {
					t.Fatal(err)
				}
				e := optRes.Schedule.Energy(power.MustAlpha(alpha))
				cvx, err := Bound(in, alpha, 400, 1e-5)
				if err != nil {
					t.Fatal(err)
				}
				// Feasible schedule cannot beat the relaxation's true
				// optimum, so it cannot be measurably below Lower.
				if e < cvx.Lower-0.01*(1+e) {
					t.Errorf("alpha=%v m=%d seed=%d: opt %v below certificate %v",
						alpha, m, seed, e, cvx.Lower)
				}
				// And optimality: the relaxation cannot find anything
				// much cheaper than the claimed optimum.
				if cvx.Upper < e-0.005*(1+e) {
					t.Errorf("alpha=%v m=%d seed=%d: FW found %v < claimed optimum %v",
						alpha, m, seed, cvx.Upper, e)
				}
				// The two should in fact nearly coincide.
				if rel := math.Abs(cvx.Upper-e) / (1 + e); rel > 0.02 {
					t.Errorf("alpha=%v m=%d seed=%d: FW %v vs opt %v (rel %.3f)",
						alpha, m, seed, cvx.Upper, e, rel)
				}
			}
		}
	}
}

func TestValidation(t *testing.T) {
	in, _ := job.NewInstance(1, []job.Job{{ID: 1, Release: 0, Deadline: 1, Work: 1}})
	if _, err := Bound(in, 1, 10, 1e-3); err == nil {
		t.Error("alpha=1 accepted")
	}
	if _, err := Bound(in, 2, 0, 1e-3); err == nil {
		t.Error("maxIters=0 accepted")
	}
}

func TestGapShrinks(t *testing.T) {
	in, err := workload.Bursty(workload.Spec{N: 8, M: 2, Seed: 1, Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	short, err := Bound(in, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Bound(in, 2, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if long.Upper > short.Upper+1e-9 {
		t.Errorf("more iterations worsened Upper: %v -> %v", short.Upper, long.Upper)
	}
	if long.Gap > short.Gap+1e-9 {
		t.Errorf("more iterations worsened Gap: %v -> %v", short.Gap, long.Gap)
	}
}
