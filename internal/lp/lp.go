// Package lp is a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize   c.x
//	subject to A x {<=,=,>=} b,  x >= 0.
//
// It exists as the substrate for the Bingham–Greenstreet-style LP baseline
// (internal/bg) that the paper's combinatorial algorithm replaces, and is
// deliberately a straightforward textbook implementation: Bland's rule for
// anti-cycling, explicit artificial variables in phase one, and a dense
// tableau. It is exact enough for the moderate instances of the test and
// benchmark suites, not a general-purpose production LP code.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the constraint sense.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // <=
	EQ                 // ==
	GE                 // >=
)

// Constraint is one row: Coef . x  Rel  RHS.
type Constraint struct {
	Coef []float64
	Rel  Relation
	RHS  float64
}

// Problem is a minimization LP over non-negative variables.
type Problem struct {
	Obj  []float64 // length = number of variables
	Rows []Constraint
}

// AddRow appends a constraint, padding or validating its width.
func (p *Problem) AddRow(coef []float64, rel Relation, rhs float64) error {
	if len(coef) != len(p.Obj) {
		return fmt.Errorf("lp: row has %d coefficients, want %d", len(coef), len(p.Obj))
	}
	p.Rows = append(p.Rows, Constraint{Coef: append([]float64(nil), coef...), Rel: rel, RHS: rhs})
	return nil
}

// Status reports the solver outcome.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String names the solver outcome.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Solution is the solver output; X and Value are meaningful only when
// Status == Optimal.
type Solution struct {
	Status Status
	X      []float64
	Value  float64
	Pivots int
}

const eps = 1e-9

// Solve runs two-phase simplex and returns the solution. An error is
// returned only for malformed input; infeasibility and unboundedness are
// reported through Status.
func Solve(p *Problem) (*Solution, error) {
	n := len(p.Obj)
	if n == 0 {
		return nil, errors.New("lp: no variables")
	}
	m := len(p.Rows)
	if m == 0 {
		return nil, errors.New("lp: no constraints")
	}
	for i, r := range p.Rows {
		if len(r.Coef) != n {
			return nil, fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(r.Coef), n)
		}
		for _, v := range append(append([]float64{}, r.Coef...), r.RHS) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("lp: row %d contains a non-finite value", i)
			}
		}
	}

	// Count slack/surplus columns and normalize RHS signs.
	type rowInfo struct {
		rel   Relation
		scale float64 // +-1 applied to make RHS >= 0
	}
	infos := make([]rowInfo, m)
	slackCount := 0
	for i, r := range p.Rows {
		rel, scale := r.Rel, 1.0
		if r.RHS < 0 {
			scale = -1
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		infos[i] = rowInfo{rel: rel, scale: scale}
		if rel != EQ {
			slackCount++
		}
	}

	// Column layout: [structural | slack/surplus | artificial].
	// Every row receives an artificial variable; for LE rows with RHS >= 0
	// the slack could serve as the basis, but always adding artificials
	// keeps the code uniform and costs only columns.
	total := n + slackCount + m
	tab := make([][]float64, m+1) // last row = objective
	for i := range tab {
		tab[i] = make([]float64, total+1) // last column = RHS
	}
	basis := make([]int, m)

	slackCol := n
	artCol := n + slackCount
	for i, r := range p.Rows {
		info := infos[i]
		for jx, v := range r.Coef {
			tab[i][jx] = info.scale * v
		}
		tab[i][total] = info.scale * r.RHS
		switch info.rel {
		case LE:
			tab[i][slackCol] = 1
			slackCol++
		case GE:
			tab[i][slackCol] = -1
			slackCol++
		}
		tab[i][artCol+i] = 1
		basis[i] = artCol + i
	}

	// Phase 1: minimize the sum of artificials.
	obj := tab[m]
	for j := artCol; j < artCol+m; j++ {
		obj[j] = 1
	}
	// Price out the artificial basis.
	for i := 0; i < m; i++ {
		for j := 0; j <= total; j++ {
			obj[j] -= tab[i][j]
		}
	}
	pivots, status := iterate(tab, basis, total, artCol)
	if status == Unbounded {
		return &Solution{Status: Infeasible, Pivots: pivots}, nil
	}
	if -obj[total] > 1e-7 { // phase-1 objective value is -obj[RHS]
		return &Solution{Status: Infeasible, Pivots: pivots}, nil
	}
	// Drive any remaining artificial variables out of the basis.
	for i := 0; i < m; i++ {
		if basis[i] < artCol {
			continue
		}
		pivoted := false
		for j := 0; j < artCol; j++ {
			if math.Abs(tab[i][j]) > eps {
				pivot(tab, basis, i, j, total)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row; zero it so it cannot interfere.
			for j := 0; j <= total; j++ {
				tab[i][j] = 0
			}
		}
	}

	// Phase 2: install the real objective and forbid artificial columns.
	for j := 0; j <= total; j++ {
		obj[j] = 0
	}
	for jx, v := range p.Obj {
		obj[jx] = v
	}
	for i := 0; i < m; i++ {
		b := basis[i]
		if b >= artCol || math.Abs(obj[b]) < eps {
			continue
		}
		coef := obj[b]
		for j := 0; j <= total; j++ {
			obj[j] -= coef * tab[i][j]
		}
	}
	p2, status := iterate(tab, basis, total, artCol)
	pivots += p2
	if status == Unbounded {
		return &Solution{Status: Unbounded, Pivots: pivots}, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	var value float64
	for jx, c := range p.Obj {
		value += c * x[jx]
	}
	return &Solution{Status: Optimal, X: x, Value: value, Pivots: pivots}, nil
}

// iterate runs simplex pivots with Bland's rule until optimality or
// unboundedness, never entering columns >= forbidFrom.
func iterate(tab [][]float64, basis []int, total, forbidFrom int) (int, Status) {
	m := len(basis)
	obj := tab[m]
	pivots := 0
	for {
		// Bland: entering column = smallest index with negative reduced cost.
		col := -1
		for j := 0; j < forbidFrom; j++ {
			if obj[j] < -eps {
				col = j
				break
			}
		}
		if col < 0 {
			return pivots, Optimal
		}
		// Ratio test, Bland tie-break on basis index.
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][col]
			if a > eps {
				ratio := tab[i][total] / a
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (row < 0 || basis[i] < basis[row])) {
					bestRatio = ratio
					row = i
				}
			}
		}
		if row < 0 {
			return pivots, Unbounded
		}
		pivot(tab, basis, row, col, total)
		pivots++
	}
}

// pivot performs a full tableau pivot on (row, col).
func pivot(tab [][]float64, basis []int, row, col, total int) {
	p := tab[row][col]
	inv := 1 / p
	for j := 0; j <= total; j++ {
		tab[row][j] *= inv
	}
	tab[row][col] = 1 // kill residual rounding
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * tab[row][j]
		}
		tab[i][col] = 0
	}
	basis[row] = col
}
