package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTextbookMaximization(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Hillier/Lieberman)
	// -> x = 2, y = 6, value 36. We minimize the negation.
	p := &Problem{Obj: []float64{-3, -5}}
	p.AddRow([]float64{1, 0}, LE, 4)
	p.AddRow([]float64{0, 2}, LE, 12)
	p.AddRow([]float64{3, 2}, LE, 18)
	s := solve(t, p)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if math.Abs(s.Value+36) > 1e-7 {
		t.Errorf("value = %v, want -36", s.Value)
	}
	if math.Abs(s.X[0]-2) > 1e-7 || math.Abs(s.X[1]-6) > 1e-7 {
		t.Errorf("x = %v, want (2,6)", s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x >= 3, y >= 2 -> x=8, y=2, value 12.
	p := &Problem{Obj: []float64{1, 2}}
	p.AddRow([]float64{1, 1}, EQ, 10)
	p.AddRow([]float64{1, 0}, GE, 3)
	p.AddRow([]float64{0, 1}, GE, 2)
	s := solve(t, p)
	if s.Status != Optimal || math.Abs(s.Value-12) > 1e-7 {
		t.Fatalf("status %v value %v, want optimal 12", s.Status, s.Value)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -5  (i.e. x >= 5) -> 5.
	p := &Problem{Obj: []float64{1}}
	p.AddRow([]float64{-1}, LE, -5)
	s := solve(t, p)
	if s.Status != Optimal || math.Abs(s.Value-5) > 1e-7 {
		t.Fatalf("value = %v (%v), want 5", s.Value, s.Status)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{Obj: []float64{1}}
	p.AddRow([]float64{1}, LE, 1)
	p.AddRow([]float64{1}, GE, 2)
	s := solve(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x >= 1 -> unbounded below.
	p := &Problem{Obj: []float64{-1}}
	p.AddRow([]float64{1}, GE, 1)
	s := solve(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Beale's classic cycling example; Bland's rule must terminate.
	p := &Problem{Obj: []float64{-0.75, 150, -0.02, 6}}
	p.AddRow([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddRow([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddRow([]float64{0, 0, 1, 0}, LE, 1)
	s := solve(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Value+0.05) > 1e-7 {
		t.Errorf("value = %v, want -0.05", s.Value)
	}
}

func TestRedundantRows(t *testing.T) {
	p := &Problem{Obj: []float64{1, 1}}
	p.AddRow([]float64{1, 1}, EQ, 4)
	p.AddRow([]float64{2, 2}, EQ, 8) // same constraint scaled
	s := solve(t, p)
	if s.Status != Optimal || math.Abs(s.Value-4) > 1e-7 {
		t.Fatalf("value = %v (%v), want 4", s.Value, s.Status)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Error("empty problem accepted")
	}
	p := &Problem{Obj: []float64{1}}
	if _, err := Solve(p); err == nil {
		t.Error("no constraints accepted")
	}
	if err := p.AddRow([]float64{1, 2}, LE, 1); err == nil {
		t.Error("wrong-width row accepted")
	}
	p.Rows = append(p.Rows, Constraint{Coef: []float64{math.NaN()}, Rel: LE, RHS: 1})
	if _, err := Solve(p); err == nil {
		t.Error("NaN coefficient accepted")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(9).String() != "unknown" {
		t.Error("Status.String values wrong")
	}
}

// Property: on random transportation-style problems (always feasible and
// bounded) the solution satisfies every constraint and matches a
// brute-force vertex check on tiny cases.
func TestRandomFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		p := &Problem{Obj: make([]float64, n)}
		for j := range p.Obj {
			p.Obj[j] = rng.Float64() * 5
		}
		// sum x = supply, each x <= cap (caps sum above supply).
		supply := 1 + rng.Float64()*5
		ones := make([]float64, n)
		caps := make([]float64, n)
		var capSum float64
		for j := range ones {
			ones[j] = 1
			caps[j] = supply/float64(n) + rng.Float64()*supply
			capSum += caps[j]
		}
		if capSum < supply {
			return true // skip pathological draw
		}
		p.AddRow(ones, EQ, supply)
		for j := range caps {
			row := make([]float64, n)
			row[j] = 1
			p.AddRow(row, LE, caps[j])
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		var sum float64
		for j, v := range s.X {
			if v < -1e-7 || v > caps[j]+1e-7 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-supply) > 1e-6 {
			return false
		}
		// Optimal must not beat the greedy fill of cheapest slots.
		type slot struct{ c, cap float64 }
		slots := make([]slot, n)
		for j := range slots {
			slots[j] = slot{p.Obj[j], caps[j]}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if slots[j].c < slots[i].c {
					slots[i], slots[j] = slots[j], slots[i]
				}
			}
		}
		left, best := supply, 0.0
		for _, sl := range slots {
			take := math.Min(left, sl.cap)
			best += take * sl.c
			left -= take
		}
		return math.Abs(s.Value-best) < 1e-6*(1+math.Abs(best))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
