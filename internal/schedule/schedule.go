// Package schedule represents multi-processor variable-speed schedules and
// verifies the feasibility invariants of the speed-scaling model:
//
//   - every job runs only inside its [release, deadline) window,
//   - a processor runs at most one job at a time,
//   - a job never runs on two processors simultaneously (migration is
//     allowed, parallel self-execution is not),
//   - every job completes exactly its processing volume.
//
// Schedules are piecewise-constant: a Segment pins one job to one
// processor at one speed over a half-open time window. Lemmas 1 and 2 of
// the paper guarantee optimal schedules of this shape exist.
package schedule

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mpss/internal/job"
	"mpss/internal/power"
)

// DefaultTolerance is the absolute tolerance used by Verify for time and
// work comparisons unless overridden.
const DefaultTolerance = 1e-6

// Segment is a maximal run of one job on one processor at constant speed.
type Segment struct {
	Proc  int     `json:"proc"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	JobID int     `json:"job"`
	Speed float64 `json:"speed"`
}

// Work returns the processing volume completed by the segment.
func (s Segment) Work() float64 { return s.Speed * (s.End - s.Start) }

// Len returns the segment duration.
func (s Segment) Len() float64 { return s.End - s.Start }

// String renders the segment compactly for logs and error messages.
func (s Segment) String() string {
	return fmt.Sprintf("P%d[%g,%g) J%d @%g", s.Proc, s.Start, s.End, s.JobID, s.Speed)
}

// Schedule is a set of segments over M processors.
type Schedule struct {
	M        int       `json:"m"`
	Segments []Segment `json:"segments"`
}

// New returns an empty schedule over m processors.
func New(m int) *Schedule {
	return &Schedule{M: m}
}

// Add appends a segment, dropping zero-or-negative-length or zero-speed
// segments silently (they carry no work).
func (s *Schedule) Add(seg Segment) {
	if seg.End-seg.Start <= 0 || seg.Speed <= 0 {
		return
	}
	s.Segments = append(s.Segments, seg)
}

// Extend appends all segments of other into s.
func (s *Schedule) Extend(other *Schedule) {
	s.Segments = append(s.Segments, other.Segments...)
}

// Normalize sorts segments by (processor, start) and merges abutting
// segments of the same job and speed on the same processor.
func (s *Schedule) Normalize() {
	sort.Slice(s.Segments, func(a, b int) bool {
		x, y := s.Segments[a], s.Segments[b]
		if x.Proc != y.Proc {
			return x.Proc < y.Proc
		}
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		return x.End < y.End
	})
	merged := s.Segments[:0]
	for _, seg := range s.Segments {
		if n := len(merged); n > 0 {
			last := &merged[n-1]
			if last.Proc == seg.Proc && last.JobID == seg.JobID &&
				math.Abs(last.End-seg.Start) < 1e-12 &&
				math.Abs(last.Speed-seg.Speed) < 1e-12 {
				last.End = seg.End
				continue
			}
		}
		merged = append(merged, seg)
	}
	s.Segments = merged
}

// Energy returns the total energy of the schedule under power function p.
// Idle time contributes nothing (P(0) = 0 by the model).
func (s *Schedule) Energy(p power.Function) float64 {
	var e float64
	for _, seg := range s.Segments {
		e += p.Energy(seg.Speed, seg.Len())
	}
	return e
}

// WorkByJob returns the processing volume completed per job ID.
func (s *Schedule) WorkByJob() map[int]float64 {
	out := make(map[int]float64)
	for _, seg := range s.Segments {
		out[seg.JobID] += seg.Work()
	}
	return out
}

// CompletedWork returns the volume of the given job finished in [from, to),
// clipping segments to the window. The online simulator uses it to deplete
// remaining volumes between planning events.
func (s *Schedule) CompletedWork(jobID int, from, to float64) float64 {
	var w float64
	for _, seg := range s.Segments {
		if seg.JobID != jobID {
			continue
		}
		lo := math.Max(seg.Start, from)
		hi := math.Min(seg.End, to)
		if hi > lo {
			w += seg.Speed * (hi - lo)
		}
	}
	return w
}

// JobSpeeds returns, for each job ID, the sorted distinct speeds at which
// the job runs, clustering speeds within tol of each other.
func (s *Schedule) JobSpeeds(tol float64) map[int][]float64 {
	bySpeed := make(map[int][]float64)
	for _, seg := range s.Segments {
		bySpeed[seg.JobID] = append(bySpeed[seg.JobID], seg.Speed)
	}
	for id, speeds := range bySpeed {
		bySpeed[id] = clusterSpeeds(speeds, tol)
	}
	return bySpeed
}

// DistinctSpeeds returns the sorted (descending) distinct speeds used in
// the schedule, clustering within tol. Lemma 1 implies an optimal schedule
// has at most n distinct speeds.
func (s *Schedule) DistinctSpeeds(tol float64) []float64 {
	speeds := make([]float64, 0, len(s.Segments))
	for _, seg := range s.Segments {
		speeds = append(speeds, seg.Speed)
	}
	out := clusterSpeeds(speeds, tol)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

func clusterSpeeds(speeds []float64, tol float64) []float64 {
	if len(speeds) == 0 {
		return nil
	}
	sort.Float64s(speeds)
	out := []float64{speeds[0]}
	for _, v := range speeds[1:] {
		if v-out[len(out)-1] > tol {
			out = append(out, v)
		}
	}
	return out
}

// SpeedsAt returns the speed of each processor at time t (0 when idle).
func (s *Schedule) SpeedsAt(t float64) []float64 {
	out := make([]float64, s.M)
	for _, seg := range s.Segments {
		if seg.Start <= t && t < seg.End {
			out[seg.Proc] = seg.Speed
		}
	}
	return out
}

// MinSpeedAt returns the minimum processor speed at time t, counting idle
// processors as speed 0.
func (s *Schedule) MinSpeedAt(t float64) float64 {
	speeds := s.SpeedsAt(t)
	mn := math.Inf(1)
	for _, v := range speeds {
		mn = math.Min(mn, v)
	}
	return mn
}

// Span returns the earliest segment start and latest segment end, or
// (0, 0) for an empty schedule.
func (s *Schedule) Span() (start, end float64) {
	if len(s.Segments) == 0 {
		return 0, 0
	}
	start, end = math.Inf(1), math.Inf(-1)
	for _, seg := range s.Segments {
		start = math.Min(start, seg.Start)
		end = math.Max(end, seg.End)
	}
	return start, end
}

// Clip returns a copy of the schedule restricted to [from, to).
func (s *Schedule) Clip(from, to float64) *Schedule {
	out := New(s.M)
	for _, seg := range s.Segments {
		lo := math.Max(seg.Start, from)
		hi := math.Min(seg.End, to)
		if hi > lo {
			out.Add(Segment{Proc: seg.Proc, Start: lo, End: hi, JobID: seg.JobID, Speed: seg.Speed})
		}
	}
	return out
}

// VerifyOption adjusts feasibility checking.
type VerifyOption func(*verifyConfig)

type verifyConfig struct {
	tol         float64
	partialWork bool
}

// WithTolerance sets the absolute tolerance for time and work comparisons.
func WithTolerance(tol float64) VerifyOption {
	return func(c *verifyConfig) { c.tol = tol }
}

// AllowPartialWork skips the "every job completes exactly its volume"
// check; overlap and window checks still apply. Used for clipped prefixes
// of online schedules.
func AllowPartialWork() VerifyOption {
	return func(c *verifyConfig) { c.partialWork = true }
}

// Verify checks the schedule against the instance and returns the first
// violated invariant, or nil when the schedule is feasible.
func (s *Schedule) Verify(in *job.Instance, opts ...VerifyOption) error {
	cfg := verifyConfig{tol: DefaultTolerance}
	for _, o := range opts {
		o(&cfg)
	}
	tol := cfg.tol

	if s.M != in.M {
		return fmt.Errorf("schedule: schedule has m=%d, instance m=%d", s.M, in.M)
	}

	byProc := make([][]Segment, s.M)
	byJob := make(map[int][]Segment)
	for _, seg := range s.Segments {
		if seg.Proc < 0 || seg.Proc >= s.M {
			return fmt.Errorf("schedule: segment %v uses processor outside [0,%d)", seg, s.M)
		}
		if seg.End <= seg.Start {
			return fmt.Errorf("schedule: segment %v has non-positive length", seg)
		}
		if seg.Speed <= 0 || math.IsNaN(seg.Speed) || math.IsInf(seg.Speed, 0) {
			return fmt.Errorf("schedule: segment %v has invalid speed", seg)
		}
		j, ok := in.ByID(seg.JobID)
		if !ok {
			return fmt.Errorf("schedule: segment %v references unknown job", seg)
		}
		if seg.Start < j.Release-tol || seg.End > j.Deadline+tol {
			return fmt.Errorf("schedule: segment %v escapes window [%g,%g)", seg, j.Release, j.Deadline)
		}
		byProc[seg.Proc] = append(byProc[seg.Proc], seg)
		byJob[seg.JobID] = append(byJob[seg.JobID], seg)
	}

	// No processor runs two segments at once.
	for p, segs := range byProc {
		sort.Slice(segs, func(a, b int) bool { return segs[a].Start < segs[b].Start })
		for i := 1; i < len(segs); i++ {
			if segs[i].Start < segs[i-1].End-tol {
				return fmt.Errorf("schedule: processor %d overlap between %v and %v", p, segs[i-1], segs[i])
			}
		}
	}

	// No job runs on two processors at once.
	for id, segs := range byJob {
		sort.Slice(segs, func(a, b int) bool { return segs[a].Start < segs[b].Start })
		for i := 1; i < len(segs); i++ {
			if segs[i].Start < segs[i-1].End-tol {
				return fmt.Errorf("schedule: job %d runs in parallel: %v and %v", id, segs[i-1], segs[i])
			}
		}
	}

	// Every job finishes its volume.
	if !cfg.partialWork {
		done := s.WorkByJob()
		for _, j := range in.Jobs {
			got := done[j.ID]
			// Work comparisons scale with the job volume.
			if math.Abs(got-j.Work) > tol*(1+j.Work) {
				return fmt.Errorf("schedule: job %d completed %g of %g work", j.ID, got, j.Work)
			}
		}
	}
	return nil
}

// Piece is one job's execution demand inside a single event interval:
// run for Duration time units at Speed.
type Piece struct {
	JobID    int
	Duration float64
	Speed    float64
}

// WrapAround packs the pieces into the interval [start, end) on the given
// processors using McNaughton's wrap-around rule: pieces are laid out on a
// virtual timeline of length len(procs)*(end-start) and split at processor
// boundaries. Because every piece duration is at most the interval length,
// the two halves of a split piece (end of processor mu, start of mu+1)
// never overlap in real time, so the job is not executed in parallel.
//
// The total duration must not exceed the available capacity; pieces must
// individually fit in the interval.
func WrapAround(start, end float64, procs []int, pieces []Piece) ([]Segment, error) {
	length := end - start
	if length <= 0 {
		return nil, fmt.Errorf("schedule: empty interval [%g,%g)", start, end)
	}
	var total float64
	for _, p := range pieces {
		if p.Duration < 0 {
			return nil, fmt.Errorf("schedule: negative duration for job %d", p.JobID)
		}
		if p.Duration > length*(1+1e-9)+1e-12 {
			return nil, fmt.Errorf("schedule: piece of job %d (%g) exceeds interval length %g", p.JobID, p.Duration, length)
		}
		total += p.Duration
	}
	if total > float64(len(procs))*length*(1+1e-9)+1e-12 {
		return nil, fmt.Errorf("schedule: pieces (%g) exceed capacity %g", total, float64(len(procs))*length)
	}

	var segs []Segment
	const eps = 1e-12
	proc := 0
	pos := 0.0 // offset within the current processor's copy of the interval
	emit := func(jobID int, dur, speed float64) {
		if dur <= eps {
			return
		}
		segs = append(segs, Segment{
			Proc:  procs[proc],
			Start: start + pos,
			End:   math.Min(start+pos+dur, end),
			JobID: jobID,
			Speed: speed,
		})
		pos += dur
	}
	for _, p := range pieces {
		remaining := p.Duration
		// Clamp tiny overshoot from floating-point accumulation.
		if remaining > length {
			remaining = length
		}
		room := length - pos
		if remaining > room+eps {
			// Split at the processor boundary.
			emit(p.JobID, room, p.Speed)
			remaining -= room
			if proc+1 >= len(procs) {
				return nil, fmt.Errorf("schedule: ran out of processors packing job %d", p.JobID)
			}
			proc++
			pos = 0
		}
		emit(p.JobID, remaining, p.Speed)
		if pos >= length-eps {
			// Advance to the next processor exactly at the boundary.
			if proc+1 < len(procs) {
				proc++
			}
			pos = 0
		}
	}
	return segs, nil
}

// Gantt renders an ASCII chart of the schedule, one row per processor,
// with the given number of character columns across the time span.
// Intended for examples and debugging, not for parsing.
func (s *Schedule) Gantt(cols int) string {
	if len(s.Segments) == 0 {
		return "(empty schedule)\n"
	}
	if cols < 10 {
		cols = 10
	}
	start, end := s.Span()
	scale := float64(cols) / (end - start)
	var b strings.Builder
	fmt.Fprintf(&b, "time %g .. %g (one column = %.3g)\n", start, end, 1/scale)
	for p := 0; p < s.M; p++ {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, seg := range s.Segments {
			if seg.Proc != p {
				continue
			}
			lo := int(math.Floor((seg.Start - start) * scale))
			hi := int(math.Ceil((seg.End - start) * scale))
			if hi > cols {
				hi = cols
			}
			ch := byte('0' + seg.JobID%10)
			for i := lo; i < hi; i++ {
				row[i] = ch
			}
		}
		fmt.Fprintf(&b, "P%-2d |%s|\n", p, row)
	}
	return b.String()
}
