package schedule

import (
	"math/rand"
	"sort"
	"testing"

	"mpss/internal/job"
)

// FuzzWrapAround drives the McNaughton packer with fuzzer-chosen piece
// mixes and checks that accepted packings preserve durations and never
// overlap a processor or a job with itself.
func FuzzWrapAround(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2))
	f.Add(int64(7), uint8(1), uint8(1))
	f.Add(int64(-4), uint8(10), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, rawPieces, rawProcs uint8) {
		rng := rand.New(rand.NewSource(seed))
		nproc := 1 + int(rawProcs%5)
		nPieces := 1 + int(rawPieces%12)
		length := 0.1 + rng.Float64()*5
		procs := make([]int, nproc)
		for i := range procs {
			procs[i] = i
		}
		capacity := float64(nproc) * length
		pieces := make([]Piece, 0, nPieces)
		used := 0.0
		for id := 1; id <= nPieces; id++ {
			d := rng.Float64() * length
			if used+d > capacity {
				d = capacity - used
			}
			if d <= 0 {
				break
			}
			pieces = append(pieces, Piece{JobID: id, Duration: d, Speed: 0.5 + rng.Float64()})
			used += d
		}
		if len(pieces) == 0 {
			return
		}
		start := rng.Float64() * 10
		segs, err := WrapAround(start, start+length, procs, pieces)
		if err != nil {
			t.Fatalf("valid packing rejected: %v", err)
		}
		perJob := map[int]float64{}
		perProc := map[int][]Segment{}
		perJobSegs := map[int][]Segment{}
		for _, s := range segs {
			if s.Start < start-1e-9 || s.End > start+length+1e-9 {
				t.Fatalf("segment %v escapes interval", s)
			}
			perJob[s.JobID] += s.Len()
			perProc[s.Proc] = append(perProc[s.Proc], s)
			perJobSegs[s.JobID] = append(perJobSegs[s.JobID], s)
		}
		for _, p := range pieces {
			if d := perJob[p.JobID] - p.Duration; d > 1e-9 || d < -1e-9 {
				t.Fatalf("job %d packed %v of %v", p.JobID, perJob[p.JobID], p.Duration)
			}
		}
		check := func(kind string, lists map[int][]Segment) {
			for key, list := range lists {
				sort.Slice(list, func(a, b int) bool { return list[a].Start < list[b].Start })
				for i := 1; i < len(list); i++ {
					if list[i].Start < list[i-1].End-1e-9 {
						t.Fatalf("%s %d overlaps: %v then %v", kind, key, list[i-1], list[i])
					}
				}
			}
		}
		check("processor", perProc)
		check("job", perJobSegs)
	})
}

// FuzzVerify feeds the verifier arbitrary segment soups; it must never
// panic and must reject negative-length or out-of-range segments.
func FuzzVerify(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(2), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, rawSegs uint8) {
		rng := rand.New(rand.NewSource(seed))
		in, err := job.NewInstance(2, []job.Job{
			{ID: 1, Release: 0, Deadline: 5 + rng.Float64()*5, Work: 1 + rng.Float64()},
			{ID: 2, Release: rng.Float64() * 3, Deadline: 11, Work: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		s := New(in.M)
		for i := 0; i < int(rawSegs%12); i++ {
			s.Segments = append(s.Segments, Segment{
				Proc:  rng.Intn(in.M+2) - 1,
				Start: rng.Float64()*12 - 1,
				End:   rng.Float64() * 12,
				JobID: rng.Intn(4),
				Speed: rng.Float64()*4 - 0.5,
			})
		}
		_ = s.Verify(in) // must not panic
		_ = s.ComputeMetrics()
		_ = s.Gantt(20)
	})
}
