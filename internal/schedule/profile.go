package schedule

import (
	"sort"

	"mpss/internal/power"
)

// ProfilePoint is one step of a piecewise-constant time series over a
// schedule: from Time until the next point's Time, the machine runs at
// TotalSpeed (sum over processors) drawing TotalPower under the power
// function the profile was built with.
type ProfilePoint struct {
	Time       float64
	TotalSpeed float64
	TotalPower float64
	Busy       int // processors executing at this step
}

// PowerProfile computes the exact piecewise-constant aggregate
// speed/power series of the schedule under p. The last point always has
// zero speed and marks the end of the schedule. Useful for plotting
// energy traces and for comparing algorithms' power shapes over time.
func (s *Schedule) PowerProfile(p power.Function) []ProfilePoint {
	if len(s.Segments) == 0 {
		return nil
	}
	// Event times: all segment starts and ends.
	set := make(map[float64]bool, 2*len(s.Segments))
	for _, seg := range s.Segments {
		set[seg.Start] = true
		set[seg.End] = true
	}
	times := make([]float64, 0, len(set))
	for t := range set {
		times = append(times, t)
	}
	sort.Float64s(times)

	out := make([]ProfilePoint, 0, len(times))
	for _, t := range times[:len(times)-1] {
		var speed, pow float64
		busy := 0
		for _, seg := range s.Segments {
			if seg.Start <= t && t < seg.End {
				speed += seg.Speed
				pow += p.Power(seg.Speed)
				busy++
			}
		}
		out = append(out, ProfilePoint{Time: t, TotalSpeed: speed, TotalPower: pow, Busy: busy})
	}
	out = append(out, ProfilePoint{Time: times[len(times)-1]})
	return out
}

// ProfileEnergy integrates a profile back into total energy — by
// construction it equals Schedule.Energy under the same power function,
// which the tests use as a consistency check.
func ProfileEnergy(profile []ProfilePoint) float64 {
	var e float64
	for i := 0; i+1 < len(profile); i++ {
		e += profile[i].TotalPower * (profile[i+1].Time - profile[i].Time)
	}
	return e
}
