package schedule

import (
	"math"
	"testing"
)

func TestMetricsEmpty(t *testing.T) {
	m := New(2).ComputeMetrics()
	if m.Jobs != 0 || m.Segments != 0 || m.BusyTime != 0 || m.MinSpeed != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
}

func TestMetricsSingleRun(t *testing.T) {
	s := New(2)
	s.Add(Segment{Proc: 0, Start: 0, End: 4, JobID: 1, Speed: 2})
	m := s.ComputeMetrics()
	if m.Jobs != 1 || m.Segments != 1 || m.Migrations != 0 || m.Preemptions != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.BusyTime != 4 || m.Makespan != 4 {
		t.Errorf("busy/makespan = %v/%v", m.BusyTime, m.Makespan)
	}
	if math.Abs(m.Utilization-0.5) > 1e-12 {
		t.Errorf("utilization = %v, want 0.5 (one of two processors)", m.Utilization)
	}
	if m.MaxSpeed != 2 || m.MinSpeed != 2 {
		t.Errorf("speed range = [%v, %v]", m.MinSpeed, m.MaxSpeed)
	}
}

func TestMetricsMigration(t *testing.T) {
	// Job 1 runs on P0 then resumes on P1 with no gap: one migration,
	// no preemption-with-gap.
	s := New(2)
	s.Add(Segment{Proc: 0, Start: 0, End: 2, JobID: 1, Speed: 1})
	s.Add(Segment{Proc: 1, Start: 2, End: 4, JobID: 1, Speed: 1})
	m := s.ComputeMetrics()
	if m.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", m.Migrations)
	}
	if m.Preemptions != 0 {
		t.Errorf("preemptions = %d, want 0", m.Preemptions)
	}
}

func TestMetricsPreemption(t *testing.T) {
	// Job 1 is interrupted on P0 and resumes later on P0: one preemption,
	// no migration.
	s := New(1)
	s.Add(Segment{Proc: 0, Start: 0, End: 1, JobID: 1, Speed: 1})
	s.Add(Segment{Proc: 0, Start: 1, End: 2, JobID: 2, Speed: 1})
	s.Add(Segment{Proc: 0, Start: 2, End: 3, JobID: 1, Speed: 1})
	m := s.ComputeMetrics()
	if m.Preemptions != 1 || m.Migrations != 0 {
		t.Errorf("preemptions/migrations = %d/%d, want 1/0", m.Preemptions, m.Migrations)
	}
}

func TestMetricsMergedSegmentsNotPreempted(t *testing.T) {
	// Abutting same-speed segments merge in Normalize, so they are not
	// counted as preemptions.
	s := New(1)
	s.Add(Segment{Proc: 0, Start: 0, End: 1, JobID: 1, Speed: 1})
	s.Add(Segment{Proc: 0, Start: 1, End: 2, JobID: 1, Speed: 1})
	m := s.ComputeMetrics()
	if m.Segments != 1 || m.Preemptions != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestMetricsMigrationWithGap(t *testing.T) {
	// Job interrupted on P0, resumes later on P1: both a migration and a
	// preemption.
	s := New(2)
	s.Add(Segment{Proc: 0, Start: 0, End: 1, JobID: 1, Speed: 1})
	s.Add(Segment{Proc: 1, Start: 3, End: 4, JobID: 1, Speed: 1})
	m := s.ComputeMetrics()
	if m.Migrations != 1 || m.Preemptions != 1 {
		t.Errorf("migrations/preemptions = %d/%d, want 1/1", m.Migrations, m.Preemptions)
	}
}
