package schedule

import (
	"math"
	"sort"
)

// Metrics are descriptive statistics of a schedule, used by the examples
// and the experiment harness to characterize how the algorithms use the
// machine (how much migration the optimum actually performs, how busy the
// processors are, and the speed range employed).
type Metrics struct {
	Jobs        int     // distinct jobs appearing in the schedule
	Segments    int     // segments after normalization
	Migrations  int     // times a job resumes on a different processor
	Preemptions int     // times a job is interrupted and later resumed
	BusyTime    float64 // total processor-seconds of execution
	Makespan    float64 // latest segment end minus earliest start
	Utilization float64 // BusyTime / (M * Makespan)
	MaxSpeed    float64
	MinSpeed    float64 // minimum positive speed
}

// ComputeMetrics scans the schedule and derives its Metrics. The schedule
// is normalized (sorted and merged) in place first so that abutting
// same-speed segments do not count as preemptions.
func (s *Schedule) ComputeMetrics() Metrics {
	s.Normalize()
	m := Metrics{MinSpeed: math.Inf(1)}
	if len(s.Segments) == 0 {
		m.MinSpeed = 0
		return m
	}

	byJob := make(map[int][]Segment)
	for _, seg := range s.Segments {
		byJob[seg.JobID] = append(byJob[seg.JobID], seg)
		m.BusyTime += seg.Len()
		m.MaxSpeed = math.Max(m.MaxSpeed, seg.Speed)
		m.MinSpeed = math.Min(m.MinSpeed, seg.Speed)
	}
	m.Segments = len(s.Segments)
	m.Jobs = len(byJob)

	start, end := s.Span()
	m.Makespan = end - start
	if m.Makespan > 0 && s.M > 0 {
		m.Utilization = m.BusyTime / (float64(s.M) * m.Makespan)
	}

	const eps = 1e-9
	for _, segs := range byJob {
		sort.Slice(segs, func(a, b int) bool { return segs[a].Start < segs[b].Start })
		for i := 1; i < len(segs); i++ {
			prev, cur := segs[i-1], segs[i]
			gap := cur.Start - prev.End
			switch {
			case prev.Proc != cur.Proc:
				m.Migrations++
				if gap > eps {
					m.Preemptions++
				}
			case gap > eps:
				m.Preemptions++
			}
		}
	}
	return m
}
