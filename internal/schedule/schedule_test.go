package schedule

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mpss/internal/job"
	"mpss/internal/power"
)

func mustInstance(t *testing.T, m int, jobs []job.Job) *job.Instance {
	t.Helper()
	in, err := job.NewInstance(m, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestAddDropsDegenerate(t *testing.T) {
	s := New(1)
	s.Add(Segment{Proc: 0, Start: 1, End: 1, JobID: 1, Speed: 2}) // zero length
	s.Add(Segment{Proc: 0, Start: 2, End: 1, JobID: 1, Speed: 2}) // negative
	s.Add(Segment{Proc: 0, Start: 0, End: 1, JobID: 1, Speed: 0}) // zero speed
	s.Add(Segment{Proc: 0, Start: 0, End: 1, JobID: 1, Speed: 1}) // kept
	if len(s.Segments) != 1 {
		t.Errorf("got %d segments, want 1", len(s.Segments))
	}
}

func TestNormalizeMerges(t *testing.T) {
	s := New(1)
	s.Add(Segment{Proc: 0, Start: 0, End: 1, JobID: 1, Speed: 2})
	s.Add(Segment{Proc: 0, Start: 1, End: 2, JobID: 1, Speed: 2})
	s.Add(Segment{Proc: 0, Start: 2, End: 3, JobID: 2, Speed: 2})
	s.Normalize()
	if len(s.Segments) != 2 {
		t.Fatalf("got %d segments after merge, want 2", len(s.Segments))
	}
	if s.Segments[0].End != 2 {
		t.Errorf("merged segment end = %v, want 2", s.Segments[0].End)
	}
}

func TestEnergy(t *testing.T) {
	p := power.MustAlpha(2)
	s := New(2)
	s.Add(Segment{Proc: 0, Start: 0, End: 2, JobID: 1, Speed: 3}) // 9*2 = 18
	s.Add(Segment{Proc: 1, Start: 0, End: 1, JobID: 2, Speed: 2}) // 4*1 = 4
	if got := s.Energy(p); math.Abs(got-22) > 1e-12 {
		t.Errorf("Energy = %v, want 22", got)
	}
}

func TestWorkAccounting(t *testing.T) {
	s := New(1)
	s.Add(Segment{Proc: 0, Start: 0, End: 2, JobID: 7, Speed: 3})
	s.Add(Segment{Proc: 0, Start: 4, End: 5, JobID: 7, Speed: 1})
	w := s.WorkByJob()
	if math.Abs(w[7]-7) > 1e-12 {
		t.Errorf("WorkByJob = %v, want 7", w[7])
	}
	if got := s.CompletedWork(7, 1, 4.5); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("CompletedWork = %v, want 3.5", got)
	}
	if got := s.CompletedWork(99, 0, 10); got != 0 {
		t.Errorf("CompletedWork(unknown) = %v", got)
	}
}

func TestSpeedsAt(t *testing.T) {
	s := New(2)
	s.Add(Segment{Proc: 0, Start: 0, End: 2, JobID: 1, Speed: 3})
	s.Add(Segment{Proc: 1, Start: 1, End: 3, JobID: 2, Speed: 5})
	sp := s.SpeedsAt(1.5)
	if sp[0] != 3 || sp[1] != 5 {
		t.Errorf("SpeedsAt(1.5) = %v", sp)
	}
	if got := s.MinSpeedAt(0.5); got != 0 {
		t.Errorf("MinSpeedAt(0.5) = %v, want 0 (P1 idle)", got)
	}
	if got := s.MinSpeedAt(1.5); got != 3 {
		t.Errorf("MinSpeedAt(1.5) = %v, want 3", got)
	}
}

func TestDistinctAndJobSpeeds(t *testing.T) {
	s := New(2)
	s.Add(Segment{Proc: 0, Start: 0, End: 1, JobID: 1, Speed: 2})
	s.Add(Segment{Proc: 0, Start: 1, End: 2, JobID: 2, Speed: 2 + 1e-12})
	s.Add(Segment{Proc: 1, Start: 0, End: 1, JobID: 3, Speed: 5})
	ds := s.DistinctSpeeds(1e-9)
	if len(ds) != 2 || ds[0] != 5 {
		t.Errorf("DistinctSpeeds = %v", ds)
	}
	js := s.JobSpeeds(1e-9)
	if len(js[1]) != 1 || js[1][0] != 2 {
		t.Errorf("JobSpeeds[1] = %v", js[1])
	}
}

func TestSpanAndClip(t *testing.T) {
	s := New(1)
	s.Add(Segment{Proc: 0, Start: 1, End: 3, JobID: 1, Speed: 1})
	s.Add(Segment{Proc: 0, Start: 5, End: 6, JobID: 2, Speed: 1})
	a, b := s.Span()
	if a != 1 || b != 6 {
		t.Errorf("Span = %v,%v", a, b)
	}
	c := s.Clip(2, 5.5)
	if len(c.Segments) != 2 {
		t.Fatalf("Clip kept %d segments", len(c.Segments))
	}
	if c.Segments[0].Start != 2 || c.Segments[1].End != 5.5 {
		t.Errorf("Clip = %v", c.Segments)
	}
	empty := New(1)
	if x, y := empty.Span(); x != 0 || y != 0 {
		t.Errorf("empty Span = %v,%v", x, y)
	}
}

func TestVerifyAcceptsFeasible(t *testing.T) {
	in := mustInstance(t, 2, []job.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 4},
		{ID: 2, Release: 0, Deadline: 2, Work: 2},
	})
	s := New(2)
	s.Add(Segment{Proc: 0, Start: 0, End: 4, JobID: 1, Speed: 1})
	s.Add(Segment{Proc: 1, Start: 0, End: 2, JobID: 2, Speed: 1})
	if err := s.Verify(in); err != nil {
		t.Errorf("feasible schedule rejected: %v", err)
	}
}

func TestVerifyRejections(t *testing.T) {
	in := mustInstance(t, 2, []job.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 4},
		{ID: 2, Release: 1, Deadline: 3, Work: 2},
	})
	cases := []struct {
		name string
		segs []Segment
	}{
		{"window escape", []Segment{
			{Proc: 0, Start: 0, End: 4, JobID: 1, Speed: 1},
			{Proc: 1, Start: 0, End: 2, JobID: 2, Speed: 1}, // starts before release
		}},
		{"processor overlap", []Segment{
			{Proc: 0, Start: 0, End: 4, JobID: 1, Speed: 1},
			{Proc: 0, Start: 1, End: 3, JobID: 2, Speed: 1},
		}},
		{"parallel self-execution", []Segment{
			{Proc: 0, Start: 0, End: 2, JobID: 1, Speed: 1},
			{Proc: 1, Start: 1, End: 3, JobID: 1, Speed: 1},
			{Proc: 1, Start: 1, End: 3, JobID: 2, Speed: 1},
		}},
		{"under-completion", []Segment{
			{Proc: 0, Start: 0, End: 2, JobID: 1, Speed: 1},
			{Proc: 1, Start: 1, End: 3, JobID: 2, Speed: 1},
		}},
		{"unknown job", []Segment{
			{Proc: 0, Start: 0, End: 4, JobID: 9, Speed: 1},
		}},
		{"bad processor", []Segment{
			{Proc: 5, Start: 0, End: 4, JobID: 1, Speed: 1},
		}},
	}
	for _, c := range cases {
		s := New(2)
		s.Segments = c.segs
		if err := s.Verify(in); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestVerifyPartialWork(t *testing.T) {
	in := mustInstance(t, 1, []job.Job{{ID: 1, Release: 0, Deadline: 4, Work: 4}})
	s := New(1)
	s.Add(Segment{Proc: 0, Start: 0, End: 1, JobID: 1, Speed: 1})
	if err := s.Verify(in); err == nil {
		t.Error("partial schedule accepted without AllowPartialWork")
	}
	if err := s.Verify(in, AllowPartialWork()); err != nil {
		t.Errorf("partial schedule rejected with AllowPartialWork: %v", err)
	}
}

func TestVerifyMMismatch(t *testing.T) {
	in := mustInstance(t, 2, []job.Job{{ID: 1, Release: 0, Deadline: 4, Work: 4}})
	s := New(3)
	if err := s.Verify(in); err == nil {
		t.Error("m mismatch accepted")
	}
}

func TestWrapAroundSimple(t *testing.T) {
	segs, err := WrapAround(0, 2, []int{0, 1}, []Piece{
		{JobID: 1, Duration: 2, Speed: 3},
		{JobID: 2, Duration: 1, Speed: 3},
		{JobID: 3, Duration: 1, Speed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range segs {
		total += s.Len()
	}
	if math.Abs(total-4) > 1e-9 {
		t.Errorf("total packed time = %v, want 4", total)
	}
}

func TestWrapAroundSplitNoOverlap(t *testing.T) {
	// Piece of job 2 must split across processors without self-overlap.
	segs, err := WrapAround(0, 2, []int{0, 1}, []Piece{
		{JobID: 1, Duration: 1.5, Speed: 1},
		{JobID: 2, Duration: 1.5, Speed: 1},
		{JobID: 3, Duration: 1, Speed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var j2 []Segment
	for _, s := range segs {
		if s.JobID == 2 {
			j2 = append(j2, s)
		}
	}
	if len(j2) != 2 {
		t.Fatalf("job 2 in %d segments, want 2 (split)", len(j2))
	}
	sort.Slice(j2, func(a, b int) bool { return j2[a].Start < j2[b].Start })
	if j2[0].End > j2[1].Start+1e-12 && j2[0].Proc == j2[1].Proc {
		t.Error("split pieces overlap on one processor")
	}
	// Real-time overlap check across processors.
	if j2[0].Start < j2[1].End && j2[1].Start < j2[0].End {
		t.Errorf("job 2 runs in parallel: %v vs %v", j2[0], j2[1])
	}
}

func TestWrapAroundErrors(t *testing.T) {
	if _, err := WrapAround(2, 2, []int{0}, nil); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := WrapAround(0, 1, []int{0}, []Piece{{JobID: 1, Duration: 2, Speed: 1}}); err == nil {
		t.Error("oversized piece accepted")
	}
	if _, err := WrapAround(0, 1, []int{0}, []Piece{
		{JobID: 1, Duration: 1, Speed: 1},
		{JobID: 2, Duration: 0.5, Speed: 1},
	}); err == nil {
		t.Error("over-capacity packing accepted")
	}
	if _, err := WrapAround(0, 1, []int{0}, []Piece{{JobID: 1, Duration: -1, Speed: 1}}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestGantt(t *testing.T) {
	s := New(2)
	s.Add(Segment{Proc: 0, Start: 0, End: 2, JobID: 1, Speed: 1})
	s.Add(Segment{Proc: 1, Start: 1, End: 3, JobID: 2, Speed: 1})
	out := s.Gantt(30)
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P1") {
		t.Errorf("Gantt missing rows:\n%s", out)
	}
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Errorf("Gantt missing job marks:\n%s", out)
	}
	if got := New(1).Gantt(30); !strings.Contains(got, "empty") {
		t.Errorf("empty Gantt = %q", got)
	}
}

// Property: WrapAround preserves total duration per job, keeps every
// segment inside the interval, never overlaps a processor with itself, and
// never runs a job in parallel with itself.
func TestWrapAroundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		length := 0.5 + rng.Float64()*3
		nproc := 1 + rng.Intn(4)
		procs := make([]int, nproc)
		for i := range procs {
			procs[i] = i
		}
		// Generate pieces filling at most the capacity.
		capacity := float64(nproc) * length
		var pieces []Piece
		used := 0.0
		for id := 1; id <= 10 && used < capacity-1e-9; id++ {
			d := rng.Float64() * length
			if used+d > capacity {
				d = capacity - used
			}
			pieces = append(pieces, Piece{JobID: id, Duration: d, Speed: 1 + rng.Float64()})
			used += d
		}
		segs, err := WrapAround(10, 10+length, procs, pieces)
		if err != nil {
			return false
		}
		perJob := make(map[int]float64)
		perJobSegs := make(map[int][]Segment)
		perProc := make(map[int][]Segment)
		for _, s := range segs {
			if s.Start < 10-1e-9 || s.End > 10+length+1e-9 {
				return false
			}
			perJob[s.JobID] += s.Len()
			perJobSegs[s.JobID] = append(perJobSegs[s.JobID], s)
			perProc[s.Proc] = append(perProc[s.Proc], s)
		}
		for _, p := range pieces {
			if math.Abs(perJob[p.JobID]-p.Duration) > 1e-9 {
				return false
			}
		}
		noOverlap := func(list []Segment) bool {
			sort.Slice(list, func(a, b int) bool { return list[a].Start < list[b].Start })
			for i := 1; i < len(list); i++ {
				if list[i].Start < list[i-1].End-1e-9 {
					return false
				}
			}
			return true
		}
		for _, list := range perProc {
			if !noOverlap(list) {
				return false
			}
		}
		for _, list := range perJobSegs {
			if !noOverlap(list) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
