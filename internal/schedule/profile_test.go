package schedule

import (
	"math"
	"testing"
	"testing/quick"

	"mpss/internal/power"
)

func TestPowerProfileSimple(t *testing.T) {
	p := power.MustAlpha(2)
	s := New(2)
	s.Add(Segment{Proc: 0, Start: 0, End: 2, JobID: 1, Speed: 1})
	s.Add(Segment{Proc: 1, Start: 1, End: 3, JobID: 2, Speed: 2})
	prof := s.PowerProfile(p)
	// Steps at 0, 1, 2; terminator at 3.
	if len(prof) != 4 {
		t.Fatalf("profile = %+v", prof)
	}
	want := []ProfilePoint{
		{Time: 0, TotalSpeed: 1, TotalPower: 1, Busy: 1},
		{Time: 1, TotalSpeed: 3, TotalPower: 5, Busy: 2},
		{Time: 2, TotalSpeed: 2, TotalPower: 4, Busy: 1},
		{Time: 3},
	}
	for i, w := range want {
		g := prof[i]
		if math.Abs(g.Time-w.Time) > 1e-12 || math.Abs(g.TotalSpeed-w.TotalSpeed) > 1e-12 ||
			math.Abs(g.TotalPower-w.TotalPower) > 1e-12 || g.Busy != w.Busy {
			t.Errorf("point %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestPowerProfileEmpty(t *testing.T) {
	if prof := New(1).PowerProfile(power.MustAlpha(2)); prof != nil {
		t.Errorf("empty profile = %v", prof)
	}
	if e := ProfileEnergy(nil); e != 0 {
		t.Errorf("empty profile energy = %v", e)
	}
}

// Property: the profile integrates back to exactly the schedule energy.
func TestProfileEnergyConsistencyProperty(t *testing.T) {
	p := power.MustAlpha(2.5)
	f := func(seed int64) bool {
		s := randomSchedule(seed, 3, 12)
		prof := s.PowerProfile(p)
		return math.Abs(ProfileEnergy(prof)-s.Energy(p)) < 1e-9*(1+s.Energy(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randomSchedule builds a feasible-shaped random schedule (no overlap per
// processor) for profile testing.
func randomSchedule(seed int64, m, segs int) *Schedule {
	s := New(m)
	x := uint64(seed)*2654435761 + 12345
	next := func() float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(x%1000) / 1000
	}
	cursor := make([]float64, m)
	for i := 0; i < segs; i++ {
		p := i % m
		gap := next() * 2
		dur := 0.1 + next()*2
		s.Add(Segment{
			Proc:  p,
			Start: cursor[p] + gap,
			End:   cursor[p] + gap + dur,
			JobID: i + 1,
			Speed: 0.2 + next()*3,
		})
		cursor[p] += gap + dur
	}
	return s
}
