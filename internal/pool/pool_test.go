package pool

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrder(t *testing.T) {
	out, err := Map(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, 4, func(int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Errorf("Map(0) = %v, %v", out, err)
	}
}

func TestMapErrors(t *testing.T) {
	if _, err := Map(-1, 1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := Map[int](3, 1, nil); err == nil {
		t.Error("nil fn accepted")
	}
	sentinel := errors.New("boom")
	_, err := Map(50, 4, func(i int) (int, error) {
		if i == 17 {
			return 0, sentinel
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestMapStopsEarlyAfterError(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(10000, 2, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, errors.New("fail fast")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() > 5000 {
		t.Errorf("ran %d tasks after early failure", calls.Load())
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(100, 0, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Errorf("sum = %d", sum.Load())
	}
	if err := ForEach(1, 1, nil); err == nil {
		t.Error("nil fn accepted")
	}
}

// Property: results match the sequential computation for any worker count.
func TestMapMatchesSequentialProperty(t *testing.T) {
	f := func(rawN, rawW uint8) bool {
		n := int(rawN % 64)
		w := int(rawW%8) + 1
		out, err := Map(n, w, func(i int) (int, error) { return 3*i + 1, nil })
		if err != nil {
			return false
		}
		for i, v := range out {
			if v != 3*i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
