// Package pool provides the bounded-parallelism helper used by the
// experiment harness: fan a fixed index range out over a worker pool,
// collect results in order, and stop on the first error. It is a small,
// allocation-light alternative to pulling in errgroup, built only on
// goroutines and channels.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(i) for i in [0, n) on up to workers goroutines (workers <=
// 0 selects GOMAXPROCS) and returns the results in index order. The
// first error wins; remaining tasks are skipped (already-started tasks
// finish). fn must be safe for concurrent invocation.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("pool: negative task count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	if fn == nil {
		return nil, fmt.Errorf("pool: nil task function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	out := make([]T, n)
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errOnce.Do(func() { firstEr = fmt.Errorf("pool: task %d: %w", i, err) })
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return out, nil
}

// ForEach is Map for side-effecting tasks without results.
func ForEach(n, workers int, fn func(i int) error) error {
	if fn == nil {
		return fmt.Errorf("pool: nil task function")
	}
	_, err := Map(n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
