package pool

import "sync"

// FreeList is a typed free list over sync.Pool: Get hands out a *T
// (allocating on first use via New), Put recycles one. It backs the
// solver arenas — flow graphs and opt solvers are expensive to size up
// but cheap to reset, so callers Get/Put them around each solve instead
// of reallocating. Like sync.Pool, the list is safe for concurrent use
// and may drop items under memory pressure; correctness must not depend
// on an item coming back.
type FreeList[T any] struct {
	once sync.Once
	pool sync.Pool

	// New constructs a fresh item when the list is empty. Optional: when
	// nil, Get returns new(T).
	New func() *T
}

func (f *FreeList[T]) init() {
	f.once.Do(func() {
		f.pool.New = func() any {
			if f.New != nil {
				return f.New()
			}
			return new(T)
		}
	})
}

// Get returns a recycled *T, or a new one when the list is empty. The
// caller owns the item until Put.
func (f *FreeList[T]) Get() *T {
	f.init()
	return f.pool.Get().(*T)
}

// Put recycles an item obtained from Get. The item must not be used
// after Put; the caller is responsible for any reset needed before the
// item is handed out again.
func (f *FreeList[T]) Put(x *T) {
	if x == nil {
		return
	}
	f.init()
	f.pool.Put(x)
}
