package pool

import "sync"

// Deque is a mutex-guarded work-stealing deque: the owning worker pushes
// and pops at the tail (LIFO, keeping its working set hot in cache) while
// thieves steal from the head (FIFO, taking the oldest — and on
// push-relabel workloads typically largest — units of work). A single
// mutex per deque is deliberate: the flow solver's unit of work (one
// vertex discharge) is hundreds of edge scans, so contention on the
// deque lock is negligible next to a lock-free Chase–Lev implementation,
// and the simple version is trivially race-clean under `-race`.
//
// The zero value is an empty, ready-to-use deque.
type Deque[T any] struct {
	mu    sync.Mutex
	items []T
}

// Push appends v at the tail. Called by the owning worker.
func (d *Deque[T]) Push(v T) {
	d.mu.Lock()
	d.items = append(d.items, v)
	d.mu.Unlock()
}

// Pop removes and returns the tail item. Called by the owning worker.
func (d *Deque[T]) Pop() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		var zero T
		return zero, false
	}
	v := d.items[n-1]
	var zero T
	d.items[n-1] = zero // release references held by pointer-ish T
	d.items = d.items[:n-1]
	return v, true
}

// Steal removes and returns the head item. Called by other workers.
func (d *Deque[T]) Steal() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		var zero T
		return zero, false
	}
	v := d.items[0]
	var zero T
	d.items[0] = zero
	d.items = d.items[1:]
	return v, true
}

// Len reports the current number of queued items.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}
