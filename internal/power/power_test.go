package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAlphaValidation(t *testing.T) {
	for _, bad := range []float64{1, 0.5, 0, -2, math.NaN()} {
		if _, err := NewAlpha(bad); err == nil {
			t.Errorf("NewAlpha(%v) accepted, want error", bad)
		}
	}
	for _, good := range []float64{1.0001, 2, 3, 10} {
		if _, err := NewAlpha(good); err != nil {
			t.Errorf("NewAlpha(%v) rejected: %v", good, err)
		}
	}
}

func TestAlphaPower(t *testing.T) {
	a := MustAlpha(3)
	cases := []struct{ s, want float64 }{
		{0, 0}, {-1, 0}, {1, 1}, {2, 8}, {0.5, 0.125},
	}
	for _, c := range cases {
		if got := a.Power(c.s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Power(%v) = %v, want %v", c.s, got, c.want)
		}
	}
	if got := a.Energy(2, 3); math.Abs(got-24) > 1e-12 {
		t.Errorf("Energy(2,3) = %v, want 24", got)
	}
}

func TestAlphaBounds(t *testing.T) {
	a := MustAlpha(2)
	if got := a.OABound(); math.Abs(got-4) > 1e-12 {
		t.Errorf("OABound = %v, want 4", got)
	}
	// (2*2)^2/2 + 1 = 9
	if got := a.AVRBound(); math.Abs(got-9) > 1e-12 {
		t.Errorf("AVRBound = %v, want 9", got)
	}
}

func TestMustAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlpha(0.5) did not panic")
		}
	}()
	MustAlpha(0.5)
}

func TestPolynomial(t *testing.T) {
	p, err := NewPolynomial(Term{C: 1, E: 3}, Term{C: 2, E: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Power(2); math.Abs(got-12) > 1e-12 {
		t.Errorf("Power(2) = %v, want 12", got)
	}
	if got := p.Power(0); got != 0 {
		t.Errorf("Power(0) = %v, want 0", got)
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestPolynomialValidation(t *testing.T) {
	if _, err := NewPolynomial(); err == nil {
		t.Error("empty polynomial accepted")
	}
	if _, err := NewPolynomial(Term{C: -1, E: 2}); err == nil {
		t.Error("negative coefficient accepted")
	}
	if _, err := NewPolynomial(Term{C: 1, E: 0.5}); err == nil {
		t.Error("sub-linear exponent accepted")
	}
	if _, err := NewPolynomial(Term{C: 0, E: 2}); err == nil {
		t.Error("all-zero polynomial accepted")
	}
}

func TestPiecewiseLinear(t *testing.T) {
	p, err := NewPiecewiseLinear([2]float64{1, 1}, [2]float64{2, 4}, [2]float64{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ s, want float64 }{
		{0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 2.5}, {2, 4}, {2.5, 6.5}, {3, 9},
		{4, 14}, // extrapolated final slope 5
	}
	for _, c := range cases {
		if got := p.Power(c.s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Power(%v) = %v, want %v", c.s, got, c.want)
		}
	}
	speeds, powers := p.Breakpoints()
	if len(speeds) != 4 || len(powers) != 4 || speeds[0] != 0 || powers[0] != 0 {
		t.Errorf("Breakpoints() = %v, %v", speeds, powers)
	}
}

func TestPiecewiseLinearValidation(t *testing.T) {
	if _, err := NewPiecewiseLinear(); err == nil {
		t.Error("empty breakpoints accepted")
	}
	if _, err := NewPiecewiseLinear([2]float64{1, 2}, [2]float64{1, 3}); err == nil {
		t.Error("duplicate speed accepted")
	}
	if _, err := NewPiecewiseLinear([2]float64{-1, 1}); err == nil {
		t.Error("negative speed accepted")
	}
	// Concave shape: slope drops from 10 to 1.
	if _, err := NewPiecewiseLinear([2]float64{1, 10}, [2]float64{2, 11}); err == nil {
		t.Error("non-convex breakpoints accepted")
	}
	// Decreasing power.
	if _, err := NewPiecewiseLinear([2]float64{1, 5}, [2]float64{2, 3}); err == nil {
		t.Error("decreasing power accepted")
	}
}

func TestSampleAlphaUpperBounds(t *testing.T) {
	alpha := 2.5
	pl, err := SampleAlpha(alpha, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0.05; s <= 4; s += 0.05 {
		exact := math.Pow(s, alpha)
		approx := pl.Power(s)
		if approx < exact-1e-9 {
			t.Fatalf("piecewise approx %v below exact %v at s=%v", approx, exact, s)
		}
		// Relative tightness only holds away from the origin, where the
		// first chord dominates tiny exact values.
		if s >= 0.5 && approx > exact*1.2+1e-9 {
			t.Fatalf("piecewise approx %v too loose vs %v at s=%v", approx, exact, s)
		}
	}
}

func TestSampleAlphaValidation(t *testing.T) {
	if _, err := SampleAlpha(2, 0, 4); err == nil {
		t.Error("maxSpeed=0 accepted")
	}
	if _, err := SampleAlpha(2, 1, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestCheckConvex(t *testing.T) {
	if err := CheckConvex(MustAlpha(3), 10, 16); err != nil {
		t.Errorf("alpha function failed convexity check: %v", err)
	}
	pl, _ := NewPiecewiseLinear([2]float64{1, 1}, [2]float64{2, 4})
	if err := CheckConvex(pl, 3, 16); err != nil {
		t.Errorf("piecewise-linear failed convexity check: %v", err)
	}
}

// Property: for any alpha in (1, 5] and speeds 0 <= a <= b, power is
// monotone and Energy is bilinear in t.
func TestAlphaMonotoneProperty(t *testing.T) {
	f := func(rawAlpha, rawA, rawB float64) bool {
		alpha := 1 + math.Mod(math.Abs(rawAlpha), 4) + 1e-6
		a := math.Mod(math.Abs(rawA), 100)
		b := a + math.Mod(math.Abs(rawB), 100)
		p := MustAlpha(alpha)
		return p.Power(a) <= p.Power(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: piecewise-linear sampling of s^alpha converges from above.
func TestSampleAlphaRefinementProperty(t *testing.T) {
	f := func(raw uint8) bool {
		k := 4 + int(raw%60)
		coarse, err1 := SampleAlpha(2, 2, k)
		fine, err2 := SampleAlpha(2, 2, 2*k)
		if err1 != nil || err2 != nil {
			return false
		}
		for s := 0.1; s < 2; s += 0.1 {
			if fine.Power(s) > coarse.Power(s)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
