// Package power models processor power functions for dynamic speed scaling.
//
// A power function P maps a processor speed s >= 0 to the instantaneous
// power drawn when running at that speed. The speed-scaling framework of
// Yao, Demers and Shenker — and the multi-processor extension implemented
// by this repository — requires P to be convex and non-decreasing with
// P(0) = 0 (an idle processor draws no dynamic power; sleep states and
// static leakage are outside the model).
//
// The classic family is P(s) = s^alpha with alpha > 1, matching the
// cube-root rule for CMOS devices at alpha = 3. General convex functions
// are supported through the Function interface; PiecewiseLinear and
// Polynomial provide ready-made implementations.
package power

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Function is a convex, non-decreasing power function with P(0) = 0.
//
// Implementations must be safe for concurrent use; all implementations in
// this package are immutable after construction.
type Function interface {
	// Power returns P(s), the instantaneous power at speed s >= 0.
	Power(s float64) float64
	// Energy returns the energy consumed running at constant speed s for
	// duration t, i.e. P(s) * t.
	Energy(s, t float64) float64
	// String returns a short human-readable description.
	String() string
}

// Alpha is the canonical power function P(s) = s^Exponent with Exponent > 1.
type Alpha struct {
	Exponent float64
}

// NewAlpha returns the power function P(s) = s^alpha.
// It returns an error unless alpha > 1, the range required by the
// competitive analyses of OA(m) and AVR(m).
func NewAlpha(alpha float64) (Alpha, error) {
	if math.IsNaN(alpha) || alpha <= 1 {
		return Alpha{}, fmt.Errorf("power: alpha must exceed 1, got %v", alpha)
	}
	return Alpha{Exponent: alpha}, nil
}

// MustAlpha is NewAlpha that panics on invalid alpha. Intended for
// package-level variables and tests.
func MustAlpha(alpha float64) Alpha {
	p, err := NewAlpha(alpha)
	if err != nil {
		panic(err)
	}
	return p
}

// Power returns s^alpha.
func (a Alpha) Power(s float64) float64 {
	if s <= 0 {
		return 0
	}
	return math.Pow(s, a.Exponent)
}

// Energy returns s^alpha * t.
func (a Alpha) Energy(s, t float64) float64 { return a.Power(s) * t }

// String renders the function as s^alpha.
func (a Alpha) String() string { return fmt.Sprintf("s^%g", a.Exponent) }

// OABound returns alpha^alpha, the proven competitive ratio of OA(m)
// (Theorem 2 of the paper).
func (a Alpha) OABound() float64 { return math.Pow(a.Exponent, a.Exponent) }

// AVRBound returns (2*alpha)^alpha/2 + 1, the proven competitive ratio of
// AVR(m) (Theorem 3 of the paper).
func (a Alpha) AVRBound() float64 {
	return math.Pow(2*a.Exponent, a.Exponent)/2 + 1
}

// Polynomial is a convex non-decreasing power function of the form
//
//	P(s) = sum_i Coeffs[i].C * s^Coeffs[i].E
//
// with C >= 0 and E >= 1 for every term, which guarantees convexity and
// monotonicity on s >= 0 and P(0) = 0.
type Polynomial struct {
	terms []Term
}

// Term is one monomial C * s^E of a Polynomial.
type Term struct {
	C float64 // coefficient, must be >= 0
	E float64 // exponent, must be >= 1
}

// NewPolynomial builds a polynomial power function from the given terms.
// Terms with zero coefficient are dropped. At least one term with positive
// coefficient is required.
func NewPolynomial(terms ...Term) (*Polynomial, error) {
	kept := make([]Term, 0, len(terms))
	for _, t := range terms {
		if math.IsNaN(t.C) || math.IsNaN(t.E) || t.C < 0 {
			return nil, fmt.Errorf("power: invalid term coefficient %v", t.C)
		}
		if t.E < 1 {
			return nil, fmt.Errorf("power: term exponent %v < 1 breaks convexity", t.E)
		}
		if t.C > 0 {
			kept = append(kept, t)
		}
	}
	if len(kept) == 0 {
		return nil, errors.New("power: polynomial needs at least one positive term")
	}
	return &Polynomial{terms: kept}, nil
}

// Power evaluates the polynomial at speed s.
func (p *Polynomial) Power(s float64) float64 {
	if s <= 0 {
		return 0
	}
	var sum float64
	for _, t := range p.terms {
		sum += t.C * math.Pow(s, t.E)
	}
	return sum
}

// Energy returns P(s) * t.
func (p *Polynomial) Energy(s, t float64) float64 { return p.Power(s) * t }

// String renders the polynomial term by term.
func (p *Polynomial) String() string {
	out := ""
	for i, t := range p.terms {
		if i > 0 {
			out += " + "
		}
		out += fmt.Sprintf("%g*s^%g", t.C, t.E)
	}
	return out
}

// PiecewiseLinear is a convex non-decreasing piecewise-linear power
// function through the origin, defined by breakpoints with strictly
// increasing speeds and non-decreasing slopes. Beyond the last breakpoint
// the final slope is extrapolated.
//
// Piecewise-linear power functions are exactly the class for which the
// Bingham–Greenstreet linear program is an exact formulation, so this type
// backs the LP baseline in internal/bg.
type PiecewiseLinear struct {
	speeds []float64 // strictly increasing, speeds[0] == 0
	powers []float64 // powers[0] == 0, convex sequence
}

// NewPiecewiseLinear builds a piecewise-linear power function from
// (speed, power) breakpoints. A breakpoint at the origin is implied and
// need not be supplied. Breakpoints must have strictly increasing speeds,
// non-negative powers, and convex (non-decreasing-slope) geometry.
func NewPiecewiseLinear(points ...[2]float64) (*PiecewiseLinear, error) {
	if len(points) == 0 {
		return nil, errors.New("power: piecewise-linear needs at least one breakpoint")
	}
	pts := append([][2]float64{}, points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] })
	speeds := []float64{0}
	powers := []float64{0}
	for _, p := range pts {
		s, w := p[0], p[1]
		if math.IsNaN(s) || math.IsNaN(w) || s <= 0 || w < 0 {
			return nil, fmt.Errorf("power: invalid breakpoint (%v, %v)", s, w)
		}
		if s <= speeds[len(speeds)-1] {
			return nil, fmt.Errorf("power: duplicate breakpoint speed %v", s)
		}
		speeds = append(speeds, s)
		powers = append(powers, w)
	}
	// Convexity + monotonicity: slopes must be non-negative and
	// non-decreasing.
	prevSlope := math.Inf(-1)
	for i := 1; i < len(speeds); i++ {
		slope := (powers[i] - powers[i-1]) / (speeds[i] - speeds[i-1])
		if slope < 0 {
			return nil, fmt.Errorf("power: decreasing segment before speed %v", speeds[i])
		}
		if slope < prevSlope-1e-12 {
			return nil, fmt.Errorf("power: non-convex kink at speed %v", speeds[i-1])
		}
		prevSlope = slope
	}
	return &PiecewiseLinear{speeds: speeds, powers: powers}, nil
}

// SampleAlpha builds a piecewise-linear upper approximation of s^alpha by
// interpolating it at k+1 evenly spaced breakpoints on (0, maxSpeed].
// Chords of a convex function lie above it, so the result upper-bounds
// s^alpha on [0, maxSpeed].
func SampleAlpha(alpha float64, maxSpeed float64, k int) (*PiecewiseLinear, error) {
	if k < 1 || maxSpeed <= 0 {
		return nil, fmt.Errorf("power: invalid sampling k=%d maxSpeed=%v", k, maxSpeed)
	}
	pts := make([][2]float64, 0, k)
	for i := 1; i <= k; i++ {
		s := maxSpeed * float64(i) / float64(k)
		pts = append(pts, [2]float64{s, math.Pow(s, alpha)})
	}
	return NewPiecewiseLinear(pts...)
}

// Power evaluates the function at speed s, extrapolating the last slope
// past the final breakpoint.
func (p *PiecewiseLinear) Power(s float64) float64 {
	if s <= 0 {
		return 0
	}
	n := len(p.speeds)
	i := sort.SearchFloat64s(p.speeds, s)
	if i >= n {
		// Extrapolate the final segment.
		lastSlope := (p.powers[n-1] - p.powers[n-2]) / (p.speeds[n-1] - p.speeds[n-2])
		return p.powers[n-1] + lastSlope*(s-p.speeds[n-1])
	}
	if p.speeds[i] == s {
		return p.powers[i]
	}
	frac := (s - p.speeds[i-1]) / (p.speeds[i] - p.speeds[i-1])
	return p.powers[i-1] + frac*(p.powers[i]-p.powers[i-1])
}

// Energy returns P(s) * t.
func (p *PiecewiseLinear) Energy(s, t float64) float64 { return p.Power(s) * t }

// String summarizes the segment count.
func (p *PiecewiseLinear) String() string {
	return fmt.Sprintf("piecewise-linear(%d segments)", len(p.speeds)-1)
}

// Breakpoints returns copies of the breakpoint speeds and powers,
// including the implied origin.
func (p *PiecewiseLinear) Breakpoints() (speeds, powers []float64) {
	return append([]float64(nil), p.speeds...), append([]float64(nil), p.powers...)
}

// CheckConvex numerically spot-checks that f is convex and non-decreasing
// with f(0)=0 on (0, maxSpeed], probing k midpoints. It is a diagnostic
// guard for user-supplied Function implementations, not a proof.
func CheckConvex(f Function, maxSpeed float64, k int) error {
	if f.Power(0) != 0 {
		return fmt.Errorf("power: P(0) = %v, want 0", f.Power(0))
	}
	if k < 2 {
		k = 2
	}
	prev := 0.0
	for i := 1; i <= k; i++ {
		s := maxSpeed * float64(i) / float64(k)
		v := f.Power(s)
		if v < prev-1e-12 {
			return fmt.Errorf("power: P decreasing near s=%v", s)
		}
		prev = v
		// Midpoint convexity on a random-ish pair.
		a := s / 2
		mid := f.Power((a + s) / 2)
		if mid > (f.Power(a)+f.Power(s))/2+1e-9*(1+f.Power(s)) {
			return fmt.Errorf("power: midpoint convexity violated near s=%v", s)
		}
	}
	return nil
}
