// Package mpsserr defines the error taxonomy of the solver boundary.
// The sentinels live in an internal leaf package so that both the public
// mpss package and the internal solver layers (flow, opt, online) can
// wrap them without an import cycle; the public package re-exports them
// as mpss.ErrInvalidInstance etc.
//
// Classification contract:
//
//   - ErrInvalidInstance: the caller's input is malformed (NaN/Inf
//     fields, inverted windows, non-positive work, m < 1, empty or
//     duplicate-ID instances, invalid caps). Deterministic; retrying is
//     pointless.
//   - ErrInfeasible: the input is well-formed but no schedule satisfies
//     the requested constraints (speed caps, processor overload). Also
//     deterministic.
//   - ErrNumeric: the float64 fast path lost too much precision to
//     certify a decision (drain non-convergence, non-finite derived
//     capacities, emptied candidate sets). The same solve may succeed
//     cold or in exact rational arithmetic; opt.Schedule retries
//     automatically before surfacing this.
//   - ErrInternal: a solver invariant that should hold for every input
//     was violated (a contained panic). Always a bug; the error text
//     carries the phase/round context for the report.
//   - ErrCanceled: the caller's context was canceled (or its deadline
//     expired) while the solve was in flight. The solver noticed at the
//     next phase/round or probe-wave boundary and unwound cleanly; the
//     solver arena stays reusable. Not retried by the fallback ladder —
//     a canceled caller does not want the answer anymore.
package mpsserr

import "errors"

var (
	// ErrInvalidInstance marks errors caused by malformed caller input.
	ErrInvalidInstance = errors.New("mpss: invalid instance")
	// ErrInfeasible marks errors for well-formed but unsatisfiable inputs.
	ErrInfeasible = errors.New("mpss: infeasible")
	// ErrNumeric marks float64-path precision failures; the exact engine
	// may still succeed on the same input.
	ErrNumeric = errors.New("mpss: numeric failure")
	// ErrInternal marks contained solver-invariant violations (bugs).
	ErrInternal = errors.New("mpss: internal solver error")
	// ErrCanceled marks solves abandoned because the caller's context was
	// canceled or timed out mid-solve.
	ErrCanceled = errors.New("mpss: solve canceled")
)
