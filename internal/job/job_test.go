package job

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJobValidate(t *testing.T) {
	good := Job{ID: 1, Release: 0, Deadline: 2, Work: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	bad := []Job{
		{ID: 1, Release: 2, Deadline: 2, Work: 1},           // empty window
		{ID: 1, Release: 3, Deadline: 2, Work: 1},           // inverted window
		{ID: 1, Release: 0, Deadline: 1, Work: 0},           // zero work
		{ID: 1, Release: 0, Deadline: 1, Work: -1},          // negative work
		{ID: 1, Release: math.NaN(), Deadline: 1, Work: 1},  // NaN
		{ID: 1, Release: 0, Deadline: math.Inf(1), Work: 1}, // infinite
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("invalid job accepted: %+v", j)
		}
	}
}

func TestDensityAndSpan(t *testing.T) {
	j := Job{ID: 1, Release: 1, Deadline: 5, Work: 8}
	if got := j.Density(); got != 2 {
		t.Errorf("Density = %v, want 2", got)
	}
	if got := j.Span(); got != 4 {
		t.Errorf("Span = %v, want 4", got)
	}
}

func TestActive(t *testing.T) {
	j := Job{ID: 1, Release: 1, Deadline: 5, Work: 8}
	if !j.ActiveIn(1, 5) || !j.ActiveIn(2, 3) {
		t.Error("ActiveIn false inside window")
	}
	if j.ActiveIn(0, 2) || j.ActiveIn(4, 6) {
		t.Error("ActiveIn true outside window")
	}
	if !j.ActiveAt(1) || j.ActiveAt(5) || j.ActiveAt(0.5) {
		t.Error("ActiveAt boundary handling wrong")
	}
}

func TestNewInstanceValidation(t *testing.T) {
	jobs := []Job{{ID: 1, Release: 0, Deadline: 1, Work: 1}}
	if _, err := NewInstance(0, jobs); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewInstance(1, nil); err == nil {
		t.Error("empty instance accepted")
	}
	dup := []Job{
		{ID: 1, Release: 0, Deadline: 1, Work: 1},
		{ID: 1, Release: 0, Deadline: 2, Work: 1},
	}
	if _, err := NewInstance(1, dup); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := NewInstance(2, jobs); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestInstanceAccessors(t *testing.T) {
	in, err := NewInstance(2, []Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 2},
		{ID: 7, Release: 1, Deadline: 6, Work: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 2 {
		t.Errorf("N = %d", in.N())
	}
	if got := in.TotalWork(); got != 5 {
		t.Errorf("TotalWork = %v", got)
	}
	s, e := in.Horizon()
	if s != 0 || e != 6 {
		t.Errorf("Horizon = %v,%v", s, e)
	}
	if j, ok := in.ByID(7); !ok || j.Work != 3 {
		t.Errorf("ByID(7) = %v,%v", j, ok)
	}
	if _, ok := in.ByID(99); ok {
		t.Error("ByID(99) found a job")
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	in, _ := NewInstance(3, []Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 2},
		{ID: 2, Release: 1, Deadline: 6, Work: 3},
	})
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.M != 3 || back.N() != 2 || back.Jobs[1].Work != 3 {
		t.Errorf("round trip mismatch: %+v", back)
	}
	// Unmarshal must validate.
	if err := json.Unmarshal([]byte(`{"m":0,"jobs":[]}`), &back); err == nil {
		t.Error("invalid JSON instance accepted")
	}
}

func TestPartition(t *testing.T) {
	jobs := []Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 1},
		{ID: 2, Release: 2, Deadline: 6, Work: 1},
		{ID: 3, Release: 2, Deadline: 4, Work: 1}, // coincident events
	}
	ivs := Partition(jobs)
	want := []Interval{{0, 2}, {2, 4}, {4, 6}}
	if len(ivs) != len(want) {
		t.Fatalf("Partition = %v, want %v", ivs, want)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, ivs[i], want[i])
		}
	}
	if Partition(nil) != nil {
		t.Error("Partition(nil) != nil")
	}
}

func TestPartitionFrom(t *testing.T) {
	jobs := []Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 1},
		{ID: 2, Release: 2, Deadline: 6, Work: 1},
	}
	ivs := PartitionFrom(jobs, 3)
	want := []Interval{{3, 4}, {4, 6}}
	if len(ivs) != len(want) {
		t.Fatalf("PartitionFrom = %v, want %v", ivs, want)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, ivs[i], want[i])
		}
	}
}

func TestActiveJobsAndCounts(t *testing.T) {
	jobs := []Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 1},
		{ID: 2, Release: 2, Deadline: 6, Work: 1},
	}
	ivs := Partition(jobs)
	if got := ActiveJobs(jobs, ivs[0]); len(got) != 1 || got[0] != 0 {
		t.Errorf("ActiveJobs(I0) = %v", got)
	}
	if got := ActiveJobs(jobs, ivs[1]); len(got) != 2 {
		t.Errorf("ActiveJobs(I1) = %v", got)
	}
	counts := ActiveCount(jobs, ivs)
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Errorf("ActiveCount = %v", counts)
	}
}

func TestTotalDensity(t *testing.T) {
	jobs := []Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 4}, // density 1
		{ID: 2, Release: 2, Deadline: 6, Work: 8}, // density 2
	}
	if got := TotalDensity(jobs, 1); got != 1 {
		t.Errorf("TotalDensity(1) = %v", got)
	}
	if got := TotalDensity(jobs, 3); got != 3 {
		t.Errorf("TotalDensity(3) = %v", got)
	}
	if got := TotalDensity(jobs, 5); got != 2 {
		t.Errorf("TotalDensity(5) = %v", got)
	}
}

func TestSortByDeadline(t *testing.T) {
	jobs := []Job{
		{ID: 3, Release: 0, Deadline: 5, Work: 1},
		{ID: 1, Release: 0, Deadline: 2, Work: 1},
		{ID: 2, Release: 1, Deadline: 2, Work: 1},
	}
	sorted := SortByDeadline(jobs)
	if sorted[0].ID != 1 || sorted[1].ID != 2 || sorted[2].ID != 3 {
		t.Errorf("SortByDeadline order: %v", sorted)
	}
	// Original untouched.
	if jobs[0].ID != 3 {
		t.Error("SortByDeadline mutated input")
	}
}

// Property: the partition covers exactly [min release, max deadline) with
// contiguous, non-empty intervals, and no event falls strictly inside an
// interval.
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rawN%20)
		jobs := make([]Job, n)
		for i := range jobs {
			r := rng.Float64() * 10
			d := r + 0.1 + rng.Float64()*10
			jobs[i] = Job{ID: i, Release: r, Deadline: d, Work: 1}
		}
		ivs := Partition(jobs)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, j := range jobs {
			lo = math.Min(lo, j.Release)
			hi = math.Max(hi, j.Deadline)
		}
		if ivs[0].Start != lo || ivs[len(ivs)-1].End != hi {
			return false
		}
		for i, iv := range ivs {
			if iv.Len() <= 0 {
				return false
			}
			if i > 0 && ivs[i-1].End != iv.Start {
				return false
			}
			for _, j := range jobs {
				if (j.Release > iv.Start && j.Release < iv.End) ||
					(j.Deadline > iv.Start && j.Deadline < iv.End) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
