// Package job defines the deadline-based scheduling workload model of the
// speed-scaling framework: jobs with release times, deadlines and
// processing volumes, instances of such jobs, and the event-interval
// partition of the time horizon induced by release times and deadlines.
package job

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"mpss/internal/mpsserr"
)

// Job is one unit of work in the Yao–Demers–Shenker model. The job becomes
// available at Release, must be finished by Deadline, and carries Work
// units of processing volume (CPU cycles). Processing the job at speed s
// takes Work/s time.
type Job struct {
	ID       int     `json:"id"`
	Release  float64 `json:"release"`
	Deadline float64 `json:"deadline"`
	Work     float64 `json:"work"`
}

// Density returns w / (d - r), the minimum average speed required to finish
// the job within its own window. AVR(m) schedules every job at (at least)
// its density.
func (j Job) Density() float64 { return j.Work / (j.Deadline - j.Release) }

// Span returns d - r, the length of the job's feasibility window.
func (j Job) Span() float64 { return j.Deadline - j.Release }

// ActiveIn reports whether the job may be processed throughout [start, end),
// i.e. whether [start, end) is contained in [Release, Deadline).
func (j Job) ActiveIn(start, end float64) bool {
	return j.Release <= start && end <= j.Deadline
}

// ActiveAt reports whether the job may be processed at time t.
func (j Job) ActiveAt(t float64) bool { return j.Release <= t && t < j.Deadline }

// Validate reports an error when the job is malformed: non-finite fields,
// an empty or overflowing window, or non-positive work. All errors wrap
// mpsserr.ErrInvalidInstance.
func (j Job) Validate() error {
	for _, v := range []float64{j.Release, j.Deadline, j.Work} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: job %d: non-finite field", mpsserr.ErrInvalidInstance, j.ID)
		}
	}
	if j.Deadline <= j.Release {
		return fmt.Errorf("%w: job %d: deadline %v <= release %v", mpsserr.ErrInvalidInstance, j.ID, j.Deadline, j.Release)
	}
	if math.IsInf(j.Deadline-j.Release, 0) {
		// Both endpoints finite but the span overflows float64; every
		// downstream span/density computation would be infinite.
		return fmt.Errorf("%w: job %d: window [%v,%v] wider than float64 range", mpsserr.ErrInvalidInstance, j.ID, j.Release, j.Deadline)
	}
	if j.Work <= 0 {
		return fmt.Errorf("%w: job %d: work %v <= 0", mpsserr.ErrInvalidInstance, j.ID, j.Work)
	}
	return nil
}

// String renders the job compactly for logs and error messages.
func (j Job) String() string {
	return fmt.Sprintf("J%d[r=%g d=%g w=%g]", j.ID, j.Release, j.Deadline, j.Work)
}

// Instance is a validated job sequence to be scheduled on m processors.
type Instance struct {
	Jobs []Job `json:"jobs"`
	M    int   `json:"m"`
}

// NewInstance validates the jobs and processor count and returns an
// Instance. Job IDs must be unique; jobs are stored in the given order.
func NewInstance(m int, jobs []Job) (*Instance, error) {
	in := &Instance{Jobs: jobs, M: m}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &Instance{Jobs: append([]Job(nil), jobs...), M: m}, nil
}

// Validate checks the instance against the full rejection catalogue: a
// nil or empty instance, m < 1, any malformed job (see Job.Validate) and
// duplicate job IDs. All errors wrap mpsserr.ErrInvalidInstance. The
// solver entry points call it on every instance — including ones built
// as struct literals that never went through NewInstance — so hostile
// values are rejected before they reach the flow arenas.
func (in *Instance) Validate() error {
	if in == nil {
		return fmt.Errorf("%w: nil instance", mpsserr.ErrInvalidInstance)
	}
	if in.M < 1 {
		return fmt.Errorf("%w: need at least one processor, got %d", mpsserr.ErrInvalidInstance, in.M)
	}
	if len(in.Jobs) == 0 {
		return fmt.Errorf("%w: empty instance", mpsserr.ErrInvalidInstance)
	}
	seen := make(map[int]bool, len(in.Jobs))
	for _, j := range in.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("%w: duplicate job ID %d", mpsserr.ErrInvalidInstance, j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}

// N returns the number of jobs.
func (in *Instance) N() int { return len(in.Jobs) }

// TotalWork returns the sum of all processing volumes.
func (in *Instance) TotalWork() float64 {
	var w float64
	for _, j := range in.Jobs {
		w += j.Work
	}
	return w
}

// Horizon returns the earliest release time and the latest deadline.
func (in *Instance) Horizon() (start, end float64) {
	start, end = math.Inf(1), math.Inf(-1)
	for _, j := range in.Jobs {
		start = math.Min(start, j.Release)
		end = math.Max(end, j.Deadline)
	}
	return start, end
}

// ByID returns the job with the given ID and whether it exists.
func (in *Instance) ByID(id int) (Job, bool) {
	for _, j := range in.Jobs {
		if j.ID == id {
			return j, true
		}
	}
	return Job{}, false
}

// MarshalJSON/UnmarshalJSON round-trip instances for the CLI tools.
func (in *Instance) MarshalJSON() ([]byte, error) {
	type alias Instance
	return json.Marshal((*alias)(in))
}

// UnmarshalJSON parses and validates an instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	type alias Instance
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	v, err := NewInstance(a.M, a.Jobs)
	if err != nil {
		return err
	}
	*in = *v
	return nil
}

// Interval is one event interval I_j = [Start, End) of the partition of
// the time horizon along job release times and deadlines. No release time
// or deadline falls strictly inside an interval, so the set of active jobs
// is constant on it.
type Interval struct {
	Start, End float64
}

// Len returns the interval length End - Start.
func (iv Interval) Len() float64 { return iv.End - iv.Start }

// String renders the interval as [start,end).
func (iv Interval) String() string { return fmt.Sprintf("[%g,%g)", iv.Start, iv.End) }

// Partition computes the event intervals of a set of jobs: the sorted
// distinct release times and deadlines tau_1 < ... < tau_k induce the
// intervals [tau_j, tau_{j+1}). Coincident event times are merged.
func Partition(jobs []Job) []Interval {
	if len(jobs) == 0 {
		return nil
	}
	times := make([]float64, 0, 2*len(jobs))
	for _, j := range jobs {
		times = append(times, j.Release, j.Deadline)
	}
	sort.Float64s(times)
	uniq := times[:1]
	for _, t := range times[1:] {
		if t != uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}
	ivs := make([]Interval, 0, len(uniq)-1)
	for i := 0; i+1 < len(uniq); i++ {
		ivs = append(ivs, Interval{Start: uniq[i], End: uniq[i+1]})
	}
	return ivs
}

// PartitionFrom is Partition restricted to the sub-horizon starting at t0:
// events before t0 are clamped to t0 and empty intervals dropped. OA(m)
// uses it when re-planning the remaining workload at time t0.
func PartitionFrom(jobs []Job, t0 float64) []Interval {
	if len(jobs) == 0 {
		return nil
	}
	times := []float64{t0}
	for _, j := range jobs {
		if j.Release > t0 {
			times = append(times, j.Release)
		}
		if j.Deadline > t0 {
			times = append(times, j.Deadline)
		}
	}
	sort.Float64s(times)
	uniq := times[:1]
	for _, t := range times[1:] {
		if t != uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}
	ivs := make([]Interval, 0, len(uniq)-1)
	for i := 0; i+1 < len(uniq); i++ {
		ivs = append(ivs, Interval{Start: uniq[i], End: uniq[i+1]})
	}
	return ivs
}

// ActiveJobs returns the indices (into jobs) of the jobs active throughout
// the interval iv.
func ActiveJobs(jobs []Job, iv Interval) []int {
	var out []int
	for i, j := range jobs {
		if j.ActiveIn(iv.Start, iv.End) {
			out = append(out, i)
		}
	}
	return out
}

// ActiveCount returns, for each interval, how many of the jobs are active
// in it.
func ActiveCount(jobs []Job, ivs []Interval) []int {
	counts := make([]int, len(ivs))
	for jx, iv := range ivs {
		for _, j := range jobs {
			if j.ActiveIn(iv.Start, iv.End) {
				counts[jx]++
			}
		}
	}
	return counts
}

// TotalDensity returns the sum of densities of jobs active at time t —
// the speed the single-processor AVR algorithm would use at t.
func TotalDensity(jobs []Job, t float64) float64 {
	var d float64
	for _, j := range jobs {
		if j.ActiveAt(t) {
			d += j.Density()
		}
	}
	return d
}

// SortByDeadline returns a copy of jobs sorted by deadline, then release,
// then ID — the EDF order used by the single-processor online algorithms.
func SortByDeadline(jobs []Job) []Job {
	out := append([]Job(nil), jobs...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Deadline != out[b].Deadline {
			return out[a].Deadline < out[b].Deadline
		}
		if out[a].Release != out[b].Release {
			return out[a].Release < out[b].Release
		}
		return out[a].ID < out[b].ID
	})
	return out
}
