package obs

import (
	"math"
	"testing"
)

// TestHistogramQuantilesUniform checks the sample-based quantile
// estimator on a known distribution: 1..N uniform grid, where the
// p-quantile is analytically 1 + p·(N−1).
func TestHistogramQuantilesUniform(t *testing.T) {
	var h Histogram
	const n = 1000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i))
	}
	s, err := h.Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"p50", s.Median, 1 + 0.50*(n-1)},
		{"p90", s.P90, 1 + 0.90*(n-1)},
		{"p95", s.P95, 1 + 0.95*(n-1)},
		{"p99", s.P99, 1 + 0.99*(n-1)},
	} {
		if math.Abs(c.got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if s.N != n || s.Min != 1 || s.Max != n {
		t.Errorf("N/Min/Max = %d/%v/%v, want %d/1/%d", s.N, s.Min, s.Max, n, n)
	}
	if want := float64(n+1) / 2; math.Abs(s.Mean-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", s.Mean, want)
	}
}

// TestHistogramQuantilesExponential checks the estimator against the
// analytic quantile function of Exp(1): −ln(1−p), sampled through the
// inverse CDF on a deterministic uniform grid.
func TestHistogramQuantilesExponential(t *testing.T) {
	var h Histogram
	const n = 2000
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / n
		h.Observe(-math.Log(1 - u))
	}
	s, err := h.Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		got  float64
		p    float64
	}{
		{"p50", s.Median, 0.5},
		{"p90", s.P90, 0.9},
		{"p99", s.P99, 0.99},
	} {
		want := -math.Log(1 - c.p)
		// Grid discretization error is O(1/(n(1−p))).
		if math.Abs(c.got-want) > 0.05*want+0.01 {
			t.Errorf("%s = %v, want ≈ %v", c.name, c.got, want)
		}
	}
}

// TestHistogramReservoirBeyondCap drives a histogram far past the
// reservoir capacity: count/sum/extrema stay exact, the reservoir stays
// bounded, and the quantile estimate remains close to the true value of
// the full stream.
func TestHistogramReservoirBeyondCap(t *testing.T) {
	var h Histogram
	const n = 3 * reservoirCap
	for i := 1; i <= n; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	s, err := h.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.N != n {
		t.Errorf("Summary N = %d, want exact %d", s.N, n)
	}
	if s.Min != 1 || s.Max != n {
		t.Errorf("extrema = %v/%v, want exact 1/%d", s.Min, s.Max, n)
	}
	if want := float64(n+1) / 2; math.Abs(s.Mean-want) > 1e-9 {
		t.Errorf("mean = %v, want exact %v", s.Mean, want)
	}
	if len(h.samples) != reservoirCap {
		t.Errorf("reservoir grew to %d, cap %d", len(h.samples), reservoirCap)
	}
	// The uniform reservoir should estimate the p50 of U{1..n} within a
	// few percent (binomial error at 4096 samples is ≈ 1.5% for p50).
	if want := float64(n) / 2; math.Abs(s.Median-want) > 0.1*want {
		t.Errorf("reservoir median = %v, want ≈ %v", s.Median, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.SetBuckets([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	bounds, cum, count, sum, ok := h.exposition()
	if !ok {
		t.Fatal("exposition not ok")
	}
	if len(bounds) != 3 || bounds[0] != 1 || bounds[2] != 4 {
		t.Fatalf("bounds = %v", bounds)
	}
	// le=1: {0.5, 1}; le=2: +{1.5}; le=4: +{3}; +Inf: +{100}.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if count != 5 || sum != 0.5+1+1.5+3+100 {
		t.Errorf("count/sum = %d/%v", count, sum)
	}
	// Default grid engages when no explicit bounds were set.
	var d Histogram
	d.Observe(0.003)
	bounds, cum, _, _, ok = d.exposition()
	if !ok || len(bounds) != len(DefaultBuckets) {
		t.Fatalf("default bounds = %v", bounds)
	}
	var total uint64
	for _, c := range cum {
		total = c // cumulative: last is total
	}
	if total != 1 {
		t.Errorf("default-grid total = %d, want 1", total)
	}
	// Empty histograms expose nothing.
	var e Histogram
	if _, _, _, _, ok := e.exposition(); ok {
		t.Error("empty histogram claims exposition data")
	}
}

func TestSpanTags(t *testing.T) {
	r := New()
	sp := r.StartSpan("request")
	sp.SetTag("request_id", "abc-123")
	sp.End()
	snap := r.Snapshot()
	if len(snap.Trace) != 1 || snap.Trace[0].Tags["request_id"] != "abc-123" {
		t.Fatalf("trace = %+v, want request_id tag", snap.Trace)
	}
	// Nil-safety.
	var nilSpan *Span
	nilSpan.SetTag("k", "v")
}
