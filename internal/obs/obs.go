// Package obs is the zero-dependency observability substrate of the
// reproduction: named atomic counters, value/duration histograms
// summarized through internal/stats, and a hierarchical span tracer that
// records the phase structure of a solver run.
//
// The package is designed so that uninstrumented callers pay essentially
// nothing: every API is safe on a nil *Recorder (and on the nil *Span
// and *Counter handles a nil recorder returns), so the hot paths carry a
// single pointer comparison when observability is off. Solvers keep
// their innermost-loop tallies in plain local integers and publish them
// to the Recorder once per solve, so even an enabled recorder stays off
// the critical path.
//
// Typical use:
//
//	rec := obs.New()
//	res, err := opt.Schedule(in, opt.WithRecorder(rec))
//	rec.WriteJSON(os.Stdout)     // machine-readable snapshot
//	fmt.Print(rec.TraceTree())   // human-readable phase tree
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpss/internal/stats"
)

// Counter is a monotonically adjustable atomic counter. All methods are
// safe on a nil receiver (no-ops / zero), so handles obtained from a nil
// Recorder can be used unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// DefaultBuckets are the cumulative upper bounds (in seconds, matching
// the histograms' dominant use for durations) a Histogram tallies into
// when no explicit bounds were set: an exponential ladder from 50µs to
// 10s. Exposed so the Prometheus encoder and tests agree on the grid.
var DefaultBuckets = []float64{
	5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
	2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// reservoirCap bounds the per-histogram raw-sample memory: a long-lived
// daemon observing millions of requests keeps at most this many samples
// (uniformly selected via reservoir sampling) for percentile estimation,
// while bucket counts, count, sum and extrema stay exact.
const reservoirCap = 4096

// Histogram accumulates float64 observations (typically durations in
// seconds). It maintains exact cumulative bucket counts on a fixed
// bound grid (for Prometheus exposition), exact count/sum/extrema, and
// a bounded uniform reservoir of raw samples for quantile estimation
// through internal/stats. Safe for concurrent use; all methods are
// no-ops on a nil receiver.
type Histogram struct {
	mu       sync.Mutex
	bounds   []float64 // cumulative upper bounds; DefaultBuckets unless SetBuckets ran
	counts   []uint64  // len(bounds)+1; last slot is +Inf
	total    uint64
	sum      float64
	min, max float64
	samples  []float64 // uniform reservoir, ≤ reservoirCap
	rng      uint64    // xorshift64 state for reservoir replacement
}

// SetBuckets replaces the bucket bound grid (sorted copy). It resets any
// existing bucket tallies, so call it before the first Observe.
func (h *Histogram) SetBuckets(bounds []float64) {
	if h == nil {
		return
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h.mu.Lock()
	h.bounds = b
	h.counts = make([]uint64, len(b)+1)
	h.mu.Unlock()
}

// Observe appends one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.counts == nil {
		if h.bounds == nil {
			h.bounds = DefaultBuckets
		}
		h.counts = make([]uint64, len(h.bounds)+1)
	}
	// Prometheus "le" semantics: bucket i counts v <= bounds[i].
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.total++
	h.sum += v
	if len(h.samples) < reservoirCap {
		h.samples = append(h.samples, v)
	} else {
		// Algorithm R with a deterministic xorshift64 stream: each of
		// the total observations ends up in the reservoir with equal
		// probability, and runs are reproducible.
		if h.rng == 0 {
			h.rng = 0x9e3779b97f4a7c15
		}
		h.rng ^= h.rng << 13
		h.rng ^= h.rng >> 7
		h.rng ^= h.rng << 17
		if j := h.rng % h.total; j < reservoirCap {
			h.samples[j] = v
		}
	}
	h.mu.Unlock()
}

// Total returns the exact observation count and sum, the rate
// numerator/denominator a poller diffs between scrapes (0, 0 on a nil
// or empty histogram).
func (h *Histogram) Total() (count uint64, sum float64) {
	if h == nil {
		return 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total, h.sum
}

// Count returns the number of samples observed so far.
func (h *Histogram) Count() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.total)
}

// Summary computes the distributional summary of the samples. Count,
// mean and extrema are exact; Std and the percentiles are estimated
// from the bounded reservoir once the histogram has seen more than
// reservoirCap observations. It returns an error on an empty histogram
// (matching stats.Summarize).
func (h *Histogram) Summary() (stats.Summary, error) {
	if h == nil {
		return stats.Summary{}, fmt.Errorf("obs: nil histogram")
	}
	h.mu.Lock()
	sample := append([]float64(nil), h.samples...)
	total, sum, lo, hi := h.total, h.sum, h.min, h.max
	h.mu.Unlock()
	s, err := stats.Summarize(sample)
	if err != nil {
		return s, err
	}
	s.N = int(total)
	s.Mean = sum / float64(total)
	s.Min, s.Max = lo, hi
	return s, nil
}

// exposition returns the histogram's Prometheus-facing state: bucket
// bounds with cumulative (monotone) counts, total count and sum. ok is
// false for an empty (or nil) histogram.
func (h *Histogram) exposition() (bounds []float64, cum []uint64, count uint64, sum float64, ok bool) {
	if h == nil {
		return nil, nil, 0, 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return nil, nil, 0, 0, false
	}
	bounds = append([]float64(nil), h.bounds...)
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return bounds, cum, h.total, h.sum, true
}

// Span is one node of the hierarchical trace: a named region of a solver
// run with a wall-clock duration, integer counters, float-valued
// attributes and child spans. Spans are created with StartSpan and
// closed with End; a span never explicitly ended is closed at snapshot
// time. All methods are safe on a nil receiver.
type Span struct {
	rec   *Recorder
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	counters map[string]int64
	values   map[string]float64
	tags     map[string]string
	children []*Span
}

// StartSpan opens a child span under s. When the recorder's trace cap
// (LimitTrace) is exhausted it returns nil — a no-op span — so
// long-running processes can keep counters and histograms without the
// trace tree growing unboundedly.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	if s.rec != nil && !s.rec.spanBudget() {
		return nil
	}
	child := &Span{rec: s.rec, name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// Recorder returns the recorder this span records into (nil on a nil
// span), so instrumented layers can reach shared counters through the
// span they were handed.
func (s *Span) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// Add increments a per-span counter.
func (s *Span) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[name] += delta
	s.mu.Unlock()
}

// SetValue records a float-valued attribute (e.g. the critical speed of
// a phase).
func (s *Span) SetValue(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.values == nil {
		s.values = make(map[string]float64, 4)
	}
	s.values[name] = v
	s.mu.Unlock()
}

// SetTag records a string-valued attribute (e.g. the request ID a
// server span belongs to), so trace consumers can correlate spans with
// logs and responses.
func (s *Span) SetTag(name, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.tags == nil {
		s.tags = make(map[string]string, 2)
	}
	s.tags[name] = value
	s.mu.Unlock()
}

// End closes the span. Calling End more than once keeps the first end
// time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Recorder collects named counters, histograms and a trace tree for one
// solver run (or one experiment). The zero value is not usable; construct
// with New. A nil *Recorder is the no-op default: every method returns
// immediately, so instrumented code needs no conditional plumbing.
//
// Counter handles are atomic and histogram/span updates take a mutex, so
// a Recorder may be shared by concurrent solver goroutines.
type Recorder struct {
	start time.Time

	spanCap   atomic.Int64 // 0 = unlimited
	spanCount atomic.Int64

	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]*Gauge
	root     *Span
}

// New returns an empty enabled recorder.
func New() *Recorder {
	now := time.Now()
	r := &Recorder{
		start:    now,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
	r.root = &Span{rec: r, name: "root", start: now}
	return r
}

// Enabled reports whether the recorder actually records (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// LimitTrace caps the total number of spans the recorder will record;
// once n spans have been started, further StartSpan calls return nil
// (the no-op span) and are tallied in the "obs.spans_dropped" counter.
// Counters and histograms are unaffected. Long-running processes (the
// scheduling daemon) use this to keep per-solve tracing from growing
// without bound; n <= 0 restores the unlimited default.
func (r *Recorder) LimitTrace(n int) {
	if r == nil {
		return
	}
	r.spanCap.Store(int64(n))
}

// spanBudget consumes one unit of the trace cap, reporting false (and
// counting the drop) once the cap is exhausted.
func (r *Recorder) spanBudget() bool {
	cap := r.spanCap.Load()
	if cap <= 0 {
		return true
	}
	if r.spanCount.Add(1) > cap {
		r.Add("obs.spans_dropped", 1)
		return false
	}
	return true
}

// Counter returns the named counter, creating it on first use. On a nil
// recorder it returns a nil handle whose methods are no-ops.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add increments the named counter by delta.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.Counter(name).Add(delta)
}

// Value returns the current value of the named counter (0 if absent or
// on a nil recorder).
func (r *Recorder) Value(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// Histogram returns the named histogram, creating it on first use (nil
// handle on a nil recorder).
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Observe appends one sample to the named histogram.
func (r *Recorder) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.Histogram(name).Observe(v)
}

var noopStop = func() {}

// Time starts a wall-clock timer; the returned function stops it and
// records the elapsed seconds in the named histogram. On a nil recorder
// the returned function does nothing and no clock is read.
func (r *Recorder) Time(name string) func() {
	if r == nil {
		return noopStop
	}
	t0 := time.Now()
	return func() { r.Observe(name, time.Since(t0).Seconds()) }
}

// Root returns the implicit root span (nil on a nil recorder).
func (r *Recorder) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// StartSpan opens a new top-level span under the root.
func (r *Recorder) StartSpan(name string) *Span { return r.Root().StartSpan(name) }

// SpanSnapshot is the exported form of one trace node.
type SpanSnapshot struct {
	Name     string             `json:"name"`
	Seconds  float64            `json:"seconds"`
	Counters map[string]int64   `json:"counters,omitempty"`
	Values   map[string]float64 `json:"values,omitempty"`
	Tags     map[string]string  `json:"tags,omitempty"`
	Children []SpanSnapshot     `json:"children,omitempty"`
}

// Snapshot is a point-in-time export of everything a Recorder holds:
// the counter map, per-histogram summaries, and the span tree. It is the
// machine-readable unit the CLIs write as JSON (mpss.Metrics aliases it).
type Snapshot struct {
	WallSeconds float64                  `json:"wall_seconds"`
	Counters    map[string]int64         `json:"counters"`
	Gauges      map[string]float64       `json:"gauges,omitempty"`
	Histograms  map[string]stats.Summary `json:"histograms,omitempty"`
	Trace       []SpanSnapshot           `json:"trace,omitempty"`
}

// Snapshot exports the recorder's current state. Open spans are reported
// with their duration up to now. A nil recorder yields a zero Snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	now := time.Now()
	snap := Snapshot{
		WallSeconds: now.Sub(r.start).Seconds(),
		Counters:    make(map[string]int64),
		Histograms:  make(map[string]stats.Summary),
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	root := r.root
	r.mu.Unlock()

	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, h := range hists {
		if sum, err := h.Summary(); err == nil {
			snap.Histograms[name] = sum
		}
	}
	snap.Gauges = r.gaugeSnapshot()
	snap.Trace = snapshotChildren(root, now)
	return snap
}

func snapshotChildren(s *Span, now time.Time) []SpanSnapshot {
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(children))
	for _, c := range children {
		out = append(out, snapshotSpan(c, now))
	}
	return out
}

func snapshotSpan(s *Span, now time.Time) SpanSnapshot {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = now
	}
	ss := SpanSnapshot{
		Name:    s.name,
		Seconds: end.Sub(s.start).Seconds(),
	}
	if len(s.counters) > 0 {
		ss.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			ss.Counters[k] = v
		}
	}
	if len(s.values) > 0 {
		ss.Values = make(map[string]float64, len(s.values))
		for k, v := range s.values {
			ss.Values[k] = v
		}
	}
	if len(s.tags) > 0 {
		ss.Tags = make(map[string]string, len(s.tags))
		for k, v := range s.tags {
			ss.Tags[k] = v
		}
	}
	s.mu.Unlock()
	ss.Children = snapshotChildren(s, now)
	return ss
}

// WriteJSON writes the Snapshot as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// TraceTree renders the span tree as an indented human-readable listing,
// one line per span with its duration, counters and values.
func (r *Recorder) TraceTree() string { return r.Snapshot().TraceTree() }

// TraceTree renders the snapshot's span tree.
func (s Snapshot) TraceTree() string {
	var b strings.Builder
	for _, sp := range s.Trace {
		renderSpan(&b, sp, 0)
	}
	return b.String()
}

func renderSpan(b *strings.Builder, s SpanSnapshot, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s  [%.3fms]", s.Name, s.Seconds*1e3)
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(b, "  %s=%d", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Values) {
		fmt.Fprintf(b, "  %s=%.6g", k, s.Values[k])
	}
	for _, k := range sortedKeys(s.Tags) {
		fmt.Fprintf(b, "  %s=%q", k, s.Tags[k])
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		renderSpan(b, c, depth+1)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CounterTable renders the snapshot's counters as aligned "name value"
// lines in sorted order — the per-experiment summary mpss-bench prints.
func (s Snapshot) CounterTable() string {
	keys := sortedKeys(s.Counters)
	width := 0
	for _, k := range keys {
		if len(k) > width {
			width = len(k)
		}
	}
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-*s %d\n", width, k, s.Counters[k])
	}
	return b.String()
}

// Merge combines two snapshots: counters are summed, histogram summaries
// are pooled with stats.Merge, and the trace trees are concatenated.
// Used to aggregate per-experiment metrics into a suite total.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		WallSeconds: s.WallSeconds + o.WallSeconds,
		Counters:    make(map[string]int64, len(s.Counters)+len(o.Counters)),
		Histograms:  make(map[string]stats.Summary, len(s.Histograms)+len(o.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] += v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	// Gauges are levels; merging sums them (e.g. per-worker queue depths
	// aggregate to the pool total).
	if len(s.Gauges)+len(o.Gauges) > 0 {
		out.Gauges = make(map[string]float64, len(s.Gauges)+len(o.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[k] += v
		}
		for k, v := range o.Gauges {
			out.Gauges[k] += v
		}
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range o.Histograms {
		out.Histograms[k] = stats.Merge(out.Histograms[k], v)
	}
	out.Trace = append(append([]SpanSnapshot(nil), s.Trace...), o.Trace...)
	return out
}
