package obs_test

import (
	"math"
	"testing"

	"mpss/internal/job"
	"mpss/internal/obs"
	"mpss/internal/online"
	"mpss/internal/opt"
)

// threeJobInstance is the deterministic gadget the exact-count assertions
// below are built on: three identical jobs sharing two processors over a
// common window. The optimum is a single phase at speed 3 decided by one
// flow round, and OA's single arrival makes the middle job migrate once
// under McNaughton wrap-around.
func threeJobInstance(t *testing.T) *job.Instance {
	t.Helper()
	in, err := job.NewInstance(2, []job.Job{
		{ID: 1, Release: 0, Deadline: 3, Work: 6},
		{ID: 2, Release: 0, Deadline: 3, Work: 6},
		{ID: 3, Release: 0, Deadline: 3, Work: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func wantCounter(t *testing.T, rec *obs.Recorder, name string, want int64) {
	t.Helper()
	if got := rec.Value(name); got != want {
		t.Errorf("counter %s = %d, want %d", name, got, want)
	}
}

func TestOptimizerExactCounts(t *testing.T) {
	in := threeJobInstance(t)
	rec := obs.New()
	res, err := opt.Schedule(in, opt.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(res.Phases))
	}

	wantCounter(t, rec, "opt.phases", 1)
	wantCounter(t, rec, "opt.rounds", 1)
	wantCounter(t, rec, "flow.solves", 1)
	// One Dinic solve on the 7-vertex network: two BFS passes (one that
	// finds the level graph, one that certifies exhaustion) routing three
	// augmenting paths, one per job.
	wantCounter(t, rec, "flow.dinic.bfs_passes", 2)
	wantCounter(t, rec, "flow.dinic.aug_paths", 3)

	snap := rec.Snapshot()
	if len(snap.Trace) != 1 {
		t.Fatalf("trace roots = %d, want exactly 1 phase span", len(snap.Trace))
	}
	ph := snap.Trace[0]
	if ph.Name != "phase 1" {
		t.Errorf("span name = %q, want \"phase 1\"", ph.Name)
	}
	if ph.Counters["flow_calls"] != 1 || ph.Counters["jobs_saturated"] != 3 {
		t.Errorf("phase span counters = %v, want flow_calls=1 jobs_saturated=3", ph.Counters)
	}
	if math.Abs(ph.Values["speed"]-3) > 1e-9 {
		t.Errorf("phase span speed = %v, want 3", ph.Values["speed"])
	}
	if sum, ok := snap.Histograms["opt.flow_solve_seconds"]; !ok || sum.N != 1 {
		t.Errorf("opt.flow_solve_seconds histogram = %+v, want N=1", sum)
	}
}

func TestOptimizerExactArithmeticCounts(t *testing.T) {
	in := threeJobInstance(t)
	rec := obs.New()
	res, err := opt.Schedule(in, opt.Exact(), opt.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(res.Phases))
	}
	wantCounter(t, rec, "opt.phases", 1)
	wantCounter(t, rec, "flow.solves", 1)
	if got := rec.Value("flow.exact.aug_paths"); got != 3 {
		t.Errorf("flow.exact.aug_paths = %d, want 3", got)
	}
	snap := rec.Snapshot()
	if len(snap.Trace) != 1 || snap.Trace[0].Name != "phase 1 (exact)" {
		t.Fatalf("trace = %+v, want one span \"phase 1 (exact)\"", snap.Trace)
	}
}

func TestFeasibilityProbeCounts(t *testing.T) {
	in := threeJobInstance(t)
	rec := obs.New()
	ok, err := opt.FeasibleAtSpeedObserved(in, 3, rec)
	if err != nil || !ok {
		t.Fatalf("FeasibleAtSpeedObserved(3) = %v, %v; want feasible", ok, err)
	}
	wantCounter(t, rec, "opt.feasibility_probes", 1)
	wantCounter(t, rec, "flow.solves", 1)
}

func TestOAExactCounts(t *testing.T) {
	in := threeJobInstance(t)
	rec := obs.New()
	res, err := online.OA(in, online.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}

	// All three jobs arrive at t=0: one arrival event, one replan, and
	// McNaughton wrap-around migrates exactly the middle job.
	wantCounter(t, rec, "oa.arrivals", 1)
	wantCounter(t, rec, "oa.replans", 1)
	wantCounter(t, rec, "oa.speed_recomputations", 1)
	wantCounter(t, rec, "oa.migrations", 1)
	wantCounter(t, rec, "oa.preemptions", 1)
	// The replanned sub-instance runs through the instrumented optimizer
	// under the same recorder.
	wantCounter(t, rec, "opt.phases", 1)
	wantCounter(t, rec, "flow.solves", 1)

	snap := rec.Snapshot()
	if len(snap.Trace) != 1 || snap.Trace[0].Name != "OA" {
		t.Fatalf("trace = %+v, want one OA run span", snap.Trace)
	}
	run := snap.Trace[0]
	if run.Counters["migrations"] != 1 {
		t.Errorf("OA run span migrations = %d, want 1", run.Counters["migrations"])
	}
	if len(run.Children) != 1 {
		t.Fatalf("OA run span has %d event children, want 1", len(run.Children))
	}
	if math.Abs(run.Values["max_speed"]-3) > 1e-9 {
		t.Errorf("OA run span max_speed = %v, want 3", run.Values["max_speed"])
	}
}

func TestAVRExactCounts(t *testing.T) {
	in := threeJobInstance(t)
	rec := obs.New()
	res, err := online.AVR(in, online.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(in); err != nil {
		t.Fatal(err)
	}
	wantCounter(t, rec, "avr.intervals", 1)
	wantCounter(t, rec, "avr.speed_recomputations", 1)
	wantCounter(t, rec, "avr.migrations", 1)
	wantCounter(t, rec, "avr.dedicated_jobs", 0)

	snap := rec.Snapshot()
	if len(snap.Trace) != 1 || snap.Trace[0].Name != "AVR" {
		t.Fatalf("trace = %+v, want one AVR run span", snap.Trace)
	}
	run := snap.Trace[0]
	if len(run.Children) != 1 || run.Children[0].Counters["pool_jobs"] != 3 {
		t.Errorf("AVR interval spans = %+v, want one interval with pool_jobs=3", run.Children)
	}
}

// TestRecorderOff asserts the no-op path: the same solves with a nil
// recorder must succeed and produce identical schedules.
func TestRecorderOff(t *testing.T) {
	in := threeJobInstance(t)
	withRec := obs.New()
	a, err := opt.Schedule(in, opt.WithRecorder(withRec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := opt.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Phases) != len(b.Phases) || a.Phases[0].Speed != b.Phases[0].Speed {
		t.Errorf("instrumented and plain solves disagree: %+v vs %+v", a.Phases, b.Phases)
	}
	if _, err := online.OA(in); err != nil {
		t.Errorf("OA without recorder: %v", err)
	}
	if _, err := online.AVR(in); err != nil {
		t.Errorf("AVR without recorder: %v", err)
	}
}
