package obs

import (
	"io"
	"strings"
	"testing"
)

// Benchmarks for the telemetry hot paths: what one request costs in
// metric upkeep (Observe, labeled lookup) and what one scrape costs
// (quantile estimation, full exposition encode). `make bench` archives
// these as BENCH_obs.json via cmd/benchjson.

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 1000)
	}
}

func BenchmarkHistogramObserveBeyondReservoir(b *testing.B) {
	var h Histogram
	for i := 0; i < reservoirCap+1; i++ {
		h.Observe(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkHistogramQuantiles(b *testing.B) {
	var h Histogram
	for i := 0; i < reservoirCap; i++ {
		h.Observe(float64(i%997) / 997)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Summary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLabeledCounterAdd(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.AddL("server.http_requests", 1,
			Label{"endpoint", "optimal"}, Label{"code", "200"})
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := New()
	endpoints := []string{"optimal", "oa", "avr", "feasible", "mincap", "atcap"}
	codes := []string{"200", "400", "422", "503"}
	for _, e := range endpoints {
		for _, c := range codes {
			r.AddL("server.http_requests", 5, Label{"endpoint", e}, Label{"code", c})
		}
		for i := 0; i < 512; i++ {
			r.ObserveL("server.http_request_seconds", float64(i)/1000, Label{"endpoint", e})
		}
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(sb.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
