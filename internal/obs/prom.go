package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file renders a Recorder in the Prometheus text exposition format
// (version 0.0.4), the scrape surface of a long-lived daemon:
//
//   - every counter becomes a `mpss_<name>_total` counter family, with
//     labeled series (see labels.go) split back into label pairs;
//   - every histogram becomes a `mpss_<name>` histogram family with
//     cumulative `_bucket{le="..."}` series, `_sum` and `_count`, plus a
//     companion `mpss_<name>_summary` summary family carrying the
//     estimated p50/p90/p99 quantiles — the same numbers the JSON
//     snapshot reports (stats.Summary Median/P90/P99), so the two views
//     of /v1/metrics and /metrics never disagree;
//   - Go runtime gauges (goroutines, heap, GC) and the recorder uptime
//     round out what an operator needs to alert on.
//
// Output is deterministically ordered (families and series sorted), so
// golden tests can diff it directly.

// promQuantiles are the quantile labels of the companion summary family.
var promQuantiles = []struct {
	label string
	pick  func(s summaryView) float64
}{
	{"0.5", func(s summaryView) float64 { return s.median }},
	{"0.9", func(s summaryView) float64 { return s.p90 }},
	{"0.99", func(s summaryView) float64 { return s.p99 }},
}

type summaryView struct{ median, p90, p99 float64 }

// WritePrometheus renders the recorder's current state in the
// Prometheus text exposition format. A nil recorder writes nothing.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()
	gauges := r.gaugeSnapshot()

	var b strings.Builder
	writeCounterFamilies(&b, counters)
	writeGaugeFamilies(&b, gauges)
	writeHistogramFamilies(&b, hists)
	writeRuntimeGauges(&b)
	fmt.Fprintf(&b, "# TYPE mpss_uptime_seconds gauge\nmpss_uptime_seconds %s\n",
		formatPromFloat(time.Since(r.start).Seconds()))
	_, err := io.WriteString(w, b.String())
	return err
}

func writeCounterFamilies(b *strings.Builder, counters map[string]*Counter) {
	type series struct {
		labels string
		value  int64
	}
	families := make(map[string][]series)
	for key, c := range counters {
		base, labels := splitLabeledName(key)
		fam := "mpss_" + sanitizeMetricName(base) + "_total"
		families[fam] = append(families[fam], series{labels, c.Value()})
	}
	for _, fam := range sortedKeys(families) {
		fmt.Fprintf(b, "# TYPE %s counter\n", fam)
		ss := families[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			fmt.Fprintf(b, "%s %d\n", seriesName(fam, s.labels), s.value)
		}
	}
}

// writeGaugeFamilies emits each gauge as a `mpss_<name>` gauge family
// (no `_total` suffix — gauges are levels, not accumulations).
func writeGaugeFamilies(b *strings.Builder, gauges map[string]float64) {
	type series struct {
		labels string
		value  float64
	}
	families := make(map[string][]series)
	for key, v := range gauges {
		base, labels := splitLabeledName(key)
		fam := "mpss_" + sanitizeMetricName(base)
		families[fam] = append(families[fam], series{labels, v})
	}
	for _, fam := range sortedKeys(families) {
		fmt.Fprintf(b, "# TYPE %s gauge\n", fam)
		ss := families[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			fmt.Fprintf(b, "%s %s\n", seriesName(fam, s.labels), formatPromFloat(s.value))
		}
	}
}

func writeHistogramFamilies(b *strings.Builder, hists map[string]*Histogram) {
	type series struct {
		labels string
		h      *Histogram
	}
	families := make(map[string][]series)
	for key, h := range hists {
		base, labels := splitLabeledName(key)
		fam := "mpss_" + sanitizeMetricName(base)
		families[fam] = append(families[fam], series{labels, h})
	}
	for _, fam := range sortedKeys(families) {
		ss := families[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })

		fmt.Fprintf(b, "# TYPE %s histogram\n", fam)
		type quantiled struct {
			labels string
			view   summaryView
			count  uint64
			sum    float64
		}
		var quantiles []quantiled
		for _, s := range ss {
			bounds, cum, count, sum, ok := s.h.exposition()
			if !ok {
				continue
			}
			for i, bound := range bounds {
				le := formatPromFloat(bound)
				fmt.Fprintf(b, "%s %d\n",
					seriesName(fam+"_bucket", joinLabels(s.labels, `le="`+le+`"`)), cum[i])
			}
			fmt.Fprintf(b, "%s %d\n",
				seriesName(fam+"_bucket", joinLabels(s.labels, `le="+Inf"`)), cum[len(cum)-1])
			fmt.Fprintf(b, "%s %s\n", seriesName(fam+"_sum", s.labels), formatPromFloat(sum))
			fmt.Fprintf(b, "%s %d\n", seriesName(fam+"_count", s.labels), count)

			if sum2, err := s.h.Summary(); err == nil {
				quantiles = append(quantiles, quantiled{
					labels: s.labels,
					view:   summaryView{median: sum2.Median, p90: sum2.P90, p99: sum2.P99},
					count:  count,
					sum:    sum,
				})
			}
		}
		if len(quantiles) == 0 {
			continue
		}
		sfam := fam + "_summary"
		fmt.Fprintf(b, "# TYPE %s summary\n", sfam)
		for _, q := range quantiles {
			for _, pq := range promQuantiles {
				fmt.Fprintf(b, "%s %s\n",
					seriesName(sfam, joinLabels(q.labels, `quantile="`+pq.label+`"`)),
					formatPromFloat(pq.pick(q.view)))
			}
			fmt.Fprintf(b, "%s %s\n", seriesName(sfam+"_sum", q.labels), formatPromFloat(q.sum))
			fmt.Fprintf(b, "%s %d\n", seriesName(sfam+"_count", q.labels), q.count)
		}
	}
}

// writeRuntimeGauges emits the Go runtime health gauges a production
// scrape needs: goroutine count, heap occupancy and GC activity.
func writeRuntimeGauges(b *strings.Builder) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(b, "# TYPE go_goroutines gauge\ngo_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(b, "# TYPE go_memstats_alloc_bytes gauge\ngo_memstats_alloc_bytes %d\n", ms.Alloc)
	fmt.Fprintf(b, "# TYPE go_memstats_sys_bytes gauge\ngo_memstats_sys_bytes %d\n", ms.Sys)
	fmt.Fprintf(b, "# TYPE go_memstats_heap_objects gauge\ngo_memstats_heap_objects %d\n", ms.HeapObjects)
	fmt.Fprintf(b, "# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(b, "# TYPE go_gc_pause_seconds_total counter\ngo_gc_pause_seconds_total %s\n",
		formatPromFloat(float64(ms.PauseTotalNs)/1e9))
}

// seriesName renders "name" or "name{labels}".
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// joinLabels appends one more rendered label pair to an (possibly
// empty) escaped label body.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// sanitizeMetricName maps an internal series name ("server.requests")
// onto the Prometheus metric-name alphabet [a-zA-Z0-9_:].
func sanitizeMetricName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatPromFloat renders a float in the shortest round-trip form the
// exposition format accepts.
func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
