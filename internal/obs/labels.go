package obs

import (
	"sort"
	"strings"
)

// Label is one key/value dimension of a labeled metric series, e.g.
// {endpoint="optimal"} or {code="200"}. Labeled series let the server
// expose per-endpoint × per-status request counts and latency
// histograms while the underlying Recorder storage stays a flat map:
// the labels are folded into the series name in a canonical encoding.
//
// Cardinality discipline is the caller's job: label values must come
// from small closed sets (route names, status codes), never from
// request payloads (see DESIGN.md §11 for the budget).
type Label struct {
	Key, Value string
}

// LabeledName renders the canonical encoded series name
//
//	name{k1="v1",k2="v2"}
//
// with keys sorted and values escaped exactly as the Prometheus text
// format escapes label values (backslash, double quote, newline). The
// encoding is what appears as the series key in JSON snapshots, and
// what the exposition encoder parses back into name + label pairs.
func LabeledName(name string, labels ...Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format label escaping.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitLabeledName is the inverse of LabeledName at the granularity the
// exposition encoder needs: it separates the base series name from the
// (already-escaped, canonical) label body, without the braces. labels
// is "" for an unlabeled series.
func splitLabeledName(series string) (name, labels string) {
	i := strings.IndexByte(series, '{')
	if i < 0 || !strings.HasSuffix(series, "}") {
		return series, ""
	}
	return series[:i], series[i+1 : len(series)-1]
}

// CounterL returns the counter for the labeled series, creating it on
// first use (nil handle on a nil recorder).
func (r *Recorder) CounterL(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.Counter(LabeledName(name, labels...))
}

// AddL increments the labeled counter series by delta.
func (r *Recorder) AddL(name string, delta int64, labels ...Label) {
	if r == nil {
		return
	}
	r.CounterL(name, labels...).Add(delta)
}

// HistogramL returns the histogram for the labeled series, creating it
// on first use (nil handle on a nil recorder).
func (r *Recorder) HistogramL(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.Histogram(LabeledName(name, labels...))
}

// ObserveL appends one sample to the labeled histogram series.
func (r *Recorder) ObserveL(name string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	r.HistogramL(name, labels...).Observe(v)
}
