package obs

import (
	"math"
	"sync/atomic"
)

// Gauge is a settable level — a value that goes up and down, unlike the
// monotone Counter: queue depth, open sessions, desired replica count.
// All methods are safe on a nil receiver, matching the package's no-op
// discipline.
type Gauge struct {
	bits atomic.Uint64 // IEEE-754 bits of the current level
}

// Set stores the current level.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge returns the named gauge, creating it on first use (nil handle
// on a nil recorder).
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// SetGauge stores the named gauge's current level.
func (r *Recorder) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.Gauge(name).Set(v)
}

// GaugeValue returns the named gauge's current level (0 if absent or on
// a nil recorder).
func (r *Recorder) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	return g.Value()
}

// GaugeL returns the gauge for the labeled series, creating it on first
// use (nil handle on a nil recorder). The cluster tier uses labeled
// gauges for per-replica levels, e.g. cluster.replica_queue{replica=...}.
func (r *Recorder) GaugeL(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.Gauge(LabeledName(name, labels...))
}

// SetGaugeL stores the labeled gauge series' current level.
func (r *Recorder) SetGaugeL(name string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	r.GaugeL(name, labels...).Set(v)
}

// gaugeSnapshot copies the gauge map for Snapshot/Prometheus encoding.
func (r *Recorder) gaugeSnapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.gauges) == 0 {
		return nil
	}
	out := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}
