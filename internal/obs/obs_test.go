package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
}

func TestNilHandlesAreNoops(t *testing.T) {
	// Everything a nil recorder hands out must be usable without panics
	// and without recording anything.
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	r.Add("x", 1)
	r.Observe("h", 1.5)
	r.Time("t")()
	r.Counter("x").Inc()
	r.Histogram("h").Observe(2)
	if got := r.Value("x"); got != 0 {
		t.Errorf("nil recorder Value = %d, want 0", got)
	}
	if n := r.Histogram("h").Count(); n != 0 {
		t.Errorf("nil histogram Count = %d, want 0", n)
	}
	if _, err := r.Histogram("h").Summary(); err == nil {
		t.Error("nil histogram Summary succeeded, want error")
	}

	sp := r.StartSpan("phase")
	if sp != nil {
		t.Fatalf("nil recorder StartSpan = %v, want nil", sp)
	}
	sp.Add("k", 1)
	sp.SetValue("v", 2)
	sp.End()
	if child := sp.StartSpan("sub"); child != nil {
		t.Errorf("nil span StartSpan = %v, want nil", child)
	}
	if rec := sp.Recorder(); rec != nil {
		t.Errorf("nil span Recorder = %v, want nil", rec)
	}

	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Trace) != 0 {
		t.Errorf("nil recorder snapshot not empty: %+v", snap)
	}
}

func TestRecorderCountersAndHistograms(t *testing.T) {
	r := New()
	r.Add("solves", 2)
	r.Counter("solves").Inc()
	if got := r.Value("solves"); got != 3 {
		t.Errorf("solves = %d, want 3", got)
	}
	if got := r.Value("absent"); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}

	for _, v := range []float64{1, 2, 3, 4} {
		r.Observe("lat", v)
	}
	sum, err := r.Histogram("lat").Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 4 || math.Abs(sum.Mean-2.5) > 1e-12 {
		t.Errorf("histogram summary = %+v, want N=4 mean=2.5", sum)
	}

	stop := r.Time("elapsed")
	stop()
	if n := r.Histogram("elapsed").Count(); n != 1 {
		t.Errorf("Time recorded %d samples, want 1", n)
	}
}

func TestSpanTree(t *testing.T) {
	r := New()
	phase := r.StartSpan("phase 1")
	phase.Add("flow_calls", 1)
	phase.Add("flow_calls", 1)
	phase.SetValue("speed", 2.5)
	if phase.Recorder() != r {
		t.Error("span does not reach back to its recorder")
	}
	sub := phase.StartSpan("probe")
	sub.End()
	phase.End()
	phase.End() // second End must keep the first end time

	snap := r.Snapshot()
	if len(snap.Trace) != 1 {
		t.Fatalf("trace has %d roots, want 1", len(snap.Trace))
	}
	p := snap.Trace[0]
	if p.Name != "phase 1" || p.Counters["flow_calls"] != 2 || p.Values["speed"] != 2.5 {
		t.Errorf("span snapshot = %+v", p)
	}
	if len(p.Children) != 1 || p.Children[0].Name != "probe" {
		t.Errorf("children = %+v, want one child 'probe'", p.Children)
	}
	if p.Seconds < 0 {
		t.Errorf("span duration negative: %v", p.Seconds)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Add("a", 1)
	r.Observe("h", 2)
	r.StartSpan("s").End()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if got.Counters["a"] != 1 || len(got.Trace) != 1 || got.Trace[0].Name != "s" {
		t.Errorf("round-tripped snapshot = %+v", got)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := New()
	a.Add("x", 1)
	a.Add("y", 2)
	a.Observe("h", 1)
	a.StartSpan("ra").End()
	b := New()
	b.Add("x", 10)
	b.Observe("h", 3)
	b.StartSpan("rb").End()

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["x"] != 11 || m.Counters["y"] != 2 {
		t.Errorf("merged counters = %v", m.Counters)
	}
	h := m.Histograms["h"]
	if h.N != 2 || math.Abs(h.Mean-2) > 1e-12 {
		t.Errorf("merged histogram = %+v, want N=2 mean=2", h)
	}
	if len(m.Trace) != 2 || m.Trace[0].Name != "ra" || m.Trace[1].Name != "rb" {
		t.Errorf("merged trace = %+v", m.Trace)
	}
}

func TestRenderings(t *testing.T) {
	r := New()
	r.Add("flow.solves", 7)
	r.Add("opt.phases", 2)
	sp := r.StartSpan("phase 1")
	sp.Add("jobs", 3)
	sp.SetValue("speed", 1.5)
	sp.StartSpan("probe").End()
	sp.End()

	tree := r.TraceTree()
	if !strings.Contains(tree, "phase 1") || !strings.Contains(tree, "jobs=3") ||
		!strings.Contains(tree, "speed=1.5") || !strings.Contains(tree, "  probe") {
		t.Errorf("TraceTree missing expected content:\n%s", tree)
	}

	table := r.Snapshot().CounterTable()
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "flow.solves") || !strings.Contains(lines[1], "opt.phases") {
		t.Errorf("CounterTable not sorted/complete:\n%s", table)
	}
}

// TestConcurrent hammers one recorder from many goroutines; its real
// assertion is `go test -race` staying quiet, plus the exact totals.
func TestConcurrent(t *testing.T) {
	r := New()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := r.StartSpan("worker")
			for i := 0; i < iters; i++ {
				r.Add("ops", 1)
				r.Observe("lat", float64(i))
				sp.Add("local", 1)
				if i%100 == 0 {
					r.Snapshot() // concurrent reads must be safe too
				}
			}
			sp.End()
		}(w)
	}
	wg.Wait()
	if got := r.Value("ops"); got != workers*iters {
		t.Errorf("ops = %d, want %d", got, workers*iters)
	}
	snap := r.Snapshot()
	if len(snap.Trace) != workers {
		t.Errorf("trace has %d worker spans, want %d", len(snap.Trace), workers)
	}
	for _, sp := range snap.Trace {
		if sp.Counters["local"] != iters {
			t.Errorf("worker span local = %d, want %d", sp.Counters["local"], iters)
		}
	}
}
