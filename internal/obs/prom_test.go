package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promSeries is one parsed exposition sample line.
type promSeries struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition is the minimal scanner of the Prometheus text format
// the tests (and the smoke scripts, conceptually) rely on: every
// non-comment line must be `name[{labels}] value`, label values must be
// correctly quoted, and the types declared in `# TYPE` comments are
// returned per family.
func parseExposition(t *testing.T, text string) (series []promSeries, types map[string]string) {
	t.Helper()
	types = make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		nameAndLabels, valueText := line[:sp], line[sp+1:]
		value, err := strconv.ParseFloat(valueText, 64)
		if err != nil && valueText != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valueText, err)
		}
		s := promSeries{labels: map[string]string{}, value: value}
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			if !strings.HasSuffix(nameAndLabels, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			s.name = nameAndLabels[:i]
			body := nameAndLabels[i+1 : len(nameAndLabels)-1]
			for body != "" {
				eq := strings.IndexByte(body, '=')
				if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
					t.Fatalf("line %d: malformed label in %q", ln+1, line)
				}
				key := body[:eq]
				rest := body[eq+2:]
				// Scan the quoted value honoring backslash escapes.
				var val strings.Builder
				j := 0
				for ; j < len(rest); j++ {
					if rest[j] == '\\' && j+1 < len(rest) {
						switch rest[j+1] {
						case 'n':
							val.WriteByte('\n')
						default:
							val.WriteByte(rest[j+1])
						}
						j++
						continue
					}
					if rest[j] == '"' {
						break
					}
					val.WriteByte(rest[j])
				}
				if j == len(rest) {
					t.Fatalf("line %d: unterminated label value in %q", ln+1, line)
				}
				s.labels[key] = val.String()
				body = rest[j+1:]
				body = strings.TrimPrefix(body, ",")
			}
		} else {
			s.name = nameAndLabels
		}
		for _, r := range s.name {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == ':') {
				t.Fatalf("line %d: invalid metric name %q", ln+1, s.name)
			}
		}
		series = append(series, s)
	}
	return series, types
}

func expositionText(t *testing.T, r *Recorder) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Add("server.requests", 7)
	r.AddL("server.http_requests", 3, Label{"endpoint", "optimal"}, Label{"code", "200"})
	r.AddL("server.http_requests", 2, Label{"endpoint", "optimal"}, Label{"code", "422"})
	r.AddL("server.http_requests", 1, Label{"endpoint", "oa"}, Label{"code", "200"})
	for i := 1; i <= 100; i++ {
		r.ObserveL("server.request_seconds", float64(i)/1000, Label{"endpoint", "optimal"})
	}

	text := expositionText(t, r)
	series, types := parseExposition(t, text)

	if types["mpss_server_requests_total"] != "counter" {
		t.Errorf("mpss_server_requests_total type = %q, want counter", types["mpss_server_requests_total"])
	}
	if types["mpss_server_request_seconds"] != "histogram" {
		t.Errorf("mpss_server_request_seconds type = %q, want histogram", types["mpss_server_request_seconds"])
	}
	if types["mpss_server_request_seconds_summary"] != "summary" {
		t.Errorf("summary family type = %q, want summary", types["mpss_server_request_seconds_summary"])
	}

	find := func(name string, labels map[string]string) *promSeries {
		for i := range series {
			if series[i].name != name {
				continue
			}
			match := true
			for k, v := range labels {
				if series[i].labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return &series[i]
			}
		}
		return nil
	}

	if s := find("mpss_server_requests_total", nil); s == nil || s.value != 7 {
		t.Errorf("mpss_server_requests_total = %+v, want 7", s)
	}
	if s := find("mpss_server_http_requests_total", map[string]string{"endpoint": "optimal", "code": "422"}); s == nil || s.value != 2 {
		t.Errorf("optimal/422 series = %+v, want 2", s)
	}
	if s := find("mpss_server_http_requests_total", map[string]string{"endpoint": "oa", "code": "200"}); s == nil || s.value != 1 {
		t.Errorf("oa/200 series = %+v, want 1", s)
	}

	// Histogram invariants: buckets cumulative and monotone in le, the
	// +Inf bucket equals _count, _sum matches the data.
	var buckets []promSeries
	for _, s := range series {
		if s.name == "mpss_server_request_seconds_bucket" {
			buckets = append(buckets, s)
		}
	}
	if len(buckets) < 2 {
		t.Fatalf("got %d bucket series, want several:\n%s", len(buckets), text)
	}
	le := func(s promSeries) float64 {
		if s.labels["le"] == "+Inf" {
			return math.Inf(1)
		}
		v, err := strconv.ParseFloat(s.labels["le"], 64)
		if err != nil {
			t.Fatalf("bad le %q", s.labels["le"])
		}
		return v
	}
	sort.Slice(buckets, func(i, j int) bool { return le(buckets[i]) < le(buckets[j]) })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].value < buckets[i-1].value {
			t.Errorf("bucket counts not monotone: le=%s count %v < le=%s count %v",
				buckets[i].labels["le"], buckets[i].value, buckets[i-1].labels["le"], buckets[i-1].value)
		}
	}
	count := find("mpss_server_request_seconds_count", nil)
	if count == nil || count.value != 100 {
		t.Fatalf("_count = %+v, want 100", count)
	}
	if inf := buckets[len(buckets)-1]; inf.labels["le"] != "+Inf" || inf.value != count.value {
		t.Errorf("+Inf bucket %v != _count %v", inf.value, count.value)
	}
	sum := find("mpss_server_request_seconds_sum", nil)
	if want := 100 * 101 / 2.0 / 1000; sum == nil || math.Abs(sum.value-want) > 1e-9 {
		t.Errorf("_sum = %+v, want %v", sum, want)
	}

	// The summary quantiles must match the JSON snapshot's numbers for
	// the same histogram (the acceptance criterion for /metrics vs
	// /v1/metrics agreement).
	jsonSum, err := r.HistogramL("server.request_seconds", Label{"endpoint", "optimal"}).Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []struct {
		label string
		want  float64
	}{{"0.5", jsonSum.Median}, {"0.9", jsonSum.P90}, {"0.99", jsonSum.P99}} {
		s := find("mpss_server_request_seconds_summary", map[string]string{"quantile": q.label})
		if s == nil || s.value != q.want {
			t.Errorf("quantile %s = %+v, want %v (JSON snapshot)", q.label, s, q.want)
		}
	}

	// Runtime gauges present.
	if s := find("go_goroutines", nil); s == nil || s.value < 1 {
		t.Errorf("go_goroutines = %+v, want >= 1", s)
	}
	if s := find("mpss_uptime_seconds", nil); s == nil || s.value < 0 {
		t.Errorf("mpss_uptime_seconds = %+v", s)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := New()
	hostile := "a\\b\"c\nd"
	r.AddL("weird.series", 5, Label{"path", hostile})

	text := expositionText(t, r)
	series, _ := parseExposition(t, text)
	for _, s := range series {
		if s.name == "mpss_weird_series_total" {
			if s.labels["path"] != hostile {
				t.Errorf("label round-trip = %q, want %q", s.labels["path"], hostile)
			}
			return
		}
	}
	t.Fatalf("series not found in:\n%s", text)
}

func TestLabeledNameCanonical(t *testing.T) {
	a := LabeledName("m", Label{"b", "2"}, Label{"a", "1"})
	b := LabeledName("m", Label{"a", "1"}, Label{"b", "2"})
	if a != b {
		t.Errorf("label order changes encoding: %q vs %q", a, b)
	}
	if want := `m{a="1",b="2"}`; a != want {
		t.Errorf("encoding = %q, want %q", a, want)
	}
	if got := LabeledName("m"); got != "m" {
		t.Errorf("no-label encoding = %q, want bare name", got)
	}
	name, labels := splitLabeledName(a)
	if name != "m" || labels != `a="1",b="2"` {
		t.Errorf("split = %q / %q", name, labels)
	}
}

func TestNilRecorderWritePrometheus(t *testing.T) {
	var r *Recorder
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil recorder wrote %q, err %v", b.String(), err)
	}
	// Labeled helpers must be nil-safe too.
	r.AddL("x", 1, Label{"k", "v"})
	r.ObserveL("h", 1, Label{"k", "v"})
	if r.CounterL("x") != nil || r.HistogramL("h") != nil {
		t.Error("nil recorder handed out non-nil labeled handles")
	}
}
