package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"mpss/api"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpss"
)

// do issues a bodyless request with an arbitrary method (DELETE, GET).
func do(t *testing.T, method, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// oneShotEnergyAndSchedule solves the job set through /v1/solve/optimal
// and returns the energy and the marshaled schedule — the reference a
// session resolve must match.
func oneShotEnergyAndSchedule(t *testing.T, ts string, m int, jobs []mpss.Job) (float64, []byte) {
	t.Helper()
	code, body := post(t, ts+"/v1/solve/optimal", api.SolveRequest{M: m, Jobs: jobs})
	if code != http.StatusOK {
		t.Fatalf("one-shot solve: status %d (%.300s)", code, body)
	}
	var out api.OptimalResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	sched, err := json.Marshal(out.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	return out.Energy, sched
}

// checkSession asserts one api.SessionResponse against the one-shot solve
// of the same job set: same energy, bit-identical schedule JSON.
func checkSession(t *testing.T, ts string, sr *api.SessionResponse, m int, jobs []mpss.Job) {
	t.Helper()
	energy, sched := oneShotEnergyAndSchedule(t, ts, m, jobs)
	if sr.Energy != energy {
		t.Errorf("seq %d: session energy %v, one-shot %v", sr.Seq, sr.Energy, energy)
	}
	got, err := json.Marshal(sr.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sched) {
		t.Errorf("seq %d: session schedule differs from one-shot", sr.Seq)
	}
	if sr.Jobs != len(jobs) {
		t.Errorf("seq %d: session reports %d jobs, want %d", sr.Seq, sr.Jobs, len(jobs))
	}
}

// The session e2e: create, three deltas (remove, add, cap retune), each
// resolve equal to a one-shot solve of the same job set; long-poll GET;
// teardown answers 404 everywhere.
func TestSessionLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	in, err := mpss.GenerateWorkload("bursty", mpss.WorkloadSpec{N: 16, M: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	code, body := post(t, ts.URL+"/v1/session", api.SolveRequest{M: in.M, Jobs: in.Jobs})
	if code != http.StatusOK {
		t.Fatalf("session create: status %d (%.300s)", code, body)
	}
	var sr api.SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.SessionID == "" || sr.Seq != 1 {
		t.Fatalf("session create: id %q seq %d, want non-empty id, seq 1", sr.SessionID, sr.Seq)
	}
	checkSession(t, ts.URL, &sr, in.M, in.Jobs)
	if got := s.Recorder().Value("server.sessions_active"); got != 1 {
		t.Errorf("server.sessions_active = %d, want 1", got)
	}
	base := ts.URL + "/v1/session/" + sr.SessionID

	// Delta 1: remove the first job.
	jobs := append([]mpss.Job(nil), in.Jobs[1:]...)
	code, body = post(t, base+"/delta", api.SessionDeltaRequest{RemoveIDs: []int{in.Jobs[0].ID}})
	if code != http.StatusOK {
		t.Fatalf("delta remove: status %d (%.300s)", code, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Seq != 2 {
		t.Errorf("delta remove: seq %d, want 2", sr.Seq)
	}
	checkSession(t, ts.URL, &sr, in.M, jobs)

	// Delta 2: add a fresh job.
	nj := mpss.Job{ID: 9001, Release: 1, Deadline: 6, Work: 3}
	jobs = append(jobs, nj)
	code, body = post(t, base+"/delta", api.SessionDeltaRequest{AddJobs: []mpss.Job{nj}})
	if code != http.StatusOK {
		t.Fatalf("delta add: status %d (%.300s)", code, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	checkSession(t, ts.URL, &sr, in.M, jobs)

	// Delta 3: retune the cap; the verdict rides the response.
	cap := 1e6
	code, body = post(t, base+"/delta", api.SessionDeltaRequest{Cap: &cap})
	if code != http.StatusOK {
		t.Fatalf("delta cap: status %d (%.300s)", code, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cap != cap || sr.CapFeasible == nil || !*sr.CapFeasible {
		t.Errorf("delta cap: cap %v feasible %v, want %v true", sr.Cap, sr.CapFeasible, cap)
	}
	checkSession(t, ts.URL, &sr, in.M, jobs)
	if got := s.Recorder().Value("server.delta_solves"); got != 3 {
		t.Errorf("server.delta_solves = %d, want 3", got)
	}

	// GET returns the latest published resolve.
	code, body = do(t, http.MethodGet, base)
	if code != http.StatusOK {
		t.Fatalf("session get: status %d (%.300s)", code, body)
	}
	var got api.SessionResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Seq != sr.Seq {
		t.Errorf("session get: seq %d, want %d", got.Seq, sr.Seq)
	}

	// Teardown: everything under the ID answers 404 afterwards.
	if code, _ := do(t, http.MethodDelete, base); code != http.StatusNoContent {
		t.Fatalf("session delete: status %d, want 204", code)
	}
	if code, _ := do(t, http.MethodGet, base); code != http.StatusNotFound {
		t.Errorf("get after delete: status %d, want 404", code)
	}
	if code, _ := post(t, base+"/delta", api.SessionDeltaRequest{}); code != http.StatusNotFound {
		t.Errorf("delta after delete: status %d, want 404", code)
	}
	if code, _ := do(t, http.MethodDelete, base); code != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", code)
	}
	if got := s.Recorder().Value("server.sessions_active"); got != 0 {
		t.Errorf("server.sessions_active after delete = %d, want 0", got)
	}
}

// A GET with wait_seq blocks until a delta publishes a newer resolve.
func TestSessionLongPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	jobs, m := testInstance()
	code, body := post(t, ts.URL+"/v1/session", api.SolveRequest{M: m, Jobs: jobs})
	if code != http.StatusOK {
		t.Fatalf("session create: status %d (%.300s)", code, body)
	}
	var sr api.SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/v1/session/" + sr.SessionID

	go func() {
		time.Sleep(100 * time.Millisecond)
		post(t, base+"/delta", api.SessionDeltaRequest{RemoveIDs: []int{jobs[0].ID}})
	}()
	start := time.Now()
	code, body = do(t, http.MethodGet, fmt.Sprintf("%s?wait_seq=%d&timeout_ms=5000", base, sr.Seq))
	if code != http.StatusOK {
		t.Fatalf("long-poll: status %d (%.300s)", code, body)
	}
	var got api.SessionResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Seq != sr.Seq+1 {
		t.Errorf("long-poll: seq %d, want %d", got.Seq, sr.Seq+1)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("long-poll returned before the delta published")
	}
}

// Idle sessions are evicted after SessionTTL and counted.
func TestSessionTTLEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SessionTTL: 50 * time.Millisecond})
	jobs, m := testInstance()
	code, body := post(t, ts.URL+"/v1/session", api.SolveRequest{M: m, Jobs: jobs})
	if code != http.StatusOK {
		t.Fatalf("session create: status %d (%.300s)", code, body)
	}
	var sr api.SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	// Poll the counter, not the endpoint: a GET counts as session
	// activity and would keep resetting the idle clock.
	waitFor(t, func() bool { return s.Recorder().Value("server.sessions_evicted") >= 1 })
	if code, _ := do(t, http.MethodGet, ts.URL+"/v1/session/"+sr.SessionID); code != http.StatusNotFound {
		t.Errorf("get after eviction: status %d, want 404", code)
	}
	if got := s.Recorder().Value("server.sessions_evicted"); got != 1 {
		t.Errorf("server.sessions_evicted = %d, want 1", got)
	}
	if got := s.Recorder().Value("server.sessions_active"); got != 0 {
		t.Errorf("server.sessions_active = %d, want 0", got)
	}
}

// The session table and per-session job bounds reject with 503/413, and
// a rejected delta leaves the session untouched.
func TestSessionLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSessions: 1, SessionMaxJobs: 3})
	jobs, m := testInstance() // 2 jobs, inside the bound of 3

	code, body := post(t, ts.URL+"/v1/session", api.SolveRequest{M: m, Jobs: jobs})
	if code != http.StatusOK {
		t.Fatalf("session create: status %d (%.300s)", code, body)
	}
	var sr api.SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/v1/session/" + sr.SessionID

	if code, _ := post(t, ts.URL+"/v1/session", api.SolveRequest{M: m, Jobs: jobs}); code != http.StatusServiceUnavailable {
		t.Errorf("second session: status %d, want 503 (table full)", code)
	}
	big := []mpss.Job{
		{ID: 10, Release: 0, Deadline: 4, Work: 1},
		{ID: 11, Release: 0, Deadline: 4, Work: 1},
	}
	if code, _ := post(t, base+"/delta", api.SessionDeltaRequest{AddJobs: big}); code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-bound delta: status %d, want 413", code)
	}
	if code, _ := post(t, ts.URL+"/v1/session", api.SolveRequest{M: m, Jobs: append(append([]mpss.Job(nil), jobs...), big...)}); code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-bound create: status %d, want 413", code)
	}

	// An invalid mutation (unknown removal) is rejected whole: nothing
	// applies, the next resolve still matches the untouched job set.
	if code, _ := post(t, base+"/delta", api.SessionDeltaRequest{RemoveIDs: []int{777}, AddJobs: []mpss.Job{{ID: 12, Release: 0, Deadline: 4, Work: 1}}}); code != http.StatusBadRequest {
		t.Errorf("unknown removal: status %d, want 400", code)
	}
	code, body = post(t, base+"/delta", api.SessionDeltaRequest{RemoveIDs: []int{jobs[0].ID}})
	if code != http.StatusOK {
		t.Fatalf("post-rejection delta: status %d (%.300s)", code, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	checkSession(t, ts.URL, &sr, m, jobs[1:])
}

// A deadline that expires while the task queues — client still
// connected — is the server's failure: 504 and server.deadline_exceeded,
// not the 499 disconnect path.
func TestQueueExpiryDeadline504(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	testHookTaskStart = func() {
		started <- struct{}{}
		<-release
	}
	defer func() { testHookTaskStart = nil }()

	s, ts := newTestServer(t, Config{Workers: 1, CacheEntries: -1})
	big := bigInstance(t, 64)
	jobs, m := testInstance()

	// A occupies the single worker (held in the hook).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts.URL+"/v1/solve/optimal", api.SolveRequest{M: big.M, Jobs: big.Jobs})
	}()
	<-started

	// B — a different instance, so it cannot coalesce with A — queues
	// behind it with a 20ms deadline and expires in the queue.
	type result struct {
		code int
		body []byte
	}
	resCh := make(chan result, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, b := post(t, ts.URL+"/v1/solve/optimal", api.SolveRequest{M: m, Jobs: jobs, TimeoutMS: 20})
		resCh <- result{c, b}
	}()
	waitFor(t, func() bool { return len(s.queue) == 1 })
	time.Sleep(50 * time.Millisecond) // let B's queued deadline expire
	close(release)

	r := <-resCh
	if r.code != http.StatusGatewayTimeout {
		t.Errorf("expired-in-queue request: status %d, want 504 (%.300s)", r.code, r.body)
	}
	var e api.ErrorBody
	if err := json.Unmarshal(r.body, &e); err != nil || e.Error.Kind != "canceled" {
		t.Errorf("expired-in-queue request: kind %q, want canceled (%.300s)", e.Error.Kind, r.body)
	}
	if got := s.Recorder().Value("server.deadline_exceeded"); got < 1 {
		t.Errorf("server.deadline_exceeded = %d, want >= 1", got)
	}
	wg.Wait()
}

// A client that disconnects while its task queues is 499 and
// server.canceled — never the deadline counter.
func TestQueueExpiry499OnDisconnect(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	testHookTaskStart = func() {
		started <- struct{}{}
		<-release
	}
	defer func() { testHookTaskStart = nil }()

	s, ts := newTestServer(t, Config{Workers: 1, CacheEntries: -1})
	big := bigInstance(t, 64)
	jobs, m := testInstance()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts.URL+"/v1/solve/optimal", api.SolveRequest{M: big.M, Jobs: big.Jobs})
	}()
	<-started

	// B queues, then its client hangs up.
	ctx, cancel := context.WithCancel(context.Background())
	data, err := json.Marshal(api.SolveRequest{M: m, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve/optimal", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return len(s.queue) == 1 })
	cancel()
	// Give the disconnect time to reach the server's request context.
	time.Sleep(50 * time.Millisecond)
	close(release)

	waitFor(t, func() bool { return s.Recorder().Value("server.canceled") >= 1 })
	if got := s.Recorder().Value("server.deadline_exceeded"); got != 0 {
		t.Errorf("server.deadline_exceeded = %d, want 0 (client hung up, deadline never expired)", got)
	}
	wg.Wait()
}

// K concurrent identical requests run exactly one solve; the other K-1
// coalesce onto it and replay the identical body.
func TestStampedeCoalesce(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	var executions atomic.Int64
	testHookTaskStart = func() {
		executions.Add(1)
		started <- struct{}{}
		<-release
	}
	defer func() { testHookTaskStart = nil }()

	s, ts := newTestServer(t, Config{Workers: 1, CacheEntries: -1})
	jobs, m := testInstance()
	req := api.SolveRequest{M: m, Jobs: jobs}

	const K = 8
	type result struct {
		code int
		body []byte
	}
	resCh := make(chan result, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, b := post(t, ts.URL+"/v1/solve/optimal", req)
			resCh <- result{c, b}
		}()
	}
	<-started // the leader's solve is held in the hook
	waitFor(t, func() bool { return s.Recorder().Value("server.coalesced") == K-1 })
	close(release)
	wg.Wait()
	close(resCh)

	var first []byte
	for r := range resCh {
		if r.code != http.StatusOK {
			t.Fatalf("stampede request: status %d (%.300s)", r.code, r.body)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Error("stampede responses differ")
		}
	}
	if got := executions.Load(); got != 1 {
		t.Errorf("solver executions = %d, want exactly 1", got)
	}
	if got := s.Recorder().Value("server.coalesced"); got != K-1 {
		t.Errorf("server.coalesced = %d, want %d", got, K-1)
	}
}
