package server

// This file is the HTTP middleware: per-request identity, structured
// access logging, and the labeled per-endpoint telemetry series. Every
// route is wrapped by Server.instrument with a static endpoint name, so
// the label cardinality is bounded by the route table no matter what
// clients send (DESIGN.md §11).

import (
	"context"
	"log/slog"
	"mpss/api"
	"net/http"
	"strconv"
	"time"

	"mpss/internal/obs"
)

// ctxKey is the private context-key namespace of this package.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeySpan
)

// RequestIDFromContext returns the request ID the middleware assigned
// to this request ("" outside a server request).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// spanFromContext returns the per-request trace span (nil-safe: obs
// spans are usable when nil, so handlers never check).
func spanFromContext(ctx context.Context) *obs.Span {
	sp, _ := ctx.Value(ctxKeySpan).(*obs.Span)
	return sp
}

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// instrument wraps one route with the full request pipeline: request-ID
// assignment (inbound X-Request-ID honored when well-formed), response
// header echo, per-endpoint × per-status labeled counters, per-endpoint
// latency histograms, the structured access log, and the flight
// recorder entry with its span tree.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(api.HeaderRequestID)
		if !api.ValidRequestID(id) {
			id = api.NewRequestID()
		}
		w.Header().Set(api.HeaderRequestID, id)

		span := s.flight.startSpan("request " + endpoint)
		span.SetTag("request_id", id)
		span.SetTag("endpoint", endpoint)

		ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)
		ctx = context.WithValue(ctx, ctxKeySpan, span)

		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		span.End()

		elapsed := time.Since(start)
		endpointL := obs.Label{Key: "endpoint", Value: endpoint}
		s.rec.AddL("server.http_requests", 1,
			endpointL, obs.Label{Key: "code", Value: strconv.Itoa(sw.status)})
		s.rec.ObserveL("server.http_request_seconds", elapsed.Seconds(), endpointL)

		s.flight.record(TraceEntry{
			RequestID: id,
			Endpoint:  endpoint,
			Status:    sw.status,
			Start:     start.UTC(),
			Seconds:   elapsed.Seconds(),
		}, span)

		s.log.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", endpoint),
			slog.Int("status", sw.status),
			slog.Int("bytes", sw.bytes),
			slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
			slog.String("remote", r.RemoteAddr),
		)
	}
}
