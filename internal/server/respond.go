package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"mpss"
	"mpss/api"
)

// errToStatus maps the library's typed error taxonomy onto HTTP status
// codes: malformed input 400, well-formed but unsatisfiable 422,
// canceled/timed-out solves 504 (or 499 when the client itself hung
// up), everything else — numeric exhaustion, contained solver bugs —
// 500.
func errToStatus(err error, clientGone bool) (int, string) {
	switch {
	case errors.Is(err, mpss.ErrInvalidInstance):
		return http.StatusBadRequest, "invalid_instance"
	case errors.Is(err, mpss.ErrInfeasible):
		return http.StatusUnprocessableEntity, "infeasible"
	case errors.Is(err, mpss.ErrCanceled):
		if clientGone {
			return api.StatusClientClosedRequest, "canceled"
		}
		return http.StatusGatewayTimeout, "canceled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// response is an HTTP answer: what the worker produces, what the cache
// stores. Success bodies are rendered eagerly (they are cached and
// byte-replayed — the determinism the cache test pins). Error answers
// keep kind/message and render at write time, so every error body —
// including a cache-replayed 422 — carries the request ID of the
// request actually being answered.
type response struct {
	code    int
	body    []byte
	errKind string
	errMsg  string
}

// jsonResponse marshals v; a marshal failure (cannot happen for the
// wire types in mpss/api) degrades to a 500.
func jsonResponse(code int, v any) response {
	body, err := json.Marshal(v)
	if err != nil {
		return errorResponse(http.StatusInternalServerError, "internal", fmt.Sprintf("encoding response: %v", err))
	}
	return response{code: code, body: body}
}

// errorResponse builds the uniform error answer (rendered at write
// time).
func errorResponse(code int, kind, msg string) response {
	return response{code: code, errKind: kind, errMsg: msg}
}

// cacheable reports whether a response may be served from the result
// cache: successful solves and deterministic domain rejections. 400s
// are cheap to recompute and 5xx/504 must never be replayed.
func (r response) cacheable() bool {
	return r.code == http.StatusOK || r.code == http.StatusUnprocessableEntity
}

// write sends the response, stamping the request ID into error bodies
// (the api.ErrorBody envelope). The JSON content type matches every
// body this server produces.
func (r response) write(w http.ResponseWriter, reqID string) {
	body := r.body
	if r.errKind != "" {
		body, _ = json.Marshal(api.NewErrorBody(r.errKind, r.errMsg, reqID))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(r.code)
	w.Write(body)
}
