package server

// Tests for the production-telemetry layer: request-ID propagation,
// the Prometheus exposition endpoint, the flight recorder, the
// liveness/readiness split and the structured access log.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"mpss/api"
	"net/http"
	"strings"
	"sync"
	"testing"

	"mpss/internal/obs"
)

// TestRequestIDPropagation is the acceptance e2e for request identity:
// inbound X-Request-ID → response header → error body → access log →
// flight-recorder span tag; absent inbound ID → generated.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	_, ts := newTestServer(t, Config{Workers: 1, Logger: logger})
	jobs, m := testInstance()

	// Inbound ID honored, echoed on the response header.
	const inboundID = "test-req-42"
	body, _ := json.Marshal(api.SolveRequest{M: m, Jobs: jobs})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve/optimal", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", inboundID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != inboundID {
		t.Errorf("response X-Request-ID = %q, want inbound %q", got, inboundID)
	}

	// Error bodies carry the request ID (here: a 400 invalid instance).
	badBody, _ := json.Marshal(api.SolveRequest{M: 0, Jobs: jobs})
	req, err = http.NewRequest(http.MethodPost, ts.URL+"/v1/solve/optimal", bytes.NewReader(badBody))
	if err != nil {
		t.Fatal(err)
	}
	const errID = "err-req-7"
	req.Header.Set("X-Request-ID", errID)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	errBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad instance: status %d, want 400", resp.StatusCode)
	}
	var e api.ErrorBody
	if err := json.Unmarshal(errBody, &e); err != nil || e.RequestID != errID {
		t.Errorf("error body request_id = %q, want %q (%s)", e.RequestID, errID, errBody)
	}

	// No inbound ID: one is generated, non-empty and well-formed.
	code, _ := post(t, ts.URL+"/v1/solve/optimal", api.SolveRequest{M: m, Jobs: jobs})
	if code != http.StatusOK {
		t.Fatalf("plain solve: status %d", code)
	}
	resp2, err := http.Post(ts.URL+"/v1/mincap", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if gen := resp2.Header.Get("X-Request-ID"); !api.ValidRequestID(gen) {
		t.Errorf("generated request ID %q not well-formed", gen)
	}

	// The access log carries the inbound ID as a structured field.
	logText := logBuf.String()
	if !strings.Contains(logText, `"request_id":"`+inboundID+`"`) {
		t.Errorf("access log lacks request_id %q:\n%s", inboundID, logText)
	}
	if !strings.Contains(logText, `"endpoint":"optimal"`) || !strings.Contains(logText, `"status":200`) {
		t.Errorf("access log lacks endpoint/status fields:\n%s", logText)
	}

	// The flight recorder holds the span tree, tagged with the ID.
	tracesResp, err := http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tracesResp.Body.Close()
	var traces TracesResponse
	if err := json.NewDecoder(tracesResp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, entry := range traces.Recent {
		if entry.RequestID != inboundID {
			continue
		}
		found = true
		if entry.Endpoint != "optimal" || entry.Status != http.StatusOK {
			t.Errorf("flight entry = %+v, want optimal/200", entry)
		}
		if entry.Trace.Tags["request_id"] != inboundID {
			t.Errorf("span tag request_id = %q, want %q", entry.Trace.Tags["request_id"], inboundID)
		}
		hasSolveChild := false
		for _, c := range entry.Trace.Children {
			if strings.HasPrefix(c.Name, "solve ") {
				hasSolveChild = true
			}
		}
		if !hasSolveChild {
			t.Errorf("span tree lacks solve child: %+v", entry.Trace)
		}
	}
	if !found {
		t.Errorf("flight recorder has no entry for %q (total %d)", inboundID, traces.Total)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestPrometheusEndpoint drives requests and checks the /metrics
// exposition: content type, per-endpoint × per-status series, bucket
// monotonicity and quantile agreement with the JSON snapshot.
func TestPrometheusEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	jobs, m := testInstance()
	req := api.SolveRequest{M: m, Jobs: jobs}
	for i := 0; i < 3; i++ {
		if code, body := post(t, ts.URL+"/v1/solve/optimal", req); code != http.StatusOK {
			t.Fatalf("solve %d: status %d (%s)", i, code, body)
		}
	}
	post(t, ts.URL+"/v1/solve/atcap", api.SolveRequest{M: m, Jobs: jobs, Cap: 0.1}) // 422

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want text/plain; version=0.0.4", ct)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(text), "\n")

	find := func(prefix string) string {
		for _, l := range lines {
			if strings.HasPrefix(l, prefix) {
				return l
			}
		}
		return ""
	}
	if l := find(`mpss_server_http_requests_total{code="200",endpoint="optimal"}`); l == "" {
		t.Errorf("missing optimal/200 series in:\n%s", text)
	}
	if l := find(`mpss_server_http_requests_total{code="422",endpoint="atcap"}`); l == "" {
		t.Errorf("missing atcap/422 series in:\n%s", text)
	}
	if l := find(`mpss_server_http_request_seconds_bucket{endpoint="optimal",le="+Inf"}`); l == "" {
		t.Errorf("missing per-endpoint +Inf bucket in:\n%s", text)
	}
	if l := find("go_goroutines"); l == "" {
		t.Error("missing go_goroutines gauge")
	}

	// Bucket monotonicity for the per-endpoint histogram.
	var prev float64 = -1
	buckets := 0
	for _, l := range lines {
		if !strings.HasPrefix(l, `mpss_server_http_request_seconds_bucket{endpoint="optimal"`) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(l[strings.LastIndexByte(l, ' ')+1:], "%g", &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", l, err)
		}
		if v < prev {
			t.Errorf("bucket counts not monotone at %q", l)
		}
		prev = v
		buckets++
	}
	if buckets < 2 {
		t.Errorf("got %d optimal bucket lines, want several", buckets)
	}

	// Quantiles in the exposition equal the JSON snapshot's values.
	sum, err := s.Recorder().HistogramL("server.http_request_seconds",
		obs.Label{Key: "endpoint", Value: "optimal"}).Summary()
	if err != nil {
		t.Fatal(err)
	}
	q50 := find(`mpss_server_http_request_seconds_summary{endpoint="optimal",quantile="0.5"}`)
	if q50 == "" {
		t.Fatalf("missing p50 summary series in:\n%s", text)
	}
	var got float64
	if _, err := fmt.Sscanf(q50[strings.LastIndexByte(q50, ' ')+1:], "%g", &got); err != nil {
		t.Fatal(err)
	}
	if got != sum.Median {
		t.Errorf("exposition p50 = %v, JSON snapshot median = %v", got, sum.Median)
	}
}

// TestFlightRecorderConcurrent hammers the flight recorder from many
// clients under -race: the rings stay bounded and internally
// consistent.
func TestFlightRecorderConcurrent(t *testing.T) {
	const flightSize = 8
	_, ts := newTestServer(t, Config{Workers: 4, FlightEntries: flightSize, CacheEntries: -1})
	jobs, m := testInstance()

	const clients = 8
	const rounds = 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				req := api.SolveRequest{M: m, Jobs: jobs, Cap: 100}
				var path string
				switch (c + r) % 3 {
				case 0:
					path = "/v1/solve/optimal"
				case 1:
					path = "/v1/feasible"
				default:
					path = "/v1/mincap"
				}
				post(t, ts.URL+path, req)
			}
		}(c)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Recent) > flightSize || len(traces.Slowest) > flightSize {
		t.Errorf("rings exceeded bound: recent %d, slowest %d, cap %d",
			len(traces.Recent), len(traces.Slowest), flightSize)
	}
	if traces.Total < clients*rounds {
		t.Errorf("total = %d, want >= %d", traces.Total, clients*rounds)
	}
	for i := 1; i < len(traces.Slowest); i++ {
		if traces.Slowest[i].Seconds > traces.Slowest[i-1].Seconds {
			t.Errorf("slowest ring not sorted at %d", i)
		}
	}
	for _, e := range traces.Recent {
		if e.RequestID == "" || e.Endpoint == "" || e.Status == 0 {
			t.Errorf("incomplete flight entry: %+v", e)
		}
	}
}

// TestReadyz covers the readiness states: ready when idle, saturated
// when the admission queue is full, and 404-free liveness throughout.
func TestReadyz(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	testHookTaskStart = func() {
		started <- struct{}{}
		<-release
	}
	defer func() { testHookTaskStart = nil }()

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	jobs, m := testInstance()
	req := api.SolveRequest{M: m, Jobs: jobs}

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/v1/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("idle readyz = %d %q, want 200 ready", code, body)
	}

	// Hold the worker and fill the queue: readiness must flip to
	// saturated while liveness stays ok. Distinct alphas keep the two
	// requests separate flights (identical bodies would coalesce).
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := req
			r.Alpha = float64(2 + i)
			post(t, ts.URL+"/v1/solve/optimal", r)
		}(i)
	}
	<-started
	waitFor(t, func() bool { return len(s.queue) == 1 })

	if code, body := get("/v1/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "saturated") {
		t.Errorf("saturated readyz = %d %q, want 503 saturated", code, body)
	}
	if code, body := get("/v1/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz under saturation = %d %q, want 200 ok", code, body)
	}

	close(release)
	wg.Wait()
	waitFor(t, func() bool { return len(s.queue) == 0 })
	if code, _ := get("/v1/readyz"); code != http.StatusOK {
		t.Errorf("post-drain readyz = %d, want 200", code)
	}
}

// TestMetricsContentTypes pins the explicit content types of the two
// metric encodings.
func TestMetricsContentTypes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/v1/metrics content type = %q, want application/json", ct)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content type = %q, want text/plain; version=0.0.4; charset=utf-8", ct)
	}
}

// TestDebugHandler checks the separate debug mux serves pprof and the
// flight recorder.
func TestDebugHandler(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	_ = ts
	dbg := s.DebugHandler()

	for _, path := range []string{"/debug/pprof/", "/v1/debug/traces", "/metrics", "/v1/metrics"} {
		req, err := http.NewRequest(http.MethodGet, path, nil)
		if err != nil {
			t.Fatal(err)
		}
		rw := newRecorderWriter()
		dbg.ServeHTTP(rw, req)
		if rw.status != http.StatusOK {
			t.Errorf("debug %s: status %d, want 200", path, rw.status)
		}
	}
}

// recorderWriter is a minimal ResponseWriter for handler-level tests.
type recorderWriter struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newRecorderWriter() *recorderWriter {
	return &recorderWriter{header: make(http.Header), status: http.StatusOK}
}

func (w *recorderWriter) Header() http.Header { return w.header }
func (w *recorderWriter) WriteHeader(c int)   { w.status = c }
func (w *recorderWriter) Write(p []byte) (int, error) {
	return w.body.Write(p)
}

// TestCachedErrorCarriesFreshRequestID pins the write-time rendering of
// error bodies: a 422 served from the result cache must carry the
// request ID of the *current* request, not the one that populated the
// cache.
func TestCachedErrorCarriesFreshRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	jobs, m := testInstance()
	infeasible := api.SolveRequest{M: m, Jobs: jobs, Cap: 0.1}

	send := func(id string) api.ErrorBody {
		body, _ := json.Marshal(infeasible)
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve/atcap", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status %d, want 422", resp.StatusCode)
		}
		var e api.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		return e
	}

	first := send("cache-fill-1")
	if first.Error.RequestID != "cache-fill-1" || first.Error.Kind != "infeasible" {
		t.Fatalf("first 422 = %+v", first)
	}
	// The deprecated top-level mirrors must match the nested envelope.
	if first.Kind != first.Error.Kind || first.RequestID != first.Error.RequestID {
		t.Fatalf("deprecated mirrors diverge from envelope: %+v", first)
	}
	second := send("cache-replay-2")
	if second.Error.RequestID != "cache-replay-2" {
		t.Errorf("replayed 422 request_id = %q, want cache-replay-2", second.Error.RequestID)
	}
	if second.Error.Kind != first.Error.Kind || second.Error.Message != first.Error.Message {
		t.Errorf("replayed 422 diverged: %+v vs %+v", second, first)
	}
}
