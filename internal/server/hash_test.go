package server

import (
	"testing"

	"mpss/internal/flow"
)

// The cache key must not distinguish a request that spells out a
// default from one that elides it: alpha 0 means 3, rel <= 0 means the
// solver's default tolerance, and the solve path resolves both the same
// way — distinct keys would split one logical request across cache
// entries and flights.
func TestRequestKeyNormalizesDefaults(t *testing.T) {
	jobs, m := testInstance()
	base := SolveRequest{M: m, Jobs: jobs}

	withAlpha := base
	withAlpha.Alpha = 3
	if requestKey("optimal", &base) != requestKey("optimal", &withAlpha) {
		t.Error("alpha elided vs alpha:3 produced different keys")
	}

	withRel := base
	withRel.Rel = flow.SolveTolerance
	if requestKey("mincap", &base) != requestKey("mincap", &withRel) {
		t.Error("rel elided vs rel:default produced different keys")
	}

	negRel := base
	negRel.Rel = -1
	if requestKey("mincap", &base) != requestKey("mincap", &negRel) {
		t.Error("rel:-1 did not normalize to the default tolerance")
	}

	otherAlpha := base
	otherAlpha.Alpha = 2
	if requestKey("optimal", &base) == requestKey("optimal", &otherAlpha) {
		t.Error("alpha:2 collided with the default alpha")
	}

	otherRel := base
	otherRel.Rel = 0.5
	if requestKey("mincap", &base) == requestKey("mincap", &otherRel) {
		t.Error("rel:0.5 collided with the default rel")
	}

	// Decomposition does not change the response bit-for-bit, so it must
	// not split the cache: on, off and elided all share one key.
	for _, on := range []bool{true, false} {
		on := on
		withDecompose := base
		withDecompose.Decompose = &on
		if requestKey("optimal", &base) != requestKey("optimal", &withDecompose) {
			t.Errorf("decompose:%v produced a different key than elided", on)
		}
	}
}
