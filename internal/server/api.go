package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"mpss"
)

// SolveRequest is the JSON body shared by every POST endpoint: the
// instance in the same shape the CLIs read ({"m": ..., "jobs": [...]})
// plus endpoint-specific knobs. Unknown fields are ignored, so a client
// may reuse one request struct across endpoints.
type SolveRequest struct {
	M    int        `json:"m"`
	Jobs []mpss.Job `json:"jobs"`

	// Alpha is the power-function exponent used to *report* energy
	// (P(s) = s^alpha, default 3). The optimal schedule itself does not
	// depend on it.
	Alpha float64 `json:"alpha,omitempty"`
	// Exact switches /v1/solve/optimal to exact rational arithmetic.
	Exact bool `json:"exact,omitempty"`
	// Decompose overrides the server's decomposition default for
	// /v1/solve/optimal (nil = use the server default). The schedule is
	// bit-identical either way, so the knob does not participate in the
	// cache key.
	Decompose *bool `json:"decompose,omitempty"`
	// Cap is the speed cap probed by /v1/feasible.
	Cap float64 `json:"cap,omitempty"`
	// Rel is the relative tolerance of /v1/mincap (0 = solver default).
	Rel float64 `json:"rel,omitempty"`
	// TimeoutMS overrides the server's per-request solve deadline in
	// milliseconds (capped at the server default; 0 = use the default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PhaseResponse is one speed level of an optimal schedule.
type PhaseResponse struct {
	Speed  float64 `json:"speed"`
	JobIDs []int   `json:"job_ids"`
	Procs  []int   `json:"procs"`
}

// OptimalResponse is the body of a successful /v1/solve/optimal call.
// Energy, Phases and Schedule are bit-deterministic for a given
// instance regardless of solve strategy; Rounds is solver telemetry
// (max-flow rounds executed) and depends on it — a decomposed solve
// runs fewer rounds than a monolithic one, and a cache-replayed body
// reports the rounds of whichever solve populated the entry.
type OptimalResponse struct {
	Energy   float64         `json:"energy"`
	Alpha    float64         `json:"alpha"`
	Phases   []PhaseResponse `json:"phases"`
	Rounds   int             `json:"rounds"`
	Schedule *mpss.Schedule  `json:"schedule"`
}

// OnlineResponse is the body of a successful /v1/solve/oa or
// /v1/solve/avr call. Bound is the algorithm's proven competitive
// ratio at the reporting alpha.
type OnlineResponse struct {
	Energy   float64        `json:"energy"`
	Alpha    float64        `json:"alpha"`
	Bound    float64        `json:"bound"`
	Replans  int            `json:"replans,omitempty"`
	Schedule *mpss.Schedule `json:"schedule"`
}

// AtCapResponse is the body of a successful /v1/solve/atcap call.
type AtCapResponse struct {
	Energy   float64        `json:"energy"`
	Alpha    float64        `json:"alpha"`
	Cap      float64        `json:"cap"`
	Schedule *mpss.Schedule `json:"schedule"`
}

// FeasibleResponse is the body of a successful /v1/feasible call.
type FeasibleResponse struct {
	Cap      float64 `json:"cap"`
	Feasible bool    `json:"feasible"`
}

// MinCapResponse is the body of a successful /v1/mincap call.
type MinCapResponse struct {
	Cap float64 `json:"cap"`
}

// SessionDeltaRequest is the body of POST /v1/session/{id}/delta: a
// batch of mutations applied atomically (all validated before any is
// applied) followed by one incremental re-solve. Removes apply before
// adds, so one delta can replace a job under the same ID.
type SessionDeltaRequest struct {
	AddJobs   []mpss.Job `json:"add_jobs,omitempty"`
	RemoveIDs []int      `json:"remove_ids,omitempty"`
	// Cap retunes the session's speed cap when present; 0 clears it.
	Cap *float64 `json:"cap,omitempty"`
	// TimeoutMS overrides the per-delta solve deadline (capped at the
	// server default; 0 = use the default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SessionResponse is the body returned by session create, delta and
// long-poll calls: the session coordinates plus the latest resolve.
type SessionResponse struct {
	SessionID string `json:"session_id"`
	// Seq increments on every published resolve; long-poll with
	// ?wait_seq=<last seen> to block until a newer one exists.
	Seq  int64 `json:"seq"`
	Jobs int   `json:"jobs"`
	// Incremental reports that the resolve rode the warm persistent
	// network instead of rebuilding it.
	Incremental bool            `json:"incremental"`
	Energy      float64         `json:"energy"`
	Alpha       float64         `json:"alpha"`
	Cap         float64         `json:"cap,omitempty"`
	CapFeasible *bool           `json:"cap_feasible,omitempty"`
	Phases      []PhaseResponse `json:"phases"`
	Schedule    *mpss.Schedule  `json:"schedule"`
}

// HealthResponse is the body of the probe endpoints. /v1/healthz
// (liveness) always reports "ok"; /v1/readyz (readiness) reports
// "ready", "draining" once shutdown began, or "saturated" while the
// admission queue is full.
type HealthResponse struct {
	Status string `json:"status"`
}

// ErrorResponse is the body of every non-2xx response. RequestID echoes
// the X-Request-ID of the failing request so an error seen by a client
// can be joined against the access log and the flight-recorder trace.
type ErrorResponse struct {
	Error     string `json:"error"`
	Kind      string `json:"kind"`
	RequestID string `json:"request_id,omitempty"`
}

// StatusClientClosedRequest is the (nginx-convention) status the server
// records when the client went away mid-solve; the client never sees
// it, but it keeps the canceled case distinct from 504 in logs/tests.
const StatusClientClosedRequest = 499

// errToStatus maps the library's typed error taxonomy onto HTTP status
// codes: malformed input 400, well-formed but unsatisfiable 422,
// canceled/timed-out solves 504 (or 499 when the client itself hung
// up), everything else — numeric exhaustion, contained solver bugs —
// 500.
func errToStatus(err error, clientGone bool) (int, string) {
	switch {
	case errors.Is(err, mpss.ErrInvalidInstance):
		return http.StatusBadRequest, "invalid_instance"
	case errors.Is(err, mpss.ErrInfeasible):
		return http.StatusUnprocessableEntity, "infeasible"
	case errors.Is(err, mpss.ErrCanceled):
		if clientGone {
			return StatusClientClosedRequest, "canceled"
		}
		return http.StatusGatewayTimeout, "canceled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// response is an HTTP answer: what the worker produces, what the cache
// stores. Success bodies are rendered eagerly (they are cached and
// byte-replayed — the determinism the cache test pins). Error answers
// keep kind/message and render at write time, so every error body —
// including a cache-replayed 422 — carries the request ID of the
// request actually being answered.
type response struct {
	code    int
	body    []byte
	errKind string
	errMsg  string
}

// jsonResponse marshals v; a marshal failure (cannot happen for the
// response types above) degrades to a 500.
func jsonResponse(code int, v any) response {
	body, err := json.Marshal(v)
	if err != nil {
		return errorResponse(http.StatusInternalServerError, "internal", fmt.Sprintf("encoding response: %v", err))
	}
	return response{code: code, body: body}
}

// errorResponse builds the uniform error answer (rendered at write
// time).
func errorResponse(code int, kind, msg string) response {
	return response{code: code, errKind: kind, errMsg: msg}
}

// cacheable reports whether a response may be served from the result
// cache: successful solves and deterministic domain rejections. 400s
// are cheap to recompute and 5xx/504 must never be replayed.
func (r response) cacheable() bool {
	return r.code == http.StatusOK || r.code == http.StatusUnprocessableEntity
}

// write sends the response, stamping the request ID into error bodies.
// The JSON content type matches every body this server produces.
func (r response) write(w http.ResponseWriter, reqID string) {
	body := r.body
	if r.errKind != "" {
		body, _ = json.Marshal(ErrorResponse{Error: r.errMsg, Kind: r.errKind, RequestID: reqID})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(r.code)
	w.Write(body)
}
