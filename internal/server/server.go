// Package server turns the mpss library into a long-running scheduling
// service: an HTTP/JSON API over the paper's offline optimum, the OA and
// AVR online simulations, and the speed-bounded feasibility/min-cap
// queries.
//
// Architecture (DESIGN.md §10): requests pass an admission layer (a
// bounded queue; overflow is rejected with 503 instead of queuing
// unboundedly), then execute on a fixed pool of workers, each owning a
// persistent mpss.Solver session whose flow-network arenas are reused
// across requests. A canonical-instance-hash LRU cache short-circuits
// repeated requests — the solver is bit-deterministic, so a cache hit
// is indistinguishable from a re-solve. Per-request deadlines and
// client disconnects propagate into the solver via WithContext and
// surface as mpss.ErrCanceled; a canceled request frees its worker at
// the next phase/round boundary without poisoning the session. Worker
// panics are contained per request (500), mirroring the solver's own
// recover boundary. Shutdown drains: new work is rejected with 503
// while in-flight solves run to completion.
//
// Every route runs through the instrument middleware (middleware.go):
// requests get an X-Request-ID (inbound honored, else generated) that
// is echoed on the response, threaded through the solver context,
// stamped into error bodies, logged in the structured JSON access log,
// and tagged on the flight-recorder span tree — one join key across
// logs, metrics and traces. Telemetry is exposed three ways: the JSON
// snapshot at /v1/metrics, the Prometheus text exposition at /metrics
// (per-endpoint × per-status counters, latency histograms with
// cumulative buckets and p50/p90/p99 quantiles, Go runtime gauges), and
// the flight recorder at /v1/debug/traces (bounded rings of the most
// recent and the slowest request span trees).
//
// Endpoints:
//
//	POST   /v1/solve/optimal     offline optimal schedule (optionally exact)
//	POST   /v1/solve/oa          online Optimal Available simulation
//	POST   /v1/solve/avr         online Average Rate simulation
//	POST   /v1/solve/atcap       fixed-frequency schedule at a speed cap
//	POST   /v1/feasible          one feasibility probe at a speed cap
//	POST   /v1/mincap            minimum feasible speed cap
//	POST   /v1/session           open a streaming session (warm instance)
//	POST   /v1/session/{id}/delta  mutate + incrementally re-solve
//	GET    /v1/session/{id}      latest resolve (long-poll with wait_seq)
//	DELETE /v1/session/{id}      tear the session down
//	GET    /v1/healthz           liveness (always "ok" while serving)
//	GET    /v1/readyz            readiness ("ready"/"draining"/"saturated")
//	GET    /v1/status            replica introspection (queue/cache/load)
//	GET    /v1/cache/{hash}      result-cache peek by canonical request key
//	GET    /v1/metrics           observability snapshot
//	GET    /metrics              Prometheus text exposition (version 0.0.4)
//	GET    /v1/debug/traces      flight recorder (recent + slowest spans)
//
// Streaming sessions (DESIGN.md §13) pin a named instance to one
// worker's warm solver: each delta re-solves incrementally on the
// persistent flow network instead of from scratch. Session tasks are
// routed through per-worker affinity queues so a session's solver is
// only ever touched by its owner worker; a janitor evicts sessions idle
// past SessionTTL.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mpss/api"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"mpss"
	"mpss/internal/obs"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a production default.
type Config struct {
	// Workers is the solver pool size — the number of concurrent solves
	// (default GOMAXPROCS). Each worker owns one mpss.Solver session.
	Workers int
	// QueueDepth bounds the admission queue; a request arriving with the
	// queue full is rejected with 503 (default 64).
	QueueDepth int
	// DefaultTimeout is the per-request solve deadline (default 30s). A
	// request's timeout_ms may shorten it but never extend it.
	DefaultTimeout time.Duration
	// CacheEntries bounds the result cache (default 1024; negative
	// disables caching).
	CacheEntries int
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Recorder receives the service counters and histograms (and solver
	// counters from every worker). Defaults to a fresh recorder,
	// exposed at /v1/metrics either way.
	Recorder *obs.Recorder
	// TraceRequests adds a span per solve request to the recorder.
	TraceRequests bool
	// TraceSpanLimit caps the recorder's span tree: solver phase spans
	// and request spans stop accumulating beyond it (counted in
	// "obs.spans_dropped"), keeping a long-lived daemon's memory
	// bounded. Default 4096; negative means unlimited.
	TraceSpanLimit int
	// Logger receives the structured access/error log records (one JSON
	// line per request when built with slog.NewJSONHandler). Defaults to
	// a discarding logger.
	Logger *slog.Logger
	// FlightEntries sizes the flight recorder: the server retains the
	// FlightEntries most recent and FlightEntries slowest request span
	// trees for /v1/debug/traces. Default 64; negative disables.
	FlightEntries int
	// SessionTTL evicts streaming sessions idle longer than this
	// (default 10m; negative disables eviction).
	SessionTTL time.Duration
	// MaxSessions bounds concurrently open streaming sessions; creation
	// beyond it is rejected with 503 (default 256).
	MaxSessions int
	// SessionMaxJobs bounds one session's job set — the per-session
	// memory bound; a create or delta that would exceed it is rejected
	// with 413 (default 100000).
	SessionMaxJobs int
	// ReplicaName names this replica in GET /v1/status and the cluster
	// tier's views (empty for a standalone server).
	ReplicaName string
	// Decompose turns on zero-active-boundary decomposition for
	// /v1/solve/optimal (default off); a request's "decompose" field
	// overrides it either way. Results are bit-identical with or
	// without, so the knob is purely a latency lever for servers whose
	// clients submit long separable instances.
	Decompose bool
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Recorder == nil {
		c.Recorder = obs.New()
	}
	if c.TraceSpanLimit == 0 {
		c.TraceSpanLimit = 4096
	}
	if c.TraceSpanLimit > 0 {
		c.Recorder.LimitTrace(c.TraceSpanLimit)
	}
	if c.Logger == nil {
		// A level above every named level: Enabled is always false, so
		// the default logger costs one comparison per request.
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	if c.FlightEntries == 0 {
		c.FlightEntries = 64
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 10 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.SessionMaxJobs <= 0 {
		c.SessionMaxJobs = 100_000
	}
}

// task is one admitted solve request: the worker executes exec on its
// session and closes done. enqueued/waited measure time spent in the
// admission queue (waited is written by the worker before done closes,
// read by the handler after — ordered by the channel close).
type task struct {
	ctx context.Context
	// clientCtx is the bare request context (no server deadline): the
	// worker consults it to tell a client disconnect (499) apart from a
	// deadline that expired while the task queued (504).
	clientCtx context.Context
	exec      func(sess *session) response
	resp      response
	done      chan struct{}
	enqueued  time.Time
	waited    time.Duration
}

// session is the per-worker solver state: one mpss.Solver whose arenas
// stay warm across the requests the worker serves.
type session struct {
	solver *mpss.Solver
}

// testHookTaskStart, when non-nil, runs on the worker goroutine before
// each task executes. Tests use it to hold a worker mid-request and
// deterministically fill the queue / exercise the drain path.
var testHookTaskStart func()

// Server is the scheduling service. Construct with New, serve it as an
// http.Handler, stop it with Shutdown. Safe for concurrent use.
type Server struct {
	cfg    Config
	rec    *obs.Recorder
	log    *slog.Logger
	mux    *http.ServeMux
	cache  *resultCache
	flight *flightRecorder
	queue  chan *task
	// sessQ[i] is worker i's session-affinity queue: tasks touching a
	// streaming session are routed to the one worker owning its solver.
	sessQ    []chan *task
	sessions *sessionRegistry
	sf       flightGroup // coalesces duplicate concurrent solves

	workers  sync.WaitGroup // worker goroutines
	inflight sync.WaitGroup // admitted, not yet answered tasks

	janitorStop chan struct{}
	start       time.Time

	mu       sync.RWMutex // guards draining and the queue closes
	draining bool
}

// New starts a Server's worker pool and returns it ready to serve.
func New(cfg Config) *Server {
	cfg.applyDefaults()
	s := &Server{
		cfg:         cfg,
		rec:         cfg.Recorder,
		log:         cfg.Logger,
		mux:         http.NewServeMux(),
		cache:       newResultCache(cfg.CacheEntries),
		flight:      newFlightRecorder(cfg.FlightEntries),
		queue:       make(chan *task, cfg.QueueDepth),
		sessQ:       make([]chan *task, cfg.Workers),
		sessions:    newSessionRegistry(),
		janitorStop: make(chan struct{}),
		start:       time.Now(),
	}
	for i := range s.sessQ {
		// Session queues are shallow: a session serializes its deltas
		// anyway, and rejecting with 503 beats queuing behind a stranger's
		// long solve.
		s.sessQ[i] = make(chan *task, 16)
	}
	for _, ep := range [...]string{"optimal", "oa", "avr", "atcap"} {
		s.mux.HandleFunc("/v1/solve/"+ep, s.instrument(ep, s.solveHandler(ep)))
	}
	s.mux.HandleFunc("/v1/feasible", s.instrument("feasible", s.solveHandler("feasible")))
	s.mux.HandleFunc("/v1/mincap", s.instrument("mincap", s.solveHandler("mincap")))
	s.mux.HandleFunc("POST /v1/session", s.instrument("session_create", s.handleSessionCreate))
	s.mux.HandleFunc("POST /v1/session/{id}/delta", s.instrument("session_delta", s.handleSessionDelta))
	s.mux.HandleFunc("GET /v1/session/{id}", s.instrument("session_get", s.handleSessionGet))
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.instrument("session_delete", s.handleSessionDelete))
	s.mux.HandleFunc("/v1/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("/v1/readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /v1/status", s.instrument("status", s.handleStatus))
	s.mux.HandleFunc("GET /v1/cache/{hash}", s.instrument("cache_peek", s.handleCachePeek))
	s.mux.HandleFunc("/v1/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("/metrics", s.instrument("prometheus", s.handlePrometheus))
	s.mux.HandleFunc("/v1/debug/traces", s.instrument("traces", s.handleTraces))
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker(i)
	}
	go s.sessionJanitor()
	return s
}

// Recorder returns the server's observability recorder (the /v1/metrics
// source).
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Config returns the server's resolved configuration (defaults applied),
// so callers can report what the daemon actually runs with.
func (s *Server) Config() Config { return s.cfg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// worker is one solver loop: it owns a session for its lifetime and
// executes tasks from the shared queue and its own session-affinity
// queue until both close at drain time.
func (s *Server) worker(i int) {
	defer s.workers.Done()
	// The session solver records into the shared (concurrency-safe)
	// recorder, so /v1/metrics shows solver counters — rounds, warm
	// hits, fallbacks — across all workers.
	sess := &session{solver: mpss.NewSolver(mpss.WithRecorder(s.rec))}
	shared, own := s.queue, s.sessQ[i]
	for shared != nil || own != nil {
		var t *task
		var ok bool
		select {
		case t, ok = <-shared:
			if !ok {
				shared = nil
				continue
			}
		case t, ok = <-own:
			if !ok {
				own = nil
				continue
			}
		}
		if testHookTaskStart != nil {
			testHookTaskStart()
		}
		t.waited = time.Since(t.enqueued)
		// A task whose context died while queued is not worth starting —
		// but the reason decides the status: a deadline that expired with
		// the client still connected is the server's failure to schedule
		// in time (504), while a client that hung up is 499.
		if err := t.ctx.Err(); err != nil {
			clientGone := t.clientCtx != nil && t.clientCtx.Err() != nil
			if errors.Is(err, context.DeadlineExceeded) && !clientGone {
				s.rec.Add("server.deadline_exceeded", 1)
				t.resp = errorResponse(http.StatusGatewayTimeout, "canceled", "deadline expired while queued: "+err.Error())
			} else {
				s.rec.Add("server.canceled", 1)
				t.resp = errorResponse(api.StatusClientClosedRequest, "canceled", err.Error())
			}
		} else {
			t.resp = s.runTask(t, sess)
		}
		close(t.done)
	}
}

// runTask executes one task with per-request panic containment: a panic
// escaping the solver's own recover boundary (or raised in the handler
// glue) becomes a 500 for this request, and the worker — with a fresh
// per-call solver state — keeps serving.
func (s *Server) runTask(t *task, sess *session) (resp response) {
	defer func() {
		if r := recover(); r != nil {
			s.rec.Add("server.panics", 1)
			resp = errorResponse(http.StatusInternalServerError, "internal", fmt.Sprintf("panic: %v", r))
		}
	}()
	return t.exec(sess)
}

// admit enqueues a task on the shared queue unless the server is
// draining or the queue is full.
func (s *Server) admit(t *task) bool { return s.admitTo(s.queue, t) }

// admitTo enqueues a task on the given queue (the shared queue or a
// worker's session-affinity queue) unless the server is draining or the
// queue is full. It holds the read lock across the send so Shutdown's
// queue close (under the write lock) cannot race a send on a closed
// channel.
func (s *Server) admitTo(q chan *task, t *task) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false
	}
	select {
	case q <- t:
		s.inflight.Add(1)
		return true
	default:
		return false
	}
}

// Shutdown gracefully drains the server: new solve requests are
// rejected with 503 immediately, in-flight and already-queued solves
// run to completion, then the workers exit. It returns nil once the
// pool is fully drained, or ctx.Err() if ctx expires first (workers
// are left to finish in the background; Shutdown may not be retried).
// Callers embedding the Server in an http.Server should call
// http.Server.Shutdown first so handlers finish collecting responses.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()

	if !already {
		close(s.janitorStop)
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		if !already {
			// All admitted tasks are answered and no further admit can
			// succeed; the queues are empty and safe to close.
			s.mu.Lock()
			close(s.queue)
			for _, q := range s.sessQ {
				close(q)
			}
			s.mu.Unlock()
		}
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// solveHandler builds the handler for one solve endpoint: decode,
// consult the cache, admit into the queue, wait for the worker, cache
// and reply. The instrument middleware has already assigned the request
// ID and opened the request span by the time this runs.
func (s *Server) solveHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := RequestIDFromContext(r.Context())
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			errorResponse(http.StatusMethodNotAllowed, "method_not_allowed", "POST required").write(w, reqID)
			return
		}
		s.rec.Add("server.requests", 1)
		stop := s.rec.Time("server.request_seconds")
		defer stop()

		var req api.SolveRequest
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			errorResponse(http.StatusBadRequest, "bad_json", fmt.Sprintf("decoding request: %v", err)).write(w, reqID)
			return
		}
		key := api.RequestKey(kind, &req)
		if resp, ok := s.cache.Get(key); ok {
			s.rec.Add("server.cache_hits", 1)
			spanFromContext(r.Context()).SetTag("cache", "hit")
			w.Header().Set(api.HeaderCache, "hit")
			resp.write(w, reqID)
			return
		}
		s.rec.Add("server.cache_misses", 1)

		// runSolve is the full admission path: deadline, queue, worker,
		// wait. Run by the flight leader (and by a follower whose leader
		// came back with an uncacheable answer).
		runSolve := func() response {
			timeout := s.cfg.DefaultTimeout
			if req.TimeoutMS > 0 {
				if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
					timeout = d
				}
			}
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()

			var span *obs.Span
			if s.cfg.TraceRequests {
				span = s.rec.StartSpan("request " + kind)
				span.SetTag("request_id", reqID)
				defer span.End()
			}

			t := &task{
				ctx:       ctx,
				clientCtx: r.Context(),
				exec: func(sess *session) response {
					// The solve runs as a child of the flight-recorder request
					// span, so queue wait and solve time separate in the trace.
					solveSpan := spanFromContext(ctx).StartSpan("solve " + kind)
					defer solveSpan.End()
					return s.solve(ctx, kind, &req, sess, r)
				},
				done:     make(chan struct{}),
				enqueued: time.Now(),
			}
			if !s.admit(t) {
				s.rec.Add("server.rejected", 1)
				return errorResponse(http.StatusServiceUnavailable, "overloaded", "solver queue full or server draining")
			}
			// The worker always answers: a canceled context unwinds the solve
			// at its next phase/round boundary, so this wait is bounded.
			<-t.done
			s.inflight.Done()
			s.rec.Observe("server.queue_wait_seconds", t.waited.Seconds())
			span.Add("status", int64(t.resp.code))
			spanFromContext(r.Context()).SetValue("queue_wait_seconds", t.waited.Seconds())
			return t.resp
		}

		// Coalesce the stampede: concurrent identical requests (same key,
		// result not cached yet) share one solve instead of queuing one
		// each.
		call, leader := s.sf.join(key)
		if !leader {
			s.rec.Add("server.coalesced", 1)
			spanFromContext(r.Context()).SetTag("flight", "coalesced")
			select {
			case <-call.done:
				if call.resp.cacheable() {
					call.resp.write(w, reqID)
					return
				}
				// The leader's answer was transient (5xx/503/timeout) — it
				// may have been the leader's own short deadline. Solve solo
				// rather than replaying a failure that may not be ours.
			case <-r.Context().Done():
				s.rec.Add("server.canceled", 1)
				errorResponse(api.StatusClientClosedRequest, "canceled", r.Context().Err().Error()).write(w, reqID)
				return
			}
			resp := runSolve()
			if resp.cacheable() {
				s.cache.Put(key, resp)
			}
			resp.write(w, reqID)
			return
		}
		var resp response
		func() {
			// finish runs even if runSolve panics: followers then observe a
			// zero (uncacheable) response and solve on their own.
			defer func() { s.sf.finish(key, call, resp) }()
			resp = runSolve()
		}()
		if resp.cacheable() {
			s.cache.Put(key, resp)
		}
		resp.write(w, reqID)
	}
}

// solve dispatches one admitted request to the worker's solver session.
func (s *Server) solve(ctx context.Context, kind string, req *api.SolveRequest, sess *session, r *http.Request) response {
	alpha := req.Alpha
	if alpha == 0 {
		alpha = 3
	}
	p, err := mpss.NewAlpha(alpha)
	if err != nil {
		return errorResponse(http.StatusBadRequest, "invalid_instance", fmt.Sprintf("alpha: %v", err))
	}
	in := &mpss.Instance{M: req.M, Jobs: req.Jobs}
	withCtx := mpss.WithContext(ctx)

	fail := func(err error) response {
		// The request context distinguishes "client hung up" from "the
		// deadline we imposed expired".
		clientGone := r.Context().Err() != nil
		code, errKind := errToStatus(err, clientGone)
		if errKind == "canceled" {
			s.rec.Add("server.canceled", 1)
		}
		return errorResponse(code, errKind, err.Error())
	}

	switch kind {
	case "optimal":
		solveFn := sess.solver.Solve
		if req.Exact {
			solveFn = sess.solver.SolveExact
		}
		decompose := s.cfg.Decompose
		if req.Decompose != nil {
			decompose = *req.Decompose
		}
		res, err := solveFn(in, withCtx, mpss.WithDecomposition(decompose))
		if err != nil {
			return fail(err)
		}
		out := api.OptimalResponse{
			Energy:   res.Schedule.Energy(p),
			Alpha:    alpha,
			Rounds:   res.Stats.Rounds,
			Schedule: res.Schedule,
		}
		for _, ph := range res.Phases {
			out.Phases = append(out.Phases, api.PhaseResponse{Speed: ph.Speed, JobIDs: ph.JobIDs, Procs: ph.Procs})
		}
		return jsonResponse(http.StatusOK, out)
	case "oa":
		res, err := sess.solver.OA(in, withCtx)
		if err != nil {
			return fail(err)
		}
		return jsonResponse(http.StatusOK, api.OnlineResponse{
			Energy:   res.Schedule.Energy(p),
			Alpha:    alpha,
			Bound:    mpss.OABound(alpha),
			Replans:  res.Replans,
			Schedule: res.Schedule,
		})
	case "avr":
		res, err := sess.solver.AVR(in, withCtx)
		if err != nil {
			return fail(err)
		}
		return jsonResponse(http.StatusOK, api.OnlineResponse{
			Energy:   res.Schedule.Energy(p),
			Alpha:    alpha,
			Bound:    mpss.AVRBound(alpha),
			Schedule: res.Schedule,
		})
	case "atcap":
		// Fixed-frequency "race to idle" schedule: every processor runs
		// at exactly req.Cap or idles. The one endpoint whose domain
		// answer can be ErrInfeasible (422): a cap below the instance's
		// minimum feasible speed admits no schedule.
		sched, err := mpss.ScheduleAtCap(in, req.Cap)
		if err != nil {
			return fail(err)
		}
		return jsonResponse(http.StatusOK, api.AtCapResponse{
			Energy:   sched.Energy(p),
			Alpha:    alpha,
			Cap:      req.Cap,
			Schedule: sched,
		})
	case "feasible":
		ok, err := sess.solver.FeasibleAtSpeed(in, req.Cap, withCtx)
		if err != nil {
			return fail(err)
		}
		return jsonResponse(http.StatusOK, api.FeasibleResponse{Cap: req.Cap, Feasible: ok})
	case "mincap":
		cap, err := sess.solver.MinFeasibleCap(in, req.Rel, withCtx)
		if err != nil {
			return fail(err)
		}
		return jsonResponse(http.StatusOK, api.MinCapResponse{Cap: cap})
	default:
		return errorResponse(http.StatusNotFound, "unknown_endpoint", kind)
	}
}

// handleHealthz answers liveness probes: 200 "ok" for as long as the
// process can serve HTTP at all — a draining server is still alive, so
// an orchestrator must not kill it. Readiness (drain/saturation) lives
// on /v1/readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	jsonResponse(http.StatusOK, api.HealthResponse{Status: "ok"}).write(w, RequestIDFromContext(r.Context()))
}

// handleReadyz answers readiness probes: a load balancer should stop
// routing here when the server is draining (Shutdown began) or the
// admission queue is saturated (the next solve would be rejected 503
// anyway).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reqID := RequestIDFromContext(r.Context())
	state := s.readyState()
	code := http.StatusOK
	if state != "ready" {
		code = http.StatusServiceUnavailable
	}
	jsonResponse(code, api.HealthResponse{Status: state}).write(w, reqID)
}

// handleMetrics dumps the recorder snapshot as JSON — service counters
// (server.requests, server.cache_hits, server.rejected,
// server.canceled), the labeled per-endpoint series, and the solver
// counters every worker session recorded.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.rec.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handlePrometheus renders the same recorder in the Prometheus text
// exposition format for scrapers (see internal/obs prom.go for the
// metric naming and the histogram/summary encoding).
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.rec.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleTraces serves the flight recorder: the bounded rings of most
// recent and slowest request span trees.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	jsonResponse(http.StatusOK, s.flight.snapshot()).write(w, RequestIDFromContext(r.Context()))
}

// DebugHandler returns the opt-in debug surface meant for a separate,
// non-public listener: net/http/pprof (CPU/heap/goroutine profiles),
// the flight recorder and both metric encodings. cmd/mpss-served binds
// it to -debug-addr.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/v1/debug/traces", s.handleTraces)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics", s.handlePrometheus)
	return mux
}
