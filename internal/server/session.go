package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"mpss/api"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mpss"
)

// liveSession is one open streaming session: a named mutable instance
// pinned to a single worker's warm solver. The solver field is touched
// only on the owner worker (tasks reach it through sessQ[worker], which
// serializes them), so it needs no lock; the mutable published state —
// seq, last response, idle clock — is guarded by mu because the HTTP
// goroutines of GET long-polls and the janitor read it concurrently.
type liveSession struct {
	id     string
	worker int
	alpha  float64
	power  mpss.Alpha
	exact  bool
	solver *mpss.Solver // owner-worker only

	mu       sync.Mutex
	jobs     int
	lastUsed time.Time
	seq      int64
	last     response
	notify   chan struct{} // closed and replaced on every publish
	closed   bool
}

// publish stores a new latest response under the next sequence number
// and wakes every long-poller.
func (ls *liveSession) publish(resp response, jobs int) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.seq++
	ls.jobs = jobs
	ls.last = resp
	ls.lastUsed = time.Now()
	close(ls.notify)
	ls.notify = make(chan struct{})
}

// touch refreshes the idle clock (any authenticated-by-ID activity
// counts, including long-polls).
func (ls *liveSession) touch() {
	ls.mu.Lock()
	ls.lastUsed = time.Now()
	ls.mu.Unlock()
}

// sessionRegistry is the server's table of open sessions plus the
// round-robin cursor that spreads new sessions across workers.
type sessionRegistry struct {
	mu   sync.Mutex
	m    map[string]*liveSession
	next int
}

func newSessionRegistry() *sessionRegistry {
	return &sessionRegistry{m: make(map[string]*liveSession)}
}

// insert registers a session unless the table is full.
func (r *sessionRegistry) insert(ls *liveSession, max int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.m) >= max {
		return false
	}
	r.m[ls.id] = ls
	return true
}

func (r *sessionRegistry) get(id string) (*liveSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls, ok := r.m[id]
	return ls, ok
}

// remove unregisters and returns the session, or nil if already gone —
// the caller that gets it back owns the teardown (close exactly once).
func (r *sessionRegistry) remove(id string) *liveSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls := r.m[id]
	delete(r.m, id)
	return ls
}

// pickWorker assigns the next session's owner worker round-robin.
func (r *sessionRegistry) pickWorker(workers int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.next % workers
	r.next++
	return w
}

// snapshot returns the open sessions for the janitor's idle sweep.
func (r *sessionRegistry) snapshot() []*liveSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*liveSession, 0, len(r.m))
	for _, ls := range r.m {
		out = append(out, ls)
	}
	return out
}

// closeSession marks a removed session closed and wakes its pollers
// (they observe closed and answer 404).
func (s *Server) closeSession(ls *liveSession, evicted bool) {
	ls.mu.Lock()
	ls.closed = true
	close(ls.notify)
	ls.notify = make(chan struct{})
	ls.mu.Unlock()
	s.rec.Add("server.sessions_active", -1)
	if evicted {
		s.rec.Add("server.sessions_evicted", 1)
	}
}

// sessionJanitor evicts sessions idle past SessionTTL. It ticks at a
// quarter of the TTL so an idle session outlives its TTL by at most 25%.
func (s *Server) sessionJanitor() {
	ttl := s.cfg.SessionTTL
	if ttl <= 0 {
		<-s.janitorStop
		return
	}
	tick := ttl / 4
	if tick > time.Minute {
		tick = time.Minute
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			for _, ls := range s.sessions.snapshot() {
				ls.mu.Lock()
				idle := time.Since(ls.lastUsed)
				ls.mu.Unlock()
				if idle > ttl && s.sessions.remove(ls.id) != nil {
					s.closeSession(ls, true)
				}
			}
		}
	}
}

// sessionTimeout resolves a per-call timeout_ms against the server
// default (shorten only, like the one-shot path).
func (s *Server) sessionTimeout(ms int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return timeout
}

// sessionResponse renders the session's coordinates plus one resolve.
// Called on the owner worker only (it reads the solver's job set).
func sessionResponse(ls *liveSession, seq int64, res *mpss.SessionResult) response {
	out := api.SessionResponse{
		SessionID:   ls.id,
		Seq:         seq,
		Jobs:        len(ls.solver.SessionJobs()),
		Incremental: res.Incremental,
		Energy:      res.Result.Schedule.Energy(ls.power),
		Alpha:       ls.alpha,
		Cap:         res.Cap,
		Schedule:    res.Result.Schedule,
	}
	if res.Cap > 0 {
		feasible := res.CapFeasible
		out.CapFeasible = &feasible
	}
	for _, ph := range res.Result.Phases {
		out.Phases = append(out.Phases, api.PhaseResponse{Speed: ph.Speed, JobIDs: ph.JobIDs, Procs: ph.Procs})
	}
	return jsonResponse(http.StatusOK, out)
}

// runSessionTask routes exec to the session's owner worker and waits.
// The returned response is exec's, or 503/499/504 when the task could
// not be admitted or died in the queue.
func (s *Server) runSessionTask(r *http.Request, ls *liveSession, timeout time.Duration, exec func(ctx context.Context) response) response {
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	t := &task{
		ctx:       ctx,
		clientCtx: r.Context(),
		exec: func(_ *session) response {
			return exec(ctx)
		},
		done:     make(chan struct{}),
		enqueued: time.Now(),
	}
	if !s.admitTo(s.sessQ[ls.worker], t) {
		s.rec.Add("server.rejected", 1)
		return errorResponse(http.StatusServiceUnavailable, "overloaded", "session queue full or server draining")
	}
	<-t.done
	s.inflight.Done()
	s.rec.Observe("server.queue_wait_seconds", t.waited.Seconds())
	return t.resp
}

// handleSessionCreate opens a streaming session: validate, pin to a
// worker, run the initial solve there, publish seq 1.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	reqID := RequestIDFromContext(r.Context())
	s.rec.Add("server.requests", 1)

	var req api.SolveRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		errorResponse(http.StatusBadRequest, "bad_json", fmt.Sprintf("decoding request: %v", err)).write(w, reqID)
		return
	}
	if len(req.Jobs) > s.cfg.SessionMaxJobs {
		errorResponse(http.StatusRequestEntityTooLarge, "session_too_large",
			fmt.Sprintf("%d jobs exceed the per-session bound %d", len(req.Jobs), s.cfg.SessionMaxJobs)).write(w, reqID)
		return
	}
	alpha := req.Alpha
	if alpha == 0 {
		alpha = 3
	}
	p, err := mpss.NewAlpha(alpha)
	if err != nil {
		errorResponse(http.StatusBadRequest, "invalid_instance", fmt.Sprintf("alpha: %v", err)).write(w, reqID)
		return
	}
	ls := &liveSession{
		id:     api.NewRequestID(),
		worker: s.sessions.pickWorker(s.cfg.Workers),
		alpha:  alpha,
		power:  p,
		exact:  req.Exact,
		solver: mpss.NewSolver(mpss.WithRecorder(s.rec)),
		notify: make(chan struct{}),
	}
	ls.lastUsed = time.Now()
	if !s.sessions.insert(ls, s.cfg.MaxSessions) {
		errorResponse(http.StatusServiceUnavailable, "overloaded",
			fmt.Sprintf("session table full (%d open)", s.cfg.MaxSessions)).write(w, reqID)
		return
	}

	in := &mpss.Instance{M: req.M, Jobs: req.Jobs}
	resp := s.runSessionTask(r, ls, s.sessionTimeout(req.TimeoutMS), func(ctx context.Context) response {
		begin := ls.solver.Begin
		if ls.exact {
			begin = ls.solver.BeginExact
		}
		if err := begin(in, mpss.WithContext(ctx)); err != nil {
			return s.sessionFail(r, err)
		}
		if req.Cap > 0 {
			if err := ls.solver.SetCap(req.Cap); err != nil {
				return s.sessionFail(r, err)
			}
		}
		res, err := ls.solver.Resolve(mpss.WithContext(ctx))
		if err != nil {
			return s.sessionFail(r, err)
		}
		return sessionResponse(ls, 1, res)
	})
	if resp.code != http.StatusOK {
		// The session never came alive; take it back out of the table.
		if s.sessions.remove(ls.id) != nil {
			ls.mu.Lock()
			ls.closed = true
			ls.mu.Unlock()
		}
		resp.write(w, reqID)
		return
	}
	s.rec.Add("server.sessions_active", 1)
	ls.publish(resp, len(req.Jobs))
	resp.write(w, reqID)
}

// sessionFail maps a solver error exactly like the one-shot path.
func (s *Server) sessionFail(r *http.Request, err error) response {
	clientGone := r.Context().Err() != nil
	code, kind := errToStatus(err, clientGone)
	if kind == "canceled" {
		s.rec.Add("server.canceled", 1)
	}
	return errorResponse(code, kind, err.Error())
}

// validCap rejects caps the session layer cannot represent.
func validCap(c float64) bool {
	return c >= 0 && !math.IsNaN(c) && !math.IsInf(c, 0)
}

// handleSessionDelta applies one mutation batch atomically — every
// mutation is validated against the session's current job set before
// any is applied, so a 400 leaves the session exactly as it was — then
// re-solves incrementally and publishes the result.
func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	reqID := RequestIDFromContext(r.Context())
	s.rec.Add("server.requests", 1)

	ls, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		errorResponse(http.StatusNotFound, "unknown_session", "no such session").write(w, reqID)
		return
	}
	var req api.SessionDeltaRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		errorResponse(http.StatusBadRequest, "bad_json", fmt.Sprintf("decoding request: %v", err)).write(w, reqID)
		return
	}
	if req.Cap != nil && !validCap(*req.Cap) {
		errorResponse(http.StatusBadRequest, "invalid_instance", "cap must be finite and non-negative").write(w, reqID)
		return
	}
	ls.mu.Lock()
	grown := ls.jobs - len(req.RemoveIDs) + len(req.AddJobs)
	ls.mu.Unlock()
	if grown > s.cfg.SessionMaxJobs {
		errorResponse(http.StatusRequestEntityTooLarge, "session_too_large",
			fmt.Sprintf("delta would grow the session to %d jobs (bound %d)", grown, s.cfg.SessionMaxJobs)).write(w, reqID)
		return
	}

	resp := s.runSessionTask(r, ls, s.sessionTimeout(req.TimeoutMS), func(ctx context.Context) response {
		ls.mu.Lock()
		closed := ls.closed
		seq := ls.seq
		ls.mu.Unlock()
		if closed {
			return errorResponse(http.StatusNotFound, "unknown_session", "session closed")
		}
		if err := s.validateDelta(ls, &req); err != nil {
			return s.sessionFail(r, err)
		}
		for _, id := range req.RemoveIDs {
			if err := ls.solver.RemoveJob(id); err != nil {
				return s.sessionFail(r, err)
			}
		}
		for _, j := range req.AddJobs {
			if err := ls.solver.AddJob(j); err != nil {
				return s.sessionFail(r, err)
			}
		}
		if req.Cap != nil {
			if err := ls.solver.SetCap(*req.Cap); err != nil {
				return s.sessionFail(r, err)
			}
		}
		res, err := ls.solver.Resolve(mpss.WithContext(ctx))
		if err != nil {
			// The session stays alive: the solver rebuilds its network at
			// the next Resolve, with the mutations already applied.
			return s.sessionFail(r, err)
		}
		s.rec.Add("server.delta_solves", 1)
		out := sessionResponse(ls, seq+1, res)
		ls.publish(out, len(ls.solver.SessionJobs()))
		return out
	})
	resp.write(w, reqID)
}

// validateDelta checks the whole mutation batch against the current job
// set: removals must name live jobs, adds must be valid and not collide
// (with surviving jobs or each other), and the result must respect the
// per-session job bound. Nothing is applied here.
func (s *Server) validateDelta(ls *liveSession, req *api.SessionDeltaRequest) error {
	cur := ls.solver.SessionJobs()
	have := make(map[int]bool, len(cur))
	for _, j := range cur {
		have[j.ID] = true
	}
	for _, id := range req.RemoveIDs {
		if !have[id] {
			return fmt.Errorf("remove_ids: no job %d in session: %w", id, mpss.ErrInvalidInstance)
		}
		have[id] = false
	}
	for _, j := range req.AddJobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if have[j.ID] {
			return fmt.Errorf("add_jobs: duplicate job id %d: %w", j.ID, mpss.ErrInvalidInstance)
		}
		have[j.ID] = true
	}
	if n := len(cur) - len(req.RemoveIDs) + len(req.AddJobs); n > s.cfg.SessionMaxJobs {
		return fmt.Errorf("delta would grow the session to %d jobs (bound %d): %w",
			n, s.cfg.SessionMaxJobs, mpss.ErrInvalidInstance)
	}
	return nil
}

// handleSessionGet returns the latest published resolve. With
// ?wait_seq=N it long-polls: the reply is deferred until a resolve
// newer than N exists, the timeout passes (the current state is
// returned, same seq), or the client goes away.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	reqID := RequestIDFromContext(r.Context())
	s.rec.Add("server.requests", 1)

	ls, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		errorResponse(http.StatusNotFound, "unknown_session", "no such session").write(w, reqID)
		return
	}
	ls.touch()
	waitSeq := int64(-1)
	if v := r.URL.Query().Get("wait_seq"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			errorResponse(http.StatusBadRequest, "bad_query", "wait_seq must be an integer").write(w, reqID)
			return
		}
		waitSeq = n
	}
	timeout := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			timeout = s.sessionTimeout(n)
		}
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ls.mu.Lock()
		closed, seq, last, notify := ls.closed, ls.seq, ls.last, ls.notify
		ls.mu.Unlock()
		switch {
		case closed:
			errorResponse(http.StatusNotFound, "unknown_session", "session closed").write(w, reqID)
			return
		case seq > waitSeq:
			last.write(w, reqID)
			return
		}
		select {
		case <-notify:
		case <-deadline.C:
			// Long-poll timeout: answer with the unchanged current state so
			// the client can immediately re-poll with the same wait_seq.
			waitSeq = -1
		case <-r.Context().Done():
			s.rec.Add("server.canceled", 1)
			errorResponse(api.StatusClientClosedRequest, "canceled", r.Context().Err().Error()).write(w, reqID)
			return
		}
	}
}

// handleSessionDelete tears a session down: later calls under its ID
// answer 404 and its long-pollers wake with 404.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	reqID := RequestIDFromContext(r.Context())
	s.rec.Add("server.requests", 1)

	ls := s.sessions.remove(r.PathValue("id"))
	if ls == nil {
		errorResponse(http.StatusNotFound, "unknown_session", "no such session").write(w, reqID)
		return
	}
	s.closeSession(ls, false)
	response{code: http.StatusNoContent}.write(w, reqID)
}
