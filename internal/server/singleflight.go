package server

import "sync"

// flightCall is one in-flight solve shared by every concurrently-arrived
// request with the same requestKey. done is closed once resp is set; a
// zero resp (code 0) signals the leader aborted without producing an
// answer, and followers must solve on their own.
type flightCall struct {
	done chan struct{}
	resp response
}

// flightGroup coalesces duplicate concurrent solves: the first request
// for a key becomes the leader and actually runs it; later arrivals for
// the same key (a cache stampede — the result is not cached *yet*) wait
// on the leader's call instead of queuing their own solve. Entries live
// only while the leader runs; completed results are the cache's job.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// join returns the call for key, creating it if absent. The creator is
// the leader (second return true) and must eventually call finish.
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c, false
	}
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	return c, true
}

// finish publishes the leader's response to the call's followers and
// retires the key so the next miss starts a fresh flight.
func (g *flightGroup) finish(key string, c *flightCall, resp response) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.resp = resp
	close(c.done)
}
