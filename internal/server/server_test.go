package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mpss/api"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mpss"
)

// testInstance is the canonical two-job instance of the package docs.
func testInstance() ([]mpss.Job, int) {
	return []mpss.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 8},
		{ID: 2, Release: 1, Deadline: 5, Work: 2},
	}, 2
}

// bigInstance returns a generated workload large enough that its solve
// takes many rounds (cancellation and concurrency tests want real work).
func bigInstance(t *testing.T, n int) *mpss.Instance {
	t.Helper()
	in, err := mpss.GenerateWorkload("uniform", mpss.WorkloadSpec{N: n, M: 4, Seed: 7})
	if err != nil {
		t.Fatalf("generate workload: %v", err)
	}
	return in
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// post sends a JSON body and returns status + raw response body.
func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out
}

func TestEndpointsMatchLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	jobs, m := testInstance()
	in, err := mpss.NewInstance(m, jobs)
	if err != nil {
		t.Fatal(err)
	}
	alpha := mpss.MustAlpha(3)
	req := api.SolveRequest{M: m, Jobs: jobs}

	t.Run("optimal", func(t *testing.T) {
		code, body := post(t, ts.URL+"/v1/solve/optimal", req)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var got api.OptimalResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		want, err := mpss.OptimalSchedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if got.Energy != want.Schedule.Energy(alpha) {
			t.Errorf("energy %v, library %v", got.Energy, want.Schedule.Energy(alpha))
		}
		if len(got.Phases) != len(want.Phases) {
			t.Errorf("phases %d, library %d", len(got.Phases), len(want.Phases))
		}
		if len(got.Schedule.Segments) != len(want.Schedule.Segments) {
			t.Errorf("segments %d, library %d", len(got.Schedule.Segments), len(want.Schedule.Segments))
		}
		if err := mpss.Verify(got.Schedule, in); err != nil {
			t.Errorf("returned schedule infeasible: %v", err)
		}
	})

	t.Run("exact", func(t *testing.T) {
		exactReq := req
		exactReq.Exact = true
		code, body := post(t, ts.URL+"/v1/solve/optimal", exactReq)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var got api.OptimalResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		want, err := mpss.OptimalScheduleExact(in)
		if err != nil {
			t.Fatal(err)
		}
		if got.Energy != want.Schedule.Energy(alpha) {
			t.Errorf("energy %v, library %v", got.Energy, want.Schedule.Energy(alpha))
		}
	})

	t.Run("oa", func(t *testing.T) {
		code, body := post(t, ts.URL+"/v1/solve/oa", req)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var got api.OnlineResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		want, err := mpss.OA(in)
		if err != nil {
			t.Fatal(err)
		}
		if got.Energy != want.Schedule.Energy(alpha) {
			t.Errorf("energy %v, library %v", got.Energy, want.Schedule.Energy(alpha))
		}
		if got.Replans != want.Replans {
			t.Errorf("replans %d, library %d", got.Replans, want.Replans)
		}
		if got.Bound != mpss.OABound(3) {
			t.Errorf("bound %v, want %v", got.Bound, mpss.OABound(3))
		}
	})

	t.Run("avr", func(t *testing.T) {
		code, body := post(t, ts.URL+"/v1/solve/avr", req)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var got api.OnlineResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		want, err := mpss.AVR(in)
		if err != nil {
			t.Fatal(err)
		}
		if got.Energy != want.Schedule.Energy(alpha) {
			t.Errorf("energy %v, library %v", got.Energy, want.Schedule.Energy(alpha))
		}
	})

	t.Run("feasible", func(t *testing.T) {
		for cap, want := range map[float64]bool{100: true, 0.1: false} {
			capReq := req
			capReq.Cap = cap
			code, body := post(t, ts.URL+"/v1/feasible", capReq)
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, body)
			}
			var got api.FeasibleResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			if got.Feasible != want {
				t.Errorf("cap %v: feasible %v, want %v", cap, got.Feasible, want)
			}
		}
	})

	t.Run("mincap", func(t *testing.T) {
		capReq := req
		capReq.Rel = 1e-6
		code, body := post(t, ts.URL+"/v1/mincap", capReq)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var got api.MinCapResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		want, err := mpss.MinFeasibleCap(in, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cap != want {
			t.Errorf("cap %v, library %v", got.Cap, want)
		}
	})

	t.Run("atcap", func(t *testing.T) {
		capReq := req
		capReq.Cap = 10
		code, body := post(t, ts.URL+"/v1/solve/atcap", capReq)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var got api.AtCapResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if err := mpss.Verify(got.Schedule, in); err != nil {
			t.Errorf("atcap schedule infeasible: %v", err)
		}
	})
}

func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	jobs, _ := testInstance()

	// Malformed JSON: 400 before admission.
	resp, err := http.Post(ts.URL+"/v1/solve/optimal", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// Invalid instance (m = 0): 400 with the typed kind.
	code, body := post(t, ts.URL+"/v1/solve/optimal", api.SolveRequest{M: 0, Jobs: jobs})
	if code != http.StatusBadRequest {
		t.Errorf("m=0: status %d, want 400 (%s)", code, body)
	}
	var e api.ErrorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Kind != "invalid_instance" {
		t.Errorf("m=0: kind %q, want invalid_instance (%s)", e.Error.Kind, body)
	}

	// Infeasible cap: 422.
	code, body = post(t, ts.URL+"/v1/solve/atcap", api.SolveRequest{M: 2, Jobs: jobs, Cap: 0.1})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("low cap: status %d, want 422 (%s)", code, body)
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Kind != "infeasible" {
		t.Errorf("low cap: kind %q, want infeasible (%s)", e.Error.Kind, body)
	}

	// GET on a solve endpoint: 405.
	resp, err = http.Get(ts.URL + "/v1/solve/optimal")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET solve: status %d, want 405", resp.StatusCode)
	}
}

func TestCacheHitDeterminism(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	jobs, m := testInstance()
	req := api.SolveRequest{M: m, Jobs: jobs}

	_, first := post(t, ts.URL+"/v1/solve/optimal", req)
	for i := 0; i < 3; i++ {
		code, body := post(t, ts.URL+"/v1/solve/optimal", req)
		if code != http.StatusOK {
			t.Fatalf("repeat %d: status %d", i, code)
		}
		if !bytes.Equal(first, body) {
			t.Fatalf("repeat %d: body diverged from first response", i)
		}
	}
	if hits := s.Recorder().Value("server.cache_hits"); hits < 3 {
		t.Errorf("server.cache_hits = %d, want >= 3", hits)
	}
	// A different instance must not hit the cache.
	other := req
	other.Jobs = append([]mpss.Job(nil), jobs...)
	other.Jobs[0].Work = 9
	_, otherBody := post(t, ts.URL+"/v1/solve/optimal", other)
	if bytes.Equal(first, otherBody) {
		t.Error("different instance returned the cached body")
	}
}

func TestQueueFullRejects503(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	testHookTaskStart = func() {
		started <- struct{}{}
		<-release
	}
	defer func() { testHookTaskStart = nil }()

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	jobs, m := testInstance()

	// First request occupies the single worker (held in the hook);
	// second fills the one queue slot; third must bounce with 503. The
	// alphas differ so the requests are distinct flights — identical
	// bodies would coalesce instead of filling the queue.
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = post(t, ts.URL+"/v1/solve/optimal", api.SolveRequest{M: m, Jobs: jobs, Alpha: float64(2 + i)})
		}(i)
	}
	<-started // worker is now held; queue slot may still be filling
	waitFor(t, func() bool { return len(s.queue) == 1 })

	code, body := post(t, ts.URL+"/v1/solve/optimal", api.SolveRequest{M: m, Jobs: jobs, Alpha: 10})
	if code != http.StatusServiceUnavailable {
		t.Errorf("overflow request: status %d, want 503 (%s)", code, body)
	}
	if got := s.Recorder().Value("server.rejected"); got < 1 {
		t.Errorf("server.rejected = %d, want >= 1", got)
	}

	close(release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("held request %d: status %d, want 200", i, c)
		}
	}
}

// waitFor polls cond for up to ~2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestCanceledRequestDoesNotPoisonWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	jobs, m := testInstance()
	big := bigInstance(t, 512)

	// A 1ms deadline on a 512-job solve cancels mid-phases.
	code, body := post(t, ts.URL+"/v1/solve/optimal",
		api.SolveRequest{M: big.M, Jobs: big.Jobs, TimeoutMS: 1})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("canceled solve: status %d, want 504 (%.200s)", code, body)
	}
	var e api.ErrorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Kind != "canceled" {
		t.Fatalf("canceled solve: kind %q, want canceled (%.200s)", e.Error.Kind, body)
	}
	// The deadline may expire mid-solve (server.canceled) or while the
	// task still queues (server.deadline_exceeded); either way it counts.
	if n := s.Recorder().Value("server.canceled") + s.Recorder().Value("server.deadline_exceeded"); n < 1 {
		t.Errorf("server.canceled + server.deadline_exceeded = %d, want >= 1", n)
	}

	// The same (single) worker session must still solve correctly.
	in, err := mpss.NewInstance(m, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mpss.OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	code, body = post(t, ts.URL+"/v1/solve/optimal", api.SolveRequest{M: m, Jobs: jobs})
	if code != http.StatusOK {
		t.Fatalf("post-cancel solve: status %d (%s)", code, body)
	}
	var got api.OptimalResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Energy != want.Schedule.Energy(mpss.MustAlpha(3)) {
		t.Errorf("post-cancel energy %v, library %v", got.Energy, want.Schedule.Energy(mpss.MustAlpha(3)))
	}
}

// TestConcurrentClients is the acceptance e2e: 8 concurrent clients
// mixing endpoints and instances under -race, every response checked
// against a direct library call, with repeats driving cache hits.
func TestConcurrentClients(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	alpha := mpss.MustAlpha(3)

	type testCase struct {
		path string
		req  api.SolveRequest
		want float64 // expected energy (solve endpoints)
	}
	var cases []testCase
	for seed := int64(1); seed <= 4; seed++ {
		in, err := mpss.GenerateWorkload("bursty", mpss.WorkloadSpec{N: 24, M: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := mpss.OptimalSchedule(in)
		if err != nil {
			t.Fatal(err)
		}
		oa, err := mpss.OA(in)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases,
			testCase{"/v1/solve/optimal", api.SolveRequest{M: in.M, Jobs: in.Jobs}, opt.Schedule.Energy(alpha)},
			testCase{"/v1/solve/oa", api.SolveRequest{M: in.M, Jobs: in.Jobs}, oa.Schedule.Energy(alpha)},
		)
	}

	const clients = 8
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*len(cases))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tc := cases[(c+r)%len(cases)]
				code, body := post(t, ts.URL+tc.path, tc.req)
				if code != http.StatusOK {
					errs <- fmt.Errorf("client %d %s: status %d (%.200s)", c, tc.path, code, body)
					continue
				}
				var got struct {
					Energy float64 `json:"energy"`
				}
				if err := json.Unmarshal(body, &got); err != nil {
					errs <- fmt.Errorf("client %d %s: %v", c, tc.path, err)
					continue
				}
				if got.Energy != tc.want {
					errs <- fmt.Errorf("client %d %s: energy %v, library %v", c, tc.path, got.Energy, tc.want)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if hits := s.Recorder().Value("server.cache_hits"); hits == 0 {
		t.Error("server.cache_hits = 0 after repeated identical requests")
	}
	if reqs := s.Recorder().Value("server.requests"); reqs != clients*rounds {
		t.Errorf("server.requests = %d, want %d", reqs, clients*rounds)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	testHookTaskStart = func() {
		started <- struct{}{}
		<-release
	}
	defer func() { testHookTaskStart = nil }()

	s := New(Config{Workers: 1, CacheEntries: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	jobs, m := testInstance()
	req := api.SolveRequest{M: m, Jobs: jobs}

	// Hold one solve in flight, then begin draining.
	inflightCode := make(chan int, 1)
	go func() {
		code, _ := post(t, ts.URL+"/v1/solve/optimal", req)
		inflightCode <- code
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Draining: readiness flips (liveness stays 200), new work is
	// rejected.
	waitFor(t, func() bool {
		resp, err := http.Get(ts.URL + "/v1/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	liveResp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	liveResp.Body.Close()
	if liveResp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: status %d, want 200 (liveness)", liveResp.StatusCode)
	}
	// A distinct request (different alpha, so it cannot coalesce onto
	// the held flight) is new work and must bounce.
	code, _ := post(t, ts.URL+"/v1/solve/optimal", api.SolveRequest{M: m, Jobs: jobs, Alpha: 5})
	if code != http.StatusServiceUnavailable {
		t.Errorf("request during drain: status %d, want 503", code)
	}

	// The in-flight solve completes, then Shutdown returns.
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned before in-flight solve finished: %v", err)
	default:
	}
	close(release)
	if code := <-inflightCode; code != http.StatusOK {
		t.Errorf("in-flight solve: status %d, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, TraceRequests: true})
	jobs, m := testInstance()
	post(t, ts.URL+"/v1/solve/optimal", api.SolveRequest{M: m, Jobs: jobs})

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.requests"] < 1 {
		t.Errorf("server.requests = %d, want >= 1", snap.Counters["server.requests"])
	}
	if snap.Counters["opt.rounds"] < 1 {
		t.Errorf("opt.rounds = %d, want >= 1 (solver counters not threaded)", snap.Counters["opt.rounds"])
	}
}

// Decomposition must be invisible in the response: a separable
// instance solved with decompose on, off and elided yields byte-equal
// bodies, and — since the knob is excluded from the cache key — the
// variants share one cache entry.
func TestSolveOptimalDecompose(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	in, err := mpss.GenerateWorkload("diurnal", mpss.WorkloadSpec{N: 128, M: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	req := api.SolveRequest{M: in.M, Jobs: in.Jobs}

	code, base := post(t, ts.URL+"/v1/solve/optimal", req)
	if code != http.StatusOK {
		t.Fatalf("baseline: status %d: %s", code, base)
	}
	for _, on := range []bool{true, false} {
		on := on
		withKnob := req
		withKnob.Decompose = &on
		code, body := post(t, ts.URL+"/v1/solve/optimal", withKnob)
		if code != http.StatusOK {
			t.Fatalf("decompose=%v: status %d: %s", on, code, body)
		}
		if !bytes.Equal(base, body) {
			t.Fatalf("decompose=%v body diverged from the baseline", on)
		}
	}
	if hits := s.Recorder().Value("server.cache_hits"); hits < 2 {
		t.Errorf("server.cache_hits = %d, want >= 2 (knob variants must share a key)", hits)
	}
}

// A server configured with Decompose on answers with the bit-identical
// schedule of one with it off; only the telemetry rounds field (flow
// rounds actually executed) reflects the strategy.
func TestServerDecomposeDefault(t *testing.T) {
	in, err := mpss.GenerateWorkload("diurnal", mpss.WorkloadSpec{N: 128, M: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	req := api.SolveRequest{M: in.M, Jobs: in.Jobs}
	_, tsOff := newTestServer(t, Config{Workers: 1})
	_, tsOn := newTestServer(t, Config{Workers: 1, Decompose: true})
	codeOff, bodyOff := post(t, tsOff.URL+"/v1/solve/optimal", req)
	codeOn, bodyOn := post(t, tsOn.URL+"/v1/solve/optimal", req)
	if codeOff != http.StatusOK || codeOn != http.StatusOK {
		t.Fatalf("status off=%d on=%d", codeOff, codeOn)
	}
	var off, on api.OptimalResponse
	if err := json.Unmarshal(bodyOff, &off); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyOn, &on); err != nil {
		t.Fatal(err)
	}
	if on.Rounds >= off.Rounds {
		t.Errorf("decomposed rounds = %d, want < monolithic %d (shorter removal ladders)", on.Rounds, off.Rounds)
	}
	off.Rounds, on.Rounds = 0, 0
	a, _ := json.Marshal(off)
	b, _ := json.Marshal(on)
	if !bytes.Equal(a, b) {
		t.Fatal("Decompose:true server result diverged from default server beyond the rounds telemetry")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var h api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body %+v, err %v", h, err)
	}
}
