package server

import (
	"net/http"
	"time"

	"mpss/api"
)

// This file is the replica-introspection surface the cluster tier
// consumes: GET /v1/status (queue/cache/load numbers as one JSON
// object) and GET /v1/cache/{hash} (result-cache peek by canonical
// request key, the cross-replica cache sharing primitive — a sibling or
// the front tier can replay this replica's cached result instead of
// re-solving after a ring change).

// readyState reports the readiness string the probe endpoints and the
// status endpoint share.
func (s *Server) readyState() string {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	switch {
	case draining:
		return "draining"
	case len(s.queue) == cap(s.queue):
		return "saturated"
	default:
		return "ready"
	}
}

// handleStatus serves the replica introspection snapshot. The queue
// depth is also published as the server.queue_depth gauge so the
// Prometheus exposition carries it too.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	queueLen := len(s.queue)
	s.rec.SetGauge("server.queue_depth", float64(queueLen))
	_, solveSeconds := s.rec.Histogram("server.request_seconds").Total()
	jsonResponse(http.StatusOK, api.ReplicaStatusResponse{
		Replica:       s.cfg.ReplicaName,
		Status:        s.readyState(),
		Workers:       s.cfg.Workers,
		QueueLen:      queueLen,
		QueueCap:      cap(s.queue),
		Sessions:      s.rec.Value("server.sessions_active"),
		CacheEntries:  s.cache.Len(),
		Requests:      s.rec.Value("server.requests"),
		CacheHits:     s.rec.Value("server.cache_hits"),
		SolveSeconds:  solveSeconds,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}).write(w, RequestIDFromContext(r.Context()))
}

// handleCachePeek answers a result-cache lookup by canonical request
// key (api.RequestKey). A hit replays the cached response verbatim —
// the cached status (200 or 422) and body — marked with the
// api.HeaderCache header so a miss's 404 can never be mistaken for a
// cached 404 (404s are not cacheable). Peeks do not touch the
// cache_hits/cache_misses counters: they are not client solves, and the
// hash-affinity accounting in the cluster tests depends on that.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	reqID := RequestIDFromContext(r.Context())
	key := r.PathValue("hash")
	resp, ok := s.cache.Get(key)
	if !ok {
		s.rec.Add("server.cache_peek_misses", 1)
		errorResponse(http.StatusNotFound, "cache_miss", "no cached result for key").write(w, reqID)
		return
	}
	s.rec.Add("server.cache_peek_hits", 1)
	w.Header().Set(api.HeaderCache, "peek")
	resp.write(w, reqID)
}
