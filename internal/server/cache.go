package server

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU of rendered responses keyed by canonical
// request hash. The solver is bit-deterministic, so replaying a cached
// body is indistinguishable from re-solving — the property the
// cache-determinism end-to-end test pins. Safe for concurrent use.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key  string
	resp response
}

// newResultCache returns a cache holding at most max entries; max <= 0
// disables caching (Get always misses, Put drops).
func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached response for key, marking it most recently
// used.
func (c *resultCache) Get(key string) (response, bool) {
	if c.max <= 0 {
		return response{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return response{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// Put stores a response, evicting the least recently used entry when
// full. Storing an existing key refreshes its value and recency.
func (c *resultCache) Put(key string, resp response) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
	for c.order.Len() > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
	}
}

// Len returns the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
