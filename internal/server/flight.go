package server

// The flight recorder keeps the last N and the N slowest request span
// trees in two bounded rings, so "what just happened" and "what was
// slow" survive long after the requests themselves — without the
// unbounded growth a full trace store would mean for a daemon serving
// millions of requests. GET /v1/debug/traces exposes both rings.

import (
	"sort"
	"sync"
	"time"

	"mpss/internal/obs"
)

// TraceEntry is one recorded request: identity, outcome, timing and the
// span tree the request produced (request → solve children, with the
// request ID as a span tag).
type TraceEntry struct {
	RequestID string           `json:"request_id"`
	Endpoint  string           `json:"endpoint"`
	Status    int              `json:"status"`
	Start     time.Time        `json:"start"`
	Seconds   float64          `json:"seconds"`
	Trace     obs.SpanSnapshot `json:"trace"`
}

// TracesResponse is the body of GET /v1/debug/traces.
type TracesResponse struct {
	Total   uint64       `json:"total"`   // requests seen since boot
	Recent  []TraceEntry `json:"recent"`  // most recent first
	Slowest []TraceEntry `json:"slowest"` // slowest first
}

// flightRecorder is safe for concurrent use. A nil *flightRecorder is
// the disabled no-op (mirroring the obs conventions).
type flightRecorder struct {
	mu     sync.Mutex
	size   int
	total  uint64
	recent []TraceEntry // ring; next is the oldest slot
	next   int
	slow   []TraceEntry // sorted by Seconds descending, ≤ size entries
}

// newFlightRecorder returns a recorder keeping the size most recent and
// size slowest requests; size <= 0 disables recording (nil).
func newFlightRecorder(size int) *flightRecorder {
	if size <= 0 {
		return nil
	}
	return &flightRecorder{size: size}
}

// startSpan opens the per-request span tree: a fresh single-request
// recorder, so flight traces are bounded per request and independent of
// the shared recorder's global span cap. Returns the nil no-op span
// when the flight recorder is disabled.
func (f *flightRecorder) startSpan(name string) *obs.Span {
	if f == nil {
		return nil
	}
	return obs.New().StartSpan(name)
}

// record stores one finished request, snapshotting its span tree.
func (f *flightRecorder) record(e TraceEntry, span *obs.Span) {
	if f == nil {
		return
	}
	if rec := span.Recorder(); rec != nil {
		if trace := rec.Snapshot().Trace; len(trace) > 0 {
			e.Trace = trace[0]
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	if len(f.recent) < f.size {
		f.recent = append(f.recent, e)
		f.next = len(f.recent) % f.size
	} else {
		f.recent[f.next] = e
		f.next = (f.next + 1) % f.size
	}
	// Insert into the slowest ring if it qualifies (sorted descending).
	if len(f.slow) < f.size || e.Seconds > f.slow[len(f.slow)-1].Seconds {
		i := sort.Search(len(f.slow), func(i int) bool { return f.slow[i].Seconds < e.Seconds })
		f.slow = append(f.slow, TraceEntry{})
		copy(f.slow[i+1:], f.slow[i:])
		f.slow[i] = e
		if len(f.slow) > f.size {
			f.slow = f.slow[:f.size]
		}
	}
}

// snapshot returns the current rings: recent (most recent first) and
// slowest (slowest first).
func (f *flightRecorder) snapshot() TracesResponse {
	if f == nil {
		return TracesResponse{Recent: []TraceEntry{}, Slowest: []TraceEntry{}}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	recent := make([]TraceEntry, 0, len(f.recent))
	for i := 0; i < len(f.recent); i++ {
		// Walk backwards from the newest slot.
		idx := (f.next - 1 - i + 2*len(f.recent)) % len(f.recent)
		recent = append(recent, f.recent[idx])
	}
	return TracesResponse{
		Total:   f.total,
		Recent:  recent,
		Slowest: append([]TraceEntry(nil), f.slow...),
	}
}
