package server

import (
	"fmt"
	"mpss/api"

	"mpss"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(3)
	put := func(k string, code int) { c.Put(k, response{code: code, body: []byte(k)}) }
	put("a", 200)
	put("b", 200)
	put("c", 200)

	// Touch "a" so "b" is the least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	put("d", 200)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want LRU evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted; want retained", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len %d, want 3", c.Len())
	}
}

func TestCacheRefreshSameKey(t *testing.T) {
	c := newResultCache(2)
	c.Put("k", response{code: 200, body: []byte("v1")})
	c.Put("k", response{code: 200, body: []byte("v2")})
	if c.Len() != 1 {
		t.Fatalf("len %d after double put, want 1", c.Len())
	}
	got, ok := c.Get("k")
	if !ok || string(got.body) != "v2" {
		t.Errorf("got %q, want v2", got.body)
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, n := range []int{0, -1} {
		c := newResultCache(n)
		c.Put("k", response{code: 200})
		if _, ok := c.Get("k"); ok {
			t.Errorf("newResultCache(%d) stored an entry; want disabled", n)
		}
	}
}

func TestRequestKeyDistinguishesRequests(t *testing.T) {
	base := api.SolveRequest{M: 2, Jobs: testJobs(), Alpha: 3}
	keys := map[string]string{}
	add := func(label, key string) {
		if prev, dup := keys[key]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		keys[key] = label
	}
	add("base", api.RequestKey("optimal", &base))

	kind := api.RequestKey("oa", &base)
	add("kind", kind)

	exact := base
	exact.Exact = true
	add("exact", api.RequestKey("optimal", &exact))

	capped := base
	capped.Cap = 1.5
	add("cap", api.RequestKey("optimal", &capped))

	work := base
	work.Jobs = append([]mpss.Job(nil), base.Jobs...)
	work.Jobs[0].Work = 9
	add("work", api.RequestKey("optimal", &work))

	order := base
	order.Jobs = []mpss.Job{base.Jobs[1], base.Jobs[0]}
	add("order", api.RequestKey("optimal", &order))

	// Same content must produce the same key.
	same := api.SolveRequest{M: 2, Jobs: testJobs(), Alpha: 3}
	if api.RequestKey("optimal", &base) != api.RequestKey("optimal", &same) {
		t.Error("identical requests hashed differently")
	}
	// timeout_ms is a transport knob, not part of the instance.
	timed := base
	timed.TimeoutMS = 50
	if api.RequestKey("optimal", &base) != api.RequestKey("optimal", &timed) {
		t.Error("timeout_ms changed the cache key; want ignored")
	}
}

func testJobs() []mpss.Job {
	return []mpss.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 8},
		{ID: 2, Release: 1, Deadline: 5, Work: 2},
	}
}

func BenchmarkRequestKey(b *testing.B) {
	jobs := make([]mpss.Job, 64)
	for i := range jobs {
		jobs[i] = mpss.Job{ID: i + 1, Release: float64(i), Deadline: float64(i + 4), Work: 2}
	}
	req := api.SolveRequest{M: 4, Jobs: jobs, Alpha: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if api.RequestKey("optimal", &req) == "" {
			b.Fatal(fmt.Errorf("empty key"))
		}
	}
}
