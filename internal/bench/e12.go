package bench

import (
	"fmt"
	"math"

	"mpss/internal/bkp"
	"mpss/internal/online"
	"mpss/internal/power"
	"mpss/internal/workload"
	"mpss/internal/yds"
)

// E12Row compares the three classic single-processor online algorithms on
// one (workload, alpha) cell: mean measured ratio against YDS for each,
// with the proven bounds. The paper's conclusion raises extending BKP to
// multiple processors as an open problem; this experiment reproduces the
// single-processor landscape that motivates it.
type E12Row struct {
	Workload string
	Alpha    float64
	Seeds    int
	OA       float64 // mean ratio of Optimal Available
	AVR      float64 // mean ratio of Average Rate
	BKP      float64 // mean ratio of Bansal-Kimbrel-Pruhs
	OABound  float64
	AVRBound float64
	BKPBound float64
}

// E12 measures the single-processor online algorithms against YDS.
func E12(cfg Config) ([]E12Row, error) {
	cfg = cfg.normalize()
	var rows []E12Row
	for _, gname := range []string{"uniform", "bursty"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			return nil, err
		}
		for _, alpha := range []float64{1.5, 2, 3} {
			p := power.MustAlpha(alpha)
			row := E12Row{
				Workload: gname, Alpha: alpha, Seeds: cfg.Seeds,
				OABound: p.OABound(), AVRBound: p.AVRBound(), BKPBound: bkp.Bound(alpha),
			}
			for seed := 0; seed < cfg.Seeds; seed++ {
				in, err := gen.Make(workload.Spec{N: cfg.N, M: 1, Seed: int64(seed)})
				if err != nil {
					return nil, err
				}
				optE, err := yds.Energy(in.Jobs, p)
				if err != nil {
					return nil, err
				}
				oa, err := online.OA(in)
				if err != nil {
					return nil, fmt.Errorf("E12 OA %s seed=%d: %w", gname, seed, err)
				}
				avr, err := online.AVR(in)
				if err != nil {
					return nil, fmt.Errorf("E12 AVR %s seed=%d: %w", gname, seed, err)
				}
				bk, err := bkp.Schedule(in.Jobs, bkp.Options{SlicesPerInterval: 24})
				if err != nil {
					return nil, fmt.Errorf("E12 BKP %s seed=%d: %w", gname, seed, err)
				}
				row.OA += oa.Schedule.Energy(p) / optE
				row.AVR += avr.Schedule.Energy(p) / optE
				row.BKP += bk.Energy(p) / optE
			}
			s := float64(cfg.Seeds)
			row.OA /= s
			row.AVR /= s
			row.BKP /= s
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderE12 prints the E12 table.
func RenderE12(rows []E12Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, f3(r.Alpha), d(r.Seeds),
			f4(r.OA), f4(r.AVR), f4(r.BKP),
			f3(r.OABound), f3(r.AVRBound), f3(r.BKPBound),
		})
	}
	return "E12 — single-processor online landscape: mean ratio vs YDS (m=1)\n" +
		table([]string{"workload", "alpha", "seeds", "oa", "avr", "bkp", "oa-bound", "avr-bound", "bkp-bound"}, out)
}

// E12Check verifies every mean ratio sits in [1, bound].
func E12Check(rows []E12Row) error {
	for _, r := range rows {
		checks := []struct {
			name         string
			ratio, bound float64
		}{
			{"OA", r.OA, r.OABound},
			{"AVR", r.AVR, r.AVRBound},
			{"BKP", r.BKP, r.BKPBound},
		}
		for _, c := range checks {
			if math.IsNaN(c.ratio) || c.ratio < 1-1e-6 {
				return fmt.Errorf("E12 %s alpha=%v: %s ratio %v below 1", r.Workload, r.Alpha, c.name, c.ratio)
			}
			if c.ratio > c.bound+1e-6 {
				return fmt.Errorf("E12 %s alpha=%v: %s ratio %v above bound %v", r.Workload, r.Alpha, c.name, c.ratio, c.bound)
			}
		}
	}
	return nil
}
