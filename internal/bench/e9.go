package bench

import (
	"fmt"
	"math"

	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
	"mpss/internal/yds"
)

// E9Row compares the multi-processor algorithm at m = 1 against the
// classic YDS optimum across instance sizes.
type E9Row struct {
	N         int
	Seeds     int
	MaxDiff   float64 // max relative energy difference; must be ~0
	OptRounds int     // average flow rounds used by the m=1 run
}

// E9 confirms that the m-processor algorithm degenerates to YDS on a
// single processor.
func E9(cfg Config, sizes []int) ([]E9Row, error) {
	cfg = cfg.normalize()
	if len(sizes) == 0 {
		sizes = []int{4, 8, 16, 32}
	}
	p := power.MustAlpha(2.5)
	var rows []E9Row
	for _, n := range sizes {
		row := E9Row{N: n, Seeds: cfg.Seeds}
		rounds := 0
		for seed := 0; seed < cfg.Seeds; seed++ {
			in, err := workload.Uniform(workload.Spec{N: n, M: 1, Seed: int64(seed)})
			if err != nil {
				return nil, err
			}
			multi, err := opt.Schedule(in, cfg.solveOpts()...)
			if err != nil {
				return nil, fmt.Errorf("E9 n=%d seed=%d: %w", n, seed, err)
			}
			rounds += multi.Stats.Rounds
			single, err := yds.Energy(in.Jobs, p)
			if err != nil {
				return nil, err
			}
			diff := math.Abs(multi.Schedule.Energy(p)-single) / (1 + single)
			if diff > row.MaxDiff {
				row.MaxDiff = diff
			}
		}
		row.OptRounds = rounds / cfg.Seeds
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderE9 prints the E9 table.
func RenderE9(rows []E9Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{d(r.N), d(r.Seeds), f6(r.MaxDiff), d(r.OptRounds)})
	}
	return "E9 — degeneration: |opt(m=1) - YDS| / YDS (must be ~0)\n" +
		table([]string{"n", "seeds", "max-rel-diff", "avg-flow-rounds"}, out)
}

// E9Check enforces agreement.
func E9Check(rows []E9Row) error {
	for _, r := range rows {
		if r.MaxDiff > 1e-6 {
			return fmt.Errorf("E9 n=%d: opt(m=1) deviates from YDS by %v", r.N, r.MaxDiff)
		}
	}
	return nil
}
