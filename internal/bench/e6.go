package bench

import (
	"fmt"
	"math"

	"mpss/internal/online"
	"mpss/internal/workload"
)

// E6Row summarizes the OA(m) monotonicity audit (Lemmas 7, 8, 10) on one
// workload family.
type E6Row struct {
	Workload         string
	Seeds            int
	Replans          int     // total replanning events audited
	JobSpeedDrops    int     // Lemma 7 violations observed
	MinSpeedDrops    int     // Lemma 8 violations observed
	MaxSpeedIncrease float64 // largest observed per-job speed jump
}

// E6 replays OA(m) arrival traces and audits that job speeds and the
// minimum processor speed never decrease when a new job arrives.
func E6(cfg Config) ([]E6Row, error) {
	cfg = cfg.normalize()
	var rows []E6Row
	for _, gname := range []string{"uniform", "bursty", "longshort"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			return nil, err
		}
		row := E6Row{Workload: gname, Seeds: cfg.Seeds}
		for seed := 0; seed < cfg.Seeds; seed++ {
			in, err := gen.Make(workload.Spec{N: cfg.N, M: 3, Seed: int64(seed)})
			if err != nil {
				return nil, err
			}
			res, err := online.OA(in)
			if err != nil {
				return nil, fmt.Errorf("E6 %s seed=%d: %w", gname, seed, err)
			}
			row.Replans += res.Replans
			for i := 1; i < len(res.Events); i++ {
				prev, cur := res.Events[i-1], res.Events[i]
				for id, sPrev := range prev.JobSpeeds {
					sCur, live := cur.JobSpeeds[id]
					if !live {
						continue
					}
					if sCur < sPrev-1e-6*(1+sPrev) {
						row.JobSpeedDrops++
					}
					if jump := sCur - sPrev; jump > row.MaxSpeedIncrease {
						row.MaxSpeedIncrease = jump
					}
				}
				_, hPrev := prev.Plan.Span()
				_, hCur := cur.Plan.Span()
				end := math.Min(hPrev, hCur)
				for f := 0.1; f < 1; f += 0.2 {
					tt := cur.Time + (end-cur.Time)*f
					if tt <= cur.Time {
						continue
					}
					if cur.Plan.MinSpeedAt(tt) < prev.Plan.MinSpeedAt(tt)-1e-6 {
						row.MinSpeedDrops++
					}
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderE6 prints the E6 table.
func RenderE6(rows []E6Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, d(r.Seeds), d(r.Replans),
			d(r.JobSpeedDrops), d(r.MinSpeedDrops), f3(r.MaxSpeedIncrease),
		})
	}
	return "E6 — Lemmas 7/8: OA(m) speed monotonicity under arrivals (m=3)\n" +
		table([]string{"workload", "seeds", "replans", "job-speed-drops", "min-speed-drops", "max-jump"}, out)
}

// E6Check requires zero observed violations.
func E6Check(rows []E6Row) error {
	for _, r := range rows {
		if r.JobSpeedDrops > 0 {
			return fmt.Errorf("E6 %s: %d Lemma-7 violations", r.Workload, r.JobSpeedDrops)
		}
		if r.MinSpeedDrops > 0 {
			return fmt.Errorf("E6 %s: %d Lemma-8 violations", r.Workload, r.MinSpeedDrops)
		}
	}
	return nil
}
