package bench

import (
	"strings"
	"testing"
)

// A small configuration keeps the full harness runnable inside the unit
// test budget; cmd/mpss-bench runs the Defaults().
func small() Config { return Config{Seeds: 2, N: 8} }

func TestE1(t *testing.T) {
	rows, err := E1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	if err := E1Check(rows); err != nil {
		t.Error(err)
	}
	out := RenderE1(rows)
	if !strings.Contains(out, "opt/fw") {
		t.Errorf("render missing header:\n%s", out)
	}
}

func TestE2(t *testing.T) {
	rows, err := E2(small(), []int{6, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OptNanos <= 0 || r.LPNanos <= 0 {
			t.Errorf("non-positive timings: %+v", r)
		}
	}
	if out := RenderE2(rows); !strings.Contains(out, "lp/opt") {
		t.Error("render missing header")
	}
}

func TestE3(t *testing.T) {
	rows, err := E3(Config{Seeds: 2, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := RatioCheck(rows); err != nil {
		t.Error(err)
	}
	if out := RenderRatios("E3", rows); !strings.Contains(out, "bound") {
		t.Error("render missing header")
	}
}

func TestE4(t *testing.T) {
	rows, err := E4(Config{Seeds: 2, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := RatioCheck(rows); err != nil {
		t.Error(err)
	}
	// The adversarial gadget rows must be present.
	found := false
	for _, r := range rows {
		if r.Workload == "avr-adversarial" {
			found = true
			if r.Max <= 1 {
				t.Errorf("adversarial gadget did not stress AVR: ratio %v", r.Max)
			}
		}
	}
	if !found {
		t.Error("no adversarial rows")
	}
}

func TestE5(t *testing.T) {
	rows, err := E5(small())
	if err != nil {
		t.Fatal(err)
	}
	if err := E5Check(rows); err != nil {
		t.Error(err)
	}
	if out := RenderE5(rows); !strings.Contains(out, "lemma3") {
		t.Error("render missing header")
	}
}

func TestE6(t *testing.T) {
	rows, err := E6(small())
	if err != nil {
		t.Fatal(err)
	}
	if err := E6Check(rows); err != nil {
		t.Error(err)
	}
	if out := RenderE6(rows); !strings.Contains(out, "job-speed-drops") {
		t.Error("render missing header")
	}
}

func TestE7(t *testing.T) {
	rows, err := E7(small())
	if err != nil {
		t.Fatal(err)
	}
	if err := E7Check(rows); err != nil {
		t.Error(err)
	}
	if out := RenderE7(rows); !strings.Contains(out, "best-of-3") {
		t.Error("render missing header")
	}
}

func TestE8(t *testing.T) {
	rows, err := E8(small())
	if err != nil {
		t.Fatal(err)
	}
	if err := E8Check(rows); err != nil {
		t.Error(err)
	}
	if out := RenderE8(rows); !strings.Contains(out, "min-ratio") {
		t.Error("render missing header")
	}
}

func TestE9(t *testing.T) {
	rows, err := E9(small(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := E9Check(rows); err != nil {
		t.Error(err)
	}
	if out := RenderE9(rows); !strings.Contains(out, "max-rel-diff") {
		t.Error("render missing header")
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.Seeds <= 0 || c.N <= 0 {
		t.Errorf("normalize left zeros: %+v", c)
	}
	d := Defaults()
	if d.Seeds <= 0 || d.N <= 0 {
		t.Errorf("bad defaults: %+v", d)
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"3", "4"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Errorf("table output:\n%s", out)
	}
}

func TestE10(t *testing.T) {
	rows, err := E10(small())
	if err != nil {
		t.Fatal(err)
	}
	if err := E10Check(rows); err != nil {
		t.Error(err)
	}
	if out := RenderE10(rows); !strings.Contains(out, "decomp") {
		t.Error("render missing header")
	}
}

func TestE11(t *testing.T) {
	rows, err := E11(small(), []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := E11Check(rows); err != nil {
		t.Error(err)
	}
	for _, r := range rows {
		if r.DinicNanos <= 0 || r.PRNanos <= 0 {
			t.Errorf("non-positive timings: %+v", r)
		}
	}
	if out := RenderE11(rows); !strings.Contains(out, "push-relabel") {
		t.Error("render missing header")
	}
}

func TestE12(t *testing.T) {
	rows, err := E12(small())
	if err != nil {
		t.Fatal(err)
	}
	if err := E12Check(rows); err != nil {
		t.Error(err)
	}
	if out := RenderE12(rows); !strings.Contains(out, "bkp") {
		t.Error("render missing header")
	}
}

func TestE13(t *testing.T) {
	rows, err := E13(small())
	if err != nil {
		t.Fatal(err)
	}
	if err := E13Check(rows); err != nil {
		t.Error(err)
	}
	if out := RenderE13(rows); !strings.Contains(out, "race-wins") {
		t.Error("render missing header")
	}
}

func TestE14(t *testing.T) {
	rows, err := E14(small())
	if err != nil {
		t.Fatal(err)
	}
	if err := E14Check(rows); err != nil {
		t.Error(err)
	}
	if out := RenderE14(rows); !strings.Contains(out, "oa-max") {
		t.Error("render missing header")
	}
}
