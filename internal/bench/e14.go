package bench

import (
	"fmt"
	"math"

	"mpss/internal/online"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
)

// E14Row probes the paper's second open problem: "devise and analyze
// online algorithms for general convex power functions. Even for a
// single processor, no competitive strategy is known."
//
// OA(m) is a natural candidate: its schedule never consults the power
// function (it replans with the offline optimum, which is
// simultaneously optimal for every convex non-decreasing P), so it IS a
// well-defined online algorithm for general convex P — only its
// competitive ratio is unknown. Because our offline optimum is also
// P-oblivious, the true optimum under any convex P is computable, and
// the ratio can be measured. No violation check applies (there is no
// proven bound); the experiment reports the observed range.
type E14Row struct {
	Workload string
	PowerFn  string
	M        int
	Seeds    int
	MeanOA   float64
	MaxOA    float64
	MeanAVR  float64
	MaxAVR   float64
}

// E14 measures OA(m) and AVR(m) under non-polynomial convex power
// functions.
func E14(cfg Config) ([]E14Row, error) {
	cfg = cfg.normalize()
	poly, err := power.NewPolynomial(power.Term{C: 1, E: 2}, power.Term{C: 0.5, E: 1})
	if err != nil {
		return nil, err
	}
	// Sample the PL fit over the speed range these workloads actually
	// use; below the first breakpoint a chord through the origin is
	// linear, and under linear power all feasible schedules cost the
	// same, which would blunt the probe.
	pl, err := power.SampleAlpha(2.5, 4, 32)
	if err != nil {
		return nil, err
	}
	powers := []struct {
		name string
		p    power.Function
	}{
		{"s^2+0.5s", poly},
		{"PL(s^2.5)", pl},
	}

	var rows []E14Row
	for _, gname := range []string{"uniform", "bursty"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			return nil, err
		}
		for _, pf := range powers {
			for _, m := range []int{1, 2, 4} {
				row := E14Row{Workload: gname, PowerFn: pf.name, M: m, Seeds: cfg.Seeds}
				for seed := 0; seed < cfg.Seeds; seed++ {
					in, err := gen.Make(workload.Spec{N: cfg.N, M: m, Seed: int64(seed)})
					if err != nil {
						return nil, err
					}
					optRes, err := opt.Schedule(in, cfg.solveOpts()...)
					if err != nil {
						return nil, fmt.Errorf("E14 %s m=%d seed=%d: %w", gname, m, seed, err)
					}
					optE := optRes.Schedule.Energy(pf.p)
					oa, err := online.OA(in)
					if err != nil {
						return nil, err
					}
					avr, err := online.AVR(in)
					if err != nil {
						return nil, err
					}
					rOA := oa.Schedule.Energy(pf.p) / optE
					rAVR := avr.Schedule.Energy(pf.p) / optE
					row.MeanOA += rOA
					row.MeanAVR += rAVR
					row.MaxOA = math.Max(row.MaxOA, rOA)
					row.MaxAVR = math.Max(row.MaxAVR, rAVR)
				}
				row.MeanOA /= float64(cfg.Seeds)
				row.MeanAVR /= float64(cfg.Seeds)
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// RenderE14 prints the E14 table.
func RenderE14(rows []E14Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, r.PowerFn, d(r.M), d(r.Seeds),
			f4(r.MeanOA), f4(r.MaxOA), f4(r.MeanAVR), f4(r.MaxAVR),
		})
	}
	return "E14 — open problem probe: OA(m)/AVR(m) under general convex power functions (no proven bound exists)\n" +
		table([]string{"workload", "power", "m", "seeds", "oa-mean", "oa-max", "avr-mean", "avr-max"}, out)
}

// E14Check only sanity-checks that no online algorithm beat the optimum.
func E14Check(rows []E14Row) error {
	for _, r := range rows {
		if r.MeanOA < 1-1e-6 || r.MeanAVR < 1-1e-6 {
			return fmt.Errorf("E14 %s %s m=%d: ratio below 1 (optimum not optimal?)", r.Workload, r.PowerFn, r.M)
		}
	}
	return nil
}
