package bench

import (
	"fmt"

	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/sleep"
	"mpss/internal/workload"
)

// E13Row sweeps static (leakage) power and compares two operating modes
// under the combined speed-scaling + sleep model of [9] that the paper's
// conclusion highlights as future work:
//
//   - "stretch": the paper's energy-optimal multi-speed schedule, which
//     spreads work across the horizon, and
//   - "race": fixed-frequency execution at twice the minimum feasible cap
//     followed by sleeping.
//
// Without leakage stretching is provably optimal; as leakage grows the
// race-to-sleep mode overtakes it. The row records the total energy of
// both modes at one leakage level (expressed as a fraction of the
// dynamic power at the minimum cap).
type E13Row struct {
	Workload string
	IdleFrac float64 // IdlePower / P(minCap)
	Stretch  float64 // mean total energy of the optimal schedule
	Race     float64 // mean total energy of the 2x-cap race schedule
	RaceWins int     // seeds where racing beat stretching
	Seeds    int
}

// E13 runs the leakage sweep.
func E13(cfg Config) ([]E13Row, error) {
	cfg = cfg.normalize()
	p := power.MustAlpha(3)
	var rows []E13Row
	for _, gname := range []string{"uniform", "bursty"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			return nil, err
		}
		for _, frac := range []float64{0, 0.1, 0.5, 2, 8} {
			row := E13Row{Workload: gname, IdleFrac: frac, Seeds: cfg.Seeds}
			for seed := 0; seed < cfg.Seeds; seed++ {
				in, err := gen.Make(workload.Spec{N: cfg.N, M: 2, Seed: int64(seed)})
				if err != nil {
					return nil, err
				}
				optRes, err := opt.Schedule(in, append(cfg.solveOpts(),
					opt.WithParallelism(cfg.Parallelism), opt.WithRecorder(cfg.Recorder))...)
				if err != nil {
					return nil, fmt.Errorf("E13 %s seed=%d: %w", gname, seed, err)
				}
				capOpts := []opt.CapOption{
					opt.WithCapContraction(!cfg.NoContraction),
					opt.WithApproxFirst(!cfg.NoApprox),
				}
				if cfg.Parallelism > 1 {
					capOpts = append(capOpts, opt.WithProbeParallelism(cfg.Parallelism))
				}
				minCap, err := opt.MinFeasibleCapObserved(in, 1e-6, cfg.Recorder, capOpts...)
				if err != nil {
					return nil, err
				}
				race, err := opt.ScheduleAtCap(in, minCap*2)
				if err != nil {
					return nil, err
				}
				model := sleep.Model{
					IdlePower: frac * p.Power(minCap),
					WakeCost:  0.05 * p.Power(minCap), // cheap transitions
				}
				start, end := in.Horizon()
				bS, err := sleep.Evaluate(optRes.Schedule, p, model, start, end)
				if err != nil {
					return nil, err
				}
				bR, err := sleep.Evaluate(race, p, model, start, end)
				if err != nil {
					return nil, err
				}
				row.Stretch += bS.Total
				row.Race += bR.Total
				if bR.Total < bS.Total {
					row.RaceWins++
				}
			}
			row.Stretch /= float64(cfg.Seeds)
			row.Race /= float64(cfg.Seeds)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderE13 prints the E13 table.
func RenderE13(rows []E13Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, f3(r.IdleFrac), f3(r.Stretch), f3(r.Race),
			fmt.Sprintf("%d/%d", r.RaceWins, r.Seeds),
		})
	}
	return "E13 — speed scaling vs race-to-sleep under leakage (alpha=3, m=2; idle power as fraction of P(min cap))\n" +
		table([]string{"workload", "idle-frac", "stretch-energy", "race-energy", "race-wins"}, out)
}

// E13Check validates the expected crossover shape: without leakage
// stretching must win everywhere; at the heaviest leakage racing must win
// at least somewhere.
func E13Check(rows []E13Row) error {
	sawHeavyRaceWin := false
	for _, r := range rows {
		if r.IdleFrac == 0 && r.RaceWins > 0 {
			return fmt.Errorf("E13 %s: race won without leakage", r.Workload)
		}
		if r.IdleFrac >= 8 && r.RaceWins > 0 {
			sawHeavyRaceWin = true
		}
	}
	if !sawHeavyRaceWin {
		return fmt.Errorf("E13: race-to-sleep never won under heavy leakage (crossover missing)")
	}
	return nil
}
