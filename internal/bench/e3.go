package bench

import (
	"fmt"
	"math"

	"mpss/internal/job"
	"mpss/internal/online"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
)

// RatioRow is one cell of a competitive-ratio sweep (used by E3 and E4).
type RatioRow struct {
	Algorithm string
	Workload  string
	Alpha     float64
	M         int
	Mean      float64 // mean measured ratio over seeds
	Max       float64 // worst measured ratio
	Bound     float64 // proven competitive ratio
	Seeds     int
}

// E3 measures the competitive ratio of OA(m) across alphas, machine
// counts and workloads against the alpha^alpha bound of Theorem 2,
// including the common-deadline gadget that stresses the replanning.
func E3(cfg Config) ([]RatioRow, error) {
	runOA := func(in ratioInstance) (float64, error) {
		r, err := online.OA(in.in, online.WithRecorder(cfg.Recorder))
		if err != nil {
			return 0, err
		}
		if err := r.Schedule.Verify(in.in); err != nil {
			return 0, fmt.Errorf("OA schedule infeasible: %w", err)
		}
		return r.Schedule.Energy(in.p), nil
	}
	rows, err := ratioSweep(cfg, "OA", runOA, func(p power.Alpha) float64 { return p.OABound() })
	if err != nil {
		return nil, err
	}
	for _, alpha := range []float64{1.5, 2, 3} {
		p := power.MustAlpha(alpha)
		for _, m := range []int{1, 2} {
			in, err := workload.OAAdversarial(workload.Spec{N: 10, M: m, Seed: 1})
			if err != nil {
				return nil, err
			}
			optRes, err := opt.Schedule(in, cfg.solveOpts()...)
			if err != nil {
				return nil, err
			}
			algE, err := runOA(ratioInstance{in: in, p: p})
			if err != nil {
				return nil, err
			}
			ratio := algE / optRes.Schedule.Energy(p)
			rows = append(rows, RatioRow{
				Algorithm: "OA", Workload: "oa-adversarial", Alpha: alpha, M: m,
				Mean: ratio, Max: ratio, Bound: p.OABound(), Seeds: 1,
			})
		}
	}
	return rows, nil
}

// E4 measures the competitive ratio of AVR(m) against the
// (2 alpha)^alpha / 2 + 1 bound of Theorem 3, including the adversarial
// nested-deadline gadget.
func E4(cfg Config) ([]RatioRow, error) {
	rows, err := ratioSweep(cfg, "AVR", func(in ratioInstance) (float64, error) {
		r, err := online.AVR(in.in, online.WithRecorder(cfg.Recorder))
		if err != nil {
			return 0, err
		}
		if err := r.Schedule.Verify(in.in); err != nil {
			return 0, fmt.Errorf("AVR schedule infeasible: %w", err)
		}
		return r.Schedule.Energy(in.p), nil
	}, func(p power.Alpha) float64 { return p.AVRBound() })
	if err != nil {
		return nil, err
	}
	// Adversarial gadget rows: nested deadlines blow up the accumulated
	// density, pushing AVR toward its bound.
	cfgN := cfg.normalize()
	for _, alpha := range []float64{1.5, 2, 3} {
		p := power.MustAlpha(alpha)
		for _, m := range []int{1, 2} {
			in, err := workload.AVRAdversarial(workload.Spec{N: 10, M: m, Seed: 1})
			if err != nil {
				return nil, err
			}
			optRes, err := opt.Schedule(in, cfg.solveOpts()...)
			if err != nil {
				return nil, err
			}
			optE := optRes.Schedule.Energy(p)
			r, err := online.AVR(in)
			if err != nil {
				return nil, err
			}
			ratio := r.Schedule.Energy(p) / optE
			rows = append(rows, RatioRow{
				Algorithm: "AVR", Workload: "avr-adversarial", Alpha: alpha, M: m,
				Mean: ratio, Max: ratio, Bound: p.AVRBound(), Seeds: 1,
			})
		}
	}
	_ = cfgN
	return rows, nil
}

type ratioInstance struct {
	in *job.Instance
	p  power.Alpha
}

// ratioSweep runs an online algorithm over the (workload, alpha, m) grid
// and reports measured ratios against the proven bound.
func ratioSweep(cfg Config, name string, run func(ratioInstance) (float64, error), bound func(power.Alpha) float64) ([]RatioRow, error) {
	cfg = cfg.normalize()
	var rows []RatioRow
	for _, gname := range []string{"uniform", "bursty", "tight"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			return nil, err
		}
		for _, alpha := range []float64{1.5, 2, 2.5, 3} {
			p := power.MustAlpha(alpha)
			for _, m := range []int{1, 2, 4} {
				var sum, worst float64
				for seed := 0; seed < cfg.Seeds; seed++ {
					in, err := gen.Make(workload.Spec{N: cfg.N, M: m, Seed: int64(seed)})
					if err != nil {
						return nil, err
					}
					optRes, err := opt.Schedule(in, cfg.solveOpts()...)
					if err != nil {
						return nil, fmt.Errorf("%s %s m=%d seed=%d: %w", name, gname, m, seed, err)
					}
					optE := optRes.Schedule.Energy(p)
					algE, err := run(ratioInstance{in: in, p: p})
					if err != nil {
						return nil, fmt.Errorf("%s %s m=%d seed=%d: %w", name, gname, m, seed, err)
					}
					ratio := algE / optE
					sum += ratio
					worst = math.Max(worst, ratio)
				}
				rows = append(rows, RatioRow{
					Algorithm: name, Workload: gname, Alpha: alpha, M: m,
					Mean: sum / float64(cfg.Seeds), Max: worst,
					Bound: bound(p), Seeds: cfg.Seeds,
				})
			}
		}
	}
	return rows, nil
}

// RenderRatios prints an E3/E4 table.
func RenderRatios(title string, rows []RatioRow) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Algorithm, r.Workload, f3(r.Alpha), d(r.M),
			f4(r.Mean), f4(r.Max), f3(r.Bound), d(r.Seeds),
		})
	}
	return title + "\n" +
		table([]string{"alg", "workload", "alpha", "m", "mean-ratio", "max-ratio", "bound", "seeds"}, out)
}

// RatioCheck verifies that every measured ratio respects [1, bound].
func RatioCheck(rows []RatioRow) error {
	for _, r := range rows {
		if r.Max > r.Bound+1e-6 {
			return fmt.Errorf("%s on %s (alpha=%v m=%d): measured ratio %v exceeds proven bound %v",
				r.Algorithm, r.Workload, r.Alpha, r.M, r.Max, r.Bound)
		}
		if r.Mean < 1-1e-6 {
			return fmt.Errorf("%s on %s (alpha=%v m=%d): mean ratio %v below 1",
				r.Algorithm, r.Workload, r.Alpha, r.M, r.Mean)
		}
	}
	return nil
}
