// Package bench is the experiment harness that regenerates every
// "table and figure" of the reproduction. The paper is a theory paper —
// its evaluation is Theorems 1-3 and the structural lemmas — so each
// experiment renders one proven claim as a measurable series:
//
//	E1  Theorem 1: the combinatorial optimum matches two independent
//	    optimality baselines (Frank-Wolfe convex bound, BG-style LP).
//	E2  Theorem 1 motivation: runtime of the flow-based optimum vs the LP.
//	E3  Theorem 2: measured OA(m) competitive ratio vs the alpha^alpha bound.
//	E4  Theorem 3: measured AVR(m) ratio vs the (2 alpha)^alpha/2 + 1 bound.
//	E5  Lemmas 1-3: structural invariants of optimal schedules.
//	E6  Lemmas 7-8: OA(m) speed monotonicity under arrivals.
//	E7  Value of migration vs non-migratory baselines (reference [8]).
//	E8  Proof chain of Theorem 3: E_OPT(m) >= m^(1-alpha) E^1_OPT.
//	E9  Degeneration to one processor: opt(m=1) == YDS.
//
// Each experiment returns typed rows; Render* helpers print the tables
// reproduced in EXPERIMENTS.md; cmd/mpss-bench and bench_test.go drive it.
package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"mpss/internal/obs"
	"mpss/internal/opt"
)

// Config scales the whole suite. The zero value is replaced by Defaults.
type Config struct {
	Seeds int // random seeds per cell
	N     int // jobs per instance

	// Parallelism is the worker count handed to the solver's parallel
	// flow layer (opt.WithParallelism / speculative feasibility probes).
	// <= 1 keeps every solve sequential, the reproducible default.
	Parallelism int

	// Recorder, when non-nil, collects solver-internal metrics (flow
	// operation counts, phase structure, online-event counters) from the
	// experiments that exercise instrumented code paths. cmd/mpss-bench
	// installs a fresh recorder per experiment and renders the snapshots.
	Recorder *obs.Recorder

	// NoContraction disables interval contraction in every offline solve
	// the experiments run (the A/B lever behind mpss-bench -contract=false).
	// Results are bit-identical either way; only the runtime changes.
	NoContraction bool

	// NoApprox disables the approximate first tier of the cap searches
	// (mpss-bench -approx=false). The returned caps do not change.
	NoApprox bool

	// Decompose turns on zero-active-boundary decomposition in every
	// offline solve (mpss-bench -decompose). Results are bit-identical;
	// only runtime changes, and only on separable instances.
	Decompose bool
}

// solveOpts is the A/B toggle set every experiment passes to
// opt.Schedule, so one Config switch flips the whole suite.
func (c Config) solveOpts() []opt.Option {
	return []opt.Option{opt.WithContraction(!c.NoContraction), opt.WithDecomposition(c.Decompose)}
}

// Defaults returns the configuration used by EXPERIMENTS.md.
func Defaults() Config { return Config{Seeds: 5, N: 12} }

func (c Config) normalize() Config {
	if c.Seeds <= 0 {
		c.Seeds = 5
	}
	if c.N <= 0 {
		c.N = 12
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	return c
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(w, strings.Join(sep, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func dur(ns int64) string { return fmt.Sprintf("%.3fms", float64(ns)/1e6) }
