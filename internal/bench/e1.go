package bench

import (
	"fmt"
	"math"

	"mpss/internal/bg"
	"mpss/internal/convexopt"
	"mpss/internal/opt"
	"mpss/internal/pool"
	"mpss/internal/power"
	"mpss/internal/workload"
)

// E1Row is one cell of the Theorem-1 optimality cross-check.
type E1Row struct {
	Workload string
	N, M     int
	Alpha    float64
	Opt      float64 // combinatorial optimum energy
	FWUpper  float64 // Frank-Wolfe feasible value (upper bound on OPT)
	FWLower  float64 // Frank-Wolfe certificate
	LP       float64 // BG-style LP value (upper bound, grid-limited)
	RatioFW  float64 // Opt / FWUpper — must be ~1
	RatioLP  float64 // Opt / LP     — must be <= ~1
}

// E1 cross-checks the combinatorial optimum against the convex bound and
// the LP baseline over a (workload, m, alpha) grid. The grid cells are
// independent and run on a worker pool.
func E1(cfg Config) ([]E1Row, error) {
	cfg = cfg.normalize()
	type cell struct {
		gname string
		m     int
		alpha float64
	}
	var cells []cell
	for _, gname := range []string{"uniform", "bursty"} {
		for _, m := range []int{1, 2, 4} {
			for _, alpha := range []float64{1.5, 2, 3} {
				cells = append(cells, cell{gname: gname, m: m, alpha: alpha})
			}
		}
	}
	return pool.Map(len(cells), 0, func(ci int) (E1Row, error) {
		c := cells[ci]
		gen, err := workload.ByName(c.gname)
		if err != nil {
			return E1Row{}, err
		}
		p := power.MustAlpha(c.alpha)
		var sumOpt, sumFWU, sumFWL, sumLP float64
		for seed := 0; seed < cfg.Seeds; seed++ {
			in, err := gen.Make(workload.Spec{N: cfg.N, M: c.m, Seed: int64(seed), Horizon: 30})
			if err != nil {
				return E1Row{}, err
			}
			r, err := opt.Schedule(in, cfg.solveOpts()...)
			if err != nil {
				return E1Row{}, fmt.Errorf("E1 %s m=%d seed=%d: %w", c.gname, c.m, seed, err)
			}
			e := r.Schedule.Energy(p)
			cvx, err := convexopt.Bound(in, c.alpha, 250, 1e-5)
			if err != nil {
				return E1Row{}, err
			}
			lpRes, err := bg.Solve(in, p, bg.Options{SpeedLevels: 20})
			if err != nil {
				return E1Row{}, err
			}
			sumOpt += e
			sumFWU += cvx.Upper
			sumFWL += math.Max(0, cvx.Lower)
			sumLP += lpRes.Energy
		}
		return E1Row{
			Workload: c.gname, N: cfg.N, M: c.m, Alpha: c.alpha,
			Opt:     sumOpt / float64(cfg.Seeds),
			FWUpper: sumFWU / float64(cfg.Seeds),
			FWLower: sumFWL / float64(cfg.Seeds),
			LP:      sumLP / float64(cfg.Seeds),
			RatioFW: sumOpt / sumFWU,
			RatioLP: sumOpt / sumLP,
		}, nil
	})
}

// RenderE1 prints the E1 table.
func RenderE1(rows []E1Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, d(r.N), d(r.M), f3(r.Alpha),
			f3(r.Opt), f3(r.FWUpper), f3(r.LP), f6(r.RatioFW), f6(r.RatioLP),
		})
	}
	return "E1 — Theorem 1: optimality cross-check (ratios must be ~1, <=1)\n" +
		table([]string{"workload", "n", "m", "alpha", "opt", "fw-upper", "lp", "opt/fw", "opt/lp"}, out)
}

// E1Check verifies the E1 rows against the theorem: the combinatorial
// optimum may be neither measurably above the Frank-Wolfe upper bound nor
// above the LP value.
func E1Check(rows []E1Row) error {
	for _, r := range rows {
		if r.RatioFW > 1.02 {
			return fmt.Errorf("E1 %s m=%d alpha=%v: opt exceeds convex upper bound (ratio %v)", r.Workload, r.M, r.Alpha, r.RatioFW)
		}
		// Frank-Wolfe converges at O(1/k); with the default iteration
		// budget the upper bound can sit a few percent above the optimum
		// at high alpha, so the lower-side check is intentionally loose.
		if r.RatioFW < 0.94 {
			return fmt.Errorf("E1 %s m=%d alpha=%v: opt suspiciously below convex optimum (ratio %v)", r.Workload, r.M, r.Alpha, r.RatioFW)
		}
		if r.RatioLP > 1.0+1e-6 {
			return fmt.Errorf("E1 %s m=%d alpha=%v: opt above LP upper bound (ratio %v)", r.Workload, r.M, r.Alpha, r.RatioLP)
		}
	}
	return nil
}
