package bench

import (
	"fmt"
	"time"

	"mpss/internal/bg"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
)

// E2Row is one size point of the combinatorial-vs-LP runtime comparison.
// LPNanos is zero when the LP leg was skipped (n above lpSizeCap).
type E2Row struct {
	N         int
	OptNanos  int64 // wall time of the flow-based optimum
	LPNanos   int64 // wall time of the LP baseline (0 = skipped)
	Speedup   float64
	OptRounds int // flow computations used
	LPVars    int
	LPPivots  int
}

// lpSizeCap bounds the LP leg of E2: beyond it the dense-tableau simplex
// takes minutes to hours, which is exactly the impracticality the paper
// reports about the LP approach — observed once, not re-measured on
// every run.
const lpSizeCap = 24

// E2 measures how the combinatorial algorithm and the LP baseline scale
// with the number of jobs — the comparison that motivates the paper's
// Section 2 ("the complexity of [the LP] algorithm is too high for most
// practical applications").
func E2(cfg Config, sizes []int) ([]E2Row, error) {
	cfg = cfg.normalize()
	if len(sizes) == 0 {
		sizes = []int{8, 16, 32, 64}
	}
	p := power.MustAlpha(2)
	var rows []E2Row
	for _, n := range sizes {
		var optNs, lpNs int64
		var rounds, vars, pivots int
		for seed := 0; seed < cfg.Seeds; seed++ {
			in, err := workload.Uniform(workload.Spec{N: n, M: 4, Seed: int64(seed), Horizon: 50})
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			r, err := opt.Schedule(in, append(cfg.solveOpts(), opt.WithRecorder(cfg.Recorder))...)
			if err != nil {
				return nil, fmt.Errorf("E2 n=%d seed=%d: %w", n, seed, err)
			}
			optNs += time.Since(t0).Nanoseconds()
			rounds += r.Stats.Rounds

			if n <= lpSizeCap {
				t1 := time.Now()
				lpRes, err := bg.Solve(in, p, bg.Options{SpeedLevels: 10})
				if err != nil {
					return nil, fmt.Errorf("E2 LP n=%d seed=%d: %w", n, seed, err)
				}
				lpNs += time.Since(t1).Nanoseconds()
				vars += lpRes.Vars
				pivots += lpRes.Pivots
			}
		}
		s := cfg.Seeds
		row := E2Row{
			N:         n,
			OptNanos:  optNs / int64(s),
			OptRounds: rounds / s,
		}
		if lpNs > 0 {
			row.LPNanos = lpNs / int64(s)
			row.Speedup = float64(lpNs) / float64(optNs)
			row.LPVars = vars / s
			row.LPPivots = pivots / s
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderE2 prints the E2 table.
func RenderE2(rows []E2Row) string {
	out := [][]string{}
	for _, r := range rows {
		lpTime, speedup, lpVars, lpPivots := "-", "-", "-", "-"
		if r.LPNanos > 0 {
			lpTime, speedup = dur(r.LPNanos), f3(r.Speedup)
			lpVars, lpPivots = d(r.LPVars), d(r.LPPivots)
		}
		out = append(out, []string{
			d(r.N), dur(r.OptNanos), lpTime, speedup,
			d(r.OptRounds), lpVars, lpPivots,
		})
	}
	return "E2 — Theorem 1 motivation: flow-based optimum vs LP baseline runtime (m=4)\n" +
		table([]string{"n", "opt-time", "lp-time", "lp/opt", "flow-rounds", "lp-vars", "lp-pivots"}, out)
}
