package bench

import (
	"fmt"
	"math"
	"math/big"
	"time"

	"mpss/internal/flow"
	"mpss/internal/job"
	"mpss/internal/workload"
)

// E11Row is one size point of the flow-solver ablation: the same
// scheduler-shaped network G(all jobs, m, W/P) solved by Dinic, by
// push-relabel, and (at small sizes) by the exact rational solver.
type E11Row struct {
	N          int
	Vertices   int
	Edges      int
	DinicNanos int64
	PRNanos    int64
	ExactNanos int64 // 0 = skipped (too slow at this size)
	Agree      bool  // all computed values matched
}

// exactSizeCap bounds the rational-arithmetic leg of the ablation.
const exactSizeCap = 32

// E11 times the three max-flow implementations on the real network shape
// the scheduler builds, justifying the choice of Dinic for the fast path.
func E11(cfg Config, sizes []int) ([]E11Row, error) {
	cfg = cfg.normalize()
	if len(sizes) == 0 {
		sizes = []int{16, 32, 64, 128}
	}
	var rows []E11Row
	for _, n := range sizes {
		row := E11Row{N: n, Agree: true}
		for seed := 0; seed < cfg.Seeds; seed++ {
			in, err := workload.Uniform(workload.Spec{N: n, M: 4, Seed: int64(seed), Horizon: 50})
			if err != nil {
				return nil, err
			}
			net := buildPhaseNetwork(in)
			row.Vertices = net.vertices
			row.Edges = len(net.edges)

			t0 := time.Now()
			dg := flow.NewGraph(net.vertices)
			for _, e := range net.edges {
				dg.AddEdge(e.from, e.to, e.cap)
			}
			dv := dg.MaxFlow(0, net.vertices-1)
			row.DinicNanos += time.Since(t0).Nanoseconds()
			dops := dg.Ops()
			rec := cfg.Recorder
			rec.Add("flow.solves", 2)
			rec.Add("flow.dinic.bfs_passes", dops.BFSPasses)
			rec.Add("flow.dinic.aug_paths", dops.AugPaths)
			rec.Add("flow.dinic.edges_scanned", dops.EdgesScanned)

			t1 := time.Now()
			pg := flow.NewPRGraph(net.vertices)
			for _, e := range net.edges {
				pg.AddEdge(e.from, e.to, e.cap)
			}
			pv := pg.MaxFlow(0, net.vertices-1)
			row.PRNanos += time.Since(t1).Nanoseconds()
			pops := pg.Ops()
			rec.Add("flow.pr.pushes", pops.Pushes)
			rec.Add("flow.pr.relabels", pops.Relabels)
			rec.Add("flow.pr.gap_firings", pops.GapFirings)
			rec.Add("flow.pr.discharges", pops.Discharges)
			rec.Add("flow.pr.global_relabels", pops.GlobalRelabels)

			if math.Abs(dv-pv) > 1e-6*(1+dv) {
				row.Agree = false
			}

			if n <= exactSizeCap {
				t2 := time.Now()
				rg := flow.NewRatGraph(net.vertices)
				for _, e := range net.edges {
					rg.AddEdge(e.from, e.to, new(big.Rat).SetFloat64(e.cap))
				}
				rvRat := rg.MaxFlow(0, net.vertices-1)
				row.ExactNanos += time.Since(t2).Nanoseconds()
				rops := rg.Ops()
				rec.Add("flow.exact.bfs_passes", rops.BFSPasses)
				rec.Add("flow.exact.aug_paths", rops.AugPaths)
				rec.Add("flow.exact.edges_scanned", rops.EdgesScanned)
				rv, _ := rvRat.Float64()
				if math.Abs(dv-rv) > 1e-6*(1+dv) {
					row.Agree = false
				}
			}
		}
		s := int64(cfg.Seeds)
		row.DinicNanos /= s
		row.PRNanos /= s
		if row.ExactNanos > 0 {
			row.ExactNanos /= s
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type netEdge struct {
	from, to int
	cap      float64
}

type phaseNetwork struct {
	vertices int
	edges    []netEdge
}

// buildPhaseNetwork constructs G(J, m, s) for the full job set at the
// uniform speed s = W / (m * horizon-capacity) — the first-round network
// of the offline algorithm's first phase.
func buildPhaseNetwork(in *job.Instance) phaseNetwork {
	ivs := job.Partition(in.Jobs)
	var totalTime, totalWork float64
	for _, iv := range ivs {
		totalTime += float64(in.M) * iv.Len()
	}
	for _, j := range in.Jobs {
		totalWork += j.Work
	}
	s := totalWork / totalTime

	net := phaseNetwork{vertices: 2 + in.N() + len(ivs)}
	sink := net.vertices - 1
	for k, j := range in.Jobs {
		net.edges = append(net.edges, netEdge{0, 1 + k, j.Work / s})
		for jx, iv := range ivs {
			if j.ActiveIn(iv.Start, iv.End) {
				net.edges = append(net.edges, netEdge{1 + k, 1 + in.N() + jx, iv.Len()})
			}
		}
	}
	for jx, iv := range ivs {
		net.edges = append(net.edges, netEdge{1 + in.N() + jx, sink, float64(in.M) * iv.Len()})
	}
	return net
}

// RenderE11 prints the E11 table.
func RenderE11(rows []E11Row) string {
	out := [][]string{}
	for _, r := range rows {
		exact := "-"
		if r.ExactNanos > 0 {
			exact = dur(r.ExactNanos)
		}
		out = append(out, []string{
			d(r.N), d(r.Vertices), d(r.Edges),
			dur(r.DinicNanos), dur(r.PRNanos), exact, fmt.Sprintf("%v", r.Agree),
		})
	}
	return "E11 — ablation: max-flow solvers on scheduler-shaped networks (m=4)\n" +
		table([]string{"n", "vertices", "edges", "dinic", "push-relabel", "exact-rat", "agree"}, out)
}

// E11Check requires all solvers to agree.
func E11Check(rows []E11Row) error {
	for _, r := range rows {
		if !r.Agree {
			return fmt.Errorf("E11 n=%d: solvers disagreed", r.N)
		}
	}
	return nil
}
