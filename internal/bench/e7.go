package bench

import (
	"fmt"
	"math"

	"mpss/internal/online"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
)

// E7Row quantifies the energy premium of forbidding migration for one
// (workload, m) cell: the ratio baseline / migratory-optimum per
// assignment policy.
type E7Row struct {
	Workload   string
	M          int
	Seeds      int
	Random     float64 // random assignment + per-processor YDS
	RoundRobin float64
	LeastWork  float64
	BestOf3    float64 // min of the three, averaged over seeds
	// OptMigrations is the mean number of job migrations the optimal
	// schedule performs — the price (in scheduler events, not energy) of
	// the savings above.
	OptMigrations float64
}

// E7 compares the migratory optimum against non-migratory baselines in
// the style of reference [8] (assignment + YDS per processor).
func E7(cfg Config) ([]E7Row, error) {
	cfg = cfg.normalize()
	p := power.MustAlpha(2)
	var rows []E7Row
	for _, gname := range []string{"uniform", "bursty", "longshort"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			return nil, err
		}
		for _, m := range []int{2, 4, 8} {
			row := E7Row{Workload: gname, M: m, Seeds: cfg.Seeds}
			for seed := 0; seed < cfg.Seeds; seed++ {
				in, err := gen.Make(workload.Spec{N: cfg.N, M: m, Seed: int64(seed)})
				if err != nil {
					return nil, err
				}
				optRes, err := opt.Schedule(in, cfg.solveOpts()...)
				if err != nil {
					return nil, fmt.Errorf("E7 %s m=%d seed=%d: %w", gname, m, seed, err)
				}
				optE := optRes.Schedule.Energy(p)
				row.OptMigrations += float64(optRes.Schedule.ComputeMetrics().Migrations)
				ratio := func(a online.Assignment) (float64, error) {
					s, err := online.NonMigratory(in, a)
					if err != nil {
						return 0, err
					}
					return s.Energy(p) / optE, nil
				}
				r1, err := ratio(online.RandomAssignment(int64(seed) + 1))
				if err != nil {
					return nil, err
				}
				r2, err := ratio(online.RoundRobinAssignment())
				if err != nil {
					return nil, err
				}
				r3, err := ratio(online.LeastWorkAssignment())
				if err != nil {
					return nil, err
				}
				row.Random += r1
				row.RoundRobin += r2
				row.LeastWork += r3
				row.BestOf3 += math.Min(r1, math.Min(r2, r3))
			}
			s := float64(cfg.Seeds)
			row.Random /= s
			row.RoundRobin /= s
			row.LeastWork /= s
			row.BestOf3 /= s
			row.OptMigrations /= s
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderE7 prints the E7 table.
func RenderE7(rows []E7Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, d(r.M), d(r.Seeds),
			f3(r.Random), f3(r.RoundRobin), f3(r.LeastWork), f3(r.BestOf3),
			f3(r.OptMigrations),
		})
	}
	return "E7 — value of migration: non-migratory baseline energy / migratory optimum (alpha=2)\n" +
		table([]string{"workload", "m", "seeds", "random", "round-robin", "least-work", "best-of-3", "opt-migrations"}, out)
}

// E7Check requires all baselines to be at least as expensive as the
// migratory optimum.
func E7Check(rows []E7Row) error {
	for _, r := range rows {
		for name, v := range map[string]float64{
			"random": r.Random, "round-robin": r.RoundRobin, "least-work": r.LeastWork,
		} {
			if v < 1-1e-6 {
				return fmt.Errorf("E7 %s m=%d: %s baseline ratio %v below 1", r.Workload, r.M, name, v)
			}
		}
	}
	return nil
}
