package bench

import (
	"fmt"
	"math"

	"mpss/internal/job"
	"mpss/internal/online"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
	"mpss/internal/yds"
)

// E10Row audits the energy decomposition inside the proof of Theorem 3
// (inequality (9) and the two bounds on its terms):
//
//	E_AVR(m) <= m^(1-alpha) * sum_t Delta_t^alpha |I_t|  +  sum_i delta_i^alpha (d_i - r_i)
//	            `------------- term1 -------------'        `-------- term2 --------'
//	term1 <= (2 alpha)^alpha / 2 * E^1_OPT   (single-processor AVR bound [15])
//	term2 <= E_OPT(m)                        (per-job density lower bound)
type E10Row struct {
	Workload string
	Alpha    float64
	M        int
	Seeds    int
	Decomp   float64 // max over seeds of E_AVR / (m^(1-a) term1 + term2); <= 1
	Term1    float64 // max over seeds of term1 / ((2a)^a/2 * E1_OPT); <= 1
	Term2    float64 // max over seeds of term2 / E_OPT(m); <= 1
}

// E10 measures the three inequalities chained in the proof of Theorem 3.
func E10(cfg Config) ([]E10Row, error) {
	cfg = cfg.normalize()
	var rows []E10Row
	for _, gname := range []string{"uniform", "bursty"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			return nil, err
		}
		for _, alpha := range []float64{2, 3} {
			p := power.MustAlpha(alpha)
			for _, m := range []int{2, 4} {
				row := E10Row{Workload: gname, Alpha: alpha, M: m, Seeds: cfg.Seeds}
				for seed := 0; seed < cfg.Seeds; seed++ {
					in, err := gen.Make(workload.Spec{N: cfg.N, M: m, Seed: int64(seed)})
					if err != nil {
						return nil, err
					}
					avr, err := online.AVR(in)
					if err != nil {
						return nil, fmt.Errorf("E10 %s seed=%d: %w", gname, seed, err)
					}
					eAVR := avr.Schedule.Energy(p)

					term1 := accumulatedDensityEnergy(in, alpha)
					term2 := perJobDensityEnergy(in, alpha)

					optRes, err := opt.Schedule(in, cfg.solveOpts()...)
					if err != nil {
						return nil, err
					}
					eOPT := optRes.Schedule.Energy(p)
					e1, err := yds.Energy(in.Jobs, p)
					if err != nil {
						return nil, err
					}

					decomp := eAVR / (math.Pow(float64(m), 1-alpha)*term1 + term2)
					t1 := term1 / (math.Pow(2*alpha, alpha) / 2 * e1)
					t2 := term2 / eOPT
					row.Decomp = math.Max(row.Decomp, decomp)
					row.Term1 = math.Max(row.Term1, t1)
					row.Term2 = math.Max(row.Term2, t2)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// accumulatedDensityEnergy is sum_t Delta_t^alpha |I_t| — the energy the
// single-processor AVR algorithm would consume on this job sequence.
func accumulatedDensityEnergy(in *job.Instance, alpha float64) float64 {
	ivs := job.Partition(in.Jobs)
	var e float64
	for _, iv := range ivs {
		var density float64
		for _, j := range in.Jobs {
			if j.ActiveIn(iv.Start, iv.End) {
				density += j.Density()
			}
		}
		e += math.Pow(density, alpha) * iv.Len()
	}
	return e
}

// perJobDensityEnergy is sum_i delta_i^alpha (d_i - r_i) — each job's
// energy if it ran alone at its density, a lower bound on any schedule.
func perJobDensityEnergy(in *job.Instance, alpha float64) float64 {
	var e float64
	for _, j := range in.Jobs {
		e += math.Pow(j.Density(), alpha) * j.Span()
	}
	return e
}

// RenderE10 prints the E10 table.
func RenderE10(rows []E10Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, f3(r.Alpha), d(r.M), d(r.Seeds),
			f4(r.Decomp), f4(r.Term1), f4(r.Term2),
		})
	}
	return "E10 — Theorem 3 decomposition: each normalized term must be <= 1\n" +
		table([]string{"workload", "alpha", "m", "seeds", "decomp", "term1/bound", "term2/opt"}, out)
}

// E10Check enforces all three inequalities.
func E10Check(rows []E10Row) error {
	for _, r := range rows {
		if r.Decomp > 1+1e-6 {
			return fmt.Errorf("E10 %s alpha=%v m=%d: decomposition ratio %v > 1", r.Workload, r.Alpha, r.M, r.Decomp)
		}
		if r.Term1 > 1+1e-6 {
			return fmt.Errorf("E10 %s alpha=%v m=%d: term1 ratio %v > 1", r.Workload, r.Alpha, r.M, r.Term1)
		}
		if r.Term2 > 1+1e-6 {
			return fmt.Errorf("E10 %s alpha=%v m=%d: term2 ratio %v > 1", r.Workload, r.Alpha, r.M, r.Term2)
		}
	}
	return nil
}
