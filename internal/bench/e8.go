package bench

import (
	"fmt"
	"math"

	"mpss/internal/job"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
	"mpss/internal/yds"
)

// E8Row verifies one cell of the power inequality from the proof of
// Theorem 3 (equation (10)): E_OPT(m) >= m^(1-alpha) * E^1_OPT.
type E8Row struct {
	Workload string
	M        int
	Alpha    float64
	Seeds    int
	MinRatio float64 // min over seeds of E_OPT(m) / (m^(1-alpha) E^1_OPT); must be >= 1
	MaxRatio float64
}

// E8 measures the relation between the m-processor optimum and the
// single-processor optimum that anchors the AVR(m) analysis.
func E8(cfg Config) ([]E8Row, error) {
	cfg = cfg.normalize()
	var rows []E8Row
	for _, gname := range []string{"uniform", "bursty"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			return nil, err
		}
		for _, m := range []int{2, 4, 8} {
			for _, alpha := range []float64{2.0, 3.0} {
				p := power.MustAlpha(alpha)
				row := E8Row{Workload: gname, M: m, Alpha: alpha, Seeds: cfg.Seeds, MinRatio: 1e18}
				for seed := 0; seed < cfg.Seeds; seed++ {
					base, err := gen.Make(workload.Spec{N: cfg.N, M: 1, Seed: int64(seed)})
					if err != nil {
						return nil, err
					}
					single, err := yds.Energy(base.Jobs, p)
					if err != nil {
						return nil, err
					}
					inM, err := job.NewInstance(m, base.Jobs)
					if err != nil {
						return nil, err
					}
					multi, err := opt.Schedule(inM, cfg.solveOpts()...)
					if err != nil {
						return nil, fmt.Errorf("E8 %s m=%d seed=%d: %w", gname, m, seed, err)
					}
					bound := math.Pow(float64(m), 1-alpha) * single
					ratio := multi.Schedule.Energy(p) / bound
					if ratio < row.MinRatio {
						row.MinRatio = ratio
					}
					if ratio > row.MaxRatio {
						row.MaxRatio = ratio
					}
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// RenderE8 prints the E8 table.
func RenderE8(rows []E8Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, d(r.M), f3(r.Alpha), d(r.Seeds), f4(r.MinRatio), f4(r.MaxRatio),
		})
	}
	return "E8 — Theorem 3 proof chain: E_OPT(m) / (m^(1-alpha) E^1_OPT) (must be >= 1)\n" +
		table([]string{"workload", "m", "alpha", "seeds", "min-ratio", "max-ratio"}, out)
}

// E8Check enforces the inequality.
func E8Check(rows []E8Row) error {
	for _, r := range rows {
		if r.MinRatio < 1-1e-6 {
			return fmt.Errorf("E8 %s m=%d alpha=%v: ratio %v violates E_OPT(m) >= m^(1-alpha) E^1_OPT",
				r.Workload, r.M, r.Alpha, r.MinRatio)
		}
	}
	return nil
}
