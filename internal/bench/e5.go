package bench

import (
	"fmt"

	"mpss/internal/opt"
	"mpss/internal/workload"
)

// E5Row summarizes the structural invariants (Lemmas 1-3) over one
// workload family.
type E5Row struct {
	Workload       string
	Seeds          int
	MaxPhases      int // max p observed (Lemma 1: p <= n)
	N              int
	SpeedsMonotone bool // phase speeds strictly decreasing
	Lemma3Holds    bool // m_ij = min(n_ij, m - sum m_lj) in every cell
	AvgRounds      float64
}

// E5 checks the structure of optimal schedules on random instances:
// at most n distinct speeds, strictly decreasing phase speeds, and the
// Lemma 3 processor-count formula.
func E5(cfg Config) ([]E5Row, error) {
	cfg = cfg.normalize()
	var rows []E5Row
	for _, gname := range []string{"uniform", "bursty", "staircase", "tight"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			return nil, err
		}
		row := E5Row{Workload: gname, Seeds: cfg.Seeds, N: cfg.N, SpeedsMonotone: true, Lemma3Holds: true}
		var rounds int
		for seed := 0; seed < cfg.Seeds; seed++ {
			in, err := gen.Make(workload.Spec{N: cfg.N, M: 3, Seed: int64(seed)})
			if err != nil {
				return nil, err
			}
			res, err := opt.Schedule(in, cfg.solveOpts()...)
			if err != nil {
				return nil, fmt.Errorf("E5 %s seed=%d: %w", gname, seed, err)
			}
			rounds += res.Stats.Rounds
			if len(res.Phases) > row.MaxPhases {
				row.MaxPhases = len(res.Phases)
			}
			for i := 1; i < len(res.Phases); i++ {
				if res.Phases[i].Speed >= res.Phases[i-1].Speed+1e-9 {
					row.SpeedsMonotone = false
				}
			}
			// Lemma 3 audit.
			used := make([]int, len(res.Intervals))
			for _, ph := range res.Phases {
				for jx, iv := range res.Intervals {
					nij := 0
					for _, id := range ph.JobIDs {
						j, _ := in.ByID(id)
						if j.ActiveIn(iv.Start, iv.End) {
							nij++
						}
					}
					want := nij
					if free := in.M - used[jx]; free < want {
						want = free
					}
					if ph.Procs[jx] != want {
						row.Lemma3Holds = false
					}
					used[jx] += ph.Procs[jx]
				}
			}
		}
		row.AvgRounds = float64(rounds) / float64(cfg.Seeds)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderE5 prints the E5 table.
func RenderE5(rows []E5Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, d(r.Seeds), d(r.N), d(r.MaxPhases),
			fmt.Sprintf("%v", r.SpeedsMonotone), fmt.Sprintf("%v", r.Lemma3Holds), f3(r.AvgRounds),
		})
	}
	return "E5 — Lemmas 1-3: structure of optimal schedules (m=3)\n" +
		table([]string{"workload", "seeds", "n", "max-phases", "speeds-desc", "lemma3", "avg-flow-rounds"}, out)
}

// E5Check validates the invariants.
func E5Check(rows []E5Row) error {
	for _, r := range rows {
		if r.MaxPhases > r.N {
			return fmt.Errorf("E5 %s: %d phases exceed n=%d (Lemma 1)", r.Workload, r.MaxPhases, r.N)
		}
		if !r.SpeedsMonotone {
			return fmt.Errorf("E5 %s: phase speeds not strictly decreasing", r.Workload)
		}
		if !r.Lemma3Holds {
			return fmt.Errorf("E5 %s: Lemma 3 processor counts violated", r.Workload)
		}
	}
	return nil
}
