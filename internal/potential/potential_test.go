package potential

import (
	"math"
	"testing"

	"mpss/internal/job"
	"mpss/internal/online"
	"mpss/internal/opt"
	"mpss/internal/power"
	"mpss/internal/workload"
)

func setup(t *testing.T, seed int64, m int, alpha float64) (*job.Instance, *Tracker, power.Alpha) {
	t.Helper()
	in, err := workload.Uniform(workload.Spec{N: 10, M: m, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	oa, err := online.OA(in)
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := opt.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracker(in, oa, optRes.Schedule, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return in, tr, power.MustAlpha(alpha)
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(nil, nil, nil, 2); err == nil {
		t.Error("nil inputs accepted")
	}
	in, _ := job.NewInstance(1, []job.Job{{ID: 1, Release: 0, Deadline: 1, Work: 1}})
	oa, _ := online.OA(in)
	optRes, _ := opt.Schedule(in)
	if _, err := NewTracker(in, oa, optRes.Schedule, 1); err == nil {
		t.Error("alpha=1 accepted")
	}
}

func TestPhiZeroAtBoundaries(t *testing.T) {
	in, tr, _ := setup(t, 3, 2, 2)
	start, end := in.Horizon()
	if phi := tr.Phi(start - 1); phi != 0 {
		t.Errorf("Phi before first release = %v, want 0", phi)
	}
	if phi := tr.Phi(end + 1); math.Abs(phi) > 1e-6 {
		t.Errorf("Phi after horizon = %v, want ~0", phi)
	}
}

// Property (a) of the analysis: the potential does not increase when a
// new job arrives.
func TestPhiArrivalJumps(t *testing.T) {
	for _, alpha := range []float64{2, 3} {
		for seed := int64(0); seed < 6; seed++ {
			_, tr, _ := setup(t, seed, 2, alpha)
			for i := 1; i < len(tr.oa.Events); i++ {
				at := tr.oa.Events[i].Time
				before := tr.Phi(at - 1e-7)
				after := tr.Phi(at)
				scale := 1 + math.Abs(before) + math.Abs(after)
				if after > before+1e-5*scale {
					t.Errorf("alpha=%v seed=%d: Phi jumped up at arrival %v: %v -> %v",
						alpha, seed, at, before, after)
				}
			}
		}
	}
}

// Property (b), integrated: over any window, the OA energy minus
// alpha^alpha times the OPT energy plus the potential change is
// non-positive (the pointwise drift inequality integrated, with only
// non-increasing jumps inside).
func TestDriftInequality(t *testing.T) {
	for _, alpha := range []float64{2, 3} {
		for seed := int64(0); seed < 6; seed++ {
			in, tr, p := setup(t, seed, 2, alpha)
			start, end := in.Horizon()

			// Whole run (Phi(0) = Phi(end) = 0 reduces to Theorem 2).
			whole := tr.Drift(start, end, p)
			tol := 1e-5 * (1 + math.Pow(alpha, alpha)*whole.EOPT)
			if whole.LHS > tol {
				t.Errorf("alpha=%v seed=%d: whole-run drift %v > 0", alpha, seed, whole.LHS)
			}

			// Inter-arrival windows (open interiors).
			for i := 0; i+1 < len(tr.oa.Events); i++ {
				a := tr.oa.Events[i].Time + 1e-7
				b := tr.oa.Events[i+1].Time - 1e-7
				if b <= a {
					continue
				}
				r := tr.Drift(a, b, p)
				if r.LHS > tol {
					t.Errorf("alpha=%v seed=%d window [%v,%v]: drift LHS %v > 0 (EOA=%v EOPT=%v dPhi=%v)",
						alpha, seed, a, b, r.LHS, r.EOA, r.EOPT, r.DeltaPhi)
				}
			}
		}
	}
}

// The derivative version of property (b) on fine sub-windows: sampling
// inside one inter-arrival window must also satisfy the inequality,
// because completions only ever decrease the potential.
func TestDriftFineGrained(t *testing.T) {
	_, tr, p := setup(t, 1, 3, 2)
	if len(tr.oa.Events) < 2 {
		t.Skip("trace too short")
	}
	a := tr.oa.Events[0].Time
	b := tr.oa.Events[len(tr.oa.Events)-1].Time
	steps := 40
	tol := 1e-4 * (1 + math.Pow(2, 2)*tr.Drift(a, b, p).EOPT)
	for i := 0; i < steps; i++ {
		lo := a + (b-a)*float64(i)/float64(steps)
		hi := a + (b-a)*float64(i+1)/float64(steps)
		r := tr.Drift(lo, hi, p)
		if r.LHS > tol {
			t.Errorf("window [%v,%v]: drift LHS %v > tol (EOA=%v EOPT=%v dPhi=%v)",
				lo, hi, r.LHS, r.EOA, r.EOPT, r.DeltaPhi)
		}
	}
}
