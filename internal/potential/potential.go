// Package potential implements the potential function used in the
// paper's competitive analysis of OA(m) (Section 3.1):
//
//	Phi(t) = alpha * sum_i s_i^(alpha-1) (W_OA(i) - alpha W_OPT(i))
//	       - alpha^2 * sum_i s'_i^(alpha-1) W'_OPT(i)
//
// where J_1..J_p are OA's unfinished jobs grouped by their current plan
// speeds s_1 > ... > s_p, W_OA(i)/W_OPT(i) are the remaining volumes of
// those jobs under OA and under the optimal schedule, and the primed sets
// collect jobs OA has already finished but OPT has not, grouped by the
// speed OA last used for them.
//
// The analysis proves two facts that Theorem 2 integrates into
// alpha^alpha-competitiveness:
//
//	(a) Phi never increases when a job arrives or completes, and
//	(b) between events, dE_OA/dt - alpha^alpha dE_OPT/dt + dPhi/dt <= 0.
//
// Tracker evaluates Phi along an executed OA(m) run against the offline
// optimum, so property tests and experiments can observe (a) and (b)
// numerically instead of taking the proof on faith.
package potential

import (
	"fmt"
	"math"
	"sort"

	"mpss/internal/job"
	"mpss/internal/online"
	"mpss/internal/schedule"
)

// Tracker evaluates the OA(m) potential at arbitrary times.
type Tracker struct {
	in    *job.Instance
	oa    *online.OAResult
	opt   *schedule.Schedule
	alpha float64
}

// NewTracker wires an instance, an executed OA run on it, and the
// offline-optimal schedule of the same instance.
func NewTracker(in *job.Instance, oa *online.OAResult, opt *schedule.Schedule, alpha float64) (*Tracker, error) {
	if alpha <= 1 {
		return nil, fmt.Errorf("potential: alpha = %v <= 1", alpha)
	}
	if oa == nil || opt == nil || in == nil {
		return nil, fmt.Errorf("potential: nil input")
	}
	return &Tracker{in: in, oa: oa, opt: opt, alpha: alpha}, nil
}

// eventAt returns the index of the last OA replanning event at or before
// t, or -1 when t precedes every event.
func (tr *Tracker) eventAt(t float64) int {
	idx := -1
	for i, ev := range tr.oa.Events {
		if ev.Time <= t {
			idx = i
		}
	}
	return idx
}

// state collects, at time t, the remaining volumes and current/last
// speeds per job under OA, plus OPT's remaining volumes.
type state struct {
	// unfinished by OA: job ID -> (current plan speed, OA remaining).
	speed  map[int]float64
	remOA  map[int]float64
	remOPT map[int]float64 // OPT remaining for every job
	// finished by OA: job ID -> speed OA last used.
	lastSpeed map[int]float64
}

func (tr *Tracker) stateAt(t float64) state {
	st := state{
		speed:     map[int]float64{},
		remOA:     map[int]float64{},
		remOPT:    map[int]float64{},
		lastSpeed: map[int]float64{},
	}
	for _, j := range tr.in.Jobs {
		st.remOPT[j.ID] = math.Max(0, j.Work-tr.opt.CompletedWork(j.ID, math.Inf(-1), t))
	}

	ei := tr.eventAt(t)
	if ei < 0 {
		return st // nothing released yet; OA state empty
	}
	ev := tr.oa.Events[ei]
	const tiny = 1e-9
	for id, rem0 := range ev.Remaining {
		done := ev.Plan.CompletedWork(id, ev.Time, t)
		rem := rem0 - done
		j, _ := tr.in.ByID(id)
		if rem > tiny*(1+j.Work) {
			st.remOA[id] = rem
			st.speed[id] = ev.JobSpeeds[id]
		}
	}
	// Jobs finished by OA (released but not live in the current plan, or
	// depleted within it): last executed speed before t.
	for _, j := range tr.in.Jobs {
		if j.Release > t {
			continue
		}
		if _, live := st.remOA[j.ID]; live {
			continue
		}
		if s, ok := lastExecutedSpeed(tr.oa.Schedule, j.ID, t); ok {
			st.lastSpeed[j.ID] = s
		}
	}
	return st
}

func lastExecutedSpeed(s *schedule.Schedule, jobID int, t float64) (float64, bool) {
	best := math.Inf(-1)
	speed := 0.0
	found := false
	for _, seg := range s.Segments {
		if seg.JobID != jobID || seg.Start > t {
			continue
		}
		if seg.End > best {
			best = seg.End
			speed = seg.Speed
			found = true
		}
	}
	return speed, found
}

// Phi evaluates the potential at time t.
func (tr *Tracker) Phi(t float64) float64 {
	st := tr.stateAt(t)
	a := tr.alpha

	// Group unfinished jobs by (clustered) speed.
	type group struct{ wOA, wOPT, speed float64 }
	groups := map[int]*group{} // key: index into sorted distinct speeds
	speeds := make([]float64, 0, len(st.speed))
	for _, s := range st.speed {
		speeds = append(speeds, s)
	}
	sort.Float64s(speeds)
	distinct := speeds[:0:0]
	for _, s := range speeds {
		if len(distinct) == 0 || s-distinct[len(distinct)-1] > 1e-9*(1+s) {
			distinct = append(distinct, s)
		}
	}
	find := func(s float64) int {
		i := sort.SearchFloat64s(distinct, s)
		if i < len(distinct) && math.Abs(distinct[i]-s) <= 1e-9*(1+s) {
			return i
		}
		if i > 0 && math.Abs(distinct[i-1]-s) <= 1e-9*(1+s) {
			return i - 1
		}
		return i
	}
	for id, s := range st.speed {
		g := groups[find(s)]
		if g == nil {
			g = &group{speed: s}
			groups[find(s)] = g
		}
		g.wOA += st.remOA[id]
		g.wOPT += st.remOPT[id]
	}

	var phi float64
	for _, g := range groups {
		phi += a * math.Pow(g.speed, a-1) * (g.wOA - a*g.wOPT)
	}
	for id, s := range st.lastSpeed {
		if w := st.remOPT[id]; w > 0 && s > 0 {
			phi -= a * a * math.Pow(s, a-1) * w
		}
	}
	return phi
}

// DriftReport is the audited inequality over one sample window.
type DriftReport struct {
	From, To float64
	EOA      float64 // OA energy spent in the window
	EOPT     float64 // OPT energy spent in the window
	DeltaPhi float64 // Phi(To) - Phi(From)
	LHS      float64 // EOA - alpha^alpha*EOPT + DeltaPhi; should be <= ~0
}

// Drift evaluates property (b) over [from, to] using the executed OA
// schedule and the optimal schedule, both integrated exactly.
func (tr *Tracker) Drift(from, to float64, p interface{ Energy(s, t float64) float64 }) DriftReport {
	eoa := clipEnergy(tr.oa.Schedule, from, to, p)
	eopt := clipEnergy(tr.opt, from, to, p)
	dphi := tr.Phi(to) - tr.Phi(from)
	return DriftReport{
		From: from, To: to,
		EOA: eoa, EOPT: eopt, DeltaPhi: dphi,
		LHS: eoa - math.Pow(tr.alpha, tr.alpha)*eopt + dphi,
	}
}

func clipEnergy(s *schedule.Schedule, from, to float64, p interface{ Energy(s, t float64) float64 }) float64 {
	var e float64
	for _, seg := range s.Segments {
		lo := math.Max(seg.Start, from)
		hi := math.Min(seg.End, to)
		if hi > lo {
			e += p.Energy(seg.Speed, hi-lo)
		}
	}
	return e
}
