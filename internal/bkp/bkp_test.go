package bkp

import (
	"math"
	"testing"

	"mpss/internal/job"
	"mpss/internal/power"
	"mpss/internal/workload"
	"mpss/internal/yds"
)

func TestBound(t *testing.T) {
	// 2 * (2/1)^2 * e^2 = 8 e^2.
	want := 8 * math.E * math.E
	if got := Bound(2); math.Abs(got-want) > 1e-9 {
		t.Errorf("Bound(2) = %v, want %v", got, want)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Schedule(nil, Options{}); err == nil {
		t.Error("empty jobs accepted")
	}
	if _, err := Schedule([]job.Job{{ID: 1, Release: 2, Deadline: 1, Work: 1}}, Options{}); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestSingleJobSpeed(t *testing.T) {
	// One job (0, 1, w=1): at t=0 the only candidate t2=1 gives
	// w(0, -(e-1), 1) = 1 so s(0) = e.
	jobs := []job.Job{{ID: 1, Release: 0, Deadline: 1, Work: 1}}
	if got := speedAt(jobs, 0); math.Abs(got-math.E) > 1e-9 {
		t.Errorf("speedAt(0) = %v, want e", got)
	}
	sched, err := Schedule(jobs, Options{SlicesPerInterval: 64})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := job.NewInstance(1, jobs)
	if err := sched.Verify(in); err != nil {
		t.Fatal(err)
	}
	// BKP runs the job at >= e, so it finishes early; energy must exceed
	// the optimal density-1 schedule.
	p := power.MustAlpha(2)
	optE, _ := yds.Energy(jobs, p)
	if e := sched.Energy(p); e <= optE {
		t.Errorf("BKP energy %v not above optimal %v for the eager profile", e, optE)
	}
}

func TestFeasibleAcrossWorkloads(t *testing.T) {
	for _, gname := range []string{"uniform", "bursty", "tight"} {
		gen, err := workload.ByName(gname)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 4; seed++ {
			in, err := gen.Make(workload.Spec{N: 10, M: 1, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sched, err := Schedule(in.Jobs, Options{})
			if err != nil {
				t.Fatalf("%s/%d: %v", gname, seed, err)
			}
			if err := sched.Verify(in); err != nil {
				t.Errorf("%s/%d: infeasible: %v", gname, seed, err)
			}
		}
	}
}

func TestCompetitiveAgainstYDS(t *testing.T) {
	for _, alpha := range []float64{2, 3} {
		p := power.MustAlpha(alpha)
		bound := Bound(alpha)
		for seed := int64(0); seed < 5; seed++ {
			in, err := workload.Uniform(workload.Spec{N: 10, M: 1, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sched, err := Schedule(in.Jobs, Options{SlicesPerInterval: 24})
			if err != nil {
				t.Fatal(err)
			}
			optE, err := yds.Energy(in.Jobs, p)
			if err != nil {
				t.Fatal(err)
			}
			ratio := sched.Energy(p) / optE
			if ratio < 1-1e-9 {
				t.Errorf("alpha=%v seed=%d: ratio %v below 1", alpha, seed, ratio)
			}
			if ratio > bound {
				t.Errorf("alpha=%v seed=%d: ratio %v exceeds proven bound %v", alpha, seed, ratio, bound)
			}
		}
	}
}

func TestFinerSlicesDoNotBreakFeasibility(t *testing.T) {
	in, err := workload.Bursty(workload.Spec{N: 8, M: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, slices := range []int{4, 16, 64} {
		sched, err := Schedule(in.Jobs, Options{SlicesPerInterval: slices})
		if err != nil {
			t.Fatalf("slices=%d: %v", slices, err)
		}
		if err := sched.Verify(in); err != nil {
			t.Errorf("slices=%d: %v", slices, err)
		}
	}
}
