// Package bkp implements the single-processor online algorithm of
// Bansal, Kimbrel and Pruhs ("Speed scaling to manage energy and
// temperature", J.ACM 2007 — reference [5] of the paper), which the
// paper's conclusion singles out: for large alpha it beats Optimal
// Available on one processor, and whether it extends to multiple
// processors is posed as an open problem. Having it in the repository
// lets experiment E12 reproduce the classic single-processor comparison
// OA vs AVR vs BKP.
//
// At time t, BKP runs at speed
//
//	s(t) = e * max_{t' > t}  w(t, e t - (e-1) t', t') / (t' - t)
//
// where w(t, t1, t2) is the volume of jobs that have arrived by time t
// with release time at least t1 and deadline at most t2; jobs are chosen
// by EDF. The algorithm is 2 (alpha/(alpha-1))^alpha e^alpha competitive.
//
// This implementation evaluates the speed expression at event boundaries
// and simulates in small steps between events: s(t) varies continuously
// (not piecewise-constant), so the simulation discretizes each event
// interval into slices and uses the maximum of the slice-endpoint speeds,
// keeping the schedule feasible while over-approximating energy by a
// vanishing amount as the slice count grows.
package bkp

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"mpss/internal/job"
	"mpss/internal/schedule"
)

// E is Euler's constant, the speed multiplier of the algorithm.
var e = math.E

// Options configures the simulation granularity.
type Options struct {
	// SlicesPerInterval subdivides each event interval (default 16).
	SlicesPerInterval int
}

// Bound returns the proven competitive ratio 2 (a/(a-1))^a e^a.
func Bound(alpha float64) float64 {
	return 2 * math.Pow(alpha/(alpha-1), alpha) * math.Pow(e, alpha)
}

// Schedule runs BKP on a single processor and returns the schedule.
func Schedule(jobs []job.Job, o Options) (*schedule.Schedule, error) {
	if len(jobs) == 0 {
		return nil, errors.New("bkp: no jobs")
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}
	slices := o.SlicesPerInterval
	if slices <= 0 {
		slices = 16
	}

	ivs := job.Partition(jobs)
	byRelease := append([]job.Job(nil), jobs...)
	sort.Slice(byRelease, func(a, b int) bool { return byRelease[a].Release < byRelease[b].Release })

	out := schedule.New(1)
	ready := &edfHeap{}
	next := 0
	const tiny = 1e-12

	for _, iv := range ivs {
		step := iv.Len() / float64(slices)
		for si := 0; si < slices; si++ {
			t0 := iv.Start + float64(si)*step
			t1 := t0 + step
			// Admit arrivals (all releases coincide with interval starts,
			// but guard against float drift).
			for next < len(byRelease) && byRelease[next].Release <= t0+tiny {
				heap.Push(ready, &pending{Job: byRelease[next], remaining: byRelease[next].Work})
				next++
			}
			// BKP speed: the expression can peak strictly inside a slice,
			// so sampling the endpoints may undershoot. Guard feasibility
			// by also running at least at the critical density of the
			// ready queue (the minimum speed under which EDF meets every
			// remaining deadline); the guard fires rarely and vanishes as
			// the slice count grows.
			s := math.Max(speedAt(jobs, t0), speedAt(jobs, t1))
			s = math.Max(s, criticalDensity(*ready, t0))
			if s <= tiny {
				continue
			}
			// Run EDF at speed s across the slice.
			t := t0
			for t < t1-tiny && ready.Len() > 0 {
				top := (*ready)[0]
				dur := math.Min(t1-t, top.remaining/s)
				if dur <= tiny {
					heap.Pop(ready)
					continue
				}
				out.Add(schedule.Segment{Proc: 0, Start: t, End: t + dur, JobID: top.ID, Speed: s})
				top.remaining -= dur * s
				t += dur
				if top.remaining <= tiny*(1+top.Work) {
					heap.Pop(ready)
				}
			}
		}
	}
	// All work must be done: BKP provably completes every job by its
	// deadline, and the endpoint-max speed only adds slack.
	for ready.Len() > 0 {
		p := heap.Pop(ready).(*pending)
		if p.remaining > 1e-6*(1+p.Work) {
			return nil, fmt.Errorf("bkp: job %d unfinished by %g units (raise SlicesPerInterval)", p.ID, p.remaining)
		}
	}
	out.Normalize()
	return out, nil
}

// speedAt evaluates e * max_{t2 > t} w(t, e t - (e-1) t2, t2)/(t2 - t).
// The maximum over continuous t2 is attained with t2 at a job deadline
// (numerator constant, denominator increasing between deadlines), so only
// deadlines need checking.
func speedAt(jobs []job.Job, t float64) float64 {
	var best float64
	for _, cand := range jobs {
		t2 := cand.Deadline
		if t2 <= t {
			continue
		}
		t1 := e*t - (e-1)*t2
		var w float64
		for _, j := range jobs {
			if j.Release <= t && j.Release >= t1 && j.Deadline <= t2 {
				w += j.Work
			}
		}
		if g := w / (t2 - t); g > best {
			best = g
		}
	}
	return e * best
}

// criticalDensity returns the minimum constant speed at which EDF
// finishes every ready job by its deadline from time t:
// max over deadlines d of (remaining work due by d) / (d - t).
func criticalDensity(ready []*pending, t float64) float64 {
	if len(ready) == 0 {
		return 0
	}
	sorted := append([]*pending(nil), ready...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Deadline < sorted[b].Deadline })
	var sum, best float64
	for _, p := range sorted {
		sum += p.remaining
		if span := p.Deadline - t; span > 1e-12 {
			if g := sum / span; g > best {
				best = g
			}
		}
	}
	return best
}

type pending struct {
	job.Job
	remaining float64
}

type edfHeap []*pending

func (h edfHeap) Len() int            { return len(h) }
func (h edfHeap) Less(i, j int) bool  { return h[i].Deadline < h[j].Deadline }
func (h edfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x interface{}) { *h = append(*h, x.(*pending)) }
func (h *edfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
