package mpss

import (
	"errors"
	"math"
	"testing"
)

// TestValidateInstanceRejections covers every rejection class of the
// strict input contract, one table row per class.
func TestValidateInstanceRejections(t *testing.T) {
	ok := Job{ID: 1, Release: 0, Deadline: 4, Work: 8}
	cases := []struct {
		name string
		in   *Instance
	}{
		{"nil instance", nil},
		{"no processors", &Instance{M: 0, Jobs: []Job{ok}}},
		{"negative processors", &Instance{M: -3, Jobs: []Job{ok}}},
		{"empty instance", &Instance{M: 2}},
		{"NaN work", &Instance{M: 1, Jobs: []Job{{ID: 1, Release: 0, Deadline: 1, Work: math.NaN()}}}},
		{"Inf work", &Instance{M: 1, Jobs: []Job{{ID: 1, Release: 0, Deadline: 1, Work: math.Inf(1)}}}},
		{"zero work", &Instance{M: 1, Jobs: []Job{{ID: 1, Release: 0, Deadline: 1, Work: 0}}}},
		{"negative work", &Instance{M: 1, Jobs: []Job{{ID: 1, Release: 0, Deadline: 1, Work: -5}}}},
		{"NaN release", &Instance{M: 1, Jobs: []Job{{ID: 1, Release: math.NaN(), Deadline: 1, Work: 1}}}},
		{"Inf deadline", &Instance{M: 1, Jobs: []Job{{ID: 1, Release: 0, Deadline: math.Inf(1), Work: 1}}}},
		{"deadline equals release", &Instance{M: 1, Jobs: []Job{{ID: 1, Release: 2, Deadline: 2, Work: 1}}}},
		{"inverted window", &Instance{M: 1, Jobs: []Job{{ID: 1, Release: 5, Deadline: 2, Work: 1}}}},
		{"overflowing window", &Instance{M: 1, Jobs: []Job{{ID: 1, Release: -math.MaxFloat64, Deadline: math.MaxFloat64, Work: 1}}}},
		{"duplicate job IDs", &Instance{M: 2, Jobs: []Job{
			{ID: 7, Release: 0, Deadline: 1, Work: 1},
			{ID: 7, Release: 0, Deadline: 2, Work: 1},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateInstance(tc.in)
			if err == nil {
				t.Fatal("ValidateInstance accepted a malformed instance")
			}
			if !errors.Is(err, ErrInvalidInstance) {
				t.Errorf("err = %v, want ErrInvalidInstance", err)
			}
		})
	}
}

func TestValidateInstanceAccepts(t *testing.T) {
	in := &Instance{M: 2, Jobs: []Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 8},
		{ID: 2, Release: 1, Deadline: 5, Work: 2},
	}}
	if err := ValidateInstance(in); err != nil {
		t.Fatalf("ValidateInstance rejected a well-formed instance: %v", err)
	}
}

// TestEntryPointsValidate checks every public solver entry point rejects
// a malformed instance with ErrInvalidInstance instead of panicking or
// solving garbage.
func TestEntryPointsValidate(t *testing.T) {
	bad := &Instance{M: 1, Jobs: []Job{{ID: 1, Release: 3, Deadline: 1, Work: 1}}}
	calls := map[string]func() error{
		"OptimalSchedule":      func() error { _, err := OptimalSchedule(bad); return err },
		"OptimalScheduleExact": func() error { _, err := OptimalScheduleExact(bad); return err },
		"OA":                   func() error { _, err := OA(bad); return err },
		"AVR":                  func() error { _, err := AVR(bad); return err },
		"Verify":               func() error { return Verify(nil, bad) },
	}
	for name, call := range calls {
		t.Run(name, func(t *testing.T) {
			if err := call(); !errors.Is(err, ErrInvalidInstance) {
				t.Errorf("%s: err = %v, want ErrInvalidInstance", name, err)
			}
		})
	}
}

func TestVerifyNilSchedule(t *testing.T) {
	in := &Instance{M: 1, Jobs: []Job{{ID: 1, Release: 0, Deadline: 1, Work: 1}}}
	if err := Verify(nil, in); !errors.Is(err, ErrInvalidInstance) {
		t.Errorf("Verify(nil, in) = %v, want ErrInvalidInstance", err)
	}
}

// TestErrorSentinelsDistinct guards the taxonomy: the four classes must
// not alias each other through wrapping.
func TestErrorSentinelsDistinct(t *testing.T) {
	sentinels := map[string]error{
		"ErrInvalidInstance": ErrInvalidInstance,
		"ErrInfeasible":      ErrInfeasible,
		"ErrNumeric":         ErrNumeric,
		"ErrInternal":        ErrInternal,
	}
	for na, a := range sentinels {
		for nb, b := range sentinels {
			if na != nb && errors.Is(a, b) {
				t.Errorf("errors.Is(%s, %s) = true, want distinct sentinels", na, nb)
			}
		}
	}
}
