package mpss

import (
	"errors"
	"math"
	"testing"

	"mpss/internal/opt"
)

// FuzzSolvePipeline feeds raw, hostile job fields — NaN, infinities,
// inverted windows, zero processors — straight into the public solver
// entry points, bypassing NewInstance the way decoded JSON or hand-built
// struct literals can. The contract under test is the ISSUE's hardening
// guarantee: every call returns either a typed error or a feasible
// schedule; no input may panic.
func FuzzSolvePipeline(f *testing.F) {
	// Well-formed baseline.
	f.Add(int8(2), 0.0, 4.0, 8.0, 1.0, 5.0, 2.0, 0.0, 2.0, 3.0)
	// Inverted and empty windows.
	f.Add(int8(1), 5.0, 2.0, 1.0, 0.0, 0.0, 1.0, 3.0, 3.0, 1.0)
	// Hostile floats: NaN work, Inf deadline, denormal work.
	f.Add(int8(2), 0.0, 1.0, math.NaN(), 0.0, math.Inf(1), 1.0, 0.0, 1.0, 5e-324)
	// Zero processors, negative work.
	f.Add(int8(0), 0.0, 1.0, 1.0, 0.0, 2.0, -1.0, 1.0, 2.0, 1.0)
	// Range extremes: huge volumes in tiny windows (speed overflow) and
	// tiny volumes in huge windows (speed underflow).
	f.Add(int8(1), 0.0, 5e-324, math.MaxFloat64, -1e300, 1e300, 5e-324, 0.0, 1.0, 1.0)
	// Overlapping staggered windows on three processors: valid and sane,
	// so the body's second solve routes through the parallel push-relabel
	// dispatch (see testdata/fuzz/FuzzSolvePipeline/parallel-dispatch).
	f.Add(int8(3), 0.0, 6.0, 9.0, 1.0, 7.0, 4.0, 2.0, 8.0, 5.0)
	// Grid-aligned windows: two jobs share a window and the third spans
	// both, so multiple atomic intervals carry identical active sets and
	// the solve exercises the interval-contraction path and its raw
	// differential below.
	f.Add(int8(2), 0.0, 4.0, 6.0, 0.0, 4.0, 3.0, 0.0, 8.0, 5.0)
	// Nested aligned windows with a shared left endpoint — contraction
	// plus multi-phase structure.
	f.Add(int8(2), 0.0, 2.0, 5.0, 0.0, 4.0, 2.0, 0.0, 8.0, 1.0)

	f.Fuzz(func(t *testing.T, m int8, r1, d1, w1, r2, d2, w2, r3, d3, w3 float64) {
		in := &Instance{M: int(m), Jobs: []Job{
			{ID: 1, Release: r1, Deadline: d1, Work: w1},
			{ID: 2, Release: r2, Deadline: d2, Work: w2},
			{ID: 3, Release: r3, Deadline: d3, Work: w3},
		}}
		valid := ValidateInstance(in) == nil

		check := func(name string, err error) {
			t.Helper()
			if err == nil {
				return
			}
			if !errors.Is(err, ErrInvalidInstance) && !errors.Is(err, ErrInfeasible) &&
				!errors.Is(err, ErrNumeric) && !errors.Is(err, ErrInternal) {
				t.Errorf("%s: untyped error %v", name, err)
			}
			if !valid && !errors.Is(err, ErrInvalidInstance) {
				t.Errorf("%s: invalid instance got %v, want ErrInvalidInstance", name, err)
			}
		}

		res, err := OptimalSchedule(in)
		check("OptimalSchedule", err)
		if err == nil {
			if res == nil || res.Schedule == nil {
				t.Fatal("OptimalSchedule: nil result without error")
			}
			// The solver accepted the instance: its output must verify.
			// Restrict the feasibility assertion to numerically sane
			// inputs; at float64's range edges a schedule can be
			// structurally right yet fail verification by rounding alone.
			if sane(in) {
				if verr := Verify(res.Schedule, in); verr != nil {
					t.Errorf("OptimalSchedule: infeasible schedule for valid instance: %v", verr)
				}
			}
		}

		// Contraction must be output-invisible on every accepted
		// instance: re-solve on the raw interval graph and demand the
		// bit-identical phase speeds. The parallelism toggle is derived
		// from the input bits so the fuzzer also drives the raw path
		// through both engines.
		if err == nil && sane(in) {
			rawOpts := []SolveOption{WithContraction(false)}
			if math.Float64bits(w1)&1 == 1 {
				rawOpts = append(rawOpts, WithParallelism(2))
			}
			rres, rerr := OptimalSchedule(in, rawOpts...)
			check("OptimalSchedule(raw)", rerr)
			if rerr == nil {
				if len(rres.Phases) != len(res.Phases) {
					t.Errorf("contraction changed phase count: %d vs %d",
						len(res.Phases), len(rres.Phases))
				} else {
					for i := range res.Phases {
						if res.Phases[i].Speed != rres.Phases[i].Speed {
							t.Errorf("contraction changed phase %d speed: %v vs %v",
								i, res.Phases[i].Speed, rres.Phases[i].Speed)
						}
					}
				}
			}
		}

		// Decomposition must preserve the optimum: re-solve with
		// zero-active-boundary decomposition and demand a verifying
		// schedule with energy equal to the monolithic one to ~ulp. Two
		// corpus seeds (decompose-separable, decompose-touching) are
		// separable, so the cut-and-merge path runs from the seed corpus
		// on; non-separable inputs exercise the single-component
		// passthrough. Bit-equality is NOT asserted here: the
		// decompose-ulp-tie seed is an adversarial instance where the
		// monolithic float solve merges two phases whose joint density
		// rounds to exactly their common speed while the decomposed (and
		// exact-arithmetic) solve keeps them one ulp apart — the
		// deterministic differential suite in internal/opt pins
		// bit-equality on every tested distribution, and DESIGN.md
		// section 14 documents the tie-break caveat.
		if err == nil && sane(in) {
			dres, derr := OptimalSchedule(in, WithDecomposition(true))
			check("OptimalSchedule(decomposed)", derr)
			if derr == nil {
				if dres == nil || dres.Schedule == nil {
					t.Fatal("OptimalSchedule(decomposed): nil result without error")
				}
				if verr := Verify(dres.Schedule, in); verr != nil {
					t.Errorf("OptimalSchedule(decomposed): infeasible schedule: %v", verr)
				}
				p := MustAlpha(3)
				e, de := res.Schedule.Energy(p), dres.Schedule.Energy(p)
				if diff := math.Abs(e - de); diff > 1e-9*math.Max(1, math.Abs(e)) {
					t.Errorf("decomposition changed energy: %v vs %v", e, de)
				}
			}
		}

		// Same instance through the parallel flow engine. The edge
		// threshold is lowered so even these tiny networks dispatch to
		// the concurrent push-relabel solver, extending the no-panic /
		// typed-error contract to the worker goroutine path.
		if err == nil && sane(in) {
			oldThreshold := opt.ParallelEdgeThreshold
			opt.ParallelEdgeThreshold = 1
			pres, perr := OptimalSchedule(in, WithParallelism(2))
			opt.ParallelEdgeThreshold = oldThreshold
			check("OptimalSchedule(parallel)", perr)
			if perr == nil {
				if pres == nil || pres.Schedule == nil {
					t.Fatal("OptimalSchedule(parallel): nil result without error")
				}
				if verr := Verify(pres.Schedule, in); verr != nil {
					t.Errorf("OptimalSchedule(parallel): infeasible schedule: %v", verr)
				}
			}
		}

		_, err = OA(in)
		check("OA", err)
		_, err = AVR(in)
		check("AVR", err)
	})
}

// sane bounds the fields to a range where float64 rounding cannot turn a
// correct schedule into a verification failure.
func sane(in *Instance) bool {
	for _, j := range in.Jobs {
		for _, v := range []float64{j.Release, j.Deadline, j.Work} {
			if math.Abs(v) > 1e9 {
				return false
			}
		}
		if j.Work < 1e-9 || j.Span() < 1e-9 {
			return false
		}
	}
	return true
}
