package mpss

import (
	"bytes"
	"strings"
	"testing"
)

// writeTestTrace returns a serialized diurnal trace.
func writeTestTrace(t *testing.T, spec WorkloadSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, spec.M)
	if err != nil {
		t.Fatal(err)
	}
	if err := GenerateTrace(tw, spec); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The streamed decomposed solve must agree with the materialized
// monolithic solve of the same trace: identical job/component counts and
// identical energy (the decomposition differential suite proves the
// schedules bit-equal; the summaries sum energies in the same component
// order).
func TestSolveTraceStreamMatchesMonolithic(t *testing.T) {
	spec := WorkloadSpec{N: 400, M: 4, Seed: 12}
	data := writeTestTrace(t, spec)
	p := MustAlpha(3)

	rec := NewRecorder()
	streamed, err := SolveTraceStream(bytes.NewReader(data), p, WithRecorder(rec), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	mono, err := SolveTraceStream(bytes.NewReader(data), p, WithDecomposition(false))
	if err != nil {
		t.Fatal(err)
	}

	if streamed.Jobs != spec.N || mono.Jobs != spec.N {
		t.Fatalf("jobs: streamed %d, mono %d, want %d", streamed.Jobs, mono.Jobs, spec.N)
	}
	if streamed.M != spec.M || mono.M != spec.M {
		t.Fatalf("m: streamed %d, mono %d, want %d", streamed.M, mono.M, spec.M)
	}
	if streamed.Components != mono.Components || streamed.Components < 2 {
		t.Fatalf("components: streamed %d, mono %d (want equal, >= 2)", streamed.Components, mono.Components)
	}
	if streamed.MaxComponentJobs != mono.MaxComponentJobs {
		t.Fatalf("max component jobs: streamed %d, mono %d", streamed.MaxComponentJobs, mono.MaxComponentJobs)
	}
	if streamed.Phases != mono.Phases {
		t.Fatalf("phases: streamed %d, mono %d", streamed.Phases, mono.Phases)
	}
	if streamed.Energy != mono.Energy {
		t.Fatalf("energy: streamed %v, mono %v", streamed.Energy, mono.Energy)
	}

	snap := rec.Snapshot()
	if got := snap.Counters["opt.components"]; got != int64(streamed.Components) {
		t.Errorf("opt.components = %d, want %d", got, streamed.Components)
	}
	if got := snap.Counters["opt.decompose_cuts"]; got != int64(streamed.Components-1) {
		t.Errorf("opt.decompose_cuts = %d, want %d", got, streamed.Components-1)
	}
	if got := snap.Counters["opt.component_jobs_max"]; got != int64(streamed.MaxComponentJobs) {
		t.Errorf("opt.component_jobs_max = %d, want %d", got, streamed.MaxComponentJobs)
	}
}

// Determinism across worker counts: the summary is accumulated in
// component order regardless of completion order.
func TestSolveTraceStreamWorkerIndependence(t *testing.T) {
	data := writeTestTrace(t, WorkloadSpec{N: 300, M: 3, Seed: 4})
	p := MustAlpha(2)
	base, err := SolveTraceStream(bytes.NewReader(data), p, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := SolveTraceStream(bytes.NewReader(data), p, WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		if *got != *base {
			t.Fatalf("workers=%d: summary %+v != baseline %+v", workers, got, base)
		}
	}
}

// The one-shot Solve path must honor WithDecomposition and stay
// bit-identical to the default monolithic solve.
func TestSolveWithDecomposition(t *testing.T) {
	in, err := GenerateWorkload("diurnal", WorkloadSpec{N: 256, M: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := OptimalSchedule(in, WithDecomposition(true), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(mono.Phases) != len(dec.Phases) {
		t.Fatalf("phases: mono %d, decomposed %d", len(mono.Phases), len(dec.Phases))
	}
	for i := range mono.Phases {
		if mono.Phases[i].Speed != dec.Phases[i].Speed {
			t.Fatalf("phase %d speed: mono %v, decomposed %v", i, mono.Phases[i].Speed, dec.Phases[i].Speed)
		}
	}
	if len(mono.Schedule.Segments) != len(dec.Schedule.Segments) {
		t.Fatalf("segments: mono %d, decomposed %d", len(mono.Schedule.Segments), len(dec.Schedule.Segments))
	}
	for i := range mono.Schedule.Segments {
		if mono.Schedule.Segments[i] != dec.Schedule.Segments[i] {
			t.Fatalf("segment %d: mono %v, decomposed %v", i, mono.Schedule.Segments[i], dec.Schedule.Segments[i])
		}
	}
	if err := Verify(dec.Schedule, in); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTraceStreamRejectsBadInput(t *testing.T) {
	p := MustAlpha(3)
	if _, err := SolveTraceStream(strings.NewReader("not a trace\n"), p); err == nil {
		t.Error("malformed header accepted")
	}
	if _, err := SolveTraceStream(strings.NewReader(`{"format":"mpss-trace-v1","m":2}`+"\n"), p); err == nil {
		t.Error("empty trace accepted")
	}
	unsorted := `{"format":"mpss-trace-v1","m":2}
{"id":1,"release":5,"deadline":6,"work":1}
{"id":2,"release":0,"deadline":1,"work":1}
`
	if _, err := SolveTraceStream(strings.NewReader(unsorted), p); err == nil {
		t.Error("unsorted trace accepted")
	}
	if !IsTraceStream([]byte(unsorted)) {
		t.Error("IsTraceStream rejected a trace header")
	}
}
