package mpss

import (
	"context"
	"fmt"

	"mpss/internal/online"
	"mpss/internal/opt"
	"mpss/internal/pool"
)

// WithContext makes a solve cancelable: the solver polls ctx at its
// natural work boundaries — every phase/round of the offline optimum
// (each round is one max-flow computation), every OA replanning event,
// every AVR interval, and every probe wave of the cap search — and a
// canceled or expired context unwinds the solve promptly with an error
// wrapping ErrCanceled. Cancellation never corrupts a Solver session:
// the arenas are rebuilt from scratch at the next call, so a Solver
// that had a solve canceled keeps producing correct results.
func WithContext(ctx context.Context) SolveOption {
	return func(c *solveConfig) { c.ctx = ctx }
}

// Solver is a reusable solver session: the flow-network arenas, the
// job×interval activity index and all round bookkeeping are retained
// between calls, so a long-lived caller (a server worker, the online
// planner, a benchmark loop) pays the allocation cost once and solves
// at steady state without rebuilding graph storage per request.
//
// Construct with NewSolver, optionally passing SolveOptions that become
// the session defaults (recorder, parallelism, context); per-call
// options are applied on top. The zero value is not usable.
//
// A Solver is NOT safe for concurrent use — use one per goroutine. The
// package-level functions (OptimalSchedule, OA, ...) remain the
// convenient one-shot form; they draw a pooled session per call and
// return bit-identical results to the equivalent Solver method.
type Solver struct {
	cfg  solveConfig
	os   *opt.Solver
	sess *opt.Session // active streaming session, nil outside Begin/End
}

// NewSolver returns a fresh solver session with the given default
// options.
func NewSolver(opts ...SolveOption) *Solver {
	return &Solver{cfg: buildSolveConfig(opts), os: opt.NewSolver()}
}

// merge layers per-call options over the session defaults.
func (s *Solver) merge(opts []SolveOption) solveConfig {
	cfg := s.cfg
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Solve computes an energy-optimal migratory schedule (the package-level
// OptimalSchedule on this session's arenas).
func (s *Solver) Solve(in *Instance, opts ...SolveOption) (*OptimalResult, error) {
	if err := ValidateInstance(in); err != nil {
		return nil, err
	}
	cfg := s.merge(opts)
	return s.os.Schedule(in,
		opt.WithRecorder(cfg.rec), opt.WithParallelism(cfg.par), opt.WithContext(cfg.ctx),
		opt.WithContraction(!cfg.noContract), opt.WithDecomposition(cfg.decompose))
}

// SolveExact is Solve with all phase decisions carried out in exact
// rational arithmetic.
func (s *Solver) SolveExact(in *Instance, opts ...SolveOption) (*OptimalResult, error) {
	if err := ValidateInstance(in); err != nil {
		return nil, err
	}
	cfg := s.merge(opts)
	return s.os.Schedule(in,
		opt.Exact(), opt.WithRecorder(cfg.rec), opt.WithContext(cfg.ctx),
		opt.WithContraction(!cfg.noContract), opt.WithDecomposition(cfg.decompose))
}

// OA runs the online Optimal Available simulation; its per-arrival
// replans reuse this session's arenas.
func (s *Solver) OA(in *Instance, opts ...SolveOption) (*OAResult, error) {
	if err := ValidateInstance(in); err != nil {
		return nil, err
	}
	cfg := s.merge(opts)
	return online.OA(in,
		online.WithRecorder(cfg.rec), online.WithContext(cfg.ctx), online.WithSolver(s.os))
}

// AVR runs the online Average Rate simulation.
func (s *Solver) AVR(in *Instance, opts ...SolveOption) (*AVRResult, error) {
	if err := ValidateInstance(in); err != nil {
		return nil, err
	}
	cfg := s.merge(opts)
	return online.AVR(in,
		online.WithRecorder(cfg.rec), online.WithContext(cfg.ctx))
}

// FeasibleAtSpeed reports whether the instance fits under a maximum
// processor speed cap, via one max-flow test.
func (s *Solver) FeasibleAtSpeed(in *Instance, cap float64, opts ...SolveOption) (bool, error) {
	cfg := s.merge(opts)
	return opt.FeasibleAtSpeedCtx(cfg.ctx, in, cap, cfg.rec)
}

// FeasibleAtSpeedBatch answers FeasibleAtSpeed for many candidate caps
// at once; see the package-level function.
func (s *Solver) FeasibleAtSpeedBatch(in *Instance, caps []float64, opts ...SolveOption) ([]bool, error) {
	cfg := s.merge(opts)
	workers := cfg.par
	if workers < 1 {
		workers = 1
	}
	return opt.FeasibleAtSpeedBatchCtx(cfg.ctx, in, caps, workers, cfg.rec)
}

// MinFeasibleCap returns the smallest processor speed cap at which the
// instance remains feasible, to relative tolerance rel; see the
// package-level function.
func (s *Solver) MinFeasibleCap(in *Instance, rel float64, opts ...SolveOption) (float64, error) {
	cfg := s.merge(opts)
	return opt.MinFeasibleCapObserved(in, rel, cfg.rec, cfg.capOptions()...)
}

// SessionResult is the outcome of one Resolve of a streaming session:
// the optimal schedule of the session's current job set, plus the
// delta-solve metadata.
type SessionResult struct {
	Result *OptimalResult
	// Incremental reports that the resolve warm-started from the
	// previous resolve's flow network instead of rebuilding it.
	Incremental bool
	// Cap echoes the session's speed cap (0 = none); CapFeasible is the
	// feasibility verdict at that cap, meaningful only when Cap > 0.
	Cap         float64
	CapFeasible bool
}

// Begin starts a streaming session over the instance: a mutable job set
// revised by AddJob / RemoveJob / SetCap deltas and re-solved by
// Resolve, which warm-starts from the previous resolve's flow network
// whenever the mutations permit. Each Resolve returns bit-identical
// results to a one-shot Solve of the session's current job set. Any
// previously active session on this Solver is replaced.
func (s *Solver) Begin(in *Instance, opts ...SolveOption) error {
	return s.begin(in, false, opts)
}

// BeginExact is Begin with all phase decisions carried out in exact
// rational arithmetic: every Resolve matches a one-shot SolveExact.
func (s *Solver) BeginExact(in *Instance, opts ...SolveOption) error {
	return s.begin(in, true, opts)
}

func (s *Solver) begin(in *Instance, exact bool, opts []SolveOption) error {
	if err := ValidateInstance(in); err != nil {
		return err
	}
	cfg := s.merge(opts)
	optOpts := []opt.Option{
		opt.WithRecorder(cfg.rec), opt.WithParallelism(cfg.par), opt.WithContext(cfg.ctx),
		opt.WithContraction(!cfg.noContract),
	}
	if exact {
		optOpts = append(optOpts, opt.Exact())
	}
	sess, err := s.os.NewSession(in, optOpts...)
	if err != nil {
		return err
	}
	s.sess = sess
	return nil
}

// errNoSession is the uniform "mutation without Begin" failure; it
// wraps ErrInvalidInstance so callers map it like any other bad input.
func errNoSession() error {
	return fmt.Errorf("mpss: no active session (call Begin first): %w", ErrInvalidInstance)
}

// AddJob appends a job to the active session. The job set changes
// structurally, so the next Resolve rebuilds its network.
func (s *Solver) AddJob(j Job) error {
	if s.sess == nil {
		return errNoSession()
	}
	return s.sess.AddJob(j)
}

// RemoveJob removes the job with the given ID from the active session,
// draining its flow from the warm network in place — the incremental
// mutation path a later Resolve re-augments from.
func (s *Solver) RemoveJob(id int) error {
	if s.sess == nil {
		return errNoSession()
	}
	return s.sess.RemoveJob(id)
}

// SetCap retunes the active session's maximum-speed cap; 0 clears it.
// While a cap is set, every Resolve also reports whether the current
// job set remains feasible under it (SessionResult.CapFeasible).
func (s *Solver) SetCap(cap float64) error {
	if s.sess == nil {
		return errNoSession()
	}
	return s.sess.SetCap(cap)
}

// Resolve solves the active session's current job set. Per-call options
// may override the context; an error leaves the session usable (the
// next Resolve rebuilds from scratch).
func (s *Solver) Resolve(opts ...SolveOption) (*SessionResult, error) {
	if s.sess == nil {
		return nil, errNoSession()
	}
	cfg := s.merge(opts)
	r, err := s.sess.Resolve(cfg.ctx)
	if err != nil {
		return nil, err
	}
	return &SessionResult{
		Result:      r.Res,
		Incremental: r.Incremental,
		Cap:         r.Cap,
		CapFeasible: r.CapFeasible,
	}, nil
}

// SessionJobs returns a copy of the active session's current job set
// (nil when no session is active).
func (s *Solver) SessionJobs() []Job {
	if s.sess == nil {
		return nil
	}
	return s.sess.Jobs()
}

// End tears the active session down, releasing its persistent networks.
// The Solver remains usable for one-shot solves and a later Begin.
func (s *Solver) End() {
	if s.sess != nil {
		s.sess.Close()
		s.sess = nil
	}
}

// capOptions translates a solve config into the cap-search option set.
func (cfg *solveConfig) capOptions() []opt.CapOption {
	capOpts := []opt.CapOption{
		opt.WithCapContext(cfg.ctx),
		opt.WithCapContraction(!cfg.noContract),
		opt.WithApproxFirst(!cfg.noApprox),
	}
	if cfg.par > 1 {
		capOpts = append(capOpts, opt.WithProbeParallelism(cfg.par))
	}
	if cfg.capBracket {
		capOpts = append(capOpts, opt.WithBracket(cfg.capLo, cfg.capHi))
	}
	return capOpts
}

// oneShotArenas backs the package-level entry points: each call borrows
// a solver arena, wraps it in a throwaway session and returns it, so
// repeated one-shot calls reuse graph storage exactly as the pre-session
// API did.
var oneShotArenas pool.FreeList[opt.Solver]

// oneShot builds a throwaway session over a pooled arena. The release
// function must be called exactly once, after the last use of the
// session.
func oneShot(opts []SolveOption) (*Solver, func()) {
	arena := oneShotArenas.Get()
	s := &Solver{cfg: buildSolveConfig(opts), os: arena}
	return s, func() {
		s.os = nil
		oneShotArenas.Put(arena)
	}
}
