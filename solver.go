package mpss

import (
	"context"

	"mpss/internal/online"
	"mpss/internal/opt"
	"mpss/internal/pool"
)

// WithContext makes a solve cancelable: the solver polls ctx at its
// natural work boundaries — every phase/round of the offline optimum
// (each round is one max-flow computation), every OA replanning event,
// every AVR interval, and every probe wave of the cap search — and a
// canceled or expired context unwinds the solve promptly with an error
// wrapping ErrCanceled. Cancellation never corrupts a Solver session:
// the arenas are rebuilt from scratch at the next call, so a Solver
// that had a solve canceled keeps producing correct results.
func WithContext(ctx context.Context) SolveOption {
	return func(c *solveConfig) { c.ctx = ctx }
}

// Solver is a reusable solver session: the flow-network arenas, the
// job×interval activity index and all round bookkeeping are retained
// between calls, so a long-lived caller (a server worker, the online
// planner, a benchmark loop) pays the allocation cost once and solves
// at steady state without rebuilding graph storage per request.
//
// Construct with NewSolver, optionally passing SolveOptions that become
// the session defaults (recorder, parallelism, context); per-call
// options are applied on top. The zero value is not usable.
//
// A Solver is NOT safe for concurrent use — use one per goroutine. The
// package-level functions (OptimalSchedule, OA, ...) remain the
// convenient one-shot form; they draw a pooled session per call and
// return bit-identical results to the equivalent Solver method.
type Solver struct {
	cfg solveConfig
	os  *opt.Solver
}

// NewSolver returns a fresh solver session with the given default
// options.
func NewSolver(opts ...SolveOption) *Solver {
	return &Solver{cfg: buildSolveConfig(opts), os: opt.NewSolver()}
}

// merge layers per-call options over the session defaults.
func (s *Solver) merge(opts []SolveOption) solveConfig {
	cfg := s.cfg
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Solve computes an energy-optimal migratory schedule (the package-level
// OptimalSchedule on this session's arenas).
func (s *Solver) Solve(in *Instance, opts ...SolveOption) (*OptimalResult, error) {
	if err := ValidateInstance(in); err != nil {
		return nil, err
	}
	cfg := s.merge(opts)
	return s.os.Schedule(in,
		opt.WithRecorder(cfg.rec), opt.WithParallelism(cfg.par), opt.WithContext(cfg.ctx),
		opt.WithContraction(!cfg.noContract))
}

// SolveExact is Solve with all phase decisions carried out in exact
// rational arithmetic.
func (s *Solver) SolveExact(in *Instance, opts ...SolveOption) (*OptimalResult, error) {
	if err := ValidateInstance(in); err != nil {
		return nil, err
	}
	cfg := s.merge(opts)
	return s.os.Schedule(in,
		opt.Exact(), opt.WithRecorder(cfg.rec), opt.WithContext(cfg.ctx),
		opt.WithContraction(!cfg.noContract))
}

// OA runs the online Optimal Available simulation; its per-arrival
// replans reuse this session's arenas.
func (s *Solver) OA(in *Instance, opts ...SolveOption) (*OAResult, error) {
	if err := ValidateInstance(in); err != nil {
		return nil, err
	}
	cfg := s.merge(opts)
	return online.OA(in,
		online.WithRecorder(cfg.rec), online.WithContext(cfg.ctx), online.WithSolver(s.os))
}

// AVR runs the online Average Rate simulation.
func (s *Solver) AVR(in *Instance, opts ...SolveOption) (*AVRResult, error) {
	if err := ValidateInstance(in); err != nil {
		return nil, err
	}
	cfg := s.merge(opts)
	return online.AVR(in,
		online.WithRecorder(cfg.rec), online.WithContext(cfg.ctx))
}

// FeasibleAtSpeed reports whether the instance fits under a maximum
// processor speed cap, via one max-flow test.
func (s *Solver) FeasibleAtSpeed(in *Instance, cap float64, opts ...SolveOption) (bool, error) {
	cfg := s.merge(opts)
	return opt.FeasibleAtSpeedCtx(cfg.ctx, in, cap, cfg.rec)
}

// FeasibleAtSpeedBatch answers FeasibleAtSpeed for many candidate caps
// at once; see the package-level function.
func (s *Solver) FeasibleAtSpeedBatch(in *Instance, caps []float64, opts ...SolveOption) ([]bool, error) {
	cfg := s.merge(opts)
	workers := cfg.par
	if workers < 1 {
		workers = 1
	}
	return opt.FeasibleAtSpeedBatchCtx(cfg.ctx, in, caps, workers, cfg.rec)
}

// MinFeasibleCap returns the smallest processor speed cap at which the
// instance remains feasible, to relative tolerance rel; see the
// package-level function.
func (s *Solver) MinFeasibleCap(in *Instance, rel float64, opts ...SolveOption) (float64, error) {
	cfg := s.merge(opts)
	return opt.MinFeasibleCapObserved(in, rel, cfg.rec, cfg.capOptions()...)
}

// capOptions translates a solve config into the cap-search option set.
func (cfg *solveConfig) capOptions() []opt.CapOption {
	capOpts := []opt.CapOption{
		opt.WithCapContext(cfg.ctx),
		opt.WithCapContraction(!cfg.noContract),
		opt.WithApproxFirst(!cfg.noApprox),
	}
	if cfg.par > 1 {
		capOpts = append(capOpts, opt.WithProbeParallelism(cfg.par))
	}
	if cfg.capBracket {
		capOpts = append(capOpts, opt.WithBracket(cfg.capLo, cfg.capHi))
	}
	return capOpts
}

// oneShotArenas backs the package-level entry points: each call borrows
// a solver arena, wraps it in a throwaway session and returns it, so
// repeated one-shot calls reuse graph storage exactly as the pre-session
// API did.
var oneShotArenas pool.FreeList[opt.Solver]

// oneShot builds a throwaway session over a pooled arena. The release
// function must be called exactly once, after the last use of the
// session.
func oneShot(opts []SolveOption) (*Solver, func()) {
	arena := oneShotArenas.Get()
	s := &Solver{cfg: buildSolveConfig(opts), os: arena}
	return s, func() {
		s.os = nil
		oneShotArenas.Put(arena)
	}
}
