#!/bin/sh
# Streaming-session smoke test: build mpss-served, boot it with a short
# session TTL, open a session, stream remove/add/cap deltas, check each
# delta's energy against the one-shot /v1/solve/optimal answer for the
# same job set, long-poll the latest resolve, delete the session, let a
# second session expire past the TTL, then SIGTERM and require a clean
# drain. Complements the in-process httptest suite by covering the real
# binary's session flags and the wire protocol end to end.
#
# Run from the repository root (make session-smoke does).
set -u

GO=${GO:-go}
CURL=${CURL:-curl}
tmp=$(mktemp -d)
fail=0
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

if ! command -v "$CURL" >/dev/null 2>&1; then
    echo "session-smoke: skipped ($CURL not available)" >&2
    exit 0
fi

if ! $GO build -o "$tmp/mpss-served" ./cmd/mpss-served; then
    echo "session-smoke: build failed" >&2
    exit 1
fi

"$tmp/mpss-served" -addr 127.0.0.1:0 -workers 2 -session-ttl 2s 2>"$tmp/served.err" &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/.*"msg":"listening".*"addr":"\([^"]*\)".*/\1/p' "$tmp/served.err" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "session-smoke: daemon died before readiness:" >&2
        sed 's/^/    /' "$tmp/served.err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "session-smoke: no readiness record within 10s" >&2
    exit 1
fi
base="http://$addr"

# jsonfield FILE NAME — extracts a scalar JSON field (number or string).
jsonfield() {
    sed -n "s/.*\"$2\":\"\{0,1\}\([^,\"}]*\)\"\{0,1\}[,}].*/\1/p" "$1" | head -n 1
}

# req NAME METHOD WANT_STATUS URL [BODY] — issues the request, checks
# the status, leaves the body in $tmp/body.
req() {
    name=$1 method=$2 want=$3 url=$4
    if [ $# -ge 5 ]; then
        status=$($CURL -s -X "$method" -o "$tmp/body" -w '%{http_code}' -d "$5" "$base$url")
    else
        status=$($CURL -s -X "$method" -o "$tmp/body" -w '%{http_code}' "$base$url")
    fi
    if [ "$status" != "$want" ]; then
        echo "session-smoke: $name: status $status, want $want" >&2
        sed 's/^/    /' "$tmp/body" >&2
        fail=1
    fi
}

# oneshot JOBS — solves {m:2, jobs:JOBS} one-shot and prints the energy.
oneshot() {
    $CURL -s -d "{\"m\":2,\"jobs\":$1}" "$base/v1/solve/optimal" >"$tmp/oneshot"
    jsonfield "$tmp/oneshot" energy
}

# checkenergy NAME JOBS — requires $tmp/body's energy == one-shot(JOBS).
checkenergy() {
    got=$(jsonfield "$tmp/body" energy)
    want=$(oneshot "$2")
    if [ -z "$got" ] || [ "$got" != "$want" ]; then
        echo "session-smoke: $1: session energy \"$got\", one-shot \"$want\"" >&2
        fail=1
    fi
}

j1='{"id":1,"release":0,"deadline":4,"work":8}'
j2='{"id":2,"release":1,"deadline":5,"work":2}'
j3='{"id":3,"release":2,"deadline":6,"work":3}'

# Open the session and compare the initial resolve to one-shot.
req "create" POST 200 /v1/session "{\"m\":2,\"jobs\":[$j1,$j2]}"
sid=$(jsonfield "$tmp/body" session_id)
if [ -z "$sid" ]; then
    echo "session-smoke: create returned no session_id" >&2
    sed 's/^/    /' "$tmp/body" >&2
    exit 1
fi
checkenergy "create" "[$j1,$j2]"

# Stream deltas: add, remove, cap retune — each against one-shot.
req "delta add" POST 200 "/v1/session/$sid/delta" "{\"add_jobs\":[$j3]}"
checkenergy "delta add" "[$j1,$j2,$j3]"

req "delta remove" POST 200 "/v1/session/$sid/delta" '{"remove_ids":[1]}'
checkenergy "delta remove" "[$j2,$j3]"

req "delta cap" POST 200 "/v1/session/$sid/delta" '{"cap":1000}'
if ! grep -q '"cap_feasible":true' "$tmp/body"; then
    echo "session-smoke: delta cap: cap 1000 not reported feasible:" >&2
    sed 's/^/    /' "$tmp/body" >&2
    fail=1
fi

# The latest resolve is served on GET; seq counts the four publishes.
req "get" GET 200 "/v1/session/$sid"
seq=$(jsonfield "$tmp/body" seq)
if [ "$seq" != "4" ]; then
    echo "session-smoke: get: seq \"$seq\", want 4" >&2
    fail=1
fi

# Session counters made it to the metrics surface.
req "metrics" GET 200 /v1/metrics
if ! grep -q '"server.delta_solves": *3' "$tmp/body"; then
    echo "session-smoke: metrics: server.delta_solves != 3:" >&2
    grep -o '"server\.[a-z_]*": *[0-9-]*' "$tmp/body" | sed 's/^/    /' >&2
    fail=1
fi

# Teardown: DELETE, then everything under the ID is 404.
req "delete" DELETE 204 "/v1/session/$sid"
req "get after delete" GET 404 "/v1/session/$sid"

# TTL: an idle session is evicted by the janitor.
req "create evictee" POST 200 /v1/session "{\"m\":2,\"jobs\":[$j1]}"
sid2=$(jsonfield "$tmp/body" session_id)
sleep 3
req "get after ttl" GET 404 "/v1/session/$sid2"
req "metrics after ttl" GET 200 /v1/metrics
if ! grep -q '"server.sessions_evicted": *1' "$tmp/body"; then
    echo "session-smoke: metrics: server.sessions_evicted != 1" >&2
    fail=1
fi

# Graceful drain with the session machinery running.
kill -TERM "$pid"
wait "$pid"
rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "session-smoke: SIGTERM exit $rc, want 0:" >&2
    sed 's/^/    /' "$tmp/served.err" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "session-smoke: FAIL" >&2
    exit 1
fi
echo "session-smoke: ok"
