#!/bin/sh
# Daemon smoke test: build mpss-served, boot it on an ephemeral port,
# exercise a solve (twice, so the second hits the result cache), the
# error mapping, /v1/metrics, /metrics (Prometheus), the liveness and
# readiness probes, then SIGTERM it and require a clean drain (exit 0).
# Complements the in-process httptest suite in internal/server by
# covering the real binary: flag parsing, the readiness record, signal
# handling and process exit codes.
#
# Run from the repository root (make serve-smoke does).
set -u

GO=${GO:-go}
CURL=${CURL:-curl}
tmp=$(mktemp -d)
fail=0
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

if ! command -v "$CURL" >/dev/null 2>&1; then
    echo "serve-smoke: skipped ($CURL not available)" >&2
    exit 0
fi

if ! $GO build -o "$tmp/mpss-served" ./cmd/mpss-served; then
    echo "serve-smoke: build failed" >&2
    exit 1
fi

"$tmp/mpss-served" -addr 127.0.0.1:0 -workers 2 -cache 64 2>"$tmp/served.err" &
pid=$!

# The structured readiness record {"msg":"listening","addr":...} is the
# documented boot signal; wait for it and take the address from it.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/.*"msg":"listening".*"addr":"\([^"]*\)".*/\1/p' "$tmp/served.err" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: daemon died before readiness:" >&2
        sed 's/^/    /' "$tmp/served.err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "serve-smoke: no readiness record within 10s" >&2
    exit 1
fi
base="http://$addr"

# req NAME WANT_STATUS MATCH URL [BODY] — POSTs BODY (or GETs), checks
# the HTTP status and that the response body contains MATCH.
req() {
    name=$1 want=$2 match=$3 url=$4
    if [ $# -ge 5 ]; then
        status=$($CURL -s -o "$tmp/body" -w '%{http_code}' -d "$5" "$base$url")
    else
        status=$($CURL -s -o "$tmp/body" -w '%{http_code}' "$base$url")
    fi
    if [ "$status" != "$want" ]; then
        echo "serve-smoke: $name: status $status, want $want" >&2
        sed 's/^/    /' "$tmp/body" >&2
        fail=1
    fi
    if ! grep -q "$match" "$tmp/body"; then
        echo "serve-smoke: $name: body lacks \"$match\":" >&2
        sed 's/^/    /' "$tmp/body" >&2
        fail=1
    fi
}

inst='{"m":2,"jobs":[{"id":1,"release":0,"deadline":4,"work":8},{"id":2,"release":1,"deadline":5,"work":2}]}'

req "healthz" 200 '"ok"' /v1/healthz
req "readyz" 200 '"ready"' /v1/readyz
req "solve" 200 '"energy"' /v1/solve/optimal "$inst"
req "solve again" 200 '"energy"' /v1/solve/optimal "$inst"
req "oa" 200 '"bound"' /v1/solve/oa "$inst"
req "feasible" 200 '"feasible"' /v1/feasible '{"m":2,"jobs":[{"id":1,"release":0,"deadline":4,"work":8}],"cap":100}'
req "mincap" 200 '"cap"' /v1/mincap "$inst"
req "bad instance" 400 'invalid_instance' /v1/solve/optimal '{"m":0,"jobs":[{"id":1,"release":0,"deadline":1,"work":1}]}'
req "infeasible cap" 422 'infeasible' /v1/solve/atcap '{"m":2,"jobs":[{"id":1,"release":0,"deadline":4,"work":8}],"cap":0.1}'
req "metrics" 200 'server.cache_hits' /v1/metrics
if ! grep -q '"server.cache_hits": *[1-9]' "$tmp/body"; then
    echo "serve-smoke: repeated solve did not hit the cache:" >&2
    grep -o '"server\.[a-z_]*": *[0-9]*' "$tmp/body" | sed 's/^/    /' >&2
    fail=1
fi

# Prometheus exposition: the scrape endpoint must serve the text format
# with the right media type and carry the per-endpoint request counters.
ctype=$($CURL -s -o "$tmp/prom" -w '%{content_type}' "$base/metrics")
case "$ctype" in
    text/plain*version=0.0.4*) ;;
    *)
        echo "serve-smoke: /metrics content type \"$ctype\", want text/plain; version=0.0.4" >&2
        fail=1
        ;;
esac
if ! grep -q '^mpss_server_http_requests_total{code="200",endpoint="optimal"}' "$tmp/prom"; then
    echo "serve-smoke: /metrics lacks the optimal endpoint request counter" >&2
    fail=1
fi
if ! grep -q '_bucket{.*le="+Inf"' "$tmp/prom"; then
    echo "serve-smoke: /metrics lacks histogram +Inf buckets" >&2
    fail=1
fi

# Every response carries a request ID; a caller-supplied one is echoed.
$CURL -s -o /dev/null -D "$tmp/hdrs" -H 'X-Request-ID: smoke-42' "$base/v1/healthz"
if ! grep -qi '^x-request-id: *smoke-42' "$tmp/hdrs"; then
    echo "serve-smoke: X-Request-ID not echoed:" >&2
    sed 's/^/    /' "$tmp/hdrs" >&2
    fail=1
fi

# Graceful drain: SIGTERM must exit 0 after reporting the drain.
kill -TERM "$pid"
wait "$pid"
rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: SIGTERM exit $rc, want 0:" >&2
    sed 's/^/    /' "$tmp/served.err" >&2
    fail=1
fi
if ! grep -q "drained" "$tmp/served.err"; then
    echo "serve-smoke: no drain confirmation on stderr" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "serve-smoke: FAIL" >&2
    exit 1
fi
echo "serve-smoke: ok"
