#!/bin/sh
# Daemon smoke test: build mpss-served, boot it on an ephemeral port,
# exercise a solve (twice, so the second hits the result cache), the
# error mapping, /v1/metrics and /v1/healthz, then SIGTERM it and
# require a clean drain (exit 0). Complements the in-process httptest
# suite in internal/server by covering the real binary: flag parsing,
# the readiness line, signal handling and process exit codes.
#
# Run from the repository root (make serve-smoke does).
set -u

GO=${GO:-go}
CURL=${CURL:-curl}
tmp=$(mktemp -d)
fail=0
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

if ! command -v "$CURL" >/dev/null 2>&1; then
    echo "serve-smoke: skipped ($CURL not available)" >&2
    exit 0
fi

if ! $GO build -o "$tmp/mpss-served" ./cmd/mpss-served; then
    echo "serve-smoke: build failed" >&2
    exit 1
fi

"$tmp/mpss-served" -addr 127.0.0.1:0 -workers 2 -cache 64 2>"$tmp/served.err" &
pid=$!

# The readiness line "mpss-served: listening on HOST:PORT" is the
# documented boot signal; wait for it and take the address from it.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^mpss-served: listening on //p' "$tmp/served.err")
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: daemon died before readiness:" >&2
        sed 's/^/    /' "$tmp/served.err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "serve-smoke: no readiness line within 10s" >&2
    exit 1
fi
base="http://$addr"

# req NAME WANT_STATUS MATCH URL [BODY] — POSTs BODY (or GETs), checks
# the HTTP status and that the response body contains MATCH.
req() {
    name=$1 want=$2 match=$3 url=$4
    if [ $# -ge 5 ]; then
        status=$($CURL -s -o "$tmp/body" -w '%{http_code}' -d "$5" "$base$url")
    else
        status=$($CURL -s -o "$tmp/body" -w '%{http_code}' "$base$url")
    fi
    if [ "$status" != "$want" ]; then
        echo "serve-smoke: $name: status $status, want $want" >&2
        sed 's/^/    /' "$tmp/body" >&2
        fail=1
    fi
    if ! grep -q "$match" "$tmp/body"; then
        echo "serve-smoke: $name: body lacks \"$match\":" >&2
        sed 's/^/    /' "$tmp/body" >&2
        fail=1
    fi
}

inst='{"m":2,"jobs":[{"id":1,"release":0,"deadline":4,"work":8},{"id":2,"release":1,"deadline":5,"work":2}]}'

req "healthz" 200 '"ok"' /v1/healthz
req "solve" 200 '"energy"' /v1/solve/optimal "$inst"
req "solve again" 200 '"energy"' /v1/solve/optimal "$inst"
req "oa" 200 '"bound"' /v1/solve/oa "$inst"
req "feasible" 200 '"feasible"' /v1/feasible '{"m":2,"jobs":[{"id":1,"release":0,"deadline":4,"work":8}],"cap":100}'
req "mincap" 200 '"cap"' /v1/mincap "$inst"
req "bad instance" 400 'invalid_instance' /v1/solve/optimal '{"m":0,"jobs":[{"id":1,"release":0,"deadline":1,"work":1}]}'
req "infeasible cap" 422 'infeasible' /v1/solve/atcap '{"m":2,"jobs":[{"id":1,"release":0,"deadline":4,"work":8}],"cap":0.1}'
req "metrics" 200 'server.cache_hits' /v1/metrics
if ! grep -q '"server.cache_hits": *[1-9]' "$tmp/body"; then
    echo "serve-smoke: repeated solve did not hit the cache:" >&2
    grep -o '"server\.[a-z_]*": *[0-9]*' "$tmp/body" | sed 's/^/    /' >&2
    fail=1
fi

# Graceful drain: SIGTERM must exit 0 after reporting the drain.
kill -TERM "$pid"
wait "$pid"
rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: SIGTERM exit $rc, want 0:" >&2
    sed 's/^/    /' "$tmp/served.err" >&2
    fail=1
fi
if ! grep -q "drained" "$tmp/served.err"; then
    echo "serve-smoke: no drain confirmation on stderr" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "serve-smoke: FAIL" >&2
    exit 1
fi
echo "serve-smoke: ok"
