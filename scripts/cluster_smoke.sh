#!/bin/sh
# Cluster smoke test: boot the real mpss-front binary in exec mode (it
# spawns its own mpss-served children), drive it with mpss-loadgen,
# SIGKILL one replica mid-run, and assert the cluster absorbs all of it:
#
#   - the front reaches readiness with -min healthy replicas;
#   - the SLO verdict passes despite the mid-run replica kill (the ring
#     reroutes; clients never see the death);
#   - the solver-driven autoscaler scales the fleet up under load
#     (a scale event with to > from in /v1/cluster/status) and back
#     down to -min once the load stops;
#   - requests actually spread over multiple replicas (cache locality
#     is per-replica, so the proxied counter must show >= 2 members);
#   - SIGTERM drains the front to exit 0 and leaves no orphaned
#     replica processes behind.
#
# Run from the repository root (make cluster-smoke does).
set -u

GO=${GO:-go}
CURL=${CURL:-curl}
tmp=$(mktemp -d)
fail=0
front_pid=""

cleanup() {
    [ -n "$front_pid" ] && kill -KILL "$front_pid" 2>/dev/null
    # Children are SIGTERMed by the front's drain; sweep stragglers in
    # case the front itself was killed.
    pkill -KILL -f "$tmp/mpss-served" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

for tool in "$CURL" pgrep; do
    if ! command -v "$tool" >/dev/null 2>&1; then
        echo "cluster-smoke: skipped ($tool not available)" >&2
        exit 0
    fi
done

if ! $GO build -o "$tmp/mpss-served" ./cmd/mpss-served ||
    ! $GO build -o "$tmp/mpss-front" ./cmd/mpss-front ||
    ! $GO build -o "$tmp/mpss-loadgen" ./cmd/mpss-loadgen; then
    echo "cluster-smoke: build failed" >&2
    exit 1
fi

# Tiny target-util makes millisecond solves overload the planned
# capacity, so a short burst deterministically trips the scale-up; the
# short windows make scale-down visible within the smoke budget.
"$tmp/mpss-front" -addr 127.0.0.1:0 \
    -served-bin "$tmp/mpss-served" -served-flags "-workers 2 -cache 256" \
    -min 2 -max 3 \
    -probe-interval 150ms -scale-interval 400ms \
    -workers-per-replica 1 -target-util 0.01 -scale-down-after 2 \
    2>"$tmp/front.err" &
front_pid=$!

addr=""
i=0
while [ $i -lt 150 ]; do
    addr=$(sed -n 's/.*"msg":"listening".*"addr":"\([^"]*\)".*/\1/p' "$tmp/front.err" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$front_pid" 2>/dev/null; then
        echo "cluster-smoke: front died before readiness:" >&2
        sed 's/^/    /' "$tmp/front.err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "cluster-smoke: no readiness record within 15s" >&2
    exit 1
fi
base="http://$addr"

healthy_count() {
    $CURL -s "$base/v1/cluster/status" | grep -o '"state":"healthy"' | wc -l
}

if [ "$(healthy_count)" -lt 2 ]; then
    echo "cluster-smoke: front ready with fewer than 2 healthy replicas:" >&2
    $CURL -s "$base/v1/cluster/status" | sed 's/^/    /' >&2
    fail=1
fi

# Open-loop burst through the front. Mostly unique instances so the
# fleet does real solve work (cache hits carry no autoscaler demand).
# The error budget is the hard assertion: a replica dies mid-run and
# no failure may reach a client.
"$tmp/mpss-loadgen" -url "$base" -duration 4s -rate 60 \
    -unique 0.9 -warm-pool 4 -jobs 12 \
    -slo-p99 5s -slo-error-rate 0 -o "$tmp/report.json" &
load_pid=$!

# Let load build, then SIGKILL one spawned replica mid-run: the probe
# loop must confirm the death, reap the child, and the autoscaler must
# respawn capacity — all while the ring routes around the corpse.
sleep 1.5
victim=$(pgrep -P "$front_pid" | head -n 1)
if [ -n "$victim" ]; then
    kill -KILL "$victim"
else
    echo "cluster-smoke: no replica child found to kill" >&2
    fail=1
fi

if ! wait "$load_pid"; then
    echo "cluster-smoke: loadgen SLO run failed:" >&2
    sed 's/^/    /' "$tmp/report.json" 2>/dev/null >&2
    fail=1
fi
if ! grep -q '"completed": *[1-9]' "$tmp/report.json"; then
    echo "cluster-smoke: no completed requests in report" >&2
    fail=1
fi

$CURL -s -o "$tmp/cluster.json" "$base/v1/cluster/status"

# The autoscaler must have scaled up under load: some event with
# to > from. With -min 2 -max 3 that is exactly 2 -> 3.
if ! grep -q '"from":2,"to":3' "$tmp/cluster.json"; then
    echo "cluster-smoke: no scale-up event in cluster status:" >&2
    sed 's/^/    /' "$tmp/cluster.json" >&2
    fail=1
fi

# Requests spread across replicas (per-replica cache locality depends
# on it): the front's proxied counter carries >= 2 replica labels.
$CURL -s -o "$tmp/front.prom" "$base/metrics"
spread=$(grep -c '^mpss_cluster_proxied_total{' "$tmp/front.prom")
if [ "$spread" -lt 2 ]; then
    echo "cluster-smoke: traffic reached only $spread replica(s), want >= 2" >&2
    fail=1
fi

# Quiet after the burst: demand deltas go to zero and the fleet must
# shrink back to -min within a few scale windows.
down=0
i=0
while [ $i -lt 100 ]; do
    if $CURL -s "$base/v1/cluster/status" | grep -q '"from":3,"to":2'; then
        down=1
        break
    fi
    sleep 0.2
    i=$((i + 1))
done
if [ "$down" -ne 1 ]; then
    echo "cluster-smoke: fleet never scaled back down to min:" >&2
    $CURL -s "$base/v1/cluster/status" | sed 's/^/    /' >&2
    fail=1
fi

# The killed child was reaped and replaced, so the fleet must again
# hold exactly -min healthy replicas once the scale-down lands.
i=0
while [ $i -lt 50 ]; do
    [ "$(healthy_count)" -eq 2 ] && break
    sleep 0.2
    i=$((i + 1))
done
if [ "$(healthy_count)" -ne 2 ]; then
    echo "cluster-smoke: healthy replicas after scale-down = $(healthy_count), want 2" >&2
    fail=1
fi

# Graceful drain: SIGTERM exits 0 and no replica child survives.
children=$(pgrep -P "$front_pid")
kill -TERM "$front_pid"
wait "$front_pid"
rc=$?
front_pid=""
if [ "$rc" -ne 0 ]; then
    echo "cluster-smoke: SIGTERM exit $rc, want 0:" >&2
    tail -n 20 "$tmp/front.err" | sed 's/^/    /' >&2
    fail=1
fi
for child in $children; do
    if kill -0 "$child" 2>/dev/null; then
        echo "cluster-smoke: replica pid $child orphaned after drain" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "cluster-smoke: FAIL" >&2
    exit 1
fi
echo "cluster-smoke: ok"
