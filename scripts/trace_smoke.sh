#!/bin/sh
# Streaming-trace smoke test: generate a 50k-job diurnal trace in the
# mpss-trace-v1 JSONL format, solve it streamed (components cut and
# dispatched as the reader crosses zero-active boundaries), and assert
#
#   - the summary accounts for every job and a healthy component count,
#   - the decomposition counters (opt.components, opt.decompose_cuts,
#     opt.component_jobs_max) agree with the summary,
#   - 4 solver workers produce the byte-identical summary as 1 worker
#     (the decomposition differential at the CLI level),
#   - the pipe form (mpss-gen trace | mpss-opt) streams end to end.
#
# Run from the repository root (make trace-smoke does).
set -u

GO=${GO:-go}
N=${TRACE_SMOKE_JOBS:-50000}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
fail=0

for b in mpss-gen mpss-opt; do
    if ! $GO build -o "$tmp/$b" "./cmd/$b"; then
        echo "trace-smoke: building $b failed" >&2
        exit 1
    fi
done

if ! "$tmp/mpss-gen" trace -n "$N" -m 8 -seed 42 -o "$tmp/trace.jsonl"; then
    echo "trace-smoke: trace generation failed" >&2
    exit 1
fi
lines=$(wc -l < "$tmp/trace.jsonl")
if [ "$lines" -ne $((N + 1)) ]; then
    echo "trace-smoke: trace has $lines lines, want $((N + 1)) (header + $N jobs)" >&2
    fail=1
fi

# Streamed solve, 1 worker, with counters.
if ! "$tmp/mpss-opt" -in "$tmp/trace.jsonl" \
    -summary-json "$tmp/sum1.json" -metrics "$tmp/metrics.json" > "$tmp/out1"; then
    echo "trace-smoke: streamed solve failed" >&2
    exit 1
fi

field() { jq -r "$2" "$1"; }

jobs=$(field "$tmp/sum1.json" .jobs)
components=$(field "$tmp/sum1.json" .components)
largest=$(field "$tmp/sum1.json" .max_component_jobs)
energy=$(field "$tmp/sum1.json" .energy)
decompose=$(field "$tmp/sum1.json" .decompose)

[ "$jobs" = "$N" ] || { echo "trace-smoke: summary jobs $jobs != $N" >&2; fail=1; }
[ "$decompose" = "true" ] || { echo "trace-smoke: streamed solve did not decompose" >&2; fail=1; }
# The diurnal generator emits one separable wave per ~64 jobs; demand at
# least half that many components so a cut-condition regression (e.g.
# everything landing in one component) fails loudly.
if [ "$components" -lt $((N / 128)) ]; then
    echo "trace-smoke: only $components components for $N jobs" >&2
    fail=1
fi
if [ "$largest" -ge "$N" ]; then
    echo "trace-smoke: largest component $largest means no cut happened" >&2
    fail=1
fi
case $energy in
    0 | 0.0 | -* | null) echo "trace-smoke: bad energy $energy" >&2; fail=1 ;;
esac

# Counters must agree with the summary.
for pair in "opt.components $components" "opt.decompose_cuts $((components - 1))" "opt.component_jobs_max $largest"; do
    key=${pair% *} want=${pair#* }
    got=$(jq -r ".counters[\"$key\"] // 0" "$tmp/metrics.json")
    if [ "$got" != "$want" ]; then
        echo "trace-smoke: counter $key = $got, want $want" >&2
        fail=1
    fi
done

# Worker-count differential: 4 workers must reproduce the 1-worker
# summary exactly (energy is summed in component order either way).
"$tmp/mpss-opt" -in "$tmp/trace.jsonl" -parallel 4 -summary-json "$tmp/sum4.json" > "$tmp/out4" || {
    echo "trace-smoke: 4-worker solve failed" >&2
    exit 1
}
for key in .jobs .m .components .max_component_jobs .phases .rounds .energy; do
    a=$(field "$tmp/sum1.json" $key)
    b=$(field "$tmp/sum4.json" $key)
    if [ "$a" != "$b" ]; then
        echo "trace-smoke: $key diverged across worker counts: $a vs $b" >&2
        fail=1
    fi
done

# Pipe form: generator straight into the solver, no file in between.
if ! "$tmp/mpss-gen" trace -n 2000 -m 4 -seed 7 | "$tmp/mpss-opt" -summary-json "$tmp/pipe.json" > /dev/null; then
    echo "trace-smoke: pipe form failed" >&2
    fail=1
elif [ "$(field "$tmp/pipe.json" .jobs)" != "2000" ]; then
    echo "trace-smoke: pipe form solved $(field "$tmp/pipe.json" .jobs) jobs, want 2000" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "trace-smoke: FAILED" >&2
    exit 1
fi
echo "trace-smoke: OK ($N jobs, $components components, largest $largest, energy $energy)"
