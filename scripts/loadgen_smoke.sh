#!/bin/sh
# Load-generator smoke test: boot mpss-served, point mpss-loadgen at it
# for a short open-loop burst, and assert the SLO report shows real
# traffic (non-zero throughput, zero transport/5xx failures) while the
# Prometheus endpoint stays parseable under load. This is the cheap CI
# stand-in for a production scrape-while-loaded check; the in-process
# exposition-format validation lives in internal/obs/prom_test.go.
#
# Run from the repository root (make loadgen-smoke does).
set -u

GO=${GO:-go}
CURL=${CURL:-curl}
tmp=$(mktemp -d)
fail=0
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

if ! command -v "$CURL" >/dev/null 2>&1; then
    echo "loadgen-smoke: skipped ($CURL not available)" >&2
    exit 0
fi

if ! $GO build -o "$tmp/mpss-served" ./cmd/mpss-served ||
    ! $GO build -o "$tmp/mpss-loadgen" ./cmd/mpss-loadgen; then
    echo "loadgen-smoke: build failed" >&2
    exit 1
fi

"$tmp/mpss-served" -addr 127.0.0.1:0 -workers 2 -cache 64 2>"$tmp/served.err" &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/.*"msg":"listening".*"addr":"\([^"]*\)".*/\1/p' "$tmp/served.err" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "loadgen-smoke: daemon died before readiness:" >&2
        sed 's/^/    /' "$tmp/served.err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "loadgen-smoke: no readiness record within 10s" >&2
    exit 1
fi

# Short open-loop run. A generous p99 target keeps the smoke about
# wiring, not machine speed; the error-rate budget of zero is the real
# assertion (no 5xx, no transport failures against a healthy daemon).
if ! "$tmp/mpss-loadgen" -url "http://$addr" -duration 2s -rate 80 \
    -slo-p99 5s -slo-error-rate 0 -o "$tmp/report.json"; then
    echo "loadgen-smoke: loadgen SLO run failed:" >&2
    sed 's/^/    /' "$tmp/report.json" 2>/dev/null >&2
    fail=1
fi

# The report must show real traffic...
if ! grep -q '"completed": *[1-9]' "$tmp/report.json"; then
    echo "loadgen-smoke: no completed requests in report" >&2
    fail=1
fi
# ...and no server-side failures.
if grep -q '"5[0-9][0-9]": *[1-9]' "$tmp/report.json"; then
    echo "loadgen-smoke: 5xx responses under load:" >&2
    sed 's/^/    /' "$tmp/report.json" >&2
    fail=1
fi

# The scrape endpoint must survive the load with valid exposition text:
# the request-counter series and monotone histogram data are present.
$CURL -s -o "$tmp/prom" "http://$addr/metrics"
if ! grep -q '^mpss_server_http_requests_total{' "$tmp/prom"; then
    echo "loadgen-smoke: /metrics lacks per-endpoint request counters" >&2
    fail=1
fi
if ! grep -q '^mpss_server_http_request_seconds_bucket{' "$tmp/prom"; then
    echo "loadgen-smoke: /metrics lacks request latency buckets" >&2
    fail=1
fi

kill -TERM "$pid"
wait "$pid"
rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "loadgen-smoke: SIGTERM exit $rc, want 0:" >&2
    sed 's/^/    /' "$tmp/served.err" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "loadgen-smoke: FAIL" >&2
    exit 1
fi
echo "loadgen-smoke: ok"
