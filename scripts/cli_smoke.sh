#!/bin/sh
# CLI smoke test: every command-line tool must exit within the documented
# convention — 0 = success, 1 = domain failure, 2 = usage/invalid input —
# and must never print a Go panic trace. Go panics exit with status 2,
# which the convention would otherwise mask, so stderr is grepped too.
#
# Run from the repository root (make cli-smoke does).
set -u

GO=${GO:-go}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
fail=0

bins="mpss-gen mpss-opt mpss-sim mpss-verify mpss-bench benchjson"
for b in $bins; do
    if ! $GO build -o "$tmp/$b" "./cmd/$b"; then
        echo "cli-smoke: building $b failed" >&2
        exit 1
    fi
done

# run NAME EXPECTED_RC CMD... — runs CMD with stderr captured, checks the
# exit code matches and that no panic trace leaked.
run() {
    name=$1 want=$2
    shift 2
    "$@" >"$tmp/out" 2>"$tmp/err"
    rc=$?
    if [ "$rc" -ne "$want" ]; then
        echo "cli-smoke: $name: exit $rc, want $want" >&2
        sed 's/^/    /' "$tmp/err" >&2
        fail=1
    fi
    case $rc in
        0|1|2) ;;
        *)
            echo "cli-smoke: $name: exit $rc outside {0,1,2}" >&2
            fail=1
            ;;
    esac
    if grep -q "panic:" "$tmp/err"; then
        echo "cli-smoke: $name: panic trace on stderr" >&2
        sed 's/^/    /' "$tmp/err" >&2
        fail=1
    fi
}

# Happy path: generate -> solve -> verify.
run "gen" 0 "$tmp/mpss-gen" -workload bursty -n 6 -m 2 -seed 7 -o "$tmp/inst.json"
run "opt" 0 "$tmp/mpss-opt" -in "$tmp/inst.json" -json "$tmp/sched.json"
run "verify" 0 "$tmp/mpss-verify" -instance "$tmp/inst.json" -schedule "$tmp/sched.json" -optimal
run "sim oa" 0 "$tmp/mpss-sim" -in "$tmp/inst.json" -alg oa
run "sim avr" 0 "$tmp/mpss-sim" -in "$tmp/inst.json" -alg avr
run "bench e1" 0 "$tmp/mpss-bench" -experiment e1 -seeds 1 -n 8 -workers 1

# Usage errors: exit 2.
run "verify no args" 2 "$tmp/mpss-verify"
run "opt missing file" 2 "$tmp/mpss-opt" -in "$tmp/definitely-missing.json"

# Invalid instances: exit 2 (ErrInvalidInstance), not a crash.
printf '{"m": 0, "jobs": [{"id": 1, "release": 0, "deadline": 1, "work": 1}]}' >"$tmp/bad-m.json"
run "opt m=0" 2 "$tmp/mpss-opt" -in "$tmp/bad-m.json"
printf '{"m": 2, "jobs": [{"id": 1, "release": 5, "deadline": 1, "work": 1}]}' >"$tmp/bad-window.json"
run "opt inverted window" 2 "$tmp/mpss-opt" -in "$tmp/bad-window.json"
run "sim inverted window" 2 "$tmp/mpss-sim" -in "$tmp/bad-window.json" -alg avr

# benchjson: malformed input is a domain failure, not a crash.
printf 'not benchmark output\n' | run "benchjson garbage" 0 "$tmp/benchjson" -o "$tmp/bench.json"

if [ "$fail" -ne 0 ]; then
    echo "cli-smoke: FAIL" >&2
    exit 1
fi
echo "cli-smoke: ok"
