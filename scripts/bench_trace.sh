#!/bin/sh
# Streaming-trace throughput benchmark: archives jobs/sec and peak RSS
# for the decomposed streaming solve at 100k and 1M jobs, plus the
# decompose=off monolithic baseline at 100k, into BENCH_trace.json.
#
# The monolithic baseline cannot be run to completion: the phase
# algorithm's round loop is ~quadratic in n, and a 2k-job diurnal trace
# already takes >10 minutes monolithically (vs ~0.5s decomposed), so
# 100k would run for days. The baseline is therefore bounded by
# BENCH_TRACE_OFF_TIMEOUT (default 300s) and, when it times out, its
# throughput is recorded as the UPPER BOUND jobs/timeout — every jobs/sec
# the monolithic solve could possibly have achieved is below it, so the
# reported speedup is a lower bound on the true speedup.
#
# Run from the repository root (make bench does).
set -u

GO=${GO:-go}
N100K=${BENCH_TRACE_JOBS:-100000}
N1M=${BENCH_TRACE_JOBS_LARGE:-1000000}
OFF_TIMEOUT=${BENCH_TRACE_OFF_TIMEOUT:-300}
OUT=${BENCH_TRACE_OUT:-BENCH_trace.json}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for b in mpss-gen mpss-opt; do
    $GO build -o "$tmp/$b" "./cmd/$b" || exit 1
done

echo "bench-trace: generating $N100K- and $N1M-job traces"
"$tmp/mpss-gen" trace -n "$N100K" -m 8 -seed 1 -o "$tmp/t100k.jsonl" || exit 1
"$tmp/mpss-gen" trace -n "$N1M" -m 8 -seed 1 -o "$tmp/t1m.jsonl" || exit 1

echo "bench-trace: $N100K jobs, decompose=on"
"$tmp/mpss-opt" -in "$tmp/t100k.jsonl" -summary-json "$tmp/on100k.json" || exit 1

echo "bench-trace: $N100K jobs, decompose=off (timeout ${OFF_TIMEOUT}s)"
timeout -k 10 "${OFF_TIMEOUT}s" \
    "$tmp/mpss-opt" -in "$tmp/t100k.jsonl" -decompose=false -summary-json "$tmp/off100k.json"
rc=$?
if [ "$rc" -eq 0 ]; then
    off=$(jq '. + {timed_out: false}' "$tmp/off100k.json")
elif [ "$rc" -eq 124 ] || [ "$rc" -eq 137 ]; then
    echo "bench-trace: monolithic baseline timed out (expected); recording throughput upper bound"
    off=$(jq -n --argjson n "$N100K" --argjson t "$OFF_TIMEOUT" \
        '{jobs: $n, decompose: false, timed_out: true, timeout_sec: $t,
          jobs_per_sec: ($n / $t), jobs_per_sec_is_upper_bound: true}')
else
    echo "bench-trace: monolithic baseline failed with exit $rc" >&2
    exit 1
fi

echo "bench-trace: $N1M jobs, decompose=on"
"$tmp/mpss-opt" -in "$tmp/t1m.jsonl" -summary-json "$tmp/on1m.json" || exit 1

on_jps=$(jq -r .jobs_per_sec "$tmp/on100k.json")
off_jps=$(printf '%s' "$off" | jq -r .jobs_per_sec)
speedup=$(awk "BEGIN { printf \"%.2f\", $on_jps / $off_jps }")

jq -n \
    --slurpfile on100k "$tmp/on100k.json" \
    --slurpfile on1m "$tmp/on1m.json" \
    --argjson off100k "$off" \
    --argjson speedup "$speedup" \
    '{
      note: "decompose=off is a bounded run: timed_out=true means jobs_per_sec is the upper bound jobs/timeout_sec, so speedup_100k is a lower bound",
      "100k_decompose_on": $on100k[0],
      "100k_decompose_off": $off100k,
      "1m_decompose_on": $on1m[0],
      speedup_100k: $speedup
    }' > "$OUT" || exit 1

echo "bench-trace: wrote $OUT (100k on: $on_jps jobs/sec, off: $off_jps jobs/sec, speedup >= $speedup)"
