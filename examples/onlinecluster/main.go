// Onlinecluster: watch OA(m) react to a live arrival stream. Prints each
// replanning event with the speed of every live job, making Lemma 7 of
// the paper (job speeds only ever rise when new work arrives) visible in
// the trace.
//
//	go run ./examples/onlinecluster
package main

import (
	"fmt"
	"log"
	"sort"

	"mpss"
)

func main() {
	in, err := mpss.GenerateWorkload("uniform", mpss.WorkloadSpec{
		N: 10, M: 3, Seed: 11, Horizon: 60,
	})
	if err != nil {
		log.Fatal(err)
	}
	p := mpss.MustAlpha(2)

	res, err := mpss.OA(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := mpss.Verify(res.Schedule, in); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("OA(3) on a %d-job arrival stream — replanning trace\n\n", in.N())
	prev := map[int]float64{}
	for i, ev := range res.Events {
		fmt.Printf("t=%6.2f  replan %d, %d live jobs\n", ev.Time, i+1, len(ev.JobSpeeds))
		ids := make([]int, 0, len(ev.JobSpeeds))
		for id := range ev.JobSpeeds {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			s := ev.JobSpeeds[id]
			marker := ""
			if old, ok := prev[id]; ok {
				switch {
				case s > old+1e-9:
					marker = fmt.Sprintf("  (up from %.3f — Lemma 7)", old)
				case s < old-1e-6:
					marker = "  (DROPPED — would contradict Lemma 7!)"
				}
			}
			fmt.Printf("    job %2d: speed %.3f, remaining %.2f%s\n",
				id, s, ev.Remaining[id], marker)
		}
		prev = ev.JobSpeeds
	}

	opt, err := mpss.OptimalSchedule(in)
	if err != nil {
		log.Fatal(err)
	}
	oaE, optE := res.Schedule.Energy(p), opt.Schedule.Energy(p)
	fmt.Printf("\nenergy: OA=%.3f, offline optimum=%.3f, ratio %.4f (bound %.0f)\n",
		oaE, optE, oaE/optE, mpss.OABound(2))
	fmt.Println()
	fmt.Print(res.Schedule.Gantt(80))
}
