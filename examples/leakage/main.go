// Leakage: when does the paper's "stretch the work out" optimum stop
// being the right operating mode? With static (leakage) power and a sleep
// state — the combined model the paper's conclusion points to — racing at
// a fixed frequency and sleeping can win. This example sweeps the leakage
// level and prints the crossover.
//
//	go run ./examples/leakage
package main

import (
	"fmt"
	"log"

	"mpss"
)

func main() {
	in, err := mpss.GenerateWorkload("bursty", mpss.WorkloadSpec{
		N: 16, M: 2, Seed: 12, Horizon: 80,
	})
	if err != nil {
		log.Fatal(err)
	}
	p := mpss.MustAlpha(3)

	optRes, err := mpss.OptimalSchedule(in)
	if err != nil {
		log.Fatal(err)
	}
	minCap, err := mpss.MinFeasibleCap(in, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	race, err := mpss.ScheduleAtCap(in, minCap*2)
	if err != nil {
		log.Fatal(err)
	}
	start, end := in.Horizon()
	capPower := p.Power(minCap)

	fmt.Println("stretch (paper's optimum) vs race-to-sleep, P(s)=s^3 + leakage")
	fmt.Printf("minimum feasible frequency %.3f; race runs at %.3f\n\n", minCap, 2*minCap)
	fmt.Printf("%-22s %14s %14s %8s\n", "idle power", "stretch energy", "race energy", "winner")
	for _, frac := range []float64{0, 0.25, 0.5, 1, 2, 4, 8, 16} {
		model := mpss.SleepModel{
			IdlePower: frac * capPower,
			WakeCost:  0.05 * capPower,
		}
		bS, err := mpss.EvaluateWithSleep(optRes.Schedule, p, model, start, end)
		if err != nil {
			log.Fatal(err)
		}
		bR, err := mpss.EvaluateWithSleep(race, p, model, start, end)
		if err != nil {
			log.Fatal(err)
		}
		winner := "stretch"
		if bR.Total < bS.Total {
			winner = "race"
		}
		fmt.Printf("%6.2f x P(minCap)     %14.2f %14.2f %8s\n", frac, bS.Total, bR.Total, winner)
	}

	fmt.Println("\nwithout leakage, slowing down is provably optimal (Theorem 1);")
	fmt.Println("with heavy leakage the sleep state flips the answer — the open")
	fmt.Println("combined problem from the paper's conclusion.")
}
