// Multicore: how much energy does adding cores save? Takes one mixed
// workload and computes the migratory optimum for m = 1, 2, 4, 8
// processors under the cube-root rule, demonstrating the m^(1-alpha)
// scaling that anchors Theorem 3's analysis.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"
	"math"

	"mpss"
)

func main() {
	base, err := mpss.GenerateWorkload("longshort", mpss.WorkloadSpec{
		N: 24, M: 1, Seed: 7, Horizon: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	const alpha = 3.0
	p := mpss.MustAlpha(alpha)

	fmt.Printf("mixed long/short workload, %d jobs, P(s)=s^3\n\n", base.N())
	fmt.Printf("%5s %12s %12s %14s %8s\n", "cores", "energy", "vs 1 core", "m^(1-a) bound", "phases")

	var single float64
	for _, m := range []int{1, 2, 4, 8} {
		in, err := mpss.NewInstance(m, base.Jobs)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mpss.OptimalSchedule(in)
		if err != nil {
			log.Fatal(err)
		}
		if err := mpss.Verify(res.Schedule, in); err != nil {
			log.Fatal(err)
		}
		e := res.Schedule.Energy(p)
		if m == 1 {
			single = e
		}
		// Perfectly parallelizable load would scale as m^(1-alpha); real
		// deadlines keep the optimum above that line (experiment E8).
		bound := math.Pow(float64(m), 1-alpha) * single
		fmt.Printf("%5d %12.2f %11.3fx %14.2f %8d\n",
			m, e, e/single, bound, len(res.Phases))
		if e < bound-1e-6 {
			log.Fatalf("m=%d: optimum %v dipped below the m^(1-alpha) bound %v", m, e, bound)
		}
	}

	fmt.Println("\nenergy falls with cores but never below m^(1-alpha) times the")
	fmt.Println("single-core optimum — the inequality behind Theorem 3's proof.")
}
