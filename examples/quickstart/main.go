// Quickstart: schedule a handful of jobs on two variable-speed processors
// and print the optimal plan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpss"
)

func main() {
	// Three jobs on two processors. Job 1 is urgent and heavy; jobs 2 and
	// 3 are relaxed background work.
	jobs := []mpss.Job{
		{ID: 1, Release: 0, Deadline: 2, Work: 8},
		{ID: 2, Release: 0, Deadline: 10, Work: 6},
		{ID: 3, Release: 4, Deadline: 10, Work: 3},
	}
	in, err := mpss.NewInstance(2, jobs)
	if err != nil {
		log.Fatal(err)
	}

	res, err := mpss.OptimalSchedule(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := mpss.Verify(res.Schedule, in); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Optimal multi-processor schedule with migration")
	fmt.Println("(each phase is one uniform speed level of the optimum)")
	for i, ph := range res.Phases {
		fmt.Printf("  phase %d: jobs %v run at speed %.3f\n", i+1, ph.JobIDs, ph.Speed)
	}

	// The same schedule is optimal for every convex power function;
	// the power function only changes the reported energy.
	for _, alpha := range []float64{2, 3} {
		p := mpss.MustAlpha(alpha)
		fmt.Printf("energy under P(s)=s^%g: %.3f\n", alpha, res.Schedule.Energy(p))
	}

	fmt.Println()
	fmt.Print(res.Schedule.Gantt(72))
}
