// Datacenter: a bursty server-farm workload on eight processors.
// Compares the migratory optimum against non-migratory assignment
// policies and the two online algorithms — the comparison that motivates
// migration in the paper's introduction.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"mpss"
)

func main() {
	const m = 8
	in, err := mpss.GenerateWorkload("bursty", mpss.WorkloadSpec{
		N: 40, M: m, Seed: 2026, Horizon: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	p := mpss.MustAlpha(3) // cube-root rule for CMOS

	opt, err := mpss.OptimalSchedule(in)
	if err != nil {
		log.Fatal(err)
	}
	optE := opt.Schedule.Energy(p)

	fmt.Printf("bursty server-farm: %d jobs on %d processors, P(s)=s^3\n\n", in.N(), m)
	fmt.Printf("%-34s %12s %8s\n", "scheduler", "energy", "vs opt")
	report := func(name string, e float64) {
		fmt.Printf("%-34s %12.2f %7.2fx\n", name, e, e/optE)
	}
	report("offline optimum (migration)", optE)

	oa, err := mpss.OA(in)
	if err != nil {
		log.Fatal(err)
	}
	report("OA(m) online", oa.Schedule.Energy(p))

	avr, err := mpss.AVR(in)
	if err != nil {
		log.Fatal(err)
	}
	report("AVR(m) online", avr.Schedule.Energy(p))

	for name, a := range map[string]mpss.Assignment{
		"non-migratory: random + YDS":      mpss.RandomAssignment(1),
		"non-migratory: round-robin + YDS": mpss.RoundRobinAssignment(),
		"non-migratory: least-work + YDS":  mpss.LeastWorkAssignment(),
	} {
		s, err := mpss.NonMigratory(in, a)
		if err != nil {
			log.Fatal(err)
		}
		report(name, s.Energy(p))
	}

	fmt.Printf("\nproven online bounds at alpha=3: OA %.0f, AVR %.0f\n",
		mpss.OABound(3), mpss.AVRBound(3))
	fmt.Printf("optimum uses %d distinct speed levels across %d jobs\n",
		len(opt.Phases), in.N())
}
