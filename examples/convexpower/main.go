// Convexpower: the offline algorithm never looks at the power function,
// so ONE schedule is optimal simultaneously for every convex
// non-decreasing P with P(0)=0. This example prices the same schedule
// under four different power models — including a discrete-speed menu —
// and cross-checks each against an independent baseline.
//
//	go run ./examples/convexpower
package main

import (
	"fmt"
	"log"

	"mpss"
)

func main() {
	in, err := mpss.GenerateWorkload("uniform", mpss.WorkloadSpec{
		N: 12, M: 3, Seed: 4, Horizon: 40,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := mpss.OptimalSchedule(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one optimal schedule (%d phases) priced under different power models:\n\n",
		len(res.Phases))

	// 1. The classic cube-root rule.
	cube := mpss.MustAlpha(3)
	fmt.Printf("%-42s %10.4f\n", "P(s) = s^3 (cube-root rule)", res.Schedule.Energy(cube))

	// 2. A quadratic dynamic term plus linear switching losses.
	poly, err := mpss.NewPolynomial(mpss.PowerTerm{C: 1, E: 2}, mpss.PowerTerm{C: 0.3, E: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-42s %10.4f\n", "P(s) = s^2 + 0.3 s (dynamic + switching)", res.Schedule.Energy(poly))

	// 3. A measured-looking piecewise-linear curve.
	top := res.Phases[0].Speed * 1.5
	pl, err := mpss.SamplePiecewiseAlpha(2.5, top, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-42s %10.4f\n", "P(s) = 12-segment PL fit of s^2.5", res.Schedule.Energy(pl))

	// 4. Discrete speed steps (DVFS with 6 P-states): the reduction mixes
	// adjacent levels and stays provably optimal for the menu.
	menu, err := mpss.UniformSpeedMenu(top, 6)
	if err != nil {
		log.Fatal(err)
	}
	disc, err := mpss.DiscreteSchedule(in, cube, menu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-42s %10.4f  (%d segments split)\n",
		"6-level DVFS menu under s^3", disc.Energy, disc.Splits)
	if err := mpss.Verify(disc.Schedule, in); err != nil {
		log.Fatal(err)
	}

	cont := res.Schedule.Energy(cube)
	fmt.Printf("\ndiscrete premium over continuous at 6 levels: %.2f%%\n",
		100*(disc.Energy-cont)/cont)

	m := res.Schedule.ComputeMetrics()
	fmt.Printf("schedule shape: %d segments, %d migrations, %d preemptions, %.0f%% utilization\n",
		m.Segments, m.Migrations, m.Preemptions, 100*m.Utilization)
}
