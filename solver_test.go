package mpss_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"mpss"
)

// TestSolverDifferential pins the session API to the package-level
// functions: the one-shot wrappers must be bit-identical to calling the
// same methods on a long-lived Solver, across every entry point and
// repeated session reuse (warm arenas must not change results).
func TestSolverDifferential(t *testing.T) {
	s := mpss.NewSolver()
	alpha := mpss.MustAlpha(3)
	for _, seed := range []int64{1, 2, 3} {
		for _, gen := range []string{"uniform", "bursty"} {
			in, err := mpss.GenerateWorkload(gen, mpss.WorkloadSpec{N: 20, M: 3, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			// Solve each instance twice per path: the second session call
			// runs on warm arenas and must still agree bit-for-bit.
			for rep := 0; rep < 2; rep++ {
				pkgOpt, err1 := mpss.OptimalSchedule(in)
				sesOpt, err2 := s.Solve(in)
				requireSameResult(t, gen, seed, "optimal", err1, err2)
				if err1 == nil {
					if a, b := pkgOpt.Schedule.Energy(alpha), sesOpt.Schedule.Energy(alpha); a != b {
						t.Errorf("%s/%d optimal: package energy %v, session %v", gen, seed, a, b)
					}
					requireSameJSON(t, gen, seed, "optimal schedule", pkgOpt.Schedule, sesOpt.Schedule)
				}

				pkgOA, err1 := mpss.OA(in)
				sesOA, err2 := s.OA(in)
				requireSameResult(t, gen, seed, "oa", err1, err2)
				if err1 == nil {
					requireSameJSON(t, gen, seed, "oa schedule", pkgOA.Schedule, sesOA.Schedule)
					if pkgOA.Replans != sesOA.Replans {
						t.Errorf("%s/%d oa: package replans %d, session %d", gen, seed, pkgOA.Replans, sesOA.Replans)
					}
				}

				pkgAVR, err1 := mpss.AVR(in)
				sesAVR, err2 := s.AVR(in)
				requireSameResult(t, gen, seed, "avr", err1, err2)
				if err1 == nil {
					requireSameJSON(t, gen, seed, "avr schedule", pkgAVR.Schedule, sesAVR.Schedule)
				}

				pkgCap, err1 := mpss.MinFeasibleCap(in, 1e-9)
				sesCap, err2 := s.MinFeasibleCap(in, 1e-9)
				requireSameResult(t, gen, seed, "mincap", err1, err2)
				if pkgCap != sesCap {
					t.Errorf("%s/%d mincap: package %v, session %v", gen, seed, pkgCap, sesCap)
				}

				pkgFeas, err1 := mpss.FeasibleAtSpeed(in, pkgCap*1.01)
				sesFeas, err2 := s.FeasibleAtSpeed(in, pkgCap*1.01)
				requireSameResult(t, gen, seed, "feasible", err1, err2)
				if pkgFeas != sesFeas || !pkgFeas {
					t.Errorf("%s/%d feasible at 1.01*mincap: package %v, session %v, want both true",
						gen, seed, pkgFeas, sesFeas)
				}
			}
		}
	}
}

func requireSameResult(t *testing.T, gen string, seed int64, what string, err1, err2 error) {
	t.Helper()
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s/%d %s: package err %v, session err %v", gen, seed, what, err1, err2)
	}
	if err1 != nil {
		t.Fatalf("%s/%d %s: %v", gen, seed, what, err1)
	}
}

func requireSameJSON(t *testing.T, gen string, seed int64, what string, a, b any) {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("%s/%d %s: package and session JSON differ:\n%s\n%s", gen, seed, what, ja, jb)
	}
}

// TestSolverExactMatchesPackage covers the exact-arithmetic path.
func TestSolverExactMatchesPackage(t *testing.T) {
	in, err := mpss.GenerateWorkload("uniform", mpss.WorkloadSpec{N: 8, M: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := mpss.NewSolver()
	pkg, err1 := mpss.OptimalScheduleExact(in)
	ses, err2 := s.SolveExact(in)
	requireSameResult(t, "uniform", 5, "exact", err1, err2)
	requireSameJSON(t, "uniform", 5, "exact schedule", pkg.Schedule, ses.Schedule)
}

// TestSolverSessionOptions checks that options given to NewSolver act as
// session defaults and per-call options layer on top.
func TestSolverSessionOptions(t *testing.T) {
	rec := mpss.NewRecorder()
	s := mpss.NewSolver(mpss.WithRecorder(rec))
	in, err := mpss.GenerateWorkload("uniform", mpss.WorkloadSpec{N: 10, M: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(in); err != nil {
		t.Fatal(err)
	}
	if rec.Value("opt.rounds") == 0 {
		t.Error("session recorder saw no opt.rounds; NewSolver options not applied")
	}

	// A canceled per-call context must override the session default...
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Solve(in, mpss.WithContext(canceled)); !errors.Is(err, mpss.ErrCanceled) {
		t.Errorf("Solve with canceled ctx: err %v, want ErrCanceled", err)
	}
	// ...without sticking to the session: the next plain call succeeds.
	if _, err := s.Solve(in); err != nil {
		t.Errorf("Solve after canceled call: %v", err)
	}
}

// TestCancellationMidSolve drives a large instance with a deadline that
// expires mid-solve and checks three things: the solve unwinds promptly
// with ErrCanceled, the CLI-visible sentinel matches, and the same
// session solves correctly afterwards (no arena poisoning).
func TestCancellationMidSolve(t *testing.T) {
	big, err := mpss.GenerateWorkload("bursty", mpss.WorkloadSpec{N: 600, M: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s := mpss.NewSolver()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = s.Solve(big, mpss.WithContext(ctx))
	if !errors.Is(err, mpss.ErrCanceled) {
		t.Fatalf("mid-solve cancel: err %v, want ErrCanceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v; want prompt unwind at a round boundary", d)
	}

	// The session must be unpoisoned: re-solve a small instance and
	// compare against a fresh one-shot call.
	small, err := mpss.GenerateWorkload("uniform", mpss.WorkloadSpec{N: 16, M: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := mpss.OptimalSchedule(small)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Solve(small)
	if err != nil {
		t.Fatalf("solve after cancellation: %v", err)
	}
	requireSameJSON(t, "uniform", 3, "post-cancel schedule", want.Schedule, got.Schedule)
}

// TestCancellationAllEntryPoints checks every context-aware entry point
// returns ErrCanceled for an already-canceled context.
func TestCancellationAllEntryPoints(t *testing.T) {
	in, err := mpss.GenerateWorkload("uniform", mpss.WorkloadSpec{N: 20, M: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	withCtx := mpss.WithContext(ctx)

	calls := map[string]func() error{
		"OptimalSchedule": func() error { _, err := mpss.OptimalSchedule(in, withCtx); return err },
		"OA":              func() error { _, err := mpss.OA(in, withCtx); return err },
		"AVR":             func() error { _, err := mpss.AVR(in, withCtx); return err },
		"MinFeasibleCap":  func() error { _, err := mpss.MinFeasibleCap(in, 1e-6, withCtx); return err },
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, mpss.ErrCanceled) {
			t.Errorf("%s: err %v, want ErrCanceled", name, err)
		}
	}

	// A background (never-canceled) context must not disturb results.
	bg := mpss.WithContext(context.Background())
	plain, err := mpss.OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	withBG, err := mpss.OptimalSchedule(in, bg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameJSON(t, "uniform", 2, "ctx vs no-ctx schedule", plain.Schedule, withBG.Schedule)
}

// TestFeasibleAtSpeedVariadic pins the redesigned signature: cap as a
// plain argument, options variadic.
func TestFeasibleAtSpeedVariadic(t *testing.T) {
	in, err := mpss.GenerateWorkload("uniform", mpss.WorkloadSpec{N: 10, M: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec := mpss.NewRecorder()
	ok, err := mpss.FeasibleAtSpeed(in, 1e6, mpss.WithRecorder(rec))
	if err != nil || !ok {
		t.Fatalf("huge cap: ok=%v err=%v, want feasible", ok, err)
	}
	if rec.Value("opt.feasibility_probes") == 0 && rec.Value("flow.maxflow_calls") == 0 {
		t.Error("recorder option ignored by FeasibleAtSpeed")
	}
	ok, err = mpss.FeasibleAtSpeed(in, 1e-9)
	if err != nil || ok {
		t.Fatalf("tiny cap: ok=%v err=%v, want infeasible", ok, err)
	}
}

// TestStreamingSession pins the public session surface: Begin, the
// AddJob/RemoveJob/SetCap deltas and Resolve, whose every result must be
// bit-identical to a one-shot Solve of the session's current job set.
func TestStreamingSession(t *testing.T) {
	in, err := mpss.GenerateWorkload("bursty", mpss.WorkloadSpec{N: 16, M: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := mpss.NewSolver()
	if err := s.Begin(in); err != nil {
		t.Fatal(err)
	}
	defer s.End()
	oneShot := mpss.NewSolver()
	jobs := append([]mpss.Job(nil), in.Jobs...)

	check := func(step string, got *mpss.SessionResult) {
		t.Helper()
		want, err := oneShot.Solve(&mpss.Instance{M: in.M, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		a, jerr1 := json.Marshal(got.Result.Schedule)
		b, jerr2 := json.Marshal(want.Schedule)
		if jerr1 != nil || jerr2 != nil {
			t.Fatalf("%s: marshal: %v %v", step, jerr1, jerr2)
		}
		if string(a) != string(b) {
			t.Fatalf("%s: session schedule differs from one-shot:\n%s\n%s", step, a, b)
		}
	}

	res, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	check("initial", res)

	if err := s.RemoveJob(jobs[2].ID); err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs[:2], jobs[3:]...)
	if res, err = s.Resolve(); err != nil {
		t.Fatal(err)
	}
	check("remove", res)

	add := mpss.Job{ID: 999, Release: 1, Deadline: 6, Work: 2.5}
	if err := s.AddJob(add); err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, add)
	if res, err = s.Resolve(); err != nil {
		t.Fatal(err)
	}
	check("add", res)

	if err := s.SetCap(1e6); err != nil {
		t.Fatal(err)
	}
	if res, err = s.Resolve(); err != nil {
		t.Fatal(err)
	}
	check("cap", res)
	if res.Cap != 1e6 || !res.CapFeasible {
		t.Fatalf("cap resolve: Cap=%v CapFeasible=%v, want 1e6/true", res.Cap, res.CapFeasible)
	}

	// Error surface: duplicate add, unknown remove, mutations after End.
	if err := s.AddJob(add); !errors.Is(err, mpss.ErrInvalidInstance) {
		t.Fatalf("duplicate AddJob: err %v, want ErrInvalidInstance", err)
	}
	if err := s.RemoveJob(123456); !errors.Is(err, mpss.ErrInvalidInstance) {
		t.Fatalf("unknown RemoveJob: err %v, want ErrInvalidInstance", err)
	}
	s.End()
	s.End() // idempotent
	if _, err := s.Resolve(); !errors.Is(err, mpss.ErrInvalidInstance) {
		t.Fatalf("Resolve after End: err %v, want ErrInvalidInstance", err)
	}
	if err := s.AddJob(add); !errors.Is(err, mpss.ErrInvalidInstance) {
		t.Fatalf("AddJob after End: err %v, want ErrInvalidInstance", err)
	}
}

// TestStreamingSessionExact runs the same differential through the
// exact rational engine.
func TestStreamingSessionExact(t *testing.T) {
	in, err := mpss.GenerateWorkload("uniform", mpss.WorkloadSpec{N: 8, M: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := mpss.NewSolver()
	if err := s.BeginExact(in); err != nil {
		t.Fatal(err)
	}
	defer s.End()
	jobs := append([]mpss.Job(nil), in.Jobs...)
	if err := s.RemoveJob(jobs[0].ID); err != nil {
		t.Fatal(err)
	}
	jobs = jobs[1:]
	got, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := mpss.NewSolver().SolveExact(&mpss.Instance{M: in.M, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(got.Result.Schedule)
	b, _ := json.Marshal(want.Schedule)
	if string(a) != string(b) {
		t.Fatalf("exact session differs from one-shot:\n%s\n%s", a, b)
	}
}
