package mpss_test

import (
	"context"
	"errors"
	"fmt"

	"mpss"
)

// The offline optimum: three jobs, two processors, one call.
func ExampleOptimalSchedule() {
	jobs := []mpss.Job{
		{ID: 1, Release: 0, Deadline: 2, Work: 8},
		{ID: 2, Release: 0, Deadline: 10, Work: 6},
		{ID: 3, Release: 4, Deadline: 10, Work: 3},
	}
	in, _ := mpss.NewInstance(2, jobs)
	res, _ := mpss.OptimalSchedule(in)
	for i, ph := range res.Phases {
		fmt.Printf("phase %d: jobs %v at speed %.2f\n", i+1, ph.JobIDs, ph.Speed)
	}
	fmt.Printf("energy: %.2f\n", res.Schedule.Energy(mpss.MustAlpha(2)))
	// Output:
	// phase 1: jobs [1] at speed 4.00
	// phase 2: jobs [2] at speed 0.60
	// phase 3: jobs [3] at speed 0.50
	// energy: 37.10
}

// The online Optimal Available algorithm replans at each arrival and is
// alpha^alpha-competitive (Theorem 2).
func ExampleOA() {
	jobs := []mpss.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 4},
		{ID: 2, Release: 2, Deadline: 4, Work: 2},
	}
	in, _ := mpss.NewInstance(1, jobs)
	res, _ := mpss.OA(in)
	opt, _ := mpss.OptimalSchedule(in)
	p := mpss.MustAlpha(2)
	fmt.Printf("replans: %d\n", res.Replans)
	fmt.Printf("OA %.0f vs optimal %.0f (bound %.0f)\n",
		res.Schedule.Energy(p), opt.Schedule.Energy(p), mpss.OABound(2))
	// Output:
	// replans: 2
	// OA 10 vs optimal 9 (bound 4)
}

// AVR assigns every job its density; high-density jobs get dedicated
// processors (Theorem 3).
func ExampleAVR() {
	jobs := []mpss.Job{
		{ID: 1, Release: 0, Deadline: 2, Work: 20}, // density 10
		{ID: 2, Release: 0, Deadline: 2, Work: 2},  // density 1
		{ID: 3, Release: 0, Deadline: 2, Work: 2},
		{ID: 4, Release: 0, Deadline: 2, Work: 2},
	}
	in, _ := mpss.NewInstance(3, jobs)
	res, _ := mpss.AVR(in)
	lv := res.Levels[0]
	fmt.Printf("dedicated: %v, pool speed: %.1f\n", lv.Dedicated, lv.PoolSpeed)
	// Output:
	// dedicated: [1], pool speed: 1.5
}

// A Solver session keeps its flow-network arenas warm across calls —
// the right shape for servers and batch loops. Results are bit-identical
// to the package-level one-shot functions.
func ExampleNewSolver() {
	s := mpss.NewSolver()
	jobs := []mpss.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 8},
		{ID: 2, Release: 1, Deadline: 5, Work: 2},
	}
	in, _ := mpss.NewInstance(2, jobs)
	res, _ := s.Solve(in)
	cap, _ := s.MinFeasibleCap(in, 1e-9)
	fmt.Printf("energy: %.2f\n", res.Schedule.Energy(mpss.MustAlpha(3)))
	fmt.Printf("min cap: %.2f\n", cap)
	// Output:
	// energy: 32.50
	// min cap: 2.00
}

// WithContext threads a context into a solve; cancellation or deadline
// expiry unwinds at the next phase/round boundary with ErrCanceled.
func ExampleWithContext() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before solving: the solve aborts at its first round
	in, _ := mpss.NewInstance(1, []mpss.Job{{ID: 1, Release: 0, Deadline: 2, Work: 3}})
	_, err := mpss.OptimalSchedule(in, mpss.WithContext(ctx))
	fmt.Println(errors.Is(err, mpss.ErrCanceled))
	// Output:
	// true
}

// The incremental Planner is the push-style form of OA(m).
func ExampleNewPlanner() {
	pl, _ := mpss.NewPlanner(2)
	_ = pl.Arrive(0, mpss.Job{ID: 1, Deadline: 4, Work: 4})
	_ = pl.Arrive(1, mpss.Job{ID: 2, Deadline: 3, Work: 2})
	_ = pl.FinishHorizon(4)
	fmt.Printf("replans: %d, unfinished: %d\n", pl.Replans(), len(pl.Remaining()))
	// Output:
	// replans: 2, unfinished: 0
}

// Discrete speed menus stay optimal by mixing adjacent levels.
func ExampleDiscreteSchedule() {
	in, _ := mpss.NewInstance(1, []mpss.Job{{ID: 1, Release: 0, Deadline: 2, Work: 3}})
	res, _ := mpss.DiscreteSchedule(in, mpss.MustAlpha(2), []float64{1, 2})
	fmt.Printf("energy: %.1f with %d split\n", res.Energy, res.Splits)
	// Output:
	// energy: 5.0 with 1 split
}
