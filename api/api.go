// Package api is the public wire contract of the mpss scheduling
// service: the JSON request/response types spoken by mpss-served
// replicas and the mpss-front cluster tier, the uniform error envelope,
// the canonical request key used for caching and consistent-hash
// routing, and a typed HTTP client.
//
// Every wire-type struct lives here and only here — internal/server,
// internal/cluster, cmd/mpss-loadgen and the end-to-end suites all
// import this package instead of re-declaring or hand-parsing bodies.
//
// Endpoints (replica surface; mpss-front exposes the same /v1/* routes
// plus /v1/cluster/status):
//
//	POST   /v1/solve/optimal       offline optimal schedule (optionally exact)
//	POST   /v1/solve/oa            online Optimal Available simulation
//	POST   /v1/solve/avr           online Average Rate simulation
//	POST   /v1/solve/atcap         fixed-frequency schedule at a speed cap
//	POST   /v1/feasible            one feasibility probe at a speed cap
//	POST   /v1/mincap              minimum feasible speed cap
//	POST   /v1/session             open a streaming session
//	POST   /v1/session/{id}/delta  mutate + incrementally re-solve
//	GET    /v1/session/{id}        latest resolve (long-poll with wait_seq)
//	DELETE /v1/session/{id}        tear the session down
//	GET    /v1/status              replica introspection (queue, cache, load)
//	GET    /v1/cache/{hash}        result-cache peek by canonical request key
//	GET    /v1/healthz             liveness
//	GET    /v1/readyz              readiness
//	GET    /v1/metrics             observability snapshot (JSON)
//	GET    /metrics                Prometheus text exposition
//	GET    /v1/cluster/status      cluster topology + autoscaler (front tier)
//
// Error envelope: every non-2xx body is an ErrorBody whose "error"
// object carries {"kind","message","request_id"}. The pre-cluster
// releases stamped "kind" and "request_id" at the top level (and the
// message as a top-level "error" string); the top-level "kind" and
// "request_id" fields are still mirrored for one release — see
// ErrorBody for the deprecation note.
package api

import "mpss"

// SolveRequest is the JSON body shared by every POST solve endpoint:
// the instance in the same shape the CLIs read ({"m": ..., "jobs":
// [...]}) plus endpoint-specific knobs. Unknown fields are ignored, so
// a client may reuse one request struct across endpoints.
type SolveRequest struct {
	M    int        `json:"m"`
	Jobs []mpss.Job `json:"jobs"`

	// Alpha is the power-function exponent used to *report* energy
	// (P(s) = s^alpha, default 3). The optimal schedule itself does not
	// depend on it.
	Alpha float64 `json:"alpha,omitempty"`
	// Exact switches /v1/solve/optimal to exact rational arithmetic.
	Exact bool `json:"exact,omitempty"`
	// Decompose overrides the server's decomposition default for
	// /v1/solve/optimal (nil = use the server default). The schedule is
	// bit-identical either way, so the knob does not participate in the
	// request key.
	Decompose *bool `json:"decompose,omitempty"`
	// Cap is the speed cap probed by /v1/feasible and /v1/solve/atcap.
	Cap float64 `json:"cap,omitempty"`
	// Rel is the relative tolerance of /v1/mincap (0 = solver default).
	Rel float64 `json:"rel,omitempty"`
	// TimeoutMS overrides the server's per-request solve deadline in
	// milliseconds (capped at the server default; 0 = use the default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PhaseResponse is one speed level of an optimal schedule.
type PhaseResponse struct {
	Speed  float64 `json:"speed"`
	JobIDs []int   `json:"job_ids"`
	Procs  []int   `json:"procs"`
}

// OptimalResponse is the body of a successful /v1/solve/optimal call.
// Energy, Phases and Schedule are bit-deterministic for a given
// instance regardless of solve strategy; Rounds is solver telemetry
// (max-flow rounds executed) and depends on it — a decomposed solve
// runs fewer rounds than a monolithic one, and a cache-replayed body
// reports the rounds of whichever solve populated the entry.
type OptimalResponse struct {
	Energy   float64         `json:"energy"`
	Alpha    float64         `json:"alpha"`
	Phases   []PhaseResponse `json:"phases"`
	Rounds   int             `json:"rounds"`
	Schedule *mpss.Schedule  `json:"schedule"`
}

// OnlineResponse is the body of a successful /v1/solve/oa or
// /v1/solve/avr call. Bound is the algorithm's proven competitive
// ratio at the reporting alpha.
type OnlineResponse struct {
	Energy   float64        `json:"energy"`
	Alpha    float64        `json:"alpha"`
	Bound    float64        `json:"bound"`
	Replans  int            `json:"replans,omitempty"`
	Schedule *mpss.Schedule `json:"schedule"`
}

// AtCapResponse is the body of a successful /v1/solve/atcap call.
type AtCapResponse struct {
	Energy   float64        `json:"energy"`
	Alpha    float64        `json:"alpha"`
	Cap      float64        `json:"cap"`
	Schedule *mpss.Schedule `json:"schedule"`
}

// FeasibleResponse is the body of a successful /v1/feasible call.
type FeasibleResponse struct {
	Cap      float64 `json:"cap"`
	Feasible bool    `json:"feasible"`
}

// MinCapResponse is the body of a successful /v1/mincap call.
type MinCapResponse struct {
	Cap float64 `json:"cap"`
}

// SessionDeltaRequest is the body of POST /v1/session/{id}/delta: a
// batch of mutations applied atomically (all validated before any is
// applied) followed by one incremental re-solve. Removes apply before
// adds, so one delta can replace a job under the same ID.
type SessionDeltaRequest struct {
	AddJobs   []mpss.Job `json:"add_jobs,omitempty"`
	RemoveIDs []int      `json:"remove_ids,omitempty"`
	// Cap retunes the session's speed cap when present; 0 clears it.
	Cap *float64 `json:"cap,omitempty"`
	// TimeoutMS overrides the per-delta solve deadline (capped at the
	// server default; 0 = use the default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SessionResponse is the body returned by session create, delta and
// long-poll calls: the session coordinates plus the latest resolve.
type SessionResponse struct {
	SessionID string `json:"session_id"`
	// Seq increments on every published resolve; long-poll with
	// ?wait_seq=<last seen> to block until a newer one exists.
	Seq  int64 `json:"seq"`
	Jobs int   `json:"jobs"`
	// Incremental reports that the resolve rode the warm persistent
	// network instead of rebuilding it.
	Incremental bool            `json:"incremental"`
	Energy      float64         `json:"energy"`
	Alpha       float64         `json:"alpha"`
	Cap         float64         `json:"cap,omitempty"`
	CapFeasible *bool           `json:"cap_feasible,omitempty"`
	Phases      []PhaseResponse `json:"phases"`
	Schedule    *mpss.Schedule  `json:"schedule"`
}

// HealthResponse is the body of the probe endpoints. /v1/healthz
// (liveness) always reports "ok"; /v1/readyz (readiness) reports
// "ready", "draining" once shutdown began, or "saturated" while the
// admission queue is full.
type HealthResponse struct {
	Status string `json:"status"`
}

// ReplicaStatusResponse is the body of GET /v1/status: one replica's
// introspection surface, the numbers a front tier or autoscaler needs
// without parsing the full metrics snapshot. Requests, CacheHits and
// SolveSeconds are cumulative since process start; a poller diffs
// successive samples for rates.
type ReplicaStatusResponse struct {
	// Replica is the name the daemon was started with (-replica flag;
	// empty for a standalone server).
	Replica string `json:"replica,omitempty"`
	// Status mirrors /v1/readyz: "ready", "draining" or "saturated".
	Status       string `json:"status"`
	Workers      int    `json:"workers"`
	QueueLen     int    `json:"queue_len"`
	QueueCap     int    `json:"queue_cap"`
	Sessions     int64  `json:"sessions"`
	CacheEntries int    `json:"cache_entries"`
	// Requests counts admitted solve/session requests; CacheHits the
	// result-cache short circuits among them.
	Requests  int64 `json:"requests"`
	CacheHits int64 `json:"cache_hits"`
	// SolveSeconds is the cumulative wall time spent answering solve
	// requests (the server.request_seconds histogram sum) — the demand
	// signal the cluster autoscaler feeds to the solver.
	SolveSeconds  float64 `json:"solve_seconds"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ClusterReplica is one replica as the front tier sees it.
type ClusterReplica struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// State is the health state machine position: "starting" (spawned,
	// not yet ready), "healthy", "suspect" (one failed probe or proxy
	// error), "down" (out of the ring) or "draining" (scale-down in
	// progress).
	State string `json:"state"`
	// Proxied counts requests the front routed here.
	Proxied int64 `json:"proxied"`
	// LastError is the most recent probe/proxy failure, if any.
	LastError string `json:"last_error,omitempty"`
	// Status is the replica's own latest /v1/status sample (nil until
	// the first successful poll).
	Status *ReplicaStatusResponse `json:"status,omitempty"`
}

// ScaleEvent records one autoscaler replica-count change.
type ScaleEvent struct {
	UnixMS int64  `json:"unix_ms"`
	From   int    `json:"from"`
	To     int    `json:"to"`
	Reason string `json:"reason"`
}

// AutoscalerStatus reports the control loop's latest decision and the
// solver-posed feasibility question behind it: the observed demand
// window is encoded as an mpss instance whose processors are replicas,
// and the desired count is the smallest replica count at which that
// instance is feasible under the per-replica capacity cap.
type AutoscalerStatus struct {
	Enabled bool `json:"enabled"`
	// DemandWorkSeconds is the solve-work demand (worker-seconds,
	// including queue backlog) of the last observation window.
	DemandWorkSeconds float64 `json:"demand_work_seconds"`
	// CapacityPerReplica is the worker-seconds/second one replica is
	// assumed to serve (workers × target utilization).
	CapacityPerReplica float64 `json:"capacity_per_replica"`
	// Desired is the last computed replica count.
	Desired int `json:"desired"`
	// MinCap is the minimum feasible per-replica service rate at the
	// current replica count, the solver's own summary of how tight the
	// cluster is (0 until the first decision with demand).
	MinCap       float64 `json:"min_cap"`
	LastDecision int64   `json:"last_decision_unix_ms,omitempty"`
}

// ClusterStatusResponse is the body of GET /v1/cluster/status on the
// front tier.
type ClusterStatusResponse struct {
	Replicas   []ClusterReplica `json:"replicas"`
	Desired    int              `json:"desired"`
	Autoscaler AutoscalerStatus `json:"autoscaler"`
	// Events is the bounded most-recent-first scale event log.
	Events []ScaleEvent `json:"events,omitempty"`
}
