package api

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
)

// ErrorDetail is the canonical error object nested under "error" in
// every non-2xx body.
type ErrorDetail struct {
	// Kind is the stable machine-readable error class: one of
	// "bad_json", "bad_query", "invalid_instance", "infeasible",
	// "canceled", "overloaded", "session_too_large", "unknown_session",
	// "cache_miss", "no_replica", "method_not_allowed",
	// "unknown_endpoint" or "internal".
	Kind string `json:"kind"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// RequestID echoes the X-Request-ID of the failing request so an
	// error seen by a client can be joined against the access log and
	// the flight-recorder trace.
	RequestID string `json:"request_id,omitempty"`
}

// ErrorBody is the body of every non-2xx response:
//
//	{"error":{"kind":"...","message":"...","request_id":"..."}}
//
// Deprecated mirrors: pre-cluster releases stamped "kind" and
// "request_id" at the top level and carried the message as a top-level
// "error" string. The top-level "kind" and "request_id" fields are
// still populated for one release so existing clients keep parsing;
// they will be dropped — read Error.Kind / Error.RequestID instead.
// (The top-level "error" string could not survive: the key now holds
// the error object. That is the one breaking change of the redesign.)
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
	// Deprecated: mirror of Error.Kind, removed next release.
	Kind string `json:"kind,omitempty"`
	// Deprecated: mirror of Error.RequestID, removed next release.
	RequestID string `json:"request_id,omitempty"`
}

// NewErrorBody builds the envelope with the deprecated mirrors
// populated.
func NewErrorBody(kind, message, requestID string) ErrorBody {
	return ErrorBody{
		Error:     ErrorDetail{Kind: kind, Message: message, RequestID: requestID},
		Kind:      kind,
		RequestID: requestID,
	}
}

// Error is the typed client-side form of a non-2xx response.
type Error struct {
	// Status is the HTTP status code.
	Status int
	// Kind, Message and RequestID are the ErrorDetail fields.
	Kind      string
	Message   string
	RequestID string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("api: %s (%s, status %d)", e.Message, e.Kind, e.Status)
	}
	return fmt.Sprintf("api: %s (status %d)", e.Kind, e.Status)
}

// StatusClientClosedRequest is the (nginx-convention) status a server
// records when the client went away mid-solve; the client never sees
// it, but it keeps the canceled case distinct from 504 in logs/tests.
const StatusClientClosedRequest = 499

// HeaderRequestID is the canonical request-identity header, honored
// inbound and echoed on every response by replicas and the front tier.
const HeaderRequestID = "X-Request-ID"

// HeaderReplica is set by the front tier on proxied responses to name
// the replica that answered.
const HeaderReplica = "X-Mpss-Replica"

// HeaderCache marks responses served from a result cache: replicas set
// it to "hit" when replaying a cached solve, to "peek" on
// /v1/cache/{hash} hits; the front forwards whichever value it saw.
const HeaderCache = "X-Mpss-Cache"

// NewRequestID generates a 16-hex-char random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to
		// a constant rather than take the serving path down.
		return "00000000deadbeef"
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID accepts inbound IDs that are printable, reasonably
// short and free of characters that could corrupt log lines or headers.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-', r == '_', r == '.', r == ':':
		default:
			return false
		}
	}
	return true
}

// statusText maps a few non-standard statuses this API uses.
func statusText(code int) string {
	if code == StatusClientClosedRequest {
		return "client closed request"
	}
	return http.StatusText(code)
}
