package api

import (
	"testing"

	"mpss"
	"mpss/internal/flow"
)

func testInstance() ([]mpss.Job, int) {
	return []mpss.Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 8},
		{ID: 2, Release: 1, Deadline: 5, Work: 6},
		{ID: 3, Release: 2, Deadline: 8, Work: 4},
	}, 2
}

// The request key must not distinguish a request that spells out a
// default from one that elides it: alpha 0 means 3, rel <= 0 means the
// solver's default tolerance, and the solve path resolves both the same
// way — distinct keys would split one logical request across cache
// entries, flights and ring positions.
func TestRequestKeyNormalizesDefaults(t *testing.T) {
	jobs, m := testInstance()
	base := SolveRequest{M: m, Jobs: jobs}

	withAlpha := base
	withAlpha.Alpha = 3
	if RequestKey("optimal", &base) != RequestKey("optimal", &withAlpha) {
		t.Error("alpha elided vs alpha:3 produced different keys")
	}

	withRel := base
	withRel.Rel = flow.SolveTolerance
	if RequestKey("mincap", &base) != RequestKey("mincap", &withRel) {
		t.Error("rel elided vs rel:default produced different keys")
	}

	negRel := base
	negRel.Rel = -1
	if RequestKey("mincap", &base) != RequestKey("mincap", &negRel) {
		t.Error("rel:-1 did not normalize to the default tolerance")
	}

	otherAlpha := base
	otherAlpha.Alpha = 2
	if RequestKey("optimal", &base) == RequestKey("optimal", &otherAlpha) {
		t.Error("alpha:2 collided with the default alpha")
	}

	otherRel := base
	otherRel.Rel = 0.5
	if RequestKey("mincap", &base) == RequestKey("mincap", &otherRel) {
		t.Error("rel:0.5 collided with the default rel")
	}

	// Decomposition does not change the response bit-for-bit, so it must
	// not split the cache: on, off and elided all share one key.
	for _, on := range []bool{true, false} {
		on := on
		withDecompose := base
		withDecompose.Decompose = &on
		if RequestKey("optimal", &base) != RequestKey("optimal", &withDecompose) {
			t.Errorf("decompose:%v produced a different key than elided", on)
		}
	}
}
